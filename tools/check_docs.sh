#!/bin/sh
# Documentation drift check, run as a CTest (`check_docs`):
#
#   1. docs/cli.md must cover the real CLI: every subcommand and every flag
#      printed by `healers help` appears in the reference, and every
#      `healers <subcommand>` the reference documents still exists.
#   2. Every relative markdown link in the repo's *.md files resolves to a
#      file that exists (external http(s) links and pure #anchors are not
#      checked).
#
# Usage: tools/check_docs.sh <healers-binary> <repo-root>
set -eu

healers="${1:?usage: check_docs.sh <healers-binary> <repo-root>}"
root="${2:?usage: check_docs.sh <healers-binary> <repo-root>}"
cli_doc="$root/docs/cli.md"
fail=0

[ -f "$cli_doc" ] || { echo "check_docs: missing $cli_doc" >&2; exit 1; }

help_text="$("$healers" help)"

# --- 1a. every real subcommand and flag is documented -----------------------
# Subcommands are the first word of each indented usage line; continuation
# lines (deeper indentation or punctuation starts) don't introduce commands.
commands="$(printf '%s\n' "$help_text" | sed -n 's/^  \([a-z][a-z-]*\).*/\1/p' | sort -u)"
flags="$(printf '%s\n' "$help_text" | grep -o -- '--[a-z-]*' | sort -u)"

for cmd in $commands; do
  if ! grep -q "healers $cmd" "$cli_doc"; then
    echo "check_docs: subcommand '$cmd' is in 'healers help' but not documented in docs/cli.md" >&2
    fail=1
  fi
done
for flag in $flags; do
  if ! grep -q -- "$flag" "$cli_doc"; then
    echo "check_docs: flag '$flag' is in 'healers help' but not documented in docs/cli.md" >&2
    fail=1
  fi
done

# --- 1b. no documented subcommand has rotted away ---------------------------
# The reference marks each documented subcommand with a '### `healers <cmd>'
# heading; each must still be a real command.
doc_commands="$(sed -n 's/^### `healers \([a-z][a-z-]*\).*/\1/p' "$cli_doc" | sort -u)"
for cmd in $doc_commands; do
  if ! printf '%s\n' "$commands" | grep -qx "$cmd"; then
    echo "check_docs: docs/cli.md documents 'healers $cmd' but 'healers help' does not list it" >&2
    fail=1
  fi
done

# --- 2. every relative markdown link resolves -------------------------------
for md in "$root"/*.md "$root"/docs/*.md; do
  [ -f "$md" ] || continue
  dir="$(dirname "$md")"
  # Extract ](target) link targets; one per line, tolerating several per line.
  links="$(grep -o '](\([^)]*\))' "$md" | sed 's/^](\(.*\))$/\1/')" || continue
  for link in $links; do
    case "$link" in
      http://*|https://*|\#*|mailto:*) continue ;;
    esac
    target="${link%%#*}"                # drop an in-file anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "check_docs: broken link '$link' in ${md#"$root"/}" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — docs drifted from the CLI or contain broken links" >&2
  exit 1
fi
echo "check_docs: docs/cli.md matches 'healers help'; all markdown links resolve"
