#!/bin/sh
# Documentation drift check, run as a CTest (`check_docs`):
#
#   1. docs/cli.md must cover the real CLI: every subcommand and every flag
#      printed by `healers help` appears in the reference, and every
#      `healers <subcommand>` the reference documents still exists.
#   2. Every relative markdown link in the repo's *.md files resolves to a
#      file that exists (external http(s) links and pure #anchors are not
#      checked).
#   3. If the CLI exposes repair mode (`--repair` in `healers help`), the
#      repair documentation must exist and stay reachable: docs/repair.md is
#      present and referenced from docs/cli.md, docs/architecture.md, and
#      README.md.
#   4. Same for debloat mode: while `--debloat` exists, docs/debloat.md must
#      be present and referenced from the same three entry points.
#
# Usage: tools/check_docs.sh <healers-binary> <repo-root>
set -eu

healers="${1:?usage: check_docs.sh <healers-binary> <repo-root>}"
root="${2:?usage: check_docs.sh <healers-binary> <repo-root>}"
cli_doc="$root/docs/cli.md"
fail=0

[ -f "$cli_doc" ] || { echo "check_docs: missing $cli_doc" >&2; exit 1; }

help_text="$("$healers" help)"

# --- 1a. every real subcommand and flag is documented -----------------------
# Subcommands are the first word of each indented usage line; continuation
# lines (deeper indentation or punctuation starts) don't introduce commands.
commands="$(printf '%s\n' "$help_text" | sed -n 's/^  \([a-z][a-z-]*\).*/\1/p' | sort -u)"
flags="$(printf '%s\n' "$help_text" | grep -o -- '--[a-z-]*' | sort -u)"

for cmd in $commands; do
  if ! grep -q "healers $cmd" "$cli_doc"; then
    echo "check_docs: subcommand '$cmd' is in 'healers help' but not documented in docs/cli.md" >&2
    fail=1
  fi
done
for flag in $flags; do
  if ! grep -q -- "$flag" "$cli_doc"; then
    echo "check_docs: flag '$flag' is in 'healers help' but not documented in docs/cli.md" >&2
    fail=1
  fi
done

# --- 1b. no documented subcommand has rotted away ---------------------------
# The reference marks each documented subcommand with a '### `healers <cmd>'
# heading; each must still be a real command.
doc_commands="$(sed -n 's/^### `healers \([a-z][a-z-]*\).*/\1/p' "$cli_doc" | sort -u)"
for cmd in $doc_commands; do
  if ! printf '%s\n' "$commands" | grep -qx "$cmd"; then
    echo "check_docs: docs/cli.md documents 'healers $cmd' but 'healers help' does not list it" >&2
    fail=1
  fi
done

# --- 1c. repair mode ships with its documentation ---------------------------
# The repair flag is only as usable as its policy spec; if the CLI grows (or
# keeps) --repair, docs/repair.md must exist and the entry points must link it.
if printf '%s\n' "$flags" | grep -qx -- '--repair'; then
  if [ ! -f "$root/docs/repair.md" ]; then
    echo "check_docs: 'healers help' lists --repair but docs/repair.md is missing" >&2
    fail=1
  else
    for ref in docs/cli.md docs/architecture.md README.md; do
      if ! grep -q 'repair\.md' "$root/$ref"; then
        echo "check_docs: $ref does not reference docs/repair.md (required while --repair exists)" >&2
        fail=1
      fi
    done
  fi
fi

# --- 1d. debloat mode ships with its documentation --------------------------
# Demand loading is a security contract (out-of-profile calls trap); if the
# CLI grows (or keeps) --debloat, docs/debloat.md must exist and the entry
# points must link it.
if printf '%s\n' "$flags" | grep -qx -- '--debloat'; then
  if [ ! -f "$root/docs/debloat.md" ]; then
    echo "check_docs: 'healers help' lists --debloat but docs/debloat.md is missing" >&2
    fail=1
  else
    for ref in docs/cli.md docs/architecture.md README.md; do
      if ! grep -q 'debloat\.md' "$root/$ref"; then
        echo "check_docs: $ref does not reference docs/debloat.md (required while --debloat exists)" >&2
        fail=1
      fi
    done
  fi
fi

# --- 2. every relative markdown link resolves -------------------------------
for md in "$root"/*.md "$root"/docs/*.md; do
  [ -f "$md" ] || continue
  dir="$(dirname "$md")"
  # Extract ](target) link targets; one per line, tolerating several per line.
  links="$(grep -o '](\([^)]*\))' "$md" | sed 's/^](\(.*\))$/\1/')" || continue
  for link in $links; do
    case "$link" in
      http://*|https://*|\#*|mailto:*) continue ;;
    esac
    target="${link%%#*}"                # drop an in-file anchor
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ]; then
      echo "check_docs: broken link '$link' in ${md#"$root"/}" >&2
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — docs drifted from the CLI or contain broken links" >&2
  exit 1
fi
echo "check_docs: docs/cli.md matches 'healers help'; all markdown links resolve"
