// The `healers` command-line driver — the scriptable face of the toolkit
// (the paper drove the same operations through a web UI, Figs 4/5).
//
//   healers list-libs
//   healers list-functions <soname>
//   healers decls <soname> [-o decls.xml]
//   healers derive <soname> [--seed N] [--variants N] [--jobs N] [-o campaign.xml]
//   healers report <campaign.xml>
//   healers gen-source <soname> --type profiling|robustness|security|testing
//                      [--campaign campaign.xml] [-o wrapper.c]
//   healers inspect demo-heap|demo-stack
//   healers demo attacks
//   healers fleet simulate [--hosts N] [--docs N] [--seed N] [--jobs N]
//                          [--encoding xml|binary|mixed] -o fleet.docs
//   healers fleet ingest <fleet.docs> [--shards N] [--jobs N] [--capacity N]
//   healers fleet report <fleet.docs> [--shards N] [--jobs N]
//   healers serve [--clients N] [--requests N] [--jobs N] [--shards N]
//                 [--capacity N] [--cache-file F] [--encoding xml|binary]
//   healers simulate [--hosts N] [--virtual-seconds N] [--seed N] [--jobs N]
//                    [--traffic M] [--shards N] [--capacity N] [--stats]
//
// derive→(ship XML)→gen-source is the paper's offline pipeline: campaigns
// run where the library lives; wrapper generation can happen anywhere the
// spec file reaches. fleet simulate→ingest/report is the §2.3 collection
// story at fleet scale: hosts emit profile documents (XML or the compact
// binary wire format), the sharded collector aggregates them. serve is the
// derivation service: a simulated client fleet asks one DeriveServer for
// robust APIs and wrapper bundles; single-flight dedup plus the persistent
// spec cache (--cache-file, shared with derive) keep repeat answers at zero
// probes.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "debloat/reachability.hpp"
#include "debloat/surface.hpp"
#include "fleet/collector.hpp"
#include "fleet/simulator.hpp"
#include "fleet/wire.hpp"
#include "incident/recorder.hpp"
#include "server/derive_server.hpp"
#include "server/spec_cache.hpp"
#include "sim/fleet_sim.hpp"
#include "simlib/library.hpp"
#include "wrappers/wrappers.hpp"

using namespace healers;

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: healers <command> [args]\n"
               "  help\n"
               "  list-libs\n"
               "  list-functions <soname>\n"
               "  decls <soname> [-o file]\n"
               "  derive <soname> [--seed N] [--variants N] [--jobs N]\n"
               "         [--reset fork|fresh] [--no-prune] [--stats] [--repair]\n"
               "         [--cache-file file] [-o file]\n"
               "         [--debloat]\n"
               "         (--jobs N probes on N worker threads, 0 = all cores;\n"
               "          --reset fork resets probes by COW fork from a shared pristine\n"
               "          state, fresh rebuilds a process per probe; --no-prune disables\n"
               "          subsumption pruning and executes every probe; results are\n"
               "          identical for every --jobs, --reset and --no-prune value;\n"
               "          --stats appends engine fork/privatize and implication-cache\n"
               "          counters as an <engine> XML node;\n"
               "          --cache-file loads/saves the persistent spec cache so repeat\n"
               "          runs execute 0 probes and warm campaigns reuse learned\n"
               "          implication profiles;\n"
               "          --repair additionally derives the repair policy from the\n"
               "          campaign's crash boundaries and appends it as a\n"
               "          <repair-policy> XML node — the campaign document itself is\n"
               "          byte-identical with or without it;\n"
               "          --debloat scopes the campaign to the symbols reachable from\n"
               "          an installed surface scope — HSSP1 cache entries, or the demo\n"
               "          executables' closures when none are installed)\n"
               "  report <campaign.xml>\n"
               "  gen-source <soname> --type profiling|robustness|security|testing|repair\n"
               "             [--campaign file] [-o file]\n"
               "  inspect demo-heap|demo-stack|demo-drift [--validate] [--format text|xml]\n"
               "          [-o file]\n"
               "          (--validate runs the entry point under a tracing interposition\n"
               "           and records stale imports — symbols the binary calls that its\n"
               "           declared import list is missing — in the Fig 4 link map)\n"
               "  debloat demo-heap|demo-stack|demo-drift [--format text|xml|binary]\n"
               "          [--cache-file file] [-o file]\n"
               "          (static reachability closure + a demand-loading run: symbols\n"
               "           start unmapped, the first call faults each one in, and calls\n"
               "           outside the closure trap as surface violations; --cache-file\n"
               "           persists the closure as HSSP1 surface-scope entries that\n"
               "           derive/serve --debloat campaigns are scoped to)\n"
               "  demo attacks\n"
               "  dossier demo-heap|demo-stack|demo-drift [--format text|xml|binary]\n"
               "          [--repair] [-o file]\n"
               "          (--repair preloads the repair wrapper instead of the security\n"
               "           wrapper: the attack is truncated/substituted away, the victim\n"
               "           survives, and the dossier records the applied RepairEvents;\n"
               "           demo-drift runs under demand loading and captures the\n"
               "           surface-violation dossier its stale rand() import raises)\n"
               "  simulate [--hosts N] [--virtual-seconds N] [--seed N] [--jobs N]\n"
               "           [--traffic steady|diurnal|burst|straggler|crashloop|mixed]\n"
               "           [--shards N] [--capacity N] [--stats] [--debloat] [-o file]\n"
               "           (virtual-time discrete-event fleet: N simulated hosts drive\n"
               "            the real collector and DeriveServer; the summary is\n"
               "            byte-identical for a given --seed at any --jobs/--shards;\n"
               "            --stats appends the collector and derive-service summaries;\n"
               "            --debloat puts hosts under demand loading — they emit\n"
               "            surface-profile documents the collector aggregates)\n"
               "  fleet simulate [--hosts N] [--docs N] [--seed N] [--jobs N]\n"
               "                 [--encoding xml|binary|mixed] [-o file]\n"
               "  fleet ingest <file> [--shards N] [--jobs N] [--capacity N]\n"
               "  fleet report <file> [--shards N] [--jobs N]\n"
               "  serve [--clients N] [--requests N] [--jobs N] [--shards N]\n"
               "        [--capacity N] [--cache-file file] [--encoding xml|binary]\n"
               "        [--seed N] [--repair] [--stats] [--debloat] [-o file]\n"
               "        (--repair adds repair-wrapper bundles to the simulated client\n"
               "         rotation; derived policies persist as HSRP1 spec-cache\n"
               "         entries. --stats additionally reports the repair-policy\n"
               "         census on stderr: policies derived, rules per action.\n"
               "         --debloat scopes campaigns to the installed surface scopes)\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "healers: %s\n", message.c_str());
  return 1;
}

// Writes to the -o target, or stdout when none was given.
int emit(const std::string& text, const std::string& out_path) {
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) return fail("cannot write " + out_path);
  out << text;
  std::printf("wrote %zu bytes to %s\n", text.size(), out_path.c_str());
  return 0;
}

Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  std::vector<std::string> positional;
  std::string out_path;
  std::string type;
  std::string campaign_path;
  std::uint64_t seed = 2003;
  int variants = 1;
  int jobs = 1;
  int hosts = 8;
  int docs = 8;
  int shards = 4;
  int capacity = 4096;
  int clients = 4;
  int requests = 8;
  std::uint64_t virtual_seconds = 60;
  std::string traffic = "mixed";
  bool capacity_set = false;
  std::string encoding = "mixed";
  std::string format = "text";
  std::string cache_file;
  std::string reset = "fork";
  bool prune = true;
  bool stats = false;
  bool repair = false;
  bool validate = false;
  bool debloat = false;
};

Result<Options> parse_options(int argc, char** argv) {
  Options options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&i, argc, argv, &arg]() -> Result<std::string> {
      if (i + 1 >= argc) return Error("missing value for " + arg);
      return std::string(argv[++i]);
    };
    if (arg == "-o") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.out_path = value.value();
    } else if (arg == "--type") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.type = value.value();
    } else if (arg == "--campaign") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.campaign_path = value.value();
    } else if (arg == "--seed") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.seed = std::stoull(value.value());
    } else if (arg == "--variants") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.variants = std::stoi(value.value());
    } else if (arg == "--jobs") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.jobs = std::stoi(value.value());
    } else if (arg == "--hosts") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.hosts = std::stoi(value.value());
    } else if (arg == "--docs") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.docs = std::stoi(value.value());
    } else if (arg == "--shards") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.shards = std::stoi(value.value());
    } else if (arg == "--capacity") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.capacity = std::stoi(value.value());
      options.capacity_set = true;
    } else if (arg == "--virtual-seconds") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.virtual_seconds = std::stoull(value.value());
    } else if (arg == "--traffic") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.traffic = value.value();
    } else if (arg == "--clients") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.clients = std::stoi(value.value());
    } else if (arg == "--requests") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.requests = std::stoi(value.value());
    } else if (arg == "--cache-file") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.cache_file = value.value();
    } else if (arg == "--encoding") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.encoding = value.value();
    } else if (arg == "--format") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.format = value.value();
    } else if (arg == "--reset") {
      auto value = next();
      if (!value.ok()) return value.error();
      options.reset = value.value();
      if (options.reset != "fork" && options.reset != "fresh") {
        return Error("--reset must be fork or fresh");
      }
    } else if (arg == "--no-prune") {
      options.prune = false;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--repair") {
      options.repair = true;
    } else if (arg == "--validate") {
      options.validate = true;
    } else if (arg == "--debloat") {
      options.debloat = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Error("unknown option " + arg);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

Result<injector::CampaignResult> load_campaign(const std::string& path) {
  auto text = read_file(path);
  if (!text.ok()) return text.error();
  auto doc = xml::parse(text.value());
  if (!doc.ok()) return Error(path + ": " + doc.error().message);
  return injector::CampaignResult::from_xml(doc.value());
}

int cmd_list_libs(const core::Toolkit& toolkit) {
  for (const std::string& soname : toolkit.list_libraries()) {
    const auto functions = toolkit.list_functions(soname);
    std::printf("%-16s %zu functions\n", soname.c_str(), functions.value().size());
  }
  return 0;
}

int cmd_list_functions(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  const auto functions = toolkit.list_functions(options.positional[0]);
  if (!functions.ok()) return fail(functions.error().message);
  for (const std::string& name : functions.value()) std::printf("%s\n", name.c_str());
  return 0;
}

int cmd_decls(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  const auto doc = toolkit.declaration_xml(options.positional[0]);
  if (!doc.ok()) return fail(doc.error().message);
  return emit(xml::serialize(doc.value()), options.out_path);
}

// Imports the persistent spec cache when the file exists; a missing file is
// a cold start, not an error (the save after the run creates it).
int load_spec_cache(const core::Toolkit& toolkit, const std::string& path, bool* loaded) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return 0;
  std::size_t skipped_unknown = 0;
  auto imported = server::load_cache_file(toolkit, path, &skipped_unknown);
  if (!imported.ok()) return fail(imported.error().message);
  std::fprintf(stderr, "spec cache: imported %zu campaign(s) from %s\n", imported.value(),
               path.c_str());
  if (skipped_unknown > 0) {
    std::fprintf(stderr, "spec cache: skipped %zu entry(ies) with unknown magic\n",
                 skipped_unknown);
  }
  if (loaded != nullptr) *loaded = true;
  return 0;
}

// The named demo executables (`healers inspect`, `healers debloat`).
Result<linker::Executable> demo_executable(const std::string& name) {
  if (name == "demo-heap") return attacks::heap_victim_executable();
  if (name == "demo-stack") return attacks::stack_victim_executable();
  if (name == "demo-drift") return attacks::drift_victim_executable();
  return Error("unknown executable: " + name + " (try demo-heap, demo-stack or demo-drift)");
}

// Partitions one executable's static closure per needed library and installs
// the pieces as surface scopes. Returns the number of scopes installed.
std::size_t install_scopes_from(const core::Toolkit& toolkit, const linker::Executable& exe,
                                const debloat::ReachabilityReport& report) {
  std::size_t installed = 0;
  for (const std::string& soname : exe.needed) {
    const simlib::SharedLibrary* lib = toolkit.library(soname);
    if (lib == nullptr) continue;
    core::SurfaceScope scope;
    scope.executable = exe.name;
    scope.soname = soname;
    for (const std::string& symbol : report.reachable) {
      if (lib->defines(symbol)) scope.symbols.push_back(symbol);
    }
    if (scope.symbols.empty()) continue;
    if (toolkit.install_surface_scope(std::move(scope))) ++installed;
  }
  return installed;
}

// Installs the scopes of every demo executable — what --debloat falls back
// to when no cache file supplied installed scopes for the library.
std::size_t install_demo_scopes(const core::Toolkit& toolkit) {
  std::size_t installed = 0;
  for (const char* name : {"demo-heap", "demo-stack", "demo-drift"}) {
    const linker::Executable exe = demo_executable(name).value();
    installed += install_scopes_from(toolkit, exe, debloat::compute_reachability(exe, toolkit.catalog()));
  }
  return installed;
}

int cmd_derive(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  if (!options.cache_file.empty()) {
    if (const int rc = load_spec_cache(toolkit, options.cache_file, nullptr); rc != 0) return rc;
  }
  injector::InjectorConfig config;
  config.seed = options.seed;
  config.variants = options.variants;
  config.jobs = options.jobs;
  config.snapshot_reset = options.reset == "fork";
  config.prune = options.prune;
  if (options.debloat) {
    // Scope the campaign to the symbols some executable's static closure can
    // reach. Scopes come from the cache file (HSSP1 entries) when present;
    // otherwise the demo executables' closures stand in.
    config.only_functions = toolkit.surface_scope_for(options.positional[0]);
    if (config.only_functions.empty()) {
      install_demo_scopes(toolkit);
      config.only_functions = toolkit.surface_scope_for(options.positional[0]);
    }
    if (config.only_functions.empty()) {
      return fail("no surface scope covers " + options.positional[0] +
                  " (run `healers debloat <exe> --cache-file ...` first)");
    }
    std::fprintf(stderr, "debloat: campaign scoped to %zu reachable function(s)\n",
                 config.only_functions.size());
  }
  const auto campaign = toolkit.derive_robust_api(options.positional[0], config);
  if (!campaign.ok()) return fail(campaign.error().message);
  std::fprintf(stderr, "%llu probes, %llu failures in %zu functions; executed %llu probes this run\n",
               static_cast<unsigned long long>(campaign.value().total_probes()),
               static_cast<unsigned long long>(campaign.value().total_failures()),
               campaign.value().functions_with_failures(),
               static_cast<unsigned long long>(toolkit.probes_executed()));
  if (!options.cache_file.empty()) {
    const auto saved = server::save_cache_file(toolkit, options.cache_file);
    if (!saved.ok()) return fail(saved.error().message);
    std::fprintf(stderr, "spec cache: saved %zu campaign(s) to %s\n",
                 toolkit.export_campaigns().size(), options.cache_file.c_str());
  }
  xml::Node doc = campaign.value().to_xml();
  if (options.repair) {
    // The repair policy is a pure function of the campaign document, so it
    // rides along as a sibling node — the campaign bytes stay identical.
    const auto policy = toolkit.derive_repair_policy(options.positional[0], config);
    if (!policy.ok()) return fail(policy.error().message);
    std::size_t truncate = 0, substitute = 0, safe_return = 0;
    for (const gen::FunctionRepairPolicy& fn : policy.value().functions) {
      for (const gen::RepairRule& rule : fn.rules) {
        switch (rule.action) {
          case simlib::RepairAction::kTruncateWrite: ++truncate; break;
          case simlib::RepairAction::kSubstituteBounded:
          case simlib::RepairAction::kSynthesizeInput: ++substitute; break;
          case simlib::RepairAction::kSafeReturn: ++safe_return; break;
        }
      }
    }
    std::fprintf(stderr,
                 "repair: %zu rule(s) in %zu function(s): %zu truncate, %zu substitute, "
                 "%zu safe-return\n",
                 policy.value().rule_count(), policy.value().functions.size(), truncate,
                 substitute, safe_return);
    doc.add_child(policy.value().to_xml());
  }
  if (options.stats) {
    // Engine telemetry is jobs/reset-dependent, so it rides along only on
    // request — the default document stays bit-identical across both knobs.
    const injector::CampaignEngineStats& engine = campaign.value().engine;
    doc.add_child(engine.to_xml());
    std::fprintf(stderr,
                 "engine: %llu states forked, %llu testbeds built, pages sealed=%llu "
                 "faulted=%llu privatized=%llu dropped=%llu\n",
                 static_cast<unsigned long long>(engine.states_forked),
                 static_cast<unsigned long long>(engine.testbeds_built),
                 static_cast<unsigned long long>(engine.pages_sealed),
                 static_cast<unsigned long long>(engine.pages_faulted),
                 static_cast<unsigned long long>(engine.pages_privatized),
                 static_cast<unsigned long long>(engine.pages_dropped));
    std::fprintf(stderr,
                 "prune: %llu probes implied, %llu executed (implication hit rate %.1f%%), "
                 "%llu/%llu args warm-ordered (%.1f%%), %llu memo case hits\n",
                 static_cast<unsigned long long>(engine.probes_implied),
                 static_cast<unsigned long long>(engine.probes_executed),
                 engine.implication_hit_rate() * 100.0,
                 static_cast<unsigned long long>(engine.args_warm_ordered),
                 static_cast<unsigned long long>(engine.args_probed),
                 engine.warm_start_ratio() * 100.0,
                 static_cast<unsigned long long>(engine.memo_case_hits));
  }
  return emit(xml::serialize(doc), options.out_path);
}

int cmd_report(const Options& options) {
  if (options.positional.empty()) return usage();
  auto campaign = load_campaign(options.positional[0]);
  if (!campaign.ok()) return fail(campaign.error().message);
  std::fputs(campaign.value().to_table().c_str(), stdout);
  return 0;
}

int cmd_gen_source(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty() || options.type.empty()) return usage();
  const std::string& soname = options.positional[0];

  gen::WrapperBuilder builder(options.type + "-wrapper");
  injector::CampaignResult campaign;
  const injector::CampaignResult* campaign_ptr = nullptr;
  if (options.type == "profiling") {
    for (const auto& g : wrappers::fig3_generators()) builder.add(g);
  } else if (options.type == "robustness") {
    if (options.campaign_path.empty()) {
      return fail("gen-source --type robustness requires --campaign <file>");
    }
    auto loaded = load_campaign(options.campaign_path);
    if (!loaded.ok()) return fail(loaded.error().message);
    campaign = std::move(loaded).take();
    campaign_ptr = &campaign;
    builder.add(gen::prototype_gen())
        .add(wrappers::arg_check_gen())
        .add(gen::call_counter_gen())
        .add(gen::caller_gen());
  } else if (options.type == "security") {
    builder.add(gen::prototype_gen())
        .add(wrappers::heap_canary_gen())
        .add(wrappers::stack_guard_gen())
        .add(gen::caller_gen());
  } else if (options.type == "testing") {
    builder.add(gen::prototype_gen())
        .add(wrappers::error_injection_gen(0.1, options.seed))
        .add(gen::call_counter_gen())
        .add(gen::caller_gen());
  } else if (options.type == "repair") {
    if (options.campaign_path.empty()) {
      return fail("gen-source --type repair requires --campaign <file>");
    }
    auto loaded = load_campaign(options.campaign_path);
    if (!loaded.ok()) return fail(loaded.error().message);
    campaign = std::move(loaded).take();
    campaign_ptr = &campaign;
    const simlib::SharedLibrary* lib = toolkit.library(soname);
    if (lib == nullptr) return fail("no such library: " + soname);
    auto policy = gen::derive_repair_policy(campaign, *lib);
    if (!policy.ok()) return fail(policy.error().message);
    builder.add(gen::prototype_gen())
        .add(wrappers::repair_gen(
            std::make_shared<const gen::RepairPolicy>(std::move(policy).take())))
        .add(gen::call_counter_gen())
        .add(gen::caller_gen());
  } else {
    return fail("unknown wrapper type: " + options.type);
  }

  const auto source = toolkit.wrapper_source(soname, builder, campaign_ptr);
  if (!source.ok()) return fail(source.error().message);
  return emit(source.value(), options.out_path);
}

int cmd_inspect(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  auto exe = demo_executable(options.positional[0]);
  if (!exe.ok()) return fail(exe.error().message);
  linker::LinkMap map = toolkit.inspect(exe.value());
  if (options.validate) {
    // Dynamic cross-check: run the entry point under a tracing interposition
    // and record calls the declared import list is missing (Fig 4 rot).
    linker::CallOutcome outcome;
    map.stale_imports = linker::validate_executable(exe.value(), toolkit.catalog(), &outcome);
    std::fprintf(stderr, "validate: %zu stale import(s), run %s\n", map.stale_imports.size(),
                 outcome.to_string().c_str());
  }
  if (options.format == "xml") return emit(xml::serialize(map.to_xml()), options.out_path);
  if (options.format != "text") return fail("unknown format: " + options.format + " (text|xml)");
  return emit(map.to_text(), options.out_path);
}

// Demand-driven debloating report (docs/debloat.md): computes the static
// closure for a demo executable, runs it under the demand-loading barrier,
// and reports the surface profile. With --cache-file, the closure is also
// persisted as HSSP1 surface-scope entries so later --debloat derives scope
// their campaigns to it.
int cmd_debloat(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  auto exe = demo_executable(options.positional[0]);
  if (!exe.ok()) return fail(exe.error().message);
  if (!options.cache_file.empty()) {
    if (const int rc = load_spec_cache(toolkit, options.cache_file, nullptr); rc != 0) return rc;
  }

  const debloat::ReachabilityReport report =
      debloat::compute_reachability(exe.value(), toolkit.catalog());
  auto proc = debloat::spawn_debloated(exe.value(), toolkit.catalog(), report);
  incident::FlightRecorder recorder;
  recorder.set_process_name(exe.value().name);
  proc->set_observer(&recorder);
  const linker::CallOutcome outcome = proc->run(exe.value().entry);
  const debloat::SurfaceProfile profile = debloat::capture_surface_profile(*proc, report, "local");
  std::fprintf(stderr,
               "debloat: run %s; %llu/%llu symbol(s) mapped, %llu violation(s), "
               "%zu dossier(s)\n",
               outcome.to_string().c_str(),
               static_cast<unsigned long long>(profile.touched),
               static_cast<unsigned long long>(profile.exported),
               static_cast<unsigned long long>(profile.trapped), recorder.dossiers().size());

  if (!options.cache_file.empty()) {
    const std::size_t installed = install_scopes_from(toolkit, exe.value(), report);
    const auto saved = server::save_cache_file(toolkit, options.cache_file);
    if (!saved.ok()) return fail(saved.error().message);
    std::fprintf(stderr, "spec cache: saved %zu surface scope(s) to %s\n", installed,
                 options.cache_file.c_str());
  }

  if (options.format == "text") {
    return emit(report.to_text() + profile.to_text(), options.out_path);
  }
  if (options.format == "xml") return emit(profile.to_xml(), options.out_path);
  if (options.format == "binary") {
    return emit(fleet::encode_surface_binary(profile), options.out_path);
  }
  return fail("unknown format: " + options.format + " (text|xml|binary)");
}

Result<fleet::SimulatorConfig> simulator_config(const Options& options) {
  fleet::SimulatorConfig config;
  config.hosts = static_cast<unsigned>(options.hosts);
  config.docs_per_host = static_cast<unsigned>(options.docs);
  config.seed = options.seed;
  config.jobs = static_cast<unsigned>(options.jobs);
  if (options.encoding == "xml") {
    config.encoding = fleet::SimulatorConfig::Encoding::kXml;
  } else if (options.encoding == "binary") {
    config.encoding = fleet::SimulatorConfig::Encoding::kBinary;
  } else if (options.encoding == "mixed") {
    config.encoding = fleet::SimulatorConfig::Encoding::kMixed;
  } else {
    return Error("unknown encoding: " + options.encoding + " (xml|binary|mixed)");
  }
  return config;
}

// Reads a framed document stream and runs it through a fleet collector.
// (unique_ptr: the collector owns mutexes/atomics and cannot move.)
Result<std::unique_ptr<fleet::FleetCollector>> collect_stream(const std::string& path,
                                                              const Options& options) {
  auto text = read_file(path);
  if (!text.ok()) return text.error();
  auto documents = fleet::unframe_stream(text.value());
  if (!documents.ok()) return Error(path + ": " + documents.error().message);
  fleet::CollectorConfig config;
  config.shards = static_cast<unsigned>(options.shards);
  config.workers = static_cast<unsigned>(options.jobs);
  config.queue_capacity = static_cast<std::size_t>(options.capacity);
  auto collector = std::make_unique<fleet::FleetCollector>(config);
  for (std::string& doc : documents.value()) collector->submit(std::move(doc));
  collector->flush();
  return collector;
}

int cmd_fleet(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  const std::string& sub = options.positional[0];

  if (sub == "simulate") {
    auto config = simulator_config(options);
    if (!config.ok()) return fail(config.error().message);
    const fleet::FleetSimulator simulator(toolkit, config.value());
    const auto documents = simulator.run();
    std::fprintf(stderr, "%d host(s), %zu document(s)\n", options.hosts, documents.size());
    return emit(fleet::frame_stream(documents), options.out_path);
  }

  if (sub == "ingest" || sub == "report") {
    if (options.positional.size() < 2) return usage();
    const auto start = std::chrono::steady_clock::now();
    auto collector = collect_stream(options.positional[1], options);
    if (!collector.ok()) return fail(collector.error().message);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const fleet::FleetCollector& server = *collector.value();
    if (sub == "ingest") {
      std::printf("ingested %llu/%llu document(s) on %u shard(s): %llu malformed, "
                  "%llu dropped (%.0f docs/sec)\n",
                  static_cast<unsigned long long>(server.aggregated()),
                  static_cast<unsigned long long>(server.submitted()), server.shards(),
                  static_cast<unsigned long long>(server.malformed()),
                  static_cast<unsigned long long>(server.dropped()),
                  seconds > 0 ? static_cast<double>(server.submitted()) / seconds : 0.0);
      if (server.malformed() > 0) {
        std::fprintf(stderr, "first decode error: %s\n", server.first_error().c_str());
      }
      return server.malformed() == 0 ? 0 : 1;
    }
    std::fputs(server.render_summary().c_str(), stdout);
    return 0;
  }

  return usage();
}

// Runs one of the §3.4 attack demos with the security wrapper AND an incident
// flight recorder attached, then prints the captured crash dossier. The
// dossier is derived purely from deterministic simulated state, so every
// format is byte-identical across runs.
int emit_dossier(const incident::FlightRecorder& recorder, const Options& options) {
  const incident::Dossier& dossier = recorder.dossiers().front();
  if (options.format == "text") return emit(dossier.to_text(), options.out_path);
  if (options.format == "xml") return emit(xml::serialize(dossier.to_xml()), options.out_path);
  if (options.format == "binary") {
    return emit(fleet::encode_dossier_binary(dossier), options.out_path);
  }
  return fail("unknown format: " + options.format + " (text|xml|binary)");
}

int cmd_dossier(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty()) return usage();
  const std::string& scenario = options.positional[0];
  if (scenario == "demo-drift") {
    // Surface-drift scenario: the victim's stale import list leaves rand()
    // outside the static closure, so under demand loading the call traps as
    // a surface violation and the recorder snapshots the incident.
    const linker::Executable exe = attacks::drift_victim_executable();
    const debloat::ReachabilityReport report =
        debloat::compute_reachability(exe, toolkit.catalog());
    auto proc = debloat::spawn_debloated(exe, toolkit.catalog(), report);
    incident::FlightRecorder recorder;
    recorder.set_process_name(exe.name);
    proc->set_observer(&recorder);
    const linker::CallOutcome outcome = proc->run(exe.entry);
    if (recorder.dossiers().empty()) {
      return fail("no detector fired (" + outcome.to_string() + "); no dossier captured");
    }
    return emit_dossier(recorder, options);
  }
  auto wrapper = toolkit.security_wrapper("libsimc.so.1");
  if (options.repair) {
    // Repair mode: the victim keeps running — the dossier captured is the
    // kRepair snapshot carrying the applied RepairEvents, not a crash.
    const auto campaign = toolkit.derive_robust_api("libsimc.so.1");
    if (!campaign.ok()) return fail(campaign.error().message);
    wrapper = toolkit.repair_wrapper("libsimc.so.1", campaign.value());
  }
  if (!wrapper.ok()) return fail(wrapper.error().message);
  incident::FlightRecorder recorder;
  attacks::AttackResult result;
  if (scenario == "demo-heap") {
    recorder.set_process_name("netd");
    result = attacks::run_heap_smash_attack(toolkit.catalog(), {wrapper.value()},
                                            /*hardened_allocator=*/false, &recorder);
  } else if (scenario == "demo-stack") {
    recorder.set_process_name("reqhandler");
    result = attacks::run_stack_smash_attack(toolkit.catalog(), {wrapper.value()}, &recorder);
  } else {
    return fail("unknown scenario: " + scenario +
                " (try demo-heap, demo-stack or demo-drift)");
  }
  if (recorder.dossiers().empty()) {
    return fail("no detector fired (" + result.outcome.to_string() + "); no dossier captured");
  }
  if (options.repair) {
    std::fprintf(stderr, "repair: %llu repair(s) applied, victim %s (%s)\n",
                 static_cast<unsigned long long>(recorder.repairs_applied()),
                 result.survived ? "survived" : "did NOT survive",
                 result.outcome.to_string().c_str());
  }
  return emit_dossier(recorder, options);
}

// Drives the derivation service with a simulated client fleet: --clients
// clients each submit --requests requests (rotating over the installed
// libraries, the derive endpoint, and the three bundle kinds), then one
// drain on --jobs workers answers everything. The trace is a pure function
// of the options, so the rendered summary is byte-identical across reruns
// and across --jobs values.
int cmd_serve(const core::Toolkit& toolkit, const Options& options) {
  const bool mixed = options.encoding == "mixed";
  if (!mixed && options.encoding != "xml" && options.encoding != "binary") {
    return fail("unknown encoding: " + options.encoding + " (xml|binary|mixed)");
  }
  if (!options.cache_file.empty()) {
    if (const int rc = load_spec_cache(toolkit, options.cache_file, nullptr); rc != 0) return rc;
  }
  server::ServerConfig config;
  config.shards = options.shards > 0 ? static_cast<unsigned>(options.shards) : 1;
  config.queue_capacity = options.capacity > 0 ? static_cast<std::size_t>(options.capacity) : 1;
  config.workers = options.jobs >= 0 ? static_cast<unsigned>(options.jobs) : 1;
  config.debloat = options.debloat;
  if (options.debloat && toolkit.export_surface_scopes().empty()) {
    // No cache file supplied scopes: the demo executables' closures stand in,
    // so scoped serving is demonstrable from a cold start.
    std::fprintf(stderr, "debloat: %zu demo surface scope(s) installed\n",
                 install_demo_scopes(toolkit));
  }
  server::DeriveServer server(toolkit, config);

  // Smallest library first keeps tiny traces (few requests) cheap.
  const std::vector<std::string> sonames = {"libsimm.so.1", "libsimio.so.1", "libsimc.so.1"};
  std::vector<server::BundleKind> bundles = {server::BundleKind::kProfiling,
                                             server::BundleKind::kSecurity,
                                             server::BundleKind::kRobustness};
  if (options.repair) bundles.push_back(server::BundleKind::kRepair);
  std::vector<server::DeriveServer::Ticket> tickets;
  std::size_t n = 0;
  for (int client = 0; client < options.clients; ++client) {
    for (int request = 0; request < options.requests; ++request, ++n) {
      server::DeriveRequest req;
      req.soname = sonames[n % sonames.size()];
      req.seed = options.seed;
      req.variants = options.variants;
      // Every fourth request asks for a wrapper bundle instead of a spec.
      if (n % 4 == 3) {
        req.endpoint = server::Endpoint::kBundle;
        req.bundle = bundles[(n / 4) % bundles.size()];
      }
      req.format = (mixed ? (n % 2 == 1) : options.encoding == "binary")
                       ? server::WireFormat::kBinary
                       : server::WireFormat::kXml;
      tickets.push_back(server.submit(req.encode()));
    }
  }
  server.drain();

  std::fputs(server.render_summary().c_str(), stdout);
  std::printf("  probes executed this run: %llu\n",
              static_cast<unsigned long long>(toolkit.probes_executed()));
  std::fprintf(stderr, "wall latency us: derive p50=%llu p99=%llu, bundle p50=%llu p99=%llu\n",
               static_cast<unsigned long long>(
                   server.wall_latency_micros(server::Endpoint::kDerive, 0.50)),
               static_cast<unsigned long long>(
                   server.wall_latency_micros(server::Endpoint::kDerive, 0.99)),
               static_cast<unsigned long long>(
                   server.wall_latency_micros(server::Endpoint::kBundle, 0.50)),
               static_cast<unsigned long long>(
                   server.wall_latency_micros(server::Endpoint::kBundle, 0.99)));
  // Per-campaign subsumption-pruning telemetry. Scheduling-dependent (like
  // the wall latencies above): a warm profile learned from whichever campaign
  // finished first shifts the executed/implied split — so stderr only, never
  // the byte-compared summary.
  for (const core::CachedCampaign& entry : toolkit.export_campaigns()) {
    const injector::CampaignEngineStats& engine = entry.result.engine;
    if (engine.args_probed == 0) continue;  // imported from cache: no engine run
    std::fprintf(stderr,
                 "prune %s: %llu implied / %llu executed (hit rate %.1f%%), "
                 "warm-start %.1f%%\n",
                 entry.soname.c_str(), static_cast<unsigned long long>(engine.probes_implied),
                 static_cast<unsigned long long>(engine.probes_executed),
                 engine.implication_hit_rate() * 100.0, engine.warm_start_ratio() * 100.0);
  }

  if (options.stats) {
    // Repair-policy census across everything the drain derived. Stderr like
    // the telemetry above: the byte-compared summary must not depend on
    // whether --repair bundles were in the rotation.
    std::size_t rules = 0;
    std::size_t truncate = 0;
    std::size_t substitute = 0;
    std::size_t safe_return = 0;
    const auto policies = toolkit.export_repair_policies();
    for (const core::CachedRepairPolicy& entry : policies) {
      for (const gen::FunctionRepairPolicy& fn : entry.policy.functions) {
        for (const gen::RepairRule& rule : fn.rules) {
          ++rules;
          switch (rule.action) {
            case simlib::RepairAction::kTruncateWrite: ++truncate; break;
            case simlib::RepairAction::kSubstituteBounded:
            case simlib::RepairAction::kSynthesizeInput: ++substitute; break;
            case simlib::RepairAction::kSafeReturn: ++safe_return; break;
          }
        }
      }
    }
    std::fprintf(stderr,
                 "repair: %zu policy(ies) derived, %zu rule(s): %zu truncate, "
                 "%zu substitute, %zu safe-return\n",
                 policies.size(), rules, truncate, substitute, safe_return);
  }

  if (!options.cache_file.empty()) {
    const auto saved = server::save_cache_file(toolkit, options.cache_file);
    if (!saved.ok()) return fail(saved.error().message);
    std::fprintf(stderr, "spec cache: saved %zu campaign(s) to %s\n",
                 toolkit.export_campaigns().size(), options.cache_file.c_str());
  }

  if (!options.out_path.empty()) {
    // Responses in ticket (submission) order, wrapped in the same stream
    // framing fleet documents use — replayable through fleet::unframe_stream.
    std::vector<std::string> responses;
    responses.reserve(tickets.size());
    for (const auto ticket : tickets) {
      const auto response = server.response(ticket);
      responses.push_back(response ? *response : std::string());
    }
    const int rc = emit(fleet::frame_stream(responses), options.out_path);
    if (rc != 0) return rc;
  }

  const auto stats = server.stats();
  return stats.answered_error == 0 ? 0 : 1;
}

// The virtual-time discrete-event fleet (src/sim): a million cheap host
// tasks on a virtual clock, emitting into the real FleetCollector and
// DeriveServer. The deterministic summary goes to stdout (byte-identical
// for a given --seed at any --jobs/--shards); wall-clock throughput — the
// one nondeterministic number — goes to stderr.
int cmd_simulate(const core::Toolkit& toolkit, const Options& options) {
  const auto traffic = sim::traffic_model_from_name(options.traffic);
  if (!traffic.ok()) return fail(traffic.error().message);
  if (options.hosts <= 0 || options.shards <= 0 || options.jobs < 0 ||
      options.virtual_seconds == 0 || options.capacity <= 0) {
    return fail("simulate: --hosts/--shards/--capacity/--virtual-seconds must be positive");
  }
  sim::SimConfig config;
  config.hosts = static_cast<std::uint32_t>(options.hosts);
  config.virtual_seconds = options.virtual_seconds;
  config.seed = options.seed;
  config.traffic = traffic.value();
  config.shards = static_cast<unsigned>(options.shards);
  config.jobs = static_cast<unsigned>(options.jobs);
  config.debloat = options.debloat;
  if (options.capacity_set) {
    config.collector.queue_capacity = static_cast<std::size_t>(options.capacity);
  }

  const auto start = std::chrono::steady_clock::now();
  sim::FleetSim simulation(toolkit, config);
  const sim::SimStats stats = simulation.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const auto& collector = simulation.collector();
  const auto server_stats = simulation.server().stats();
  // The accounting identities the sim exists to exercise, enforced at ANY
  // scale this command runs at — a million-host run that loses one document
  // exits nonzero.
  if (collector.submitted() !=
      collector.aggregated() + collector.malformed() + collector.dropped() + collector.pending()) {
    return fail("simulate: collector accounting identity violated");
  }
  if (server_stats.submitted != server_stats.answered + server_stats.shed + server_stats.pending) {
    return fail("simulate: derive-server accounting identity violated");
  }
  if (collector.malformed() != 0) {
    return fail("simulate: malformed documents: " + collector.first_error());
  }
  if (stats.responses_error != 0) return fail("simulate: derive responses errored");

  std::fprintf(stderr, "simulated %llu hosts / %llu emissions in %.2fs wall (%.0f hosts/s, %.0f docs/s)\n",
               static_cast<unsigned long long>(stats.hosts),
               static_cast<unsigned long long>(stats.emissions), wall,
               static_cast<double>(stats.hosts) / (wall > 0 ? wall : 1e-9),
               static_cast<double>(stats.emissions) / (wall > 0 ? wall : 1e-9));
  return emit(options.stats ? simulation.render_global_summary() : stats.render(),
              options.out_path);
}

int cmd_demo(const core::Toolkit& toolkit, const Options& options) {
  if (options.positional.empty() || options.positional[0] != "attacks") return usage();
  const auto plain = attacks::run_heap_smash_attack(toolkit.catalog(), {});
  std::printf("unprotected heap attack:\n%s\n", plain.narrative.c_str());
  const auto guarded = attacks::run_heap_smash_attack(
      toolkit.catalog(), {toolkit.security_wrapper("libsimc.so.1").value()});
  std::printf("with security wrapper:\n%s", guarded.narrative.c_str());
  return plain.hijack_succeeded && guarded.blocked_by_wrapper ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  auto options = parse_options(argc, argv);
  if (!options.ok()) return fail(options.error().message);

  core::Toolkit toolkit;
  if (command == "list-libs") return cmd_list_libs(toolkit);
  if (command == "list-functions") return cmd_list_functions(toolkit, options.value());
  if (command == "decls") return cmd_decls(toolkit, options.value());
  if (command == "derive") return cmd_derive(toolkit, options.value());
  if (command == "report") return cmd_report(options.value());
  if (command == "gen-source") return cmd_gen_source(toolkit, options.value());
  if (command == "inspect") return cmd_inspect(toolkit, options.value());
  if (command == "debloat") return cmd_debloat(toolkit, options.value());
  if (command == "demo") return cmd_demo(toolkit, options.value());
  if (command == "dossier") return cmd_dossier(toolkit, options.value());
  if (command == "fleet") return cmd_fleet(toolkit, options.value());
  if (command == "serve") return cmd_serve(toolkit, options.value());
  if (command == "simulate") return cmd_simulate(toolkit, options.value());
  return usage();
}
