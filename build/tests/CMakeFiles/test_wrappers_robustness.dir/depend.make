# Empty dependencies file for test_wrappers_robustness.
# This may be replaced when dependencies are built.
