file(REMOVE_RECURSE
  "CMakeFiles/test_wrappers_robustness.dir/test_wrappers_robustness.cpp.o"
  "CMakeFiles/test_wrappers_robustness.dir/test_wrappers_robustness.cpp.o.d"
  "test_wrappers_robustness"
  "test_wrappers_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrappers_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
