# Empty dependencies file for test_manpage.
# This may be replaced when dependencies are built.
