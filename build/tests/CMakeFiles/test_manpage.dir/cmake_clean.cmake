file(REMOVE_RECURSE
  "CMakeFiles/test_manpage.dir/test_manpage.cpp.o"
  "CMakeFiles/test_manpage.dir/test_manpage.cpp.o.d"
  "test_manpage"
  "test_manpage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manpage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
