file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_sort.dir/test_simlib_sort.cpp.o"
  "CMakeFiles/test_simlib_sort.dir/test_simlib_sort.cpp.o.d"
  "test_simlib_sort"
  "test_simlib_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
