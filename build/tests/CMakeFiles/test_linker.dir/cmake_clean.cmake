file(REMOVE_RECURSE
  "CMakeFiles/test_linker.dir/test_linker.cpp.o"
  "CMakeFiles/test_linker.dir/test_linker.cpp.o.d"
  "test_linker"
  "test_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
