
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_linker.cpp" "tests/CMakeFiles/test_linker.dir/test_linker.cpp.o" "gcc" "tests/CMakeFiles/test_linker.dir/test_linker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/healers_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/healers_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/wrappers/CMakeFiles/healers_wrappers.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/healers_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/injector/CMakeFiles/healers_injector.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/healers_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/typelattice/CMakeFiles/healers_typelattice.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/healers_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/healers_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/simlib/CMakeFiles/healers_simlib.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/healers_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/healers_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
