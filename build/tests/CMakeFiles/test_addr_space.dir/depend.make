# Empty dependencies file for test_addr_space.
# This may be replaced when dependencies are built.
