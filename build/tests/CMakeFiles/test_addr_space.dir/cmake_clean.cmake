file(REMOVE_RECURSE
  "CMakeFiles/test_addr_space.dir/test_addr_space.cpp.o"
  "CMakeFiles/test_addr_space.dir/test_addr_space.cpp.o.d"
  "test_addr_space"
  "test_addr_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addr_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
