# Empty compiler generated dependencies file for test_simlib_stdio.
# This may be replaced when dependencies are built.
