file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_stdio.dir/test_simlib_stdio.cpp.o"
  "CMakeFiles/test_simlib_stdio.dir/test_simlib_stdio.cpp.o.d"
  "test_simlib_stdio"
  "test_simlib_stdio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_stdio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
