file(REMOVE_RECURSE
  "CMakeFiles/test_toolkit_integration.dir/test_toolkit_integration.cpp.o"
  "CMakeFiles/test_toolkit_integration.dir/test_toolkit_integration.cpp.o.d"
  "test_toolkit_integration"
  "test_toolkit_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolkit_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
