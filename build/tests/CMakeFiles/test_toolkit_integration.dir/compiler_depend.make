# Empty compiler generated dependencies file for test_toolkit_integration.
# This may be replaced when dependencies are built.
