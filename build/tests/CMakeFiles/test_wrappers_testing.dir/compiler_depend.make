# Empty compiler generated dependencies file for test_wrappers_testing.
# This may be replaced when dependencies are built.
