file(REMOVE_RECURSE
  "CMakeFiles/test_wrappers_testing.dir/test_wrappers_testing.cpp.o"
  "CMakeFiles/test_wrappers_testing.dir/test_wrappers_testing.cpp.o.d"
  "test_wrappers_testing"
  "test_wrappers_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrappers_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
