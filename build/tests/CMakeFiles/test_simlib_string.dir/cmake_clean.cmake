file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_string.dir/test_simlib_string.cpp.o"
  "CMakeFiles/test_simlib_string.dir/test_simlib_string.cpp.o.d"
  "test_simlib_string"
  "test_simlib_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
