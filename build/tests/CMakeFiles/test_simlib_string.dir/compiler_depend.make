# Empty compiler generated dependencies file for test_simlib_string.
# This may be replaced when dependencies are built.
