file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_ctype_math_misc.dir/test_simlib_ctype_math_misc.cpp.o"
  "CMakeFiles/test_simlib_ctype_math_misc.dir/test_simlib_ctype_math_misc.cpp.o.d"
  "test_simlib_ctype_math_misc"
  "test_simlib_ctype_math_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_ctype_math_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
