# Empty compiler generated dependencies file for test_simlib_ctype_math_misc.
# This may be replaced when dependencies are built.
