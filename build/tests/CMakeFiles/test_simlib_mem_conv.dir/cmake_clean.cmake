file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_mem_conv.dir/test_simlib_mem_conv.cpp.o"
  "CMakeFiles/test_simlib_mem_conv.dir/test_simlib_mem_conv.cpp.o.d"
  "test_simlib_mem_conv"
  "test_simlib_mem_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_mem_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
