# Empty dependencies file for test_simlib_mem_conv.
# This may be replaced when dependencies are built.
