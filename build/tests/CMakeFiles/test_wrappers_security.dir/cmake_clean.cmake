file(REMOVE_RECURSE
  "CMakeFiles/test_wrappers_security.dir/test_wrappers_security.cpp.o"
  "CMakeFiles/test_wrappers_security.dir/test_wrappers_security.cpp.o.d"
  "test_wrappers_security"
  "test_wrappers_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrappers_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
