# Empty compiler generated dependencies file for test_wrappers_security.
# This may be replaced when dependencies are built.
