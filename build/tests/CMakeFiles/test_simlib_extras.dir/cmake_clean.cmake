file(REMOVE_RECURSE
  "CMakeFiles/test_simlib_extras.dir/test_simlib_extras.cpp.o"
  "CMakeFiles/test_simlib_extras.dir/test_simlib_extras.cpp.o.d"
  "test_simlib_extras"
  "test_simlib_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlib_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
