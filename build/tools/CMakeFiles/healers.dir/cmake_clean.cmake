file(REMOVE_RECURSE
  "CMakeFiles/healers.dir/healers_cli.cpp.o"
  "CMakeFiles/healers.dir/healers_cli.cpp.o.d"
  "healers"
  "healers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
