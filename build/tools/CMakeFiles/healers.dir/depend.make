# Empty dependencies file for healers.
# This may be replaced when dependencies are built.
