# Empty compiler generated dependencies file for healers.
# This may be replaced when dependencies are built.
