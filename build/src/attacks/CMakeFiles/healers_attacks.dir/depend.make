# Empty dependencies file for healers_attacks.
# This may be replaced when dependencies are built.
