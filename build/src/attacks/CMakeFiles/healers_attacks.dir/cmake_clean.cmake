file(REMOVE_RECURSE
  "CMakeFiles/healers_attacks.dir/attacks.cpp.o"
  "CMakeFiles/healers_attacks.dir/attacks.cpp.o.d"
  "libhealers_attacks.a"
  "libhealers_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
