file(REMOVE_RECURSE
  "libhealers_attacks.a"
)
