
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attacks.cpp" "src/attacks/CMakeFiles/healers_attacks.dir/attacks.cpp.o" "gcc" "src/attacks/CMakeFiles/healers_attacks.dir/attacks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linker/CMakeFiles/healers_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/healers_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  "/root/repo/build/src/simlib/CMakeFiles/healers_simlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
