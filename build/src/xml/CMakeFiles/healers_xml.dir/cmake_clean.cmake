file(REMOVE_RECURSE
  "CMakeFiles/healers_xml.dir/xml.cpp.o"
  "CMakeFiles/healers_xml.dir/xml.cpp.o.d"
  "libhealers_xml.a"
  "libhealers_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
