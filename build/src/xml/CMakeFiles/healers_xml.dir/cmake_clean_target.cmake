file(REMOVE_RECURSE
  "libhealers_xml.a"
)
