# Empty compiler generated dependencies file for healers_xml.
# This may be replaced when dependencies are built.
