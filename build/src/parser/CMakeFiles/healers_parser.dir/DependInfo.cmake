
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/ctypes.cpp" "src/parser/CMakeFiles/healers_parser.dir/ctypes.cpp.o" "gcc" "src/parser/CMakeFiles/healers_parser.dir/ctypes.cpp.o.d"
  "/root/repo/src/parser/header_parser.cpp" "src/parser/CMakeFiles/healers_parser.dir/header_parser.cpp.o" "gcc" "src/parser/CMakeFiles/healers_parser.dir/header_parser.cpp.o.d"
  "/root/repo/src/parser/manpage.cpp" "src/parser/CMakeFiles/healers_parser.dir/manpage.cpp.o" "gcc" "src/parser/CMakeFiles/healers_parser.dir/manpage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memmodel/CMakeFiles/healers_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
