file(REMOVE_RECURSE
  "CMakeFiles/healers_parser.dir/ctypes.cpp.o"
  "CMakeFiles/healers_parser.dir/ctypes.cpp.o.d"
  "CMakeFiles/healers_parser.dir/header_parser.cpp.o"
  "CMakeFiles/healers_parser.dir/header_parser.cpp.o.d"
  "CMakeFiles/healers_parser.dir/manpage.cpp.o"
  "CMakeFiles/healers_parser.dir/manpage.cpp.o.d"
  "libhealers_parser.a"
  "libhealers_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
