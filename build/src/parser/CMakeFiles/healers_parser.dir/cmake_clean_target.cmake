file(REMOVE_RECURSE
  "libhealers_parser.a"
)
