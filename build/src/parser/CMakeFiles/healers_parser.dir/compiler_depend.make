# Empty compiler generated dependencies file for healers_parser.
# This may be replaced when dependencies are built.
