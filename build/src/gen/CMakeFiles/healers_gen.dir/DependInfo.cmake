
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/composer.cpp" "src/gen/CMakeFiles/healers_gen.dir/composer.cpp.o" "gcc" "src/gen/CMakeFiles/healers_gen.dir/composer.cpp.o.d"
  "/root/repo/src/gen/stats.cpp" "src/gen/CMakeFiles/healers_gen.dir/stats.cpp.o" "gcc" "src/gen/CMakeFiles/healers_gen.dir/stats.cpp.o.d"
  "/root/repo/src/gen/stdgens.cpp" "src/gen/CMakeFiles/healers_gen.dir/stdgens.cpp.o" "gcc" "src/gen/CMakeFiles/healers_gen.dir/stdgens.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/injector/CMakeFiles/healers_injector.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/healers_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/healers_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  "/root/repo/build/src/typelattice/CMakeFiles/healers_typelattice.dir/DependInfo.cmake"
  "/root/repo/build/src/simlib/CMakeFiles/healers_simlib.dir/DependInfo.cmake"
  "/root/repo/build/src/memmodel/CMakeFiles/healers_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/healers_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
