# Empty compiler generated dependencies file for healers_gen.
# This may be replaced when dependencies are built.
