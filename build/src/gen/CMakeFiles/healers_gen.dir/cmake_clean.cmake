file(REMOVE_RECURSE
  "CMakeFiles/healers_gen.dir/composer.cpp.o"
  "CMakeFiles/healers_gen.dir/composer.cpp.o.d"
  "CMakeFiles/healers_gen.dir/stats.cpp.o"
  "CMakeFiles/healers_gen.dir/stats.cpp.o.d"
  "CMakeFiles/healers_gen.dir/stdgens.cpp.o"
  "CMakeFiles/healers_gen.dir/stdgens.cpp.o.d"
  "libhealers_gen.a"
  "libhealers_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
