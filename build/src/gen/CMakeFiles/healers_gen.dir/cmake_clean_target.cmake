file(REMOVE_RECURSE
  "libhealers_gen.a"
)
