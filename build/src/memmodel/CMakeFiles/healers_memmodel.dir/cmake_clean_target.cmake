file(REMOVE_RECURSE
  "libhealers_memmodel.a"
)
