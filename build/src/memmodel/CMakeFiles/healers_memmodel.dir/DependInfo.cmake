
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memmodel/addr_space.cpp" "src/memmodel/CMakeFiles/healers_memmodel.dir/addr_space.cpp.o" "gcc" "src/memmodel/CMakeFiles/healers_memmodel.dir/addr_space.cpp.o.d"
  "/root/repo/src/memmodel/heap.cpp" "src/memmodel/CMakeFiles/healers_memmodel.dir/heap.cpp.o" "gcc" "src/memmodel/CMakeFiles/healers_memmodel.dir/heap.cpp.o.d"
  "/root/repo/src/memmodel/machine.cpp" "src/memmodel/CMakeFiles/healers_memmodel.dir/machine.cpp.o" "gcc" "src/memmodel/CMakeFiles/healers_memmodel.dir/machine.cpp.o.d"
  "/root/repo/src/memmodel/stack.cpp" "src/memmodel/CMakeFiles/healers_memmodel.dir/stack.cpp.o" "gcc" "src/memmodel/CMakeFiles/healers_memmodel.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
