# Empty dependencies file for healers_memmodel.
# This may be replaced when dependencies are built.
