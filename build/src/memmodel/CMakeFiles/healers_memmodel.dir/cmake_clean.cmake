file(REMOVE_RECURSE
  "CMakeFiles/healers_memmodel.dir/addr_space.cpp.o"
  "CMakeFiles/healers_memmodel.dir/addr_space.cpp.o.d"
  "CMakeFiles/healers_memmodel.dir/heap.cpp.o"
  "CMakeFiles/healers_memmodel.dir/heap.cpp.o.d"
  "CMakeFiles/healers_memmodel.dir/machine.cpp.o"
  "CMakeFiles/healers_memmodel.dir/machine.cpp.o.d"
  "CMakeFiles/healers_memmodel.dir/stack.cpp.o"
  "CMakeFiles/healers_memmodel.dir/stack.cpp.o.d"
  "libhealers_memmodel.a"
  "libhealers_memmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_memmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
