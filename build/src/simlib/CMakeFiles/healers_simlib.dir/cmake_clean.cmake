file(REMOVE_RECURSE
  "CMakeFiles/healers_simlib.dir/builders.cpp.o"
  "CMakeFiles/healers_simlib.dir/builders.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/cerrno.cpp.o"
  "CMakeFiles/healers_simlib.dir/cerrno.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_conv.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_conv.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_ctype.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_ctype.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_math.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_math.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_memory.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_memory.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_misc.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_misc.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_sort.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_sort.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_stdio.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_stdio.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/funcs_string.cpp.o"
  "CMakeFiles/healers_simlib.dir/funcs_string.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/helpers.cpp.o"
  "CMakeFiles/healers_simlib.dir/helpers.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/library.cpp.o"
  "CMakeFiles/healers_simlib.dir/library.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/libstate.cpp.o"
  "CMakeFiles/healers_simlib.dir/libstate.cpp.o.d"
  "CMakeFiles/healers_simlib.dir/value.cpp.o"
  "CMakeFiles/healers_simlib.dir/value.cpp.o.d"
  "libhealers_simlib.a"
  "libhealers_simlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_simlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
