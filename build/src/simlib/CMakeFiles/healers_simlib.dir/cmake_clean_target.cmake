file(REMOVE_RECURSE
  "libhealers_simlib.a"
)
