# Empty compiler generated dependencies file for healers_simlib.
# This may be replaced when dependencies are built.
