
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simlib/builders.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/builders.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/builders.cpp.o.d"
  "/root/repo/src/simlib/cerrno.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/cerrno.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/cerrno.cpp.o.d"
  "/root/repo/src/simlib/funcs_conv.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_conv.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_conv.cpp.o.d"
  "/root/repo/src/simlib/funcs_ctype.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_ctype.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_ctype.cpp.o.d"
  "/root/repo/src/simlib/funcs_math.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_math.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_math.cpp.o.d"
  "/root/repo/src/simlib/funcs_memory.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_memory.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_memory.cpp.o.d"
  "/root/repo/src/simlib/funcs_misc.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_misc.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_misc.cpp.o.d"
  "/root/repo/src/simlib/funcs_sort.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_sort.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_sort.cpp.o.d"
  "/root/repo/src/simlib/funcs_stdio.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_stdio.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_stdio.cpp.o.d"
  "/root/repo/src/simlib/funcs_string.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_string.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/funcs_string.cpp.o.d"
  "/root/repo/src/simlib/helpers.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/helpers.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/helpers.cpp.o.d"
  "/root/repo/src/simlib/library.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/library.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/library.cpp.o.d"
  "/root/repo/src/simlib/libstate.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/libstate.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/libstate.cpp.o.d"
  "/root/repo/src/simlib/value.cpp" "src/simlib/CMakeFiles/healers_simlib.dir/value.cpp.o" "gcc" "src/simlib/CMakeFiles/healers_simlib.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memmodel/CMakeFiles/healers_memmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/healers_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
