file(REMOVE_RECURSE
  "CMakeFiles/healers_injector.dir/injector.cpp.o"
  "CMakeFiles/healers_injector.dir/injector.cpp.o.d"
  "CMakeFiles/healers_injector.dir/robust_spec.cpp.o"
  "CMakeFiles/healers_injector.dir/robust_spec.cpp.o.d"
  "libhealers_injector.a"
  "libhealers_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
