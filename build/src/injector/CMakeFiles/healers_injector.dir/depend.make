# Empty dependencies file for healers_injector.
# This may be replaced when dependencies are built.
