file(REMOVE_RECURSE
  "libhealers_injector.a"
)
