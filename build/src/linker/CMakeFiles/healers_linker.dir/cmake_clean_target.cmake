file(REMOVE_RECURSE
  "libhealers_linker.a"
)
