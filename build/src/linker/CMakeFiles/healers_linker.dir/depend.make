# Empty dependencies file for healers_linker.
# This may be replaced when dependencies are built.
