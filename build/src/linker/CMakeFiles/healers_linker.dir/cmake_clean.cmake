file(REMOVE_RECURSE
  "CMakeFiles/healers_linker.dir/executable.cpp.o"
  "CMakeFiles/healers_linker.dir/executable.cpp.o.d"
  "CMakeFiles/healers_linker.dir/process.cpp.o"
  "CMakeFiles/healers_linker.dir/process.cpp.o.d"
  "libhealers_linker.a"
  "libhealers_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
