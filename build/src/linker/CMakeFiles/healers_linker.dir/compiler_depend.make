# Empty compiler generated dependencies file for healers_linker.
# This may be replaced when dependencies are built.
