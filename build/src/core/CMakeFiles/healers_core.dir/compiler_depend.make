# Empty compiler generated dependencies file for healers_core.
# This may be replaced when dependencies are built.
