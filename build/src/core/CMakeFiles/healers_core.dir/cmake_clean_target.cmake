file(REMOVE_RECURSE
  "libhealers_core.a"
)
