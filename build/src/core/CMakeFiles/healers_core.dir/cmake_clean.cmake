file(REMOVE_RECURSE
  "CMakeFiles/healers_core.dir/toolkit.cpp.o"
  "CMakeFiles/healers_core.dir/toolkit.cpp.o.d"
  "libhealers_core.a"
  "libhealers_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
