file(REMOVE_RECURSE
  "libhealers_typelattice.a"
)
