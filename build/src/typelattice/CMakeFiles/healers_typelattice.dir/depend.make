# Empty dependencies file for healers_typelattice.
# This may be replaced when dependencies are built.
