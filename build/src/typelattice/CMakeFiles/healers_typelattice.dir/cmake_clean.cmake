file(REMOVE_RECURSE
  "CMakeFiles/healers_typelattice.dir/testtype.cpp.o"
  "CMakeFiles/healers_typelattice.dir/testtype.cpp.o.d"
  "libhealers_typelattice.a"
  "libhealers_typelattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_typelattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
