file(REMOVE_RECURSE
  "CMakeFiles/healers_profile.dir/collector.cpp.o"
  "CMakeFiles/healers_profile.dir/collector.cpp.o.d"
  "CMakeFiles/healers_profile.dir/report.cpp.o"
  "CMakeFiles/healers_profile.dir/report.cpp.o.d"
  "libhealers_profile.a"
  "libhealers_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
