file(REMOVE_RECURSE
  "libhealers_profile.a"
)
