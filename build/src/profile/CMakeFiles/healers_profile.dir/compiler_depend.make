# Empty compiler generated dependencies file for healers_profile.
# This may be replaced when dependencies are built.
