# Empty compiler generated dependencies file for healers_wrappers.
# This may be replaced when dependencies are built.
