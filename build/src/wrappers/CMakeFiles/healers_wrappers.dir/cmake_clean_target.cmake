file(REMOVE_RECURSE
  "libhealers_wrappers.a"
)
