file(REMOVE_RECURSE
  "CMakeFiles/healers_wrappers.dir/argcheck.cpp.o"
  "CMakeFiles/healers_wrappers.dir/argcheck.cpp.o.d"
  "CMakeFiles/healers_wrappers.dir/errorinject.cpp.o"
  "CMakeFiles/healers_wrappers.dir/errorinject.cpp.o.d"
  "CMakeFiles/healers_wrappers.dir/factories.cpp.o"
  "CMakeFiles/healers_wrappers.dir/factories.cpp.o.d"
  "CMakeFiles/healers_wrappers.dir/heapguard.cpp.o"
  "CMakeFiles/healers_wrappers.dir/heapguard.cpp.o.d"
  "CMakeFiles/healers_wrappers.dir/stackguard.cpp.o"
  "CMakeFiles/healers_wrappers.dir/stackguard.cpp.o.d"
  "libhealers_wrappers.a"
  "libhealers_wrappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_wrappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
