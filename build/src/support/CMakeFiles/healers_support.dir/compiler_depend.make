# Empty compiler generated dependencies file for healers_support.
# This may be replaced when dependencies are built.
