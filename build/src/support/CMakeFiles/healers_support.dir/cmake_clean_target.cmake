file(REMOVE_RECURSE
  "libhealers_support.a"
)
