file(REMOVE_RECURSE
  "CMakeFiles/healers_support.dir/faults.cpp.o"
  "CMakeFiles/healers_support.dir/faults.cpp.o.d"
  "CMakeFiles/healers_support.dir/rng.cpp.o"
  "CMakeFiles/healers_support.dir/rng.cpp.o.d"
  "libhealers_support.a"
  "libhealers_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healers_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
