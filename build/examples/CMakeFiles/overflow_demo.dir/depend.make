# Empty dependencies file for overflow_demo.
# This may be replaced when dependencies are built.
