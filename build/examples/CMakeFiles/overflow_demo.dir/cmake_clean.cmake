file(REMOVE_RECURSE
  "CMakeFiles/overflow_demo.dir/overflow_demo.cpp.o"
  "CMakeFiles/overflow_demo.dir/overflow_demo.cpp.o.d"
  "overflow_demo"
  "overflow_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
