# Empty compiler generated dependencies file for error_injection_demo.
# This may be replaced when dependencies are built.
