file(REMOVE_RECURSE
  "CMakeFiles/error_injection_demo.dir/error_injection_demo.cpp.o"
  "CMakeFiles/error_injection_demo.dir/error_injection_demo.cpp.o.d"
  "error_injection_demo"
  "error_injection_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_injection_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
