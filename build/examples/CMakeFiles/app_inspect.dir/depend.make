# Empty dependencies file for app_inspect.
# This may be replaced when dependencies are built.
