file(REMOVE_RECURSE
  "CMakeFiles/app_inspect.dir/app_inspect.cpp.o"
  "CMakeFiles/app_inspect.dir/app_inspect.cpp.o.d"
  "app_inspect"
  "app_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
