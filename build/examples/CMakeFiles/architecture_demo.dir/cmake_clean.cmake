file(REMOVE_RECURSE
  "CMakeFiles/architecture_demo.dir/architecture_demo.cpp.o"
  "CMakeFiles/architecture_demo.dir/architecture_demo.cpp.o.d"
  "architecture_demo"
  "architecture_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
