# Empty dependencies file for architecture_demo.
# This may be replaced when dependencies are built.
