file(REMOVE_RECURSE
  "CMakeFiles/robust_api_tour.dir/robust_api_tour.cpp.o"
  "CMakeFiles/robust_api_tour.dir/robust_api_tour.cpp.o.d"
  "robust_api_tour"
  "robust_api_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_api_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
