# Empty compiler generated dependencies file for robust_api_tour.
# This may be replaced when dependencies are built.
