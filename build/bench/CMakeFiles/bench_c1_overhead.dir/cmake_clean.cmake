file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_overhead.dir/bench_c1_overhead.cpp.o"
  "CMakeFiles/bench_c1_overhead.dir/bench_c1_overhead.cpp.o.d"
  "bench_c1_overhead"
  "bench_c1_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
