# Empty dependencies file for bench_fig5_profiling.
# This may be replaced when dependencies are built.
