file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_profiling.dir/bench_fig5_profiling.cpp.o"
  "CMakeFiles/bench_fig5_profiling.dir/bench_fig5_profiling.cpp.o.d"
  "bench_fig5_profiling"
  "bench_fig5_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
