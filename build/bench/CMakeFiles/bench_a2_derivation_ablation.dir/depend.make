# Empty dependencies file for bench_a2_derivation_ablation.
# This may be replaced when dependencies are built.
