# Empty dependencies file for bench_fig2_robust_api.
# This may be replaced when dependencies are built.
