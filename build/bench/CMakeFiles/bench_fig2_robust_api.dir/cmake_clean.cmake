file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_robust_api.dir/bench_fig2_robust_api.cpp.o"
  "CMakeFiles/bench_fig2_robust_api.dir/bench_fig2_robust_api.cpp.o.d"
  "bench_fig2_robust_api"
  "bench_fig2_robust_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_robust_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
