# Empty compiler generated dependencies file for bench_d4_security.
# This may be replaced when dependencies are built.
