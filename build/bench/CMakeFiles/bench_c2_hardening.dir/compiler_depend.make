# Empty compiler generated dependencies file for bench_c2_hardening.
# This may be replaced when dependencies are built.
