file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_hardening.dir/bench_c2_hardening.cpp.o"
  "CMakeFiles/bench_c2_hardening.dir/bench_c2_hardening.cpp.o.d"
  "bench_c2_hardening"
  "bench_c2_hardening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
