# Empty dependencies file for bench_fig4_inspection.
# This may be replaced when dependencies are built.
