file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_inspection.dir/bench_fig4_inspection.cpp.o"
  "CMakeFiles/bench_fig4_inspection.dir/bench_fig4_inspection.cpp.o.d"
  "bench_fig4_inspection"
  "bench_fig4_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
