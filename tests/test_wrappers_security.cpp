// Tests for the security wrapper: canary planting and verification across
// the allocation entry points, overflow detection at the first wrapped call
// and at free/realloc, the calloc overflow fix, and the stack guard's
// prefix bound check and postfix integrity sweep.
#include <gtest/gtest.h>

#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {
namespace {

using linker::CallOutcome;
using testbed::I;
using testbed::P;

struct SecurityFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  std::shared_ptr<gen::ComposedWrapper> wrapper =
      make_security_wrapper(testbed::libsimc()).value();

  void SetUp() override { proc->preload(wrapper); }

  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
  mem::Addr wmalloc(std::uint64_t size) {
    return proc->call("malloc", {I(static_cast<std::int64_t>(size))}).as_ptr();
  }
};

TEST_F(SecurityFixture, MallocStillUsableAndRequestedSizeWritable) {
  const mem::Addr p = wmalloc(64);
  ASSERT_NE(p, 0u);
  for (int i = 0; i < 64; ++i) proc->machine().mem().store8(p + i, 0x7F);
  EXPECT_NO_THROW(proc->call("free", {P(p)}));
}

TEST_F(SecurityFixture, OverflowDetectedAtFree) {
  const mem::Addr p = wmalloc(32);
  // Overflow past the requested 32 bytes — clobbers the wrapper's canary
  // (direct store: no wrapped call sees it until free).
  for (int i = 0; i < 40; ++i) proc->machine().mem().store8(p + i, 'X');
  try {
    proc->call("free", {P(p)});
    FAIL() << "expected SimAbort";
  } catch (const SimAbort& abort_) {
    EXPECT_NE(std::string(abort_.reason()).find("heap smashing"), std::string::npos);
  }
}

TEST_F(SecurityFixture, OverflowDetectedAtNextWrappedCallTouchingTheBlock) {
  const mem::Addr p = wmalloc(16);
  // strcpy through the wrapper overflows the block: the postfix canary
  // check on the destination argument fires immediately.
  const auto outcome =
      proc->supervised_call("strcpy", {P(p), P(str("definitely longer than sixteen"))});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kAbort);
  EXPECT_NE(outcome.detail.find("security wrapper"), std::string::npos);
}

TEST_F(SecurityFixture, ExactFitWriteDoesNotTripCanary) {
  const mem::Addr p = wmalloc(8);
  proc->call("strcpy", {P(p), P(str("1234567"))});  // 7 + NUL = 8, canary intact
  EXPECT_NO_THROW(proc->call("free", {P(p)}));
}

TEST_F(SecurityFixture, ReallocVerifiesOldBlockAndReplantsCanary) {
  const mem::Addr p = wmalloc(16);
  const mem::Addr q = proc->call("realloc", {P(p), I(64)}).as_ptr();
  ASSERT_NE(q, 0u);
  for (int i = 0; i < 64; ++i) proc->machine().mem().store8(q + i, 1);
  EXPECT_NO_THROW(proc->call("free", {P(q)}));

  const mem::Addr r = wmalloc(16);
  proc->machine().mem().store8(r + 16, 0xFF);  // clobber canary
  EXPECT_THROW(proc->call("realloc", {P(r), I(64)}), SimAbort);
}

TEST_F(SecurityFixture, ReallocZeroUntracksBlock) {
  const mem::Addr p = wmalloc(16);
  EXPECT_EQ(proc->call("realloc", {P(p), I(0)}).as_ptr(), 0u);
  // Reuse of the address by the base allocator must not inherit tracking
  // side effects: allocate again and free cleanly.
  const mem::Addr q = wmalloc(16);
  EXPECT_NO_THROW(proc->call("free", {P(q)}));
}

TEST_F(SecurityFixture, CallocOverflowBugFixedFromOutside) {
  proc->machine().set_err(0);
  const auto half = static_cast<std::int64_t>((~std::uint64_t{0} / 2) + 1);
  EXPECT_EQ(proc->call("calloc", {I(half), I(2)}).as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kENOMEM);
}

TEST_F(SecurityFixture, CallocStillZeroesAndPlantsCanary) {
  const mem::Addr p = proc->call("calloc", {I(4), I(8)}).as_ptr();
  ASSERT_NE(p, 0u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(proc->machine().mem().load8(p + i), 0u);
  proc->machine().mem().store8(p + 32, 9);  // smash canary
  EXPECT_THROW(proc->call("free", {P(p)}), SimAbort);
}

TEST_F(SecurityFixture, MallocSizeOverflowContained) {
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("malloc", {I(-1)}).as_ptr(), 0u);  // SIZE_MAX + canary wraps
  EXPECT_EQ(proc->machine().err(), simlib::kENOMEM);
}

TEST_F(SecurityFixture, UntrackedAllocationsPassThrough) {
  // Allocations made before the wrapper existed (here: via the raw heap)
  // free normally — the wrapper only verifies what it tracked.
  const mem::Addr raw = proc->machine().heap().malloc(32);
  EXPECT_NO_THROW(proc->call("free", {P(raw)}));
}

TEST_F(SecurityFixture, MemcpyOverflowIntoNeighbourDetected) {
  const mem::Addr a = wmalloc(16);
  (void)wmalloc(16);
  const mem::Addr payload = proc->scratch(64);
  const auto outcome = proc->supervised_call("memcpy", {P(a), P(payload), I(48)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kAbort);
}

// --- stack guard ------------------------------------------------------------

TEST_F(SecurityFixture, StackSmashBlockedBeforeWrite) {
  mem::Machine& m = proc->machine();
  const mem::Frame& frame = m.stack().push("handler", 32, m.register_code("ret"));
  const mem::Addr buf = m.stack().alloc_local(32);
  const std::uint64_t room = frame.ret_slot - buf;
  const std::string payload(room + 4, 'A');
  const mem::Addr input = proc->scratch(payload.size() + 8);
  m.mem().write_cstring(input, payload);
  try {
    proc->call("strcpy", {P(buf), P(input)});
    FAIL() << "expected SimAbort";
  } catch (const SimAbort& abort_) {
    EXPECT_NE(std::string(abort_.reason()).find("stack smashing attempt"), std::string::npos);
  }
  // The return address was never touched.
  EXPECT_EQ(m.mem().load64(frame.ret_slot), frame.saved_ret);
}

TEST_F(SecurityFixture, StackWriteWithinBoundsAllowed) {
  mem::Machine& m = proc->machine();
  m.stack().push("handler", 32, m.register_code("ret"));
  const mem::Addr buf = m.stack().alloc_local(32);
  proc->call("strcpy", {P(buf), P(str("fits easily"))});
  EXPECT_FALSE(m.stack().pop().corrupted());
}

TEST_F(SecurityFixture, PostfixSweepCatchesUnpredictableSmash) {
  // memset's size annotation is arg(3) — evaluable, but aim the write at a
  // buffer NOT in a stack frame while a frame's ret slot is corrupted by
  // other means: the postfix sweep still notices.
  mem::Machine& m = proc->machine();
  const mem::Frame& frame = m.stack().push("handler", 32, m.register_code("ret"));
  m.mem().store64(frame.ret_slot, 0x4141414141414141ULL);
  const mem::Addr unrelated = proc->scratch(16);
  const auto outcome = proc->supervised_call("memset", {P(unrelated), I(0), I(16)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kAbort);
  EXPECT_NE(outcome.detail.find("stack smashing detected"), std::string::npos);
}

TEST_F(SecurityFixture, HeapWritesDoNotTriggerStackGuard) {
  const mem::Addr p = wmalloc(64);
  EXPECT_NO_THROW(proc->call("strcpy", {P(p), P(str("heap write"))}));
}

TEST(SecurityWrapperIsolation, OneWrapperPerProcessStateIsIndependent) {
  // Two processes with two wrappers: canaries of one never interfere with
  // the other (fresh HeapGuardState per factory call).
  auto proc1 = testbed::make_process("p1");
  auto proc2 = testbed::make_process("p2");
  proc1->preload(make_security_wrapper(testbed::libsimc()).value());
  proc2->preload(make_security_wrapper(testbed::libsimc()).value());
  const mem::Addr a = proc1->call("malloc", {I(32)}).as_ptr();
  const mem::Addr b = proc2->call("malloc", {I(32)}).as_ptr();
  EXPECT_NO_THROW(proc1->call("free", {P(a)}));
  EXPECT_NO_THROW(proc2->call("free", {P(b)}));
}

TEST(SecurityWrapperSource, EmitsCanaryAndStackGuardCalls) {
  gen::WrapperBuilder builder("security-src");
  builder.add(gen::prototype_gen())
      .add(heap_canary_gen())
      .add(stack_guard_gen())
      .add(gen::caller_gen());
  const auto source = builder.emit_library_source(testbed::libsimc());
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source.value().find("a1 += CANARY_SIZE;"), std::string::npos);
  EXPECT_NE(source.value().find("healers_canary_verify(a1);"), std::string::npos);
  EXPECT_NE(source.value().find("healers_stack_bound_check(a1, cstrlen(2)+1);"),
            std::string::npos);
  EXPECT_NE(source.value().find("healers_stack_integrity_sweep();"), std::string::npos);
  EXPECT_NE(source.value().find("errno = ENOMEM"), std::string::npos);  // calloc fix
}

}  // namespace
}  // namespace healers::wrappers
