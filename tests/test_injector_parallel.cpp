// Tests for the parallel snapshot-based campaign engine: the determinism
// guarantee (bit-identical specs for every jobs value and either testbed
// reset mode), the snapshot/restore machinery it is built on, the kNotRun
// probe outcome, and the toolkit's campaign cache.
#include <gtest/gtest.h>

#include "core/toolkit.hpp"
#include "injector/injector.hpp"
#include "testbed.hpp"
#include "xml/xml.hpp"

namespace healers::injector {
namespace {

struct ParallelCampaignFixture : ::testing::Test {
  linker::LibraryCatalog catalog;

  ParallelCampaignFixture() {
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
  }

  std::string campaign_xml(const simlib::SharedLibrary& lib, const InjectorConfig& config) {
    FaultInjector injector(catalog, config);
    auto campaign = injector.run_campaign(lib);
    EXPECT_TRUE(campaign.ok()) << (campaign.ok() ? "" : campaign.error().message);
    EXPECT_GT(injector.probes_executed(), 0u);
    return xml::serialize(campaign.value().to_xml());
  }
};

// The core guarantee: the serialized RobustSpec XML is byte-identical no
// matter how many workers probed — scheduling cannot leak into results.
TEST_F(ParallelCampaignFixture, CampaignXmlByteIdenticalAcrossJobCounts) {
  InjectorConfig config;
  config.seed = 7;
  config.variants = 2;

  config.jobs = 1;
  const std::string one = campaign_xml(testbed::libsimio(), config);
  config.jobs = 2;
  const std::string two = campaign_xml(testbed::libsimio(), config);
  config.jobs = 8;
  const std::string eight = campaign_xml(testbed::libsimio(), config);

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// Rewinding a worker's testbed to its post-load snapshot must be
// indistinguishable from building a fresh process for every probe — the
// restore also rewinds the address-space allocation cursor, so even the
// simulated addresses embedded in failure details match byte for byte.
TEST_F(ParallelCampaignFixture, SnapshotResetMatchesFreshProcessByteForByte) {
  InjectorConfig config;
  config.seed = 7;
  config.variants = 2;

  config.snapshot_reset = true;
  const std::string snapshot = campaign_xml(testbed::libsimio(), config);
  config.snapshot_reset = false;
  const std::string fresh = campaign_xml(testbed::libsimio(), config);
  EXPECT_EQ(snapshot, fresh);

  // Both knobs at once: parallel workers over fresh processes.
  config.jobs = 8;
  const std::string parallel_fresh = campaign_xml(testbed::libsimio(), config);
  EXPECT_EQ(snapshot, parallel_fresh);
}

TEST_F(ParallelCampaignFixture, ProbeFunctionIdenticalAcrossJobCounts) {
  InjectorConfig config;
  config.seed = 11;
  FaultInjector sequential(catalog, config);
  config.jobs = 4;
  FaultInjector parallel(catalog, config);

  auto a = sequential.probe_function(testbed::libsimc(), "strcpy");
  auto b = parallel.probe_function(testbed::libsimc(), "strcpy");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(xml::serialize(a.value().to_xml()), xml::serialize(b.value().to_xml()));
}

TEST_F(ParallelCampaignFixture, NotRunOutcomeIsNotARobustnessFailure) {
  linker::CallOutcome outcome;
  outcome.kind = linker::CallOutcome::Kind::kNotRun;
  outcome.detail = "no test case 9";
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.to_string(), "not run: no test case 9");
}

// --- the snapshot/restore machinery the engine rests on ---------------------

TEST(MachineSnapshot, RoundTripRestoresHeapStackErrnoAndCounters) {
  mem::Machine machine;
  const mem::Addr before = machine.heap().malloc(64);
  ASSERT_NE(before, 0u);
  machine.heap().free(before);
  machine.set_err(7);
  machine.tick(100);

  const mem::Machine::Snapshot snap = machine.snapshot();
  const mem::HeapStats stats_at_snap = machine.heap().stats();
  const std::uint64_t steps_at_snap = machine.steps();

  // Disturb everything the snapshot covers.
  const mem::Addr noise = machine.heap().malloc(1024);
  machine.mem().store64(noise, 0xdeadbeef);
  machine.stack().push("victim", 32, 0x4000);
  machine.set_err(99);
  machine.tick(5000);
  machine.intern_string("post-snapshot literal");

  machine.restore(snap);

  EXPECT_EQ(machine.err(), 7);
  EXPECT_EQ(machine.steps(), steps_at_snap);
  EXPECT_EQ(machine.stack().depth(), 0u);
  EXPECT_EQ(machine.heap().stats().allocations, stats_at_snap.allocations);
  EXPECT_EQ(machine.heap().stats().chunks_in_use, stats_at_snap.chunks_in_use);
  EXPECT_EQ(machine.heap().stats().bytes_in_use, stats_at_snap.bytes_in_use);
  // The decisive property: allocation replays bit-identically after restore.
  EXPECT_EQ(machine.heap().malloc(64), before);
}

TEST(ProcessSnapshot, RoundTripRestoresStdioErrnoAndAddressLayout) {
  auto process = testbed::make_process();
  process->state().stdin_content = "hello\n";

  const linker::Process::Snapshot snap = process->snapshot();
  const mem::Addr probe_addr = process->alloc_cstring("probe");
  process->restore(snap);

  // Disturb heap, stdio state, errno, and the call counter.
  (void)process->alloc_cstring("leaked allocation");
  process->state().stdout_capture += "noise";
  process->state().stdin_pos = 3;
  process->state().fs.put("/tmp/scratch", "contents");
  process->machine().set_err(42);
  const auto outcome = process->supervised_call(
      "puts", {testbed::P(process->rodata_cstring("shout"))});
  EXPECT_EQ(outcome.kind, linker::CallOutcome::Kind::kReturned);

  process->restore(snap);

  EXPECT_EQ(process->machine().err(), 0);
  EXPECT_TRUE(process->state().stdout_capture.empty());
  EXPECT_EQ(process->state().stdin_content, "hello\n");
  EXPECT_EQ(process->state().stdin_pos, 0u);
  EXPECT_FALSE(process->state().fs.exists("/tmp/scratch"));
  EXPECT_EQ(process->calls_dispatched(), snap.calls_dispatched);
  // Identical address layout after restore: the same allocation lands at
  // the same simulated address it got the first time around.
  EXPECT_EQ(process->alloc_cstring("probe"), probe_addr);
}

TEST(ProcessSnapshot, RestoreRejectsShrunkenLoadSet) {
  linker::Process process("snapshot-guard");
  process.load_library(&testbed::libsimc());
  process.load_library(&testbed::libsimm());
  const auto snap = process.snapshot();
  linker::Process smaller("snapshot-guard-2");
  smaller.load_library(&testbed::libsimc());
  EXPECT_THROW(smaller.restore(snap), std::logic_error);
}

// --- the toolkit's campaign cache -------------------------------------------

TEST(ToolkitCampaignCache, SecondDeriveRunsZeroProbes) {
  core::Toolkit toolkit;
  InjectorConfig config;
  config.seed = 5;

  auto first = toolkit.derive_robust_api("libsimm.so.1", config);
  ASSERT_TRUE(first.ok()) << first.error().message;
  const std::uint64_t probes_after_first = toolkit.probes_executed();
  EXPECT_GT(probes_after_first, 0u);

  auto second = toolkit.derive_robust_api("libsimm.so.1", config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(toolkit.probes_executed(), probes_after_first);  // pure cache hit
  EXPECT_EQ(xml::serialize(first.value().to_xml()), xml::serialize(second.value().to_xml()));
}

TEST(ToolkitCampaignCache, ResultAffectingConfigChangesMiss) {
  core::Toolkit toolkit;
  InjectorConfig config;
  config.seed = 5;

  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  const std::uint64_t after_first = toolkit.probes_executed();

  config.seed = 6;  // different seed: different campaign, must re-probe
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  const std::uint64_t after_seed_change = toolkit.probes_executed();
  EXPECT_GT(after_seed_change, after_first);

  config.variants = 4;  // more fuzz variants: more probes, must re-probe
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  EXPECT_GT(toolkit.probes_executed(), after_seed_change);
}

TEST(ToolkitCampaignCache, SchedulingKnobsShareOneCacheSlot) {
  core::Toolkit toolkit;
  InjectorConfig config;
  config.seed = 5;
  config.jobs = 1;

  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  const std::uint64_t after_first = toolkit.probes_executed();

  // jobs and snapshot_reset cannot change results (enforced by the
  // determinism tests above), so they are not part of the cache key.
  config.jobs = 8;
  config.snapshot_reset = false;
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  EXPECT_EQ(toolkit.probes_executed(), after_first);
}

}  // namespace
}  // namespace healers::injector
