// Unit tests for the Ballista-style type lattice: chain composition per
// type class, the concrete probe values a factory fabricates, and the
// safest-value construction used to hold non-injected arguments steady.
#include <gtest/gtest.h>

#include "parser/manpage.hpp"
#include "testbed.hpp"
#include "typelattice/testtype.hpp"

namespace healers::lattice {
namespace {

using parser::TypeClass;
using testbed::P;

struct LatticeFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  Rng rng{42};
  ValueFactory factory{*proc, rng};

  parser::ManPage page(const std::string& symbol) {
    const simlib::Symbol* sym = testbed::libsimc().find(symbol);
    if (sym == nullptr) sym = testbed::libsimio().find(symbol);
    return parser::parse_manpage(sym->manpage).value();
  }
};

TEST_F(LatticeFixture, ChainsCoverEachClass) {
  EXPECT_EQ(test_types_for(TypeClass::kPointer).size(), 10u);
  EXPECT_EQ(test_types_for(TypeClass::kIntegral).size(), 8u);
  EXPECT_EQ(test_types_for(TypeClass::kFloating).size(), 6u);
  EXPECT_TRUE(test_types_for(TypeClass::kVoid).empty());
}

TEST_F(LatticeFixture, ChainsAreDisjointByClass) {
  for (const TestTypeId id : test_types_for(TypeClass::kPointer)) {
    for (const TestTypeId other : test_types_for(TypeClass::kIntegral)) {
      EXPECT_NE(id, other);
    }
  }
}

TEST_F(LatticeFixture, EveryTestTypeHasANameAndCases) {
  for (const TypeClass cls : {TypeClass::kPointer, TypeClass::kIntegral, TypeClass::kFloating}) {
    for (const TestTypeId id : test_types_for(cls)) {
      EXPECT_NE(to_string(id), "?");
      const auto cases = factory.cases_of(id, 2);
      EXPECT_FALSE(cases.empty()) << to_string(id);
      for (const TestCase& test : cases) {
        EXPECT_EQ(test.id, id);
        EXPECT_FALSE(test.note.empty());
      }
    }
  }
}

TEST_F(LatticeFixture, NullCaseIsNull) {
  const auto cases = factory.cases_of(TestTypeId::kNull, 1);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].value.as_ptr(), 0u);
}

TEST_F(LatticeFixture, WildPointerCasesAreUnmapped) {
  for (const TestCase& test : factory.cases_of(TestTypeId::kWildPtr, 1)) {
    EXPECT_FALSE(proc->machine().mem().accessible(test.value.as_ptr(), 1, mem::Perm::kRead))
        << test.note;
  }
}

TEST_F(LatticeFixture, FreedPointerCaseIsDeadHeapMemory) {
  const auto cases = factory.cases_of(TestTypeId::kFreedPtr, 1);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_FALSE(proc->machine().heap().is_live(cases[0].value.as_ptr()));
}

TEST_F(LatticeFixture, ReadOnlyCaseIsReadableNotWritable) {
  const auto cases = factory.cases_of(TestTypeId::kReadOnlyCString, 1);
  ASSERT_EQ(cases.size(), 1u);
  const mem::Addr p = cases[0].value.as_ptr();
  EXPECT_TRUE(proc->machine().mem().accessible(p, 1, mem::Perm::kRead));
  EXPECT_FALSE(proc->machine().mem().accessible(p, 1, mem::Perm::kWrite));
}

TEST_F(LatticeFixture, UnterminatedCaseHasNoNulInRegion) {
  const auto cases = factory.cases_of(TestTypeId::kUntermBuf, 1);
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(parser::safe_cstrlen(proc->machine().mem(), cases[0].value.as_ptr(), 1 << 20),
            std::nullopt);
}

TEST_F(LatticeFixture, TinyWritableIsExactlyFourBytes) {
  const auto cases = factory.cases_of(TestTypeId::kTinyWritable, 1);
  const mem::Addr p = cases[0].value.as_ptr();
  EXPECT_TRUE(proc->machine().mem().accessible(p, 4, mem::Perm::kWrite));
  EXPECT_FALSE(proc->machine().mem().accessible(p, 5, mem::Perm::kWrite));
}

TEST_F(LatticeFixture, ValidCStringIsTerminatedAndLive) {
  const auto cases = factory.cases_of(TestTypeId::kValidCString, 1);
  const mem::Addr p = cases[0].value.as_ptr();
  EXPECT_TRUE(proc->machine().heap().is_live(p));
  EXPECT_TRUE(parser::safe_cstrlen(proc->machine().mem(), p, 1 << 20).has_value());
}

TEST_F(LatticeFixture, VariantsControlFuzzyCaseCount) {
  EXPECT_LT(factory.cases_of(TestTypeId::kIntAsPtr, 1).size(),
            factory.cases_of(TestTypeId::kIntAsPtr, 5).size());
}

TEST_F(LatticeFixture, IntegralExtremesIncludeBoundaries) {
  bool saw_int64_min = false;
  for (const TestCase& test : factory.cases_of(TestTypeId::kIntMin, 1)) {
    if (test.value.as_int() == static_cast<std::int64_t>(0x8000000000000000ULL)) {
      saw_int64_min = true;
    }
  }
  EXPECT_TRUE(saw_int64_min);
}

TEST_F(LatticeFixture, SafeValueForPointerIsGenerousBuffer) {
  const auto page_copy = page("strcpy");
  const simlib::SimValue v = factory.safe_value(page_copy, 1);
  EXPECT_TRUE(proc->machine().mem().accessible(v.as_ptr(), 512, mem::Perm::kWrite));
}

TEST_F(LatticeFixture, SafeValueForFileIsLiveStream) {
  const auto page_copy = page("fclose");
  const simlib::SimValue v = factory.safe_value(page_copy, 1);
  // Validate exactly as the library would: magic + live slot.
  EXPECT_EQ(proc->machine().mem().load64(v.as_ptr()), simlib::kFileMagic);
}

TEST_F(LatticeFixture, SafeValueForHeapPtrIsLiveAllocation) {
  const auto page_copy = page("free");
  const simlib::SimValue v = factory.safe_value(page_copy, 1);
  EXPECT_TRUE(proc->machine().heap().is_live(v.as_ptr()));
}

TEST_F(LatticeFixture, SafeValueRespectsAnnotatedRange) {
  const auto page_copy = page("isalpha");  // ARG 1 RANGE -128 255
  const simlib::SimValue v = factory.safe_value(page_copy, 1);
  EXPECT_GE(v.as_int(), -128);
  EXPECT_LE(v.as_int(), 255);
}

TEST_F(LatticeFixture, SafeValueForBaseParameterIsTen) {
  const auto page_copy = page("strtol");
  EXPECT_EQ(factory.safe_value(page_copy, 3).as_int(), 10);
}

TEST_F(LatticeFixture, DeterministicUnderFixedSeed) {
  auto proc2 = testbed::make_process();
  Rng rng2{42};
  ValueFactory factory2{*proc2, rng2};
  const auto a = factory.cases_of(TestTypeId::kIntAsPtr, 3);
  const auto b = factory2.cases_of(TestTypeId::kIntAsPtr, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value.as_ptr(), b[i].value.as_ptr()) << i;
  }
}

}  // namespace
}  // namespace healers::lattice
