// Tests for the fleet telemetry subsystem: wire codec, quantile sketch,
// sharded collector (determinism + loss accounting), and simulator.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "fleet/simulator.hpp"
#include "fleet/sketch.hpp"
#include "fleet/wire.hpp"
#include "profile/report.hpp"
#include "xml/xml.hpp"

namespace healers::fleet {
namespace {

const core::Toolkit& toolkit() {
  static const core::Toolkit instance;
  return instance;
}

profile::ProfileReport sample_report() {
  profile::ProfileReport report;
  report.process = "host00/app000";
  report.wrapper = "profiling-wrapper";
  profile::FunctionProfile strlen_fn;
  strlen_fn.symbol = "strlen";
  strlen_fn.calls = 12;
  strlen_fn.cycles = 480;
  profile::FunctionProfile wctrans_fn;
  wctrans_fn.symbol = "wctrans";
  wctrans_fn.calls = 3;
  wctrans_fn.cycles = 90;
  wctrans_fn.contained = 1;
  wctrans_fn.errno_counts[22] = 3;  // EINVAL
  report.functions = {strlen_fn, wctrans_fn};
  report.global_errnos[22] = 3;
  return report;
}

std::string canonical(const profile::ProfileReport& report) {
  return xml::serialize(profile::to_xml(report));
}

// --- wire format ---------------------------------------------------------

TEST(FleetWire, BinaryRoundTripPreservesReport) {
  const profile::ProfileReport report = sample_report();
  const std::string payload = encode_binary(report);
  ASSERT_TRUE(is_binary_document(payload));
  auto back = decode_binary(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(canonical(back.value()), canonical(report));
}

TEST(FleetWire, BinaryAndXmlDecodeToTheSameReport) {
  const profile::ProfileReport report = sample_report();
  auto from_binary = decode_document(encode_binary(report));
  auto from_xml_doc = decode_document(canonical(report));
  ASSERT_TRUE(from_binary.ok());
  ASSERT_TRUE(from_xml_doc.ok());
  EXPECT_EQ(canonical(from_binary.value()), canonical(from_xml_doc.value()));
}

TEST(FleetWire, EmptyReportRoundTrips) {
  profile::ProfileReport report;
  report.process = "idle";
  report.wrapper = "w";
  auto back = decode_binary(encode_binary(report));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().functions.size(), 0u);
  EXPECT_EQ(back.value().process, "idle");
}

TEST(FleetWire, RejectsTruncatedAndTrailingAndBadMagic) {
  const std::string payload = encode_binary(sample_report());
  for (std::size_t cut : {payload.size() - 1, payload.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(decode_binary(payload.substr(0, cut)).ok()) << "cut at " << cut;
  }
  EXPECT_FALSE(decode_binary(payload + "x").ok());
  EXPECT_FALSE(decode_binary("XXXX" + payload.substr(4)).ok());
  EXPECT_FALSE(decode_document("not xml, not binary").ok());
  EXPECT_FALSE(decode_document("<campaign/>").ok());
}

TEST(FleetWire, StreamFramingRoundTrips) {
  const std::vector<std::string> docs = {encode_binary(sample_report()),
                                         canonical(sample_report()), ""};
  auto back = unframe_stream(frame_stream(docs));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), docs);
  EXPECT_FALSE(unframe_stream("garbage").ok());
  const std::string stream = frame_stream(docs);
  EXPECT_FALSE(unframe_stream(stream.substr(0, stream.size() - 2)).ok());
  EXPECT_FALSE(unframe_stream(stream + "x").ok());
}

// --- quantile sketch -----------------------------------------------------

TEST(FleetSketch, ExactForSmallValues) {
  CycleSketch sketch;
  for (std::uint64_t v = 0; v < 32; ++v) sketch.add(v);
  EXPECT_EQ(sketch.total(), 32u);
  EXPECT_EQ(sketch.quantile(0.0), 0u);
  EXPECT_EQ(sketch.quantile(1.0), 31u);
  EXPECT_EQ(sketch.quantile(0.5), 15u);
}

TEST(FleetSketch, BucketRelativeErrorIsBounded) {
  for (std::uint64_t v : {100ull, 12345ull, 1ull << 20, 987654321ull, 1ull << 40}) {
    const int idx = CycleSketch::bucket_index(v);
    const std::uint64_t floor = CycleSketch::bucket_floor(idx);
    EXPECT_LE(floor, v);
    EXPECT_LT(CycleSketch::bucket_floor(idx), CycleSketch::bucket_floor(idx + 1));
    // <= 2^-kSubBits relative error from the bucket floor.
    EXPECT_LE(static_cast<double>(v - floor) / static_cast<double>(v),
              1.0 / CycleSketch::kSubBuckets + 1e-12);
  }
}

TEST(FleetSketch, MergeIsOrderIndependent) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.push_back(i * i % 100000);
  CycleSketch bulk;
  for (const auto v : values) bulk.add(v);
  // Partition into 3 shards round-robin, merge in reverse order.
  CycleSketch shards[3];
  for (std::size_t i = 0; i < values.size(); ++i) shards[i % 3].add(values[i]);
  CycleSketch merged;
  for (int s = 2; s >= 0; --s) merged.merge(shards[s]);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(merged.quantile(q), bulk.quantile(q)) << "q=" << q;
  }
}

// --- collector -----------------------------------------------------------

std::vector<std::string> small_fleet() {
  SimulatorConfig config;
  config.hosts = 4;
  config.docs_per_host = 6;
  return FleetSimulator(toolkit(), config).run();
}

TEST(FleetCollectorTest, SummaryIsByteIdenticalAcrossShardAndWorkerCounts) {
  const auto docs = small_fleet();
  std::string reference;
  for (const unsigned shards : {1u, 3u, 8u}) {
    for (const unsigned workers : {1u, 4u}) {
      CollectorConfig config;
      config.shards = shards;
      config.workers = workers;
      config.batch_size = 5;
      FleetCollector collector(config);
      for (const auto& doc : docs) ASSERT_TRUE(collector.submit(doc));
      collector.flush();
      EXPECT_EQ(collector.aggregated(), docs.size());
      const std::string summary = collector.render_summary();
      if (reference.empty()) {
        reference = summary;
      } else {
        EXPECT_EQ(summary, reference) << "shards=" << shards << " workers=" << workers;
      }
    }
  }
  EXPECT_NE(reference.find("fleet summary"), std::string::npos);
  EXPECT_NE(reference.find("strlen"), std::string::npos);
}

TEST(FleetCollectorTest, TotalsMatchAPerDocumentRescan) {
  const auto docs = small_fleet();
  CollectorConfig config;
  config.shards = 5;
  config.workers = 2;
  FleetCollector collector(config);
  for (const auto& doc : docs) collector.submit(doc);
  collector.flush();
  const FleetSnapshot snap = collector.snapshot();

  // Reference: decode every document independently and fold sequentially.
  std::map<std::string, profile::FunctionProfile> expected;
  std::uint64_t expected_calls = 0;
  for (const auto& doc : docs) {
    auto report = decode_document(doc);
    ASSERT_TRUE(report.ok());
    for (const auto& fn : report.value().functions) {
      profile::FunctionProfile& agg = expected[fn.symbol];
      agg.calls += fn.calls;
      agg.cycles += fn.cycles;
      agg.contained += fn.contained;
      for (const auto& [err, count] : fn.errno_counts) agg.errno_counts[err] += count;
      expected_calls += fn.calls;
    }
  }
  ASSERT_EQ(snap.functions.size(), expected.size());
  std::uint64_t calls = 0;
  for (const auto& [symbol, fn] : snap.functions) {
    ASSERT_TRUE(expected.count(symbol)) << symbol;
    EXPECT_EQ(fn.calls, expected[symbol].calls) << symbol;
    EXPECT_EQ(fn.cycles, expected[symbol].cycles) << symbol;
    EXPECT_EQ(fn.errno_counts, expected[symbol].errno_counts) << symbol;
    calls += fn.calls;
  }
  EXPECT_EQ(calls, expected_calls);
}

TEST(FleetCollectorTest, EveryDocumentIsAggregatedOrCounted) {
  const auto docs = small_fleet();  // 24 documents
  CollectorConfig config;
  config.shards = 2;
  config.queue_capacity = 5;  // 2 shards x 5 = 10 queue slots
  FleetCollector collector(config);
  std::uint64_t accepted = 0;
  for (const auto& doc : docs) accepted += collector.submit(doc) ? 1 : 0;
  // Round-robin placement: exactly the queue capacity is admitted.
  EXPECT_EQ(accepted, 10u);
  EXPECT_EQ(collector.dropped(), docs.size() - 10);
  EXPECT_EQ(collector.pending(), 10u);
  EXPECT_EQ(collector.submitted(),
            collector.aggregated() + collector.malformed() + collector.dropped() +
                collector.pending());
  collector.flush();
  EXPECT_EQ(collector.aggregated(), 10u);
  EXPECT_EQ(collector.pending(), 0u);
  EXPECT_EQ(collector.submitted(),
            collector.aggregated() + collector.malformed() + collector.dropped());
}

// The shard-drain race (ISSUE 7 audit): flush() claims ingest shards one at
// a time, so a producer racing the claim loop can land a payload in an
// already-claimed shard. That payload must surface as pending(), never be
// lost — the accounting identity has to hold at the first quiescent point
// for every shard/worker/policy combination.
TEST(FleetCollectorTest, AccountingSurvivesSubmitDuringFlushRaces) {
  for (const auto policy : {OverflowPolicy::kDropNewest, OverflowPolicy::kDropOldest}) {
    CollectorConfig config;
    config.shards = 3;
    config.queue_capacity = 7;  // small enough that the race also drops
    config.workers = 4;
    config.policy = policy;
    FleetCollector collector(config);
    const std::string doc = encode_binary(sample_report());

    constexpr int kProducers = 4;
    constexpr int kDocsPerProducer = 200;
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&collector, &doc] {
        for (int i = 0; i < kDocsPerProducer; ++i) collector.submit(doc);
      });
    }
    // Flush continuously while the producers hammer the shards.
    for (int i = 0; i < 50; ++i) collector.flush();
    for (auto& producer : producers) producer.join();
    collector.flush();  // quiescent point: nothing can stay pending now

    EXPECT_EQ(collector.submitted(), static_cast<std::uint64_t>(kProducers * kDocsPerProducer));
    EXPECT_EQ(collector.submitted(), collector.aggregated() + collector.malformed() +
                                         collector.dropped() + collector.pending());
    EXPECT_EQ(collector.pending(), 0u);
    EXPECT_EQ(collector.malformed(), 0u);
  }
}

TEST(FleetCollectorTest, DropOldestEvictsHeadAndCounts) {
  CollectorConfig config;
  config.shards = 1;
  config.queue_capacity = 2;
  config.policy = OverflowPolicy::kDropOldest;
  FleetCollector collector(config);
  const std::string doc = encode_binary(sample_report());
  EXPECT_TRUE(collector.submit(doc));
  EXPECT_TRUE(collector.submit(doc));
  EXPECT_TRUE(collector.submit(doc));  // evicts the oldest, still admitted
  EXPECT_EQ(collector.dropped(), 1u);
  EXPECT_EQ(collector.pending(), 2u);
  collector.flush();
  EXPECT_EQ(collector.aggregated(), 2u);
  EXPECT_EQ(collector.submitted(),
            collector.aggregated() + collector.malformed() + collector.dropped());
}

TEST(FleetCollectorTest, MalformedDocumentsAreCountedNotAggregated) {
  FleetCollector collector;
  collector.submit("<profile"); // truncated XML
  collector.submit(std::string(kBinaryMagic) + "\x01");  // truncated binary
  collector.submit("<campaign/>");  // well-formed XML, wrong document kind
  collector.submit(encode_binary(sample_report()));
  collector.flush();
  EXPECT_EQ(collector.malformed(), 3u);
  EXPECT_EQ(collector.aggregated(), 1u);
  EXPECT_FALSE(collector.first_error().empty());
  const FleetSnapshot snap = collector.snapshot();
  EXPECT_EQ(snap.functions.size(), 2u);  // only the good document's functions
  EXPECT_EQ(snap.submitted, snap.aggregated + snap.malformed + snap.dropped + snap.pending);
}

TEST(FleetCollectorTest, EmptyCollectorRendersCleanly) {
  FleetCollector collector;
  collector.flush();  // no-op
  const std::string summary = collector.render_summary();
  EXPECT_NE(summary.find("0 aggregated"), std::string::npos);
  EXPECT_NE(summary.find("p50=0"), std::string::npos);
}

TEST(FleetCollectorTest, SketchQuantilesAreMonotone) {
  const auto docs = small_fleet();
  FleetCollector collector;
  for (const auto& doc : docs) collector.submit(doc);
  collector.flush();
  const FleetSnapshot snap = collector.snapshot();
  EXPECT_GT(snap.cycles_p50, 0u);
  EXPECT_LE(snap.cycles_p50, snap.cycles_p95);
  EXPECT_LE(snap.cycles_p95, snap.cycles_p99);
}

// --- simulator -----------------------------------------------------------

TEST(FleetSimulatorTest, DeterministicAcrossRunsAndJobCounts) {
  SimulatorConfig config;
  config.hosts = 3;
  config.docs_per_host = 4;
  const auto once = FleetSimulator(toolkit(), config).run();
  const auto twice = FleetSimulator(toolkit(), config).run();
  EXPECT_EQ(once, twice);
  config.jobs = 4;
  const auto parallel = FleetSimulator(toolkit(), config).run();
  EXPECT_EQ(once, parallel);
  EXPECT_EQ(once.size(), 12u);
}

TEST(FleetSimulatorTest, MixedEncodingEmitsBothFormats) {
  SimulatorConfig config;
  config.hosts = 2;
  config.docs_per_host = 4;
  const auto docs = FleetSimulator(toolkit(), config).run();
  std::size_t binary = 0;
  for (const auto& doc : docs) binary += is_binary_document(doc) ? 1 : 0;
  EXPECT_GT(binary, 0u);
  EXPECT_LT(binary, docs.size());
  for (const auto& doc : docs) EXPECT_TRUE(decode_document(doc).ok());
}

TEST(FleetSimulatorTest, DocumentsCarryPerRunProfiles) {
  SimulatorConfig config;
  config.hosts = 1;
  config.docs_per_host = 3;
  config.encoding = SimulatorConfig::Encoding::kBinary;
  const auto docs = FleetSimulator(toolkit(), config).run();
  ASSERT_EQ(docs.size(), 3u);
  for (unsigned d = 0; d < docs.size(); ++d) {
    auto report = decode_document(docs[d]);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().process, FleetSimulator::process_name(0, d));
    EXPECT_GT(report.value().total_calls(), 0u);  // a delta, not a cumulative dump
    EXPECT_LT(report.value().functions.size(), 10u);
  }
}

TEST(FleetSimulatorTest, SeedChangesTheFleet) {
  SimulatorConfig config;
  config.hosts = 2;
  config.docs_per_host = 3;
  const auto a = FleetSimulator(toolkit(), config).run();
  config.seed = 99;
  const auto b = FleetSimulator(toolkit(), config).run();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace healers::fleet
