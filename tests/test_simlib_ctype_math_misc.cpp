// Behaviour tests for the ctype/wide-char, math, and misc families: correct
// classification in range, the table-lookup crash on wild ints (Ballista's
// classic finding), math errno discipline, and the runtime helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "testbed.hpp"

namespace healers {
namespace {

using testbed::F;
using testbed::I;
using testbed::P;

struct CtypeFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
};

TEST_F(CtypeFixture, ClassifiersAgreeWithHostCtype) {
  for (int c = -1; c <= 255; ++c) {
    const int probe = c == -1 ? -1 : c;
    const bool host_alpha = c >= 0 && c < 128 && (std::isalpha(c) != 0);
    EXPECT_EQ(proc->call("isalpha", {I(probe)}).as_int() != 0, host_alpha) << c;
    const bool host_digit = c >= '0' && c <= '9';
    EXPECT_EQ(proc->call("isdigit", {I(probe)}).as_int() != 0, host_digit) << c;
  }
}

TEST_F(CtypeFixture, SpacePunctXdigitCntrl) {
  EXPECT_TRUE(proc->call("isspace", {I(' ')}).as_int() != 0);
  EXPECT_TRUE(proc->call("isspace", {I('\t')}).as_int() != 0);
  EXPECT_FALSE(proc->call("isspace", {I('x')}).as_int() != 0);
  EXPECT_TRUE(proc->call("ispunct", {I('!')}).as_int() != 0);
  EXPECT_FALSE(proc->call("ispunct", {I('a')}).as_int() != 0);
  EXPECT_TRUE(proc->call("isxdigit", {I('f')}).as_int() != 0);
  EXPECT_TRUE(proc->call("isxdigit", {I('A')}).as_int() != 0);
  EXPECT_FALSE(proc->call("isxdigit", {I('g')}).as_int() != 0);
  EXPECT_TRUE(proc->call("iscntrl", {I(7)}).as_int() != 0);
  EXPECT_TRUE(proc->call("iscntrl", {I(127)}).as_int() != 0);
}

TEST_F(CtypeFixture, ToupperTolower) {
  EXPECT_EQ(proc->call("toupper", {I('a')}).as_int(), 'A');
  EXPECT_EQ(proc->call("toupper", {I('A')}).as_int(), 'A');
  EXPECT_EQ(proc->call("toupper", {I('7')}).as_int(), '7');
  EXPECT_EQ(proc->call("tolower", {I('Z')}).as_int(), 'z');
  EXPECT_EQ(proc->call("tolower", {I('z')}).as_int(), 'z');
}

TEST_F(CtypeFixture, EofIsAcceptedWithoutCrash) {
  EXPECT_EQ(proc->call("isalpha", {I(-1)}).as_int(), 0);
  EXPECT_EQ(proc->call("isdigit", {I(-1)}).as_int(), 0);
}

TEST_F(CtypeFixture, WildIntCrashesTableLookup) {
  // The table covers [-128, 255]; anything beyond drives the lookup out of
  // the mapped region — exactly how table-driven libcs crash.
  // (Offsets chosen far outside every mapping; nearer wild values may land
  // in other mapped regions and merely misclassify, as on a real libc.)
  EXPECT_THROW(proc->call("isalpha", {I(1 << 30)}), AccessFault);
  EXPECT_THROW(proc->call("isdigit", {I(-(1 << 26))}), AccessFault);
  EXPECT_THROW(proc->call("toupper", {I(1LL << 40)}), AccessFault);
}

TEST_F(CtypeFixture, WctransLooksUpNamedTransformations) {
  EXPECT_EQ(proc->call("wctrans", {P(str("tolower"))}).as_int(), 1);
  EXPECT_EQ(proc->call("wctrans", {P(str("toupper"))}).as_int(), 2);
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("wctrans", {P(str("bogus"))}).as_int(), 0);
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
}

TEST_F(CtypeFixture, WctransNullCrashes) {
  // The paper's running example: wctrans' argument must actually be a
  // valid C string, not merely "const char *".
  EXPECT_THROW(proc->call("wctrans", {P(0)}), AccessFault);
}

TEST_F(CtypeFixture, TowctransAppliesDescriptor) {
  EXPECT_EQ(proc->call("towctrans", {I('A'), I(1)}).as_int(), 'a');
  EXPECT_EQ(proc->call("towctrans", {I('a'), I(2)}).as_int(), 'A');
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("towctrans", {I('a'), I(99)}).as_int(), 'a');
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
}

TEST_F(CtypeFixture, WctypeAndIswctype) {
  const auto alpha = proc->call("wctype", {P(str("alpha"))});
  EXPECT_NE(alpha.as_int(), 0);
  EXPECT_EQ(proc->call("iswctype", {I('x'), alpha}).as_int(), 1);
  EXPECT_EQ(proc->call("iswctype", {I('5'), alpha}).as_int(), 0);
  const auto digit = proc->call("wctype", {P(str("digit"))});
  EXPECT_EQ(proc->call("iswctype", {I('5'), digit}).as_int(), 1);
  EXPECT_EQ(proc->call("wctype", {P(str("nope"))}).as_int(), 0);
}

struct MathFixture : CtypeFixture {};

TEST_F(MathFixture, BasicFunctions) {
  EXPECT_DOUBLE_EQ(proc->call("fabs", {F(-2.5)}).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(proc->call("floor", {F(2.7)}).as_double(), 2.0);
  EXPECT_DOUBLE_EQ(proc->call("ceil", {F(2.2)}).as_double(), 3.0);
  EXPECT_DOUBLE_EQ(proc->call("sqrt", {F(9.0)}).as_double(), 3.0);
  EXPECT_DOUBLE_EQ(proc->call("pow", {F(2.0), F(10.0)}).as_double(), 1024.0);
  EXPECT_NEAR(proc->call("sin", {F(0.0)}).as_double(), 0.0, 1e-12);
  EXPECT_NEAR(proc->call("cos", {F(0.0)}).as_double(), 1.0, 1e-12);
}

TEST_F(MathFixture, DomainErrorsSetEdom) {
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isnan(proc->call("sqrt", {F(-1.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kEDOM);
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isnan(proc->call("log", {F(-1.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kEDOM);
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isnan(proc->call("fmod", {F(1.0), F(0.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kEDOM);
}

TEST_F(MathFixture, RangeErrorsSetErange) {
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isinf(proc->call("log", {F(0.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kERANGE);
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isinf(proc->call("pow", {F(10.0), F(5000.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kERANGE);
}

TEST_F(MathFixture, MathNeverCrashesOnExtremeInputs) {
  // The contrast class: value-in/value-out functions tolerate anything.
  for (const double x : {0.0, -1.0, 1e308, -1e308, std::nan(""),
                         std::numeric_limits<double>::infinity()}) {
    for (const char* fn : {"sin", "cos", "tan", "exp", "fabs", "floor", "ceil", "sqrt", "log"}) {
      EXPECT_NO_THROW(proc->call(fn, {F(x)})) << fn << "(" << x << ")";
    }
  }
}

struct MiscFixture : CtypeFixture {};

TEST_F(MiscFixture, GetenvFindsAndMisses) {
  proc->state().env["HOME"] = "/home/user";
  const auto home = proc->call("getenv", {P(str("HOME"))});
  ASSERT_NE(home.as_ptr(), 0u);
  EXPECT_EQ(proc->machine().mem().read_cstring(home.as_ptr()), "/home/user");
  EXPECT_EQ(proc->call("getenv", {P(str("NOPE"))}).as_ptr(), 0u);
}

TEST_F(MiscFixture, GetenvNullCrashes) {
  EXPECT_THROW(proc->call("getenv", {P(0)}), AccessFault);
}

TEST_F(MiscFixture, RandIsDeterministicUnderSrand) {
  proc->call("srand", {I(123)});
  const auto a1 = proc->call("rand", {}).as_int();
  const auto a2 = proc->call("rand", {}).as_int();
  proc->call("srand", {I(123)});
  EXPECT_EQ(proc->call("rand", {}).as_int(), a1);
  EXPECT_EQ(proc->call("rand", {}).as_int(), a2);
  EXPECT_GE(a1, 0);
  EXPECT_LE(a1, 0x7fffffff);
}

TEST_F(MiscFixture, ExitRaisesSimExitWithStatus) {
  try {
    proc->call("exit", {I(3)});
    FAIL() << "expected SimExit";
  } catch (const SimExit& e) {
    EXPECT_EQ(e.code(), 3);
  }
}

TEST_F(MiscFixture, AbortRaisesSimAbort) {
  EXPECT_THROW(proc->call("abort", {}), SimAbort);
}

TEST_F(MiscFixture, SupervisedExitBecomesExitOutcome) {
  const auto outcome = proc->supervised_call("exit", {I(7)});
  EXPECT_EQ(outcome.kind, linker::CallOutcome::Kind::kExit);
  EXPECT_EQ(outcome.exit_code, 7);
  EXPECT_FALSE(outcome.robustness_failure());
}

}  // namespace
}  // namespace healers
