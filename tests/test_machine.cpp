// Unit tests for the Machine: the hang oracle (step budget), the virtual
// cycle clock, errno, rodata interning, and the GOT-based hijack oracle.
#include <gtest/gtest.h>

#include "memmodel/machine.hpp"

namespace healers::mem {
namespace {

TEST(Machine, TickAccumulatesStepsAndCycles) {
  Machine machine;
  machine.tick(10);
  machine.tick();
  EXPECT_EQ(machine.steps(), 11u);
  EXPECT_EQ(machine.rdtsc(), 11u);
}

TEST(Machine, StepBudgetExhaustionRaisesHang) {
  MachineConfig config;
  config.step_budget = 100;
  Machine machine(config);
  machine.tick(100);
  EXPECT_THROW(machine.tick(), SimHang);
}

TEST(Machine, ResetStepsAllowsFreshBudget) {
  MachineConfig config;
  config.step_budget = 10;
  Machine machine(config);
  machine.tick(10);
  machine.reset_steps();
  EXPECT_NO_THROW(machine.tick(5));
}

TEST(Machine, AddCyclesDoesNotConsumeBudget) {
  MachineConfig config;
  config.step_budget = 10;
  Machine machine(config);
  machine.add_cycles(1000);
  EXPECT_EQ(machine.rdtsc(), 1000u);
  EXPECT_NO_THROW(machine.tick(10));
}

TEST(Machine, ErrnoCell) {
  Machine machine;
  EXPECT_EQ(machine.err(), 0);
  machine.set_err(22);
  EXPECT_EQ(machine.err(), 22);
}

TEST(Machine, InternedStringsAreReadOnlyAndDeduplicated) {
  Machine machine;
  const Addr a = machine.intern_string("hello");
  const Addr b = machine.intern_string("hello");
  const Addr c = machine.intern_string("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(machine.mem().read_cstring(a), "hello");
  EXPECT_THROW(machine.mem().store8(a, 'X'), AccessFault);
}

TEST(Machine, RegisterCodeIsIdempotentAndResolvable) {
  Machine machine;
  const Addr a = machine.register_code("fn");
  EXPECT_EQ(machine.register_code("fn"), a);
  ASSERT_TRUE(machine.resolve_code(a).has_value());
  EXPECT_EQ(*machine.resolve_code(a), "fn");
  EXPECT_FALSE(machine.resolve_code(a + 1).has_value());
}

TEST(Machine, GotSlotHoldsCodeAddressAndIsWritableData) {
  Machine machine;
  const Addr slot = machine.define_got_slot("puts");
  EXPECT_TRUE(machine.has_got_slot("puts"));
  EXPECT_EQ(machine.got_slot("puts"), slot);
  const Addr code = machine.mem().load64(slot);
  EXPECT_EQ(*machine.resolve_code(code), "puts");
  // GOT slots are ordinary writable data — that is the attack surface.
  EXPECT_NO_THROW(machine.mem().store64(slot, 0x12345));
}

TEST(Machine, CallThroughIntactGotResolvesCallee) {
  Machine machine;
  machine.define_got_slot("strcpy");
  EXPECT_EQ(machine.call_through_got("strcpy"), "strcpy");
}

TEST(Machine, CallThroughOverwrittenGotHijacks) {
  Machine machine;
  const Addr slot = machine.define_got_slot("puts");
  const Addr shellcode = machine.heap().malloc(64);
  machine.mem().store64(slot, shellcode);
  EXPECT_THROW(machine.call_through_got("puts"), ControlFlowHijack);
}

TEST(Machine, GotRetargetingToOtherCodeIsFollowedNotFlagged) {
  // An IAT-style redirect to REAL code is not a hijack — the oracle only
  // fires for non-code targets.
  Machine machine;
  machine.define_got_slot("puts");
  const Addr other = machine.register_code("evil_but_real");
  machine.mem().store64(machine.got_slot("puts"), other);
  EXPECT_EQ(machine.call_through_got("puts"), "evil_but_real");
}

TEST(Machine, UnknownGotSlotThrowsInvalidArgument) {
  Machine machine;
  EXPECT_FALSE(machine.has_got_slot("nope"));
  EXPECT_THROW((void)machine.got_slot("nope"), std::invalid_argument);
}

TEST(Machine, HeapAndStackAreUsable) {
  Machine machine;
  const Addr p = machine.heap().malloc(64);
  ASSERT_NE(p, 0u);
  machine.mem().write_cstring(p, "x");
  machine.stack().push("main", 32, 0);
  EXPECT_EQ(machine.stack().depth(), 1u);
}

TEST(Machine, ConfigSizesRespected) {
  MachineConfig config;
  config.heap_size = 128 << 10;
  config.stack_size = 8 << 10;
  Machine machine(config);
  EXPECT_EQ(machine.heap().arena_size(), 128u << 10);
  EXPECT_EQ(machine.stack().region_size(), 8u << 10);
}

}  // namespace
}  // namespace healers::mem
