// Tests for the subsumption lattice (typelattice/subsume.hpp) and the
// pruned campaign engine built on it:
//
//   - the dominance relation is a strict partial order (irreflexive,
//     antisymmetric, transitively closed, never cross-class) and every test
//     type is totally ordered by hostility within its class;
//   - case_count / scalar_cases agree with the live ValueFactory, so an
//     implied verdict is guaranteed to carry what execution would have;
//   - the full-catalog differential: pruned campaigns produce byte-identical
//     XML to --no-prune at every jobs value and both reset modes, while
//     executing at most 60% of the unpruned probe count;
//   - cross-campaign implication learning: profiles round-trip through the
//     HSIP1 cache-entry codec, and a warm store prunes strictly more than a
//     cold one on a related signature set.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "injector/injector.hpp"
#include "linker/process.hpp"
#include "server/spec_cache.hpp"
#include "support/rng.hpp"
#include "testbed.hpp"
#include "typelattice/subsume.hpp"
#include "typelattice/testtype.hpp"
#include "xml/xml.hpp"

namespace healers::lattice {
namespace {

using parser::TypeClass;

std::vector<TestTypeId> all_ids() {
  std::vector<TestTypeId> ids;
  for (std::size_t i = 0; i < kTestTypeCount; ++i) ids.push_back(static_cast<TestTypeId>(i));
  return ids;
}

// The class a test type belongs to, derived from the canonical enumeration
// (deliberately independent of any class table inside subsume.cpp).
TypeClass class_of(TestTypeId id) {
  for (const TypeClass cls : {TypeClass::kPointer, TypeClass::kIntegral, TypeClass::kFloating}) {
    for (const TestTypeId member : test_types_for(cls)) {
      if (member == id) return cls;
    }
  }
  return TypeClass::kVoid;
}

TEST(SubsumeLattice, TableIsConsistent) { EXPECT_EQ(ImplicationIndex::validate(), ""); }

TEST(SubsumeLattice, DominanceIsAStrictPartialOrder) {
  const ImplicationIndex& index = ImplicationIndex::instance();
  const auto ids = all_ids();
  for (const TestTypeId a : ids) {
    EXPECT_FALSE(index.subsumes(a, a)) << to_string(a) << " subsumes itself";
    for (const TestTypeId b : ids) {
      if (index.subsumes(a, b)) {
        EXPECT_FALSE(index.subsumes(b, a))
            << to_string(a) << " and " << to_string(b) << " subsume each other";
        EXPECT_EQ(class_of(a), class_of(b))
            << to_string(a) << " -> " << to_string(b) << " crosses classes";
      }
      for (const TestTypeId c : ids) {
        if (index.subsumes(a, b) && index.subsumes(b, c)) {
          EXPECT_TRUE(index.subsumes(a, c))
              << to_string(a) << " -> " << to_string(b) << " -> " << to_string(c)
              << " is not closed";
        }
      }
    }
  }
}

TEST(SubsumeLattice, EveryTypeIsTotallyOrderedWithinItsClass) {
  const ImplicationIndex& index = ImplicationIndex::instance();
  for (const TypeClass cls : {TypeClass::kPointer, TypeClass::kIntegral, TypeClass::kFloating}) {
    const std::vector<TestTypeId>& types = test_types_for(cls);
    std::vector<bool> rank_seen(types.size(), false);
    for (std::size_t k = 0; k < types.size(); ++k) {
      EXPECT_EQ(index.canonical_rank(types[k]), k);
      const std::size_t rank = index.hostility_rank(types[k]);
      ASSERT_LT(rank, types.size()) << to_string(types[k]) << " rank out of range";
      EXPECT_FALSE(rank_seen[rank]) << "duplicate hostility rank in class";
      rank_seen[rank] = true;
    }
  }
}

TEST(SubsumeLattice, ImpliedPassMatchesClosureAndReach) {
  const ImplicationIndex& index = ImplicationIndex::instance();
  for (const TestTypeId id : all_ids()) {
    const std::vector<TestTypeId>& implied = index.implied_pass(id);
    EXPECT_EQ(index.reach(id), implied.size());
    for (const TestTypeId safe : implied) EXPECT_TRUE(index.subsumes(id, safe));
    // Canonical order within the list (the synthesis order is deterministic).
    for (std::size_t i = 1; i < implied.size(); ++i) {
      EXPECT_LT(index.canonical_rank(implied[i - 1]), index.canonical_rank(implied[i]));
    }
  }
}

// case_count must agree with the live factory for every type and variants
// value, and scalar_cases must be the exact enumeration cases_of performs —
// otherwise a synthesized verdict would not be byte-identical to execution.
TEST(SubsumeLattice, CaseCountMatchesLiveFactoryEnumeration) {
  linker::LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimio());
  catalog.install(&testbed::libsimm());
  for (const int variants : {1, 2, 3}) {
    linker::Process bed("case-count-testbed");
    for (const std::string& soname : catalog.sonames()) {
      bed.load_library(catalog.find(soname));
    }
    for (const TestTypeId id : all_ids()) {
      Rng rng(0x5eedu + static_cast<std::uint64_t>(id));
      ValueFactory factory(bed, rng);
      const auto cases = factory.cases_of(id, variants);
      EXPECT_EQ(cases.size(), case_count(id, variants))
          << to_string(id) << " variants=" << variants;
      if (!is_scalar_type(id)) continue;
      Rng replay(0x5eedu + static_cast<std::uint64_t>(id));
      const auto pure = scalar_cases(id, variants, replay);
      ASSERT_EQ(pure.size(), cases.size());
      for (std::size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(pure[i].note, cases[i].note);
        const bool both_nan = std::isnan(pure[i].value.as_double()) &&
                              std::isnan(cases[i].value.as_double());
        EXPECT_TRUE(both_nan || pure[i].value == cases[i].value) << to_string(id) << " case " << i;
      }
    }
  }
}

TEST(ImplicationProfiles, SignatureEncodesClassAndAnnotationShape) {
  EXPECT_EQ(ImplicationProfileStore::signature(TypeClass::kPointer, nullptr), "pointer");
  EXPECT_EQ(ImplicationProfileStore::signature(TypeClass::kFloating, nullptr), "floating");
  parser::ArgAnnotation note;
  note.nonnull = true;
  note.cstring = true;
  EXPECT_EQ(ImplicationProfileStore::signature(TypeClass::kPointer, &note),
            "pointer|cstring,nonnull");
  note = {};
  note.range.emplace(1, 9);
  EXPECT_EQ(ImplicationProfileStore::signature(TypeClass::kIntegral, &note), "integral|range");
}

TEST(ImplicationProfiles, StoreLearnsVotesAndMerges) {
  ImplicationProfileStore store;
  EXPECT_FALSE(store.lookup("pointer").has_value());
  store.learn("pointer", TestTypeId::kNull, /*passed=*/false);
  store.learn("pointer", TestTypeId::kValidCString, /*passed=*/true);
  store.learn("pointer", TestTypeId::kValidCString, /*passed=*/true);
  store.learn("pointer", TestTypeId::kValidCString, /*passed=*/false);
  const auto profile = store.lookup("pointer");
  ASSERT_TRUE(profile.has_value());
  EXPECT_FALSE(profile->predicts_pass(TestTypeId::kNull));
  EXPECT_TRUE(profile->predicts_pass(TestTypeId::kValidCString));
  EXPECT_FALSE(profile->predicts_pass(TestTypeId::kWildPtr)) << "unseen types predict fail";
  EXPECT_TRUE(profile->seen(TestTypeId::kNull));
  EXPECT_FALSE(profile->seen(TestTypeId::kWildPtr));

  // Merge-add: importing the export into a second store doubles nothing and
  // importing twice doubles every tally (a tally, not a snapshot).
  ImplicationProfileStore other;
  other.import_profiles(store.export_profiles());
  other.import_profiles(store.export_profiles());
  const auto doubled = other.lookup("pointer");
  ASSERT_TRUE(doubled.has_value());
  EXPECT_EQ(doubled->passes[static_cast<std::size_t>(TestTypeId::kValidCString)], 4u);
  EXPECT_EQ(doubled->fails[static_cast<std::size_t>(TestTypeId::kValidCString)], 2u);
}

TEST(ImplicationProfiles, ProfileEntryCodecRoundTripsAndRejectsGarbage) {
  ImplicationProfileStore store;
  store.learn("integral|range", TestTypeId::kIntMax, true, 3);
  store.learn("integral|range", TestTypeId::kZero, false, 2);
  const auto exported = store.export_profiles();
  ASSERT_EQ(exported.size(), 1u);

  const std::string payload = server::encode_profile_entry(exported[0]);
  const auto decoded = server::decode_profile_entry(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().signature, "integral|range");
  EXPECT_EQ(decoded.value().passes, exported[0].passes);
  EXPECT_EQ(decoded.value().fails, exported[0].fails);

  EXPECT_FALSE(server::decode_profile_entry(payload.substr(0, payload.size() / 2)).ok());
  EXPECT_FALSE(server::decode_profile_entry("HSCE1 not a profile").ok());
}

// --- the full-catalog differential -------------------------------------------

struct DifferentialFixture : ::testing::Test {
  linker::LibraryCatalog catalog;

  DifferentialFixture() {
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
  }

  static injector::InjectorConfig base_config() {
    injector::InjectorConfig config;
    config.seed = 2003;
    config.variants = 1;
    return config;
  }

  std::vector<const simlib::SharedLibrary*> libraries() const {
    return {&testbed::libsimm(), &testbed::libsimio(), &testbed::libsimc()};
  }

  // Runs the whole catalog, one injector per library, all sharing `store`
  // (null = each injector keeps its private store). Returns the serialized
  // campaign XML per library and accumulates executed/implied counts.
  std::vector<std::string> run_catalog(const injector::InjectorConfig& config,
                                       std::shared_ptr<ImplicationProfileStore> store,
                                       std::uint64_t* executed, std::uint64_t* implied) {
    std::vector<std::string> xmls;
    for (const simlib::SharedLibrary* lib : libraries()) {
      injector::FaultInjector injector(catalog, config);
      if (store != nullptr) injector.set_profile_store(store);
      auto campaign = injector.run_campaign(*lib);
      EXPECT_TRUE(campaign.ok()) << (campaign.ok() ? "" : campaign.error().message);
      xmls.push_back(xml::serialize(campaign.value().to_xml()));
      if (executed != nullptr) *executed += injector.probes_executed();
      if (implied != nullptr) *implied += injector.probes_implied();
    }
    return xmls;
  }
};

// The acceptance differential: pruning must change nothing but the probe
// count. Derived specs, weakest safe types and campaign XML are compared
// byte-for-byte against --no-prune across jobs 1/4/16 and both reset modes,
// and the pruned walk must execute at most 60% of the unpruned probes.
TEST_F(DifferentialFixture, PrunedCampaignsAreByteIdenticalAndExecuteAtMost60Percent) {
  injector::InjectorConfig reference_config = base_config();
  reference_config.prune = false;
  std::uint64_t executed_unpruned = 0;
  const std::vector<std::string> reference =
      run_catalog(reference_config, nullptr, &executed_unpruned, nullptr);
  ASSERT_GT(executed_unpruned, 0u);

  // Cold shared-store pass at jobs=1: the ratio the pruning exists to win.
  injector::InjectorConfig pruned_config = base_config();
  std::uint64_t executed_pruned = 0;
  std::uint64_t implied_pruned = 0;
  auto store = std::make_shared<ImplicationProfileStore>();
  const std::vector<std::string> pruned =
      run_catalog(pruned_config, store, &executed_pruned, &implied_pruned);
  EXPECT_EQ(pruned, reference) << "pruning changed campaign bytes";
  EXPECT_GT(implied_pruned, 0u);
  EXPECT_LE(executed_pruned * 100, executed_unpruned * 60)
      << "pruned walk executed " << executed_pruned << " of " << executed_unpruned
      << " unpruned probes";

  // Every jobs value and both reset modes reduce to the same bytes.
  for (const int jobs : {1, 4, 16}) {
    for (const bool snapshot_reset : {true, false}) {
      injector::InjectorConfig config = base_config();
      config.jobs = jobs;
      config.snapshot_reset = snapshot_reset;
      const std::vector<std::string> matrix = run_catalog(config, nullptr, nullptr, nullptr);
      EXPECT_EQ(matrix, reference)
          << "jobs=" << jobs << " reset=" << (snapshot_reset ? "fork" : "fresh");
    }
  }
}

// Cross-campaign learning: a store warmed by the whole catalog must let a
// repeat campaign over related signatures skip strictly more probes than the
// cold walk did.
TEST_F(DifferentialFixture, WarmProfileStorePrunesStrictlyMoreThanCold) {
  const injector::InjectorConfig config = base_config();

  std::uint64_t cold_executed = 0;
  {
    injector::FaultInjector cold(catalog, config);
    ASSERT_TRUE(cold.run_campaign(testbed::libsimc()).ok());
    cold_executed = cold.probes_executed();
  }

  // Warm the store on the full catalog, then replay the same campaign
  // through a fresh injector that only shares the learned profiles.
  auto store = std::make_shared<ImplicationProfileStore>();
  (void)run_catalog(config, store, nullptr, nullptr);
  auto warmed = std::make_shared<ImplicationProfileStore>();
  warmed->import_profiles(store->export_profiles());

  injector::FaultInjector warm(catalog, config);
  warm.set_profile_store(warmed);
  auto campaign = warm.run_campaign(testbed::libsimc());
  ASSERT_TRUE(campaign.ok());
  EXPECT_LT(warm.probes_executed(), cold_executed)
      << "warm store failed to prune more than the cold walk";
  EXPECT_GT(campaign.value().engine.args_warm_ordered, 0u);
  EXPECT_GT(campaign.value().engine.warm_start_ratio(), 0.5);
}

}  // namespace
}  // namespace healers::lattice
