// Behaviour tests for the simulated C library's string family: both the
// specified semantics (against valid inputs) and the deliberate fragility
// (NULL crashes, silent overflows, unterminated-scan faults) that the fault
// injector must rediscover.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace healers {
namespace {

using testbed::I;
using testbed::P;

struct StringFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::AddressSpace& mem() { return proc->machine().mem(); }

  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
  mem::Addr buf(std::uint64_t size) { return proc->scratch(size); }
};

TEST_F(StringFixture, StrlenCountsBytes) {
  EXPECT_EQ(proc->call("strlen", {P(str("hello"))}).as_int(), 5);
  EXPECT_EQ(proc->call("strlen", {P(str(""))}).as_int(), 0);
}

TEST_F(StringFixture, StrlenNullCrashes) {
  EXPECT_THROW(proc->call("strlen", {P(0)}), AccessFault);
}

TEST_F(StringFixture, StrcpyCopiesIncludingTerminator) {
  const mem::Addr dest = buf(32);
  const auto ret = proc->call("strcpy", {P(dest), P(str("copy me"))});
  EXPECT_EQ(ret.as_ptr(), dest);
  EXPECT_EQ(mem().read_cstring(dest), "copy me");
}

TEST_F(StringFixture, StrcpyIntoExactBufferFits) {
  const mem::Addr dest = buf(8);
  proc->call("strcpy", {P(dest), P(str("1234567"))});  // 7 + NUL = 8
  EXPECT_EQ(mem().read_cstring(dest), "1234567");
}

TEST_F(StringFixture, StrcpyOverflowOfScratchBufferFaults) {
  const mem::Addr dest = buf(4);
  EXPECT_THROW(proc->call("strcpy", {P(dest), P(str("way too long"))}), AccessFault);
}

TEST_F(StringFixture, StrcpyIntoReadOnlyMemoryFaults) {
  const mem::Addr ro = proc->rodata_cstring("readonly");
  EXPECT_THROW(proc->call("strcpy", {P(ro), P(str("x"))}), AccessFault);
}

TEST_F(StringFixture, StrcpyHeapOverflowIsSilent) {
  // The heap-arena variant of the overflow does NOT fault — the corruption
  // property the security wrapper exists for.
  const mem::Addr a = proc->call("malloc", {I(16)}).as_ptr();
  const mem::Addr b = proc->call("malloc", {I(16)}).as_ptr();
  ASSERT_NE(b, 0u);
  EXPECT_NO_THROW(proc->call("strcpy", {P(a), P(str("this is far longer than 16"))}));
}

TEST_F(StringFixture, StrncpyZeroFillsToExactlyN) {
  const mem::Addr dest = buf(16);
  mem().write_cstring(dest, "XXXXXXXXXXXXXXX");
  proc->call("strncpy", {P(dest), P(str("ab")), I(8)});
  EXPECT_EQ(mem().load8(dest + 0), 'a');
  EXPECT_EQ(mem().load8(dest + 1), 'b');
  for (int i = 2; i < 8; ++i) EXPECT_EQ(mem().load8(dest + i), 0u) << i;
  EXPECT_EQ(mem().load8(dest + 8), 'X');  // untouched beyond n
}

TEST_F(StringFixture, StrncpyDoesNotTerminateWhenSourceTooLong) {
  const mem::Addr dest = buf(16);
  proc->call("strncpy", {P(dest), P(str("abcdefgh")), I(4)});
  EXPECT_EQ(mem().load8(dest + 3), 'd');  // no NUL among the first 4
}

TEST_F(StringFixture, StrcatAppends) {
  const mem::Addr dest = buf(32);
  mem().write_cstring(dest, "foo");
  proc->call("strcat", {P(dest), P(str("bar"))});
  EXPECT_EQ(mem().read_cstring(dest), "foobar");
}

TEST_F(StringFixture, StrncatAppendsBoundedAndTerminates) {
  const mem::Addr dest = buf(32);
  mem().write_cstring(dest, "foo");
  proc->call("strncat", {P(dest), P(str("barbaz")), I(3)});
  EXPECT_EQ(mem().read_cstring(dest), "foobar");
}

TEST_F(StringFixture, StrcmpOrdering) {
  EXPECT_EQ(proc->call("strcmp", {P(str("abc")), P(str("abc"))}).as_int(), 0);
  EXPECT_LT(proc->call("strcmp", {P(str("abc")), P(str("abd"))}).as_int(), 0);
  EXPECT_GT(proc->call("strcmp", {P(str("b")), P(str("a"))}).as_int(), 0);
  EXPECT_LT(proc->call("strcmp", {P(str("ab")), P(str("abc"))}).as_int(), 0);
}

TEST_F(StringFixture, StrncmpStopsAtN) {
  EXPECT_EQ(proc->call("strncmp", {P(str("abcX")), P(str("abcY")), I(3)}).as_int(), 0);
  EXPECT_NE(proc->call("strncmp", {P(str("abcX")), P(str("abcY")), I(4)}).as_int(), 0);
}

TEST_F(StringFixture, StrchrFindsFirstAndReportsMissing) {
  const mem::Addr s = str("hello");
  EXPECT_EQ(proc->call("strchr", {P(s), I('l')}).as_ptr(), s + 2);
  EXPECT_EQ(proc->call("strchr", {P(s), I('z')}).as_ptr(), 0u);
  // Searching for NUL returns the terminator position, per spec.
  EXPECT_EQ(proc->call("strchr", {P(s), I(0)}).as_ptr(), s + 5);
}

TEST_F(StringFixture, StrrchrFindsLast) {
  const mem::Addr s = str("hello");
  EXPECT_EQ(proc->call("strrchr", {P(s), I('l')}).as_ptr(), s + 3);
  EXPECT_EQ(proc->call("strrchr", {P(s), I('q')}).as_ptr(), 0u);
}

TEST_F(StringFixture, StrstrFindsSubstring) {
  const mem::Addr hay = str("finding a needle here");
  EXPECT_EQ(proc->call("strstr", {P(hay), P(str("needle"))}).as_ptr(), hay + 10);
  EXPECT_EQ(proc->call("strstr", {P(hay), P(str("missing"))}).as_ptr(), 0u);
  EXPECT_EQ(proc->call("strstr", {P(hay), P(str(""))}).as_ptr(), hay);
}

TEST_F(StringFixture, StrspnAndStrcspn) {
  EXPECT_EQ(proc->call("strspn", {P(str("123abc")), P(str("0123456789"))}).as_int(), 3);
  EXPECT_EQ(proc->call("strcspn", {P(str("abc123")), P(str("0123456789"))}).as_int(), 3);
  EXPECT_EQ(proc->call("strspn", {P(str("abc")), P(str("xyz"))}).as_int(), 0);
}

TEST_F(StringFixture, StrpbrkFindsAnyOfSet) {
  const mem::Addr s = str("abcdef");
  EXPECT_EQ(proc->call("strpbrk", {P(s), P(str("fd"))}).as_ptr(), s + 3);
  EXPECT_EQ(proc->call("strpbrk", {P(s), P(str("xyz"))}).as_ptr(), 0u);
}

TEST_F(StringFixture, StrdupAllocatesIndependentCopy) {
  const mem::Addr orig = str("dup me");
  const mem::Addr copy = proc->call("strdup", {P(orig)}).as_ptr();
  ASSERT_NE(copy, 0u);
  ASSERT_NE(copy, orig);
  EXPECT_EQ(mem().read_cstring(copy), "dup me");
  EXPECT_TRUE(proc->machine().heap().is_live(copy));
}

TEST_F(StringFixture, StrtokTokenizesAcrossCalls) {
  const mem::Addr s = str("a,b;c");
  const mem::Addr delim = str(",;");
  const auto t1 = proc->call("strtok", {P(s), P(delim)});
  const auto t2 = proc->call("strtok", {P(0), P(delim)});
  const auto t3 = proc->call("strtok", {P(0), P(delim)});
  const auto t4 = proc->call("strtok", {P(0), P(delim)});
  EXPECT_EQ(mem().read_cstring(t1.as_ptr()), "a");
  EXPECT_EQ(mem().read_cstring(t2.as_ptr()), "b");
  EXPECT_EQ(mem().read_cstring(t3.as_ptr()), "c");
  EXPECT_EQ(t4.as_ptr(), 0u);
}

TEST_F(StringFixture, StrtokSkipsLeadingDelimiters) {
  const auto tok = proc->call("strtok", {P(str(";;x")), P(str(";"))});
  EXPECT_EQ(mem().read_cstring(tok.as_ptr()), "x");
}

TEST_F(StringFixture, StrtokNullFirstCallCrashes) {
  // The hidden cursor starts at 0; strtok(NULL, d) before any strtok(s, d)
  // dereferences it — the classic stateful-API failure.
  EXPECT_THROW(proc->call("strtok", {P(0), P(str(","))}), AccessFault);
}

TEST_F(StringFixture, StrerrorDescribesKnownAndUnknown) {
  const auto p1 = proc->call("strerror", {I(simlib::kEINVAL)});
  EXPECT_EQ(mem().read_cstring(p1.as_ptr()), "Invalid argument");
  const auto p2 = proc->call("strerror", {I(99999)});
  EXPECT_EQ(mem().read_cstring(p2.as_ptr()).rfind("Unknown error", 0), 0u);
  // Static buffer: second call overwrites the first's text.
  EXPECT_EQ(p1.as_ptr(), p2.as_ptr());
}

TEST_F(StringFixture, StrcollMatchesStrcmpInCLocale) {
  EXPECT_EQ(proc->call("strcoll", {P(str("a")), P(str("b"))}).as_int(),
            proc->call("strcmp", {P(str("a")), P(str("b"))}).as_int());
}

TEST_F(StringFixture, UnterminatedBufferFaultsScanningFunctions) {
  const mem::Addr unterm = buf(32);
  for (int i = 0; i < 32; ++i) mem().store8(unterm + i, 'A');
  EXPECT_THROW(proc->call("strlen", {P(unterm)}), AccessFault);
  EXPECT_THROW(proc->call("strchr", {P(unterm), I('z')}), AccessFault);
  const mem::Addr dest = buf(512);
  EXPECT_THROW(proc->call("strcpy", {P(dest), P(unterm)}), AccessFault);
}

TEST_F(StringFixture, WildAndIntPointersCrash) {
  EXPECT_THROW(proc->call("strlen", {P(mem::AddressSpace::wild_pointer())}), AccessFault);
  EXPECT_THROW(proc->call("strcmp", {P(1), P(str("x"))}), AccessFault);
}

// Every string function must consume machine steps (the hang oracle's
// currency) proportional to the work done.
TEST_F(StringFixture, CallsConsumeSteps) {
  const std::uint64_t before = proc->machine().steps();
  proc->call("strlen", {P(str("0123456789"))});
  EXPECT_GE(proc->machine().steps() - before, 10u);
}

using NullCrashCase = const char*;
class NullCrashTest : public StringFixture,
                      public ::testing::WithParamInterface<NullCrashCase> {};

// Property: every string function whose man page says NONNULL 1 crashes
// when arg1 is NULL — the non-robustness the wrappers must contain.
TEST_P(NullCrashTest, NullFirstArgCrashes) {
  const std::string fn = GetParam();
  std::vector<simlib::SimValue> args{P(0)};
  // Supply valid remaining args per arity.
  const simlib::Symbol* symbol = testbed::libsimc().find(fn);
  ASSERT_NE(symbol, nullptr);
  if (symbol->declaration.find(", const char *") != std::string::npos ||
      symbol->declaration.find("char *src") != std::string::npos) {
    args.push_back(P(str("x")));
  } else if (symbol->declaration.find("int c") != std::string::npos) {
    args.push_back(I('x'));
  }
  if (symbol->declaration.find("size_t n") != std::string::npos) args.push_back(I(1));
  EXPECT_THROW(proc->call(fn, args), AccessFault) << fn;
}

INSTANTIATE_TEST_SUITE_P(StringFamily, NullCrashTest,
                         ::testing::Values("strlen", "strcpy", "strcat", "strcmp", "strchr",
                                           "strrchr", "strstr", "strdup", "strspn", "strcspn",
                                           "strpbrk", "strncpy", "strncmp", "strncat"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace healers
