// Shared test scaffolding: a process pre-loaded with the stock libraries
// plus terse call helpers, so library-behaviour tests read like the C they
// model. Shared static library instances keep per-test cost down (libraries
// are immutable; processes are per-test).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linker/process.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/library.hpp"

namespace healers::testbed {

inline const simlib::SharedLibrary& libsimc() {
  static const simlib::SharedLibrary lib = simlib::build_libsimc();
  return lib;
}
inline const simlib::SharedLibrary& libsimio() {
  static const simlib::SharedLibrary lib = simlib::build_libsimio();
  return lib;
}
inline const simlib::SharedLibrary& libsimm() {
  static const simlib::SharedLibrary lib = simlib::build_libsimm();
  return lib;
}

// A process with all three stock libraries loaded.
inline std::unique_ptr<linker::Process> make_process(const std::string& name = "test") {
  auto process = std::make_unique<linker::Process>(name);
  process->load_library(&libsimc());
  process->load_library(&libsimio());
  process->load_library(&libsimm());
  return process;
}

// Terse call helpers.
inline simlib::SimValue I(std::int64_t v) { return simlib::SimValue::integer(v); }
inline simlib::SimValue P(mem::Addr v) { return simlib::SimValue::ptr(v); }
inline simlib::SimValue F(double v) { return simlib::SimValue::fp(v); }

}  // namespace healers::testbed
