// Unit tests for the simulated chunked heap, including the properties the
// security demo depends on: silent cross-chunk corruption and the unsafe
// unlink's arbitrary-write behaviour.
#include <gtest/gtest.h>

#include "memmodel/heap.hpp"

namespace healers::mem {
namespace {

struct HeapFixture : ::testing::Test {
  AddressSpace space;
  Heap heap{space, 64 << 10};
};

TEST_F(HeapFixture, MallocReturnsAlignedWritableUserMemory) {
  const Addr p = heap.malloc(100);
  ASSERT_NE(p, 0u);
  EXPECT_EQ(p % Heap::kAlign, 0u);
  EXPECT_GE(heap.usable_size(p), 100u);
  space.store8(p, 42);
  space.store8(p + 99, 43);
  EXPECT_EQ(space.load8(p), 42u);
}

TEST_F(HeapFixture, MallocZeroReturnsDistinctLiveAllocations) {
  const Addr a = heap.malloc(0);
  const Addr b = heap.malloc(0);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_TRUE(heap.is_live(a));
}

TEST_F(HeapFixture, ConsecutiveMallocsAreAdjacentChunks) {
  // Load-bearing for the unlink exploit: B's header sits right after A's
  // user area (plus nothing else).
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  EXPECT_EQ(b, a + 64 + Heap::kHeaderSize);
}

TEST_F(HeapFixture, FreeMakesMemoryReusable) {
  const Addr a = heap.malloc(128);
  heap.free(a);
  const Addr b = heap.malloc(128);
  EXPECT_EQ(b, a);  // first fit reuses the freed chunk
}

TEST_F(HeapFixture, FreeNullIsNoop) {
  EXPECT_NO_THROW(heap.free(0));
  EXPECT_EQ(heap.stats().frees, 0u);
}

TEST_F(HeapFixture, DoubleFreeAborts) {
  const Addr p = heap.malloc(32);
  heap.free(p);
  EXPECT_THROW(heap.free(p), SimAbort);
}

TEST_F(HeapFixture, FreeOfNonHeapPointerAborts) {
  const Region& scratch = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "s");
  EXPECT_THROW(heap.free(scratch.base + 16), SimAbort);
  EXPECT_THROW(heap.free(heap.arena_base() + heap.arena_size() + 64), SimAbort);
}

TEST_F(HeapFixture, ExhaustionReturnsNull) {
  const Addr big = heap.malloc(60 << 10);
  ASSERT_NE(big, 0u);
  EXPECT_EQ(heap.malloc(32 << 10), 0u);
  EXPECT_EQ(heap.stats().failed_allocs, 1u);
}

TEST_F(HeapFixture, HugeRequestFailsCleanly) {
  EXPECT_EQ(heap.malloc(~std::uint64_t{0} - 4), 0u);
  EXPECT_EQ(heap.malloc(1ULL << 40), 0u);
}

TEST_F(HeapFixture, ForwardCoalescingMergesNeighbours) {
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  const Addr c = heap.malloc(64);
  ASSERT_NE(c, 0u);
  heap.free(b);
  heap.free(a);  // a coalesces forward into b
  const Addr big = heap.malloc(140);  // only fits in the merged chunk
  EXPECT_EQ(big, a);
  EXPECT_TRUE(heap.check_integrity().empty()) << heap.check_integrity();
}

TEST_F(HeapFixture, StatsTrackLifecycle) {
  const Addr a = heap.malloc(100);
  const Addr b = heap.malloc(50);
  EXPECT_EQ(heap.stats().allocations, 2u);
  EXPECT_EQ(heap.stats().chunks_in_use, 2u);
  EXPECT_GE(heap.stats().bytes_in_use, 150u);
  heap.free(a);
  heap.free(b);
  EXPECT_EQ(heap.stats().frees, 2u);
  EXPECT_EQ(heap.stats().chunks_in_use, 0u);
  EXPECT_EQ(heap.stats().bytes_in_use, 0u);
}

TEST_F(HeapFixture, ReallocGrowsAndPreservesContents) {
  const Addr p = heap.malloc(16);
  space.write_cstring(p, "abcdefghij");
  const Addr q = heap.realloc(p, 256);
  ASSERT_NE(q, 0u);
  EXPECT_EQ(space.read_cstring(q), "abcdefghij");
  EXPECT_GE(heap.usable_size(q), 256u);
}

TEST_F(HeapFixture, ReallocNullActsAsMalloc) {
  const Addr p = heap.realloc(0, 64);
  ASSERT_NE(p, 0u);
  EXPECT_TRUE(heap.is_live(p));
}

TEST_F(HeapFixture, ReallocZeroFrees) {
  const Addr p = heap.malloc(64);
  EXPECT_EQ(heap.realloc(p, 0), 0u);
  EXPECT_FALSE(heap.is_live(p));
}

TEST_F(HeapFixture, IsLiveTracksState) {
  const Addr p = heap.malloc(32);
  EXPECT_TRUE(heap.is_live(p));
  EXPECT_FALSE(heap.is_live(p + 8));  // interior pointer is not a chunk start
  heap.free(p);
  EXPECT_FALSE(heap.is_live(p));
}

TEST_F(HeapFixture, ChunkWalkCoversArena) {
  (void)heap.malloc(64);
  (void)heap.malloc(128);
  std::uint64_t covered = Heap::kMinChunk;  // bin sentinel
  for (const ChunkInfo& info : heap.chunks()) covered += info.size;
  EXPECT_EQ(covered, heap.arena_size());
  EXPECT_TRUE(heap.check_integrity().empty());
}

TEST_F(HeapFixture, OverflowBetweenChunksIsSilent) {
  // The property the whole security demo rests on: writing past an
  // allocation does NOT fault — it corrupts the next chunk's header.
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  ASSERT_NE(b, 0u);
  for (std::uint64_t i = 0; i < 80; ++i) {
    EXPECT_NO_THROW(space.store8(a + i, 0x41));
  }
  EXPECT_FALSE(heap.check_integrity().empty());  // and integrity sees it
}

TEST_F(HeapFixture, UnsafeUnlinkGivesArbitraryWrite) {
  // Reproduce the exploit primitive in isolation: craft a fake free chunk
  // after `a`, then free(a) and observe the 8-byte write at an address the
  // "attacker" chose.
  const Addr a = heap.malloc(64);
  (void)heap.malloc(64);  // the victim chunk whose header gets forged
  const Region& target = space.map(64, Perm::kReadWrite, RegionKind::kData, "target");
  const Addr fake_hdr = a + 64;
  space.store64(fake_hdr, 80);             // size 80, in-use bit clear
  space.store64(fake_hdr + 8, 80);         // prev_size
  // bk is both the value written to the target AND a pointer the unlink
  // writes through (*(bk+16) = fd) — so, as in the real exploit, it must
  // aim at attacker-writable memory ("shellcode").
  const Addr shellcode = target.base + 32;
  space.store64(fake_hdr + 16, target.base - 24);  // fd: target - 24
  space.store64(fake_hdr + 24, shellcode);         // bk
  heap.free(a);
  EXPECT_EQ(space.load64(target.base), shellcode);       // *(fd+24) = bk
  EXPECT_EQ(space.load64(shellcode + 16), target.base - 24);  // *(bk+16) = fd
}

TEST_F(HeapFixture, SafeUnlinkAbortsOnForgedChunk) {
  heap.set_safe_unlink(true);
  const Addr a = heap.malloc(64);
  (void)heap.malloc(64);
  const Addr fake_hdr = a + 64;
  space.store64(fake_hdr, 80);      // forged "free" neighbour
  space.store64(fake_hdr + 8, 80);
  space.store64(fake_hdr + 16, 0x1234);  // fd/bk fail the integrity check
  space.store64(fake_hdr + 24, 0x5678);
  EXPECT_THROW(heap.free(a), SimAbort);
}

TEST_F(HeapFixture, SafeUnlinkAllowsLegitimateCoalescing) {
  heap.set_safe_unlink(true);
  const Addr a = heap.malloc(64);
  const Addr b = heap.malloc(64);
  (void)heap.malloc(16);  // keep the tail busy
  heap.free(b);
  EXPECT_NO_THROW(heap.free(a));  // genuine free neighbour: unlink passes
  EXPECT_TRUE(heap.check_integrity().empty()) << heap.check_integrity();
}

TEST_F(HeapFixture, TinyArenaRejected) {
  AddressSpace other;
  EXPECT_THROW(Heap(other, 32), std::invalid_argument);
}

TEST(HeapProperty, RandomOpSequencePreservesIntegrity) {
  AddressSpace space;
  Heap heap(space, 64 << 10);
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::vector<Addr> live;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || next() % 3 != 0) {
      const Addr p = heap.malloc(next() % 300);
      if (p != 0) live.push_back(p);
    } else {
      const std::size_t victim = next() % live.size();
      heap.free(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(heap.check_integrity().empty())
        << "after op " << i << ": " << heap.check_integrity();
  }
  EXPECT_EQ(heap.stats().chunks_in_use, live.size());
}

}  // namespace
}  // namespace healers::mem
