// Golden-tick determinism suite for the memory fast path.
//
// The simulated substrate is an oracle: tick counts decide the hang outcome,
// cycle counts feed the profiling wrapper, and fault addresses decide probe
// verdicts, so the span-based fast path must be *bit-identical* to the
// byte-at-a-time reference semantics. This suite pins that equivalence three
// ways:
//
//   1. a golden matrix — step/cycle deltas and results for a representative
//      call mix (string/memory/stdio, normal + faulting + hanging), captured
//      from the pre-fast-path implementation and asserted exactly;
//   2. a campaign fingerprint — a fault-injection probe run whose derived
//      robust-API XML must serialize to the exact same bytes;
//   3. cache configuration independence — every scenario repeated with the
//      region cache disabled must produce identical observables, and
//      randomized map/unmap/protect/restore/snapshot sequences must never
//      leave the cache able to answer differently from the uncached map walk.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "injector/injector.hpp"
#include "linker/executable.hpp"
#include "simlib/library.hpp"
#include "testbed.hpp"

namespace healers {
namespace {

using mem::Addr;
using mem::AddressSpace;
using mem::Perm;
using mem::RegionKind;
using testbed::I;
using testbed::P;

// Shared across scenarios so the (deterministic, memoized) robust-API derive
// runs once instead of once per wrapped scenario.
core::Toolkit& shared_toolkit() {
  static core::Toolkit toolkit;
  return toolkit;
}

// Spawns a process with libsimc wrapped the requested way ("profiling",
// "robustness", "security", or "all"). The wrapper layers route argument
// checks and canary scans through the same substrate, so the golden matrix
// covers them too.
std::unique_ptr<linker::Process> spawn_wrapped(const std::string& kind) {
  core::Toolkit& toolkit = shared_toolkit();
  linker::Executable exe;
  exe.name = "golden-wrapped";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"strlen", "strcpy", "memcmp", "sprintf", "malloc", "free"};
  const auto campaign = [&] {
    injector::InjectorConfig config;
    config.seed = 1;
    config.variants = 1;
    return toolkit.derive_robust_api("libsimc.so.1", config).value();
  };
  std::vector<linker::InterpositionPtr> preloads;
  if (kind == "profiling" || kind == "all") {
    preloads.push_back(toolkit.profiling_wrapper("libsimc.so.1").value());
  }
  if (kind == "robustness" || kind == "all") {
    preloads.push_back(toolkit.robustness_wrapper("libsimc.so.1", campaign()).value());
  }
  if (kind == "security" || kind == "all") {
    preloads.push_back(toolkit.security_wrapper("libsimc.so.1").value());
  }
  return toolkit.spawn(exe, std::move(preloads));
}

// What one scenario observed. Everything that downstream layers can see.
struct Observation {
  std::string name;
  std::uint64_t steps = 0;
  std::uint64_t cycles = 0;
  std::string result;  // return value / outcome kind / fault detail
};

std::string outcome_string(const linker::CallOutcome& outcome) {
  switch (outcome.kind) {
    case linker::CallOutcome::Kind::kReturned:
      return "ret=" + std::to_string(outcome.ret.as_int());
    case linker::CallOutcome::Kind::kCrash:
      return "crash: " + outcome.detail;
    case linker::CallOutcome::Kind::kHang:
      return "hang: " + outcome.detail;
    case linker::CallOutcome::Kind::kAbort:
      return "abort: " + outcome.detail;
    case linker::CallOutcome::Kind::kHijack:
      return "hijack: " + outcome.detail;
    case linker::CallOutcome::Kind::kExit:
      return "exit=" + std::to_string(outcome.exit_code);
    case linker::CallOutcome::Kind::kNotRun:
      return "not-run";
  }
  return "?";
}

// Runs every scenario on a fresh process and reports the observations in a
// fixed order. The matrix covers: terminator scans, bounded and unbounded
// copies, compares, fills, the stdio format loop, faulting variants of each
// (source fault, destination fault, permission fault), and hangs that
// preempt a bulk operation mid-way.
std::vector<Observation> run_matrix(bool cache_enabled) {
  std::vector<Observation> out;

  const auto observe = [&](const std::string& name, auto&& body) {
    auto proc = testbed::make_process("golden");
    proc->machine().mem().set_region_cache_enabled(cache_enabled);
    const std::uint64_t steps0 = proc->machine().steps();
    const std::uint64_t cycles0 = proc->machine().rdtsc();
    const std::string result = body(*proc);
    out.push_back({name, proc->machine().steps() - steps0,
                   proc->machine().rdtsc() - cycles0, result});
  };

  const auto call = [](linker::Process& proc, const std::string& sym,
                       std::vector<simlib::SimValue> args) {
    return outcome_string(proc.supervised_call(sym, std::move(args)));
  };

  // --- normal operation -----------------------------------------------------
  observe("strlen/short", [&](linker::Process& proc) {
    return call(proc, "strlen", {P(proc.rodata_cstring("golden ticks!"))});
  });
  observe("strlen/long", [&](linker::Process& proc) {
    return call(proc, "strlen", {P(proc.rodata_cstring(std::string(256, 'x')))});
  });
  observe("strcpy/ok", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    const std::string r =
        call(proc, "strcpy", {P(dest), P(proc.rodata_cstring("the quick brown fox"))});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });
  observe("strncpy/zero-fill", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    return call(proc, "strncpy", {P(dest), P(proc.rodata_cstring("abc")), I(16)});
  });
  observe("strcat/ok", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    proc.machine().mem().write_cstring(dest, "head+");
    const std::string r = call(proc, "strcat", {P(dest), P(proc.rodata_cstring("tail"))});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });
  observe("strcmp/differ", [&](linker::Process& proc) {
    return call(proc, "strcmp",
                {P(proc.rodata_cstring("alpha")), P(proc.rodata_cstring("alphb"))});
  });
  observe("strcmp/equal", [&](linker::Process& proc) {
    return call(proc, "strcmp",
                {P(proc.rodata_cstring("equal")), P(proc.rodata_cstring("equal"))});
  });
  observe("strncmp/bounded", [&](linker::Process& proc) {
    return call(proc, "strncmp",
                {P(proc.rodata_cstring("alphaX")), P(proc.rodata_cstring("alphaY")), I(5)});
  });
  observe("strchr/hit+miss", [&](linker::Process& proc) {
    const Addr s = proc.rodata_cstring("finding needle");
    const std::string hit = call(proc, "strchr", {P(s), I('n')});
    const std::string miss = call(proc, "strchr", {P(s), I('z')});
    return hit + " / " + miss;
  });
  observe("strnlen/capped", [&](linker::Process& proc) {
    return call(proc, "strnlen", {P(proc.rodata_cstring("bounded scan")), I(4)});
  });
  observe("strdup/ok", [&](linker::Process& proc) {
    const std::string r = call(proc, "strdup", {P(proc.rodata_cstring("dup me"))});
    return r;
  });
  observe("strcasecmp", [&](linker::Process& proc) {
    return call(proc, "strcasecmp",
                {P(proc.rodata_cstring("MiXeD")), P(proc.rodata_cstring("mixed"))});
  });
  observe("memcpy/48", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr src = proc.scratch(64, Perm::kReadWrite, "src");
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    for (std::uint64_t i = 0; i < 64; ++i) as.store8(src + i, static_cast<std::uint8_t>(i));
    const std::string r = call(proc, "memcpy", {P(dest), P(src), I(48)});
    return r + " tail=" + std::to_string(as.load8(dest + 47));
  });
  observe("memmove/overlap-both", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr buf = proc.scratch(64, Perm::kReadWrite, "buf");
    for (std::uint64_t i = 0; i < 64; ++i) as.store8(buf + i, static_cast<std::uint8_t>(i));
    const std::string fwd = call(proc, "memmove", {P(buf + 8), P(buf), I(32)});
    const std::string bwd = call(proc, "memmove", {P(buf), P(buf + 4), I(32)});
    return fwd + " / " + bwd + " probe=" + std::to_string(as.load8(buf + 20));
  });
  observe("memset/64", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    const std::string r = call(proc, "memset", {P(dest), I(0xAB), I(64)});
    return r + " probe=" + std::to_string(proc.machine().mem().load8(dest + 63));
  });
  observe("memcmp/equal+differ", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr a = proc.scratch(32, Perm::kReadWrite, "a");
    const Addr b = proc.scratch(32, Perm::kReadWrite, "b");
    const std::string eq = call(proc, "memcmp", {P(a), P(b), I(32)});
    as.store8(b + 17, 1);
    const std::string ne = call(proc, "memcmp", {P(a), P(b), I(32)});
    return eq + " / " + ne;
  });
  observe("memchr/hit+miss", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr s = proc.scratch(32, Perm::kReadWrite, "s");
    as.store8(s + 21, 7);
    const std::string hit = call(proc, "memchr", {P(s), I(7), I(32)});
    const std::string miss = call(proc, "memchr", {P(s), I(9), I(32)});
    return hit + " / " + miss;
  });
  observe("calloc/zeroed", [&](linker::Process& proc) {
    return call(proc, "calloc", {I(8), I(16)});
  });
  observe("sprintf/mixed", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(128, Perm::kReadWrite, "dest");
    const std::string r =
        call(proc, "sprintf", {P(dest), P(proc.rodata_cstring("x=%d hex=%x s=%s!")), I(42),
                               I(0xbeef), P(proc.rodata_cstring("str"))});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });
  observe("snprintf/truncated", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(32, Perm::kReadWrite, "dest");
    const std::string r = call(proc, "snprintf", {P(dest), I(10), P(proc.rodata_cstring("%s")),
                                                  P(proc.rodata_cstring("longer than cap"))});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });
  observe("printf/width", [&](linker::Process& proc) {
    return call(proc, "printf",
                {P(proc.rodata_cstring("%05d|%3s|%c")), I(7), P(proc.rodata_cstring("ab")),
                 I('!')});
  });
  observe("puts+fputs", [&](linker::Process& proc) {
    const std::string a = call(proc, "puts", {P(proc.rodata_cstring("to stdout"))});
    const auto file = proc.supervised_call(
        "fopen", {P(proc.rodata_cstring("/tmp/golden")), P(proc.rodata_cstring("w"))});
    const std::string b =
        call(proc, "fputs", {P(proc.rodata_cstring("to a file")), file.ret});
    const std::string c = call(proc, "fclose", {file.ret});
    return a + " / " + b + " / " + c;
  });
  observe("fwrite+fread", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr buf = proc.scratch(64, Perm::kReadWrite, "buf");
    for (std::uint64_t i = 0; i < 64; ++i) as.store8(buf + i, static_cast<std::uint8_t>('a' + i % 26));
    const auto w = proc.supervised_call(
        "fopen", {P(proc.rodata_cstring("/tmp/rw")), P(proc.rodata_cstring("w+"))});
    const std::string ws = call(proc, "fwrite", {P(buf), I(8), I(6), w.ret});
    call(proc, "rewind", {w.ret});
    const Addr back = proc.scratch(64, Perm::kReadWrite, "back");
    const std::string rs = call(proc, "fread", {P(back), I(8), I(6), w.ret});
    return ws + " / " + rs + " probe=" + std::to_string(as.load8(back + 40));
  });

  // --- faulting operation ---------------------------------------------------
  observe("fault/strlen-unterminated", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr s = proc.scratch(16, Perm::kReadWrite, "unterm");
    for (std::uint64_t i = 0; i < 16; ++i) as.store8(s + i, 'A');
    return call(proc, "strlen", {P(s)});
  });
  observe("fault/strcpy-dest-short", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(8, Perm::kReadWrite, "short");
    return call(proc, "strcpy", {P(dest), P(proc.rodata_cstring("0123456789abcdef"))});
  });
  observe("fault/strcpy-src-runs-out", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr src = proc.scratch(8, Perm::kReadWrite, "unterm-src");
    for (std::uint64_t i = 0; i < 8; ++i) as.store8(src + i, 'B');
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    return call(proc, "strcpy", {P(dest), P(src)});
  });
  observe("fault/strcpy-dest-readonly", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kRead, "ro-dest");
    return call(proc, "strcpy", {P(dest), P(proc.rodata_cstring("nope"))});
  });
  observe("fault/strncpy-fill-overruns", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(8, Perm::kReadWrite, "short");
    return call(proc, "strncpy", {P(dest), P(proc.rodata_cstring("ab")), I(32)});
  });
  observe("fault/strcat-dest-unterminated", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr dest = proc.scratch(8, Perm::kReadWrite, "unterm");
    for (std::uint64_t i = 0; i < 8; ++i) as.store8(dest + i, 'C');
    return call(proc, "strcat", {P(dest), P(proc.rodata_cstring("x"))});
  });
  observe("fault/strcmp-a-runs-out", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr a = proc.scratch(8, Perm::kReadWrite, "a");
    for (std::uint64_t i = 0; i < 8; ++i) as.store8(a + i, 'z');
    const Addr b = proc.alloc_cstring("zzzzzzzzzzzzzzzz");
    return call(proc, "strcmp", {P(a), P(b)});
  });
  observe("fault/memcpy-src-short", [&](linker::Process& proc) {
    const Addr src = proc.scratch(16, Perm::kReadWrite, "src16");
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    return call(proc, "memcpy", {P(dest), P(src), I(32)});
  });
  observe("fault/memset-readonly", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(16, Perm::kRead, "ro");
    return call(proc, "memset", {P(dest), I(1), I(4)});
  });
  observe("fault/memchr-past-end", [&](linker::Process& proc) {
    const Addr s = proc.scratch(16, Perm::kReadWrite, "s16");
    return call(proc, "memchr", {P(s), I(42), I(64)});
  });
  observe("fault/sprintf-wild-%s", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    return call(proc, "sprintf", {P(dest), P(proc.rodata_cstring("val=%s")),
                                  P(AddressSpace::wild_pointer())});
  });
  observe("fault/strlen-null", [&](linker::Process& proc) {
    return call(proc, "strlen", {P(0)});
  });

  // --- hangs: the budget preempts bulk work mid-flight ----------------------
  observe("hang/strlen-budget-100", [&](linker::Process& proc) {
    const Addr s = proc.rodata_cstring(std::string(300, 'h'));
    proc.machine().set_step_budget(proc.machine().steps() + 100);
    const std::string r = call(proc, "strlen", {P(s)});
    return r + " steps-after=" + std::to_string(proc.machine().steps());
  });
  observe("hang/memset-partial-write", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr dest = proc.scratch(1024, Perm::kReadWrite, "dest");
    proc.machine().set_step_budget(proc.machine().steps() + 100);
    const std::string r = call(proc, "memset", {P(dest), I(0x55), I(1024)});
    // Exactly the bytes ticked before the hang must have been written.
    std::uint64_t written = 0;
    while (written < 1024 && as.load8(dest + written) == 0x55) ++written;
    return r + " written=" + std::to_string(written);
  });
  observe("hang/strcpy-partial-write", [&](linker::Process& proc) {
    AddressSpace& as = proc.machine().mem();
    const Addr dest = proc.scratch(512, Perm::kReadWrite, "dest");
    const Addr src = proc.rodata_cstring(std::string(400, 's'));
    proc.machine().set_step_budget(proc.machine().steps() + 64);
    const std::string r = call(proc, "strcpy", {P(dest), P(src)});
    std::uint64_t written = 0;
    while (written < 512 && as.load8(dest + written) == 's') ++written;
    return r + " written=" + std::to_string(written);
  });

  // --- wrapped calls: the oracle must hold through the wrapper layers too ---
  const auto observe_wrapped = [&](const std::string& name, const std::string& kind,
                                   auto&& body) {
    auto proc = spawn_wrapped(kind);
    proc->machine().mem().set_region_cache_enabled(cache_enabled);
    const std::uint64_t steps0 = proc->machine().steps();
    const std::uint64_t cycles0 = proc->machine().rdtsc();
    const std::string result = body(*proc);
    out.push_back({name, proc->machine().steps() - steps0,
                   proc->machine().rdtsc() - cycles0, result});
  };

  observe_wrapped("wrapped/profiling-strlen", "profiling", [&](linker::Process& proc) {
    return call(proc, "strlen", {P(proc.rodata_cstring("wrapped golden"))});
  });
  observe_wrapped("wrapped/robustness-strlen", "robustness", [&](linker::Process& proc) {
    const std::string ok = call(proc, "strlen", {P(proc.rodata_cstring("wrapped golden"))});
    const std::string bad = call(proc, "strlen", {P(AddressSpace::wild_pointer())});
    return ok + " / " + bad;
  });
  observe_wrapped("wrapped/robustness-strcpy", "robustness", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    const std::string r =
        call(proc, "strcpy", {P(dest), P(proc.rodata_cstring("guarded copy"))});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });
  observe_wrapped("wrapped/security-malloc-memcmp", "security", [&](linker::Process& proc) {
    const auto a = proc.supervised_call("malloc", {I(32)});
    const auto b = proc.supervised_call("malloc", {I(32)});
    const std::string r = call(proc, "memcmp", {a.ret, b.ret, I(32)});
    const std::string fa = call(proc, "free", {a.ret});
    const std::string fb = call(proc, "free", {b.ret});
    return r + " / " + fa + " / " + fb;
  });
  observe_wrapped("wrapped/all-three-strcpy", "all", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    return call(proc, "strcpy", {P(dest), P(proc.rodata_cstring("stacked"))});
  });
  observe_wrapped("wrapped/bypass-sprintf", "profiling", [&](linker::Process& proc) {
    const Addr dest = proc.scratch(64, Perm::kReadWrite, "dest");
    const std::string r = call(
        proc, "sprintf", {P(dest), P(proc.rodata_cstring("n=%d")), I(9)});
    return r + " -> " + proc.machine().mem().read_cstring(dest);
  });

  return out;
}

// Fingerprint of a small fault-injection campaign: the serialized robust-API
// XML captures probe outcomes, fault kinds, and derived checks, so a single
// drifted tick or fault address changes the bytes.
std::string campaign_fingerprint() {
  linker::LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimio());
  catalog.install(&testbed::libsimm());
  injector::InjectorConfig config;
  config.seed = 7;
  config.variants = 2;
  config.jobs = 2;
  injector::FaultInjector injector(catalog, config);
  std::string blob;
  for (const char* fn : {"strlen", "strcpy", "memcpy", "strtok"}) {
    auto spec = injector.probe_function(testbed::libsimc(), fn);
    blob += xml::serialize(spec.value().to_xml());
  }
  // The stdio functions take fuzzed size/count pairs (including huge values
  // whose products wrap uint64), which caught a flattened-loop overflow the
  // string probes cannot see — keep them covered.
  for (const char* fn : {"sprintf", "snprintf", "fwrite", "fread", "fgets"}) {
    auto spec = injector.probe_function(testbed::libsimio(), fn);
    blob += xml::serialize(spec.value().to_xml());
  }
  return blob;
}

// FNV-1a, stable across platforms for ASCII blobs.
std::uint64_t fnv1a(const std::string& blob) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : blob) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct GoldenRow {
  const char* name;
  std::uint64_t steps;
  std::uint64_t cycles;
};

// Captured from the pre-fast-path (byte-at-a-time) implementation; the span
// fast path must reproduce every row bit-for-bit. Regenerate by running this
// binary with HEALERS_GOLDEN_PRINT=1 — but a diff here means the oracle
// moved, which invalidates every recorded experiment.
constexpr GoldenRow kGoldenMatrix[] = {
    {"strlen/short", 15, 15},                    // ret=13
    {"strlen/long", 258, 258},                   // ret=256
    {"strcpy/ok", 21, 21},                       // -> the quick brown fox
    {"strncpy/zero-fill", 17, 17},
    {"strcat/ok", 12, 12},                       // -> head+tail
    {"strcmp/differ", 6, 6},                     // ret=-1
    {"strcmp/equal", 7, 7},                      // ret=0
    {"strncmp/bounded", 6, 6},                   // ret=0
    {"strchr/hit+miss", 20, 20},
    {"strnlen/capped", 5, 5},                    // ret=4
    {"strdup/ok", 15, 15},
    {"strcasecmp", 7, 7},                        // ret=0
    {"memcpy/48", 49, 49},                       // tail=47
    {"memmove/overlap-both", 66, 66},            // probe=16
    {"memset/64", 65, 65},                       // probe=171
    {"memcmp/equal+differ", 52, 52},             // ret=0 / ret=-1
    {"memchr/hit+miss", 56, 56},
    {"calloc/zeroed", 137, 137},
    {"sprintf/mixed", 43, 43},                   // -> x=42 hex=beef s=str!
    {"snprintf/truncated", 29, 29},              // ret=15 -> longer th
    {"printf/width", 15, 15},                    // ret=11
    {"puts+fputs", 44, 44},
    {"fwrite+fread", 119, 119},                  // probe=111
    {"fault/strlen-unterminated", 18, 18},       // SIGSEGV at 0x177010: unmapped
    {"fault/strcpy-dest-short", 10, 10},         // SIGSEGV at 0x177008: unmapped
    {"fault/strcpy-src-runs-out", 10, 10},       // SIGSEGV at 0x177008: unmapped
    {"fault/strcpy-dest-readonly", 2, 2},        // permission violation 'ro-dest'
    {"fault/strncpy-fill-overruns", 10, 10},     // SIGSEGV at 0x177008: unmapped
    {"fault/strcat-dest-unterminated", 10, 10},  // SIGSEGV at 0x177008: unmapped
    {"fault/strcmp-a-runs-out", 10, 10},         // SIGSEGV at 0x177008: unmapped
    {"fault/memcpy-src-short", 18, 18},          // SIGSEGV at 0x177010: unmapped
    {"fault/memset-readonly", 2, 2},             // permission violation 'ro'
    {"fault/memchr-past-end", 18, 18},           // SIGSEGV at 0x177010: unmapped
    {"fault/sprintf-wild-%s", 8, 8},             // SIGSEGV at 0xdeadbeef000
    {"fault/strlen-null", 2, 2},                 // SIGSEGV at 0x0
    {"hang/strlen-budget-100", 101, 101},        // steps-after=101
    {"hang/memset-partial-write", 101, 101},     // written=99
    {"hang/strcpy-partial-write", 65, 65},       // written=63
    {"wrapped/profiling-strlen", 16, 40},        // ret=14
    {"wrapped/robustness-strlen", 17, 56},       // ret=14 / ret=-1
    {"wrapped/robustness-strcpy", 14, 50},       // -> guarded copy
    {"wrapped/security-malloc-memcmp", 69, 129},
    {"wrapped/all-three-strcpy", 9, 81},
    {"wrapped/bypass-sprintf", 9, 9},            // ret=3 -> n=9
};

constexpr std::uint64_t kGoldenCampaignHash = 9311990976367916448ULL;

TEST(GoldenTicks, MatrixMatchesPreFastPathBaseline) {
  const std::vector<Observation> observed = run_matrix(/*cache_enabled=*/true);
  if (std::getenv("HEALERS_GOLDEN_PRINT") != nullptr) {
    for (const Observation& row : observed) {
      std::printf("    {\"%s\", %llu, %llu},  // %s\n", row.name.c_str(),
                  static_cast<unsigned long long>(row.steps),
                  static_cast<unsigned long long>(row.cycles), row.result.c_str());
    }
    std::printf("campaign hash: %lluULL\n",
                static_cast<unsigned long long>(fnv1a(campaign_fingerprint())));
    return;
  }
  ASSERT_EQ(observed.size(), std::size(kGoldenMatrix));
  for (std::size_t i = 0; i < observed.size(); ++i) {
    EXPECT_EQ(observed[i].name, kGoldenMatrix[i].name);
    EXPECT_EQ(observed[i].steps, kGoldenMatrix[i].steps) << observed[i].name << ": "
                                                         << observed[i].result;
    EXPECT_EQ(observed[i].cycles, kGoldenMatrix[i].cycles) << observed[i].name << ": "
                                                           << observed[i].result;
  }
}

TEST(GoldenTicks, CampaignFingerprintIsBitIdentical) {
  if (std::getenv("HEALERS_GOLDEN_PRINT") != nullptr) GTEST_SKIP();
  EXPECT_EQ(fnv1a(campaign_fingerprint()), kGoldenCampaignHash);
}

TEST(GoldenTicks, CacheDisabledIsObservablyIdentical) {
  const std::vector<Observation> with_cache = run_matrix(/*cache_enabled=*/true);
  const std::vector<Observation> without_cache = run_matrix(/*cache_enabled=*/false);
  ASSERT_EQ(with_cache.size(), without_cache.size());
  for (std::size_t i = 0; i < with_cache.size(); ++i) {
    EXPECT_EQ(with_cache[i].steps, without_cache[i].steps) << with_cache[i].name;
    EXPECT_EQ(with_cache[i].cycles, without_cache[i].cycles) << with_cache[i].name;
    EXPECT_EQ(with_cache[i].result, without_cache[i].result) << with_cache[i].name;
  }
}

// Property test: no map/unmap/protect/restore/snapshot sequence may leave
// the region cache able to answer differently from the uncached map walk.
TEST(RegionCacheProperty, RandomizedLifecycleNeverGoesStale) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int round = 0; round < 20; ++round) {
    AddressSpace cached;
    AddressSpace uncached;
    uncached.set_region_cache_enabled(false);
    std::vector<Addr> bases;
    // COW snapshots are refcounted handles: any number may coexist and be
    // restored in any order, so the lifecycle keeps a whole stack of them.
    std::vector<AddressSpace::Snapshot> snaps_cached;
    std::vector<AddressSpace::Snapshot> snaps_uncached;

    const auto probe_everywhere = [&]() {
      // Probe region starts, interiors, ends, and guard gaps, in a mixed
      // order that exercises cache reuse across regions.
      std::vector<Addr> probes = {0, 0xfff, AddressSpace::wild_pointer()};
      for (const Addr base : bases) {
        for (const Addr p : {base, base + 1, base + 37, base + 4095, base + 4096}) {
          probes.push_back(p);
        }
      }
      for (int repeat = 0; repeat < 2; ++repeat) {
        for (const Addr p : probes) {
          const mem::Region* a = cached.find(p);
          const mem::Region* b = uncached.find(p);
          ASSERT_EQ(a == nullptr, b == nullptr) << "addr 0x" << std::hex << p;
          if (a != nullptr) {
            ASSERT_EQ(a->base, b->base);
            ASSERT_EQ(a->size, b->size);
            ASSERT_EQ(a->perm, b->perm);
          }
          for (const Perm perm : {Perm::kRead, Perm::kWrite}) {
            ASSERT_EQ(cached.accessible(p, 8, perm), uncached.accessible(p, 8, perm));
          }
        }
      }
    };

    for (int op = 0; op < 120; ++op) {
      switch (rng() % 6) {
        case 0:
        case 1: {  // map (biased: layouts should grow)
          const std::uint64_t size = 1 + rng() % 0x3000;
          const Perm perm = static_cast<Perm>(1 + rng() % 3);
          cached.map(size, perm, RegionKind::kScratch, "r");
          bases.push_back(uncached.map(size, perm, RegionKind::kScratch, "r").base);
          break;
        }
        case 2: {  // unmap a random live region
          if (bases.empty()) break;
          const std::size_t idx = rng() % bases.size();
          cached.unmap(bases[idx]);
          uncached.unmap(bases[idx]);
          bases.erase(bases.begin() + static_cast<std::ptrdiff_t>(idx));
          break;
        }
        case 3: {  // protect a random live region
          if (bases.empty()) break;
          const Addr base = bases[rng() % bases.size()];
          const Perm perm = static_cast<Perm>(1 + rng() % 3);
          cached.protect(base, perm);
          uncached.protect(base, perm);
          break;
        }
        case 4: {  // fork: seal another coexisting snapshot
          snaps_cached.push_back(cached.snapshot());
          snaps_uncached.push_back(uncached.snapshot());
          break;
        }
        case 5: {  // restore ANY earlier snapshot, not just the latest
          if (snaps_cached.empty()) break;
          const std::size_t idx = rng() % snaps_cached.size();
          cached.restore(snaps_cached[idx]);
          uncached.restore(snaps_uncached[idx]);
          bases.clear();
          for (const mem::RegionImage& region : snaps_cached[idx].regions()) {
            bases.push_back(region.base);
          }
          break;
        }
      }
      probe_everywhere();
    }
  }
}

}  // namespace
}  // namespace healers
