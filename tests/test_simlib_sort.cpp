// Behaviour tests for qsort/bsearch and the function-pointer machinery:
// callback registration and dispatch, sorting semantics, fragility on bad
// function pointers, fault-injection derivation for FUNCPTR args, and
// containment by the robustness wrapper.
#include <gtest/gtest.h>

#include "injector/injector.hpp"
#include "parser/header_parser.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers {
namespace {

using testbed::I;
using testbed::P;

struct SortFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::AddressSpace& mem() { return proc->machine().mem(); }

  // A byte-wise ascending comparator callback.
  mem::Addr byte_comparator() {
    return proc->register_callback("byte_cmp", [](simlib::CallContext& cb) {
      const int a = cb.machine.mem().load8(cb.arg_ptr(0));
      const int b = cb.machine.mem().load8(cb.arg_ptr(1));
      return simlib::SimValue::integer(a - b);
    });
  }

  // A little-endian u32 comparator.
  mem::Addr u32_comparator() {
    return proc->register_callback("u32_cmp", [](simlib::CallContext& cb) {
      auto load32 = [&cb](mem::Addr p) {
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) v = (v << 8) | cb.machine.mem().load8(p + i);
        return v;
      };
      const std::uint32_t a = load32(cb.arg_ptr(0));
      const std::uint32_t b = load32(cb.arg_ptr(1));
      return simlib::SimValue::integer(a < b ? -1 : (a > b ? 1 : 0));
    });
  }

  mem::Addr bytes(const std::string& data) {
    const mem::Addr addr = proc->scratch(data.size() + 1);
    mem().write_cstring(addr, data);
    return addr;
  }
};

TEST_F(SortFixture, QsortSortsBytes) {
  const mem::Addr array = bytes("dacb");
  proc->call("qsort", {P(array), I(4), I(1), P(byte_comparator())});
  EXPECT_EQ(mem().read_cstring(array), "abcd");
}

TEST_F(SortFixture, QsortAlreadySortedIsStableNoop) {
  const mem::Addr array = bytes("abcd");
  proc->call("qsort", {P(array), I(4), I(1), P(byte_comparator())});
  EXPECT_EQ(mem().read_cstring(array), "abcd");
}

TEST_F(SortFixture, QsortMultibyteElements) {
  const mem::Addr array = proc->scratch(16);
  const std::uint32_t values[] = {400, 10, 7, 90};
  for (int i = 0; i < 4; ++i) {
    for (int b = 0; b < 4; ++b) {
      mem().store8(array + static_cast<std::uint64_t>(i * 4 + b),
                   static_cast<std::uint8_t>(values[i] >> (8 * b)));
    }
  }
  proc->call("qsort", {P(array), I(4), I(4), P(u32_comparator())});
  auto load32 = [this, array](int i) {
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) {
      v = (v << 8) | mem().load8(array + static_cast<std::uint64_t>(i * 4 + b));
    }
    return v;
  };
  EXPECT_EQ(load32(0), 7u);
  EXPECT_EQ(load32(1), 10u);
  EXPECT_EQ(load32(2), 90u);
  EXPECT_EQ(load32(3), 400u);
}

TEST_F(SortFixture, QsortZeroAndOneElementAreNoops) {
  const mem::Addr array = bytes("x");
  EXPECT_NO_THROW(proc->call("qsort", {P(array), I(0), I(1), P(byte_comparator())}));
  EXPECT_NO_THROW(proc->call("qsort", {P(array), I(1), I(1), P(byte_comparator())}));
  EXPECT_EQ(mem().read_cstring(array), "x");
}

TEST_F(SortFixture, QsortThroughGarbageComparatorCrashes) {
  const mem::Addr array = bytes("ba");
  EXPECT_THROW(proc->call("qsort", {P(array), I(2), I(1), P(array)}), AccessFault);
  EXPECT_THROW(proc->call("qsort", {P(array), I(2), I(1), P(0)}), AccessFault);
  EXPECT_THROW(
      proc->call("qsort", {P(array), I(2), I(1), P(mem::AddressSpace::wild_pointer())}),
      AccessFault);
}

TEST_F(SortFixture, QsortHugeArrayHitsHangOracle) {
  proc->machine().set_step_budget(100'000);
  const mem::Addr array = proc->scratch(1 << 15);
  // Reverse-sorted worst case over 32K one-byte elements: quadratic work
  // exceeds the budget (a driver-timeout outcome, not a crash).
  for (std::uint64_t i = 0; i < (1 << 15); ++i) {
    mem().store8(array + i, static_cast<std::uint8_t>(255 - (i % 256)));
  }
  const auto outcome =
      proc->supervised_call("qsort", {P(array), I(1 << 15), I(1), P(byte_comparator())});
  EXPECT_EQ(outcome.kind, linker::CallOutcome::Kind::kHang);
}

TEST_F(SortFixture, BsearchFindsAndMisses) {
  const mem::Addr array = bytes("adfkz");
  const mem::Addr key = bytes("k");
  const auto hit =
      proc->call("bsearch", {P(key), P(array), I(5), I(1), P(byte_comparator())});
  EXPECT_EQ(hit.as_ptr(), array + 3);
  const mem::Addr missing = bytes("q");
  const auto miss =
      proc->call("bsearch", {P(missing), P(array), I(5), I(1), P(byte_comparator())});
  EXPECT_EQ(miss.as_ptr(), 0u);
}

TEST_F(SortFixture, BsearchEmptyArrayReturnsNull) {
  const mem::Addr key = bytes("a");
  EXPECT_EQ(proc->call("bsearch", {P(key), P(key), I(0), I(1), P(byte_comparator())}).as_ptr(),
            0u);
}

TEST_F(SortFixture, CallbacksCanThemselvesCrash) {
  // A comparator that dereferences NULL: the fault propagates out of qsort
  // like any library crash — callbacks are app code, not protected code.
  const mem::Addr bad = proc->register_callback("crashing_cmp", [](simlib::CallContext& cb) {
    return simlib::SimValue::integer(cb.machine.mem().load8(0));
  });
  const mem::Addr array = bytes("ba");
  EXPECT_THROW(proc->call("qsort", {P(array), I(2), I(1), P(bad)}), AccessFault);
}

// --- parser: function-pointer declarators -----------------------------------

TEST(FuncPtrParsing, QsortDeclarationRoundTrips) {
  const char* decl =
      "void qsort(void *base, size_t nmemb, size_t size, "
      "int (*compar)(const void *, const void *));";
  auto proto = parser::parse_declaration(decl);
  ASSERT_TRUE(proto.ok()) << proto.error().message;
  ASSERT_EQ(proto.value().params.size(), 4u);
  const parser::TypeExpr& compar = proto.value().params[3].type;
  EXPECT_TRUE(compar.is_function_pointer);
  EXPECT_TRUE(compar.is_pointer());
  EXPECT_EQ(compar.classify(), parser::TypeClass::kPointer);
  ASSERT_EQ(compar.fn_params.size(), 2u);
  EXPECT_EQ(compar.fn_params[0].to_string(), "const void *");
  EXPECT_EQ(proto.value().params[3].name, "compar");
  EXPECT_EQ(proto.value().to_declaration(), decl);
}

TEST(FuncPtrParsing, UnnamedAndVoidParamCallbacks) {
  auto proto = parser::parse_declaration("int apply(int (*fn)(void), int x);");
  ASSERT_TRUE(proto.ok()) << proto.error().message;
  EXPECT_TRUE(proto.value().params[0].type.is_function_pointer);
  EXPECT_TRUE(proto.value().params[0].type.fn_params.empty());

  auto anon = parser::parse_declaration("int apply2(int (*)(int, int));");
  ASSERT_TRUE(anon.ok()) << anon.error().message;
  EXPECT_TRUE(anon.value().params[0].name.empty());
  EXPECT_EQ(anon.value().params[0].type.fn_params.size(), 2u);
}

TEST(FuncPtrParsing, MalformedDeclaratorsRejected) {
  EXPECT_FALSE(parser::parse_declaration("void f(int (compar)(int));").ok());
  EXPECT_FALSE(parser::parse_declaration("void f(int (*compar)(int);").ok());
  EXPECT_FALSE(parser::parse_declaration("void f(int (*compar);").ok());
}

// --- derivation + containment -------------------------------------------------

TEST(FuncPtrHardening, CampaignDerivesCallbackRoleAndWrapperContains) {
  linker::LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimio());
  catalog.install(&testbed::libsimm());
  injector::InjectorConfig config;
  config.seed = 3;
  config.variants = 1;
  injector::FaultInjector injector(catalog, config);
  const auto spec = injector.probe_function(testbed::libsimc(), "qsort").value();
  ASSERT_EQ(spec.args.size(), 4u);
  EXPECT_TRUE(spec.args[3].checks.require_callback);
  EXPECT_EQ(spec.args[3].safe_type_name(), "registered callback function pointer");
  EXPECT_GT(spec.total_failures, 0u);

  // Wrapped: a garbage comparator is contained, a valid one still sorts.
  injector::CampaignResult campaign;
  campaign.library = testbed::libsimc().soname();
  campaign.specs.push_back(spec);
  auto proc = testbed::make_process();
  proc->preload(wrappers::make_robustness_wrapper(testbed::libsimc(), campaign).value());
  const mem::Addr array = proc->scratch(8);
  proc->machine().mem().write_cstring(array, "cba");
  const auto contained =
      proc->supervised_call("qsort", {P(array), I(3), I(1), P(array)});
  EXPECT_FALSE(contained.robustness_failure());
  EXPECT_EQ(proc->machine().mem().read_cstring(array), "cba");  // untouched

  const mem::Addr cmp = proc->register_callback("cmp", [](simlib::CallContext& cb) {
    const int a = cb.machine.mem().load8(cb.arg_ptr(0));
    const int b = cb.machine.mem().load8(cb.arg_ptr(1));
    return simlib::SimValue::integer(a - b);
  });
  proc->call("qsort", {P(array), I(3), I(1), P(cmp)});
  EXPECT_EQ(proc->machine().mem().read_cstring(array), "abc");
}

}  // namespace
}  // namespace healers
