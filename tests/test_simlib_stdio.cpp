// Behaviour tests for the stdio subset: stream lifecycle over the in-memory
// filesystem, errno discipline, the FILE-object fragility (garbage/stale
// pointers crash), and the printf engine.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace healers {
namespace {

using testbed::I;
using testbed::P;

struct StdioFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::AddressSpace& mem() { return proc->machine().mem(); }
  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
  mem::Addr buf(std::uint64_t size) { return proc->scratch(size); }

  simlib::SimValue open(const std::string& path, const std::string& mode) {
    return proc->call("fopen", {P(str(path)), P(str(mode))});
  }
};

TEST_F(StdioFixture, FopenMissingFileReadSetsEnoent) {
  EXPECT_EQ(open("/nope", "r").as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kENOENT);
}

TEST_F(StdioFixture, FopenWriteCreatesFile) {
  const auto f = open("/new.txt", "w");
  ASSERT_NE(f.as_ptr(), 0u);
  EXPECT_TRUE(proc->state().fs.exists("/new.txt"));
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, FopenBadModeSetsEinval) {
  EXPECT_EQ(open("/x", "q").as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
}

TEST_F(StdioFixture, FopenTruncatesOnW) {
  proc->state().fs.put("/t", "old contents");
  const auto f = open("/t", "w");
  ASSERT_NE(f.as_ptr(), 0u);
  EXPECT_EQ(*proc->state().fs.contents("/t"), "");
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, AppendModePositionsAtEnd) {
  proc->state().fs.put("/a", "12345");
  const auto f = open("/a", "a");
  proc->call("fputs", {P(str("67")), f});
  EXPECT_EQ(*proc->state().fs.contents("/a"), "1234567");
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, WriteReadRoundTrip) {
  const auto out = open("/data", "w");
  proc->call("fwrite", {P(str("hello world")), I(1), I(11), out});
  proc->call("fclose", {out});

  const auto in = open("/data", "r");
  const mem::Addr dst = buf(32);
  EXPECT_EQ(proc->call("fread", {P(dst), I(1), I(11), in}).as_int(), 11);
  EXPECT_EQ(mem().read_bytes(dst, 5), mem().read_bytes(str("hello"), 5));
  proc->call("fclose", {in});
}

TEST_F(StdioFixture, FreadPartialRecordsStopShort) {
  proc->state().fs.put("/r", "123456789");  // 9 bytes
  const auto f = open("/r", "r");
  const mem::Addr dst = buf(32);
  EXPECT_EQ(proc->call("fread", {P(dst), I(4), I(3), f}).as_int(), 2);  // 2 full records
  EXPECT_EQ(proc->call("feof", {f}).as_int(), 1);
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, FgetsReadsLinewise) {
  proc->state().fs.put("/lines", "one\ntwo\n");
  const auto f = open("/lines", "r");
  const mem::Addr line = buf(32);
  ASSERT_NE(proc->call("fgets", {P(line), I(32), f}).as_ptr(), 0u);
  EXPECT_EQ(mem().read_cstring(line), "one\n");
  ASSERT_NE(proc->call("fgets", {P(line), I(32), f}).as_ptr(), 0u);
  EXPECT_EQ(mem().read_cstring(line), "two\n");
  EXPECT_EQ(proc->call("fgets", {P(line), I(32), f}).as_ptr(), 0u);  // EOF
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, FgetsBoundsAtNMinusOne) {
  proc->state().fs.put("/big", "abcdefghij");
  const auto f = open("/big", "r");
  const mem::Addr line = buf(8);
  proc->call("fgets", {P(line), I(5), f});
  EXPECT_EQ(mem().read_cstring(line), "abcd");
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, FgetcFputcAndFeof) {
  const auto out = open("/c", "w");
  proc->call("fputc", {I('Z'), out});
  proc->call("fclose", {out});
  const auto in = open("/c", "r");
  EXPECT_EQ(proc->call("fgetc", {in}).as_int(), 'Z');
  EXPECT_EQ(proc->call("fgetc", {in}).as_int(), -1);
  EXPECT_EQ(proc->call("feof", {in}).as_int(), 1);
  proc->call("fclose", {in});
}

TEST_F(StdioFixture, FtellAndRewind) {
  proc->state().fs.put("/pos", "abcdef");
  const auto f = open("/pos", "r");
  proc->call("fgetc", {f});
  proc->call("fgetc", {f});
  EXPECT_EQ(proc->call("ftell", {f}).as_int(), 2);
  proc->call("rewind", {f});
  EXPECT_EQ(proc->call("ftell", {f}).as_int(), 0);
  EXPECT_EQ(proc->call("fgetc", {f}).as_int(), 'a');
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, ReadOnWriteOnlyStreamSetsEbadf) {
  const auto f = open("/wo", "w");
  const mem::Addr dst = buf(8);
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("fread", {P(dst), I(1), I(1), f}).as_int(), 0);
  EXPECT_EQ(proc->machine().err(), simlib::kEBADF);
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, WriteOnReadOnlyStreamSetsEbadf) {
  proc->state().fs.put("/ro", "x");
  const auto f = open("/ro", "r");
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("fputs", {P(str("y")), f}).as_int(), -1);
  EXPECT_EQ(proc->machine().err(), simlib::kEBADF);
  proc->call("fclose", {f});
}

TEST_F(StdioFixture, GarbageFilePointerCrashes) {
  const mem::Addr garbage = buf(32);  // mapped but not a FILE
  EXPECT_THROW(proc->call("fclose", {P(garbage)}), AccessFault);
  EXPECT_THROW(proc->call("fgetc", {P(garbage)}), AccessFault);
  EXPECT_THROW(proc->call("fgetc", {P(mem::AddressSpace::wild_pointer())}), AccessFault);
  EXPECT_THROW(proc->call("fclose", {P(0)}), AccessFault);
}

TEST_F(StdioFixture, UseAfterFcloseCrashes) {
  const auto f = open("/uaf", "w");
  proc->call("fclose", {f});
  EXPECT_THROW(proc->call("fputc", {I('x'), f}), AccessFault);
}

TEST_F(StdioFixture, OpenFileSlotReuseAfterClose) {
  const auto f1 = open("/s1", "w");
  proc->call("fclose", {f1});
  const auto f2 = open("/s2", "w");
  ASSERT_NE(f2.as_ptr(), 0u);
  EXPECT_NO_THROW(proc->call("fputc", {I('x'), f2}));
  proc->call("fclose", {f2});
}

TEST_F(StdioFixture, TooManyOpenFilesSetsEmfile) {
  std::vector<simlib::SimValue> files;
  for (std::size_t i = 0; i < simlib::kMaxOpenFiles; ++i) {
    const auto f = open("/many" + std::to_string(i), "w");
    ASSERT_NE(f.as_ptr(), 0u) << i;
    files.push_back(f);
  }
  proc->machine().set_err(0);
  EXPECT_EQ(open("/one-more", "w").as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kEMFILE);
}

TEST_F(StdioFixture, RemoveDeletesAndReportsMissing) {
  proc->state().fs.put("/del", "x");
  EXPECT_EQ(proc->call("remove", {P(str("/del"))}).as_int(), 0);
  EXPECT_FALSE(proc->state().fs.exists("/del"));
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("remove", {P(str("/del"))}).as_int(), -1);
  EXPECT_EQ(proc->machine().err(), simlib::kENOENT);
}

TEST_F(StdioFixture, SprintfFormatsConversions) {
  const mem::Addr dst = buf(128);
  proc->call("sprintf", {P(dst), P(str("%s=%d 0x%x %c %u%%")), P(str("n")), I(-5), I(255),
                         I('Z'), I(7)});
  EXPECT_EQ(mem().read_cstring(dst), "n=-5 0xff Z 7%");
}

TEST_F(StdioFixture, SprintfWidthAndZeroPad) {
  const mem::Addr dst = buf(64);
  proc->call("sprintf", {P(dst), P(str("[%5d][%04d]")), I(42), I(7)});
  EXPECT_EQ(mem().read_cstring(dst), "[   42][0007]");
}

TEST_F(StdioFixture, SprintfOverflowsUnboundedly) {
  const mem::Addr small = buf(4);
  EXPECT_THROW(
      proc->call("sprintf", {P(small), P(str("%s")), P(str("much too long for four bytes"))}),
      AccessFault);
}

TEST_F(StdioFixture, SprintfNullStringArgCrashes) {
  const mem::Addr dst = buf(64);
  EXPECT_THROW(proc->call("sprintf", {P(dst), P(str("%s")), P(0)}), AccessFault);
}

TEST_F(StdioFixture, SnprintfBoundsAndReportsFullLength) {
  const mem::Addr dst = buf(8);
  const auto n = proc->call("snprintf", {P(dst), I(8), P(str("%s")), P(str("0123456789"))});
  EXPECT_EQ(n.as_int(), 10);  // would-be length
  EXPECT_EQ(mem().read_cstring(dst), "0123456");
}

TEST_F(StdioFixture, FprintfWritesToStream) {
  const auto f = open("/log", "w");
  proc->call("fprintf", {f, P(str("value=%d\n")), I(99)});
  proc->call("fclose", {f});
  EXPECT_EQ(*proc->state().fs.contents("/log"), "value=99\n");
}

TEST_F(StdioFixture, PutsAndPrintfCaptureStdout) {
  proc->call("puts", {P(str("hello"))});
  proc->call("printf", {P(str("%d-%s")), I(3), P(str("x"))});
  EXPECT_EQ(proc->state().stdout_capture, "hello\n3-x");
}

TEST_F(StdioFixture, FflushNullAndStreamOk) {
  EXPECT_EQ(proc->call("fflush", {P(0)}).as_int(), 0);
  const auto f = open("/ff", "w");
  EXPECT_EQ(proc->call("fflush", {f}).as_int(), 0);
  proc->call("fclose", {f});
}

}  // namespace
}  // namespace healers
