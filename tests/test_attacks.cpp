// Tests for the §3.4 attack demonstrations: both attacks succeed against
// unprotected victims and are terminated by the security wrapper — plus the
// wrapper-composition corners around them (stacked wrappers, robustness
// wrapper alone does NOT stop the heap attack).
#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "testbed.hpp"

namespace healers::attacks {
namespace {

struct AttackFixture : ::testing::Test {
  core::Toolkit toolkit;
};

TEST_F(AttackFixture, HeapSmashSucceedsUnprotected) {
  const AttackResult result = run_heap_smash_attack(toolkit.catalog(), {});
  EXPECT_TRUE(result.hijack_succeeded);
  EXPECT_EQ(result.outcome.kind, linker::CallOutcome::Kind::kHijack);
  EXPECT_NE(result.outcome.detail.find("puts"), std::string::npos);
  EXPECT_NE(result.narrative.find("unlink"), std::string::npos);
}

TEST_F(AttackFixture, HeapSmashBlockedBySecurityWrapper) {
  const AttackResult result = run_heap_smash_attack(
      toolkit.catalog(), {toolkit.security_wrapper("libsimc.so.1").value()});
  EXPECT_FALSE(result.hijack_succeeded);
  EXPECT_TRUE(result.blocked_by_wrapper);
  EXPECT_EQ(result.outcome.kind, linker::CallOutcome::Kind::kAbort);
  EXPECT_NE(result.outcome.detail.find("heap smashing"), std::string::npos);
}

TEST_F(AttackFixture, StackSmashSucceedsUnprotected) {
  const AttackResult result = run_stack_smash_attack(toolkit.catalog(), {});
  EXPECT_TRUE(result.hijack_succeeded);
  EXPECT_NE(result.outcome.detail.find("attacker-controlled"), std::string::npos);
}

TEST_F(AttackFixture, StackSmashBlockedBySecurityWrapper) {
  const AttackResult result = run_stack_smash_attack(
      toolkit.catalog(), {toolkit.security_wrapper("libsimc.so.1").value()});
  EXPECT_TRUE(result.blocked_by_wrapper);
  EXPECT_NE(result.outcome.detail.find("stack smashing"), std::string::npos);
}

TEST_F(AttackFixture, RobustnessWrapperAloneDoesNotStopHeapAttack) {
  // Shape check from the paper's positioning: robustness and security are
  // DIFFERENT wrappers. The heap attack uses only well-formed calls
  // (valid pointers, in-bounds reads from the attacker's own buffer... the
  // overflow being a too-large length memcpy the derived checks DO catch —
  // so pick the interesting assertion: the robustness wrapper contains the
  // memcpy, changing the outcome, but never reports a security abort).
  injector::InjectorConfig config;
  config.variants = 1;
  const auto campaign = toolkit.derive_robust_api("libsimc.so.1", config).value();
  const AttackResult result = run_heap_smash_attack(
      toolkit.catalog(), {toolkit.robustness_wrapper("libsimc.so.1", campaign).value()});
  EXPECT_FALSE(result.blocked_by_wrapper);  // no security abort
}

TEST_F(AttackFixture, StackedWrappersStillBlock) {
  const AttackResult result = run_heap_smash_attack(
      toolkit.catalog(), {toolkit.profiling_wrapper("libsimc.so.1").value(),
                          toolkit.security_wrapper("libsimc.so.1").value()});
  EXPECT_TRUE(result.blocked_by_wrapper);
}

TEST_F(AttackFixture, VictimExecutablesHaveInspectableLinkMaps) {
  const linker::LinkMap heap_map = toolkit.inspect(heap_victim_executable());
  EXPECT_TRUE(heap_map.unresolved.empty());
  EXPECT_EQ(heap_map.linked_libraries.size(), 2u);
  const linker::LinkMap stack_map = toolkit.inspect(stack_victim_executable());
  EXPECT_TRUE(stack_map.unresolved.empty());
}

TEST_F(AttackFixture, NarrativesDescribeTheSteps) {
  const AttackResult result = run_heap_smash_attack(toolkit.catalog(), {});
  EXPECT_NE(result.narrative.find("attacker"), std::string::npos);
  EXPECT_NE(result.narrative.find("victim"), std::string::npos);
  EXPECT_NE(result.narrative.find("outcome"), std::string::npos);
}

TEST_F(AttackFixture, SafeUnlinkAllocatorStopsTheExploitInsideFree) {
  // Allocator-side hardening (post-2004 glibc): the forged chunk fails the
  // fd->bk/bk->fd integrity check and free() aborts — no hijack, but note
  // the corruption already happened (contrast: the wrapper aborts at the
  // overflowing memcpy itself).
  const AttackResult result =
      run_heap_smash_attack(toolkit.catalog(), {}, /*hardened_allocator=*/true);
  EXPECT_FALSE(result.hijack_succeeded);
  EXPECT_FALSE(result.blocked_by_wrapper);  // the allocator, not a wrapper
  EXPECT_EQ(result.outcome.kind, linker::CallOutcome::Kind::kAbort);
  EXPECT_NE(result.outcome.detail.find("corrupted double-linked list"), std::string::npos);
  // The narrative shows the overflow completed before the abort.
  EXPECT_NE(result.narrative.find("overflow"), std::string::npos);
}

TEST_F(AttackFixture, SafeUnlinkDoesNotDisturbBenignHeapUse) {
  auto proc = toolkit.spawn(heap_victim_executable());
  proc->machine().heap().set_safe_unlink(true);
  using simlib::SimValue;
  const mem::Addr a = proc->call("malloc", {SimValue::integer(64)}).as_ptr();
  const mem::Addr b = proc->call("malloc", {SimValue::integer(64)}).as_ptr();
  EXPECT_NO_THROW(proc->call("free", {SimValue::ptr(b)}));
  EXPECT_NO_THROW(proc->call("free", {SimValue::ptr(a)}));  // coalesces via safe unlink
  EXPECT_TRUE(proc->machine().heap().check_integrity().empty());
}

TEST_F(AttackFixture, AttacksAreDeterministic) {
  const AttackResult a = run_heap_smash_attack(toolkit.catalog(), {});
  const AttackResult b = run_heap_smash_attack(toolkit.catalog(), {});
  EXPECT_EQ(a.outcome.kind, b.outcome.kind);
  EXPECT_EQ(a.outcome.detail, b.outcome.detail);
}

}  // namespace
}  // namespace healers::attacks
