// Unit tests for the fault-injection engine: per-function probing, the
// derived checks, campaign aggregation and determinism, table rendering,
// and the robust-spec XML round trip.
#include <gtest/gtest.h>

#include "injector/injector.hpp"
#include "testbed.hpp"

namespace healers::injector {
namespace {

struct InjectorFixture : ::testing::Test {
  linker::LibraryCatalog catalog;
  InjectorConfig config;

  InjectorFixture() {
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
    config.seed = 11;
    config.variants = 1;
  }

  RobustSpec probe(const std::string& name, const simlib::SharedLibrary& lib) {
    FaultInjector injector(catalog, config);
    auto spec = injector.probe_function(lib, name);
    EXPECT_TRUE(spec.ok()) << name << ": " << (spec.ok() ? "" : spec.error().message);
    return std::move(spec).take();
  }
};

TEST_F(InjectorFixture, StrlenRequiresValidTerminatedString) {
  const RobustSpec spec = probe("strlen", testbed::libsimc());
  ASSERT_EQ(spec.args.size(), 1u);
  const DerivedChecks& checks = spec.args[0].checks;
  EXPECT_TRUE(checks.require_nonnull);
  EXPECT_TRUE(checks.require_mapped);
  EXPECT_TRUE(checks.require_terminated);
  EXPECT_FALSE(checks.require_writable);  // strlen reads; rodata passed
  EXPECT_GT(spec.total_failures, 0u);
  EXPECT_GT(spec.crashes, 0u);
}

TEST_F(InjectorFixture, StrcpyDestRequiresWritableSizeCheckedBuffer) {
  const RobustSpec spec = probe("strcpy", testbed::libsimc());
  const DerivedChecks& dest = spec.args[0].checks;
  EXPECT_TRUE(dest.require_nonnull);
  EXPECT_TRUE(dest.require_writable);   // rodata destination crashed
  EXPECT_TRUE(dest.require_size_check); // tiny destination crashed
  const DerivedChecks& src = spec.args[1].checks;
  EXPECT_TRUE(src.require_nonnull);
  EXPECT_TRUE(src.require_terminated);  // unterminated source crashed
}

TEST_F(InjectorFixture, MathFunctionsDeriveNoPreconditions) {
  const RobustSpec spec = probe("sin", testbed::libsimm());
  EXPECT_EQ(spec.total_failures, 0u);
  ASSERT_EQ(spec.args.size(), 1u);
  EXPECT_FALSE(spec.args[0].checks.any());
  EXPECT_EQ(spec.args[0].safe_type_name(), "any double");
}

TEST_F(InjectorFixture, CtypeDerivesRangeFromAnnotation) {
  const RobustSpec spec = probe("isalpha", testbed::libsimc());
  ASSERT_EQ(spec.args.size(), 1u);
  ASSERT_TRUE(spec.args[0].checks.range.has_value());
  EXPECT_EQ(spec.args[0].checks.range->first, -128);
  EXPECT_EQ(spec.args[0].checks.range->second, 255);
  EXPECT_GT(spec.total_failures, 0u);
}

TEST_F(InjectorFixture, FreeDerivesHeapPointerRole) {
  const RobustSpec spec = probe("free", testbed::libsimc());
  EXPECT_TRUE(spec.args[0].checks.require_heap_pointer);
  EXPECT_GT(spec.aborts, 0u);  // garbage frees abort
}

TEST_F(InjectorFixture, FcloseDerivesFileRole) {
  const RobustSpec spec = probe("fclose", testbed::libsimio());
  EXPECT_TRUE(spec.args[0].checks.require_file);
  EXPECT_GT(spec.total_failures, 0u);
}

TEST_F(InjectorFixture, NoreturnFunctionsAreSkipped) {
  const RobustSpec spec = probe("exit", testbed::libsimc());
  EXPECT_TRUE(spec.skipped_noreturn);
  EXPECT_EQ(spec.total_probes, 0u);
}

TEST_F(InjectorFixture, ZeroArgFunctionsProduceEmptySpec) {
  const RobustSpec spec = probe("rand", testbed::libsimc());
  EXPECT_TRUE(spec.args.empty());
  EXPECT_EQ(spec.total_failures, 0u);
}

TEST_F(InjectorFixture, UnknownFunctionFails) {
  FaultInjector injector(catalog, config);
  EXPECT_FALSE(injector.probe_function(testbed::libsimc(), "gethostbyname").ok());
}

TEST_F(InjectorFixture, VerdictsPartitionOutcomesByKind) {
  const RobustSpec spec = probe("strcpy", testbed::libsimc());
  for (const ArgSpec& arg : spec.args) {
    for (const TypeVerdict& v : arg.verdicts) {
      EXPECT_EQ(v.failures, v.crashes + v.hangs + v.aborts) << lattice::to_string(v.id);
      EXPECT_LE(v.failures, v.probes);
      if (v.failed()) {
        EXPECT_FALSE(v.first_failure.empty());
      }
    }
  }
  std::uint64_t probes = 0;
  for (const ArgSpec& arg : spec.args) {
    for (const TypeVerdict& v : arg.verdicts) probes += static_cast<std::uint64_t>(v.probes);
  }
  EXPECT_EQ(probes, spec.total_probes);
}

TEST_F(InjectorFixture, ProbesExecutedCounterAdvances) {
  FaultInjector injector(catalog, config);
  (void)injector.probe_function(testbed::libsimc(), "strlen");
  const std::uint64_t after_one = injector.probes_executed();
  EXPECT_GT(after_one, 0u);
  (void)injector.probe_function(testbed::libsimc(), "strcmp");
  EXPECT_GT(injector.probes_executed(), after_one);
}

TEST_F(InjectorFixture, CampaignCoversEveryFunctionAndIsDeterministic) {
  FaultInjector a(catalog, config);
  FaultInjector b(catalog, config);
  const auto ra = a.run_campaign(testbed::libsimm());
  const auto rb = b.run_campaign(testbed::libsimm());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().specs.size(), testbed::libsimm().size());
  EXPECT_EQ(ra.value().total_probes(), rb.value().total_probes());
  EXPECT_EQ(ra.value().total_failures(), rb.value().total_failures());
}

TEST_F(InjectorFixture, CampaignProgressCallbackFires) {
  FaultInjector injector(catalog, config);
  std::vector<std::string> seen;
  (void)injector.run_campaign(testbed::libsimm(),
                              [&seen](const std::string& name) { seen.push_back(name); });
  EXPECT_EQ(seen.size(), testbed::libsimm().size());
}

TEST_F(InjectorFixture, CampaignTableMentionsEveryFunction) {
  FaultInjector injector(catalog, config);
  const auto result = injector.run_campaign(testbed::libsimm());
  const std::string table = result.value().to_table();
  for (const std::string& name : testbed::libsimm().names()) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("totals:"), std::string::npos);
}

TEST_F(InjectorFixture, SpecXmlRoundTrip) {
  const RobustSpec spec = probe("strcpy", testbed::libsimc());
  const std::string doc = xml::serialize(spec.to_xml());
  auto reparsed = RobustSpec::from_xml(xml::parse(doc).value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const RobustSpec& back = reparsed.value();
  EXPECT_EQ(back.function, spec.function);
  EXPECT_EQ(back.library, spec.library);
  EXPECT_EQ(back.declaration, spec.declaration);
  EXPECT_EQ(back.total_probes, spec.total_probes);
  EXPECT_EQ(back.total_failures, spec.total_failures);
  ASSERT_EQ(back.args.size(), spec.args.size());
  for (std::size_t i = 0; i < back.args.size(); ++i) {
    EXPECT_EQ(back.args[i].checks.require_nonnull, spec.args[i].checks.require_nonnull);
    EXPECT_EQ(back.args[i].checks.require_writable, spec.args[i].checks.require_writable);
    EXPECT_EQ(back.args[i].checks.require_terminated, spec.args[i].checks.require_terminated);
    EXPECT_EQ(back.args[i].safe_type_name(), spec.args[i].safe_type_name());
    ASSERT_EQ(back.args[i].verdicts.size(), spec.args[i].verdicts.size());
  }
  // Second-generation serialization is byte-stable.
  EXPECT_EQ(xml::serialize(back.to_xml()), doc);
}

TEST_F(InjectorFixture, CampaignXmlRoundTrip) {
  FaultInjector injector(catalog, config);
  const auto result = injector.run_campaign(testbed::libsimm());
  const std::string doc = xml::serialize(result.value().to_xml());
  auto back = CampaignResult::from_xml(xml::parse(doc).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().library, "libsimm.so.1");
  EXPECT_EQ(back.value().specs.size(), result.value().specs.size());
  EXPECT_EQ(back.value().total_probes(), result.value().total_probes());
}

TEST_F(InjectorFixture, FromXmlRejectsWrongDocuments) {
  EXPECT_FALSE(RobustSpec::from_xml(xml::parse("<other/>").value()).ok());
  EXPECT_FALSE(RobustSpec::from_xml(xml::parse("<robust-spec/>").value()).ok());
  EXPECT_FALSE(CampaignResult::from_xml(xml::parse("<nope/>").value()).ok());
}

TEST(DeriveChecks, PointerRulesFollowVerdicts) {
  ArgSpec arg;
  arg.cls = parser::TypeClass::kPointer;
  auto verdict = [](lattice::TestTypeId id, int failures) {
    TypeVerdict v;
    v.id = id;
    v.probes = 1;
    v.failures = failures;
    return v;
  };
  arg.verdicts.push_back(verdict(lattice::TestTypeId::kNull, 1));
  arg.verdicts.push_back(verdict(lattice::TestTypeId::kWildPtr, 1));
  arg.verdicts.push_back(verdict(lattice::TestTypeId::kReadOnlyCString, 0));
  arg.verdicts.push_back(verdict(lattice::TestTypeId::kUntermBuf, 1));
  const DerivedChecks checks = derive_checks(arg, nullptr);
  EXPECT_TRUE(checks.require_nonnull);
  EXPECT_TRUE(checks.require_mapped);
  EXPECT_FALSE(checks.require_writable);
  EXPECT_TRUE(checks.require_terminated);
}

TEST(DeriveChecks, IntegralRangeFallsBackToPassingValues) {
  ArgSpec arg;
  arg.cls = parser::TypeClass::kIntegral;
  TypeVerdict bad;
  bad.id = lattice::TestTypeId::kIntMax;
  bad.probes = 1;
  bad.failures = 1;
  arg.verdicts.push_back(bad);
  arg.passing_int_values = {-3, 0, 200};
  const DerivedChecks checks = derive_checks(arg, nullptr);
  ASSERT_TRUE(checks.range.has_value());
  EXPECT_EQ(checks.range->first, -3);
  EXPECT_EQ(checks.range->second, 200);
}

TEST(DeriveChecks, IntegralWithNoFailuresDerivesNothing) {
  ArgSpec arg;
  arg.cls = parser::TypeClass::kIntegral;
  TypeVerdict ok;
  ok.id = lattice::TestTypeId::kIntMax;
  ok.probes = 2;
  arg.verdicts.push_back(ok);
  EXPECT_FALSE(derive_checks(arg, nullptr).any());
}

}  // namespace
}  // namespace healers::injector
