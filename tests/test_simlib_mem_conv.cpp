// Behaviour tests for the memory and conversion families, including the
// preserved historical bugs (calloc multiplication wrap, ato* silence) and
// the heap entry points' errno discipline.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace healers {
namespace {

using testbed::F;
using testbed::I;
using testbed::P;

struct MemConvFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::AddressSpace& mem() { return proc->machine().mem(); }
  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
  mem::Addr buf(std::uint64_t size) { return proc->scratch(size); }
};

// --- mem* -------------------------------------------------------------------

TEST_F(MemConvFixture, MemcpyCopiesExactly) {
  const mem::Addr src = str("0123456789");
  const mem::Addr dst = buf(16);
  const auto ret = proc->call("memcpy", {P(dst), P(src), I(5)});
  EXPECT_EQ(ret.as_ptr(), dst);
  EXPECT_EQ(mem().load8(dst + 4), '4');
  EXPECT_EQ(mem().load8(dst + 5), 0u);  // untouched
}

TEST_F(MemConvFixture, MemcpyPastRegionFaults) {
  const mem::Addr dst = buf(4);
  EXPECT_THROW(proc->call("memcpy", {P(dst), P(str("0123456789")), I(10)}), AccessFault);
}

TEST_F(MemConvFixture, MemcpyHugeSizeFaultsQuicklyNotHangs) {
  const mem::Addr dst = buf(64);
  const mem::Addr src = buf(64);
  EXPECT_THROW(proc->call("memcpy", {P(dst), P(src), I(1LL << 40)}), AccessFault);
}

TEST_F(MemConvFixture, MemmoveHandlesOverlapBothDirections) {
  const mem::Addr region = buf(32);
  mem().write_cstring(region, "abcdef");
  proc->call("memmove", {P(region + 2), P(region), I(4)});  // forward overlap
  EXPECT_EQ(mem().read_cstring(region), "ababcd");
  mem().write_cstring(region, "abcdef");
  proc->call("memmove", {P(region), P(region + 2), I(4)});  // backward overlap
  EXPECT_EQ(mem().read_cstring(region), "cdefef");
}

TEST_F(MemConvFixture, MemsetFillsAndReturnsDest) {
  const mem::Addr dst = buf(16);
  EXPECT_EQ(proc->call("memset", {P(dst), I(0x5A), I(8)}).as_ptr(), dst);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(mem().load8(dst + i), 0x5Au);
  EXPECT_EQ(mem().load8(dst + 8), 0u);
}

TEST_F(MemConvFixture, MemcmpComparesBytes) {
  EXPECT_EQ(proc->call("memcmp", {P(str("abc")), P(str("abc")), I(3)}).as_int(), 0);
  EXPECT_LT(proc->call("memcmp", {P(str("abc")), P(str("abd")), I(3)}).as_int(), 0);
  EXPECT_EQ(proc->call("memcmp", {P(str("aXc")), P(str("aYc")), I(1)}).as_int(), 0);
}

TEST_F(MemConvFixture, MemchrFindsWithinBound) {
  const mem::Addr s = str("hello");
  EXPECT_EQ(proc->call("memchr", {P(s), I('l'), I(5)}).as_ptr(), s + 2);
  EXPECT_EQ(proc->call("memchr", {P(s), I('l'), I(2)}).as_ptr(), 0u);
}

// --- allocation entry points -------------------------------------------------

TEST_F(MemConvFixture, MallocFreeRoundTrip) {
  const mem::Addr p = proc->call("malloc", {I(64)}).as_ptr();
  ASSERT_NE(p, 0u);
  EXPECT_TRUE(proc->machine().heap().is_live(p));
  proc->call("free", {P(p)});
  EXPECT_FALSE(proc->machine().heap().is_live(p));
}

TEST_F(MemConvFixture, MallocFailureSetsEnomem) {
  EXPECT_EQ(proc->call("malloc", {I(1LL << 40)}).as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kENOMEM);
}

TEST_F(MemConvFixture, CallocZeroesMemory) {
  const mem::Addr p = proc->call("calloc", {I(4), I(8)}).as_ptr();
  ASSERT_NE(p, 0u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(mem().load8(p + i), 0u);
}

TEST_F(MemConvFixture, CallocMultiplicationWrapsSilently) {
  // Historical bug preserved: nmemb*size wraps to 0 -> tiny allocation
  // "succeeds". The security wrapper fixes this; the base library must not.
  const auto half = static_cast<std::int64_t>((~std::uint64_t{0} / 2) + 1);
  const mem::Addr p = proc->call("calloc", {I(half), I(2)}).as_ptr();
  EXPECT_NE(p, 0u);  // 2 * (SIZE_MAX/2+1) == 0 (mod 2^64)
}

TEST_F(MemConvFixture, ReallocPreservesPrefix) {
  const mem::Addr p = proc->call("malloc", {I(8)}).as_ptr();
  mem().write_cstring(p, "1234567");
  const mem::Addr q = proc->call("realloc", {P(p), I(64)}).as_ptr();
  EXPECT_EQ(mem().read_cstring(q), "1234567");
}

TEST_F(MemConvFixture, FreeOfGarbageAborts) {
  EXPECT_THROW(proc->call("free", {P(buf(32))}), SimAbort);
}

TEST_F(MemConvFixture, FreeNullOk) {
  EXPECT_NO_THROW(proc->call("free", {P(0)}));
}

// --- conversions --------------------------------------------------------------

TEST_F(MemConvFixture, AtoiParsesDecimalWithSignAndSpace) {
  EXPECT_EQ(proc->call("atoi", {P(str("42"))}).as_int(), 42);
  EXPECT_EQ(proc->call("atoi", {P(str("  -17"))}).as_int(), -17);
  EXPECT_EQ(proc->call("atoi", {P(str("+8abc"))}).as_int(), 8);
  EXPECT_EQ(proc->call("atoi", {P(str("abc"))}).as_int(), 0);
  EXPECT_EQ(proc->call("atoi", {P(str(""))}).as_int(), 0);
}

TEST_F(MemConvFixture, AtoiWrapsAtIntWidth) {
  EXPECT_EQ(proc->call("atoi", {P(str("4294967296"))}).as_int(), 0);  // 2^32 wraps
  EXPECT_EQ(proc->call("atoi", {P(str("2147483648"))}).as_int(), -2147483648LL);
}

TEST_F(MemConvFixture, AtoiNullCrashes) {
  EXPECT_THROW(proc->call("atoi", {P(0)}), AccessFault);
}

TEST_F(MemConvFixture, AtolUsesFullWidth) {
  EXPECT_EQ(proc->call("atol", {P(str("4294967296"))}).as_int(), 4294967296LL);
}

TEST_F(MemConvFixture, StrtolReportsEndptrAndValue) {
  const mem::Addr s = str("  123xyz");
  const mem::Addr endptr = buf(8);
  EXPECT_EQ(proc->call("strtol", {P(s), P(endptr), I(10)}).as_int(), 123);
  EXPECT_EQ(mem().load64(endptr), s + 5);
}

TEST_F(MemConvFixture, StrtolParsesBases) {
  EXPECT_EQ(proc->call("strtol", {P(str("ff")), P(0), I(16)}).as_int(), 255);
  EXPECT_EQ(proc->call("strtol", {P(str("0x1A")), P(0), I(0)}).as_int(), 26);
  EXPECT_EQ(proc->call("strtol", {P(str("017")), P(0), I(0)}).as_int(), 15);
  EXPECT_EQ(proc->call("strtol", {P(str("101")), P(0), I(2)}).as_int(), 5);
}

TEST_F(MemConvFixture, StrtolBadBaseSetsEinval) {
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("strtol", {P(str("1")), P(0), I(1)}).as_int(), 0);
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
}

TEST_F(MemConvFixture, StrtolOverflowClampsAndSetsErange) {
  proc->machine().set_err(0);
  const auto v = proc->call("strtol", {P(str("999999999999999999999999")), P(0), I(10)});
  EXPECT_EQ(v.as_int(), 0x7fffffffffffffffLL);
  EXPECT_EQ(proc->machine().err(), simlib::kERANGE);
  proc->machine().set_err(0);
  const auto neg = proc->call("strtol", {P(str("-999999999999999999999999")), P(0), I(10)});
  EXPECT_EQ(neg.as_int(), static_cast<std::int64_t>(0x8000000000000000ULL));
  EXPECT_EQ(proc->machine().err(), simlib::kERANGE);
}

TEST_F(MemConvFixture, StrtolNoDigitsLeavesEndptrAtStart) {
  const mem::Addr s = str("zzz");
  const mem::Addr endptr = buf(8);
  EXPECT_EQ(proc->call("strtol", {P(s), P(endptr), I(10)}).as_int(), 0);
  EXPECT_EQ(mem().load64(endptr), s);
}

TEST_F(MemConvFixture, StrtoulWrapsNegatives) {
  EXPECT_EQ(static_cast<std::uint64_t>(proc->call("strtoul", {P(str("-1")), P(0), I(10)}).as_int()),
            ~std::uint64_t{0});
}

TEST_F(MemConvFixture, StrtodParsesFloats) {
  EXPECT_DOUBLE_EQ(proc->call("strtod", {P(str("3.5")), P(0)}).as_double(), 3.5);
  EXPECT_DOUBLE_EQ(proc->call("strtod", {P(str("-2.25e2")), P(0)}).as_double(), -225.0);
  EXPECT_DOUBLE_EQ(proc->call("strtod", {P(str("  .5x")), P(0)}).as_double(), 0.5);
}

TEST_F(MemConvFixture, StrtodEndptrAfterFloat) {
  const mem::Addr s = str("1.5e2rest");
  const mem::Addr endptr = buf(8);
  proc->call("strtod", {P(s), P(endptr)});
  EXPECT_EQ(mem().load64(endptr), s + 5);
}

TEST_F(MemConvFixture, AtofMatchesStrtod) {
  EXPECT_DOUBLE_EQ(proc->call("atof", {P(str("6.75"))}).as_double(), 6.75);
}

TEST_F(MemConvFixture, AbsAndLabs) {
  EXPECT_EQ(proc->call("abs", {I(-5)}).as_int(), 5);
  EXPECT_EQ(proc->call("abs", {I(5)}).as_int(), 5);
  // abs(INT_MIN) wraps (two's complement), faithfully UB-shaped.
  EXPECT_EQ(proc->call("abs", {I(-2147483648LL)}).as_int(), -2147483648LL);
  EXPECT_EQ(proc->call("labs", {I(-42)}).as_int(), 42);
}

}  // namespace
}  // namespace healers
