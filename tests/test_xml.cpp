// Unit tests for the XML infrastructure: node operations, escaping,
// serialization shape, strict parsing, and serialize/parse round trips.
#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace healers::xml {
namespace {

TEST(XmlNode, AttributesPreserveInsertionOrderAndOverwrite) {
  Node node("n");
  node.set_attr("b", "2");
  node.set_attr("a", "1");
  node.set_attr("b", "3");  // overwrite keeps position
  ASSERT_EQ(node.attrs().size(), 2u);
  EXPECT_EQ(node.attrs()[0].first, "b");
  EXPECT_EQ(node.attrs()[0].second, "3");
  EXPECT_EQ(node.attrs()[1].first, "a");
}

TEST(XmlNode, AttrLookupReturnsNullWhenMissing) {
  Node node("n");
  EXPECT_EQ(node.attr("missing"), nullptr);
  node.set_attr("k", "v");
  ASSERT_NE(node.attr("k"), nullptr);
  EXPECT_EQ(*node.attr("k"), "v");
}

TEST(XmlNode, AttrIntParsesAndFallsBack) {
  Node node("n");
  node.set_attr("good", "42");
  node.set_attr("neg", "-7");
  node.set_attr("bad", "4x2");
  EXPECT_EQ(node.attr_int("good", 0), 42);
  EXPECT_EQ(node.attr_int("neg", 0), -7);
  EXPECT_EQ(node.attr_int("bad", 5), 5);
  EXPECT_EQ(node.attr_int("missing", 9), 9);
}

TEST(XmlNode, ChildLookupByName) {
  Node node("root");
  node.add_child("a");
  node.add_child("b");
  node.add_child("a");
  EXPECT_NE(node.child("a"), nullptr);
  EXPECT_EQ(node.child("zzz"), nullptr);
  EXPECT_EQ(node.children_named("a").size(), 2u);
  EXPECT_EQ(node.children_named("b").size(), 1u);
}

TEST(XmlEscape, EscapesAllFiveEntities) {
  EXPECT_EQ(escape("a&b<c>d\"e'f"), "a&amp;b&lt;c&gt;d&quot;e&apos;f");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(XmlSerialize, EmptyElementSelfCloses) {
  Node node("empty");
  node.set_attr("k", "v");
  EXPECT_EQ(serialize_fragment(node), "<empty k=\"v\"/>\n");
}

TEST(XmlSerialize, TextOnlyElementStaysOneLine) {
  Node node("t");
  node.set_text("hello");
  EXPECT_EQ(serialize_fragment(node), "<t>hello</t>\n");
}

TEST(XmlSerialize, NestedIndentation) {
  Node root("a");
  root.add_child("b").add_text_child("c", "x");
  const std::string out = serialize_fragment(root);
  EXPECT_EQ(out, "<a>\n  <b>\n    <c>x</c>\n  </b>\n</a>\n");
}

TEST(XmlSerialize, DocumentHasDeclarationHeader) {
  Node root("doc");
  EXPECT_EQ(serialize(root).rfind("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n", 0), 0u);
}

TEST(XmlParse, SimpleDocument) {
  auto result = parse("<root a=\"1\"><child>text</child></root>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().name(), "root");
  EXPECT_EQ(result.value().attr_int("a", 0), 1);
  ASSERT_NE(result.value().child("child"), nullptr);
  EXPECT_EQ(result.value().child("child")->text(), "text");
}

TEST(XmlParse, SelfClosingAndSingleQuotes) {
  auto result = parse("<r><leaf k='v'/></r>");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.value().child("leaf"), nullptr);
  EXPECT_EQ(*result.value().child("leaf")->attr("k"), "v");
}

TEST(XmlParse, SkipsPrologAndComments) {
  auto result = parse("<?xml version=\"1.0\"?>\n<!-- hi -->\n<r><!-- inner -->ok</r>\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().text(), "ok");
}

TEST(XmlParse, DecodesEntitiesInTextAndAttributes) {
  auto result = parse("<r k=\"&lt;&amp;&gt;\">&quot;x&apos;</r>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value().attr("k"), "<&>");
  EXPECT_EQ(result.value().text(), "\"x'");
}

TEST(XmlParse, RejectsMismatchedCloseTag) {
  auto result = parse("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("mismatched"), std::string::npos);
}

TEST(XmlParse, RejectsUnterminatedDocument) {
  EXPECT_FALSE(parse("<a><b>").ok());
  EXPECT_FALSE(parse("<a attr=\"x").ok());
}

TEST(XmlParse, RejectsTrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>").ok());
}

TEST(XmlParse, RejectsUnknownEntity) {
  EXPECT_FALSE(parse("<a>&bogus;</a>").ok());
}

TEST(XmlParse, ErrorsCarryLinePosition) {
  auto result = parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 3"), std::string::npos);
}

TEST(XmlRoundTrip, SerializedTreeParsesBackIdentically) {
  Node root("campaign");
  root.set_attr("library", "libsimc.so.1");
  root.set_attr("note", "a<b & c>\"d\"");
  Node& spec = root.add_child("robust-spec");
  spec.set_attr("function", "strcpy");
  spec.add_text_child("prototype", "char *strcpy(char *dest, const char *src);");
  spec.add_child("arg").set_attr("index", "1");

  const std::string doc = serialize(root);
  auto reparsed = parse(doc);
  ASSERT_TRUE(reparsed.ok());
  // Round trip is byte-stable at the second generation.
  EXPECT_EQ(serialize(reparsed.value()), doc);
  EXPECT_EQ(*reparsed.value().attr("note"), "a<b & c>\"d\"");
}

TEST(XmlRoundTrip, DeepNesting) {
  Node root("l0");
  Node* cur = &root;
  for (int i = 1; i < 20; ++i) cur = &cur->add_child("l" + std::to_string(i));
  cur->set_text("bottom");
  auto reparsed = parse(serialize(root));
  ASSERT_TRUE(reparsed.ok());
  const Node* walk = &reparsed.value();
  for (int i = 1; i < 20; ++i) {
    walk = walk->child("l" + std::to_string(i));
    ASSERT_NE(walk, nullptr) << "level " << i;
  }
  EXPECT_EQ(walk->text(), "bottom");
}

TEST(XmlResult, BadAccessThrows) {
  Result<Node> bad = Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_THROW((void)bad.value(), BadResultAccess);
  Result<Node> good = Node("n");
  EXPECT_THROW((void)good.error(), BadResultAccess);
}

}  // namespace
}  // namespace healers::xml
