// Unit tests for the C declaration parser: types, qualifiers, pointers,
// typedefs, varargs, whole-header parsing, diagnostics, error positions —
// plus the property that every stock library declaration round-trips.
#include <gtest/gtest.h>

#include "parser/header_parser.hpp"
#include "testbed.hpp"

namespace healers::parser {
namespace {

FunctionProto decl(const std::string& text) {
  auto result = parse_declaration(text);
  EXPECT_TRUE(result.ok()) << text << ": " << (result.ok() ? "" : result.error().message);
  return result.ok() ? result.value() : FunctionProto{};
}

TEST(HeaderParser, SimpleIntFunction) {
  const FunctionProto proto = decl("int abs(int j);");
  EXPECT_EQ(proto.name, "abs");
  EXPECT_EQ(proto.return_type.base, BaseType::kInt);
  ASSERT_EQ(proto.params.size(), 1u);
  EXPECT_EQ(proto.params[0].name, "j");
  EXPECT_EQ(proto.params[0].type.classify(), TypeClass::kIntegral);
}

TEST(HeaderParser, PointerReturnAndConstPointerParam) {
  const FunctionProto proto = decl("char *strcpy(char *dest, const char *src);");
  EXPECT_EQ(proto.return_type.base, BaseType::kChar);
  EXPECT_EQ(proto.return_type.pointer_depth, 1);
  ASSERT_EQ(proto.params.size(), 2u);
  EXPECT_FALSE(proto.params[0].type.pointee_const);
  EXPECT_TRUE(proto.params[1].type.pointee_const);
  EXPECT_EQ(proto.params[1].type.classify(), TypeClass::kPointer);
}

TEST(HeaderParser, DoublePointer) {
  const FunctionProto proto = decl("long strtol(const char *nptr, char **endptr, int base);");
  EXPECT_EQ(proto.params[1].type.pointer_depth, 2);
  EXPECT_EQ(proto.return_type.base, BaseType::kLong);
}

TEST(HeaderParser, UnsignedAndLongLong) {
  const FunctionProto proto = decl("unsigned long long f(unsigned x, long long y);");
  EXPECT_TRUE(proto.return_type.is_unsigned);
  EXPECT_EQ(proto.return_type.base, BaseType::kLongLong);
  EXPECT_TRUE(proto.params[0].type.is_unsigned);
  EXPECT_EQ(proto.params[0].type.base, BaseType::kInt);
  EXPECT_EQ(proto.params[1].type.base, BaseType::kLongLong);
}

TEST(HeaderParser, VoidParameterListIsEmpty) {
  const FunctionProto proto = decl("int rand(void);");
  EXPECT_TRUE(proto.params.empty());
  EXPECT_FALSE(proto.varargs);
}

TEST(HeaderParser, VoidPointerParamIsAPointer) {
  const FunctionProto proto = decl("void *memcpy(void *dest, const void *src, size_t n);");
  EXPECT_EQ(proto.params[0].type.classify(), TypeClass::kPointer);
  EXPECT_EQ(proto.return_type.classify(), TypeClass::kPointer);
  EXPECT_EQ(proto.params[2].type.classify(), TypeClass::kIntegral);
}

TEST(HeaderParser, KnownTypedefs) {
  const FunctionProto proto = decl("size_t strlen(const char *s);");
  EXPECT_EQ(proto.return_type.base, BaseType::kNamed);
  EXPECT_EQ(proto.return_type.name, "size_t");
  EXPECT_EQ(proto.return_type.classify(), TypeClass::kIntegral);
}

TEST(HeaderParser, FileTypedefBehindPointer) {
  const FunctionProto proto = decl("int fclose(FILE *stream);");
  EXPECT_EQ(proto.params[0].type.name, "FILE");
  EXPECT_EQ(proto.params[0].type.classify(), TypeClass::kPointer);
}

TEST(HeaderParser, VarargsDeclaration) {
  const FunctionProto proto = decl("int printf(const char *format, ...);");
  EXPECT_TRUE(proto.varargs);
  EXPECT_EQ(proto.params.size(), 1u);
}

TEST(HeaderParser, UnnamedParameters) {
  const FunctionProto proto = decl("int f(int, const char *);");
  ASSERT_EQ(proto.params.size(), 2u);
  EXPECT_TRUE(proto.params[0].name.empty());
  EXPECT_TRUE(proto.params[1].name.empty());
}

TEST(HeaderParser, UnknownTypedefAcceptedWithDiagnostic) {
  auto result = parse_header("mystery_t f(mystery_t x);");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().functions[0].return_type.name, "mystery_t");
  EXPECT_FALSE(result.value().diagnostics.empty());
  EXPECT_NE(result.value().diagnostics[0].find("mystery_t"), std::string::npos);
}

TEST(HeaderParser, CommentsAreSkipped) {
  auto result = parse_header(
      "/* header preamble */\n"
      "int a(void); // trailing\n"
      "/* multi\n   line */ int b(void);\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().functions.size(), 2u);
}

TEST(HeaderParser, WholeHeaderManyDeclarations) {
  auto result = parse_header(
      "int a(void);\n"
      "char *b(char *s);\n"
      "double c(double x, double y);\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().functions.size(), 3u);
  EXPECT_EQ(result.value().functions[2].name, "c");
}

TEST(HeaderParser, ErrorsCarryLineNumbers) {
  auto result = parse_header("int good(void);\nint bad(;\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("line 2"), std::string::npos);
}

TEST(HeaderParser, RejectsMalformedDeclarations) {
  EXPECT_FALSE(parse_header("int f(").ok());
  EXPECT_FALSE(parse_header("int f(int x)").ok());  // missing ';'
  EXPECT_FALSE(parse_header("f(int x);").ok());     // no return type
  EXPECT_FALSE(parse_header("int 123(void);").ok());
  EXPECT_FALSE(parse_header("int f(void); trailing").ok());
  EXPECT_FALSE(parse_header("int f(void)@;").ok());
  EXPECT_FALSE(parse_header("/* unterminated").ok());
}

TEST(HeaderParser, DeclarationRendersBack) {
  const char* cases[] = {
      "char *strcpy(char *dest, const char *src);",
      "int abs(int j);",
      "void *memcpy(void *dest, const void *src, size_t n);",
      "unsigned long strtoul(const char *nptr, char **endptr, int base);",
      "int printf(const char *format, ...);",
      "int rand(void);",
      "double pow(double x, double y);",
      "void free(void *ptr);",
      "wctrans_t wctrans(const char *name);",
  };
  for (const char* text : cases) {
    EXPECT_EQ(decl(text).to_declaration(), text);
  }
}

TEST(TypeExpr, ClassifyAndRender) {
  TypeExpr t;
  t.base = BaseType::kChar;
  t.pointer_depth = 1;
  t.pointee_const = true;
  EXPECT_EQ(t.classify(), TypeClass::kPointer);
  EXPECT_EQ(t.to_string(), "const char *");
  EXPECT_EQ(t.declare("s"), "const char *s");
  t.pointer_depth = 0;
  EXPECT_EQ(t.classify(), TypeClass::kIntegral);
}

TEST(TypeExpr, NamedTypeClasses) {
  EXPECT_EQ(named_type_class("size_t"), TypeClass::kIntegral);
  EXPECT_EQ(named_type_class("FILE"), TypeClass::kVoid);
  EXPECT_EQ(named_type_class("anything_else"), TypeClass::kIntegral);
  EXPECT_TRUE(is_known_typedef("wctrans_t"));
  EXPECT_FALSE(is_known_typedef("nope_t"));
}

// Property: every declaration shipped by the stock libraries parses, and
// re-rendering reproduces the original text byte for byte.
class DeclarationRoundTrip : public ::testing::TestWithParam<const simlib::SharedLibrary*> {};

TEST_P(DeclarationRoundTrip, AllLibraryDeclarationsRoundTrip) {
  const simlib::SharedLibrary& lib = *GetParam();
  for (const std::string& name : lib.names()) {
    const simlib::Symbol* symbol = lib.find(name);
    auto proto = parse_declaration(symbol->declaration);
    ASSERT_TRUE(proto.ok()) << name << ": "
                            << (proto.ok() ? "" : proto.error().message);
    EXPECT_EQ(proto.value().to_declaration(), symbol->declaration) << name;
    EXPECT_EQ(proto.value().name, name);
  }
}

INSTANTIATE_TEST_SUITE_P(StockLibraries, DeclarationRoundTrip,
                         ::testing::Values(&testbed::libsimc(), &testbed::libsimio(),
                                           &testbed::libsimm()),
                         [](const auto& info) {
                           std::string name = info.param->soname();
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST(HeaderParser, WholeStockHeaderParses) {
  auto result = parse_header(testbed::libsimc().header_text());
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().functions.size(), testbed::libsimc().size());
  EXPECT_TRUE(result.value().diagnostics.empty());
}

}  // namespace
}  // namespace healers::parser
