// Unit tests for the man-page parser and the size-expression DSL: grammar,
// evaluation against live simulated memory, rendering round trips, and the
// property that every stock man page parses with a consistent prototype.
#include <gtest/gtest.h>

#include "parser/manpage.hpp"
#include "testbed.hpp"

namespace healers::parser {
namespace {

ManPage page_of(const std::string& doc) {
  auto result = parse_manpage(doc);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return result.ok() ? std::move(result).take() : ManPage{};
}

const std::string kStrcpyPage =
    "NAME\n"
    "  strcpy - copy a string\n"
    "SYNOPSIS\n"
    "  char *strcpy(char *dest, const char *src);\n"
    "NOTES\n"
    "  NONNULL 1 2\n"
    "  ARG 2 CSTRING\n"
    "  ARG 1 BUF WRITE SIZE cstrlen(2)+1\n";

TEST(ManPage, ParsesSections) {
  const ManPage page = page_of(kStrcpyPage);
  EXPECT_EQ(page.name, "strcpy");
  EXPECT_EQ(page.summary, "copy a string");
  EXPECT_EQ(page.proto.to_declaration(), "char *strcpy(char *dest, const char *src);");
}

TEST(ManPage, ParsesArgAnnotations) {
  const ManPage page = page_of(kStrcpyPage);
  ASSERT_NE(page.arg(1), nullptr);
  ASSERT_NE(page.arg(2), nullptr);
  EXPECT_TRUE(page.arg(1)->nonnull);
  EXPECT_TRUE(page.arg(2)->cstring);
  ASSERT_TRUE(page.arg(1)->write_size.has_value());
  EXPECT_EQ(page.arg(1)->write_size->to_string(), "cstrlen(2)+1");
  EXPECT_EQ(page.arg(3), nullptr);
}

TEST(ManPage, FlagsAndErrnos) {
  const ManPage page = page_of(
      "NAME\n  f - flags\nSYNOPSIS\n  int f(void *p, int n, ...);\nNOTES\n"
      "  ALLOWNULL 1\n  ARG 2 RANGE -1 255\n  HEAP ALLOC\n  ERRNO EINVAL ENOMEM\n"
      "  VARARGS\n  STATEFUL\n");
  EXPECT_TRUE(page.arg(1)->allownull);
  ASSERT_TRUE(page.arg(2)->range.has_value());
  EXPECT_EQ(page.arg(2)->range->first, -1);
  EXPECT_EQ(page.arg(2)->range->second, 255);
  EXPECT_TRUE(page.heap_alloc);
  EXPECT_FALSE(page.heap_free);
  EXPECT_TRUE(page.varargs);
  EXPECT_TRUE(page.stateful);
  ASSERT_EQ(page.errnos.size(), 2u);
  EXPECT_EQ(page.errnos[0], "EINVAL");
}

TEST(ManPage, VarargsInferredFromSynopsis) {
  const ManPage page =
      page_of("NAME\n  p - print\nSYNOPSIS\n  int p(const char *f, ...);\nNOTES\n");
  EXPECT_TRUE(page.varargs);
}

TEST(ManPage, FileAndHeapptrRoles) {
  const ManPage page = page_of(
      "NAME\n  g - roles\nSYNOPSIS\n  int g(FILE *f, void *p);\nNOTES\n"
      "  ARG 1 FILE\n  ARG 2 HEAPPTR\n");
  EXPECT_TRUE(page.arg(1)->is_file);
  EXPECT_TRUE(page.arg(2)->is_heapptr);
}

TEST(ManPage, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_manpage("garbage before sections\n").ok());
  EXPECT_FALSE(parse_manpage("NAME\n  x - y\n").ok());  // no SYNOPSIS
  EXPECT_FALSE(parse_manpage("WEIRD\n  s\n").ok());
  EXPECT_FALSE(
      parse_manpage("NAME\n  f\nSYNOPSIS\n  int f(void);\nNOTES\n  BOGUS 1\n").ok());
  EXPECT_FALSE(
      parse_manpage("NAME\n  f\nSYNOPSIS\n  int f(void);\nNOTES\n  ARG x CSTRING\n").ok());
  EXPECT_FALSE(
      parse_manpage("NAME\n  f\nSYNOPSIS\n  int f(void);\nNOTES\n  ARG 1 RANGE 9 1\n").ok());
}

// --- SizeExpr ----------------------------------------------------------------

TEST(SizeExpr, ParseRenderRoundTrip) {
  const char* cases[] = {
      "1",
      "arg(3)",
      "cstrlen(2)+1",
      "cstrlen(1)+cstrlen(2)+1",
      "min(arg(3),cstrlen(2))+1",
      "mul(arg(2),arg(3))",
      "formatted(2)",
      "cstrlen(1)+min(arg(3),cstrlen(2))+1",
  };
  for (const char* text : cases) {
    auto expr = SizeExpr::parse(text);
    ASSERT_TRUE(expr.ok()) << text;
    EXPECT_EQ(expr.value().to_string(), text);
  }
}

TEST(SizeExpr, RejectsMalformed) {
  EXPECT_FALSE(SizeExpr::parse("").ok());
  EXPECT_FALSE(SizeExpr::parse("arg()").ok());
  EXPECT_FALSE(SizeExpr::parse("arg(0)").ok());
  EXPECT_FALSE(SizeExpr::parse("unknown(1)").ok());
  EXPECT_FALSE(SizeExpr::parse("min(1)").ok());
  EXPECT_FALSE(SizeExpr::parse("1+").ok());
  EXPECT_FALSE(SizeExpr::parse("arg(1))").ok());
}

struct SizeExprEval : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();

  std::optional<std::uint64_t> eval(const std::string& text,
                                    std::vector<std::uint64_t> args) {
    auto expr = SizeExpr::parse(text);
    EXPECT_TRUE(expr.ok()) << text;
    SizeExpr::EvalEnv env{proc->machine().mem(), std::move(args), 1 << 20, {}, {}};
    return expr.value().eval(env);
  }
};

TEST_F(SizeExprEval, ConstantsAndArgs) {
  EXPECT_EQ(eval("7", {}), 7u);
  EXPECT_EQ(eval("arg(2)", {10, 20}), 20u);
  EXPECT_EQ(eval("arg(1)+3", {10}), 13u);
  EXPECT_EQ(eval("min(arg(1),arg(2))", {9, 4}), 4u);
  EXPECT_EQ(eval("mul(arg(1),arg(2))", {3, 5}), 15u);
}

TEST_F(SizeExprEval, CstrlenMeasuresSimulatedMemory) {
  const mem::Addr s = proc->alloc_cstring("hello");
  EXPECT_EQ(eval("cstrlen(1)+1", {s}), 6u);
}

TEST_F(SizeExprEval, CstrlenOfInvalidPointerIsUnevaluable) {
  EXPECT_EQ(eval("cstrlen(1)+1", {0}), std::nullopt);
  EXPECT_EQ(eval("cstrlen(1)", {mem::AddressSpace::wild_pointer()}), std::nullopt);
}

TEST_F(SizeExprEval, CstrlenOfUnterminatedBufferIsUnevaluable) {
  const mem::Addr buf = proc->scratch(32);
  for (int i = 0; i < 32; ++i) proc->machine().mem().store8(buf + i, 'A');
  EXPECT_EQ(eval("cstrlen(1)", {buf}), std::nullopt);
}

TEST_F(SizeExprEval, FormattedIsNeverEvaluable) {
  EXPECT_EQ(eval("formatted(2)", {1, 2}), std::nullopt);
  EXPECT_EQ(eval("formatted(2)+5", {1, 2}), std::nullopt);
}

TEST_F(SizeExprEval, MissingArgIndexIsUnevaluable) {
  EXPECT_EQ(eval("arg(5)", {1, 2}), std::nullopt);
}

TEST_F(SizeExprEval, OverflowIsUnevaluable) {
  EXPECT_EQ(eval("mul(arg(1),arg(2))", {~std::uint64_t{0}, 2}), std::nullopt);
  EXPECT_EQ(eval("arg(1)+arg(2)", {~std::uint64_t{0}, 2}), std::nullopt);
}

TEST_F(SizeExprEval, StrcatStyleCompound) {
  const mem::Addr dest = proc->alloc_cstring("abc");
  const mem::Addr src = proc->alloc_cstring("defg");
  EXPECT_EQ(eval("cstrlen(1)+cstrlen(2)+1", {dest, src}), 8u);
}

TEST(SafeCstrlen, BoundedAndNonFaulting) {
  mem::AddressSpace space;
  const mem::Region& region = space.map(16, mem::Perm::kReadWrite,
                                        mem::RegionKind::kScratch, "r");
  space.write_cstring(region.base, "abc");
  EXPECT_EQ(safe_cstrlen(space, region.base, 1000), 3u);
  EXPECT_EQ(safe_cstrlen(space, 0, 1000), std::nullopt);
  // Cap smaller than the string: unevaluable rather than a long scan.
  EXPECT_EQ(safe_cstrlen(space, region.base, 2), std::nullopt);
}

// Property: every stock man page parses; its SYNOPSIS matches the symbol's
// declaration; annotation indices stay within the prototype's arity.
class ManPageSweep : public ::testing::TestWithParam<const simlib::SharedLibrary*> {};

TEST_P(ManPageSweep, AllStockManPagesAreConsistent) {
  const simlib::SharedLibrary& lib = *GetParam();
  for (const std::string& name : lib.names()) {
    const simlib::Symbol* symbol = lib.find(name);
    auto page = parse_manpage(symbol->manpage);
    ASSERT_TRUE(page.ok()) << name << ": " << (page.ok() ? "" : page.error().message);
    EXPECT_EQ(page.value().name, name);
    EXPECT_EQ(page.value().proto.to_declaration(), symbol->declaration) << name;
    for (const ArgAnnotation& arg : page.value().args) {
      EXPECT_GE(arg.index, 1) << name;
      EXPECT_LE(arg.index, static_cast<int>(page.value().proto.params.size())) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StockLibraries, ManPageSweep,
                         ::testing::Values(&testbed::libsimc(), &testbed::libsimio(),
                                           &testbed::libsimm()),
                         [](const auto& info) {
                           std::string name = info.param->soname();
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace healers::parser
