// Tests for the testing (error-injection) wrapper: deterministic injection,
// realistic errnos from the man pages, rate semantics, and the non-lying
// rule (functions without documented failure modes are never injected).
#include <gtest/gtest.h>

#include <cmath>

#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {
namespace {

using testbed::I;
using testbed::P;

struct TestingWrapperFixture : ::testing::Test {
  std::unique_ptr<linker::Process> make(double rate, std::uint64_t seed = 1,
                                        std::shared_ptr<gen::ComposedWrapper>* out = nullptr) {
    auto proc = testbed::make_process();
    auto wrapper = make_testing_wrapper(testbed::libsimc(), rate, seed).value();
    if (out != nullptr) *out = wrapper;
    proc->preload(wrapper);
    return proc;
  }
};

TEST_F(TestingWrapperFixture, RateZeroNeverInjects) {
  auto proc = make(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(proc->call("malloc", {I(16)}).as_ptr(), 0u) << i;
  }
}

TEST_F(TestingWrapperFixture, RateOneAlwaysInjectsDocumentedFailures) {
  auto proc = make(1.0);
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("malloc", {I(16)}).as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kENOMEM);  // from malloc's ERRNO note
  proc->machine().set_err(0);
  EXPECT_EQ(proc->call("strdup", {P(proc->alloc_cstring("x"))}).as_ptr(), 0u);
  EXPECT_EQ(proc->machine().err(), simlib::kENOMEM);
}

TEST_F(TestingWrapperFixture, FunctionsWithoutDocumentedErrnosAreNeverInjected) {
  auto proc = make(1.0);
  // strlen documents no errnos: must execute normally even at rate 1.
  EXPECT_EQ(proc->call("strlen", {P(proc->alloc_cstring("abcd"))}).as_int(), 4);
  EXPECT_EQ(proc->call("strcmp", {P(proc->alloc_cstring("a")),
                                  P(proc->alloc_cstring("a"))}).as_int(), 0);
}

TEST_F(TestingWrapperFixture, InjectionIsDeterministicPerSeed) {
  auto outcomes_for = [this](std::uint64_t seed) {
    auto proc = make(0.5, seed);
    std::vector<bool> failed;
    for (int i = 0; i < 60; ++i) {
      failed.push_back(proc->call("malloc", {I(16)}).as_ptr() == 0);
    }
    return failed;
  };
  EXPECT_EQ(outcomes_for(7), outcomes_for(7));
  EXPECT_NE(outcomes_for(7), outcomes_for(8));  // different schedule
}

TEST_F(TestingWrapperFixture, RateControlsInjectionFraction) {
  std::shared_ptr<gen::ComposedWrapper> wrapper;
  auto proc = make(0.3, 5, &wrapper);
  constexpr int kCalls = 400;
  int injected = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (proc->call("malloc", {I(16)}).as_ptr() == 0) ++injected;
  }
  EXPECT_GT(injected, kCalls / 6);      // well above zero...
  EXPECT_LT(injected, kCalls / 2);      // ...and well below half
  EXPECT_EQ(wrapper->stats()->total_contained(), static_cast<std::uint64_t>(injected));
}

TEST_F(TestingWrapperFixture, ExercisesApplicationErrorPaths) {
  // The use case from [5]: an app with a fallback path that only runs when
  // allocation fails. Under injection, the fallback is covered.
  auto proc = make(1.0);
  int fallback_taken = 0;
  for (int i = 0; i < 3; ++i) {
    const mem::Addr p = proc->call("malloc", {I(32)}).as_ptr();
    if (p == 0) {
      ++fallback_taken;  // the path normal runs never reach
    }
  }
  EXPECT_EQ(fallback_taken, 3);
}

TEST_F(TestingWrapperFixture, EmittedSourceContainsInjectionCode) {
  gen::WrapperBuilder builder("testing-src");
  builder.add(gen::prototype_gen()).add(error_injection_gen(0.25, 1)).add(gen::caller_gen());
  const auto source = builder.emit_library_source(testbed::libsimc());
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source.value().find("healers_fault_roll(0.25"), std::string::npos);
  EXPECT_NE(source.value().find("errno = ENOMEM; return NULL;"), std::string::npos);
}

TEST_F(TestingWrapperFixture, InjectedFloatFunctionsReturnNan) {
  auto proc = testbed::make_process();
  proc->preload(make_testing_wrapper(testbed::libsimm(), 1.0).value());
  // sqrt documents EDOM: injected failure returns NaN with that errno.
  proc->machine().set_err(0);
  EXPECT_TRUE(std::isnan(proc->call("sqrt", {testbed::F(4.0)}).as_double()));
  EXPECT_EQ(proc->machine().err(), simlib::kEDOM);
  // sin documents nothing: never injected.
  EXPECT_NEAR(proc->call("sin", {testbed::F(0.0)}).as_double(), 0.0, 1e-12);
}

}  // namespace
}  // namespace healers::wrappers
