// Tests for the profiling pipeline: stats -> report -> XML -> collector ->
// aggregation -> Fig 5 rendering.
#include <gtest/gtest.h>

#include "profile/collector.hpp"
#include "profile/report.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::profile {
namespace {

using testbed::I;
using testbed::P;

// Runs a small workload under a profiling wrapper and returns the report.
struct ProfileFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  std::shared_ptr<gen::ComposedWrapper> wrapper =
      wrappers::make_profiling_wrapper(testbed::libsimc(), /*include_trace=*/true).value();

  void SetUp() override {
    proc->preload(wrapper);
    const mem::Addr s = proc->alloc_cstring("workload");
    for (int i = 0; i < 10; ++i) proc->call("strlen", {P(s)});
    for (int i = 0; i < 5; ++i) proc->call("atoi", {P(proc->alloc_cstring("42"))});
    // Two errno-setting calls. Fig 3's histograms record errno *changes*
    // (`if (err != errno)`), so reset errno between the two failures, as an
    // application inspecting errno would.
    proc->call("wctrans", {P(proc->alloc_cstring("bogus"))});
    proc->machine().set_err(0);
    proc->call("wctrans", {P(proc->alloc_cstring("bogus2"))});
  }

  ProfileReport report() { return build_report("workload-app", wrapper->name(), *wrapper->stats()); }
};

TEST_F(ProfileFixture, ReportCountsCallsPerFunction) {
  const ProfileReport rep = report();
  ASSERT_NE(rep.function("strlen"), nullptr);
  EXPECT_EQ(rep.function("strlen")->calls, 10u);
  EXPECT_EQ(rep.function("atoi")->calls, 5u);
  EXPECT_EQ(rep.total_calls(), 17u);
}

TEST_F(ProfileFixture, UncalledFunctionsAreOmitted) {
  EXPECT_EQ(report().function("strcat"), nullptr);
}

TEST_F(ProfileFixture, CyclesAttributedToFunctions) {
  const ProfileReport rep = report();
  EXPECT_GT(rep.function("strlen")->cycles, 0u);
  EXPECT_GT(rep.total_cycles(), 0u);
}

TEST_F(ProfileFixture, ErrnoDistributionRecorded) {
  const ProfileReport rep = report();
  ASSERT_NE(rep.function("wctrans"), nullptr);
  EXPECT_EQ(rep.function("wctrans")->errors(), 2u);
  EXPECT_EQ(rep.function("wctrans")->errno_counts.at(simlib::kEINVAL), 2u);
  EXPECT_EQ(rep.global_errnos.at(simlib::kEINVAL), 2u);
  EXPECT_EQ(rep.total_errors(), 2u);
}

TEST_F(ProfileFixture, XmlDocumentIsSelfDescribing) {
  const xml::Node doc = to_xml(report());
  EXPECT_EQ(doc.name(), "profile");
  EXPECT_EQ(*doc.attr("process"), "workload-app");
  EXPECT_EQ(*doc.attr("wrapper"), "profiling-wrapper");
  bool found_strlen = false;
  for (const xml::Node* fn : doc.children_named("function")) {
    if (*fn->attr("name") == "strlen") {
      found_strlen = true;
      EXPECT_EQ(fn->attr_int("calls", 0), 10);
    }
  }
  EXPECT_TRUE(found_strlen);
}

TEST_F(ProfileFixture, XmlRoundTripPreservesReport) {
  const ProfileReport rep = report();
  auto back = from_xml(xml::parse(xml::serialize(to_xml(rep))).value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().total_calls(), rep.total_calls());
  EXPECT_EQ(back.value().total_cycles(), rep.total_cycles());
  EXPECT_EQ(back.value().total_errors(), rep.total_errors());
  EXPECT_EQ(back.value().function("strlen")->calls, 10u);
  EXPECT_EQ(back.value().global_errnos.at(simlib::kEINVAL), 2u);
}

TEST_F(ProfileFixture, RenderShowsFrequenciesTimeSharesAndErrnos) {
  const std::string text = render(report());
  EXPECT_NE(text.find("workload-app"), std::string::npos);
  EXPECT_NE(text.find("strlen"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
  EXPECT_NE(text.find("EINVAL"), std::string::npos);
  EXPECT_NE(text.find("Invalid argument"), std::string::npos);
}

TEST_F(ProfileFixture, TraceRecordsWorkload) {
  EXPECT_EQ(wrapper->stats()->trace().size(), 17u);
  EXPECT_EQ(wrapper->stats()->trace()[0].symbol, "strlen");
}

TEST_F(ProfileFixture, CollectorIngestsAndAggregates) {
  CollectorServer server;
  ASSERT_TRUE(server.ingest(xml::serialize(to_xml(report()))).ok());
  // A second process's document.
  auto proc2 = testbed::make_process("p2");
  auto wrapper2 = wrappers::make_profiling_wrapper(testbed::libsimc()).value();
  proc2->preload(wrapper2);
  proc2->call("strlen", {P(proc2->alloc_cstring("abc"))});
  ASSERT_TRUE(
      server.ingest(xml::serialize(to_xml(build_report("p2", "profiling-wrapper",
                                                       *wrapper2->stats()))))
          .ok());
  EXPECT_EQ(server.document_count(), 2u);
  const auto agg = server.aggregate();
  EXPECT_EQ(agg.at("strlen").calls, 11u);  // 10 + 1 across processes
  EXPECT_EQ(server.reports_for("p2").size(), 1u);
  EXPECT_EQ(server.reports_for("unknown").size(), 0u);
  const std::string summary = server.render_summary();
  EXPECT_NE(summary.find("2 document(s)"), std::string::npos);
  EXPECT_NE(summary.find("strlen: 11 calls"), std::string::npos);
}

TEST(Collector, RejectsGarbageAndWrongDocuments) {
  CollectorServer server;
  EXPECT_FALSE(server.ingest("not xml at all").ok());
  EXPECT_FALSE(server.ingest("<campaign/>").ok());
  EXPECT_EQ(server.document_count(), 0u);
}

TEST_F(ProfileFixture, IncrementalAggregateMatchesRescan) {
  CollectorServer server;
  ASSERT_TRUE(server.ingest(xml::serialize(to_xml(report()))).ok());
  // A second document from the same stats: totals double.
  ASSERT_TRUE(server.ingest(xml::serialize(to_xml(report()))).ok());
  const auto& incremental = server.aggregate();
  const auto rescan = server.aggregate_rescan();
  ASSERT_EQ(incremental.size(), rescan.size());
  for (const auto& [symbol, fn] : incremental) {
    ASSERT_TRUE(rescan.count(symbol)) << symbol;
    const FunctionProfile& other = rescan.at(symbol);
    EXPECT_EQ(fn.calls, other.calls) << symbol;
    EXPECT_EQ(fn.cycles, other.cycles) << symbol;
    EXPECT_EQ(fn.contained, other.contained) << symbol;
    EXPECT_EQ(fn.errno_counts, other.errno_counts) << symbol;
  }
  EXPECT_EQ(incremental.at("strlen").calls, 20u);
}

TEST_F(ProfileFixture, FailedIngestDoesNotMutateServerState) {
  CollectorServer server;
  ASSERT_TRUE(server.ingest(xml::serialize(to_xml(report()))).ok());
  const std::string before = server.render_summary();
  EXPECT_FALSE(server.ingest("<profile><function/></profile>").ok());  // missing name
  EXPECT_FALSE(server.ingest("not xml").ok());
  EXPECT_FALSE(server.ingest("<campaign/>").ok());
  EXPECT_EQ(server.document_count(), 1u);
  EXPECT_EQ(server.render_summary(), before);
  EXPECT_EQ(server.aggregate().size(), server.aggregate_rescan().size());
}

TEST_F(ProfileFixture, ReportsForReturnsEveryRunOfADuplicateProcessName) {
  CollectorServer server;
  // The same process name submits three runs (a process may submit several).
  for (int run = 0; run < 3; ++run) {
    ASSERT_TRUE(server.ingest(xml::serialize(to_xml(report()))).ok());
  }
  ASSERT_TRUE(server
                  .ingest(xml::serialize(to_xml(
                      build_report("other-app", wrapper->name(), *wrapper->stats()))))
                  .ok());
  const auto runs = server.reports_for("workload-app");
  ASSERT_EQ(runs.size(), 3u);
  for (const ProfileReport* rep : runs) EXPECT_EQ(rep->process, "workload-app");
  EXPECT_EQ(server.reports_for("other-app").size(), 1u);
  // Duplicates aggregate additively, not last-writer-wins.
  EXPECT_EQ(server.aggregate().at("strlen").calls, 40u);
}

TEST(Collector, EmptyServerAggregatesAndRendersCleanly) {
  const CollectorServer server;
  EXPECT_EQ(server.document_count(), 0u);
  EXPECT_TRUE(server.aggregate().empty());
  EXPECT_TRUE(server.aggregate_rescan().empty());
  const std::string summary = server.render_summary();
  EXPECT_NE(summary.find("0 document(s)"), std::string::npos);
  EXPECT_NE(summary.find("0 distinct functions, 0 calls, 0 errors"), std::string::npos);
}

TEST(ProfileReportEmpty, RendersWithoutErrors) {
  gen::WrapperStats stats;
  const ProfileReport rep = build_report("idle", "w", stats);
  EXPECT_EQ(rep.total_calls(), 0u);
  const std::string text = render(rep);
  EXPECT_NE(text.find("no errors recorded"), std::string::npos);
}

TEST_F(ProfileFixture, ChartRendersProportionalBars) {
  const std::string chart = render_chart(report(), ChartMetric::kCalls, 20);
  EXPECT_NE(chart.find("strlen"), std::string::npos);
  EXPECT_NE(chart.find("atoi"), std::string::npos);
  // strlen (10 calls) gets the full-width bar; atoi (5) roughly half.
  const std::string full_bar(20, '#');
  EXPECT_NE(chart.find(full_bar + " 10"), std::string::npos);
  EXPECT_NE(chart.find(std::string(10, '#') + " 5"), std::string::npos);
}

TEST_F(ProfileFixture, ChartByErrorsShowsOnlyFailingFunctions) {
  const std::string chart = render_chart(report(), ChartMetric::kErrors, 20);
  EXPECT_NE(chart.find("wctrans"), std::string::npos);
  EXPECT_EQ(chart.find("strlen"), std::string::npos);  // zero errors: omitted
}

TEST(ProfileChart, EmptyReportChartsNothing) {
  gen::WrapperStats stats;
  const std::string chart = render_chart(build_report("idle", "w", stats),
                                         ChartMetric::kCycles);
  EXPECT_NE(chart.find("nothing to chart"), std::string::npos);
}

TEST(ProfileContained, ContainedCountSurvivesRoundTrip) {
  gen::WrapperStats stats;
  stats.register_function(1, "strcpy");
  stats.function(1).calls = 4;
  stats.function(1).contained = 2;
  const ProfileReport rep = build_report("p", "w", stats);
  auto back = from_xml(xml::parse(xml::serialize(to_xml(rep))).value());
  EXPECT_EQ(back.value().function("strcpy")->contained, 2u);
}

}  // namespace
}  // namespace healers::profile
