// Unit tests for the micro-generator framework: per-generator code
// fragments, the Fig 3 golden wrapper source, composer call semantics
// (prefix order, postfix reversal, short-circuit), the library builder, and
// wrapper stats.
#include <gtest/gtest.h>

#include "gen/composer.hpp"
#include "parser/manpage.hpp"
#include "testbed.hpp"

namespace healers::gen {
namespace {

using testbed::I;
using testbed::P;

parser::ManPage page_for(const std::string& symbol) {
  const simlib::Symbol* sym = testbed::libsimc().find(symbol);
  if (sym == nullptr) sym = testbed::libsimio().find(symbol);
  return parser::parse_manpage(sym->manpage).value();
}

std::vector<MicroGeneratorPtr> fig3_list() {
  return {prototype_gen(),    exectime_gen(),     collect_errors_gen(),
          func_errors_gen(),  call_counter_gen(), caller_gen()};
}

// The paper's Fig 3, regenerated: the wrapper for wctrans with function id
// 1206 and the six standard micro-generators. This golden pins both the
// fragment content and the prefix-order/postfix-reverse-order assembly.
TEST(EmitWrapperSource, Fig3GoldenWctrans) {
  const parser::ManPage page = page_for("wctrans");
  GenContext ctx{page.proto, 1206, nullptr, &page};
  const std::string source = emit_wrapper_source(ctx, fig3_list());
  const std::string expected =
      "/* Prefix code by micro-gen prototype */\n"
      "wctrans_t wctrans(const char *a1)\n"
      "{\n"
      "  wctrans_t ret;\n"
      "/* Prefix code by micro-gen function exectime */\n"
      "  unsigned long long exectime_start;\n"
      "  unsigned long long exectime_end;\n"
      "  rdtsc(exectime_start);\n"
      "/* Prefix code by micro-gen collect errors */\n"
      "  int collect_errors_err = errno;\n"
      "/* Prefix code by micro-gen func error */\n"
      "  int func_error_err = errno;\n"
      "/* Prefix code by micro-gen call counter */\n"
      "  ++call_counter_num_calls[1206];\n"
      "/* Postfix code by micro-gen caller */\n"
      "  ret = (*addr_wctrans)(a1);\n"
      "/* Postfix code by micro-gen func error */\n"
      "  if (func_error_err != errno) {\n"
      "    if (errno < 0 || errno >= MAX_ERRNO)\n"
      "      ++func_error_cnter[1206][MAX_ERRNO];\n"
      "    else\n"
      "      ++func_error_cnter[1206][errno];\n"
      "  }\n"
      "/* Postfix code by micro-gen collect errors */\n"
      "  if (collect_errors_err != errno) {\n"
      "    if (errno < 0 || errno >= MAX_ERRNO)\n"
      "      ++collect_errors_cnter[MAX_ERRNO];\n"
      "    else\n"
      "      ++collect_errors_cnter[errno];\n"
      "  }\n"
      "/* Postfix code by micro-gen function exectime */\n"
      "  rdtsc(exectime_end);\n"
      "  exectime[1206] += exectime_end - exectime_start;\n"
      "/* Postfix code by micro-gen prototype */\n"
      "  return ret;\n"
      "}\n";
  EXPECT_EQ(source, expected);
}

TEST(EmitWrapperSource, VoidFunctionHasNoRetVariable) {
  const parser::ManPage page = page_for("free");
  GenContext ctx{page.proto, 1, nullptr, &page};
  const std::string source = emit_wrapper_source(ctx, {prototype_gen(), caller_gen()});
  EXPECT_NE(source.find("void free(void *a1)"), std::string::npos);
  EXPECT_EQ(source.find("  void ret;"), std::string::npos);
  EXPECT_NE(source.find("  (*addr_free)(a1);"), std::string::npos);
  EXPECT_NE(source.find("  return;"), std::string::npos);
}

TEST(EmitWrapperSource, VarargsSignatureRendered) {
  const parser::ManPage page = page_for("sprintf");
  GenContext ctx{page.proto, 2, nullptr, &page};
  const std::string source = emit_wrapper_source(ctx, {prototype_gen(), caller_gen()});
  EXPECT_NE(source.find("int sprintf(char *a1, const char *a2, ...)"), std::string::npos);
}

TEST(EmitWrapperSource, ZeroArgFunction) {
  const parser::ManPage page = page_for("rand");
  GenContext ctx{page.proto, 3, nullptr, &page};
  const std::string source = emit_wrapper_source(ctx, {prototype_gen(), caller_gen()});
  EXPECT_NE(source.find("int rand(void)"), std::string::npos);
  EXPECT_NE(source.find("ret = (*addr_rand)();"), std::string::npos);
}

TEST(EmitWrapperSource, FunctionPointerParameterRendered) {
  const parser::ManPage page = page_for("qsort");
  GenContext ctx{page.proto, 9, nullptr, &page};
  const std::string source = emit_wrapper_source(ctx, {prototype_gen(), caller_gen()});
  EXPECT_NE(source.find("void qsort(void *a1, size_t a2, size_t a3, "
                        "int (*a4)(const void *, const void *))"),
            std::string::npos)
      << source;
  EXPECT_NE(source.find("(*addr_qsort)(a1, a2, a3, a4);"), std::string::npos);
}

TEST(MicroGenerators, NamesMatchFig3Labels) {
  EXPECT_EQ(prototype_gen()->name(), "prototype");
  EXPECT_EQ(caller_gen()->name(), "caller");
  EXPECT_EQ(exectime_gen()->name(), "function exectime");
  EXPECT_EQ(collect_errors_gen()->name(), "collect errors");
  EXPECT_EQ(func_errors_gen()->name(), "func error");
  EXPECT_EQ(call_counter_gen()->name(), "call counter");
  EXPECT_EQ(log_call_gen()->name(), "log call");
}

struct ComposerFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();

  std::shared_ptr<ComposedWrapper> build(const std::vector<MicroGeneratorPtr>& gens) {
    WrapperBuilder builder("test-wrapper");
    for (const auto& gen : gens) builder.add(gen);
    auto wrapper = builder.build(testbed::libsimc());
    EXPECT_TRUE(wrapper.ok());
    return wrapper.value();
  }
};

TEST_F(ComposerFixture, CallCounterCountsPerFunction) {
  auto wrapper = build({call_counter_gen()});
  proc->preload(wrapper);
  const mem::Addr s = proc->alloc_cstring("abc");
  proc->call("strlen", {P(s)});
  proc->call("strlen", {P(s)});
  proc->call("atoi", {P(proc->alloc_cstring("1"))});
  EXPECT_EQ(wrapper->stats()->total_calls(), 3u);
  // Find the per-function entries by symbol.
  std::uint64_t strlen_calls = 0;
  for (const auto& [_, fn] : wrapper->stats()->functions()) {
    if (fn.symbol == "strlen") strlen_calls = fn.calls;
  }
  EXPECT_EQ(strlen_calls, 2u);
}

TEST_F(ComposerFixture, ExectimeAccumulatesCycles) {
  auto wrapper = build({exectime_gen()});
  proc->preload(wrapper);
  proc->call("strlen", {P(proc->alloc_cstring("0123456789"))});
  EXPECT_GE(wrapper->stats()->total_cycles(), 10u);
}

TEST_F(ComposerFixture, ErrnoHistogramsRecordChangesOnly) {
  auto wrapper = build({collect_errors_gen(), func_errors_gen()});
  proc->preload(wrapper);
  // strlen never sets errno: nothing recorded.
  proc->call("strlen", {P(proc->alloc_cstring("x"))});
  EXPECT_TRUE(wrapper->stats()->global_errnos().empty());
  // wctrans("bogus") sets EINVAL.
  proc->call("wctrans", {P(proc->alloc_cstring("bogus"))});
  ASSERT_EQ(wrapper->stats()->global_errnos().count(simlib::kEINVAL), 1u);
  EXPECT_EQ(wrapper->stats()->global_errnos().at(simlib::kEINVAL), 1u);
}

TEST_F(ComposerFixture, LogCallRecordsArgsAndOutcome) {
  auto wrapper = build({log_call_gen()});
  proc->preload(wrapper);
  proc->call("atoi", {P(proc->alloc_cstring("42"))});
  ASSERT_EQ(wrapper->stats()->trace().size(), 1u);
  const TraceRecord& rec = wrapper->stats()->trace()[0];
  EXPECT_EQ(rec.symbol, "atoi");
  ASSERT_EQ(rec.args.size(), 1u);
  EXPECT_EQ(rec.outcome, "42");
}

TEST_F(ComposerFixture, UnwrappedSymbolsPassThrough) {
  auto wrapper = build({call_counter_gen()});
  proc->preload(wrapper);
  proc->call("sqrt", {testbed::F(4.0)});  // libsimm fn: not wrapped
  EXPECT_EQ(wrapper->stats()->total_calls(), 0u);
}

// A hook that short-circuits to verify composer containment semantics.
class ShortCircuitGen : public MicroGenerator {
 public:
  explicit ShortCircuitGen(std::vector<std::string>& log) : log_(log) {}
  [[nodiscard]] std::string name() const override { return "short circuit"; }
  [[nodiscard]] std::string prefix_code(const GenContext&) const override { return {}; }
  [[nodiscard]] std::string postfix_code(const GenContext&) const override { return {}; }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext&, WrapperStats&) const override {
    class Hook : public RuntimeHook {
     public:
      explicit Hook(std::vector<std::string>& log) : log_(log) {}
      const simlib::SimValue* prefix(simlib::CallContext&) override {
        log_.push_back("short");
        contained_ = simlib::SimValue::integer(-42);
        return &contained_;
      }
      void postfix(simlib::CallContext&, simlib::SimValue&) override {
        log_.push_back("short-postfix(should not run)");
      }

     private:
      std::vector<std::string>& log_;
      simlib::SimValue contained_ = simlib::SimValue::integer(0);
    };
    return std::make_unique<Hook>(log_);
  }

 private:
  std::vector<std::string>& log_;
};

TEST_F(ComposerFixture, ShortCircuitSkipsCallAndPostfixes) {
  std::vector<std::string> log;
  WrapperBuilder builder("sc");
  builder.add(call_counter_gen())
      .add(std::make_shared<ShortCircuitGen>(log))
      .add(exectime_gen());
  auto wrapper = builder.build(testbed::libsimc()).value();
  proc->preload(wrapper);
  // strlen(NULL) would crash; the short circuit returns -42 first.
  EXPECT_EQ(proc->call("strlen", {P(0)}).as_int(), -42);
  ASSERT_EQ(log.size(), 1u);               // postfix never ran
  EXPECT_EQ(log[0], "short");
  EXPECT_EQ(wrapper->stats()->total_calls(), 1u);   // counter prefix ran first
  EXPECT_EQ(wrapper->stats()->total_cycles(), 0u);  // exectime never started
}

TEST_F(ComposerFixture, FunctionIdsAssignedSequentiallyFrom1200) {
  auto wrapper = build({call_counter_gen()});
  const auto& functions = wrapper->stats()->functions();
  ASSERT_FALSE(functions.empty());
  EXPECT_EQ(functions.begin()->first, kFirstFunctionId);
  int expected = kFirstFunctionId;
  for (const auto& [fid, _] : functions) {
    EXPECT_EQ(fid, expected++);
  }
}

TEST(WrapperBuilder, EmitLibrarySourceContainsEveryFunction) {
  WrapperBuilder builder("src");
  builder.add(prototype_gen()).add(caller_gen());
  auto source = builder.emit_library_source(testbed::libsimm());
  ASSERT_TRUE(source.ok());
  for (const std::string& name : testbed::libsimm().names()) {
    EXPECT_NE(source.value().find("addr_" + name), std::string::npos) << name;
  }
}

TEST(WrapperBuilder, RejectsNullGenerator) {
  WrapperBuilder builder("x");
  EXPECT_THROW(builder.add(nullptr), std::invalid_argument);
}

TEST(WrapperStats, RegisterConflictingSymbolThrows) {
  WrapperStats stats;
  stats.register_function(1, "a");
  stats.register_function(1, "a");  // idempotent
  EXPECT_THROW(stats.register_function(1, "b"), std::logic_error);
}

TEST(WrapperStats, GlobalErrnoFoldsOutOfRangeIntoMaxBucket) {
  WrapperStats stats;
  stats.count_global_errno(-5);
  stats.count_global_errno(1000);
  stats.count_global_errno(simlib::kEINVAL);
  EXPECT_EQ(stats.global_errnos().at(simlib::kMaxErrno), 2u);
  EXPECT_EQ(stats.global_errnos().at(simlib::kEINVAL), 1u);
}

TEST(WrapperStats, TraceRespectsLimit) {
  WrapperStats stats;
  stats.set_trace_limit(2);
  for (int i = 0; i < 5; ++i) stats.append_trace(TraceRecord{"f", {}, "ok"});
  EXPECT_EQ(stats.trace().size(), 2u);
}

}  // namespace
}  // namespace healers::gen
