// Demand-driven surface debloating tests (docs/debloat.md): the static
// reachability closure, the demand-loading load barrier (fault-in, the
// surface-violation trap, and its incident dossier), the SurfaceProfile
// XML/HSP1 codecs, fleet aggregation determinism across shard counts, and
// campaign scoping through InjectorConfig::only_functions and the toolkit's
// installed surface scopes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "debloat/reachability.hpp"
#include "debloat/surface.hpp"
#include "fleet/collector.hpp"
#include "fleet/wire.hpp"
#include "incident/dossier.hpp"
#include "incident/recorder.hpp"
#include "testbed.hpp"
#include "xml/xml.hpp"

namespace healers::debloat {
namespace {

// One toolkit per suite: the catalog is immutable and shared.
core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

// --- static reachability ---------------------------------------------------

TEST(Reachability, NetdClosureFollowsCallsEdgesToFixpoint) {
  const linker::Executable exe = attacks::heap_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  EXPECT_EQ(report.executable, "netd");
  // Roots {free, malloc, memcpy, puts, strcpy} plus strlen via the CALLS
  // edges of puts and strcpy.
  const std::vector<std::string> expected = {"free",  "malloc", "memcpy",
                                             "puts",  "strcpy", "strlen"};
  EXPECT_EQ(report.reachable, expected);
  EXPECT_TRUE(report.unresolved.empty());
  EXPECT_TRUE(std::is_sorted(report.reachable.begin(), report.reachable.end()));
  // The debloating claim itself: most of the exported surface is unreachable.
  EXPECT_GT(report.exported, report.reachable.size());
  EXPECT_GE(report.unmapped_ratio(), 0.30);
}

TEST(Reachability, StaleImportStaysOutsideTheClosure) {
  const linker::Executable exe = attacks::drift_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  const std::vector<std::string> expected = {"puts", "strlen"};
  EXPECT_EQ(report.reachable, expected);  // rand() is not in the declared imports
}

TEST(Reachability, TraceRefinementUnionsObservedSymbols) {
  const linker::Executable exe = attacks::drift_victim_executable();
  ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  refine_with_trace(report, {"rand", "puts"});
  const std::vector<std::string> expected = {"puts", "rand", "strlen"};
  EXPECT_EQ(report.reachable, expected);
  refine_with_trace(report, {"rand"});  // idempotent
  EXPECT_EQ(report.reachable, expected);
}

// --- demand loading --------------------------------------------------------

TEST(DemandLoading, FaultsInOnlyWhatTheRunTouches) {
  const linker::Executable exe = attacks::heap_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  auto proc = spawn_debloated(exe, toolkit().catalog(), report);
  EXPECT_TRUE(proc->demand_loading());
  EXPECT_EQ(proc->surface().mapped, 0u);
  (void)proc->run(exe.entry);
  const auto& touched = proc->touched_symbols();
  EXPECT_GT(touched.size(), 0u);
  EXPECT_EQ(proc->surface().mapped, touched.size());
  EXPECT_LT(touched.size(), proc->surface().exported);
  for (const std::string& symbol : touched) {
    EXPECT_TRUE(std::binary_search(report.reachable.begin(), report.reachable.end(), symbol))
        << symbol << " faulted in but is outside the closure";
  }
}

TEST(DemandLoading, OutOfProfileCallTrapsAsSurfaceViolation) {
  const linker::Executable exe = attacks::drift_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  auto proc = spawn_debloated(exe, toolkit().catalog(), report);
  incident::FlightRecorder recorder;
  recorder.set_process_name(exe.name);
  proc->set_observer(&recorder);
  const linker::CallOutcome outcome = proc->run(exe.entry);
  EXPECT_NE(outcome.to_string().find("surface violation"), std::string::npos);
  EXPECT_EQ(proc->surface().violations, 1u);
  ASSERT_EQ(recorder.dossiers().size(), 1u);
  const incident::Dossier& dossier = recorder.dossiers().front();
  EXPECT_EQ(dossier.detector, simlib::DetectionKind::kSurfaceViolation);
  EXPECT_EQ(dossier.process, "statsd");
}

TEST(DemandLoading, SurfaceViolationDossierRoundTripsXmlAndBinary) {
  const linker::Executable exe = attacks::drift_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  auto proc = spawn_debloated(exe, toolkit().catalog(), report);
  incident::FlightRecorder recorder;
  recorder.set_process_name(exe.name);
  proc->set_observer(&recorder);
  (void)proc->run(exe.entry);
  ASSERT_FALSE(recorder.dossiers().empty());
  const incident::Dossier& dossier = recorder.dossiers().front();

  const std::string xml_doc = xml::serialize(dossier.to_xml());
  const auto parsed = xml::parse(xml_doc);
  ASSERT_TRUE(parsed.ok());
  const auto decoded = incident::from_xml(parsed.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(xml::serialize(decoded.value().to_xml()), xml_doc);

  const std::string binary = fleet::encode_dossier_binary(dossier);
  const auto from_binary = fleet::decode_dossier_binary(binary);
  ASSERT_TRUE(from_binary.ok());
  EXPECT_EQ(fleet::encode_dossier_binary(from_binary.value()), binary);
  EXPECT_EQ(from_binary.value().detector, simlib::DetectionKind::kSurfaceViolation);
}

// --- surface profiles ------------------------------------------------------

SurfaceProfile captured_profile() {
  const linker::Executable exe = attacks::drift_victim_executable();
  const ReachabilityReport report = compute_reachability(exe, toolkit().catalog());
  auto proc = spawn_debloated(exe, toolkit().catalog(), report);
  (void)proc->run(exe.entry);
  return capture_surface_profile(*proc, report, "host-a");
}

TEST(SurfaceProfile, CaptureReflectsTheRun) {
  const SurfaceProfile profile = captured_profile();
  EXPECT_EQ(profile.host, "host-a");
  EXPECT_EQ(profile.executable, "statsd");
  EXPECT_EQ(profile.reachable, 2u);
  EXPECT_EQ(profile.touched, 2u);
  EXPECT_EQ(profile.trapped, 1u);
  EXPECT_EQ(profile.trapped_symbols, std::vector<std::string>{"rand"});
  EXPECT_EQ(profile.resident_pages, profile.touched);  // one text page per symbol
  EXPECT_GT(profile.total_pages, profile.resident_pages);
}

TEST(SurfaceProfile, XmlRoundTripIsExactAndDeterministic) {
  const SurfaceProfile profile = captured_profile();
  const std::string doc = profile.to_xml();
  EXPECT_EQ(captured_profile().to_xml(), doc);  // capture is deterministic
  const auto decoded = surface_from_xml(doc);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), profile);
  EXPECT_EQ(decoded.value().to_xml(), doc);
}

TEST(SurfaceProfile, BinaryRoundTripIsExactAndStrict) {
  const SurfaceProfile profile = captured_profile();
  const std::string binary = fleet::encode_surface_binary(profile);
  ASSERT_TRUE(fleet::is_surface_binary(binary));
  const auto decoded = fleet::decode_surface_binary(binary);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), profile);
  EXPECT_FALSE(fleet::decode_surface_binary(binary.substr(0, binary.size() - 2)).ok());
  EXPECT_FALSE(fleet::decode_surface_binary(binary + "x").ok());
  EXPECT_FALSE(fleet::decode_surface_binary("HSP1").ok());
}

// --- fleet aggregation -----------------------------------------------------

TEST(FleetSurface, AggregationIsByteIdenticalAcrossShardsAndEncodings) {
  const SurfaceProfile a = captured_profile();
  SurfaceProfile b = a;
  b.host = "host-b";
  b.trapped = 2;
  b.trapped_symbols = {"atoi", "rand"};

  std::string reference;
  for (const unsigned shards : {1u, 2u, 5u}) {
    fleet::CollectorConfig config;
    config.shards = shards;
    config.workers = shards;  // vary worker count along with sharding
    fleet::FleetCollector collector(config);
    collector.submit(fleet::encode_surface_binary(a));
    collector.submit(b.to_xml());  // XML and binary fold identically
    collector.submit(fleet::encode_surface_binary(b));
    collector.flush();
    EXPECT_EQ(collector.aggregated(), 3u);
    EXPECT_EQ(collector.malformed(), 0u);
    const std::string summary = collector.render_summary();
    EXPECT_NE(summary.find("surface profiles: 3"), std::string::npos);
    EXPECT_NE(summary.find("trapped rand"), std::string::npos);
    if (reference.empty()) {
      reference = summary;
    } else {
      EXPECT_EQ(summary, reference) << "shards=" << shards;
    }
  }
}

// --- campaign scoping ------------------------------------------------------

TEST(SurfaceScope, ScopedCampaignProbesOnlyTheScope) {
  core::Toolkit kit;
  injector::InjectorConfig config;
  config.seed = 21;
  config.only_functions = {"sqrt", "fabs"};
  const auto scoped = kit.derive_robust_api("libsimm.so.1", config);
  ASSERT_TRUE(scoped.ok());
  EXPECT_EQ(scoped.value().specs.size(), 2u);
  // Scoped campaigns are partial documents: never exported to the cache.
  EXPECT_TRUE(kit.export_campaigns().empty());

  injector::InjectorConfig unscoped;
  unscoped.seed = 21;
  const auto full = kit.derive_robust_api("libsimm.so.1", unscoped);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full.value().specs.size(), scoped.value().specs.size());
  EXPECT_EQ(kit.export_campaigns().size(), 1u);
}

TEST(SurfaceScope, InstallAndUnionPerLibrary) {
  core::Toolkit kit;
  core::SurfaceScope heap_scope;
  heap_scope.executable = "netd";
  heap_scope.soname = "libsimc.so.1";
  heap_scope.symbols = {"strlen", "strcpy", "strlen"};  // unsorted, with a dup
  EXPECT_TRUE(kit.install_surface_scope(heap_scope));
  core::SurfaceScope drift_scope;
  drift_scope.executable = "statsd";
  drift_scope.soname = "libsimc.so.1";
  drift_scope.symbols = {"atoi"};
  EXPECT_TRUE(kit.install_surface_scope(drift_scope));

  const std::vector<std::string> expected = {"atoi", "strcpy", "strlen"};
  EXPECT_EQ(kit.surface_scope_for("libsimc.so.1"), expected);
  EXPECT_TRUE(kit.surface_scope_for("libsimm.so.1").empty());

  // Unknown library or stale fingerprint: rejected.
  core::SurfaceScope unknown = heap_scope;
  unknown.soname = "libnope.so";
  EXPECT_FALSE(kit.install_surface_scope(unknown));
  core::SurfaceScope stale = heap_scope;
  stale.fingerprint = 0xdead;
  EXPECT_FALSE(kit.install_surface_scope(stale));

  // Export is sorted by (executable, soname) and round-trips via import.
  const auto exported = kit.export_surface_scopes();
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported[0].executable, "netd");
  EXPECT_EQ(exported[1].executable, "statsd");
  core::Toolkit fresh;
  EXPECT_EQ(fresh.import_surface_scopes(exported), 2u);
  EXPECT_EQ(fresh.surface_scope_for("libsimc.so.1"), expected);
}

}  // namespace
}  // namespace healers::debloat
