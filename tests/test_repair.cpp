// Tests for the repair wrapper family (ISSUE 9): policy derivation from a
// synthetic campaign document, the runtime semantics of each repair strategy
// (truncate / substitute / synthesize / safe-return), the no-repair-no-delta
// contract, campaign-document byte-identity with repair off, RepairEvent
// dossier round-trips (XML and HDB1), and end-to-end survival of the §3.4
// heap-smash attack under the repair wrapper.
#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "fleet/wire.hpp"
#include "gen/repair_policy.hpp"
#include "incident/recorder.hpp"
#include "injector/injector.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"
#include "xml/xml.hpp"

namespace healers::wrappers {
namespace {

using linker::CallOutcome;
using simlib::RepairAction;
using testbed::I;
using testbed::P;

// One campaign shared by the whole suite (expensive-ish, deterministic).
const injector::CampaignResult& campaign_c() {
  static const injector::CampaignResult result = [] {
    linker::LibraryCatalog catalog;
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
    injector::InjectorConfig config;
    config.seed = 5;
    config.variants = 1;
    injector::FaultInjector injector(catalog, config);
    return injector.run_campaign(testbed::libsimc()).value();
  }();
  return result;
}

// sprintf lives in libsimio, so the synthesize branch needs its own campaign.
const injector::CampaignResult& campaign_io() {
  static const injector::CampaignResult result = [] {
    linker::LibraryCatalog catalog;
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
    injector::InjectorConfig config;
    config.seed = 5;
    config.variants = 1;
    injector::FaultInjector injector(catalog, config);
    return injector.run_campaign(testbed::libsimio()).value();
  }();
  return result;
}

// A hand-built campaign document with exactly the crash boundaries each
// derivation branch needs — derivation must read the document, not the
// function name.
injector::CampaignResult synthetic_campaign() {
  injector::CampaignResult campaign;
  campaign.library = "libsimc.so.1";
  campaign.seed = 7;

  const auto pointer_arg = [](int index, injector::DerivedChecks checks) {
    injector::ArgSpec arg;
    arg.index = index;
    arg.ctype = "char *";
    arg.cls = parser::TypeClass::kPointer;
    arg.checks = checks;
    return arg;
  };
  injector::DerivedChecks size_checked;
  size_checked.require_nonnull = true;
  size_checked.require_writable = true;
  size_checked.require_size_check = true;
  injector::DerivedChecks writable_only;
  writable_only.require_nonnull = true;
  writable_only.require_writable = true;
  injector::DerivedChecks input_string;
  input_string.require_nonnull = true;
  input_string.require_mapped = true;
  input_string.require_terminated = true;

  injector::RobustSpec strcpy_spec;
  strcpy_spec.function = "strcpy";
  strcpy_spec.args = {pointer_arg(1, size_checked), pointer_arg(2, input_string)};
  campaign.specs.push_back(strcpy_spec);

  // memcpy's destination was never caught by a tiny-writable probe (the
  // campaign's valid lengths were all small) but still proved crash-prone.
  injector::RobustSpec memcpy_spec;
  memcpy_spec.function = "memcpy";
  memcpy_spec.args = {pointer_arg(1, writable_only)};
  campaign.specs.push_back(memcpy_spec);

  injector::RobustSpec strcat_spec;
  strcat_spec.function = "strcat";
  strcat_spec.args = {pointer_arg(1, size_checked)};
  campaign.specs.push_back(strcat_spec);

  injector::RobustSpec strlen_spec;
  strlen_spec.function = "strlen";
  strlen_spec.args = {pointer_arg(1, input_string)};
  campaign.specs.push_back(strlen_spec);

  // An argument with no derived checks at all must yield no rule.
  injector::RobustSpec abs_spec;
  abs_spec.function = "abs";
  injector::ArgSpec plain;
  plain.index = 1;
  plain.ctype = "int";
  plain.cls = parser::TypeClass::kIntegral;
  abs_spec.args = {plain};
  campaign.specs.push_back(abs_spec);

  return campaign;
}

// --- policy derivation -----------------------------------------------------

TEST(RepairPolicyDerivation, SyntheticCampaignCoversEveryStrategy) {
  const auto policy = gen::derive_repair_policy(synthetic_campaign(), testbed::libsimc());
  ASSERT_TRUE(policy.ok()) << policy.error().message;

  // strcpy dest: computed write size (cstrlen(2)+1) -> bounded substitution
  // whose copy source is arg 2; its input string gets a safe-return rule.
  const gen::FunctionRepairPolicy* strcpy_policy = policy.value().policy("strcpy");
  ASSERT_NE(strcpy_policy, nullptr);
  const gen::RepairRule* dest = strcpy_policy->rule_for_arg(1);
  ASSERT_NE(dest, nullptr);
  EXPECT_EQ(dest->action, RepairAction::kSubstituteBounded);
  EXPECT_EQ(dest->src_arg, 2);
  EXPECT_FALSE(dest->append);
  ASSERT_TRUE(dest->write_size.has_value());
  EXPECT_EQ(dest->write_size->to_string(), "cstrlen(2)+1");
  const gen::RepairRule* src = strcpy_policy->rule_for_arg(2);
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(src->action, RepairAction::kSafeReturn);

  // memcpy dest: write size is arg(3) -> failure-oblivious truncation
  // clamping that argument, even without a tiny-writable verdict.
  const gen::FunctionRepairPolicy* memcpy_policy = policy.value().policy("memcpy");
  ASSERT_NE(memcpy_policy, nullptr);
  const gen::RepairRule* memcpy_dest = memcpy_policy->rule_for_arg(1);
  ASSERT_NE(memcpy_dest, nullptr);
  EXPECT_EQ(memcpy_dest->action, RepairAction::kTruncateWrite);
  EXPECT_EQ(memcpy_dest->clamp_arg, 3);

  // strcat dest: the write size counts cstrlen(1) (the destination itself)
  // -> append-mode substitution sourcing arg 2.
  const gen::FunctionRepairPolicy* strcat_policy = policy.value().policy("strcat");
  ASSERT_NE(strcat_policy, nullptr);
  const gen::RepairRule* strcat_dest = strcat_policy->rule_for_arg(1);
  ASSERT_NE(strcat_dest, nullptr);
  EXPECT_EQ(strcat_dest->action, RepairAction::kSubstituteBounded);
  EXPECT_TRUE(strcat_dest->append);
  EXPECT_EQ(strcat_dest->src_arg, 2);

  // strlen: pure input string -> safe return; abs: nothing to repair.
  const gen::FunctionRepairPolicy* strlen_policy = policy.value().policy("strlen");
  ASSERT_NE(strlen_policy, nullptr);
  ASSERT_NE(strlen_policy->rule_for_arg(1), nullptr);
  EXPECT_EQ(strlen_policy->rule_for_arg(1)->action, RepairAction::kSafeReturn);
  EXPECT_EQ(policy.value().policy("abs"), nullptr);

  // Provenance must name the campaign evidence and the man-page annotation.
  EXPECT_NE(dest->provenance.find("tiny-writable"), std::string::npos);
  EXPECT_NE(memcpy_dest->provenance.find("BUF WRITE SIZE arg(3)"), std::string::npos);
}

TEST(RepairPolicyDerivation, PolicyXmlRoundTrips) {
  const auto policy = gen::derive_repair_policy(synthetic_campaign(), testbed::libsimc());
  ASSERT_TRUE(policy.ok());
  const std::string text = xml::serialize(policy.value().to_xml());
  const auto parsed = xml::parse(text);
  ASSERT_TRUE(parsed.ok());
  const auto back = gen::RepairPolicy::from_xml(parsed.value());
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_TRUE(policy.value() == back.value());
  EXPECT_EQ(text, xml::serialize(back.value().to_xml()));
}

TEST(RepairPolicyDerivation, DerivationLeavesCampaignDocumentUntouched) {
  const injector::CampaignResult& campaign = campaign_c();
  const std::string before = xml::serialize(campaign.to_xml());
  const auto policy = gen::derive_repair_policy(campaign, testbed::libsimc());
  ASSERT_TRUE(policy.ok());
  EXPECT_GT(policy.value().rule_count(), 0u);
  EXPECT_EQ(before, xml::serialize(campaign.to_xml()));
}

// --- runtime semantics -----------------------------------------------------

struct RepairFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  std::shared_ptr<gen::ComposedWrapper> wrapper =
      make_repair_wrapper(testbed::libsimc(), campaign_c()).value();
  incident::FlightRecorder recorder;

  void SetUp() override {
    proc->preload(wrapper);
    proc->set_observer(&recorder);
  }

  std::string read_cstring(mem::Addr addr) {
    std::string out;
    for (;;) {
      const std::uint8_t byte = proc->machine().mem().load8(addr + out.size());
      if (byte == 0) break;
      out += static_cast<char>(byte);
    }
    return out;
  }
};

TEST_F(RepairFixture, TruncateWriteClampsMemcpyToAllocationExtent) {
  const mem::Addr dest = proc->call("malloc", {I(16)}).as_ptr();
  const mem::Addr guard = proc->call("malloc", {I(16)}).as_ptr();
  proc->call("strcpy", {P(guard), P(proc->alloc_cstring("sentinel"))});
  const mem::Addr src = proc->alloc_cstring("0123456789abcdefGHIJKLMNOPQRSTU");

  const auto outcome = proc->supervised_call("memcpy", {P(dest), P(src), I(32)});
  ASSERT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(outcome.ret.as_ptr(), dest);

  // Exactly the 16 in-bounds bytes were copied; the neighbour is intact.
  EXPECT_EQ(proc->machine().mem().load8(dest + 15), static_cast<std::uint8_t>('f'));
  EXPECT_EQ(read_cstring(guard), "sentinel");
  ASSERT_EQ(recorder.repairs_applied(), 1u);
  const incident::RepairEvent& event = recorder.repair_log().front();
  EXPECT_EQ(event.symbol, "memcpy");
  EXPECT_EQ(event.action, RepairAction::kTruncateWrite);
  EXPECT_EQ(event.requested, 32u);
  EXPECT_EQ(event.granted, 16u);
}

TEST_F(RepairFixture, SubstituteBoundedCopiesPrefixAndTerminates) {
  const mem::Addr dest = proc->call("malloc", {I(8)}).as_ptr();
  const mem::Addr src = proc->alloc_cstring("0123456789ABCDEF");

  const auto outcome = proc->supervised_call("strcpy", {P(dest), P(src)});
  ASSERT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(outcome.ret.as_ptr(), dest);
  EXPECT_EQ(read_cstring(dest), "0123456");  // 7 bytes + NUL fill the extent

  ASSERT_EQ(recorder.repairs_applied(), 1u);
  const incident::RepairEvent& event = recorder.repair_log().front();
  EXPECT_EQ(event.action, RepairAction::kSubstituteBounded);
  EXPECT_EQ(event.requested, 17u);  // cstrlen(src)+1
  EXPECT_EQ(event.granted, 8u);     // what fit, NUL included
}

TEST_F(RepairFixture, SynthesizeInputWhenNoCopyableSource) {
  // sprintf is a libsimio symbol: wrap that library too so its formatted(2)+1
  // write-size rule is live alongside the libsimc fixture wrapper.
  proc->preload(make_repair_wrapper(testbed::libsimio(), campaign_io()).value());
  const mem::Addr dest = proc->call("malloc", {I(8)}).as_ptr();
  const mem::Addr fmt = proc->alloc_cstring(std::string(100, 'A'));

  const auto outcome = proc->supervised_call("sprintf", {P(dest), P(fmt)});
  ASSERT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  // No NUL-terminated source to bound-copy: the repair degrades to an empty
  // synthesized output and the call reports zero characters written.
  EXPECT_EQ(outcome.ret.as_int(), 0);
  EXPECT_EQ(read_cstring(dest), "");
  ASSERT_EQ(recorder.repairs_applied(), 1u);
  EXPECT_EQ(recorder.repair_log().front().action, RepairAction::kSynthesizeInput);
}

TEST_F(RepairFixture, SafeReturnManufacturesErrorForInvalidInput) {
  proc->machine().set_err(0);
  const auto outcome = proc->supervised_call("strlen", {P(0)});
  ASSERT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(outcome.ret.as_int(), -1);
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
  ASSERT_EQ(recorder.repairs_applied(), 1u);
  EXPECT_EQ(recorder.repair_log().front().action, RepairAction::kSafeReturn);
}

TEST_F(RepairFixture, ValidCallsPassThroughWithZeroRepairs) {
  const mem::Addr dest = proc->call("malloc", {I(64)}).as_ptr();
  const mem::Addr src = proc->alloc_cstring("well within bounds");
  EXPECT_EQ(proc->call("strcpy", {P(dest), P(src)}).as_ptr(), dest);
  EXPECT_EQ(read_cstring(dest), "well within bounds");
  EXPECT_EQ(proc->call("strlen", {P(dest)}).as_int(), 18);
  const mem::Addr copy = proc->call("malloc", {I(64)}).as_ptr();
  EXPECT_EQ(proc->call("memcpy", {P(copy), P(dest), I(19)}).as_ptr(), copy);
  EXPECT_EQ(read_cstring(copy), "well within bounds");
  proc->call("free", {P(dest)});
  proc->call("free", {P(copy)});
  EXPECT_EQ(recorder.repairs_applied(), 0u);
  EXPECT_TRUE(recorder.repair_log().empty());
}

// --- dossier round-trips ---------------------------------------------------

incident::Dossier capture_repair_dossier(core::Toolkit& toolkit,
                                         attacks::AttackResult* result_out = nullptr) {
  auto wrapper =
      toolkit.repair_wrapper("libsimc.so.1", toolkit.derive_robust_api("libsimc.so.1").value());
  incident::FlightRecorder recorder;
  recorder.set_process_name("netd");
  const auto result =
      attacks::run_heap_smash_attack(toolkit.catalog(), {wrapper.value()}, false, &recorder);
  if (result_out != nullptr) *result_out = result;
  EXPECT_FALSE(recorder.dossiers().empty());
  return recorder.dossiers().front();
}

core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

TEST(RepairDossier, XmlRoundTripKeepsRepairEvents) {
  const incident::Dossier dossier = capture_repair_dossier(toolkit());
  ASSERT_EQ(dossier.repairs.size(), 1u);
  EXPECT_EQ(dossier.detector, simlib::DetectionKind::kRepair);
  const std::string text = xml::serialize(dossier.to_xml());
  const auto parsed = xml::parse(text);
  ASSERT_TRUE(parsed.ok());
  const auto back = incident::from_xml(parsed.value());
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_TRUE(dossier == back.value());
  EXPECT_EQ(back.value().repairs.size(), 1u);
  EXPECT_EQ(back.value().repairs.front().symbol, "memcpy");
}

TEST(RepairDossier, BinaryRoundTripKeepsRepairEvents) {
  const incident::Dossier dossier = capture_repair_dossier(toolkit());
  const std::string blob = fleet::encode_dossier_binary(dossier);
  const auto back = fleet::decode_dossier_binary(blob);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_TRUE(dossier == back.value());
  ASSERT_EQ(back.value().repairs.size(), 1u);
  EXPECT_EQ(back.value().repairs.front().action, RepairAction::kTruncateWrite);
  EXPECT_EQ(back.value().repairs.front().requested, 96u);
  EXPECT_EQ(back.value().repairs.front().granted, 64u);
}

TEST(RepairDossier, DossierWithoutRepairsSerializesAsBefore) {
  // A security-wrapper dossier has no repair events: its XML must not grow a
  // <repairs> child, so pre-repair consumers decode it unchanged.
  auto wrapper = toolkit().security_wrapper("libsimc.so.1");
  incident::FlightRecorder recorder;
  recorder.set_process_name("netd");
  (void)attacks::run_heap_smash_attack(toolkit().catalog(), {wrapper.value()}, false, &recorder);
  ASSERT_FALSE(recorder.dossiers().empty());
  const incident::Dossier& dossier = recorder.dossiers().front();
  EXPECT_TRUE(dossier.repairs.empty());
  EXPECT_EQ(xml::serialize(dossier.to_xml()).find("<repairs>"), std::string::npos);
}

// --- end-to-end survival ---------------------------------------------------

TEST(RepairSurvival, HeapSmashCompletesWithCorrectOutputUnderRepair) {
  attacks::AttackResult result;
  const incident::Dossier dossier = capture_repair_dossier(toolkit(), &result);

  EXPECT_TRUE(result.survived) << result.outcome.to_string();
  EXPECT_FALSE(result.hijack_succeeded);
  EXPECT_FALSE(result.blocked_by_wrapper);
  EXPECT_NE(result.stdout_text.find("request handled"), std::string::npos);

  // Exactly one repair: the memcpy truncation that kept the fake chunk
  // header from ever being written.
  ASSERT_EQ(dossier.repairs.size(), 1u);
  const incident::RepairEvent& event = dossier.repairs.front();
  EXPECT_EQ(event.symbol, "memcpy");
  EXPECT_EQ(event.action, RepairAction::kTruncateWrite);
  EXPECT_EQ(event.requested, 96u);
  EXPECT_EQ(event.granted, 64u);
}

TEST(RepairSurvival, UnprotectedBaselineStillHijacked) {
  const auto plain = attacks::run_heap_smash_attack(toolkit().catalog(), {});
  EXPECT_TRUE(plain.hijack_succeeded);
  EXPECT_FALSE(plain.survived);
}

}  // namespace
}  // namespace healers::wrappers
