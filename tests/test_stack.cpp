// Unit tests for the simulated call stack: frame layout (return address
// above the locals), local allocation, corruption detection on pop, and
// frame lookup for the libsafe-style bounds checks.
#include <gtest/gtest.h>

#include "memmodel/stack.hpp"

namespace healers::mem {
namespace {

struct StackFixture : ::testing::Test {
  AddressSpace space;
  Stack stack{space, 4096};
};

TEST_F(StackFixture, PushStoresReturnAddressInMemory) {
  const Frame& frame = stack.push("f", 64, 0xabcd);
  EXPECT_EQ(space.load64(frame.ret_slot), 0xabcdu);
  EXPECT_EQ(frame.saved_ret, 0xabcdu);
  EXPECT_EQ(stack.depth(), 1u);
}

TEST_F(StackFixture, ReturnSlotSitsAboveLocals) {
  const Frame& frame = stack.push("f", 64, 1);
  const Addr buf = stack.alloc_local(32);
  EXPECT_LT(buf, frame.ret_slot);
  EXPECT_EQ(frame.ret_slot, frame.base + frame.size - 8);
  // Writing forward from the buffer reaches the return slot — the layout
  // stack smashing depends on.
  EXPECT_GT(frame.ret_slot, buf);
  EXPECT_LE(frame.ret_slot - buf, frame.size);
}

TEST_F(StackFixture, FramesGrowDownward) {
  const Frame f1 = stack.push("outer", 32, 1);
  const Frame f2 = stack.push("inner", 32, 2);
  EXPECT_LT(f2.base, f1.base);
}

TEST_F(StackFixture, LocalsAllocateLowestFirst) {
  stack.push("f", 64, 1);
  const Addr a = stack.alloc_local(8);
  const Addr b = stack.alloc_local(8);
  EXPECT_GT(b, a);
}

TEST_F(StackFixture, LocalsExhaustionThrows) {
  stack.push("f", 32, 1);
  (void)stack.alloc_local(32);
  EXPECT_THROW((void)stack.alloc_local(32), std::logic_error);
}

TEST_F(StackFixture, CleanPopReturnsUncorrupted) {
  stack.push("f", 16, 0x1111);
  const auto popped = stack.pop();
  EXPECT_FALSE(popped.corrupted());
  EXPECT_EQ(popped.stored_ret, 0x1111u);
  EXPECT_EQ(stack.depth(), 0u);
}

TEST_F(StackFixture, OverwrittenReturnAddressDetectedOnPop) {
  const Frame& frame = stack.push("f", 16, 0x1111);
  space.store64(frame.ret_slot, 0x4242424242424242ULL);
  const auto popped = stack.pop();
  EXPECT_TRUE(popped.corrupted());
  EXPECT_EQ(popped.stored_ret, 0x4242424242424242ULL);
  EXPECT_EQ(popped.saved_ret, 0x1111u);
}

TEST_F(StackFixture, PopEmptyThrows) {
  EXPECT_THROW(stack.pop(), std::logic_error);
}

TEST_F(StackFixture, PopRestoresStackPointerForReuse) {
  const Frame f1 = stack.push("a", 64, 1);
  stack.pop();
  const Frame f2 = stack.push("b", 64, 2);
  EXPECT_EQ(f1.base, f2.base);
}

TEST_F(StackFixture, StackOverflowFaults) {
  for (int i = 0; i < 50; ++i) {
    try {
      stack.push("deep", 256, 1);
    } catch (const AccessFault& fault) {
      EXPECT_EQ(fault.kind(), FaultKind::kSegv);
      EXPECT_NE(std::string(fault.what()).find("stack overflow"), std::string::npos);
      return;
    }
  }
  FAIL() << "expected stack overflow";
}

TEST_F(StackFixture, FrameOfFindsInnermostContainingFrame) {
  stack.push("outer", 64, 1);
  const Addr outer_local = stack.alloc_local(16);
  stack.push("inner", 64, 2);
  const Addr inner_local = stack.alloc_local(16);
  ASSERT_NE(stack.frame_of(outer_local), nullptr);
  EXPECT_EQ(stack.frame_of(outer_local)->function, "outer");
  EXPECT_EQ(stack.frame_of(inner_local)->function, "inner");
  EXPECT_EQ(stack.frame_of(0x1), nullptr);
}

TEST_F(StackFixture, FramesAccessorExposesAllLiveFrames) {
  stack.push("a", 16, 1);
  stack.push("b", 16, 2);
  ASSERT_EQ(stack.frames().size(), 2u);
  EXPECT_EQ(stack.frames()[0].function, "a");
  EXPECT_EQ(stack.frames()[1].function, "b");
}

TEST_F(StackFixture, CurrentReflectsTopFrame) {
  EXPECT_EQ(stack.current(), nullptr);
  stack.push("f", 16, 1);
  ASSERT_NE(stack.current(), nullptr);
  EXPECT_EQ(stack.current()->function, "f");
}

}  // namespace
}  // namespace healers::mem
