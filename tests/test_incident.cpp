// Tests for the incident flight recorder (ISSUE 4 tentpole): ring-buffer
// wraparound, dossier emission for every detector class (argcheck, heap
// canary, stack canary, access fault, error injection), byte-identical
// XML/binary serialization across runs, zero simulated overhead (golden
// ticks unchanged with a recorder attached), and deterministic fleet
// ingestion of dossier documents across shard/worker counts.
#include <gtest/gtest.h>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "fleet/collector.hpp"
#include "fleet/wire.hpp"
#include "incident/recorder.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"
#include "xml/xml.hpp"

namespace healers::incident {
namespace {

using simlib::DetectionKind;
using testbed::I;
using testbed::P;

// One toolkit per suite: the catalog and wrappers are immutable and the
// robustness campaign (variants=1) is the expensive part.
core::Toolkit& toolkit() {
  static core::Toolkit instance;
  return instance;
}

// Runs the §3.4 heap attack under the security wrapper with a recorder
// attached and returns the captured dossier.
Dossier capture_heap_dossier() {
  FlightRecorder recorder;
  recorder.set_process_name("netd");
  const auto result = attacks::run_heap_smash_attack(
      toolkit().catalog(), {toolkit().security_wrapper("libsimc.so.1").value()}, false,
      &recorder);
  EXPECT_TRUE(result.blocked_by_wrapper);
  EXPECT_FALSE(recorder.dossiers().empty());
  return recorder.dossiers().front();
}

// --- ring buffer -----------------------------------------------------------

TEST(FlightRecorderRing, WraparoundKeepsLastNOldestFirst) {
  auto proc = testbed::make_process();
  FlightRecorder recorder(4);
  proc->set_observer(&recorder);

  const mem::Addr text = proc->alloc_cstring("hello");
  for (int i = 0; i < 10; ++i) proc->call("strlen", {P(text)});

  EXPECT_EQ(recorder.capacity(), 4u);
  // alloc_cstring writes the heap directly (no wrapped call), so the ring
  // saw exactly the ten strlen dispatches.
  EXPECT_EQ(recorder.calls_seen(), 10u);
  const std::vector<TraceEntry> trace = recorder.trace();
  ASSERT_EQ(trace.size(), 4u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].seq, 6 + i);  // seqs 6..9, oldest first
    EXPECT_EQ(trace[i].symbol, "strlen");
    EXPECT_EQ(trace[i].argc, 1u);
  }
  EXPECT_EQ(recorder.last_symbol(), "strlen");
}

TEST(FlightRecorderRing, IdenticalCallSequencesDigestEqually) {
  auto run_once = [](FlightRecorder& recorder) {
    auto proc = testbed::make_process();
    proc->set_observer(&recorder);
    proc->call("malloc", {I(32)});
    proc->call("strlen", {P(proc->alloc_cstring("abc"))});
  };
  FlightRecorder a;
  FlightRecorder b;
  run_once(a);
  run_once(b);
  const auto ta = a.trace();
  const auto tb = b.trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_TRUE(ta[i] == tb[i]) << i;
}

TEST(FlightRecorderRing, ClearForgetsCallsButNotIdentity) {
  FlightRecorder recorder(4);
  recorder.set_process_name("netd");
  auto proc = testbed::make_process();
  proc->set_observer(&recorder);
  proc->call("malloc", {I(8)});
  recorder.clear();
  EXPECT_EQ(recorder.calls_seen(), 0u);
  EXPECT_TRUE(recorder.trace().empty());
  EXPECT_EQ(recorder.last_symbol(), "?");
  EXPECT_EQ(recorder.process_name(), "netd");
  EXPECT_EQ(recorder.capacity(), 4u);
}

// --- zero overhead ---------------------------------------------------------

TEST(FlightRecorderOverhead, GoldenTicksUnchangedWithRecorderAttached) {
  auto workload = [](linker::Process& proc) {
    const mem::Addr text = proc.alloc_cstring("the quick brown fox");
    proc.call("strlen", {P(text)});
    const mem::Addr copy = proc.call("malloc", {I(64)}).as_ptr();
    proc.call("strcpy", {P(copy), P(text)});
    proc.call("free", {P(copy)});
  };

  auto plain = testbed::make_process();
  workload(*plain);

  auto observed = testbed::make_process();
  FlightRecorder recorder;
  observed->set_observer(&recorder);
  workload(*observed);

  EXPECT_GT(recorder.calls_seen(), 0u);
  EXPECT_EQ(plain->machine().steps(), observed->machine().steps());
  EXPECT_EQ(plain->machine().rdtsc(), observed->machine().rdtsc());
}

// --- dossier emission, one test per detector class -------------------------

TEST(DossierEmission, HeapCanarySmash) {
  const Dossier dossier = capture_heap_dossier();
  EXPECT_EQ(dossier.detector, DetectionKind::kHeapSmash);
  EXPECT_EQ(dossier.process, "netd");
  EXPECT_EQ(dossier.symbol, "memcpy");
  EXPECT_NE(dossier.detail.find("canary"), std::string::npos);
  EXPECT_NE(dossier.fault_addr, 0u);
  EXPECT_FALSE(dossier.trace.empty());
  EXPECT_EQ(dossier.trace.back().symbol, "memcpy");  // offending call last
  // The corrupted allocation is in the neighborhood and marked suspect.
  bool suspect_seen = false;
  for (const ChunkState& chunk : dossier.heap) suspect_seen |= chunk.suspect;
  EXPECT_TRUE(suspect_seen);
}

TEST(DossierEmission, StackCanarySmash) {
  FlightRecorder recorder;
  recorder.set_process_name("reqhandler");
  const auto result = attacks::run_stack_smash_attack(
      toolkit().catalog(), {toolkit().security_wrapper("libsimc.so.1").value()}, &recorder);
  EXPECT_TRUE(result.blocked_by_wrapper);
  ASSERT_FALSE(recorder.dossiers().empty());
  const Dossier& dossier = recorder.dossiers().front();
  EXPECT_EQ(dossier.detector, DetectionKind::kStackSmash);
  EXPECT_EQ(dossier.symbol, "strcpy");
  EXPECT_NE(dossier.fault_addr, 0u);
  // The implicated address lives in the stack region.
  bool stack_suspect = false;
  for (const RegionState& region : dossier.regions) {
    if (region.suspect) stack_suspect = region.kind == "stack";
  }
  EXPECT_TRUE(stack_suspect);
}

TEST(DossierEmission, AccessFaultNamesLastDispatchedCall) {
  auto proc = testbed::make_process();
  FlightRecorder recorder;
  recorder.set_process_name("test");
  proc->set_observer(&recorder);

  const auto outcome =
      proc->supervised_call("strlen", {P(mem::AddressSpace::wild_pointer())});
  EXPECT_EQ(outcome.kind, linker::CallOutcome::Kind::kCrash);
  ASSERT_EQ(recorder.dossiers().size(), 1u);
  const Dossier& dossier = recorder.dossiers().front();
  EXPECT_EQ(dossier.detector, DetectionKind::kAccessFault);
  EXPECT_EQ(dossier.symbol, "strlen");  // attributed via the ring, not the fault
  EXPECT_EQ(dossier.fault_addr, mem::AddressSpace::wild_pointer());
  EXPECT_NE(dossier.detail.find("SIGSEGV"), std::string::npos);
}

TEST(DossierEmission, ArgCheckRejection) {
  injector::InjectorConfig config;
  config.variants = 1;
  const auto campaign = toolkit().derive_robust_api("libsimc.so.1", config).value();
  auto proc = testbed::make_process();
  proc->preload(toolkit().robustness_wrapper("libsimc.so.1", campaign).value());
  FlightRecorder recorder;
  proc->set_observer(&recorder);

  const auto outcome = proc->supervised_call("strlen", {P(0)});
  EXPECT_FALSE(outcome.robustness_failure());  // contained, not aborted
  ASSERT_EQ(recorder.dossiers().size(), 1u);
  const Dossier& dossier = recorder.dossiers().front();
  EXPECT_EQ(dossier.detector, DetectionKind::kArgCheck);
  EXPECT_EQ(dossier.symbol, "strlen");
  EXPECT_NE(dossier.detail.find("rejected"), std::string::npos);
  ASSERT_EQ(dossier.args.size(), 1u);  // the offending call's decoded arguments
}

TEST(DossierEmission, ErrorInjectionTrip) {
  auto proc = testbed::make_process();
  proc->preload(wrappers::make_testing_wrapper(testbed::libsimc(), 1.0, 1).value());
  FlightRecorder recorder;
  proc->set_observer(&recorder);

  EXPECT_EQ(proc->call("malloc", {I(16)}).as_ptr(), 0u);  // injected ENOMEM
  ASSERT_EQ(recorder.dossiers().size(), 1u);
  const Dossier& dossier = recorder.dossiers().front();
  EXPECT_EQ(dossier.detector, DetectionKind::kErrorInject);
  EXPECT_EQ(dossier.symbol, "malloc");
  EXPECT_NE(dossier.detail.find("ENOMEM"), std::string::npos);
}

TEST(DossierEmission, StorageCapCountsAllDetections) {
  auto proc = testbed::make_process();
  proc->preload(wrappers::make_testing_wrapper(testbed::libsimc(), 1.0, 1).value());
  FlightRecorder recorder;
  proc->set_observer(&recorder);

  for (int i = 0; i < 20; ++i) proc->call("malloc", {I(16)});
  EXPECT_EQ(recorder.detections(), 20u);
  EXPECT_EQ(recorder.dossiers().size(), FlightRecorder::kMaxDossiers);
}

// --- serialization determinism ---------------------------------------------

TEST(DossierSerialization, ByteIdenticalAcrossRuns) {
  const Dossier first = capture_heap_dossier();
  const Dossier second = capture_heap_dossier();
  EXPECT_TRUE(first == second);
  EXPECT_EQ(xml::serialize(first.to_xml()), xml::serialize(second.to_xml()));
  EXPECT_EQ(fleet::encode_dossier_binary(first), fleet::encode_dossier_binary(second));
}

TEST(DossierSerialization, XmlRoundTrip) {
  const Dossier dossier = capture_heap_dossier();
  const std::string doc = xml::serialize(dossier.to_xml());
  const auto parsed = xml::parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const auto round = from_xml(parsed.value());
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_TRUE(round.value() == dossier);
}

TEST(DossierSerialization, BinaryRoundTrip) {
  const Dossier dossier = capture_heap_dossier();
  const std::string wire = fleet::encode_dossier_binary(dossier);
  ASSERT_TRUE(fleet::is_dossier_binary(wire));
  const auto round = fleet::decode_dossier_binary(wire);
  ASSERT_TRUE(round.ok()) << round.error().message;
  EXPECT_TRUE(round.value() == dossier);
}

TEST(DossierSerialization, TruncatedBinaryIsRejected) {
  const std::string wire = fleet::encode_dossier_binary(capture_heap_dossier());
  EXPECT_FALSE(fleet::decode_dossier_binary(wire.substr(0, wire.size() / 2)).ok());
  EXPECT_FALSE(fleet::decode_dossier_binary(wire + "x").ok());
}

// --- fleet ingestion -------------------------------------------------------

TEST(DossierFleet, IngestAggregatesBothEncodings) {
  const Dossier dossier = capture_heap_dossier();
  fleet::FleetCollector collector;
  collector.submit(fleet::encode_dossier_binary(dossier));
  collector.submit(xml::serialize(dossier.to_xml()));
  collector.flush();
  EXPECT_EQ(collector.aggregated(), 2u);
  EXPECT_EQ(collector.malformed(), 0u) << collector.first_error();
  const fleet::FleetSnapshot snap = collector.snapshot();
  ASSERT_EQ(snap.dossiers.count("heap-smash memcpy"), 1u);
  EXPECT_EQ(snap.dossiers.at("heap-smash memcpy"), 2u);
  EXPECT_NE(snap.render().find("incident dossiers"), std::string::npos);
}

TEST(DossierFleet, SummaryByteIdenticalAcrossShardAndWorkerCounts) {
  const Dossier dossier = capture_heap_dossier();
  const std::string wire = fleet::encode_dossier_binary(dossier);
  const std::string doc = xml::serialize(dossier.to_xml());

  auto run_config = [&](unsigned shards, unsigned workers) {
    fleet::CollectorConfig config;
    config.shards = shards;
    config.workers = workers;
    fleet::FleetCollector collector(config);
    for (int i = 0; i < 3; ++i) collector.submit(wire);
    for (int i = 0; i < 2; ++i) collector.submit(doc);
    collector.flush();
    EXPECT_EQ(collector.aggregated(), 5u) << collector.first_error();
    return collector.render_summary();
  };

  const std::string baseline = run_config(1, 1);
  EXPECT_EQ(run_config(4, 1), baseline);
  EXPECT_EQ(run_config(4, 4), baseline);
  EXPECT_EQ(run_config(2, 3), baseline);
}

}  // namespace
}  // namespace healers::incident
