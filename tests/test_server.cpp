// Derivation-service tests (ISSUE 5): the campaign binary codec, the
// persistent spec cache, the request/response protocol, and the DeriveServer
// itself — single-flight dedup, admission control with shed accounting, and
// the FleetCollector determinism discipline (byte-identical responses and
// summaries for any worker count).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "fleet/wire.hpp"
#include "server/codec.hpp"
#include "server/derive_server.hpp"
#include "server/protocol.hpp"
#include "server/spec_cache.hpp"
#include "xml/xml.hpp"

namespace healers::server {
namespace {

injector::InjectorConfig quick_config() {
  injector::InjectorConfig config;
  config.seed = 21;
  config.variants = 1;
  return config;
}

// A derive request pinned to the same campaign quick_config() runs.
DeriveRequest quick_request(const std::string& soname, WireFormat format = WireFormat::kXml) {
  DeriveRequest request;
  request.soname = soname;
  request.seed = 21;
  request.variants = 1;
  request.format = format;
  return request;
}

struct ServerFixture : ::testing::Test {
  core::Toolkit toolkit;
};

// --- campaign binary codec -------------------------------------------------

TEST_F(ServerFixture, CampaignBinaryRoundTripMatchesXml) {
  const auto campaign = toolkit.derive_robust_api("libsimio.so.1", quick_config());
  ASSERT_TRUE(campaign.ok());

  const std::string binary = encode_campaign_binary(campaign.value());
  ASSERT_TRUE(is_campaign_binary(binary));
  const auto decoded = decode_campaign_binary(binary);
  ASSERT_TRUE(decoded.ok());
  // The XML image is the campaign's canonical fingerprint: equal XML means
  // every spec, check, range, and verdict survived the binary round trip.
  EXPECT_EQ(xml::serialize(decoded.value().to_xml()), xml::serialize(campaign.value().to_xml()));

  // Encoding is deterministic, and much denser than the XML document.
  EXPECT_EQ(encode_campaign_binary(decoded.value()), binary);
  EXPECT_LT(binary.size(), xml::serialize(campaign.value().to_xml()).size());
}

TEST_F(ServerFixture, CampaignSniffingDecoderTakesBothFormats) {
  const auto campaign = toolkit.derive_robust_api("libsimm.so.1", quick_config());
  ASSERT_TRUE(campaign.ok());
  const auto from_binary = decode_campaign(encode_campaign_binary(campaign.value()));
  const auto from_xml = decode_campaign(xml::serialize(campaign.value().to_xml()));
  ASSERT_TRUE(from_binary.ok());
  ASSERT_TRUE(from_xml.ok());
  EXPECT_EQ(xml::serialize(from_binary.value().to_xml()),
            xml::serialize(from_xml.value().to_xml()));
}

TEST_F(ServerFixture, CampaignBinaryDecoderIsStrict) {
  const auto campaign = toolkit.derive_robust_api("libsimm.so.1", quick_config());
  ASSERT_TRUE(campaign.ok());
  const std::string binary = encode_campaign_binary(campaign.value());

  EXPECT_FALSE(decode_campaign_binary("").ok());
  EXPECT_FALSE(decode_campaign_binary("HDB1 not a campaign").ok());
  // Every proper prefix is truncated, never a partial campaign.
  for (std::size_t len = 0; len < binary.size(); len += 17) {
    EXPECT_FALSE(decode_campaign_binary(std::string_view(binary).substr(0, len)).ok());
  }
  EXPECT_FALSE(decode_campaign_binary(binary + "x").ok()) << "trailing bytes must be rejected";
}

// --- persistent spec cache ---------------------------------------------------

TEST_F(ServerFixture, CacheEntryRoundTrip) {
  ASSERT_TRUE(toolkit.derive_robust_api("libsimio.so.1", quick_config()).ok());
  const auto exported = toolkit.export_campaigns();
  ASSERT_EQ(exported.size(), 1u);

  const std::string payload = encode_cache_entry(exported[0]);
  const auto decoded = decode_cache_entry(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().soname, "libsimio.so.1");
  EXPECT_EQ(decoded.value().fingerprint, exported[0].fingerprint);
  EXPECT_EQ(decoded.value().seed, 21u);
  EXPECT_EQ(decoded.value().variants, 1);
  EXPECT_EQ(xml::serialize(decoded.value().result.to_xml()),
            xml::serialize(exported[0].result.to_xml()));

  EXPECT_FALSE(decode_cache_entry(payload.substr(0, payload.size() / 2)).ok());
  EXPECT_FALSE(decode_cache_entry("HFB1 something else").ok());
}

TEST_F(ServerFixture, CacheFileWarmsAFreshToolkitToZeroProbes) {
  ASSERT_TRUE(toolkit.derive_robust_api("libsimio.so.1", quick_config()).ok());
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", quick_config()).ok());
  const std::string path = ::testing::TempDir() + "healers_spec_cache_test.hsc";
  ASSERT_TRUE(save_cache_file(toolkit, path).ok());

  core::Toolkit fresh;
  const auto imported = load_cache_file(fresh, path);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 2u);
  ASSERT_TRUE(fresh.derive_robust_api("libsimio.so.1", quick_config()).ok());
  ASSERT_TRUE(fresh.derive_robust_api("libsimm.so.1", quick_config()).ok());
  EXPECT_EQ(fresh.probes_executed(), 0u);
  std::remove(path.c_str());
}

TEST_F(ServerFixture, CacheFileImageIsDeterministicAndStrict) {
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", quick_config()).ok());
  const std::string image = encode_cache_file(toolkit.export_campaigns());
  EXPECT_EQ(encode_cache_file(toolkit.export_campaigns()), image);
  const auto decoded = decode_cache_file(image);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 1u);

  EXPECT_FALSE(decode_cache_file("not a stream").ok());
  EXPECT_FALSE(decode_cache_file(image.substr(0, image.size() - 3)).ok());
  EXPECT_FALSE(load_cache_file(toolkit, "/nonexistent/healers.hsc").ok());
}

// Forward compatibility: a payload whose magic this build does not know (an
// entry kind a NEWER writer added) is skipped and counted, never fatal.
TEST_F(ServerFixture, UnknownCacheEntryMagicIsSkippedNotFatal) {
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", quick_config()).ok());
  const std::string path = ::testing::TempDir() + "healers_forward_compat.hsc";
  ASSERT_TRUE(save_cache_file(toolkit, path).ok());

  // Splice two alien entries into the stream, as a future writer would.
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto documents = fleet::unframe_stream(buffer.str());
  ASSERT_TRUE(documents.ok());
  auto spliced = documents.value();
  spliced.insert(spliced.begin(), "HSQQ1 an entry kind from the future");
  spliced.push_back("HSZZ7\x01\x02\x03");
  {
    std::ofstream out(path, std::ios::binary);
    out << fleet::frame_stream(spliced);
  }

  core::Toolkit fresh;
  std::size_t skipped = 0;
  const auto imported = load_cache_file(fresh, path, &skipped);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value(), 1u);  // the campaign still loads
  EXPECT_EQ(skipped, 2u);
  ASSERT_TRUE(fresh.derive_robust_api("libsimm.so.1", quick_config()).ok());
  EXPECT_EQ(fresh.probes_executed(), 0u);
  std::remove(path.c_str());
}

// HSSP1 surface-scope entries persist through the same file and admit under
// the same fingerprint discipline as campaigns.
TEST_F(ServerFixture, SurfaceScopesPersistThroughTheCacheFile) {
  core::SurfaceScope scope;
  scope.executable = "netd";
  scope.soname = "libsimc.so.1";
  scope.symbols = {"strcpy", "strlen"};
  ASSERT_TRUE(toolkit.install_surface_scope(scope));

  const std::string payload = encode_surface_entry(toolkit.export_surface_scopes().front());
  const auto round = decode_surface_entry(payload);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), toolkit.export_surface_scopes().front());
  EXPECT_FALSE(decode_surface_entry(payload.substr(0, payload.size() - 1)).ok());
  EXPECT_FALSE(decode_surface_entry(payload + "x").ok());

  const std::string path = ::testing::TempDir() + "healers_surface_scopes.hsc";
  ASSERT_TRUE(save_cache_file(toolkit, path).ok());
  core::Toolkit fresh;
  ASSERT_TRUE(load_cache_file(fresh, path).ok());
  const std::vector<std::string> expected = {"strcpy", "strlen"};
  EXPECT_EQ(fresh.surface_scope_for("libsimc.so.1"), expected);
  std::remove(path.c_str());
}

// --- request/response protocol ----------------------------------------------

TEST(ServerProtocol, RequestRoundTripsInBothFormats) {
  DeriveRequest request;
  request.endpoint = Endpoint::kBundle;
  request.soname = "libsimc.so.1";
  request.seed = 7;
  request.variants = 3;
  request.probe_step_budget = 12345;
  request.testbed_heap = 4096;
  request.testbed_stack = 2048;
  request.bundle = BundleKind::kSecurity;

  for (const WireFormat format : {WireFormat::kXml, WireFormat::kBinary}) {
    request.format = format;
    const auto decoded = DeriveRequest::decode(request.encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().canonical_key(), request.canonical_key());
    EXPECT_EQ(decoded.value().format, format);
    EXPECT_EQ(decoded.value().soname, request.soname);
    EXPECT_EQ(decoded.value().bundle, request.bundle);
  }
}

TEST(ServerProtocol, CanonicalKeySeparatesEveryResultAffectingField) {
  const DeriveRequest base = [] {
    DeriveRequest r;
    r.soname = "libsimm.so.1";
    return r;
  }();
  auto key = [](DeriveRequest r) { return r.canonical_key(); };
  std::vector<DeriveRequest> variants(7, base);
  variants[0].endpoint = Endpoint::kBundle;
  variants[1].soname = "libsimio.so.1";
  variants[2].seed = 43;
  variants[3].variants = 9;
  variants[4].probe_step_budget = 1;
  variants[5].testbed_heap = 1;
  variants[6].format = WireFormat::kBinary;  // format changes the bytes served
  std::map<std::string, int> keys;
  keys[key(base)] = 1;
  for (const auto& v : variants) ++keys[key(v)];
  EXPECT_EQ(keys.size(), 8u) << "every field must feed the single-flight key";
}

TEST(ServerProtocol, ResponseRoundTripsAndDecoderIsStrict) {
  DeriveResponse response;
  response.status = ResponseStatus::kOk;
  response.probes = 777;
  response.payload = "generated C source\nline two\n";
  for (const WireFormat format : {WireFormat::kXml, WireFormat::kBinary}) {
    const auto decoded = DeriveResponse::decode(response.encode(format));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().status, ResponseStatus::kOk);
    EXPECT_EQ(decoded.value().probes, 777u);
    if (format == WireFormat::kBinary) EXPECT_EQ(decoded.value().payload, response.payload);
  }

  EXPECT_FALSE(DeriveRequest::decode("HRQ1").ok());
  EXPECT_FALSE(DeriveRequest::decode("<wrong-element/>").ok());
  EXPECT_FALSE(DeriveRequest::decode("not xml at all").ok());
  EXPECT_FALSE(DeriveResponse::decode(std::string(kResponseMagic)).ok());
  const std::string binary = response.encode(WireFormat::kBinary);
  EXPECT_FALSE(DeriveResponse::decode(binary.substr(0, binary.size() - 2)).ok());
}

// --- the server --------------------------------------------------------------

TEST_F(ServerFixture, ServesADeriveRequestEndToEnd) {
  DeriveServer server(toolkit);
  const auto ticket = server.submit(quick_request("libsimio.so.1", WireFormat::kBinary).encode());
  EXPECT_EQ(server.response(ticket), nullptr) << "no response before drain";
  server.drain();

  const auto bytes = server.response(ticket);
  ASSERT_NE(bytes, nullptr);
  const auto response = DeriveResponse::decode(*bytes);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, ResponseStatus::kOk);

  // The served campaign is the same one a direct toolkit call derives.
  const auto direct = toolkit.derive_robust_api("libsimio.so.1", quick_config());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.value().probes, direct.value().total_probes());
  const auto campaign = decode_campaign(response.value().payload);
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(xml::serialize(campaign.value().to_xml()), xml::serialize(direct.value().to_xml()));
}

TEST_F(ServerFixture, ServesWrapperBundles) {
  DeriveServer server(toolkit);
  std::map<BundleKind, DeriveServer::Ticket> tickets;
  for (const BundleKind kind :
       {BundleKind::kRobustness, BundleKind::kSecurity, BundleKind::kProfiling}) {
    auto request = quick_request("libsimm.so.1");
    request.endpoint = Endpoint::kBundle;
    request.bundle = kind;
    tickets[kind] = server.submit(request.encode());
  }
  server.drain();
  for (const auto& [kind, ticket] : tickets) {
    const auto bytes = server.response(ticket);
    ASSERT_NE(bytes, nullptr);
    const auto response = DeriveResponse::decode(*bytes);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, ResponseStatus::kOk) << response.value().error;
    EXPECT_NE(response.value().payload.find("double sin(double a1)"), std::string::npos)
        << "bundle source must carry the wrapped prototypes";
  }
  // Only the robustness bundle needs a campaign; the others run zero probes.
  EXPECT_GT(toolkit.probes_executed(), 0u);
}

TEST_F(ServerFixture, SingleFlightMergesConcurrentIdenticalRequests) {
  // Baseline: one campaign's probes, measured on an independent toolkit.
  core::Toolkit baseline;
  ASSERT_TRUE(baseline.derive_robust_api("libsimio.so.1", quick_config()).ok());
  const std::uint64_t one_campaign = baseline.probes_executed();
  ASSERT_GT(one_campaign, 0u);

  ServerConfig config;
  config.workers = 4;
  DeriveServer server(toolkit, config);
  constexpr int kClients = 9;
  std::vector<DeriveServer::Ticket> tickets;
  for (int i = 0; i < kClients; ++i) {
    tickets.push_back(server.submit(quick_request("libsimio.so.1").encode()));
  }
  server.drain();

  // Exactly ONE campaign ran for the nine queued requests...
  EXPECT_EQ(toolkit.probes_executed(), one_campaign);
  const auto stats = server.stats();
  EXPECT_EQ(stats.deduped, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(stats.answered_ok, static_cast<std::uint64_t>(kClients));
  // ...and every ticket shares the same immutable response bytes.
  const auto first = server.response(tickets.front());
  ASSERT_NE(first, nullptr);
  for (const auto ticket : tickets) EXPECT_EQ(server.response(ticket), first);
}

TEST_F(ServerFixture, WarmDrainServesFromResponseCacheWithZeroProbes) {
  DeriveServer server(toolkit);
  const auto cold = server.submit(quick_request("libsimio.so.1").encode());
  server.drain();
  const std::uint64_t after_cold = toolkit.probes_executed();

  const auto warm = server.submit(quick_request("libsimio.so.1").encode());
  server.drain();
  EXPECT_EQ(toolkit.probes_executed(), after_cold) << "warm request must execute zero probes";
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(*server.response(warm), *server.response(cold));
}

TEST_F(ServerFixture, MalformedRequestsAnswerWithErrorsNotSilence) {
  DeriveServer server(toolkit);
  const auto garbage = server.submit("neither xml nor binary");
  const auto unknown = server.submit(quick_request("libnope.so.9").encode());
  server.drain();

  for (const auto ticket : {garbage, unknown}) {
    const auto bytes = server.response(ticket);
    ASSERT_NE(bytes, nullptr);
    const auto response = DeriveResponse::decode(*bytes);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, ResponseStatus::kError);
    EXPECT_FALSE(response.value().error.empty());
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.answered_error, 2u);
  EXPECT_EQ(stats.submitted, stats.answered + stats.shed + stats.pending);
}

TEST_F(ServerFixture, AdmissionControlShedsAndAccountsEveryRequest) {
  for (const AdmissionPolicy policy : {AdmissionPolicy::kShedNewest, AdmissionPolicy::kShedOldest}) {
    ServerConfig config;
    config.shards = 1;
    config.queue_capacity = 2;
    config.policy = policy;
    DeriveServer server(toolkit, config);

    std::vector<DeriveServer::Ticket> tickets;
    for (int i = 0; i < 5; ++i) {
      tickets.push_back(server.submit(quick_request("libsimm.so.1").encode()));
    }
    EXPECT_EQ(server.shed(), 3u);
    EXPECT_EQ(server.pending(), 2u);

    // Shed tickets are answered immediately with a decodable kShed response.
    std::size_t shed_seen = 0;
    for (const auto ticket : tickets) {
      const auto bytes = server.response(ticket);
      if (bytes == nullptr) continue;
      const auto response = DeriveResponse::decode(*bytes);
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(response.value().status, ResponseStatus::kShed);
      ++shed_seen;
    }
    EXPECT_EQ(shed_seen, 3u);
    // kShedNewest keeps the two oldest; kShedOldest keeps the two newest.
    const auto survivor = policy == AdmissionPolicy::kShedNewest ? tickets[0] : tickets[4];
    EXPECT_EQ(server.response(survivor), nullptr) << "survivors wait for the drain";

    server.drain();
    const auto stats = server.stats();
    EXPECT_EQ(stats.pending, 0u);
    EXPECT_EQ(stats.submitted, stats.answered + stats.shed) << "no silent loss";
    EXPECT_NE(server.response(survivor), nullptr);
  }
}

// Burst sheds at fleet scale (ISSUE 7): every shed ticket must hold a real
// kShed response — counted sheds and undelivered responses may never drift
// apart — and since all shed envelopes are byte-identical, they share ONE
// immutable blob (a million-victim burst allocates no per-victim response).
TEST_F(ServerFixture, BurstShedsShareOneResponseBlob) {
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kShedNewest, AdmissionPolicy::kShedOldest}) {
    ServerConfig config;
    config.shards = 1;
    config.queue_capacity = 1;
    config.policy = policy;
    DeriveServer server(toolkit, config);

    std::vector<DeriveServer::Ticket> tickets;
    for (int i = 0; i < 32; ++i) {
      tickets.push_back(server.submit(quick_request("libsimm.so.1").encode()));
    }
    EXPECT_EQ(server.shed(), 31u);
    server.drain();

    std::size_t shed_delivered = 0;
    const std::string* shed_blob = nullptr;
    for (const auto ticket : tickets) {
      const auto bytes = server.response(ticket);
      ASSERT_NE(bytes, nullptr) << "every ticket is answered";
      const auto response = DeriveResponse::decode(*bytes);
      ASSERT_TRUE(response.ok());
      if (response.value().status != ResponseStatus::kShed) continue;
      ++shed_delivered;
      if (shed_blob == nullptr) shed_blob = bytes.get();
      EXPECT_EQ(bytes.get(), shed_blob) << "shed responses share one blob";
    }
    EXPECT_EQ(shed_delivered, server.shed());
  }
}

TEST_F(ServerFixture, TakeResponseBoundsTheResponseTable) {
  DeriveServer server(toolkit, {});
  const auto ticket = server.submit(quick_request("libsimm.so.1").encode());
  server.drain();
  const auto taken = server.take_response(ticket);
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(DeriveResponse::decode(*taken).value().status, ResponseStatus::kOk);
  // Retired: neither accessor sees the ticket again.
  EXPECT_EQ(server.response(ticket), nullptr);
  EXPECT_EQ(server.take_response(ticket), nullptr);
}

// The tentpole invariant: an identical submission trace replayed at worker
// counts 1, 4, and 16 yields byte-identical response bytes for every ticket
// and a byte-identical rendered summary.
TEST_F(ServerFixture, TraceReplayIsByteIdenticalForAnyWorkerCount) {
  const auto run_trace = [this](unsigned workers, std::string* concatenated) {
    ServerConfig config;
    config.workers = workers;
    config.shards = 3;
    DeriveServer server(toolkit, config);
    std::vector<DeriveServer::Ticket> tickets;
    const auto submit = [&](const std::string& bytes) { tickets.push_back(server.submit(bytes)); };

    // A messy, realistic trace: duplicates, both formats, bundles, a
    // malformed blob, an unknown library, and a second drain reusing keys.
    submit(quick_request("libsimio.so.1").encode());
    submit(quick_request("libsimm.so.1", WireFormat::kBinary).encode());
    submit(quick_request("libsimio.so.1").encode());  // dup -> single flight
    submit("HRQ1 truncated");                          // malformed
    auto bundle = quick_request("libsimm.so.1");
    bundle.endpoint = Endpoint::kBundle;
    bundle.bundle = BundleKind::kProfiling;
    submit(bundle.encode());
    submit(quick_request("libnope.so.9").encode());    // unknown library
    server.drain();
    submit(quick_request("libsimio.so.1").encode());   // response-cache hit
    submit(quick_request("libsimm.so.1", WireFormat::kBinary).encode());
    server.drain();

    concatenated->clear();
    for (const auto ticket : tickets) {
      const auto bytes = server.response(ticket);
      EXPECT_NE(bytes, nullptr);
      if (bytes != nullptr) *concatenated += *bytes;
    }
    return server.render_summary();
  };

  std::string golden_bytes;
  const std::string golden_summary = run_trace(1, &golden_bytes);
  EXPECT_NE(golden_summary.find("single-flight: 1 deduped, 2 response-cache hits"),
            std::string::npos)
      << golden_summary;
  for (const unsigned workers : {4u, 16u}) {
    std::string bytes;
    const std::string summary = run_trace(workers, &bytes);
    EXPECT_EQ(bytes, golden_bytes) << "worker count " << workers << " changed response bytes";
    EXPECT_EQ(summary, golden_summary) << "worker count " << workers << " changed the summary";
  }
}

// A restarted server warmed from a cache file answers with zero probes and
// the same bytes the original server served.
TEST_F(ServerFixture, RestartedServerWithCacheFileServesWithZeroProbes) {
  const std::string request_bytes = quick_request("libsimio.so.1", WireFormat::kBinary).encode();
  const std::string path = ::testing::TempDir() + "healers_server_restart.hsc";

  DeriveServer first_server(toolkit);
  const auto first_ticket = first_server.submit(request_bytes);
  first_server.drain();
  ASSERT_GT(toolkit.probes_executed(), 0u);
  ASSERT_TRUE(save_cache_file(toolkit, path).ok());
  const std::string first_bytes = *first_server.response(first_ticket);

  core::Toolkit restarted;
  ASSERT_TRUE(load_cache_file(restarted, path).ok());
  DeriveServer second_server(restarted);
  const auto second_ticket = second_server.submit(request_bytes);
  second_server.drain();
  EXPECT_EQ(restarted.probes_executed(), 0u);
  EXPECT_EQ(*second_server.response(second_ticket), first_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace healers::server
