// Integration tests through the Toolkit facade: the paper's demos end to
// end — library listing and declaration files (§3.1), application
// inspection (§3.2), campaign -> wrapper -> protected process (§2.2/2.3),
// wrapper source emission, and cross-module flows (profile XML through the
// collector from a wrapped executable).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "attacks/attacks.hpp"
#include "core/toolkit.hpp"
#include "profile/collector.hpp"
#include "profile/report.hpp"
#include "testbed.hpp"

namespace healers::core {
namespace {

using testbed::I;
using testbed::P;

struct ToolkitFixture : ::testing::Test {
  Toolkit toolkit;
  injector::InjectorConfig config;

  ToolkitFixture() {
    config.seed = 21;
    config.variants = 1;
  }
};

TEST_F(ToolkitFixture, ListsStockLibraries) {
  const auto sonames = toolkit.list_libraries();
  ASSERT_EQ(sonames.size(), 3u);
  EXPECT_EQ(sonames[0], "libsimc.so.1");
  EXPECT_NE(toolkit.library("libsimio.so.1"), nullptr);
}

TEST_F(ToolkitFixture, ListFunctionsMatchesLibrary) {
  const auto functions = toolkit.list_functions("libsimc.so.1");
  ASSERT_TRUE(functions.ok());
  EXPECT_EQ(functions.value().size(), testbed::libsimc().size());
  EXPECT_FALSE(toolkit.list_functions("libnope.so").ok());
}

TEST_F(ToolkitFixture, DeclarationXmlDescribesEveryPrototype) {
  const auto doc = toolkit.declaration_xml("libsimio.so.1");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().children_named("function").size(), testbed::libsimio().size());
  // Every prototype in the document matches the library's declaration.
  for (const xml::Node* fn : doc.value().children_named("function")) {
    const simlib::Symbol* symbol = testbed::libsimio().find(*fn->attr("name"));
    ASSERT_NE(symbol, nullptr);
    EXPECT_EQ(fn->child("prototype")->text(), symbol->declaration);
  }
  // And it parses back as XML.
  EXPECT_TRUE(xml::parse(xml::serialize(doc.value())).ok());
}

TEST_F(ToolkitFixture, InstallCustomLibraryAndWrapIt) {
  simlib::SharedLibrary custom("libcustom.so.9", "0.1");
  simlib::Symbol symbol;
  symbol.name = "triple";
  symbol.declaration = "int triple(int x);";
  symbol.manpage = "NAME\n  triple - x*3\nSYNOPSIS\n  int triple(int x);\nNOTES\n";
  symbol.fn = [](simlib::CallContext& ctx) {
    return simlib::SimValue::integer(ctx.arg_int(0) * 3);
  };
  custom.add(std::move(symbol));
  toolkit.install_library(std::move(custom));

  EXPECT_EQ(toolkit.list_libraries().size(), 4u);
  auto wrapper = toolkit.profiling_wrapper("libcustom.so.9");
  ASSERT_TRUE(wrapper.ok());

  linker::Executable exe;
  exe.name = "custom-user";
  exe.needed = {"libcustom.so.9"};
  exe.undefined = {"triple"};
  auto proc = toolkit.spawn(exe, {wrapper.value()});
  EXPECT_EQ(proc->call("triple", {I(7)}).as_int(), 21);
  EXPECT_EQ(wrapper.value()->stats()->total_calls(), 1u);
}

TEST_F(ToolkitFixture, FullPipelineCampaignWrapperProtection) {
  const auto campaign = toolkit.derive_robust_api("libsimc.so.1", config);
  ASSERT_TRUE(campaign.ok());
  EXPECT_GT(campaign.value().total_failures(), 0u);

  auto wrapper = toolkit.robustness_wrapper("libsimc.so.1", campaign.value());
  ASSERT_TRUE(wrapper.ok());

  linker::Executable buggy;
  buggy.name = "buggy";
  buggy.needed = {"libsimc.so.1"};
  buggy.undefined = {"strlen"};
  buggy.entry = [](linker::Process& p) {
    return static_cast<int>(p.call("strlen", {P(0)}).as_int());
  };

  const auto unprotected = toolkit.spawn(buggy)->run(buggy.entry);
  EXPECT_TRUE(unprotected.robustness_failure());

  const auto protected_run = toolkit.spawn(buggy, {wrapper.value()})->run(buggy.entry);
  EXPECT_FALSE(protected_run.robustness_failure());
  EXPECT_EQ(protected_run.exit_code, -1);  // contained error return
}

TEST_F(ToolkitFixture, MathLibraryNeedsNoContainment) {
  const auto campaign = toolkit.derive_robust_api("libsimm.so.1", config);
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign.value().total_failures(), 0u);
  EXPECT_EQ(campaign.value().functions_with_failures(), 0u);
}

TEST_F(ToolkitFixture, WrapperSourceForCustomFeatureSet) {
  gen::WrapperBuilder builder("custom-mix");
  builder.add(gen::prototype_gen()).add(gen::call_counter_gen()).add(gen::caller_gen());
  const auto source = toolkit.wrapper_source("libsimm.so.1", builder);
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source.value().find("custom-mix"), std::string::npos);
  EXPECT_NE(source.value().find("double sin(double a1)"), std::string::npos);
  EXPECT_NE(source.value().find("++call_counter_num_calls["), std::string::npos);
}

TEST_F(ToolkitFixture, WrappedExecutableProfileReachesCollector) {
  auto wrapper = toolkit.profiling_wrapper("libsimc.so.1").value();
  linker::Executable app;
  app.name = "pipeline-app";
  app.needed = {"libsimc.so.1"};
  app.undefined = {"strlen", "wctrans"};
  app.entry = [](linker::Process& p) {
    p.call("strlen", {P(p.rodata_cstring("abcdef"))});
    p.call("wctrans", {P(p.rodata_cstring("nope"))});  // EINVAL
    return 0;
  };
  toolkit.spawn(app, {wrapper})->run(app.entry);

  const auto report = profile::build_report(app.name, wrapper->name(), *wrapper->stats());
  profile::CollectorServer server;
  ASSERT_TRUE(server.ingest(xml::serialize(profile::to_xml(report))).ok());
  const auto agg = server.aggregate();
  EXPECT_EQ(agg.at("strlen").calls, 1u);
  EXPECT_EQ(agg.at("wctrans").errno_counts.at(simlib::kEINVAL), 1u);
}

TEST_F(ToolkitFixture, RobustnessAndSecurityStackForOneProcess) {
  const auto campaign = toolkit.derive_robust_api("libsimc.so.1", config).value();
  auto robustness = toolkit.robustness_wrapper("libsimc.so.1", campaign).value();
  auto security = toolkit.security_wrapper("libsimc.so.1").value();

  linker::Executable app;
  app.name = "belt-and-braces";
  app.needed = {"libsimc.so.1"};
  app.undefined = {"malloc", "free", "strlen", "strcpy"};
  app.entry = [](linker::Process& p) {
    // A contained API failure...
    p.call("strlen", {P(0)});
    // ...and a normal heap round trip under canaries.
    const mem::Addr q = p.call("malloc", {I(32)}).as_ptr();
    p.call("strcpy", {P(q), P(p.rodata_cstring("fits"))});
    p.call("free", {P(q)});
    return 0;
  };
  const auto outcome = toolkit.spawn(app, {robustness, security})->run(app.entry);
  EXPECT_EQ(outcome.kind, linker::CallOutcome::Kind::kExit);
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(robustness->stats()->total_contained(), 1u);
}

TEST_F(ToolkitFixture, SpawnKeepsLibrariesBorrowedFromToolkit) {
  linker::Executable app;
  app.name = "borrower";
  app.needed = {"libsimm.so.1"};
  app.undefined = {"sqrt"};
  auto proc = toolkit.spawn(app);
  EXPECT_DOUBLE_EQ(proc->call("sqrt", {testbed::F(16.0)}).as_double(), 4.0);
}

TEST_F(ToolkitFixture, CampaignFromStoredXmlDrivesWrapperGeneration) {
  // The offline story: run the campaign, ship the XML, regenerate the
  // wrapper later from the parsed document.
  const auto campaign = toolkit.derive_robust_api("libsimc.so.1", config).value();
  const std::string doc = xml::serialize(campaign.to_xml());
  const auto reloaded = injector::CampaignResult::from_xml(xml::parse(doc).value());
  ASSERT_TRUE(reloaded.ok());
  auto wrapper = toolkit.robustness_wrapper("libsimc.so.1", reloaded.value());
  ASSERT_TRUE(wrapper.ok());

  auto proc = testbed::make_process();
  proc->preload(wrapper.value());
  EXPECT_FALSE(proc->supervised_call("strlen", {P(0)}).robustness_failure());
}

TEST_F(ToolkitFixture, RepeatedDeriveHitsMemoAndExecutesNoProbes) {
  const auto first = toolkit.derive_robust_api("libsimio.so.1", config);
  ASSERT_TRUE(first.ok());
  const std::uint64_t after_first = toolkit.probes_executed();
  EXPECT_GT(after_first, 0u);

  const auto second = toolkit.derive_robust_api("libsimio.so.1", config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(toolkit.probes_executed(), after_first);
  EXPECT_EQ(xml::serialize(second.value().to_xml()), xml::serialize(first.value().to_xml()));

  // jobs is not part of the cache key: the engine is jobs-invariant, so a
  // different worker count must still hit the same memo slot.
  auto reconfigured = config;
  reconfigured.jobs = 4;
  ASSERT_TRUE(toolkit.derive_robust_api("libsimio.so.1", reconfigured).ok());
  EXPECT_EQ(toolkit.probes_executed(), after_first);
}

// The satellite stress test: cache_mutex_ alone would serialize campaigns but
// still run M of them back to back. Single-flight means M threads racing on
// one cold key charge the toolkit exactly ONE campaign's probes.
TEST_F(ToolkitFixture, ConcurrentDeriveIsSingleFlight) {
  // Baseline: one campaign's probe count, measured on a separate toolkit.
  Toolkit baseline_toolkit;
  const auto baseline = baseline_toolkit.derive_robust_api("libsimio.so.1", config);
  ASSERT_TRUE(baseline.ok());
  const std::uint64_t one_campaign = baseline_toolkit.probes_executed();
  ASSERT_GT(one_campaign, 0u);
  const std::string golden = xml::serialize(baseline.value().to_xml());

  constexpr int kThreads = 8;
  std::vector<std::string> serialized(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &serialized] {
      const auto campaign = toolkit.derive_robust_api("libsimio.so.1", config);
      ASSERT_TRUE(campaign.ok());
      serialized[t] = xml::serialize(campaign.value().to_xml());
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(toolkit.probes_executed(), one_campaign);
  for (const auto& doc : serialized) EXPECT_EQ(doc, golden);
}

TEST_F(ToolkitFixture, ExportImportCampaignsMovesMemoBetweenToolkits) {
  ASSERT_TRUE(toolkit.derive_robust_api("libsimm.so.1", config).ok());
  ASSERT_TRUE(toolkit.derive_robust_api("libsimio.so.1", config).ok());
  auto exported = toolkit.export_campaigns();
  ASSERT_EQ(exported.size(), 2u);

  Toolkit fresh;
  EXPECT_EQ(fresh.import_campaigns(exported), 2u);
  ASSERT_TRUE(fresh.derive_robust_api("libsimm.so.1", config).ok());
  ASSERT_TRUE(fresh.derive_robust_api("libsimio.so.1", config).ok());
  EXPECT_EQ(fresh.probes_executed(), 0u);

  // A corrupted fingerprint can never hit, so import refuses it.
  exported[0].fingerprint ^= 1;
  Toolkit skeptical;
  EXPECT_EQ(skeptical.import_campaigns(exported), 1u);
}

}  // namespace
}  // namespace healers::core
