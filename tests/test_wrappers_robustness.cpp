// Tests for the robustness wrapper: every class of derived/annotated check
// (NULL, wild pointers, unterminated strings, undersized buffers, integer
// domains, opaque handles), the errno/error-value containment contract, and
// the preservation of correct behaviour for valid calls.
#include <gtest/gtest.h>

#include <cmath>

#include "injector/injector.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {
namespace {

using linker::CallOutcome;
using testbed::F;
using testbed::I;
using testbed::P;

// One campaign shared by the whole suite (expensive-ish, deterministic).
const injector::CampaignResult& campaign_c() {
  static const injector::CampaignResult result = [] {
    linker::LibraryCatalog catalog;
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
    injector::InjectorConfig config;
    config.seed = 5;
    config.variants = 1;
    injector::FaultInjector injector(catalog, config);
    return injector.run_campaign(testbed::libsimc()).value();
  }();
  return result;
}

const injector::CampaignResult& campaign_io() {
  static const injector::CampaignResult result = [] {
    linker::LibraryCatalog catalog;
    catalog.install(&testbed::libsimc());
    catalog.install(&testbed::libsimio());
    catalog.install(&testbed::libsimm());
    injector::InjectorConfig config;
    config.seed = 5;
    config.variants = 1;
    injector::FaultInjector injector(catalog, config);
    return injector.run_campaign(testbed::libsimio()).value();
  }();
  return result;
}

struct RobustnessFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  std::shared_ptr<gen::ComposedWrapper> wrapper =
      make_robustness_wrapper(testbed::libsimc(), campaign_c()).value();

  void SetUp() override { proc->preload(wrapper); }

  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
};

TEST_F(RobustnessFixture, NullStrlenContainedWithEinval) {
  proc->machine().set_err(0);
  const auto outcome = proc->supervised_call("strlen", {P(0)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(outcome.ret.as_int(), -1);
  EXPECT_EQ(proc->machine().err(), simlib::kEINVAL);
  EXPECT_EQ(wrapper->stats()->total_contained(), 1u);
}

TEST_F(RobustnessFixture, ValidCallsPassThroughUnchanged) {
  EXPECT_EQ(proc->call("strlen", {P(str("hello"))}).as_int(), 5);
  EXPECT_EQ(proc->call("atoi", {P(str("42"))}).as_int(), 42);
  const mem::Addr dst = proc->scratch(64);
  proc->call("strcpy", {P(dst), P(str("ok"))});
  EXPECT_EQ(proc->machine().mem().read_cstring(dst), "ok");
  EXPECT_EQ(wrapper->stats()->total_contained(), 0u);
}

TEST_F(RobustnessFixture, PointerReturningFunctionContainsWithNull) {
  const auto outcome = proc->supervised_call("strdup", {P(0)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(outcome.ret.as_ptr(), 0u);
}

TEST_F(RobustnessFixture, WildPointerContained) {
  const auto outcome =
      proc->supervised_call("strlen", {P(mem::AddressSpace::wild_pointer())});
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.ret.as_int(), -1);
}

TEST_F(RobustnessFixture, UnterminatedSourceContained) {
  const mem::Addr unterm = proc->scratch(32);
  for (int i = 0; i < 32; ++i) proc->machine().mem().store8(unterm + i, 'A');
  const auto outcome = proc->supervised_call("strlen", {P(unterm)});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(RobustnessFixture, UndersizedStrcpyDestContained) {
  const mem::Addr tiny = proc->scratch(4);
  const auto outcome = proc->supervised_call("strcpy", {P(tiny), P(str("much too long"))});
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.ret.as_ptr(), 0u);
  // And the exact fit still works:
  const mem::Addr exact = proc->scratch(14);
  EXPECT_EQ(proc->call("strcpy", {P(exact), P(str("much too long"))}).as_ptr(), exact);
}

TEST_F(RobustnessFixture, ReadOnlyDestinationContained) {
  const mem::Addr ro = proc->rodata_cstring("read only");
  const auto outcome = proc->supervised_call("strcpy", {P(ro), P(str("x"))});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(RobustnessFixture, StrcatSizeExpressionAccountsForBothStrings) {
  const mem::Addr buf = proc->scratch(10);
  proc->machine().mem().write_cstring(buf, "12345");
  // 5 + 4 + 1 = 10 fits exactly:
  EXPECT_EQ(proc->call("strcat", {P(buf), P(str("6789"))}).as_ptr(), buf);
  EXPECT_EQ(proc->machine().mem().read_cstring(buf), "123456789");
  // One more byte would not fit:
  const auto outcome = proc->supervised_call("strcat", {P(buf), P(str("X"))});
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.ret.as_ptr(), 0u);
}

TEST_F(RobustnessFixture, MemcpyLengthCheckedAgainstBothBuffers) {
  const mem::Addr dst = proc->scratch(8);
  const mem::Addr src = proc->scratch(8);
  EXPECT_FALSE(proc->supervised_call("memcpy", {P(dst), P(src), I(64)}).robustness_failure());
  EXPECT_EQ(proc->call("memcpy", {P(dst), P(src), I(8)}).as_ptr(), dst);
}

TEST_F(RobustnessFixture, MemsetHugeLengthContained) {
  const mem::Addr dst = proc->scratch(64);
  const auto outcome = proc->supervised_call("memset", {P(dst), I(0), I(1LL << 40)});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(RobustnessFixture, CtypeOutOfRangeContained) {
  const auto outcome = proc->supervised_call("isalpha", {I(1 << 30)});
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.ret.as_int(), -1);
  // In-range still classifies correctly.
  EXPECT_EQ(proc->call("isalpha", {I('x')}).as_int(), 1);
  EXPECT_EQ(proc->call("isalpha", {I(-1)}).as_int(), 0);  // EOF within range
}

TEST_F(RobustnessFixture, FreeOfGarbageContainedFreeOfHeapWorks) {
  const auto outcome = proc->supervised_call("free", {P(proc->scratch(32))});
  EXPECT_FALSE(outcome.robustness_failure());  // no abort: contained
  const mem::Addr p = proc->call("malloc", {I(32)}).as_ptr();
  EXPECT_NO_THROW(proc->call("free", {P(p)}));
  EXPECT_FALSE(proc->machine().heap().is_live(p));
}

TEST_F(RobustnessFixture, DoubleFreeContained) {
  const mem::Addr p = proc->call("malloc", {I(32)}).as_ptr();
  proc->call("free", {P(p)});
  const auto outcome = proc->supervised_call("free", {P(p)});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(RobustnessFixture, FreeNullStillAllowed) {
  EXPECT_NO_THROW(proc->call("free", {P(0)}));
}

TEST_F(RobustnessFixture, StrtokNullFirstCallContained) {
  const auto outcome = proc->supervised_call("strtok", {P(0), P(str(","))});
  EXPECT_FALSE(outcome.robustness_failure());
  // And normal tokenization still works afterwards.
  const auto tok = proc->call("strtok", {P(str("a,b")), P(str(","))});
  EXPECT_EQ(proc->machine().mem().read_cstring(tok.as_ptr()), "a");
}

TEST_F(RobustnessFixture, ContainedCallsCountPerFunction) {
  proc->supervised_call("strlen", {P(0)});
  proc->supervised_call("strlen", {P(0)});
  proc->supervised_call("atoi", {P(0)});
  std::uint64_t strlen_contained = 0;
  for (const auto& [_, fn] : wrapper->stats()->functions()) {
    if (fn.symbol == "strlen") strlen_contained = fn.contained;
  }
  EXPECT_EQ(strlen_contained, 2u);
  EXPECT_EQ(wrapper->stats()->total_contained(), 3u);
}

struct IoRobustnessFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  std::shared_ptr<gen::ComposedWrapper> wrapper =
      make_robustness_wrapper(testbed::libsimio(), campaign_io()).value();

  void SetUp() override { proc->preload(wrapper); }
  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
};

TEST_F(IoRobustnessFixture, GarbageFilePointerContained) {
  const auto outcome = proc->supervised_call("fclose", {P(proc->scratch(32))});
  EXPECT_FALSE(outcome.robustness_failure());
  EXPECT_EQ(outcome.ret.as_int(), -1);
}

TEST_F(IoRobustnessFixture, StaleFilePointerContained) {
  const auto file = proc->call("fopen", {P(str("/f")), P(str("w"))});
  proc->call("fclose", {file});
  const auto outcome = proc->supervised_call("fputc", {I('x'), file});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(IoRobustnessFixture, ValidStreamLifecycleUnaffected) {
  const auto file = proc->call("fopen", {P(str("/ok")), P(str("w"))});
  ASSERT_NE(file.as_ptr(), 0u);
  EXPECT_EQ(proc->call("fputs", {P(str("hi")), file}).as_int(), 1);
  EXPECT_EQ(proc->call("fclose", {file}).as_int(), 0);
  EXPECT_EQ(*proc->state().fs.contents("/ok"), "hi");
}

TEST_F(IoRobustnessFixture, FgetsNullBufferContained) {
  proc->state().fs.put("/in", "line\n");
  const auto file = proc->call("fopen", {P(str("/in")), P(str("r"))});
  const auto outcome = proc->supervised_call("fgets", {P(0), I(64), file});
  EXPECT_FALSE(outcome.robustness_failure());
}

TEST_F(IoRobustnessFixture, SprintfFormattedSizeDegradesToOneByteCheck) {
  // formatted(2) is unevaluable; the wrapper demands only writability, so a
  // valid buffer passes and an unmapped destination is contained.
  const mem::Addr dst = proc->scratch(64);
  EXPECT_GT(proc->call("sprintf", {P(dst), P(str("%d")), I(7)}).as_int(), 0);
  const auto outcome = proc->supervised_call(
      "sprintf", {P(mem::AddressSpace::wild_pointer()), P(str("%d")), I(7)});
  EXPECT_FALSE(outcome.robustness_failure());
}

// The C2-style hardening sweep: for every libsimc function, re-run the
// hostile probes under the wrapper; no probe may produce a robustness
// failure for argument classes the wrapper checks.
class HardeningSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(HardeningSweep, WrappedFunctionSurvivesWholeLattice) {
  const std::string name = GetParam();
  const simlib::Symbol* symbol = testbed::libsimc().find(name);
  ASSERT_NE(symbol, nullptr);
  const auto page = parser::parse_manpage(symbol->manpage).value();

  for (std::size_t i = 0; i < page.proto.params.size(); ++i) {
    for (const lattice::TestTypeId id :
         lattice::test_types_for(page.proto.params[i].type.classify())) {
      for (std::size_t case_index = 0;; ++case_index) {
        auto proc = testbed::make_process();
        proc->state().stdin_content = "a line of console input for the probe\n";
        proc->preload(make_robustness_wrapper(testbed::libsimc(), campaign_c()).value());
        Rng rng(99);
        lattice::ValueFactory factory(*proc, rng);
        const auto cases = factory.cases_of(id, 1);
        if (case_index >= cases.size()) break;
        std::vector<simlib::SimValue> args;
        for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
          args.push_back(j == i ? cases[case_index].value
                                : factory.safe_value(page, static_cast<int>(j) + 1));
        }
        const auto outcome = proc->supervised_call(name, std::move(args));
        EXPECT_FALSE(outcome.robustness_failure())
            << name << " arg" << (i + 1) << " " << lattice::to_string(id) << ": "
            << outcome.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LibsimcCore, HardeningSweep,
                         ::testing::Values("strlen", "strcpy", "strncpy", "strcat", "strcmp",
                                           "strchr", "strstr", "strdup", "atoi", "atol",
                                           "strtol", "memcpy", "memset", "memcmp", "free",
                                           "isalpha", "toupper", "wctrans"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace healers::wrappers
