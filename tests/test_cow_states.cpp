// COW testbed-state edge cases (DESIGN.md, "COW testbed states"):
// fork-from-fork snapshot chains, the write barrier on pages shared by many
// snapshots, layout mutations (map_at/unmap/protect) with live forks, region
// cache staleness across privatize/restore, zero-page dedup, TestbedState
// fork/reset isolation, and a randomized differential test against a
// deep-copy shadow oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "linker/testbed.hpp"
#include "memmodel/addr_space.hpp"
#include "testbed.hpp"

namespace healers::mem {
namespace {

using Snapshot = AddressSpace::Snapshot;

void fill_pattern(AddressSpace& space, Addr base, std::uint64_t len, std::uint8_t seed) {
  std::vector<std::byte> data(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    data[i] = static_cast<std::byte>(static_cast<std::uint8_t>(seed + i * 7));
  }
  space.write_bytes(base, data.data(), len);
}

void expect_pattern(const AddressSpace& space, Addr base, std::uint64_t len, std::uint8_t seed) {
  const std::vector<std::byte> back = space.read_bytes(base, len);
  for (std::uint64_t i = 0; i < len; ++i) {
    ASSERT_EQ(std::to_integer<std::uint8_t>(back[i]),
              static_cast<std::uint8_t>(seed + i * 7))
        << "at offset " << i;
  }
}

TEST(CowStates, ForkFromForkChainRestoresInAnyOrder) {
  AddressSpace space;
  const Region& region = space.map(3 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;

  fill_pattern(space, base, 64, 1);
  const Snapshot s0 = space.snapshot();
  fill_pattern(space, base, 64, 2);
  const Snapshot s1 = space.snapshot();  // derived from s0's image
  fill_pattern(space, base, 64, 3);
  const Snapshot s2 = space.snapshot();  // derived from s1's image
  fill_pattern(space, base, 64, 4);

  // A chained snapshot shares every untouched page with its parent: only the
  // one written page differs between consecutive images.
  EXPECT_LE(s1.image()->distinct_pages(s0.image().get()), 1u);
  EXPECT_LE(s2.image()->distinct_pages(s1.image().get()), 1u);

  // Restore out of order, repeatedly — every generation stays intact.
  space.restore(s1);
  expect_pattern(space, base, 64, 2);
  space.restore(s0);
  expect_pattern(space, base, 64, 1);
  space.restore(s2);
  expect_pattern(space, base, 64, 3);
  space.restore(s0);
  expect_pattern(space, base, 64, 1);
  // Writing after a restore never leaks into any snapshot.
  fill_pattern(space, base, 64, 9);
  space.restore(s2);
  expect_pattern(space, base, 64, 3);
}

TEST(CowStates, WriteBarrierOnPageSharedByThreeSnapshots) {
  AddressSpace space;
  const Region& region = space.map(2 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  fill_pattern(space, base, 32, 7);

  // Three snapshots with no writes in between share every page 3-ways.
  const Snapshot a = space.snapshot();
  const Snapshot b = space.snapshot();
  const Snapshot c = space.snapshot();
  EXPECT_EQ(b.image()->distinct_pages(a.image().get()), 0u);
  EXPECT_EQ(c.image()->distinct_pages(a.image().get()), 0u);

  // One store breaks COW on exactly one page; the shared page in all three
  // snapshots is untouched.
  const std::uint64_t privatized_before = space.cow_stats().pages_privatized;
  space.store8(base, 0xEE);
  EXPECT_EQ(space.cow_stats().pages_privatized, privatized_before + 1);
  EXPECT_EQ(space.load8(base), 0xEEu);
  for (const Snapshot* snap : {&a, &b, &c}) {
    space.restore(*snap);
    expect_pattern(space, base, 32, 7);
    space.store8(base, 0xEE);  // dirty again before the next restore
  }
}

TEST(CowStates, LayoutMutationsWithLiveForksRestoreCleanly) {
  AddressSpace space;
  const Region& keep = space.map(kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "keep");
  const Region& doomed = space.map(kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "gone");
  const Addr keep_base = keep.base;
  const Addr doomed_base = doomed.base;
  fill_pattern(space, keep_base, 48, 11);
  fill_pattern(space, doomed_base, 48, 13);
  const Snapshot snap = space.snapshot();

  // Mutate the layout while the snapshot is live: unmap one captured region,
  // map a new one at a fixed base, flip permissions on the survivor.
  space.unmap(doomed_base);
  space.map_at(0x7000000, 2 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "fresh");
  fill_pattern(space, 0x7000000, 48, 17);
  space.protect(keep_base, Perm::kRead);
  EXPECT_THROW(space.store8(keep_base, 1), AccessFault);

  space.restore(snap);
  // The unmapped region reappears with its captured bytes; the new mapping
  // is gone; permissions rewound.
  expect_pattern(space, doomed_base, 48, 13);
  EXPECT_THROW((void)space.load8(0x7000000), AccessFault);
  EXPECT_NO_THROW(space.store8(keep_base, 1));
  space.store8(keep_base, 42);
  EXPECT_EQ(space.load8(keep_base), 42u);

  // The bump allocator cursor rewound too: the next map lands where it would
  // have landed at snapshot time, so forked layouts are deterministic.
  space.restore(snap);
  const Addr next_a = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "n").base;
  space.restore(snap);
  const Addr next_b = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "n").base;
  EXPECT_EQ(next_a, next_b);
}

TEST(CowStates, RegionCacheNeverServesStaleBytesAcrossPrivatizeAndRestore) {
  AddressSpace space;
  ASSERT_TRUE(space.region_cache_enabled());
  const Region& region = space.map(2 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  fill_pattern(space, base, 32, 21);
  const Snapshot snap = space.snapshot();

  // Warm the cache, then write through it: the store privatizes the page
  // even though the lookup was a cache hit.
  (void)space.load8(base);
  const std::uint64_t hits_before = space.region_cache_hits();
  space.store8(base, 0x5A);
  EXPECT_GT(space.region_cache_hits(), hits_before);
  EXPECT_EQ(space.load8(base), 0x5Au);
  EXPECT_EQ(space.find(base)->private_pages(), 1u);

  // restore() flushes the cache; the first read faults the sealed page back
  // in rather than reusing the privatized bytes.
  space.restore(snap);
  expect_pattern(space, base, 32, 21);

  // Same sequence with the cache disabled is byte-identical.
  AddressSpace reference;
  reference.set_region_cache_enabled(false);
  const Region& ref_region =
      reference.map(2 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "r");
  fill_pattern(reference, ref_region.base, 32, 21);
  const Snapshot ref_snap = reference.snapshot();
  reference.store8(ref_region.base, 0x5A);
  reference.restore(ref_snap);
  EXPECT_EQ(space.read_bytes(base, 32), reference.read_bytes(ref_region.base, 32));
}

TEST(CowStates, SpanPointersSurviveFaultInAndPrivatize) {
  AddressSpace space;
  const Region& region = space.map(4 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  fill_pattern(space, base, 4 * kCowPageSize, 3);
  const Snapshot snap = space.snapshot();
  space.restore(snap);  // empty residency: everything faults in lazily

  // Take a span over page 0, then fault in and privatize OTHER pages: the
  // working buffer never moves, so the pointer stays valid and correct.
  const std::byte* p = space.span(base, 16, Perm::kRead);
  (void)space.load8(base + 2 * kCowPageSize);            // read barrier, page 2
  space.store8(base + 3 * kCowPageSize, 0xFF);           // write barrier, page 3
  EXPECT_EQ(std::to_integer<std::uint8_t>(p[0]), static_cast<std::uint8_t>(3));
  EXPECT_EQ(std::to_integer<std::uint8_t>(p[9]),
            static_cast<std::uint8_t>(3 + 9 * 7));
}

TEST(CowStates, AllZeroPagesDedupOntoTheSharedZeroPage) {
  AddressSpace space;
  // 16 pages of untouched zeros plus one written page.
  const Region& region = space.map(16 * kCowPageSize, Perm::kReadWrite, RegionKind::kScratch, "z");
  space.store8(region.base + 5 * kCowPageSize, 1);
  const Snapshot snap = space.snapshot();
  // distinct_pages excludes the global zero page: only the written page (and
  // whatever the space itself maps) counts as real payload.
  EXPECT_LE(snap.image()->distinct_pages(nullptr), 1u + 0u);
}

TEST(CowStates, RandomizedDifferentialAgainstDeepCopyOracle) {
  // The shadow oracle is the pre-COW semantics: full deep copies of every
  // region's bytes at snapshot time, restored by copying bytes back. The COW
  // space must be indistinguishable from it under a random op mix.
  struct ShadowRegion {
    std::uint64_t size = 0;
    Perm perm = Perm::kNone;
    std::vector<std::uint8_t> bytes;
  };
  using ShadowSpace = std::map<Addr, ShadowRegion>;

  AddressSpace space;
  ShadowSpace shadow;
  std::vector<Snapshot> snaps;
  std::vector<ShadowSpace> shadow_snaps;
  std::mt19937_64 rng(20260808);

  const auto random_region = [&](auto& gen) -> Addr {
    if (shadow.empty()) return 0;
    auto it = shadow.begin();
    std::advance(it, static_cast<long>(gen() % shadow.size()));
    return it->first;
  };

  for (int step = 0; step < 400; ++step) {
    switch (rng() % 8) {
      case 0: {  // map a fresh region (sometimes sub-page, sometimes multi-page)
        const std::uint64_t size = 1 + rng() % (3 * kCowPageSize);
        const Perm perm = (rng() % 4 == 0) ? Perm::kRead : Perm::kReadWrite;
        const Region& region = space.map(size, perm, RegionKind::kScratch, "rnd");
        shadow[region.base] = ShadowRegion{size, perm, std::vector<std::uint8_t>(size, 0)};
        break;
      }
      case 1: {  // unmap a random region
        const Addr base = random_region(rng);
        if (base == 0) break;
        space.unmap(base);
        shadow.erase(base);
        break;
      }
      case 2:
      case 3: {  // random write into a random writable region
        const Addr base = random_region(rng);
        if (base == 0) break;
        ShadowRegion& sr = shadow[base];
        if (!allows(sr.perm, Perm::kWrite)) break;
        const std::uint64_t off = rng() % sr.size;
        const std::uint64_t len = 1 + rng() % (sr.size - off);
        std::vector<std::byte> data(len);
        for (auto& b : data) b = static_cast<std::byte>(static_cast<std::uint8_t>(rng()));
        space.write_bytes(base + off, data.data(), len);
        std::memcpy(sr.bytes.data() + off, data.data(), len);
        break;
      }
      case 4: {  // snapshot: COW seal vs deep copy
        snaps.push_back(space.snapshot());
        shadow_snaps.push_back(shadow);
        break;
      }
      case 5: {  // restore a RANDOM live snapshot
        if (snaps.empty()) break;
        const std::size_t idx = rng() % snaps.size();
        space.restore(snaps[idx]);
        shadow = shadow_snaps[idx];
        break;
      }
      default: {  // full differential read of a random region
        const Addr base = random_region(rng);
        if (base == 0) break;
        const ShadowRegion& sr = shadow[base];
        const std::vector<std::byte> got = space.read_bytes(base, sr.size);
        for (std::uint64_t i = 0; i < sr.size; ++i) {
          ASSERT_EQ(std::to_integer<std::uint8_t>(got[i]), sr.bytes[i])
              << "step " << step << " region " << std::hex << base << " off " << i;
        }
        break;
      }
    }
    // Cheap invariant sweep every step: region sets agree.
    ASSERT_EQ(space.region_count(), shadow.size());
  }
  EXPECT_GT(space.cow_stats().snapshots_taken, 0u);
  EXPECT_GT(space.cow_stats().restores, 0u);
}

}  // namespace
}  // namespace healers::mem

namespace healers::linker {
namespace {

TEST(TestbedState, ForkedShellsAreIsolatedAndDeterministic) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimio());
  catalog.install(&testbed::libsimm());
  const auto state = TestbedState::build(catalog, mem::MachineConfig{}, "stdin line\n");

  auto a = state->fork("shell-a");
  auto b = state->fork("shell-b");
  // Identical machines: the same allocation lands at the same address.
  const mem::Addr addr_a = a->alloc_cstring("forked");
  const mem::Addr addr_b = b->alloc_cstring("forked");
  EXPECT_EQ(addr_a, addr_b);
  // ... and is private to its shell.
  a->machine().mem().write_cstring(addr_a, "mutate");
  EXPECT_EQ(b->machine().mem().read_cstring(addr_b), "forked");

  // reset() rewinds a shell to pristine: the allocation is gone and replays
  // identically.
  state->reset(*a);
  EXPECT_EQ(a->alloc_cstring("forked"), addr_a);
  EXPECT_GE(state->forks(), 3u);  // 2 forks + 1 reset
}

TEST(TestbedState, ResetDropsOnlyTouchedPages) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  const auto state = TestbedState::build(catalog, mem::MachineConfig{}, "");
  auto shell = state->fork("shell");
  state->reset(*shell);  // settle: everything non-resident

  const mem::CowStats before = shell->machine().mem().cow_stats();
  shell->machine().mem().store8(shell->alloc_cstring("x"), 'y');
  state->reset(*shell);
  const mem::CowStats after = shell->machine().mem().cow_stats();
  // The reset dropped the handful of pages the allocation privatized — not
  // the whole address space.
  EXPECT_GT(after.pages_dropped, before.pages_dropped);
  EXPECT_LT(after.pages_dropped - before.pages_dropped, 16u);
}

}  // namespace
}  // namespace healers::linker
