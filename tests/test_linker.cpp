// Unit tests for the simulated dynamic linker: symbol resolution order,
// LD_PRELOAD interposition semantics, supervised outcomes, the GOT hop, and
// executable inspection (Fig 4).
#include <gtest/gtest.h>

#include "linker/executable.hpp"
#include "testbed.hpp"

namespace healers::linker {
namespace {

using testbed::F;
using testbed::I;
using testbed::P;

// A tiny scripted wrapper for interposition-order tests.
class TraceWrapper : public Interposition {
 public:
  TraceWrapper(std::string name, std::vector<std::string>& log, std::string only = "")
      : name_(std::move(name)), log_(log), only_(std::move(only)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool wraps(const std::string& symbol) const override {
    return only_.empty() || symbol == only_;
  }
  simlib::SimValue call(const std::string& symbol, simlib::CallContext& ctx,
                        const NextFn& next) override {
    log_.push_back(name_ + ":pre:" + symbol);
    simlib::SimValue ret = next(ctx);
    log_.push_back(name_ + ":post:" + symbol);
    return ret;
  }

 private:
  std::string name_;
  std::vector<std::string>& log_;
  std::string only_;
};

// A wrapper that vetoes calls (containment-style).
class VetoWrapper : public Interposition {
 public:
  [[nodiscard]] std::string name() const override { return "veto"; }
  [[nodiscard]] bool wraps(const std::string& symbol) const override {
    return symbol == "strlen";
  }
  simlib::SimValue call(const std::string&, simlib::CallContext&, const NextFn&) override {
    return simlib::SimValue::integer(-99);
  }
};

TEST(Process, ResolvesSymbolsInLoadOrder) {
  auto proc = testbed::make_process();
  const simlib::Symbol* symbol = proc->resolve("strcpy");
  ASSERT_NE(symbol, nullptr);
  EXPECT_EQ(symbol->name, "strcpy");
  EXPECT_EQ(proc->resolve("no_such_fn"), nullptr);
}

TEST(Process, CallToUnresolvedSymbolCrashes) {
  auto proc = testbed::make_process();
  const auto outcome = proc->supervised_call("gethostbyname", {P(0)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kCrash);
  EXPECT_NE(outcome.detail.find("unresolved symbol"), std::string::npos);
}

TEST(Process, FirstLibraryWins) {
  // Two libraries defining the same symbol: the earlier-loaded one resolves.
  simlib::SharedLibrary a("liba.so", "1");
  simlib::SharedLibrary b("libb.so", "1");
  auto make = [](int value) {
    simlib::Symbol symbol;
    symbol.name = "whoami";
    symbol.declaration = "int whoami(void);";
    symbol.manpage = "NAME\n  whoami - id\nSYNOPSIS\n  int whoami(void);\nNOTES\n";
    symbol.fn = [value](simlib::CallContext&) { return simlib::SimValue::integer(value); };
    return symbol;
  };
  a.add(make(1));
  b.add(make(2));
  Process proc("t");
  proc.load_library(&a);
  proc.load_library(&b);
  EXPECT_EQ(proc.call("whoami", {}).as_int(), 1);
}

TEST(Process, PreloadOrderIsOutermostFirst) {
  auto proc = testbed::make_process();
  std::vector<std::string> log;
  proc->preload(std::make_shared<TraceWrapper>("w1", log));
  proc->preload(std::make_shared<TraceWrapper>("w2", log));
  proc->call("strlen", {P(proc->alloc_cstring("abc"))});
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "w1:pre:strlen");
  EXPECT_EQ(log[1], "w2:pre:strlen");
  EXPECT_EQ(log[2], "w2:post:strlen");
  EXPECT_EQ(log[3], "w1:post:strlen");
}

TEST(Process, NonWrappedSymbolsBypassWrapper) {
  auto proc = testbed::make_process();
  std::vector<std::string> log;
  proc->preload(std::make_shared<TraceWrapper>("w", log, "strcpy"));
  proc->call("strlen", {P(proc->alloc_cstring("abc"))});
  EXPECT_TRUE(log.empty());
  const mem::Addr dst = proc->scratch(16);
  proc->call("strcpy", {P(dst), P(proc->alloc_cstring("x"))});
  EXPECT_EQ(log.size(), 2u);
}

TEST(Process, WrapperCanVetoCall) {
  auto proc = testbed::make_process();
  proc->preload(std::make_shared<VetoWrapper>());
  // NULL would crash strlen; the veto wrapper returns -99 instead.
  EXPECT_EQ(proc->call("strlen", {P(0)}).as_int(), -99);
}

TEST(Process, SupervisedCallClassifiesOutcomes) {
  auto proc = testbed::make_process();
  const auto ok = proc->supervised_call("strlen", {P(proc->alloc_cstring("four"))});
  EXPECT_EQ(ok.kind, CallOutcome::Kind::kReturned);
  EXPECT_EQ(ok.ret.as_int(), 4);
  EXPECT_FALSE(ok.robustness_failure());

  const auto crash = proc->supervised_call("strlen", {P(0)});
  EXPECT_EQ(crash.kind, CallOutcome::Kind::kCrash);
  EXPECT_TRUE(crash.robustness_failure());

  const auto abort_ = proc->supervised_call("abort", {});
  EXPECT_EQ(abort_.kind, CallOutcome::Kind::kAbort);
  EXPECT_TRUE(abort_.robustness_failure());
}

TEST(Process, SupervisedHangDetection) {
  mem::MachineConfig config;
  config.step_budget = 1000;
  Process proc("hang", config);
  proc.load_library(&testbed::libsimc());
  // memset over a large still-mapped buffer exceeds the budget.
  const mem::Addr big = proc.scratch(1 << 16);
  const auto outcome = proc.supervised_call("memset", {P(big), I(0), I(1 << 16)});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kHang);
  EXPECT_TRUE(outcome.robustness_failure());
}

TEST(Process, RunReapsProgramOutcomes) {
  auto proc = testbed::make_process();
  const auto ok = proc->run([](Process&) { return 5; });
  EXPECT_EQ(ok.kind, CallOutcome::Kind::kExit);
  EXPECT_EQ(ok.exit_code, 5);

  auto proc2 = testbed::make_process();
  const auto crash = proc2->run([](Process& p) {
    p.call("strlen", {P(0)});
    return 0;
  });
  EXPECT_EQ(crash.kind, CallOutcome::Kind::kCrash);

  auto proc3 = testbed::make_process();
  const auto exited = proc3->run([](Process& p) {
    p.call("exit", {I(9)});
    return 0;  // unreachable
  });
  EXPECT_EQ(exited.kind, CallOutcome::Kind::kExit);
  EXPECT_EQ(exited.exit_code, 9);
}

TEST(Process, CallsDispatchedCounts) {
  auto proc = testbed::make_process();
  const mem::Addr s = proc->alloc_cstring("x");
  proc->call("strlen", {P(s)});
  proc->call("strlen", {P(s)});
  EXPECT_EQ(proc->calls_dispatched(), 2u);
}

TEST(Process, GotHopFlagsOverwrittenSlot) {
  auto proc = testbed::make_process();
  const mem::Addr slot = proc->machine().got_slot("strlen");
  proc->machine().mem().store64(slot, 0x1234);
  const auto outcome = proc->supervised_call("strlen", {P(proc->alloc_cstring("x"))});
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kHijack);
}

TEST(Process, OutcomeToStringIsReadable) {
  CallOutcome outcome;
  outcome.kind = CallOutcome::Kind::kExit;
  outcome.exit_code = 3;
  EXPECT_EQ(outcome.to_string(), "exit 3");
  outcome.kind = CallOutcome::Kind::kReturned;
  outcome.ret = simlib::SimValue::integer(7);
  EXPECT_EQ(outcome.to_string(), "returned 7");
}

// --- catalog & executables (Fig 4) -----------------------------------------

TEST(LibraryCatalog, InstallFindList) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimm());
  EXPECT_NE(catalog.find("libsimc.so.1"), nullptr);
  EXPECT_EQ(catalog.find("libzzz.so"), nullptr);
  EXPECT_EQ(catalog.sonames().size(), 2u);
}

TEST(InspectExecutable, ResolvesSymbolsToProviders) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimm());
  Executable exe;
  exe.name = "app";
  exe.needed = {"libsimc.so.1", "libsimm.so.1"};
  exe.undefined = {"strcpy", "sqrt", "gethostbyname"};
  const LinkMap map = inspect_executable(exe, catalog);
  ASSERT_EQ(map.resolutions.size(), 3u);
  EXPECT_EQ(map.resolutions[0].provider, "libsimc.so.1");
  EXPECT_EQ(map.resolutions[1].provider, "libsimm.so.1");
  EXPECT_EQ(map.resolutions[2].provider, "");
  ASSERT_EQ(map.unresolved.size(), 1u);
  EXPECT_EQ(map.unresolved[0], "gethostbyname");
  EXPECT_NE(map.to_text().find("gethostbyname -> <unresolved>"), std::string::npos);
}

TEST(InspectExecutable, ResolutionRespectsNeededOrder) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  Executable exe;
  exe.name = "app";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"malloc"};
  EXPECT_EQ(inspect_executable(exe, catalog).resolutions[0].provider, "libsimc.so.1");
}

TEST(Spawn, LoadsNeededLibrariesAndPreloads) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  std::vector<std::string> log;
  Executable exe;
  exe.name = "app";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"strlen"};
  exe.entry = [](Process& p) {
    return static_cast<int>(p.call("strlen", {P(p.rodata_cstring("abc"))}).as_int());
  };
  auto proc = spawn(exe, catalog, {std::make_shared<TraceWrapper>("w", log)});
  const auto outcome = proc->run(exe.entry);
  EXPECT_EQ(outcome.exit_code, 3);
  EXPECT_EQ(log.size(), 2u);
}

TEST(ValidateExecutable, ReportsUndeclaredImports) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  Executable exe;
  exe.name = "sloppy";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"strlen"};  // calls atoi too, but does not declare it
  exe.entry = [](Process& p) {
    p.call("strlen", {P(p.rodata_cstring("ab"))});
    p.call("atoi", {P(p.rodata_cstring("1"))});
    return 0;
  };
  CallOutcome outcome;
  const auto missing = validate_executable(exe, catalog, &outcome);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "atoi");
  EXPECT_EQ(outcome.kind, CallOutcome::Kind::kExit);
}

TEST(ValidateExecutable, CleanImportListReportsNothing) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  Executable exe;
  exe.name = "tidy";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"strlen"};
  exe.entry = [](Process& p) {
    p.call("strlen", {P(p.rodata_cstring("ab"))});
    return 0;
  };
  EXPECT_TRUE(validate_executable(exe, catalog).empty());
}

TEST(Spawn, MissingLibraryThrows) {
  LibraryCatalog catalog;
  Executable exe;
  exe.name = "app";
  exe.needed = {"libmissing.so"};
  EXPECT_THROW((void)spawn(exe, catalog), std::runtime_error);
}

TEST(Spawn, MissingLibraryNamesTheCulprit) {
  LibraryCatalog catalog;
  catalog.install(&testbed::libsimc());
  Executable exe;
  exe.name = "app";
  exe.needed = {"libsimc.so.1", "libmissing.so"};
  try {
    (void)spawn(exe, catalog);
    FAIL() << "spawn with a missing library must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("libmissing.so"), std::string::npos);
  }
}

TEST(Process, DuplicatePreloadIsRejected) {
  auto proc = testbed::make_process();
  std::vector<std::string> log;
  proc->preload(std::make_shared<TraceWrapper>("tracer", log));
  // The same *instance* twice (and null) are rejected; a distinct instance
  // sharing the family name is a legitimate stack. The preload list and its
  // dispatch behaviour must be unchanged by the failed attempts.
  EXPECT_THROW(proc->preload(proc->preloads().front()), std::invalid_argument);
  EXPECT_THROW(proc->preload(nullptr), std::invalid_argument);
  EXPECT_EQ(proc->preloads().size(), 1u);
  const mem::Addr s = proc->alloc_cstring("abc");
  EXPECT_EQ(proc->call("strlen", {P(s)}).as_int(), 3);
  EXPECT_EQ(log.size(), 2u);  // one pre + one post: the tracer is not doubled
}

TEST(Process, DispatchPlansInvalidateWhenTheLoadSetGrows) {
  auto proc = std::make_unique<Process>("app");
  proc->load_library(&testbed::libsimc());
  const mem::Addr s = proc->alloc_cstring("abc");
  // Build (and cache) a dispatch plan, and verify the load set's limits.
  EXPECT_EQ(proc->call("strlen", {P(s)}).as_int(), 3);
  EXPECT_EQ(proc->resolve("sqrt"), nullptr);
  // Installing another library must invalidate the cached plans: the new
  // exports resolve and dispatch, and existing plans still work.
  proc->load_library(&testbed::libsimm());
  ASSERT_NE(proc->resolve("sqrt"), nullptr);
  EXPECT_EQ(proc->call("sqrt", {F(9.0)}).as_double(), 3.0);
  EXPECT_EQ(proc->call("strlen", {P(s)}).as_int(), 3);
}

}  // namespace
}  // namespace healers::linker
