// Behaviour tests for the late additions to libsimc/libsimio: gets/getchar
// (stdin), strnlen, strcasecmp/strncasecmp, strtok_r — plus their wrapper
// interactions (the stdinline() gets pre-pass, the SAVEPTR conditional-NULL
// check).
#include <gtest/gtest.h>

#include "injector/injector.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers {
namespace {

using testbed::I;
using testbed::P;

struct ExtrasFixture : ::testing::Test {
  std::unique_ptr<linker::Process> proc = testbed::make_process();
  mem::AddressSpace& mem() { return proc->machine().mem(); }
  mem::Addr str(const std::string& text) { return proc->alloc_cstring(text); }
  mem::Addr buf(std::uint64_t size) { return proc->scratch(size); }
};

// --- gets / getchar -----------------------------------------------------------

TEST_F(ExtrasFixture, GetsReadsLineAndStripsNewline) {
  proc->state().stdin_content = "first line\nsecond\n";
  const mem::Addr dest = buf(64);
  EXPECT_EQ(proc->call("gets", {P(dest)}).as_ptr(), dest);
  EXPECT_EQ(mem().read_cstring(dest), "first line");
  proc->call("gets", {P(dest)});
  EXPECT_EQ(mem().read_cstring(dest), "second");
  EXPECT_EQ(proc->call("gets", {P(dest)}).as_ptr(), 0u);  // EOF
}

TEST_F(ExtrasFixture, GetsOverflowsUnboundedly) {
  // THE classic: a 4-byte buffer, a longer console line.
  proc->state().stdin_content = "longer than four bytes\n";
  EXPECT_THROW(proc->call("gets", {P(buf(4))}), AccessFault);
}

TEST_F(ExtrasFixture, GetcharConsumesStdin) {
  proc->state().stdin_content = "ab";
  EXPECT_EQ(proc->call("getchar", {}).as_int(), 'a');
  EXPECT_EQ(proc->call("getchar", {}).as_int(), 'b');
  EXPECT_EQ(proc->call("getchar", {}).as_int(), -1);
}

TEST_F(ExtrasFixture, GetsContainedByWrapperStdinPrePass) {
  // The wrapper's stdinline() oracle measures the pending line: a too-small
  // destination is contained BEFORE any byte is written.
  linker::LibraryCatalog catalog;
  catalog.install(&testbed::libsimio());
  catalog.install(&testbed::libsimc());
  catalog.install(&testbed::libsimm());
  injector::InjectorConfig config;
  config.seed = 17;
  config.variants = 1;
  injector::FaultInjector injector(catalog, config);
  injector::CampaignResult campaign;
  campaign.library = testbed::libsimio().soname();
  campaign.specs.push_back(injector.probe_function(testbed::libsimio(), "gets").value());
  EXPECT_GT(campaign.specs[0].total_failures, 0u);  // probes with seeded stdin crashed

  auto wrapped = testbed::make_process();
  wrapped->state().stdin_content = "a fairly long console line\n";
  wrapped->preload(wrappers::make_robustness_wrapper(testbed::libsimio(), campaign).value());
  const mem::Addr tiny = wrapped->scratch(4);
  const auto contained = wrapped->supervised_call("gets", {P(tiny)});
  EXPECT_FALSE(contained.robustness_failure());
  EXPECT_EQ(contained.ret.as_ptr(), 0u);
  // A big-enough buffer still works through the wrapper.
  const mem::Addr roomy = wrapped->scratch(64);
  EXPECT_EQ(wrapped->call("gets", {P(roomy)}).as_ptr(), roomy);
  EXPECT_EQ(wrapped->machine().mem().read_cstring(roomy), "a fairly long console line");
}

// --- strnlen -------------------------------------------------------------------

TEST_F(ExtrasFixture, StrnlenBoundsTheScan) {
  EXPECT_EQ(proc->call("strnlen", {P(str("hello")), I(64)}).as_int(), 5);
  EXPECT_EQ(proc->call("strnlen", {P(str("hello")), I(3)}).as_int(), 3);
  EXPECT_EQ(proc->call("strnlen", {P(str("")), I(64)}).as_int(), 0);
}

TEST_F(ExtrasFixture, StrnlenToleratesUnterminatedWithinBound) {
  // The robust contrast to strlen: a bounded scan over an unterminated
  // buffer is fine as long as maxlen stays inside.
  const mem::Addr unterm = buf(32);
  for (int i = 0; i < 32; ++i) mem().store8(unterm + i, 'A');
  EXPECT_EQ(proc->call("strnlen", {P(unterm), I(32)}).as_int(), 32);
  EXPECT_THROW(proc->call("strnlen", {P(unterm), I(1000)}), AccessFault);
}

// --- strcasecmp / strncasecmp ----------------------------------------------------

TEST_F(ExtrasFixture, StrcasecmpIgnoresCase) {
  EXPECT_EQ(proc->call("strcasecmp", {P(str("Hello")), P(str("hELLo"))}).as_int(), 0);
  EXPECT_LT(proc->call("strcasecmp", {P(str("abc")), P(str("ABD"))}).as_int(), 0);
  EXPECT_NE(proc->call("strcasecmp", {P(str("abc")), P(str("abcd"))}).as_int(), 0);
}

TEST_F(ExtrasFixture, StrncasecmpBounded) {
  EXPECT_EQ(proc->call("strncasecmp", {P(str("ABCx")), P(str("abcy")), I(3)}).as_int(), 0);
  EXPECT_NE(proc->call("strncasecmp", {P(str("ABCx")), P(str("abcy")), I(4)}).as_int(), 0);
}

// --- strtok_r --------------------------------------------------------------------

TEST_F(ExtrasFixture, StrtokRTokenizesWithExplicitCursor) {
  const mem::Addr s = str("x:y:z");
  const mem::Addr delim = str(":");
  const mem::Addr save = buf(8);
  const auto t1 = proc->call("strtok_r", {P(s), P(delim), P(save)});
  const auto t2 = proc->call("strtok_r", {P(0), P(delim), P(save)});
  const auto t3 = proc->call("strtok_r", {P(0), P(delim), P(save)});
  const auto t4 = proc->call("strtok_r", {P(0), P(delim), P(save)});
  EXPECT_EQ(mem().read_cstring(t1.as_ptr()), "x");
  EXPECT_EQ(mem().read_cstring(t2.as_ptr()), "y");
  EXPECT_EQ(mem().read_cstring(t3.as_ptr()), "z");
  EXPECT_EQ(t4.as_ptr(), 0u);
}

TEST_F(ExtrasFixture, StrtokRTwoIndependentCursors) {
  // The reentrancy strtok lacks: two tokenizations interleave safely.
  const mem::Addr s1 = str("a,b");
  const mem::Addr s2 = str("1,2");
  const mem::Addr delim = str(",");
  const mem::Addr save1 = buf(8);
  const mem::Addr save2 = buf(8);
  const auto a = proc->call("strtok_r", {P(s1), P(delim), P(save1)});
  const auto one = proc->call("strtok_r", {P(s2), P(delim), P(save2)});
  const auto b = proc->call("strtok_r", {P(0), P(delim), P(save1)});
  const auto two = proc->call("strtok_r", {P(0), P(delim), P(save2)});
  EXPECT_EQ(mem().read_cstring(a.as_ptr()), "a");
  EXPECT_EQ(mem().read_cstring(one.as_ptr()), "1");
  EXPECT_EQ(mem().read_cstring(b.as_ptr()), "b");
  EXPECT_EQ(mem().read_cstring(two.as_ptr()), "2");
}

TEST_F(ExtrasFixture, StrtokRNullFirstCallWithGarbageCursorCrashes) {
  const mem::Addr save = buf(8);  // zero-filled: *save == 0
  EXPECT_THROW(proc->call("strtok_r", {P(0), P(str(",")), P(save)}), AccessFault);
}

TEST_F(ExtrasFixture, StrtokRSaveptrCheckContainsUnprimedNull) {
  // The SAVEPTR annotation: NULL str is contained unless *saveptr points at
  // a readable string — first-call NULL is caught, continuation is allowed.
  injector::CampaignResult campaign;  // annotation-only wrapper suffices
  campaign.library = testbed::libsimc().soname();
  auto proc2 = testbed::make_process();
  proc2->preload(wrappers::make_robustness_wrapper(testbed::libsimc(), campaign).value());
  const mem::Addr delim = proc2->alloc_cstring(",");
  const mem::Addr save = proc2->scratch(8);
  const auto contained = proc2->supervised_call("strtok_r", {P(0), P(delim), P(save)});
  EXPECT_FALSE(contained.robustness_failure());
  EXPECT_EQ(contained.ret.as_ptr(), 0u);

  const mem::Addr s = proc2->alloc_cstring("m,n");
  const auto t1 = proc2->call("strtok_r", {P(s), P(delim), P(save)});
  EXPECT_EQ(proc2->machine().mem().read_cstring(t1.as_ptr()), "m");
  const auto t2 = proc2->call("strtok_r", {P(0), P(delim), P(save)});
  EXPECT_EQ(proc2->machine().mem().read_cstring(t2.as_ptr()), "n");
}

TEST(ExtrasSizeExpr, StdinlineParsesAndRenders) {
  auto expr = parser::SizeExpr::parse("stdinline()+1");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value().to_string(), "stdinline()+1");
  EXPECT_FALSE(parser::SizeExpr::parse("stdinline(1)").ok());
}

TEST(ExtrasSizeExprEval, StdinlineUsesOracle) {
  mem::AddressSpace space;
  auto expr = parser::SizeExpr::parse("stdinline()+1").value();
  parser::SizeExpr::EvalEnv env{space, {}, 1 << 20, {}, {}};
  EXPECT_EQ(expr.eval(env), std::nullopt);  // no oracle
  env.stdin_line_len = [] { return std::optional<std::uint64_t>(12); };
  EXPECT_EQ(expr.eval(env), 13u);
}

}  // namespace
}  // namespace healers
