// Virtual-time fleet simulator tests (ISSUE 7): the discrete-event engine,
// the traffic models, and the FleetSim end-to-end determinism guarantees —
// byte-identical global summaries across --jobs 1/4/16 and any sim shard
// count, collector drop accounting under every shard/worker/policy
// combination the sim can produce, and shed responses actually delivered
// under bursts for both admission policies.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/toolkit.hpp"
#include "server/derive_server.hpp"
#include "server/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/fleet_sim.hpp"
#include "sim/traffic.hpp"

namespace healers::sim {
namespace {

// One toolkit for every test in this binary: the campaign memo makes the
// sim's derive requests cost one real campaign per unique key, total.
const core::Toolkit& shared_toolkit() {
  static core::Toolkit* toolkit = new core::Toolkit();
  return *toolkit;
}

// A small fleet that still hits every traffic model and emits derive
// requests within the run.
SimConfig small_config() {
  SimConfig config;
  config.hosts = 400;
  config.virtual_seconds = 30;
  config.seed = 7;
  config.traffic = TrafficModel::kMixed;
  config.shards = 4;
  config.jobs = 1;
  return config;
}

// --- engine ----------------------------------------------------------------

TEST(SimEngine, EventQueuePopsInTimeThenHostOrder) {
  EventQueue queue;
  // Pushed in scrambled order, including a time tie broken by host index.
  const std::array<Event, 6> events = {Event{50, 2}, Event{10, 9}, Event{50, 1},
                                       Event{5, 4},  Event{99, 0}, Event{10, 3}};
  for (const Event& event : events) queue.push(event);
  ASSERT_EQ(queue.size(), events.size());

  const std::array<Event, 6> expected = {Event{5, 4},  Event{10, 3}, Event{10, 9},
                                         Event{50, 1}, Event{50, 2}, Event{99, 0}};
  for (const Event& want : expected) {
    EXPECT_EQ(queue.top(), want);
    EXPECT_EQ(queue.pop(), want);
  }
  EXPECT_TRUE(queue.empty());
}

// --- traffic models --------------------------------------------------------

TEST(SimTraffic, ModelNamesRoundTrip) {
  for (const auto model :
       {TrafficModel::kSteady, TrafficModel::kDiurnal, TrafficModel::kBurst,
        TrafficModel::kStraggler, TrafficModel::kMixed}) {
    const auto parsed = traffic_model_from_name(to_string(model));
    ASSERT_TRUE(parsed.ok()) << to_string(model);
    EXPECT_EQ(parsed.value(), model);
  }
  // The flag spelling has no hyphen; both forms parse.
  EXPECT_EQ(traffic_model_from_name("crashloop").value(), TrafficModel::kCrashLoop);
  EXPECT_EQ(traffic_model_from_name("crash-loop").value(), TrafficModel::kCrashLoop);
  EXPECT_FALSE(traffic_model_from_name("tsunami").ok());
}

TEST(SimTraffic, MixedResolvesToFixedFleetShares) {
  std::array<std::uint64_t, kConcreteModels> counts{};
  constexpr std::uint32_t kHosts = 2000;
  for (std::uint32_t host = 0; host < kHosts; ++host) {
    const TrafficModel model = resolve_model(TrafficModel::kMixed, host);
    ASSERT_NE(model, TrafficModel::kMixed);
    ++counts[static_cast<std::size_t>(model)];
  }
  EXPECT_EQ(counts[static_cast<std::size_t>(TrafficModel::kSteady)], kHosts * 11 / 20);
  EXPECT_EQ(counts[static_cast<std::size_t>(TrafficModel::kDiurnal)], kHosts * 4 / 20);
  EXPECT_EQ(counts[static_cast<std::size_t>(TrafficModel::kBurst)], kHosts * 2 / 20);
  EXPECT_EQ(counts[static_cast<std::size_t>(TrafficModel::kStraggler)], kHosts * 2 / 20);
  EXPECT_EQ(counts[static_cast<std::size_t>(TrafficModel::kCrashLoop)], kHosts / 20);
  // Concrete models resolve to themselves.
  EXPECT_EQ(resolve_model(TrafficModel::kBurst, 123), TrafficModel::kBurst);
}

TEST(SimTraffic, HostScheduleIsAPureFunctionOfSeedAndIndex) {
  // Two tasks with the same (seed, index) replay the same schedule...
  HostTask a(2003, 42, TrafficModel::kMixed);
  HostTask b(2003, 42, TrafficModel::kMixed);
  EXPECT_EQ(initial_delay(a), initial_delay(b));
  VirtualTime now = 0;
  for (int i = 0; i < 64; ++i) {
    const StepPlan pa = step(a, now);
    const StepPlan pb = step(b, now);
    EXPECT_EQ(pa.next_delay, pb.next_delay);
    EXPECT_EQ(pa.profile_docs, pb.profile_docs);
    EXPECT_EQ(pa.dossier, pb.dossier);
    EXPECT_EQ(pa.derive, pb.derive);
    a.emissions += pa.profile_docs;
    b.emissions += pb.profile_docs;
    now += std::max<VirtualTime>(pa.next_delay, 1);
  }
  // ...and a neighboring host does not (splitmix seeding decorrelates them).
  HostTask c(2003, 43, TrafficModel::kSteady);
  HostTask d(2003, 42, TrafficModel::kSteady);
  EXPECT_NE(step(c, 0).next_delay, step(d, 0).next_delay);
}

TEST(SimTraffic, EveryModelKeepsScheduling) {
  for (const auto model :
       {TrafficModel::kSteady, TrafficModel::kDiurnal, TrafficModel::kBurst,
        TrafficModel::kStraggler, TrafficModel::kCrashLoop}) {
    HostTask host(1, 0, model);
    VirtualTime now = initial_delay(host);
    for (int i = 0; i < 200; ++i) {
      const StepPlan plan = step(host, now);
      EXPECT_GT(plan.next_delay, 0u) << to_string(model);
      EXPECT_TRUE(plan.profile_docs > 0 || plan.dossier || plan.derive) << to_string(model);
      host.emissions += plan.profile_docs;
      now += plan.next_delay;
    }
  }
}

// --- end-to-end determinism (satellite: jobs 1/4/16 byte-identical) --------

TEST(FleetSimTest, GlobalSummaryByteIdenticalAcrossJobsAndShards) {
  std::string reference;
  for (const unsigned jobs : {1u, 4u, 16u}) {
    for (const unsigned shards : {1u, 4u}) {
      SimConfig config = small_config();
      config.jobs = jobs;
      config.shards = shards;
      FleetSim simulation(shared_toolkit(), config);
      const SimStats stats = simulation.run();
      EXPECT_GT(stats.emissions, 0u);
      EXPECT_GT(stats.derive_requests, 0u);  // the summary must cover the serve path
      const std::string summary = simulation.render_global_summary();
      if (reference.empty()) {
        reference = summary;
      } else {
        EXPECT_EQ(summary, reference) << "jobs=" << jobs << " shards=" << shards;
      }
    }
  }
}

TEST(FleetSimTest, SeedChangesTheSummary) {
  SimConfig config = small_config();
  FleetSim a(shared_toolkit(), config);
  a.run();
  config.seed = config.seed + 1;
  FleetSim b(shared_toolkit(), config);
  b.run();
  EXPECT_NE(a.render_global_summary(), b.render_global_summary());
}

TEST(FleetSimTest, TrafficFlagShapesTheEmissions) {
  SimConfig config = small_config();
  config.hosts = 100;
  config.traffic = TrafficModel::kSteady;
  FleetSim steady(shared_toolkit(), config);
  const SimStats steady_stats = steady.run();
  EXPECT_GT(steady_stats.profile_docs, 0u);
  EXPECT_EQ(steady_stats.dossier_docs, 0u);  // only crash-loop hosts crash

  config.traffic = TrafficModel::kCrashLoop;
  FleetSim crashing(shared_toolkit(), config);
  const SimStats crash_stats = crashing.run();
  EXPECT_GT(crash_stats.dossier_docs, 0u);
  EXPECT_GT(crash_stats.derive_requests, 0u);
  // The dossiers really traveled the collector pipe.
  EXPECT_FALSE(crashing.collector().snapshot().dossiers.empty());
}

// --- satellite: collector drop accounting under every sim-produced shape ---

TEST(FleetSimTest, DropAccountingIdentityAcrossCollectorConfigs) {
  for (const unsigned shards : {1u, 3u}) {
    for (const unsigned workers : {1u, 4u}) {
      for (const auto policy :
           {fleet::OverflowPolicy::kDropNewest, fleet::OverflowPolicy::kDropOldest}) {
        SimConfig config = small_config();
        config.hosts = 240;
        config.virtual_seconds = 20;
        config.collector.shards = shards;
        config.collector.workers = workers;
        config.collector.policy = policy;
        config.collector.queue_capacity = 8;  // force the overflow path
        FleetSim simulation(shared_toolkit(), config);
        const SimStats stats = simulation.run();
        const auto& collector = simulation.collector();

        const std::string what = "shards=" + std::to_string(shards) +
                                 " workers=" + std::to_string(workers) +
                                 " policy=" + std::to_string(static_cast<int>(policy));
        // Every emitted document reached submit()...
        EXPECT_EQ(collector.submitted(), stats.profile_docs + stats.dossier_docs) << what;
        // ...and every submitted document is accounted exactly once:
        // dropped + ingested == emitted, with nothing pending at quiescence.
        EXPECT_EQ(collector.submitted(), collector.aggregated() + collector.malformed() +
                                             collector.dropped() + collector.pending())
            << what;
        EXPECT_EQ(collector.malformed(), 0u) << collector.first_error();
        EXPECT_EQ(collector.pending(), 0u) << what;
        EXPECT_GT(collector.dropped(), 0u) << what;  // the capacity squeeze worked
      }
    }
  }
}

// --- satellite: shed responses actually delivered under burst --------------

TEST(FleetSimTest, BurstShedsAreCountedAndDelivered) {
  for (const auto policy :
       {server::AdmissionPolicy::kShedNewest, server::AdmissionPolicy::kShedOldest}) {
    SimConfig config = small_config();
    config.hosts = 120;
    config.virtual_seconds = 20;
    config.traffic = TrafficModel::kCrashLoop;  // derive-heavy traffic
    config.server.shards = 1;
    config.server.queue_capacity = 1;  // every same-window pair sheds
    config.server.policy = policy;
    FleetSim simulation(shared_toolkit(), config);
    const SimStats stats = simulation.run();
    const auto server_stats = simulation.server().stats();

    const std::string what =
        policy == server::AdmissionPolicy::kShedNewest ? "kShedNewest" : "kShedOldest";
    EXPECT_GT(server_stats.shed, 0u) << what;
    // Counted sheds == tickets that actually received a kShed response; no
    // request ends the run unanswered or double-counted.
    EXPECT_EQ(stats.responses_shed, server_stats.shed) << what;
    EXPECT_EQ(stats.responses_ok + stats.responses_error + stats.responses_shed,
              stats.derive_requests)
        << what;
    EXPECT_EQ(server_stats.submitted, stats.derive_requests) << what;
    EXPECT_EQ(server_stats.submitted,
              server_stats.answered + server_stats.shed + server_stats.pending)
        << what;
    EXPECT_EQ(server_stats.pending, 0u) << what;
    EXPECT_EQ(stats.responses_error, 0u) << what;
  }
}

// --- take_response ---------------------------------------------------------

TEST(FleetSimTest, TakeResponseRetiresTheTicket) {
  server::DeriveServer server(shared_toolkit(), {});
  const auto ticket = server.submit("not a request");
  server.drain();
  ASSERT_NE(server.response(ticket), nullptr);

  const auto taken = server.take_response(ticket);
  ASSERT_NE(taken, nullptr);
  // The blob survives the table erase; the ticket itself is retired.
  const auto decoded = server::DeriveResponse::decode(*taken);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, server::ResponseStatus::kError);
  EXPECT_EQ(server.response(ticket), nullptr);
  EXPECT_EQ(server.take_response(ticket), nullptr);
  EXPECT_EQ(server.take_response(9999), nullptr);  // never-issued ticket
}

}  // namespace
}  // namespace healers::sim
