// Unit tests for the simulated address space: mapping, guard gaps,
// permissions, faulting accesses, bulk and string helpers.
#include <gtest/gtest.h>

#include "memmodel/addr_space.hpp"

namespace healers::mem {
namespace {

TEST(AddressSpace, MappedRegionIsZeroFilledAndReadable) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(space.load8(region.base + i), 0u);
  }
}

TEST(AddressSpace, GuardGapsBetweenConsecutiveMappings) {
  AddressSpace space;
  const Region& a = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "a");
  const Region& b = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "b");
  EXPECT_GE(b.base, a.end() + 0x1000 - 64);  // at least the guard gap apart
  // The byte just past region a is unmapped.
  EXPECT_THROW((void)space.load8(a.end()), AccessFault);
}

TEST(AddressSpace, NullPageIsNeverMapped) {
  AddressSpace space;
  space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_THROW((void)space.load8(0), AccessFault);
  EXPECT_THROW((void)space.load8(7), AccessFault);
  EXPECT_THROW(space.store8(0xfff, 1), AccessFault);
}

TEST(AddressSpace, WildPointerFaults) {
  AddressSpace space;
  EXPECT_THROW((void)space.load8(AddressSpace::wild_pointer()), AccessFault);
}

TEST(AddressSpace, PermissionViolationsFault) {
  AddressSpace space;
  const Region& ro = space.map(32, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_EQ(space.load8(ro.base), 0u);
  EXPECT_THROW(space.store8(ro.base, 1), AccessFault);
  const Region& none = space.map(32, Perm::kNone, RegionKind::kScratch, "none");
  EXPECT_THROW((void)space.load8(none.base), AccessFault);
}

TEST(AddressSpace, FaultCarriesKindAddressAndDetail) {
  AddressSpace space;
  try {
    (void)space.load8(0x5);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::kSegv);
    EXPECT_EQ(fault.address(), 0x5u);
    EXPECT_NE(fault.detail().find("unmapped"), std::string::npos);
  }
}

TEST(AddressSpace, RangeCrossingRegionEndFaults) {
  AddressSpace space;
  const Region& region = space.map(16, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_NO_THROW(space.check(region.base, 16, Perm::kRead));
  EXPECT_THROW(space.check(region.base, 17, Perm::kRead), AccessFault);
  EXPECT_THROW(space.check(region.base + 9, 8, Perm::kRead), AccessFault);
}

TEST(AddressSpace, Load64Store64LittleEndianRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.store64(region.base, 0x1122334455667788ULL);
  EXPECT_EQ(space.load64(region.base), 0x1122334455667788ULL);
  EXPECT_EQ(space.load8(region.base), 0x88u);      // little-endian low byte first
  EXPECT_EQ(space.load8(region.base + 7), 0x11u);
}

TEST(AddressSpace, ReadWriteBytesRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  const std::vector<std::byte> data = {std::byte{1}, std::byte{2}, std::byte{3}};
  space.write_bytes(region.base + 5, data.data(), data.size());
  const auto back = space.read_bytes(region.base + 5, 3);
  EXPECT_EQ(back, data);
}

TEST(AddressSpace, ZeroLengthAccessesAlwaysSucceed) {
  AddressSpace space;
  EXPECT_NO_THROW(space.check(AddressSpace::wild_pointer(), 0, Perm::kWrite));
  EXPECT_TRUE(space.accessible(0, 0, Perm::kWrite));
  EXPECT_TRUE(space.read_bytes(0, 0).empty());
}

TEST(AddressSpace, CStringHelpersRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.write_cstring(region.base, "hello world");
  EXPECT_EQ(space.read_cstring(region.base), "hello world");
  EXPECT_EQ(space.read_cstring(region.base + 6), "world");
}

TEST(AddressSpace, UnterminatedCStringScanFaultsAtRegionEnd) {
  AddressSpace space;
  const Region& region = space.map(8, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 8; ++i) space.store8(region.base + i, 'A');
  EXPECT_THROW(space.read_cstring(region.base), AccessFault);
}

TEST(AddressSpace, CStringScanCapLimitsRunaway) {
  AddressSpace space;
  const Region& region = space.map(1024, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 1024; ++i) space.store8(region.base + i, 'A');
  EXPECT_THROW(space.read_cstring(region.base, 100), AccessFault);
}

TEST(AddressSpace, AccessibleMirrorsCheckWithoutThrowing) {
  AddressSpace space;
  const Region& rw = space.map(16, Perm::kReadWrite, RegionKind::kScratch, "rw");
  const Region& ro = space.map(16, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_TRUE(space.accessible(rw.base, 16, Perm::kWrite));
  EXPECT_FALSE(space.accessible(rw.base, 17, Perm::kWrite));
  EXPECT_TRUE(space.accessible(ro.base, 1, Perm::kRead));
  EXPECT_FALSE(space.accessible(ro.base, 1, Perm::kWrite));
  EXPECT_FALSE(space.accessible(0, 1, Perm::kRead));
}

TEST(AddressSpace, FindLocatesRegionByInteriorAddress) {
  AddressSpace space;
  const Region& region = space.map(100, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_EQ(space.find(region.base + 50)->label, "r");
  EXPECT_EQ(space.find(region.base + 99)->label, "r");
  EXPECT_EQ(space.find(region.end()), nullptr);
  EXPECT_EQ(space.find(region.base - 1), nullptr);
}

TEST(AddressSpace, MapAtRejectsOverlap) {
  AddressSpace space;
  space.map_at(0x100000, 0x100, Perm::kReadWrite, RegionKind::kScratch, "a");
  EXPECT_THROW(space.map_at(0x100080, 0x100, Perm::kReadWrite, RegionKind::kScratch, "b"),
               std::invalid_argument);
  EXPECT_THROW(space.map_at(0xfff90, 0x100, Perm::kReadWrite, RegionKind::kScratch, "c"),
               std::invalid_argument);
  // Abutting is fine.
  EXPECT_NO_THROW(space.map_at(0x100100, 0x100, Perm::kReadWrite, RegionKind::kScratch, "d"));
}

TEST(AddressSpace, UnmapMakesAddressesFaultAgain) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  space.store8(base, 42);
  space.unmap(base);
  EXPECT_THROW((void)space.load8(base), AccessFault);
  EXPECT_THROW(space.unmap(base), std::invalid_argument);
}

TEST(AddressSpace, ProtectChangesPermissions) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.store8(region.base, 1);
  space.protect(region.base, Perm::kRead);
  EXPECT_EQ(space.load8(region.base), 1u);
  EXPECT_THROW(space.store8(region.base, 2), AccessFault);
}

TEST(AddressSpace, ZeroSizeMapRejected) {
  AddressSpace space;
  EXPECT_THROW(space.map(0, Perm::kRead, RegionKind::kScratch, "z"), std::invalid_argument);
}

TEST(PermAllows, BitSemantics) {
  EXPECT_TRUE(allows(Perm::kReadWrite, Perm::kRead));
  EXPECT_TRUE(allows(Perm::kReadWrite, Perm::kWrite));
  EXPECT_TRUE(allows(Perm::kRead, Perm::kRead));
  EXPECT_FALSE(allows(Perm::kRead, Perm::kWrite));
  EXPECT_FALSE(allows(Perm::kNone, Perm::kRead));
}

}  // namespace
}  // namespace healers::mem
