// Unit tests for the simulated address space: mapping, guard gaps,
// permissions, faulting accesses, bulk and string helpers.
#include <gtest/gtest.h>

#include "memmodel/addr_space.hpp"

namespace healers::mem {
namespace {

TEST(AddressSpace, MappedRegionIsZeroFilledAndReadable) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(space.load8(region.base + i), 0u);
  }
}

TEST(AddressSpace, GuardGapsBetweenConsecutiveMappings) {
  AddressSpace space;
  const Region& a = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "a");
  const Region& b = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "b");
  EXPECT_GE(b.base, a.end() + 0x1000 - 64);  // at least the guard gap apart
  // The byte just past region a is unmapped.
  EXPECT_THROW((void)space.load8(a.end()), AccessFault);
}

TEST(AddressSpace, NullPageIsNeverMapped) {
  AddressSpace space;
  space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_THROW((void)space.load8(0), AccessFault);
  EXPECT_THROW((void)space.load8(7), AccessFault);
  EXPECT_THROW(space.store8(0xfff, 1), AccessFault);
}

TEST(AddressSpace, WildPointerFaults) {
  AddressSpace space;
  EXPECT_THROW((void)space.load8(AddressSpace::wild_pointer()), AccessFault);
}

TEST(AddressSpace, PermissionViolationsFault) {
  AddressSpace space;
  const Region& ro = space.map(32, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_EQ(space.load8(ro.base), 0u);
  EXPECT_THROW(space.store8(ro.base, 1), AccessFault);
  const Region& none = space.map(32, Perm::kNone, RegionKind::kScratch, "none");
  EXPECT_THROW((void)space.load8(none.base), AccessFault);
}

TEST(AddressSpace, FaultCarriesKindAddressAndDetail) {
  AddressSpace space;
  try {
    (void)space.load8(0x5);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::kSegv);
    EXPECT_EQ(fault.address(), 0x5u);
    EXPECT_NE(fault.detail().find("unmapped"), std::string::npos);
  }
}

TEST(AddressSpace, RangeCrossingRegionEndFaults) {
  AddressSpace space;
  const Region& region = space.map(16, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_NO_THROW(space.check(region.base, 16, Perm::kRead));
  EXPECT_THROW(space.check(region.base, 17, Perm::kRead), AccessFault);
  EXPECT_THROW(space.check(region.base + 9, 8, Perm::kRead), AccessFault);
}

TEST(AddressSpace, Load64Store64LittleEndianRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.store64(region.base, 0x1122334455667788ULL);
  EXPECT_EQ(space.load64(region.base), 0x1122334455667788ULL);
  EXPECT_EQ(space.load8(region.base), 0x88u);      // little-endian low byte first
  EXPECT_EQ(space.load8(region.base + 7), 0x11u);
}

TEST(AddressSpace, ReadWriteBytesRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  const std::vector<std::byte> data = {std::byte{1}, std::byte{2}, std::byte{3}};
  space.write_bytes(region.base + 5, data.data(), data.size());
  const auto back = space.read_bytes(region.base + 5, 3);
  EXPECT_EQ(back, data);
}

TEST(AddressSpace, ZeroLengthAccessesAlwaysSucceed) {
  AddressSpace space;
  EXPECT_NO_THROW(space.check(AddressSpace::wild_pointer(), 0, Perm::kWrite));
  EXPECT_TRUE(space.accessible(0, 0, Perm::kWrite));
  EXPECT_TRUE(space.read_bytes(0, 0).empty());
}

TEST(AddressSpace, CStringHelpersRoundTrip) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.write_cstring(region.base, "hello world");
  EXPECT_EQ(space.read_cstring(region.base), "hello world");
  EXPECT_EQ(space.read_cstring(region.base + 6), "world");
}

TEST(AddressSpace, UnterminatedCStringScanFaultsAtRegionEnd) {
  AddressSpace space;
  const Region& region = space.map(8, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 8; ++i) space.store8(region.base + i, 'A');
  EXPECT_THROW(space.read_cstring(region.base), AccessFault);
}

TEST(AddressSpace, CStringScanCapLimitsRunaway) {
  AddressSpace space;
  const Region& region = space.map(1024, Perm::kReadWrite, RegionKind::kScratch, "r");
  for (std::uint64_t i = 0; i < 1024; ++i) space.store8(region.base + i, 'A');
  EXPECT_THROW(space.read_cstring(region.base, 100), AccessFault);
}

TEST(AddressSpace, AccessibleMirrorsCheckWithoutThrowing) {
  AddressSpace space;
  const Region& rw = space.map(16, Perm::kReadWrite, RegionKind::kScratch, "rw");
  const Region& ro = space.map(16, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_TRUE(space.accessible(rw.base, 16, Perm::kWrite));
  EXPECT_FALSE(space.accessible(rw.base, 17, Perm::kWrite));
  EXPECT_TRUE(space.accessible(ro.base, 1, Perm::kRead));
  EXPECT_FALSE(space.accessible(ro.base, 1, Perm::kWrite));
  EXPECT_FALSE(space.accessible(0, 1, Perm::kRead));
}

TEST(AddressSpace, FindLocatesRegionByInteriorAddress) {
  AddressSpace space;
  const Region& region = space.map(100, Perm::kReadWrite, RegionKind::kScratch, "r");
  EXPECT_EQ(space.find(region.base + 50)->label, "r");
  EXPECT_EQ(space.find(region.base + 99)->label, "r");
  EXPECT_EQ(space.find(region.end()), nullptr);
  EXPECT_EQ(space.find(region.base - 1), nullptr);
}

TEST(AddressSpace, MapAtRejectsOverlap) {
  AddressSpace space;
  space.map_at(0x100000, 0x100, Perm::kReadWrite, RegionKind::kScratch, "a");
  EXPECT_THROW(space.map_at(0x100080, 0x100, Perm::kReadWrite, RegionKind::kScratch, "b"),
               std::invalid_argument);
  EXPECT_THROW(space.map_at(0xfff90, 0x100, Perm::kReadWrite, RegionKind::kScratch, "c"),
               std::invalid_argument);
  // Abutting is fine.
  EXPECT_NO_THROW(space.map_at(0x100100, 0x100, Perm::kReadWrite, RegionKind::kScratch, "d"));
}

TEST(AddressSpace, UnmapMakesAddressesFaultAgain) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  space.store8(base, 42);
  space.unmap(base);
  EXPECT_THROW((void)space.load8(base), AccessFault);
  EXPECT_THROW(space.unmap(base), std::invalid_argument);
}

TEST(AddressSpace, ProtectChangesPermissions) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.store8(region.base, 1);
  space.protect(region.base, Perm::kRead);
  EXPECT_EQ(space.load8(region.base), 1u);
  EXPECT_THROW(space.store8(region.base, 2), AccessFault);
}

TEST(AddressSpace, ZeroSizeMapRejected) {
  AddressSpace space;
  EXPECT_THROW(space.map(0, Perm::kRead, RegionKind::kScratch, "z"), std::invalid_argument);
}

TEST(AddressSpace, Load64StraddlingRegionEndFaults) {
  AddressSpace space;
  space.map_at(0x200000, 12, Perm::kReadWrite, RegionKind::kScratch, "r");
  // A 64-bit access is one checked range op: bytes [5, 13) run past the
  // 12-byte region, so the whole access faults with the range-fault address
  // (the region end), not the first out-of-bounds byte.
  EXPECT_EQ(space.load64(0x200000 + 4), 0u);  // [4, 12) fits exactly
  try {
    (void)space.load64(0x200000 + 5);
    FAIL() << "expected AccessFault";
  } catch (const AccessFault& fault) {
    EXPECT_EQ(fault.kind(), FaultKind::kSegv);
    EXPECT_EQ(fault.address(), 0x200000u + 12u);
    EXPECT_NE(fault.detail().find("runs past region"), std::string::npos);
  }
  // A straddling store64 faults before writing anything.
  EXPECT_THROW(space.store64(0x200000 + 5, ~std::uint64_t{0}), AccessFault);
  for (std::uint64_t i = 0; i < 12; ++i) EXPECT_EQ(space.load8(0x200000 + i), 0u);
}

TEST(AddressSpace, Load64AcrossAbuttingRegionsFaults) {
  AddressSpace space;
  space.map_at(0x300000, 16, Perm::kReadWrite, RegionKind::kScratch, "lo");
  space.map_at(0x300010, 16, Perm::kReadWrite, RegionKind::kScratch, "hi");
  // Ranged accesses must lie within ONE region even when the next one abuts
  // (only the per-byte walkers cross seams).
  EXPECT_EQ(space.load64(0x300000 + 8), 0u);
  EXPECT_EQ(space.load64(0x300010), 0u);
  EXPECT_THROW((void)space.load64(0x300000 + 12), AccessFault);
}

TEST(AddressSpace, SpanExposesRunAfterOneCheck) {
  AddressSpace space;
  const Region& region = space.map(32, Perm::kReadWrite, RegionKind::kScratch, "r");
  space.write_cstring(region.base, "span me");
  const std::byte* p = space.span(region.base, 8, Perm::kRead);
  EXPECT_EQ(static_cast<char>(p[0]), 's');
  EXPECT_EQ(static_cast<char>(p[6]), 'e');
  EXPECT_EQ(std::to_integer<std::uint8_t>(p[7]), 0u);
  // span faults exactly like check(): boundary crossing and permissions.
  EXPECT_THROW((void)space.span(region.base + 30, 4, Perm::kRead), AccessFault);
  const Region& ro = space.map(16, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_THROW((void)space.span(ro.base, 1, Perm::kWrite), AccessFault);
  EXPECT_NO_THROW((void)space.span(ro.base, 16, Perm::kRead));
}

TEST(AddressSpace, MutableSpanPrivatizesWholeRun) {
  AddressSpace space;
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  (void)space.snapshot();  // seals the region; private tracking starts clean
  EXPECT_FALSE(space.find(region.base)->dirty());
  EXPECT_EQ(space.find(region.base)->private_pages(), 0u);
  std::byte* p = space.mutable_span(region.base + 8, 16);
  p[0] = std::byte{42};
  const Region* after = space.find(region.base);
  EXPECT_TRUE(after->dirty());
  // The whole run shares one COW page here, privatized by the write barrier.
  EXPECT_EQ(after->private_pages(), 1u);
}

TEST(AddressSpace, SpanExtentMeasuresAccessibleRuns) {
  AddressSpace space;
  const Region& rw = space.map(48, Perm::kReadWrite, RegionKind::kScratch, "rw");
  EXPECT_EQ(space.span_extent(rw.base, Perm::kRead), 48u);
  EXPECT_EQ(space.span_extent(rw.base + 40, Perm::kWrite), 8u);
  EXPECT_EQ(space.span_extent(rw.end(), Perm::kRead), 0u);       // guard gap
  EXPECT_EQ(space.span_extent(0, Perm::kRead), 0u);              // null page
  const Region& ro = space.map(16, Perm::kRead, RegionKind::kRodata, "ro");
  EXPECT_EQ(space.span_extent(ro.base, Perm::kRead), 16u);
  EXPECT_EQ(space.span_extent(ro.base, Perm::kWrite), 0u);
  // Backward extents end at the given address inclusive.
  EXPECT_EQ(space.span_extent_back(rw.base + 10, Perm::kRead), 11u);
  EXPECT_EQ(space.span_extent_back(rw.base, Perm::kRead), 1u);
  EXPECT_EQ(space.span_extent_back(ro.base + 5, Perm::kWrite), 0u);
}

TEST(AddressSpace, ScanTerminatorFindsNulAcrossAbuttingRegions) {
  AddressSpace space;
  space.map_at(0x400000, 8, Perm::kReadWrite, RegionKind::kScratch, "lo");
  space.map_at(0x400008, 8, Perm::kReadWrite, RegionKind::kScratch, "hi");
  for (std::uint64_t i = 0; i < 11; ++i) space.store8(0x400000 + i, 'x');
  // NUL at offset 11, past the seam between the abutting regions.
  const auto scan = space.scan_terminator(0x400000, 64);
  EXPECT_TRUE(scan.found);
  EXPECT_EQ(scan.scanned, 11u);
  // Cap exhaustion before the NUL.
  const auto capped = space.scan_terminator(0x400000, 5);
  EXPECT_FALSE(capped.found);
  EXPECT_EQ(capped.scanned, 5u);
  // Unterminated run: scanned stops at the first unreadable byte.
  space.unmap(0x400008);
  for (std::uint64_t i = 0; i < 8; ++i) space.store8(0x400000 + i, 'x');
  const auto cut = space.scan_terminator(0x400000, 64);
  EXPECT_FALSE(cut.found);
  EXPECT_EQ(cut.scanned, 8u);
}

TEST(AddressSpace, RegionCacheCountsHitsAndSurvivesInvalidation) {
  AddressSpace space;
  ASSERT_TRUE(space.region_cache_enabled());
  const Region& region = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "r");
  const Addr base = region.base;
  (void)space.load8(base);  // warms the cache
  const std::uint64_t hits_before = space.region_cache_hits();
  for (int i = 0; i < 16; ++i) (void)space.load8(base + static_cast<std::uint64_t>(i));
  EXPECT_GE(space.region_cache_hits(), hits_before + 16);
  // Layout mutations flush: the stale entry must not resurface after unmap.
  space.unmap(base);
  EXPECT_THROW((void)space.load8(base), AccessFault);
  // Disabling the cache freezes the counters and keeps results identical.
  const Region& other = space.map(64, Perm::kReadWrite, RegionKind::kScratch, "o");
  space.store8(other.base, 7);
  space.set_region_cache_enabled(false);
  const std::uint64_t hits = space.region_cache_hits();
  const std::uint64_t misses = space.region_cache_misses();
  EXPECT_EQ(space.load8(other.base), 7u);
  EXPECT_EQ(space.region_cache_hits(), hits);
  EXPECT_EQ(space.region_cache_misses(), misses);
}

TEST(PermAllows, BitSemantics) {
  EXPECT_TRUE(allows(Perm::kReadWrite, Perm::kRead));
  EXPECT_TRUE(allows(Perm::kReadWrite, Perm::kWrite));
  EXPECT_TRUE(allows(Perm::kRead, Perm::kRead));
  EXPECT_FALSE(allows(Perm::kRead, Perm::kWrite));
  EXPECT_FALSE(allows(Perm::kNone, Perm::kRead));
}

}  // namespace
}  // namespace healers::mem
