// Cross-module property tests — the invariants the paper's claims rest on:
//
//  P1 (hardening): re-running the ENTIRE fault-injection campaign with the
//     robustness wrapper preloaded produces ZERO robustness failures, for
//     every function of every stock library ("fix a large percentage of
//     such problems" — here: all of the probed class).
//  P2 (transparency): for valid arguments, every wrapper preserves the base
//     library's return value ("transparent protection").
//  P3 (determinism): identical seeds produce byte-identical campaign XML.
//  P4 (XML): randomized documents round-trip through serialize/parse.
//  P5 (security liveness): the security wrapper never fires on overflow-free
//     random heap workloads (no false positives).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "injector/injector.hpp"
#include "testbed.hpp"
#include "wrappers/wrappers.hpp"

namespace healers {
namespace {

using testbed::I;
using testbed::P;

linker::LibraryCatalog& stock_catalog() {
  static linker::LibraryCatalog catalog = [] {
    linker::LibraryCatalog c;
    c.install(&testbed::libsimc());
    c.install(&testbed::libsimio());
    c.install(&testbed::libsimm());
    return c;
  }();
  return catalog;
}

const injector::CampaignResult& campaign_for(const simlib::SharedLibrary& lib) {
  static std::map<std::string, injector::CampaignResult> cache;
  auto it = cache.find(lib.soname());
  if (it == cache.end()) {
    injector::InjectorConfig config;
    config.seed = 33;
    config.variants = 1;
    injector::FaultInjector injector(stock_catalog(), config);
    it = cache.emplace(lib.soname(), injector.run_campaign(lib).value()).first;
  }
  return it->second;
}

// --- P1: full-lattice hardening sweep ---------------------------------------

struct HardeningCase {
  const simlib::SharedLibrary* lib;
  std::string function;
};

void PrintTo(const HardeningCase& c, std::ostream* os) { *os << c.function; }

class FullHardeningSweep : public ::testing::TestWithParam<HardeningCase> {};

TEST_P(FullHardeningSweep, WrappedFunctionNeverFailsAnyProbe) {
  const auto& [lib, name] = GetParam();
  const simlib::Symbol* symbol = lib->find(name);
  const auto page = parser::parse_manpage(symbol->manpage).value();
  if (page.noreturn) GTEST_SKIP() << "noreturn";
  const injector::CampaignResult& campaign = campaign_for(*lib);

  int probes = 0;
  for (std::size_t i = 0; i < page.proto.params.size(); ++i) {
    for (const lattice::TestTypeId id :
         lattice::test_types_for(page.proto.params[i].type.classify())) {
      for (std::size_t case_index = 0;; ++case_index) {
        auto proc = testbed::make_process();
        proc->state().stdin_content = "a line of console input for the probe\n";
        proc->preload(wrappers::make_robustness_wrapper(*lib, campaign).value());
        Rng rng(7 + case_index);
        lattice::ValueFactory factory(*proc, rng);
        const auto cases = factory.cases_of(id, 1);
        if (case_index >= cases.size()) break;
        std::vector<simlib::SimValue> args;
        for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
          args.push_back(j == i ? cases[case_index].value
                                : factory.safe_value(page, static_cast<int>(j) + 1));
        }
        const auto outcome = proc->supervised_call(name, std::move(args));
        ++probes;
        ASSERT_FALSE(outcome.robustness_failure())
            << name << " arg" << (i + 1) << " " << lattice::to_string(id) << " case "
            << case_index << ": " << outcome.to_string();
      }
    }
  }
  if (!page.proto.params.empty()) {
    EXPECT_GT(probes, 0);
  }
}

std::vector<HardeningCase> all_cases() {
  std::vector<HardeningCase> cases;
  for (const simlib::SharedLibrary* lib :
       {&testbed::libsimc(), &testbed::libsimio(), &testbed::libsimm()}) {
    for (const std::string& name : lib->names()) {
      cases.push_back(HardeningCase{lib, name});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllStockFunctions, FullHardeningSweep,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.function; });

// --- P2: transparency for valid calls ----------------------------------------

class TransparencySweep : public ::testing::TestWithParam<HardeningCase> {};

TEST_P(TransparencySweep, WrappersPreserveValidCallResults) {
  const auto& [lib, name] = GetParam();
  const simlib::Symbol* symbol = lib->find(name);
  const auto page = parser::parse_manpage(symbol->manpage).value();
  if (page.noreturn || page.stateful) GTEST_SKIP() << "noreturn/stateful";

  // Build identical valid calls in two identical fresh processes — one
  // bare, one with robustness+security+profiling stacked.
  auto build_args = [&page](linker::Process& proc) {
    Rng rng(123);
    lattice::ValueFactory factory(proc, rng);
    std::vector<simlib::SimValue> args;
    for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
      args.push_back(factory.safe_value(page, static_cast<int>(j) + 1));
    }
    return args;
  };

  auto bare = testbed::make_process("bare");
  const auto bare_args = build_args(*bare);
  const auto bare_outcome = bare->supervised_call(name, bare_args);

  auto wrapped = testbed::make_process("wrapped");
  wrapped->preload(wrappers::make_profiling_wrapper(*lib).value());
  wrapped->preload(wrappers::make_robustness_wrapper(*lib, campaign_for(*lib)).value());
  const auto wrapped_args = build_args(*wrapped);
  const auto wrapped_outcome = wrapped->supervised_call(name, wrapped_args);

  ASSERT_EQ(bare_outcome.kind, wrapped_outcome.kind) << wrapped_outcome.to_string();
  // Pointer returns may differ by address (identical layout here, but keep
  // the comparison meaningful): compare kind-specific content.
  if (page.proto.return_type.is_pointer()) {
    EXPECT_EQ(bare_outcome.ret.as_ptr() == 0, wrapped_outcome.ret.as_ptr() == 0);
  } else if (page.proto.return_type.classify() == parser::TypeClass::kFloating) {
    const double a = bare_outcome.ret.as_double();
    const double b = wrapped_outcome.ret.as_double();
    EXPECT_TRUE((std::isnan(a) && std::isnan(b)) || a == b);
  } else {
    EXPECT_EQ(bare_outcome.ret.as_int(), wrapped_outcome.ret.as_int());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStockFunctions, TransparencySweep,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.function; });

// --- P3: campaign determinism ---------------------------------------------------

TEST(CampaignDeterminism, IdenticalSeedsProduceIdenticalXml) {
  injector::InjectorConfig config;
  config.seed = 77;
  config.variants = 2;
  injector::FaultInjector a(stock_catalog(), config);
  injector::FaultInjector b(stock_catalog(), config);
  const std::string xa = xml::serialize(a.run_campaign(testbed::libsimm()).value().to_xml());
  const std::string xb = xml::serialize(b.run_campaign(testbed::libsimm()).value().to_xml());
  EXPECT_EQ(xa, xb);
}

TEST(CampaignDeterminism, DifferentSeedsStillDeriveSameChecksForLibsimm) {
  // The derived API is a property of the library, not of the seed — at
  // least for the math library where no probe is randomized enough to
  // change any verdict.
  injector::InjectorConfig c1;
  c1.seed = 1;
  injector::InjectorConfig c2;
  c2.seed = 999;
  injector::FaultInjector a(stock_catalog(), c1);
  injector::FaultInjector b(stock_catalog(), c2);
  const auto ra = a.run_campaign(testbed::libsimm()).value();
  const auto rb = b.run_campaign(testbed::libsimm()).value();
  for (std::size_t i = 0; i < ra.specs.size(); ++i) {
    EXPECT_EQ(ra.specs[i].total_failures, rb.specs[i].total_failures)
        << ra.specs[i].function;
  }
}

// --- P4: randomized XML round trips ----------------------------------------------

TEST(XmlFuzzRoundTrip, RandomTreesSurviveSerializeParse) {
  Rng rng(4242);
  const std::string charset = "abc<>&\"' xyz0123456789_-";
  auto random_text = [&rng, &charset](std::size_t max_len) {
    std::string out;
    const std::size_t len = rng.below(max_len + 1);
    for (std::size_t i = 0; i < len; ++i) out += charset[rng.below(charset.size())];
    return out;
  };
  // Element text is whitespace-trimmed by the parser (by design — HEALERS
  // documents carry no significant edge whitespace), so trimmed text is the
  // round-trippable domain.
  auto random_element_text = [&random_text](std::size_t max_len) {
    std::string out = random_text(max_len);
    while (!out.empty() && out.front() == ' ') out.erase(out.begin());
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out;
  };
  std::function<void(xml::Node&, int)> grow = [&](xml::Node& node, int depth) {
    const std::uint64_t attrs = rng.below(4);
    for (std::uint64_t i = 0; i < attrs; ++i) {
      node.set_attr("k" + std::to_string(i), random_text(12));
    }
    if (depth >= 4) {
      node.set_text(random_element_text(16));
      return;
    }
    const std::uint64_t kids = rng.below(4);
    if (kids == 0) {
      node.set_text(random_element_text(16));
      return;
    }
    for (std::uint64_t i = 0; i < kids; ++i) {
      grow(node.add_child("n" + std::to_string(depth) + "_" + std::to_string(i)), depth + 1);
    }
  };

  for (int round = 0; round < 50; ++round) {
    xml::Node root("doc");
    grow(root, 0);
    const std::string doc = xml::serialize(root);
    auto parsed = xml::parse(doc);
    ASSERT_TRUE(parsed.ok()) << "round " << round << ": " << parsed.error().message << "\n"
                             << doc;
    EXPECT_EQ(xml::serialize(parsed.value()), doc) << "round " << round;
  }
}

// --- P6: whole-workload transparency ----------------------------------------------
// A realistic random workload (string building, heap churn, file I/O) run
// bare and under stacked profiling+security wrappers must leave IDENTICAL
// observable state: same return values, same filesystem contents, same
// stdout. This is "transparent protection" at application granularity.

void run_random_workload(linker::Process& proc, std::uint64_t seed,
                         std::vector<std::int64_t>& observed) {
  using testbed::I;
  using testbed::P;
  Rng rng(seed);
  proc.state().fs.put("/w/in", "alpha\nbeta\ngamma\n");
  std::vector<mem::Addr> live;
  for (int op = 0; op < 300; ++op) {
    switch (rng.below(6)) {
      case 0: {
        const mem::Addr p =
            proc.call("malloc", {I(16 + static_cast<std::int64_t>(rng.below(64)))}).as_ptr();
        if (p != 0) {
          proc.call("strcpy", {P(p), P(proc.rodata_cstring("content"))});
          live.push_back(p);
        }
        break;
      }
      case 1:
        if (!live.empty()) {
          proc.call("free", {P(live.back())});
          live.pop_back();
        }
        break;
      case 2:
        observed.push_back(
            proc.call("strlen", {P(proc.rodata_cstring("measure me"))}).as_int());
        break;
      case 3:
        observed.push_back(proc.call("atoi", {P(proc.rodata_cstring("271828"))}).as_int());
        break;
      case 4: {
        const auto file = proc.call("fopen", {P(proc.rodata_cstring("/w/out")),
                                              P(proc.rodata_cstring("a"))});
        if (file.as_ptr() != 0) {
          proc.call("fputs", {P(proc.rodata_cstring("line\n")), file});
          proc.call("fclose", {file});
        }
        break;
      }
      case 5:
        proc.call("printf", {P(proc.rodata_cstring("%d-")),
                             I(static_cast<std::int64_t>(rng.below(100)))});
        break;
    }
  }
  for (const mem::Addr p : live) proc.call("free", {P(p)});
}

TEST(WorkloadTransparency, StackedWrappersPreserveObservableState) {
  std::vector<std::int64_t> bare_values;
  auto bare = testbed::make_process("bare");
  run_random_workload(*bare, 99, bare_values);

  std::vector<std::int64_t> wrapped_values;
  auto wrapped = testbed::make_process("wrapped");
  wrapped->preload(wrappers::make_profiling_wrapper(testbed::libsimc()).value());
  wrapped->preload(wrappers::make_profiling_wrapper(testbed::libsimio()).value());
  wrapped->preload(wrappers::make_security_wrapper(testbed::libsimc()).value());
  run_random_workload(*wrapped, 99, wrapped_values);

  EXPECT_EQ(bare_values, wrapped_values);
  EXPECT_EQ(bare->state().stdout_capture, wrapped->state().stdout_capture);
  ASSERT_NE(bare->state().fs.contents("/w/out"), nullptr);
  ASSERT_NE(wrapped->state().fs.contents("/w/out"), nullptr);
  EXPECT_EQ(*bare->state().fs.contents("/w/out"), *wrapped->state().fs.contents("/w/out"));
}

// --- P5: no false positives from the security wrapper ----------------------------

TEST(SecurityLiveness, RandomOverflowFreeWorkloadNeverAborts) {
  auto proc = testbed::make_process();
  proc->preload(wrappers::make_security_wrapper(testbed::libsimc()).value());
  Rng rng(2718);
  std::vector<std::pair<mem::Addr, std::uint64_t>> live;  // (ptr, size)
  for (int op = 0; op < 1500; ++op) {
    const std::uint64_t kind = rng.below(4);
    if (kind == 0 || live.empty()) {
      const std::uint64_t size = 8 + rng.below(120);
      const mem::Addr p = proc->call("malloc", {I(static_cast<std::int64_t>(size))}).as_ptr();
      if (p != 0) live.emplace_back(p, size);
    } else if (kind == 1) {
      const auto& [p, size] = live[rng.below(live.size())];
      // In-bounds strcpy (payload shorter than the allocation).
      const std::string payload(rng.below(size), 'x');
      const mem::Addr src = proc->alloc_cstring(payload);
      ASSERT_NO_THROW(proc->call("strcpy", {P(p), P(src)})) << "op " << op;
    } else if (kind == 2) {
      const auto& [p, size] = live[rng.below(live.size())];
      ASSERT_NO_THROW(
          proc->call("memset", {P(p), I(7), I(static_cast<std::int64_t>(size))}))
          << "op " << op;
    } else {
      const std::size_t victim = rng.below(live.size());
      ASSERT_NO_THROW(proc->call("free", {P(live[victim].first)})) << "op " << op;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
}

}  // namespace
}  // namespace healers
