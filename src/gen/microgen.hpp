// Micro-generator framework (paper §2.3, Fig 3, and [5]).
//
// "The functionality of a wrapper generator is decomposed into a number of
// features, each supported by a micro-generator. Each micro-generator
// generates a fragment of the prefix and postfix code of a function. The
// micro-generators can be combined in a variety of ways to generate new
// wrapper types."
//
// Every micro-generator here produces BOTH artifacts from the same object:
//   * C source fragments (prefix/postfix), assembled by the composer into
//     the wrapper function text of Fig 3, and
//   * a RuntimeHook, assembled into an executable interposition installed
//     in the simulated linker.
// Producing both from one object is what keeps the demonstrated behaviour
// and the emitted code from drifting apart (DESIGN.md).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "injector/robust_spec.hpp"
#include "parser/ctypes.hpp"
#include "parser/manpage.hpp"
#include "simlib/value.hpp"

namespace healers::gen {

class WrapperStats;

// Everything a micro-generator may consult about the function being wrapped.
struct GenContext {
  const parser::FunctionProto& proto;
  int function_id = 0;                             // index into stats arrays (Fig 3: 1206)
  const injector::RobustSpec* spec = nullptr;      // robust API, when derived
  const parser::ManPage* page = nullptr;           // annotations, when parsed
};

// Runtime behaviour contributed by one micro-generator for one function.
// prefix() may short-circuit: returning non-null skips the base call, all
// remaining prefixes, and all postfixes — the fault-containment "return an
// error instead of crashing" path (generated C would `return err;` there).
// The pointee must outlive the call (hooks return the address of a member);
// a pointer return keeps optional<SimValue> copies off the per-call hot path.
class RuntimeHook {
 public:
  virtual ~RuntimeHook() = default;
  virtual const simlib::SimValue* prefix(simlib::CallContext& ctx) {
    (void)ctx;
    return nullptr;
  }
  virtual void postfix(simlib::CallContext& ctx, simlib::SimValue& ret) {
    (void)ctx;
    (void)ret;
  }
};

using RuntimeHookPtr = std::unique_ptr<RuntimeHook>;

class MicroGenerator {
 public:
  virtual ~MicroGenerator() = default;

  // Fig 3 fragment label ("prototype", "function exectime", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  // C source fragments. Empty string = no fragment. `stats` identifies the
  // wrapper's shared state arrays in both artifacts.
  [[nodiscard]] virtual std::string prefix_code(const GenContext& ctx) const = 0;
  [[nodiscard]] virtual std::string postfix_code(const GenContext& ctx) const = 0;

  // Runtime hook for one function; nullptr when the feature is
  // code-structure only (prototype, caller).
  [[nodiscard]] virtual RuntimeHookPtr make_hook(const GenContext& ctx,
                                                 WrapperStats& stats) const = 0;
};

using MicroGeneratorPtr = std::shared_ptr<MicroGenerator>;

// --- the standard micro-generators of Fig 3 ---
// prototype: signature + `ret` declaration + final `return ret;`
[[nodiscard]] MicroGeneratorPtr prototype_gen();
// caller: `ret = (*addr_f)(a1, ...);` — the call site itself
[[nodiscard]] MicroGeneratorPtr caller_gen();
// function exectime: rdtsc around the call, per-function cycle accumulation
[[nodiscard]] MicroGeneratorPtr exectime_gen();
// collect errors: process-wide errno histogram
[[nodiscard]] MicroGeneratorPtr collect_errors_gen();
// func errors: per-function errno histogram
[[nodiscard]] MicroGeneratorPtr func_errors_gen();
// call counter: per-function call count
[[nodiscard]] MicroGeneratorPtr call_counter_gen();
// log call: per-call trace record (symbol + rendered arguments)
[[nodiscard]] MicroGeneratorPtr log_call_gen();

}  // namespace healers::gen
