#include "gen/composer.hpp"

#include <stdexcept>

#include "parser/manpage.hpp"

namespace healers::gen {

ComposedWrapper::ComposedWrapper(std::string name, std::shared_ptr<WrapperStats> stats)
    : name_(std::move(name)), stats_(std::move(stats)) {
  if (stats_ == nullptr) throw std::invalid_argument("ComposedWrapper: null stats");
}

void ComposedWrapper::wrap_function(const GenContext& ctx,
                                    const std::vector<MicroGeneratorPtr>& gens) {
  Entry entry;
  entry.function_id = ctx.function_id;
  stats_->register_function(ctx.function_id, ctx.proto.name);
  for (const MicroGeneratorPtr& gen : gens) {
    RuntimeHookPtr hook = gen->make_hook(ctx, *stats_);
    if (hook != nullptr) entry.hooks.push_back(std::move(hook));
  }
  entries_[ctx.proto.name] = std::move(entry);
}

bool ComposedWrapper::wraps(const std::string& symbol) const {
  return entries_.contains(symbol);
}

std::vector<std::string> ComposedWrapper::wrapped_symbols() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [symbol, _] : entries_) out.push_back(symbol);
  return out;
}

simlib::SimValue ComposedWrapper::call(const std::string& symbol, simlib::CallContext& ctx,
                                       const linker::NextFn& next) {
  auto it = entries_.find(symbol);
  if (it == entries_.end()) return next(ctx);  // not wrapped: pass through
  return run_entry(it->second, ctx, next);
}

const void* ComposedWrapper::symbol_handle(const std::string& symbol) const {
  const auto it = entries_.find(symbol);
  return it == entries_.end() ? nullptr : static_cast<const void*>(&it->second);
}

simlib::SimValue ComposedWrapper::call_with_handle(const void* handle,
                                                   const std::string& /*symbol*/,
                                                   simlib::CallContext& ctx,
                                                   const linker::NextFn& next) {
  // The handle came from symbol_handle on this wrapper; entries_ only grows
  // (wrap_function), and std::map nodes never move, so the Entry is live.
  return run_entry(*const_cast<Entry*>(static_cast<const Entry*>(handle)), ctx, next);
}

simlib::SimValue ComposedWrapper::run_entry(Entry& entry, simlib::CallContext& ctx,
                                            const linker::NextFn& next) {
  // Prefixes in generator order; a short-circuit is the generated early
  // return (fault containment) — call and postfixes are skipped. Each
  // fragment executed charges the virtual cycle clock, as the generated
  // code's instructions would on real hardware (the per-feature cost the
  // A1 ablation measures).
  constexpr std::uint64_t kFragmentCycles = 3;
  for (const RuntimeHookPtr& hook : entry.hooks) {
    ctx.machine.add_cycles(kFragmentCycles);
    if (const simlib::SimValue* contained = hook->prefix(ctx)) {
      return *contained;
    }
  }
  simlib::SimValue ret = next(ctx);
  // Postfixes in reverse order (Fig 3 nesting).
  for (auto rit = entry.hooks.rbegin(); rit != entry.hooks.rend(); ++rit) {
    ctx.machine.add_cycles(kFragmentCycles);
    (*rit)->postfix(ctx, ret);
  }
  return ret;
}

std::string emit_wrapper_source(const GenContext& ctx,
                                const std::vector<MicroGeneratorPtr>& gens) {
  std::string out;
  for (const MicroGeneratorPtr& gen : gens) {
    const std::string frag = gen->prefix_code(ctx);
    if (frag.empty()) continue;
    out += "/* Prefix code by micro-gen " + gen->name() + " */\n";
    out += frag;
  }
  for (auto rit = gens.rbegin(); rit != gens.rend(); ++rit) {
    const std::string frag = (*rit)->postfix_code(ctx);
    if (frag.empty()) continue;
    out += "/* Postfix code by micro-gen " + (*rit)->name() + " */\n";
    out += frag;
  }
  return out;
}

WrapperBuilder::WrapperBuilder(std::string wrapper_name) : name_(std::move(wrapper_name)) {}

WrapperBuilder& WrapperBuilder::add(MicroGeneratorPtr gen) {
  if (gen == nullptr) throw std::invalid_argument("WrapperBuilder::add: null generator");
  gens_.push_back(std::move(gen));
  return *this;
}

namespace {

// Shared per-function iteration for build() and emit_library_source().
struct WrapTarget {
  parser::ManPage page;
  int function_id;
  const injector::RobustSpec* spec;
};

Result<std::vector<WrapTarget>> collect_targets(const simlib::SharedLibrary& lib,
                                                const injector::CampaignResult* campaign) {
  std::vector<WrapTarget> out;
  int next_id = kFirstFunctionId;
  for (const std::string& name : lib.names()) {
    const simlib::Symbol* symbol = lib.find(name);
    auto page = parser::parse_manpage(symbol->manpage);
    if (!page.ok()) {
      return Error("wrapping " + name + ": " + page.error().message);
    }
    WrapTarget target{std::move(page).take(), next_id++, nullptr};
    if (campaign != nullptr) target.spec = campaign->spec(name);
    out.push_back(std::move(target));
  }
  if (out.empty()) return Error("library " + lib.soname() + " has no wrappable functions");
  return out;
}

}  // namespace

Result<std::shared_ptr<ComposedWrapper>> WrapperBuilder::build(
    const simlib::SharedLibrary& lib, const injector::CampaignResult* campaign) const {
  auto targets = collect_targets(lib, campaign);
  if (!targets.ok()) return targets.error();
  auto wrapper = std::make_shared<ComposedWrapper>(name_, std::make_shared<WrapperStats>());
  for (const WrapTarget& target : targets.value()) {
    GenContext ctx{target.page.proto, target.function_id, target.spec, &target.page};
    wrapper->wrap_function(ctx, gens_);
  }
  return wrapper;
}

Result<std::string> WrapperBuilder::emit_library_source(
    const simlib::SharedLibrary& lib, const injector::CampaignResult* campaign) const {
  auto targets = collect_targets(lib, campaign);
  if (!targets.ok()) return targets.error();
  std::string out = "/* " + name_ + ": generated wrapper for " + lib.soname() + " */\n\n";
  for (const WrapTarget& target : targets.value()) {
    GenContext ctx{target.page.proto, target.function_id, target.spec, &target.page};
    out += emit_wrapper_source(ctx, gens_);
    out += '\n';
  }
  return out;
}

}  // namespace healers::gen
