// Shared runtime state of a generated wrapper: the arrays the Fig 3 code
// indexes (call_counter_num_calls[fid], func_error_cnter[fid][errno],
// collect_errors_cnter[errno], exectime[fid]) plus the call trace of the
// log-call micro-generator. One WrapperStats per wrapper instance; the
// profiling module turns it into the XML document shipped to the collector
// (paper §2.3: "the collection code is called to send the gathered
// information to a central server").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simlib/cerrno.hpp"

namespace healers::gen {

struct FunctionStats {
  std::string symbol;
  std::uint64_t calls = 0;
  std::uint64_t cycles = 0;                      // exectime accumulation
  std::map<int, std::uint64_t> errno_counts;     // func_error_cnter[fid][e]
  std::uint64_t contained = 0;                   // calls vetoed by arg checks
};

struct TraceRecord {
  std::string symbol;
  std::vector<std::string> args;  // rendered values
  std::string outcome;            // "ok", "contained", rendered return
};

class WrapperStats {
 public:
  // Registers a function id for a symbol (idempotent per id).
  void register_function(int function_id, std::string symbol);

  [[nodiscard]] FunctionStats& function(int function_id);
  [[nodiscard]] const FunctionStats* function(int function_id) const;
  [[nodiscard]] const std::map<int, FunctionStats>& functions() const noexcept {
    return functions_;
  }

  // collect_errors_cnter[] — process-wide errno histogram.
  void count_global_errno(int err);
  [[nodiscard]] const std::map<int, std::uint64_t>& global_errnos() const noexcept {
    return global_errnos_;
  }

  void append_trace(TraceRecord record);
  [[nodiscard]] const std::vector<TraceRecord>& trace() const noexcept { return trace_; }
  void set_trace_limit(std::size_t limit) noexcept { trace_limit_ = limit; }

  [[nodiscard]] std::uint64_t total_calls() const noexcept;
  [[nodiscard]] std::uint64_t total_cycles() const noexcept;
  [[nodiscard]] std::uint64_t total_contained() const noexcept;

 private:
  std::map<int, FunctionStats> functions_;
  std::map<int, std::uint64_t> global_errnos_;
  std::vector<TraceRecord> trace_;
  std::size_t trace_limit_ = 10'000;
};

}  // namespace healers::gen
