// Repair policy derivation (ISSUE 9): turning a robust-API campaign's
// per-argument crash boundaries into a per-(function, argument) repair plan.
//
// The campaign engine already knows which arguments crash when the
// destination is too small (DerivedChecks::require_size_check, learned from
// the tiny-writable probes) and which input pointers crash when invalid.
// Instead of hand-writing "strcpy is dangerous" rules, derive_repair_policy
// reads those campaign documents next to the man-page size annotations and
// emits one RepairRule per repairable argument:
//
//   * write_size is a plain `arg(k)` (memcpy-class): the call carries its own
//     length argument, so the repair is failure-oblivious TRUNCATION — clamp
//     arg k to the destination's known extent (Rigger et al., 1806.09026).
//   * write_size is computed (`cstrlen(2)+1`, `formatted(2)+1`, ...): no
//     caller-visible length to clamp, so the repair is SAFE SUBSTITUTION —
//     rewrite the call into a bounded variant whose length derives from the
//     destination extent (S3Library, 2004.09062), NUL-terminating the result.
//   * a pure input pointer the campaign proved crash-prone: SAFE RETURN —
//     skip the call and manufacture the documented error value.
//
// Everything else falls through to the existing reject/detect wrappers; a
// policy never fires on a call that was already within bounds.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "injector/robust_spec.hpp"
#include "parser/manpage.hpp"
#include "simlib/library.hpp"
#include "simlib/observer.hpp"
#include "support/result.hpp"
#include "xml/xml.hpp"

namespace healers::gen {

// One repairable argument of one function.
struct RepairRule {
  int arg_index = 0;  // 1-based: the pointer argument being repaired
  simlib::RepairAction action = simlib::RepairAction::kTruncateWrite;
  // kTruncateWrite only: 1-based index of the length argument to clamp.
  int clamp_arg = 0;
  // kSubstituteBounded only: 1-based index of the NUL-terminated copy source
  // (the cstrlen(k) operand of write_size with k != arg_index); 0 when the
  // write is computed (formatted/stdin) and has no copyable source.
  int src_arg = 0;
  // kSubstituteBounded only: true when write_size also counts the existing
  // string at the destination (strcat-style append).
  bool append = false;
  // Bytes the call will write through arg_index (man-page annotation);
  // absent for kSafeReturn rules.
  std::optional<parser::SizeExpr> write_size;
  // Why this rule exists: the campaign check and man-page annotation that
  // produced it. Carried into RepairEvent::detail when the rule fires.
  std::string provenance;
};

struct FunctionRepairPolicy {
  std::string function;
  std::vector<RepairRule> rules;

  [[nodiscard]] const RepairRule* rule_for_arg(int index_1based) const noexcept;
};

// A whole library's repair plan — pure data, derived once per campaign and
// cacheable/shippable exactly like the campaign document itself.
struct RepairPolicy {
  std::string library;
  std::uint64_t seed = 0;  // campaign seed the policy was derived from
  std::vector<FunctionRepairPolicy> functions;

  [[nodiscard]] const FunctionRepairPolicy* policy(const std::string& function) const noexcept;
  [[nodiscard]] std::size_t rule_count() const noexcept;
  [[nodiscard]] bool operator==(const RepairPolicy& other) const;

  // Deterministic <repair-policy> document; round-trips through from_xml.
  [[nodiscard]] xml::Node to_xml() const;
  [[nodiscard]] static Result<RepairPolicy> from_xml(const xml::Node& node);
};

[[nodiscard]] bool operator==(const RepairRule& a, const RepairRule& b);
[[nodiscard]] bool operator==(const FunctionRepairPolicy& a, const FunctionRepairPolicy& b);

// Derives the repair policy for `lib` from its campaign result. Pure: same
// campaign document + same library => byte-identical policy XML. Functions
// whose campaign spec shows no repairable argument get no entry.
[[nodiscard]] Result<RepairPolicy> derive_repair_policy(
    const injector::CampaignResult& campaign, const simlib::SharedLibrary& lib);

}  // namespace healers::gen
