#include "gen/stats.hpp"

#include <stdexcept>

namespace healers::gen {

void WrapperStats::register_function(int function_id, std::string symbol) {
  FunctionStats& entry = functions_[function_id];
  if (entry.symbol.empty()) {
    entry.symbol = std::move(symbol);
  } else if (entry.symbol != symbol) {
    throw std::logic_error("WrapperStats: function id " + std::to_string(function_id) +
                           " registered for both " + entry.symbol + " and " + symbol);
  }
}

FunctionStats& WrapperStats::function(int function_id) { return functions_[function_id]; }

const FunctionStats* WrapperStats::function(int function_id) const {
  auto it = functions_.find(function_id);
  return it == functions_.end() ? nullptr : &it->second;
}

void WrapperStats::count_global_errno(int err) {
  // Fig 3: out-of-range errnos fold into the MAX_ERRNO bucket.
  if (err < 0 || err >= simlib::kMaxErrno) err = simlib::kMaxErrno;
  ++global_errnos_[err];
}

void WrapperStats::append_trace(TraceRecord record) {
  if (trace_.size() >= trace_limit_) return;  // bounded trace, newest dropped
  trace_.push_back(std::move(record));
}

std::uint64_t WrapperStats::total_calls() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [_, fn] : functions_) n += fn.calls;
  return n;
}

std::uint64_t WrapperStats::total_cycles() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [_, fn] : functions_) n += fn.cycles;
  return n;
}

std::uint64_t WrapperStats::total_contained() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [_, fn] : functions_) n += fn.contained;
  return n;
}

}  // namespace healers::gen
