// Wrapper composition: assembles micro-generators into
//   (a) a ComposedWrapper — an executable interposition for the simulated
//       linker, with one RuntimeHook chain per wrapped function, and
//   (b) the wrapper's C source (emit_wrapper_source / library source),
//       byte-identical in structure to the paper's Fig 3.
//
// Call semantics mirror the generated C: prefix fragments run in generator
// order, the base call runs, postfix fragments run in REVERSE order. A
// prefix that short-circuits (fault containment) returns immediately — the
// generated C's early `return err;` — skipping the call and all postfixes.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gen/microgen.hpp"
#include "gen/stats.hpp"
#include "linker/interpose.hpp"
#include "simlib/library.hpp"
#include "support/result.hpp"

namespace healers::gen {

class ComposedWrapper : public linker::Interposition {
 public:
  ComposedWrapper(std::string name, std::shared_ptr<WrapperStats> stats);

  // Installs a hook chain for ctx.proto.name built from `gens`.
  void wrap_function(const GenContext& ctx, const std::vector<MicroGeneratorPtr>& gens);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool wraps(const std::string& symbol) const override;
  simlib::SimValue call(const std::string& symbol, simlib::CallContext& ctx,
                        const linker::NextFn& next) override;

  // Dispatch fast path: the handle is the symbol's Entry (map nodes are
  // stable), so the per-call entries_.find disappears from interposed calls.
  [[nodiscard]] const void* symbol_handle(const std::string& symbol) const override;
  simlib::SimValue call_with_handle(const void* handle, const std::string& symbol,
                                    simlib::CallContext& ctx,
                                    const linker::NextFn& next) override;

  [[nodiscard]] const std::shared_ptr<WrapperStats>& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t wrapped_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::vector<std::string> wrapped_symbols() const;

 private:
  struct Entry {
    int function_id = 0;
    std::vector<RuntimeHookPtr> hooks;
  };

  simlib::SimValue run_entry(Entry& entry, simlib::CallContext& ctx,
                             const linker::NextFn& next);

  std::string name_;
  std::shared_ptr<WrapperStats> stats_;
  std::map<std::string, Entry> entries_;
};

// Emits the Fig 3 wrapper function source for one function.
[[nodiscard]] std::string emit_wrapper_source(const GenContext& ctx,
                                              const std::vector<MicroGeneratorPtr>& gens);

// Fluent builder: configure a feature set once, then build the wrapper (and
// its source) for a whole library. Function ids are assigned 1200, 1201, ...
// over the library's sorted symbol list (Fig 3 shows id 1206).
class WrapperBuilder {
 public:
  explicit WrapperBuilder(std::string wrapper_name);

  WrapperBuilder& add(MicroGeneratorPtr gen);

  // Builds the executable wrapper over every function of `lib` whose man
  // page parses. `campaign` (optional) supplies robust specs to generators
  // that use them. Fails when the library has no wrappable function.
  [[nodiscard]] Result<std::shared_ptr<ComposedWrapper>> build(
      const simlib::SharedLibrary& lib,
      const injector::CampaignResult* campaign = nullptr) const;

  // Emits the whole wrapper library's C source (one Fig 3 function per
  // symbol, same ids as build()).
  [[nodiscard]] Result<std::string> emit_library_source(
      const simlib::SharedLibrary& lib,
      const injector::CampaignResult* campaign = nullptr) const;

  [[nodiscard]] const std::vector<MicroGeneratorPtr>& generators() const noexcept {
    return gens_;
  }

 private:
  std::string name_;
  std::vector<MicroGeneratorPtr> gens_;
};

inline constexpr int kFirstFunctionId = 1200;

}  // namespace healers::gen
