#include "gen/repair_policy.hpp"

#include <array>

namespace healers::gen {

namespace {

using simlib::RepairAction;

constexpr std::array<RepairAction, 4> kAllActions = {
    RepairAction::kTruncateWrite, RepairAction::kSubstituteBounded,
    RepairAction::kSynthesizeInput, RepairAction::kSafeReturn};

Result<RepairAction> action_from_name(const std::string& name) {
  for (const RepairAction action : kAllActions) {
    if (simlib::to_string(action) == name) return action;
  }
  return Error("repair-policy: unknown action '" + name + "'");
}

std::string size_text(const std::optional<parser::SizeExpr>& expr) {
  return expr.has_value() ? expr->to_string() : std::string();
}

// Walks a write-size expression collecting the cstrlen(k) operands: the one
// with k != dest is the copy source of a bounded substitution; cstrlen(dest)
// means the write appends to the existing string (strcat-style).
void find_copy_source(const parser::SizeExpr& expr, int dest_arg, int* src_arg, bool* append) {
  if (expr.kind() == parser::SizeExpr::Kind::kCstrlen) {
    if (expr.arg_index() == dest_arg) {
      *append = true;
    } else if (*src_arg == 0) {
      *src_arg = expr.arg_index();
    }
    return;
  }
  for (const parser::SizeExpr& child : expr.children()) {
    find_copy_source(child, dest_arg, src_arg, append);
  }
}

}  // namespace

const RepairRule* FunctionRepairPolicy::rule_for_arg(int index_1based) const noexcept {
  for (const RepairRule& rule : rules) {
    if (rule.arg_index == index_1based) return &rule;
  }
  return nullptr;
}

const FunctionRepairPolicy* RepairPolicy::policy(const std::string& function) const noexcept {
  for (const FunctionRepairPolicy& fn : functions) {
    if (fn.function == function) return &fn;
  }
  return nullptr;
}

std::size_t RepairPolicy::rule_count() const noexcept {
  std::size_t count = 0;
  for (const FunctionRepairPolicy& fn : functions) count += fn.rules.size();
  return count;
}

bool operator==(const RepairRule& a, const RepairRule& b) {
  return a.arg_index == b.arg_index && a.action == b.action && a.clamp_arg == b.clamp_arg &&
         a.src_arg == b.src_arg && a.append == b.append &&
         size_text(a.write_size) == size_text(b.write_size) && a.provenance == b.provenance;
}

bool operator==(const FunctionRepairPolicy& a, const FunctionRepairPolicy& b) {
  return a.function == b.function && a.rules == b.rules;
}

bool RepairPolicy::operator==(const RepairPolicy& other) const {
  return library == other.library && seed == other.seed && functions == other.functions;
}

xml::Node RepairPolicy::to_xml() const {
  xml::Node root("repair-policy");
  root.set_attr("library", library);
  root.set_attr("seed", std::to_string(seed));
  root.set_attr("rules", std::to_string(rule_count()));
  for (const FunctionRepairPolicy& fn : functions) {
    xml::Node& fn_node = root.add_child("function");
    fn_node.set_attr("name", fn.function);
    for (const RepairRule& rule : fn.rules) {
      xml::Node& row = fn_node.add_child("rule");
      row.set_attr("arg", std::to_string(rule.arg_index));
      row.set_attr("action", simlib::to_string(rule.action));
      if (rule.clamp_arg != 0) row.set_attr("clamp_arg", std::to_string(rule.clamp_arg));
      if (rule.src_arg != 0) row.set_attr("src_arg", std::to_string(rule.src_arg));
      if (rule.append) row.set_attr("append", "1");
      if (rule.write_size.has_value()) row.set_attr("size", rule.write_size->to_string());
      row.set_attr("provenance", rule.provenance);
    }
  }
  return root;
}

Result<RepairPolicy> RepairPolicy::from_xml(const xml::Node& node) {
  if (node.name() != "repair-policy") {
    return Error("repair-policy: root element is not <repair-policy>");
  }
  RepairPolicy out;
  if (const std::string* library = node.attr("library")) out.library = *library;
  out.seed = static_cast<std::uint64_t>(node.attr_int("seed", 0));
  for (const xml::Node* fn_node : node.children_named("function")) {
    FunctionRepairPolicy fn;
    if (const std::string* name = fn_node->attr("name")) fn.function = *name;
    for (const xml::Node* row : fn_node->children_named("rule")) {
      RepairRule rule;
      rule.arg_index = static_cast<int>(row->attr_int("arg", 0));
      const std::string* action = row->attr("action");
      auto parsed = action_from_name(action == nullptr ? "" : *action);
      if (!parsed.ok()) return parsed.error();
      rule.action = parsed.value();
      rule.clamp_arg = static_cast<int>(row->attr_int("clamp_arg", 0));
      rule.src_arg = static_cast<int>(row->attr_int("src_arg", 0));
      rule.append = row->attr_int("append", 0) != 0;
      if (const std::string* size = row->attr("size")) {
        auto expr = parser::SizeExpr::parse(*size);
        if (!expr.ok()) return Error("repair-policy: bad size '" + *size + "'");
        rule.write_size = std::move(expr).take();
      }
      if (const std::string* provenance = row->attr("provenance")) {
        rule.provenance = *provenance;
      }
      fn.rules.push_back(std::move(rule));
    }
    out.functions.push_back(std::move(fn));
  }
  return out;
}

Result<RepairPolicy> derive_repair_policy(const injector::CampaignResult& campaign,
                                          const simlib::SharedLibrary& lib) {
  RepairPolicy out;
  out.library = lib.soname();
  out.seed = campaign.seed;
  for (const std::string& name : lib.names()) {
    const simlib::Symbol* symbol = lib.find(name);
    auto page = parser::parse_manpage(symbol->manpage);
    if (!page.ok()) return Error("repair-policy for " + name + ": " + page.error().message);
    const injector::RobustSpec* spec = campaign.spec(name);
    if (spec == nullptr) continue;

    FunctionRepairPolicy fn;
    fn.function = name;
    for (const injector::ArgSpec& arg : spec->args) {
      const parser::ArgAnnotation* ann = page.value().arg(arg.index);
      if (ann == nullptr) continue;

      // Like the robustness wrapper's kDerivedAndAnnotations mode: the man
      // page supplies the write boundary, the campaign supplies the evidence
      // the pointer crashes when that boundary is violated. require_size_check
      // (tiny-writable probes failed) is the strongest signal, but a campaign
      // whose valid length arguments were all small never exercises a tiny
      // destination — so any proven pointer crash on the destination admits
      // the rule.
      const bool dest_crash_prone = arg.checks.require_size_check ||
                                    arg.checks.require_writable ||
                                    arg.checks.require_mapped || arg.checks.require_nonnull;
      if (dest_crash_prone && ann->write_size.has_value()) {
        RepairRule rule;
        rule.arg_index = arg.index;
        rule.write_size = ann->write_size;
        if (ann->write_size->kind() == parser::SizeExpr::Kind::kArg) {
          // memcpy-class: the caller passes the write length explicitly, so
          // failure-oblivious truncation can clamp that very argument.
          rule.action = RepairAction::kTruncateWrite;
          rule.clamp_arg = ann->write_size->arg_index();
        } else {
          // strcpy/sprintf-class: the length is computed from other inputs;
          // substitute a bounded variant capped at the destination extent.
          rule.action = RepairAction::kSubstituteBounded;
          find_copy_source(*ann->write_size, arg.index, &rule.src_arg, &rule.append);
        }
        rule.provenance =
            "campaign " + campaign.library + ": " + name + " arg " + std::to_string(arg.index) +
            (arg.checks.require_size_check
                 ? " requires size check (tiny-writable probes failed)"
                 : " crashes on invalid destinations") +
            "; man: BUF WRITE SIZE " + ann->write_size->to_string();
        fn.rules.push_back(std::move(rule));
        continue;
      }

      // Only NUL-terminated input strings get a safe-return rule: their
      // validity is decidable without a separate length argument. Sized read
      // buffers stay with the detect layer.
      const bool read_pointer = !ann->write_size.has_value() && ann->cstring;
      const bool crash_prone = arg.checks.require_terminated || arg.checks.require_mapped ||
                               arg.checks.require_nonnull;
      if (read_pointer && crash_prone) {
        // Pure input pointer the campaign proved crash-prone: when it is
        // invalid at runtime, skip the call and manufacture the documented
        // error value instead of faulting (or synthesize an empty input for
        // copy-style callees — the hook decides which at the call site).
        RepairRule rule;
        rule.arg_index = arg.index;
        rule.action = RepairAction::kSafeReturn;
        rule.provenance = "campaign " + campaign.library + ": " + name + " arg " +
                          std::to_string(arg.index) +
                          " crashes on invalid input pointers; man: read-only";
        fn.rules.push_back(std::move(rule));
      }
    }
    if (!fn.rules.empty()) out.functions.push_back(std::move(fn));
  }
  return out;
}

}  // namespace healers::gen
