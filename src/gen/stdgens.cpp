// The standard micro-generators shown in the paper's Fig 3: prototype,
// caller, function exectime, collect errors, func errors, call counter —
// plus log call (the trace feature of the profiling wrapper, §3.3).
//
// Each one emits the C fragment of Fig 3 and a RuntimeHook with the same
// semantics against the simulated machine (rdtsc -> Machine::rdtsc, errno
// -> Machine::err, the stats arrays -> WrapperStats).
#include "gen/microgen.hpp"
#include "gen/stats.hpp"

namespace healers::gen {

namespace {

using parser::FunctionProto;
using simlib::CallContext;
using simlib::SimValue;

bool returns_void(const FunctionProto& proto) {
  return proto.return_type.classify() == parser::TypeClass::kVoid &&
         !proto.return_type.is_pointer();
}

// "a1, a2, a3" for the call site; "const char *a1" etc. for the signature.
std::string arg_list(const FunctionProto& proto) {
  std::string out;
  for (std::size_t i = 0; i < proto.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += "a" + std::to_string(i + 1);
  }
  return out;
}

std::string param_list(const FunctionProto& proto) {
  if (proto.params.empty() && !proto.varargs) return "void";
  std::string out;
  for (std::size_t i = 0; i < proto.params.size(); ++i) {
    if (i > 0) out += ", ";
    out += proto.params[i].type.declare("a" + std::to_string(i + 1));
  }
  if (proto.varargs) out += ", ...";
  return out;
}

// --- prototype -------------------------------------------------------------

class PrototypeGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "prototype"; }

  [[nodiscard]] std::string prefix_code(const GenContext& ctx) const override {
    std::string out = ctx.proto.return_type.declare(ctx.proto.name);
    out += "(" + param_list(ctx.proto) + ")\n{\n";
    if (!returns_void(ctx.proto)) {
      out += "  " + ctx.proto.return_type.declare("ret") + ";\n";
    }
    return out;
  }

  [[nodiscard]] std::string postfix_code(const GenContext& ctx) const override {
    return returns_void(ctx.proto) ? "  return;\n}\n" : "  return ret;\n}\n";
  }

  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext&, WrapperStats&) const override {
    return nullptr;  // pure code structure
  }
};

// --- caller ----------------------------------------------------------------

class CallerGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "caller"; }

  [[nodiscard]] std::string prefix_code(const GenContext&) const override { return {}; }

  [[nodiscard]] std::string postfix_code(const GenContext& ctx) const override {
    const std::string call = "(*addr_" + ctx.proto.name + ")(" + arg_list(ctx.proto) + ");\n";
    return returns_void(ctx.proto) ? "  " + call : "  ret = " + call;
  }

  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext&, WrapperStats&) const override {
    return nullptr;  // the composer performs the call itself
  }
};

// --- function exectime -------------------------------------------------------

class ExectimeHook : public RuntimeHook {
 public:
  // The FunctionStats node is resolved once here (register_function has
  // already run, and std::map nodes never move), not per call.
  ExectimeHook(WrapperStats& stats, int fid) : fn_(stats.function(fid)) {}

  const SimValue* prefix(CallContext& ctx) override {
    start_ = ctx.machine.rdtsc();
    return nullptr;
  }
  void postfix(CallContext& ctx, SimValue&) override {
    fn_.cycles += ctx.machine.rdtsc() - start_;
  }

 private:
  FunctionStats& fn_;
  std::uint64_t start_ = 0;
};

class ExectimeGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "function exectime"; }

  [[nodiscard]] std::string prefix_code(const GenContext&) const override {
    return "  unsigned long long exectime_start;\n"
           "  unsigned long long exectime_end;\n"
           "  rdtsc(exectime_start);\n";
  }
  [[nodiscard]] std::string postfix_code(const GenContext& ctx) const override {
    return "  rdtsc(exectime_end);\n  exectime[" + std::to_string(ctx.function_id) +
           "] += exectime_end - exectime_start;\n";
  }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext& ctx,
                                         WrapperStats& stats) const override {
    return std::make_unique<ExectimeHook>(stats, ctx.function_id);
  }
};

// --- errno histograms --------------------------------------------------------

class ErrnoHook : public RuntimeHook {
 public:
  ErrnoHook(WrapperStats& stats, int fid, bool per_function)
      : stats_(stats), fn_(stats.function(fid)), per_function_(per_function) {}

  const SimValue* prefix(CallContext& ctx) override {
    saved_ = ctx.machine.err();
    return nullptr;
  }
  void postfix(CallContext& ctx, SimValue&) override {
    const int err = ctx.machine.err();
    if (err == saved_) return;
    if (per_function_) {
      const int bucket = (err < 0 || err >= simlib::kMaxErrno) ? simlib::kMaxErrno : err;
      ++fn_.errno_counts[bucket];
    } else {
      stats_.count_global_errno(err);
    }
  }

 private:
  WrapperStats& stats_;
  FunctionStats& fn_;
  bool per_function_;
  int saved_ = 0;
};

class CollectErrorsGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "collect errors"; }

  [[nodiscard]] std::string prefix_code(const GenContext&) const override {
    return "  int collect_errors_err = errno;\n";
  }
  [[nodiscard]] std::string postfix_code(const GenContext&) const override {
    return "  if (collect_errors_err != errno) {\n"
           "    if (errno < 0 || errno >= MAX_ERRNO)\n"
           "      ++collect_errors_cnter[MAX_ERRNO];\n"
           "    else\n"
           "      ++collect_errors_cnter[errno];\n"
           "  }\n";
  }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext& ctx,
                                         WrapperStats& stats) const override {
    return std::make_unique<ErrnoHook>(stats, ctx.function_id, /*per_function=*/false);
  }
};

class FuncErrorsGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "func error"; }

  [[nodiscard]] std::string prefix_code(const GenContext&) const override {
    return "  int func_error_err = errno;\n";
  }
  [[nodiscard]] std::string postfix_code(const GenContext& ctx) const override {
    const std::string fid = std::to_string(ctx.function_id);
    return "  if (func_error_err != errno) {\n"
           "    if (errno < 0 || errno >= MAX_ERRNO)\n"
           "      ++func_error_cnter[" + fid + "][MAX_ERRNO];\n"
           "    else\n"
           "      ++func_error_cnter[" + fid + "][errno];\n"
           "  }\n";
  }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext& ctx,
                                         WrapperStats& stats) const override {
    return std::make_unique<ErrnoHook>(stats, ctx.function_id, /*per_function=*/true);
  }
};

// --- call counter -------------------------------------------------------------

class CallCounterHook : public RuntimeHook {
 public:
  CallCounterHook(WrapperStats& stats, int fid) : fn_(stats.function(fid)) {}

  const SimValue* prefix(CallContext&) override {
    ++fn_.calls;
    return nullptr;
  }

 private:
  FunctionStats& fn_;
};

class CallCounterGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "call counter"; }

  [[nodiscard]] std::string prefix_code(const GenContext& ctx) const override {
    return "  ++call_counter_num_calls[" + std::to_string(ctx.function_id) + "];\n";
  }
  [[nodiscard]] std::string postfix_code(const GenContext&) const override { return {}; }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext& ctx,
                                         WrapperStats& stats) const override {
    return std::make_unique<CallCounterHook>(stats, ctx.function_id);
  }
};

// --- log call -------------------------------------------------------------------

class LogCallHook : public RuntimeHook {
 public:
  LogCallHook(WrapperStats& stats, std::string symbol)
      : stats_(stats), symbol_(std::move(symbol)) {}

  const SimValue* prefix(CallContext& ctx) override {
    record_ = TraceRecord{};
    record_.symbol = symbol_;
    for (const SimValue& arg : ctx.args) record_.args.push_back(arg.to_string());
    return nullptr;
  }
  void postfix(CallContext&, SimValue& ret) override {
    record_.outcome = ret.to_string();
    stats_.append_trace(record_);
  }

 private:
  WrapperStats& stats_;
  std::string symbol_;
  TraceRecord record_;
};

class LogCallGen : public MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "log call"; }

  [[nodiscard]] std::string prefix_code(const GenContext& ctx) const override {
    return "  log_call_enter(" + std::to_string(ctx.function_id) + ", " +
           (ctx.proto.params.empty() ? std::string("0") : arg_list(ctx.proto)) + ");\n";
  }
  [[nodiscard]] std::string postfix_code(const GenContext& ctx) const override {
    return "  log_call_return(" + std::to_string(ctx.function_id) +
           (returns_void(ctx.proto) ? ", 0);\n" : ", ret);\n");
  }
  [[nodiscard]] RuntimeHookPtr make_hook(const GenContext& ctx,
                                         WrapperStats& stats) const override {
    return std::make_unique<LogCallHook>(stats, ctx.proto.name);
  }
};

}  // namespace

MicroGeneratorPtr prototype_gen() { return std::make_shared<PrototypeGen>(); }
MicroGeneratorPtr caller_gen() { return std::make_shared<CallerGen>(); }
MicroGeneratorPtr exectime_gen() { return std::make_shared<ExectimeGen>(); }
MicroGeneratorPtr collect_errors_gen() { return std::make_shared<CollectErrorsGen>(); }
MicroGeneratorPtr func_errors_gen() { return std::make_shared<FuncErrorsGen>(); }
MicroGeneratorPtr call_counter_gen() { return std::make_shared<CallCounterGen>(); }
MicroGeneratorPtr log_call_gen() { return std::make_shared<LogCallGen>(); }

}  // namespace healers::gen
