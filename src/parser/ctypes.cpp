#include "parser/ctypes.hpp"

#include <map>

namespace healers::parser {

namespace {

// Typedefs the simulated platform's headers may use. FILE is opaque (only
// ever used behind a pointer); the rest are scalar aliases.
const std::map<std::string, TypeClass>& typedef_table() {
  static const std::map<std::string, TypeClass> kTable = {
      {"size_t", TypeClass::kIntegral},   {"ssize_t", TypeClass::kIntegral},
      {"wchar_t", TypeClass::kIntegral},  {"wint_t", TypeClass::kIntegral},
      {"wctrans_t", TypeClass::kIntegral}, {"wctype_t", TypeClass::kIntegral},
      {"time_t", TypeClass::kIntegral},   {"ptrdiff_t", TypeClass::kIntegral},
      {"FILE", TypeClass::kVoid},  // opaque struct; meaningless by value
  };
  return kTable;
}

std::string base_to_string(const TypeExpr& type) {
  std::string out;
  if (type.pointee_const) out += "const ";
  if (type.is_unsigned) out += "unsigned ";
  switch (type.base) {
    case BaseType::kVoid: out += "void"; break;
    case BaseType::kChar: out += "char"; break;
    case BaseType::kShort: out += "short"; break;
    case BaseType::kInt: out += "int"; break;
    case BaseType::kLong: out += "long"; break;
    case BaseType::kLongLong: out += "long long"; break;
    case BaseType::kFloat: out += "float"; break;
    case BaseType::kDouble: out += "double"; break;
    case BaseType::kNamed: out += type.name; break;
  }
  return out;
}

}  // namespace

TypeClass TypeExpr::classify() const noexcept {
  if (is_function_pointer || pointer_depth > 0) return TypeClass::kPointer;
  switch (base) {
    case BaseType::kVoid:
      return TypeClass::kVoid;
    case BaseType::kFloat:
    case BaseType::kDouble:
      return TypeClass::kFloating;
    case BaseType::kNamed: {
      auto it = typedef_table().find(name);
      return it == typedef_table().end() ? TypeClass::kIntegral : it->second;
    }
    default:
      return TypeClass::kIntegral;
  }
}

namespace {

std::string funcptr_params(const TypeExpr& type) {
  std::string out = "(";
  if (type.fn_params.empty()) {
    out += "void";
  } else {
    for (std::size_t i = 0; i < type.fn_params.size(); ++i) {
      if (i > 0) out += ", ";
      out += type.fn_params[i].to_string();
    }
  }
  out += ")";
  return out;
}

}  // namespace

std::string TypeExpr::to_string() const {
  if (is_function_pointer) {
    TypeExpr ret = *this;
    ret.is_function_pointer = false;
    ret.fn_params.clear();
    return ret.to_string() + " (*)" + funcptr_params(*this);
  }
  std::string out = base_to_string(*this);
  if (pointer_depth > 0) {
    out += ' ';
    out.append(static_cast<std::size_t>(pointer_depth), '*');
  }
  return out;
}

std::string TypeExpr::declare(const std::string& identifier) const {
  if (is_function_pointer) {
    TypeExpr ret = *this;
    ret.is_function_pointer = false;
    ret.fn_params.clear();
    return ret.to_string() + " (*" + identifier + ")" + funcptr_params(*this);
  }
  std::string out = base_to_string(*this);
  out += ' ';
  out.append(static_cast<std::size_t>(pointer_depth), '*');
  out += identifier;
  return out;
}

std::string FunctionProto::to_declaration() const {
  std::string out = return_type.declare(name);
  out += '(';
  if (params.empty() && !varargs) {
    out += "void";
  } else {
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ", ";
      out += params[i].name.empty() ? params[i].type.to_string()
                                    : params[i].type.declare(params[i].name);
    }
    if (varargs) out += ", ...";
  }
  out += ");";
  return out;
}

TypeClass named_type_class(const std::string& name) {
  auto it = typedef_table().find(name);
  return it == typedef_table().end() ? TypeClass::kIntegral : it->second;
}

bool is_known_typedef(const std::string& name) { return typedef_table().contains(name); }

}  // namespace healers::parser
