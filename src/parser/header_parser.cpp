#include "parser/header_parser.hpp"

#include <cctype>

namespace healers::parser {

namespace {

enum class TokKind : std::uint8_t { kIdent, kStar, kLParen, kRParen, kComma, kSemi, kEllipsis, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          const std::size_t end = src_.find("*/", pos_ + 2);
          if (end == std::string_view::npos) {
            return Error("line " + std::to_string(line_) + ": unterminated comment");
          }
          for (std::size_t i = pos_; i < end; ++i) {
            if (src_[i] == '\n') ++line_;
          }
          pos_ = end + 2;
          continue;
        }
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        std::string ident;
        while (pos_ < src_.size() &&
               ((std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0) ||
                src_[pos_] == '_')) {
          ident += src_[pos_++];
        }
        out.push_back(Token{TokKind::kIdent, std::move(ident), line_});
        continue;
      }
      switch (c) {
        case '*': out.push_back(Token{TokKind::kStar, "*", line_}); break;
        case '(': out.push_back(Token{TokKind::kLParen, "(", line_}); break;
        case ')': out.push_back(Token{TokKind::kRParen, ")", line_}); break;
        case ',': out.push_back(Token{TokKind::kComma, ",", line_}); break;
        case ';': out.push_back(Token{TokKind::kSemi, ";", line_}); break;
        case '.':
          if (src_.compare(pos_, 3, "...") == 0) {
            out.push_back(Token{TokKind::kEllipsis, "...", line_});
            pos_ += 2;
            break;
          }
          return Error("line " + std::to_string(line_) + ": stray '.'");
        default:
          return Error("line " + std::to_string(line_) + ": unexpected character '" +
                       std::string(1, c) + "'");
      }
      ++pos_;
    }
    out.push_back(Token{TokKind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

class DeclParser {
 public:
  DeclParser(std::vector<Token> tokens, std::vector<std::string>& diagnostics)
      : tokens_(std::move(tokens)), diagnostics_(diagnostics) {}

  Result<std::vector<FunctionProto>> run() {
    std::vector<FunctionProto> out;
    while (peek().kind != TokKind::kEnd) {
      auto proto = parse_one();
      if (!proto.ok()) return proto.error();
      out.push_back(std::move(proto).take());
    }
    return out;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  const Token& take() { return tokens_[pos_++]; }

  [[nodiscard]] std::string where() const {
    return "line " + std::to_string(peek().line);
  }

  static bool is_base_keyword(const std::string& word) {
    return word == "void" || word == "char" || word == "short" || word == "int" ||
           word == "long" || word == "float" || word == "double";
  }

  // Parses qualifiers + base + '*'s. `named_ok` lets us distinguish a type
  // name from a parameter/function identifier: a lone unknown identifier
  // followed by another identifier or '*' is a type; otherwise it is the
  // declarator.
  Result<TypeExpr> parse_type() {
    TypeExpr type;
    bool have_base = false;
    bool have_sign = false;
    for (;;) {
      if (peek().kind != TokKind::kIdent) break;
      const std::string& word = peek().text;
      if (word == "const") {
        type.pointee_const = true;
        take();
        continue;
      }
      if (word == "unsigned" || word == "signed") {
        if (have_sign) return Error(where() + ": duplicate signedness");
        type.is_unsigned = word == "unsigned";
        have_sign = true;
        have_base = true;  // bare "unsigned" means unsigned int
        type.base = BaseType::kInt;
        take();
        continue;
      }
      if (is_base_keyword(word)) {
        if (word == "long" && have_base && type.base == BaseType::kLong) {
          type.base = BaseType::kLongLong;  // "long long"
          take();
          continue;
        }
        if (have_base && type.base != BaseType::kInt) {
          return Error(where() + ": unexpected type keyword '" + word + "'");
        }
        if (word == "void") type.base = BaseType::kVoid;
        else if (word == "char") type.base = BaseType::kChar;
        else if (word == "short") type.base = BaseType::kShort;
        else if (word == "int") type.base = BaseType::kInt;
        else if (word == "long") type.base = BaseType::kLong;
        else if (word == "float") type.base = BaseType::kFloat;
        else if (word == "double") type.base = BaseType::kDouble;
        have_base = true;
        take();
        continue;
      }
      // Candidate named type: only if we have no base yet AND the *next*
      // token continues a declaration (identifier or '*').
      if (!have_base && !have_sign) {
        const Token& next = tokens_[pos_ + 1];
        if (next.kind == TokKind::kIdent || next.kind == TokKind::kStar) {
          type.base = BaseType::kNamed;
          type.name = word;
          if (!is_known_typedef(word)) {
            diagnostics_.push_back("line " + std::to_string(peek().line) +
                                   ": unknown type name '" + word + "' accepted as typedef");
          }
          have_base = true;
          take();
          continue;
        }
      }
      break;
    }
    if (!have_base) return Error(where() + ": expected type");
    while (peek().kind == TokKind::kStar) {
      ++type.pointer_depth;
      take();
    }
    return type;
  }

  // Parses `(*[name])(params)` after the return type; mutates `type` into
  // the function-pointer type and returns the declarator name (may be "").
  Result<std::string> parse_function_pointer(TypeExpr& type) {
    take();  // '('
    if (take().kind != TokKind::kStar) {
      return Error(where() + ": expected '*' in function-pointer declarator");
    }
    std::string name;
    if (peek().kind == TokKind::kIdent) name = take().text;
    if (take().kind != TokKind::kRParen) {
      return Error(where() + ": expected ')' after function-pointer name");
    }
    if (take().kind != TokKind::kLParen) {
      return Error(where() + ": expected '(' opening function-pointer parameters");
    }
    type.is_function_pointer = true;
    if (peek().kind == TokKind::kIdent && peek().text == "void" &&
        tokens_[pos_ + 1].kind == TokKind::kRParen) {
      take();
    } else if (peek().kind != TokKind::kRParen) {
      for (;;) {
        auto sub = parse_type();
        if (!sub.ok()) return sub.error();
        type.fn_params.push_back(std::move(sub).take());
        if (peek().kind == TokKind::kIdent) take();  // discard parameter name
        if (peek().kind == TokKind::kComma) {
          take();
          continue;
        }
        break;
      }
    }
    if (take().kind != TokKind::kRParen) {
      return Error(where() + ": expected ')' closing function-pointer parameters");
    }
    return name;
  }

  Result<FunctionProto> parse_one() {
    FunctionProto proto;
    auto ret = parse_type();
    if (!ret.ok()) return ret.error();
    proto.return_type = std::move(ret).take();
    if (peek().kind != TokKind::kIdent) {
      return Error(where() + ": expected function name");
    }
    proto.name = take().text;
    if (take().kind != TokKind::kLParen) {
      return Error(where() + ": expected '(' after function name");
    }
    // Parameter list.
    if (peek().kind == TokKind::kIdent && peek().text == "void" &&
        tokens_[pos_ + 1].kind == TokKind::kRParen) {
      take();  // void
    } else if (peek().kind != TokKind::kRParen) {
      for (;;) {
        if (peek().kind == TokKind::kEllipsis) {
          proto.varargs = true;
          take();
          break;
        }
        Parameter param;
        auto ptype = parse_type();
        if (!ptype.ok()) return ptype.error();
        param.type = std::move(ptype).take();
        if (peek().kind == TokKind::kLParen) {
          // Function-pointer declarator: `ret (*name)(params)`. The type
          // parsed so far is the callback's return type.
          auto fn = parse_function_pointer(param.type);
          if (!fn.ok()) return fn.error();
          param.name = std::move(fn).take();
        } else if (peek().kind == TokKind::kIdent) {
          param.name = take().text;
        }
        proto.params.push_back(std::move(param));
        if (peek().kind == TokKind::kComma) {
          take();
          continue;
        }
        break;
      }
    }
    if (take().kind != TokKind::kRParen) {
      return Error(where() + ": expected ')' closing parameter list");
    }
    if (take().kind != TokKind::kSemi) {
      return Error(where() + ": expected ';' after declaration");
    }
    return proto;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::string>& diagnostics_;
};

}  // namespace

Result<HeaderParse> parse_header(std::string_view source) {
  auto tokens = Lexer(source).run();
  if (!tokens.ok()) return tokens.error();
  HeaderParse out;
  DeclParser parser(std::move(tokens).take(), out.diagnostics);
  auto protos = parser.run();
  if (!protos.ok()) return protos.error();
  out.functions = std::move(protos).take();
  return out;
}

Result<FunctionProto> parse_declaration(std::string_view source) {
  auto header = parse_header(source);
  if (!header.ok()) return header.error();
  if (header.value().functions.size() != 1) {
    return Error("expected exactly one declaration, found " +
                 std::to_string(header.value().functions.size()));
  }
  return std::move(header.value().functions.front());
}

}  // namespace healers::parser
