// Man-page parser and the semantic-annotation DSL.
//
// The paper derives prototypes from headers and *semantics* from man pages
// ("the prototype of strcpy specifies its first argument to be char*.
// However, it actually has to be a pointer to a writable buffer with enough
// space to accommodate the source string"). Our man pages carry that
// knowledge in a machine-readable NOTES section; this module parses the
// document (NAME/SYNOPSIS/NOTES) and the annotation grammar:
//
//   NONNULL <i> [<i>...]           pointer args that must not be NULL
//   ALLOWNULL <i>                  NULL is explicitly valid for this arg
//   ARG <i> CSTRING                must point at a readable NUL-terminated string
//   ARG <i> CURSOR                 NULL is valid only once the runtime's
//                                  hidden cursor is initialized (strtok)
//   ARG <i> FILE                   must be a live FILE* from fopen
//   ARG <i> HEAPPTR                must be a live malloc'd pointer (or NULL if ALLOWNULL)
//   ARG <i> FUNCPTR                must be a registered application callback
//   ARG <i> SAVEPTR <k>            NULL is valid only when *arg<k> points at
//                                  a readable string (strtok_r-style cursor)
//   ARG <i> RANGE <lo> <hi>        integer argument domain
//   ARG <i> BUF WRITE SIZE <expr>  writable buffer of at least <expr> bytes
//   ARG <i> BUF READ SIZE <expr>   readable buffer of at least <expr> bytes
//   HEAP ALLOC | HEAP FREE         allocation-tracking hints
//   ERRNO <name...>                errno values the function may set
//   VARARGS | STATEFUL | NORETURN  behavioural flags
//   CALLS <name> [<name>...]       library symbols this function calls
//                                  internally (intra-/cross-library call
//                                  edges; the debloat reachability closure
//                                  walks them)
//
// <expr> is a '+'-separated sum of: an integer literal, arg(k) (the value of
// the k-th argument), cstrlen(k) (the string length of the k-th argument),
// min(e,e), mul(e,e), or formatted(k) (the length sprintf would produce —
// not statically evaluable; wrappers treat it conservatively).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "memmodel/addr_space.hpp"
#include "parser/ctypes.hpp"
#include "support/result.hpp"

namespace healers::parser {

// Bounded, non-faulting string-length measurement: scans only while bytes
// stay readable. nullopt when the pointer is invalid or no NUL appears
// within `cap`. Shared by SizeExpr evaluation and the wrappers' checks.
[[nodiscard]] std::optional<std::uint64_t> safe_cstrlen(const mem::AddressSpace& space,
                                                        mem::Addr addr, std::uint64_t cap);

class SizeExpr {
 public:
  enum class Kind : std::uint8_t {
    kConst, kArg, kCstrlen, kMin, kMul, kSum, kFormatted,
    kStdinLine,  // bytes of the pending stdin line (gets' write size - 1)
  };

  // Context for evaluation: argument values (as unsigned), the address
  // space for cstrlen measurement, and an optional formatted-length oracle
  // (supplied by wrappers that implement a safe printf-length pre-pass,
  // libsafe-style). Without the oracle, formatted(k) is unevaluable.
  struct EvalEnv {
    const mem::AddressSpace& space;
    std::vector<std::uint64_t> args;  // 0-based
    std::uint64_t cstrlen_cap = 1 << 20;
    std::function<std::optional<std::uint64_t>(int fmt_index_1based)> formatted_len;
    // Length of the pending stdin line (wrapper-supplied, like formatted_len).
    std::function<std::optional<std::uint64_t>()> stdin_line_len;
  };

  static SizeExpr constant(std::uint64_t value);
  static SizeExpr arg(int index_1based);
  static SizeExpr cstrlen(int index_1based);
  static SizeExpr formatted(int index_1based);
  static SizeExpr stdin_line();
  static SizeExpr min_of(SizeExpr a, SizeExpr b);
  static SizeExpr mul_of(SizeExpr a, SizeExpr b);
  static SizeExpr sum_of(std::vector<SizeExpr> terms);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  // For kArg/kCstrlen/kFormatted: the 1-based argument index the expression
  // refers to (0 otherwise). Repair-policy derivation uses this to find the
  // clampable length argument of `arg(k)`-sized writes.
  [[nodiscard]] int arg_index() const noexcept { return index_; }

  // Sub-expressions of kMin/kMul/kSum (empty for leaves). Repair-policy
  // derivation walks these to find the copy source of cstrlen-sized writes.
  [[nodiscard]] const std::vector<SizeExpr>& children() const noexcept { return children_; }

  // Evaluates to a byte count. nullopt when the expression involves
  // formatted() or a cstrlen over an invalid/unterminated string — the
  // caller must then fall back to a conservative policy.
  [[nodiscard]] std::optional<std::uint64_t> eval(const EvalEnv& env) const;

  // Renders back to the DSL text ("cstrlen(2)+1").
  [[nodiscard]] std::string to_string() const;

  // Parses the DSL. Fails on malformed input.
  [[nodiscard]] static Result<SizeExpr> parse(std::string_view text);

 private:
  SizeExpr() = default;

  Kind kind_ = Kind::kConst;
  std::uint64_t value_ = 0;
  int index_ = 0;  // 1-based argument index
  std::vector<SizeExpr> children_;
};

struct ArgAnnotation {
  int index = 0;  // 1-based
  bool nonnull = false;
  bool allownull = false;
  bool cstring = false;
  bool cursor = false;  // NULL valid only with an initialized runtime cursor
  bool is_file = false;
  bool is_heapptr = false;
  bool is_funcptr = false;
  std::optional<int> saveptr_index;  // SAVEPTR: 1-based index of the cursor arg
  std::optional<std::pair<std::int64_t, std::int64_t>> range;
  std::optional<SizeExpr> write_size;
  std::optional<SizeExpr> read_size;
};

struct ManPage {
  std::string name;
  std::string summary;
  FunctionProto proto;
  std::vector<ArgAnnotation> args;  // only annotated args present
  bool heap_alloc = false;
  bool heap_free = false;
  bool stateful = false;
  bool noreturn = false;
  bool varargs = false;
  std::vector<std::string> errnos;
  std::vector<std::string> calls;  // CALLS: symbols reached from this one

  // Annotation for a 1-based argument index; nullptr when unannotated.
  [[nodiscard]] const ArgAnnotation* arg(int index_1based) const noexcept;
  ArgAnnotation& arg_mut(int index_1based);  // creates on demand
};

[[nodiscard]] Result<ManPage> parse_manpage(std::string_view document);

}  // namespace healers::parser
