// Parser for C library headers (function declarations).
//
// Accepts the declaration subset library headers use:
//   [const] [unsigned|signed] base-or-typedef '*'* name '(' params ')' ';'
// with parameters of the same shape (optionally unnamed), `void` parameter
// lists, and trailing `, ...` varargs. Block and line comments are skipped.
// Unknown identifiers in type position are accepted as named types (real
// headers are full of typedefs), but a diagnostic records them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "parser/ctypes.hpp"
#include "support/result.hpp"

namespace healers::parser {

struct HeaderParse {
  std::vector<FunctionProto> functions;
  std::vector<std::string> diagnostics;  // non-fatal notes (unknown typedefs)
};

// Parses a whole header (many declarations). Fails with position info on
// malformed declarations.
[[nodiscard]] Result<HeaderParse> parse_header(std::string_view source);

// Parses exactly one declaration, e.g. "char *strcpy(char *dest, const char *src);"
[[nodiscard]] Result<FunctionProto> parse_declaration(std::string_view source);

}  // namespace healers::parser
