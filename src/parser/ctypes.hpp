// C type expressions and function prototypes — the output of header parsing
// (paper §2.2: "the system parses the header files and manual pages from C
// libraries to generate the prototype information for all global functions").
//
// The model covers the C subset that library APIs use: base types with
// sign/const qualifiers, pointer levels, named typedefs (size_t, FILE,
// wctrans_t, ...), and varargs. to_declaration() renders back to the
// canonical one-line form, which tests round-trip against the original.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace healers::parser {

enum class BaseType : std::uint8_t {
  kVoid,
  kChar,
  kShort,
  kInt,
  kLong,
  kLongLong,
  kFloat,
  kDouble,
  kNamed,  // typedef or struct name (size_t, FILE, wctrans_t, ...)
};

// Coarse classification used by the type lattice and the wrapper generator.
enum class TypeClass : std::uint8_t {
  kVoid,
  kIntegral,
  kFloating,
  kPointer,
};

struct TypeExpr {
  BaseType base = BaseType::kInt;
  bool is_unsigned = false;
  bool pointee_const = false;  // `const` on the innermost (pointed-to) type
  int pointer_depth = 0;       // number of '*'
  std::string name;            // for kNamed

  // Function-pointer declarators: `ret (*name)(params)`. base/is_unsigned/
  // pointer_depth describe the RETURN type; fn_params the parameter types.
  bool is_function_pointer = false;
  std::vector<TypeExpr> fn_params;

  [[nodiscard]] bool is_pointer() const noexcept {
    return pointer_depth > 0 || is_function_pointer;
  }
  [[nodiscard]] TypeClass classify() const noexcept;
  // Renders the type alone: "const char *", "unsigned long", "wctrans_t".
  [[nodiscard]] std::string to_string() const;
  // Renders a declarator: "const char *src", "int c".
  [[nodiscard]] std::string declare(const std::string& identifier) const;

  [[nodiscard]] bool operator==(const TypeExpr&) const = default;
};

struct Parameter {
  TypeExpr type;
  std::string name;  // may be empty (unnamed parameter)

  [[nodiscard]] bool operator==(const Parameter&) const = default;
};

struct FunctionProto {
  TypeExpr return_type;
  std::string name;
  std::vector<Parameter> params;
  bool varargs = false;

  // "char *strcpy(char *dest, const char *src);"
  [[nodiscard]] std::string to_declaration() const;

  [[nodiscard]] bool operator==(const FunctionProto&) const = default;
};

// Known typedefs of the simulated platform and their underlying scalar
// class. The header parser accepts any identifier in this table as a type
// name; the lattice uses the class to pick probe values.
[[nodiscard]] TypeClass named_type_class(const std::string& name);
[[nodiscard]] bool is_known_typedef(const std::string& name);

}  // namespace healers::parser
