#include "parser/manpage.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "parser/header_parser.hpp"

namespace healers::parser {

// --- SizeExpr -------------------------------------------------------------

SizeExpr SizeExpr::constant(std::uint64_t value) {
  SizeExpr e;
  e.kind_ = Kind::kConst;
  e.value_ = value;
  return e;
}

SizeExpr SizeExpr::arg(int index_1based) {
  SizeExpr e;
  e.kind_ = Kind::kArg;
  e.index_ = index_1based;
  return e;
}

SizeExpr SizeExpr::cstrlen(int index_1based) {
  SizeExpr e;
  e.kind_ = Kind::kCstrlen;
  e.index_ = index_1based;
  return e;
}

SizeExpr SizeExpr::formatted(int index_1based) {
  SizeExpr e;
  e.kind_ = Kind::kFormatted;
  e.index_ = index_1based;
  return e;
}

SizeExpr SizeExpr::stdin_line() {
  SizeExpr e;
  e.kind_ = Kind::kStdinLine;
  return e;
}

SizeExpr SizeExpr::min_of(SizeExpr a, SizeExpr b) {
  SizeExpr e;
  e.kind_ = Kind::kMin;
  e.children_.push_back(std::move(a));
  e.children_.push_back(std::move(b));
  return e;
}

SizeExpr SizeExpr::mul_of(SizeExpr a, SizeExpr b) {
  SizeExpr e;
  e.kind_ = Kind::kMul;
  e.children_.push_back(std::move(a));
  e.children_.push_back(std::move(b));
  return e;
}

SizeExpr SizeExpr::sum_of(std::vector<SizeExpr> terms) {
  if (terms.size() == 1) return std::move(terms.front());
  SizeExpr e;
  e.kind_ = Kind::kSum;
  e.children_ = std::move(terms);
  return e;
}

std::optional<std::uint64_t> safe_cstrlen(const mem::AddressSpace& space, mem::Addr addr,
                                          std::uint64_t cap) {
  // memchr-backed region scan; stops at the first unreadable byte or at cap,
  // both of which mean "no safely measurable string here".
  const mem::AddressSpace::TerminatorScan scan = space.scan_terminator(addr, cap);
  if (scan.found) return scan.scanned;
  return std::nullopt;
}

std::optional<std::uint64_t> SizeExpr::eval(const EvalEnv& env) const {
  switch (kind_) {
    case Kind::kConst:
      return value_;
    case Kind::kArg: {
      const std::size_t i = static_cast<std::size_t>(index_) - 1;
      if (i >= env.args.size()) return std::nullopt;
      return env.args[i];
    }
    case Kind::kCstrlen: {
      const std::size_t i = static_cast<std::size_t>(index_) - 1;
      if (i >= env.args.size()) return std::nullopt;
      return safe_cstrlen(env.space, env.args[i], env.cstrlen_cap);
    }
    case Kind::kFormatted:
      if (env.formatted_len) return env.formatted_len(index_);
      return std::nullopt;  // no oracle: not statically evaluable
    case Kind::kStdinLine:
      if (env.stdin_line_len) return env.stdin_line_len();
      return std::nullopt;
    case Kind::kMin: {
      const auto a = children_[0].eval(env);
      const auto b = children_[1].eval(env);
      if (!a || !b) return std::nullopt;
      return std::min(*a, *b);
    }
    case Kind::kMul: {
      const auto a = children_[0].eval(env);
      const auto b = children_[1].eval(env);
      if (!a || !b) return std::nullopt;
      if (*a != 0 && *b > ~std::uint64_t{0} / *a) return std::nullopt;  // overflow
      return *a * *b;
    }
    case Kind::kSum: {
      std::uint64_t total = 0;
      for (const SizeExpr& child : children_) {
        const auto v = child.eval(env);
        if (!v) return std::nullopt;
        if (total + *v < total) return std::nullopt;  // overflow
        total += *v;
      }
      return total;
    }
  }
  return std::nullopt;
}

std::string SizeExpr::to_string() const {
  switch (kind_) {
    case Kind::kConst:
      return std::to_string(value_);
    case Kind::kArg:
      return "arg(" + std::to_string(index_) + ")";
    case Kind::kCstrlen:
      return "cstrlen(" + std::to_string(index_) + ")";
    case Kind::kFormatted:
      return "formatted(" + std::to_string(index_) + ")";
    case Kind::kStdinLine:
      return "stdinline()";
    case Kind::kMin:
      return "min(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Kind::kMul:
      return "mul(" + children_[0].to_string() + "," + children_[1].to_string() + ")";
    case Kind::kSum: {
      std::string out;
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += '+';
        out += children_[i].to_string();
      }
      return out;
    }
  }
  return "?";
}

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  Result<SizeExpr> run() {
    auto expr = parse_sum();
    if (!expr.ok()) return expr;
    skip_ws();
    if (pos_ != text_.size()) {
      return Error("size expr: trailing input at offset " + std::to_string(pos_));
    }
    return expr;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Result<SizeExpr> parse_sum() {
    std::vector<SizeExpr> terms;
    for (;;) {
      auto term = parse_term();
      if (!term.ok()) return term;
      terms.push_back(std::move(term).take());
      skip_ws();
      if (peek() != '+') break;
      ++pos_;
    }
    return SizeExpr::sum_of(std::move(terms));
  }

  Result<SizeExpr> parse_term() {
    skip_ws();
    if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      std::uint64_t value = 0;
      const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + text_.size(),
                                             value);
      if (ec != std::errc{}) return Error("size expr: bad integer");
      pos_ = static_cast<std::size_t>(ptr - text_.data());
      return SizeExpr::constant(value);
    }
    std::string word;
    while (std::isalpha(static_cast<unsigned char>(peek())) != 0) word += text_[pos_++];
    if (word.empty()) return Error("size expr: expected term at offset " + std::to_string(pos_));
    skip_ws();
    if (peek() != '(') return Error("size expr: expected '(' after " + word);
    ++pos_;
    if (word == "stdinline") {
      skip_ws();
      if (peek() != ')') return Error("size expr: expected ')' in stdinline");
      ++pos_;
      return SizeExpr::stdin_line();
    }
    if (word == "arg" || word == "cstrlen" || word == "formatted") {
      skip_ws();
      int index = 0;
      const auto [ptr, ec] = std::from_chars(text_.data() + pos_, text_.data() + text_.size(),
                                             index);
      if (ec != std::errc{} || index < 1) return Error("size expr: bad index in " + word);
      pos_ = static_cast<std::size_t>(ptr - text_.data());
      skip_ws();
      if (peek() != ')') return Error("size expr: expected ')' in " + word);
      ++pos_;
      if (word == "arg") return SizeExpr::arg(index);
      if (word == "cstrlen") return SizeExpr::cstrlen(index);
      return SizeExpr::formatted(index);
    }
    if (word == "min" || word == "mul") {
      auto a = parse_sum();
      if (!a.ok()) return a;
      skip_ws();
      if (peek() != ',') return Error("size expr: expected ',' in " + word);
      ++pos_;
      auto b = parse_sum();
      if (!b.ok()) return b;
      skip_ws();
      if (peek() != ')') return Error("size expr: expected ')' in " + word);
      ++pos_;
      return word == "min" ? SizeExpr::min_of(std::move(a).take(), std::move(b).take())
                           : SizeExpr::mul_of(std::move(a).take(), std::move(b).take());
    }
    return Error("size expr: unknown function '" + word + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::string cur;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) words.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

Result<int> parse_index(const std::string& word) {
  int index = 0;
  const auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(), index);
  if (ec != std::errc{} || ptr != word.data() + word.size() || index < 1) {
    return Error("bad argument index '" + word + "'");
  }
  return index;
}

}  // namespace

Result<SizeExpr> SizeExpr::parse(std::string_view text) { return ExprParser(text).run(); }

// --- ManPage ---------------------------------------------------------------

const ArgAnnotation* ManPage::arg(int index_1based) const noexcept {
  for (const ArgAnnotation& a : args) {
    if (a.index == index_1based) return &a;
  }
  return nullptr;
}

ArgAnnotation& ManPage::arg_mut(int index_1based) {
  for (ArgAnnotation& a : args) {
    if (a.index == index_1based) return a;
  }
  args.push_back(ArgAnnotation{});
  args.back().index = index_1based;
  return args.back();
}

namespace {

Status apply_note(ManPage& page, const std::string& line) {
  const std::vector<std::string> words = split_words(line);
  if (words.empty()) return Status::success();
  const std::string& keyword = words[0];

  if (keyword == "NONNULL" || keyword == "ALLOWNULL") {
    if (words.size() < 2) return Error(keyword + ": missing index");
    for (std::size_t i = 1; i < words.size(); ++i) {
      auto index = parse_index(words[i]);
      if (!index.ok()) return index.error();
      ArgAnnotation& arg = page.arg_mut(index.value());
      (keyword == "NONNULL" ? arg.nonnull : arg.allownull) = true;
    }
    return Status::success();
  }
  if (keyword == "ARG") {
    if (words.size() < 3) return Error("ARG: expected 'ARG <i> <kind>'");
    auto index = parse_index(words[1]);
    if (!index.ok()) return index.error();
    ArgAnnotation& arg = page.arg_mut(index.value());
    const std::string& kind = words[2];
    if (kind == "CSTRING") {
      arg.cstring = true;
      return Status::success();
    }
    if (kind == "CURSOR") {
      arg.cursor = true;
      return Status::success();
    }
    if (kind == "FILE") {
      arg.is_file = true;
      return Status::success();
    }
    if (kind == "HEAPPTR") {
      arg.is_heapptr = true;
      return Status::success();
    }
    if (kind == "FUNCPTR") {
      arg.is_funcptr = true;
      return Status::success();
    }
    if (kind == "SAVEPTR") {
      if (words.size() != 4) return Error("ARG SAVEPTR: expected cursor index");
      auto cursor = parse_index(words[3]);
      if (!cursor.ok()) return cursor.error();
      arg.saveptr_index = cursor.value();
      return Status::success();
    }
    if (kind == "RANGE") {
      if (words.size() != 5) return Error("ARG RANGE: expected lo and hi");
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      auto parse64 = [](const std::string& w, std::int64_t& out) {
        const auto [ptr, ec] = std::from_chars(w.data(), w.data() + w.size(), out);
        return ec == std::errc{} && ptr == w.data() + w.size();
      };
      if (!parse64(words[3], lo) || !parse64(words[4], hi) || lo > hi) {
        return Error("ARG RANGE: bad bounds");
      }
      arg.range = {lo, hi};
      return Status::success();
    }
    if (kind == "BUF") {
      // ARG <i> BUF WRITE|READ SIZE <expr>
      if (words.size() < 6 || (words[3] != "WRITE" && words[3] != "READ") ||
          words[4] != "SIZE") {
        return Error("ARG BUF: expected 'BUF WRITE|READ SIZE <expr>'");
      }
      std::string expr_text;
      for (std::size_t i = 5; i < words.size(); ++i) expr_text += words[i];
      auto expr = SizeExpr::parse(expr_text);
      if (!expr.ok()) return expr.error();
      if (words[3] == "WRITE") {
        arg.write_size = std::move(expr).take();
      } else {
        arg.read_size = std::move(expr).take();
      }
      return Status::success();
    }
    return Error("ARG: unknown kind '" + kind + "'");
  }
  if (keyword == "HEAP") {
    if (words.size() != 2 || (words[1] != "ALLOC" && words[1] != "FREE")) {
      return Error("HEAP: expected ALLOC or FREE");
    }
    (words[1] == "ALLOC" ? page.heap_alloc : page.heap_free) = true;
    return Status::success();
  }
  if (keyword == "ERRNO") {
    for (std::size_t i = 1; i < words.size(); ++i) page.errnos.push_back(words[i]);
    return Status::success();
  }
  if (keyword == "CALLS") {
    if (words.size() < 2) return Error("CALLS: missing symbol name");
    for (std::size_t i = 1; i < words.size(); ++i) page.calls.push_back(words[i]);
    return Status::success();
  }
  if (keyword == "VARARGS") {
    page.varargs = true;
    return Status::success();
  }
  if (keyword == "STATEFUL") {
    page.stateful = true;
    return Status::success();
  }
  if (keyword == "NORETURN") {
    page.noreturn = true;
    return Status::success();
  }
  return Error("unknown annotation '" + keyword + "'");
}

}  // namespace

Result<ManPage> parse_manpage(std::string_view document) {
  ManPage page;
  enum class Section { kNone, kName, kSynopsis, kNotes };
  Section section = Section::kNone;
  std::string synopsis;

  std::size_t start = 0;
  while (start <= document.size()) {
    std::size_t end = document.find('\n', start);
    if (end == std::string_view::npos) end = document.size();
    std::string line(document.substr(start, end - start));
    start = end + 1;

    // Trim.
    while (!line.empty() && (std::isspace(static_cast<unsigned char>(line.back())) != 0)) {
      line.pop_back();
    }
    std::size_t indent = 0;
    while (indent < line.size() && (std::isspace(static_cast<unsigned char>(line[indent])) != 0)) {
      ++indent;
    }
    const std::string body = line.substr(indent);
    if (body.empty()) continue;

    if (indent == 0) {
      if (body == "NAME") section = Section::kName;
      else if (body == "SYNOPSIS") section = Section::kSynopsis;
      else if (body == "NOTES") section = Section::kNotes;
      else return Error("unknown man-page section '" + body + "'");
      continue;
    }

    switch (section) {
      case Section::kNone:
        return Error("content before first section: '" + body + "'");
      case Section::kName: {
        const std::size_t dash = body.find(" - ");
        if (dash == std::string::npos) {
          page.name = body;
        } else {
          page.name = body.substr(0, dash);
          page.summary = body.substr(dash + 3);
        }
        break;
      }
      case Section::kSynopsis:
        synopsis += body;
        synopsis += '\n';
        break;
      case Section::kNotes: {
        auto status = apply_note(page, body);
        if (!status.ok()) return status.error();
        break;
      }
    }
  }

  if (synopsis.empty()) return Error("man page has no SYNOPSIS");
  auto proto = parse_declaration(synopsis);
  if (!proto.ok()) return proto.error();
  page.proto = std::move(proto).take();
  if (page.name.empty()) page.name = page.proto.name;
  if (page.proto.varargs) page.varargs = true;
  return page;
}

}  // namespace healers::parser
