// The buffer-overflow attack demonstrations of paper §3.4:
//
//   "It first shows that an attacker can hijack the control flow of a root
//    privileged program by overflowing a buffer allocated on the heap. This
//    results in a root shell for the attacker. ... Then we show that our
//    security wrapper can detect such buffer overflows and terminate the
//    attacker's program."
//
// run_heap_smash_attack() mounts the classic unsafe-unlink exploit against
// the simulated chunked heap: a victim process copies an attacker-crafted
// message into a heap buffer; the overflow rewrites the neighbouring chunk
// header into a fake free chunk whose fd/bk aim at a GOT slot; the victim's
// own free() then performs the unlink's arbitrary write, and its next
// library call jumps into attacker-controlled memory (ControlFlowHijack —
// the simulated "root shell").
//
// run_stack_smash_attack() is the stack variant: strcpy through a
// stack-allocated buffer overruns the frame's saved return address; the
// function's return transfers control to the attacker.
//
// Both take the preload list of the victim process: empty = unprotected
// (attack succeeds), {security wrapper} = protected (wrapper aborts the
// process before the hijack).
#pragma once

#include <string>
#include <vector>

#include "linker/executable.hpp"

namespace healers::simlib {
class CallObserver;
}

namespace healers::attacks {

struct AttackResult {
  linker::CallOutcome outcome;     // terminal outcome of the victim run
  bool hijack_succeeded = false;   // attacker got "a shell"
  bool blocked_by_wrapper = false; // a wrapper aborted the process first
  bool survived = false;           // victim ran to completion (repair mode)
  std::string stdout_text;         // victim's captured stdout after the run
  std::string narrative;           // step-by-step demo log
};

// `hardened_allocator` enables the simulated heap's post-2004 safe-unlink
// check in the victim process — the allocator-side mitigation the ablation
// bench compares against the paper's wrapper-side defence.
//
// `observer` (optional) attaches an incident flight recorder to the victim
// process before the attack runs, so the wrapper's detection — or the
// unprotected crash — produces a crash dossier (`healers dossier`).
[[nodiscard]] AttackResult run_heap_smash_attack(const linker::LibraryCatalog& catalog,
                                                 std::vector<linker::InterpositionPtr> preloads,
                                                 bool hardened_allocator = false,
                                                 simlib::CallObserver* observer = nullptr);

[[nodiscard]] AttackResult run_stack_smash_attack(const linker::LibraryCatalog& catalog,
                                                  std::vector<linker::InterpositionPtr> preloads,
                                                  simlib::CallObserver* observer = nullptr);

// The victim executables themselves, exposed for the Fig 4 inspection demo
// (they have realistic DT_NEEDED / undefined-symbol lists).
[[nodiscard]] linker::Executable heap_victim_executable();
[[nodiscard]] linker::Executable stack_victim_executable();

// The surface-drift demo (docs/debloat.md): a daemon whose declared import
// list went stale — a later code revision added a rand() call the binary's
// undefined list never picked up. validate_executable reports the stale
// import; under demand loading the call traps as a surface violation.
[[nodiscard]] linker::Executable drift_victim_executable();

}  // namespace healers::attacks
