#include "attacks/attacks.hpp"

#include <sstream>

#include "memmodel/heap.hpp"
#include "simlib/value.hpp"

namespace healers::attacks {

namespace {

using linker::CallOutcome;
using linker::Process;
using mem::Addr;
using simlib::SimValue;

// Writes a 64-bit little-endian value into attacker-controlled input bytes.
void put64(std::vector<std::byte>& bytes, std::size_t offset, std::uint64_t value) {
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[offset + i] = std::byte{static_cast<std::uint8_t>(value >> (8 * i))};
  }
}

// The heap victim: a "network daemon" that copies an attacker-controlled
// message into a fixed 64-byte heap buffer with no bounds check, then frees
// the buffer and logs. The attacker crafts the message for the classic
// unsafe-unlink exploit (layout knowledge of the chunked heap is assumed,
// as real attackers assumed dlmalloc's).
int heap_victim_main(Process& p, std::string& log) {
  mem::Machine& m = p.machine();
  // Narrates incrementally: when the exploit fires mid-run, the log still
  // shows every step up to the hijack.
  const auto note = [&log](std::ostringstream& line) {
    log += line.str();
    log += '\n';
    line.str("");
  };
  std::ostringstream out;

  // Startup banner. Also binds puts' GOT slot before the attacker reads its
  // address below — under demand loading the slot does not exist until the
  // first call faults it in.
  p.call("puts", {SimValue::ptr(p.rodata_cstring("netd: ready"))});

  const Addr msg = p.call("malloc", {SimValue::integer(64)}).as_ptr();
  const Addr session = p.call("malloc", {SimValue::integer(64)}).as_ptr();
  p.call("strcpy", {SimValue::ptr(session), SimValue::ptr(p.rodata_cstring("session:admin"))});
  out << "victim: message buffer at 0x" << std::hex << msg << ", session object at 0x" << session
      << std::dec;
  note(out);

  // --- the attacker crafts the message -----------------------------------
  // Assumed unprotected layout: malloc(64) -> 80-byte chunk, so the
  // neighbour's header sits exactly 64 bytes past the message buffer.
  //   [64B pad][fake size|flags][fake prev_size][fake fd][fake bk]
  // fd = GOT(puts) - 24 and bk = msg, so free(msg)'s forward-coalesce
  // unlink writes: *(fd+24) = bk  =>  GOT(puts) = msg  (shellcode), and
  //                *(bk+16) = fd  =>  harmless write into the message body.
  const Addr got_puts = m.got_slot("puts");
  std::vector<std::byte> payload(96, std::byte{'A'});
  put64(payload, 64, 80);             // fake chunk size, in-use bit CLEAR
  put64(payload, 72, 80);             // fake prev_size
  put64(payload, 80, got_puts - 24);  // fd
  put64(payload, 88, msg);            // bk -> "shellcode" = the message itself
  out << "attacker: crafted " << payload.size() << "-byte unlink payload (fd=GOT(puts)-24, "
      << "bk=msg)";
  note(out);

  const Addr input = p.scratch(256, mem::Perm::kReadWrite, "net_input");
  m.mem().write_bytes(input, payload.data(), payload.size());

  // --- the vulnerable copy ------------------------------------------------
  p.call("memcpy", {SimValue::ptr(msg), SimValue::ptr(input),
                    SimValue::integer(static_cast<std::int64_t>(payload.size()))});
  out << "victim: copied attacker message into the 64-byte buffer (overflow)";
  note(out);

  // --- victim's own cleanup executes the exploit --------------------------
  p.call("free", {SimValue::ptr(msg)});
  out << "victim: freed the message buffer (unsafe unlink ran)";
  note(out);

  // --- next library call jumps through the rewritten GOT slot -------------
  p.call("puts", {SimValue::ptr(p.rodata_cstring("request handled"))});
  out << "victim: logged and exited normally";
  note(out);
  return 0;
}

// The stack victim: handle_request() copies attacker input into a 64-byte
// stack buffer with strcpy; the input is long enough to overrun the frame's
// saved return address.
int stack_victim_main(Process& p, std::string& log) {
  mem::Machine& m = p.machine();
  const auto note = [&log](std::ostringstream& line) {
    log += line.str();
    log += '\n';
    line.str("");
  };
  std::ostringstream out;

  const Addr ret_target = m.register_code("main+0x42");
  const mem::Frame& frame = m.stack().push("handle_request", 64, ret_target);
  const Addr buf = m.stack().alloc_local(64);
  const std::uint64_t room = frame.ret_slot - buf;
  out << "victim: handle_request frame, 64-byte buffer at 0x" << std::hex << buf
      << ", return address slot at 0x" << frame.ret_slot << std::dec << " (" << room
      << " bytes of room)";
  note(out);

  // Attacker input: padding up to the return slot, then a fake return
  // address (printable, NUL-free — strcpy carries it through; its
  // terminating NUL becomes the address's top byte, landing exactly on the
  // last byte of the slot).
  std::string payload(room, 'A');
  for (int i = 0; i < 7; ++i) payload += 'B';  // ret becomes 0x00424242424242
  const Addr input = p.scratch(payload.size() + 16, mem::Perm::kReadWrite, "net_input");
  m.mem().write_cstring(input, payload);
  out << "attacker: " << payload.size() << "-byte string overruns the saved return address";
  note(out);

  p.call("strcpy", {SimValue::ptr(buf), SimValue::ptr(input)});
  out << "victim: strcpy into the stack buffer completed (overflow)";
  note(out);

  const mem::Stack::PopResult popped = m.stack().pop();
  if (popped.corrupted()) {
    // The simulated `ret`: control transfers to the attacker's value.
    throw ControlFlowHijack("return to 0x" + std::to_string(popped.stored_ret) +
                            " (attacker-controlled)");
  }
  out << "victim: returned normally";
  note(out);
  return 0;
}

AttackResult run_attack(const linker::Executable& exe, const linker::LibraryCatalog& catalog,
                        std::vector<linker::InterpositionPtr> preloads,
                        int (*main_fn)(Process&, std::string&),
                        bool hardened_allocator = false,
                        simlib::CallObserver* observer = nullptr) {
  AttackResult result;
  auto process = linker::spawn(exe, catalog, std::move(preloads));
  process->machine().heap().set_safe_unlink(hardened_allocator);
  process->set_observer(observer);
  result.outcome = process->run(
      [&result, main_fn](Process& p) { return main_fn(p, result.narrative); });
  result.hijack_succeeded = result.outcome.kind == CallOutcome::Kind::kHijack;
  result.blocked_by_wrapper = result.outcome.kind == CallOutcome::Kind::kAbort &&
                              result.outcome.detail.find("security wrapper") != std::string::npos;
  // Repair-mode acceptance surface: the victim ran to completion AND its
  // stdout shows the post-attack work actually happened (docs/repair.md).
  // Main-driven victims come back as kReturned; exe.entry runs finish as an
  // orderly kExit 0.
  result.survived = result.outcome.kind == CallOutcome::Kind::kReturned ||
                    (result.outcome.kind == CallOutcome::Kind::kExit &&
                     result.outcome.exit_code == 0);
  result.stdout_text = process->state().stdout_capture;
  result.narrative += "outcome: " + result.outcome.to_string() + "\n";
  return result;
}

}  // namespace

linker::Executable heap_victim_executable() {
  linker::Executable exe;
  exe.name = "netd";  // the "root privileged program" of demo 3.4
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  exe.undefined = {"malloc", "free", "memcpy", "strcpy", "puts"};
  exe.entry = [](Process& p) {
    std::string ignored;
    return heap_victim_main(p, ignored);
  };
  return exe;
}

linker::Executable stack_victim_executable() {
  linker::Executable exe;
  exe.name = "reqhandler";
  exe.needed = {"libsimc.so.1"};
  exe.undefined = {"strcpy"};
  exe.entry = [](Process& p) {
    std::string ignored;
    return stack_victim_main(p, ignored);
  };
  return exe;
}

linker::Executable drift_victim_executable() {
  linker::Executable exe;
  exe.name = "statsd";
  exe.needed = {"libsimc.so.1", "libsimio.so.1"};
  // Stale on purpose: the v2 sampling path below also calls rand(), but the
  // import list still describes v1.
  exe.undefined = {"strlen", "puts"};
  exe.entry = [](Process& p) {
    p.call("puts", {SimValue::ptr(p.rodata_cstring("statsd: sampling"))});
    p.call("strlen", {SimValue::ptr(p.rodata_cstring("metric=42"))});
    p.call("rand", {});  // the drifted call
    p.call("puts", {SimValue::ptr(p.rodata_cstring("statsd: done"))});
    return 0;
  };
  return exe;
}

AttackResult run_heap_smash_attack(const linker::LibraryCatalog& catalog,
                                   std::vector<linker::InterpositionPtr> preloads,
                                   bool hardened_allocator, simlib::CallObserver* observer) {
  return run_attack(heap_victim_executable(), catalog, std::move(preloads), heap_victim_main,
                    hardened_allocator, observer);
}

AttackResult run_stack_smash_attack(const linker::LibraryCatalog& catalog,
                                    std::vector<linker::InterpositionPtr> preloads,
                                    simlib::CallObserver* observer) {
  return run_attack(stack_victim_executable(), catalog, std::move(preloads), stack_victim_main,
                    false, observer);
}

}  // namespace healers::attacks
