// Fleet producer side: N simulated hosts, each running wrapped apps through
// the simulated linker (paper §2.3: profiling wrappers in many processes
// across a distributed environment) and emitting one profile document per
// app run — XML or the compact binary wire format, per config.
//
// Determinism: every document is a pure function of (seed, host, doc index).
// Each app run gets a private RNG seeded from those coordinates, the cycle
// clock is virtual, and hosts write into preassigned output slots, so run()
// returns the same documents for every `jobs` value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/toolkit.hpp"

namespace healers::fleet {

struct SimulatorConfig {
  unsigned hosts = 8;
  unsigned docs_per_host = 8;  // app runs (= documents) per host
  std::uint64_t seed = 2003;
  enum class Encoding : std::uint8_t { kXml, kBinary, kMixed } encoding = Encoding::kMixed;
  unsigned jobs = 1;  // hosts simulated in parallel; 0 = all cores
};

class FleetSimulator {
 public:
  FleetSimulator(const core::Toolkit& toolkit, SimulatorConfig config = {});

  // Emits hosts * docs_per_host documents, host-major order.
  [[nodiscard]] std::vector<std::string> run() const;

  // Process name of one app run ("host03/app007") — the placement key tests
  // and the collector's sketch sharding rely on.
  [[nodiscard]] static std::string process_name(unsigned host, unsigned doc);

 private:
  void run_host(unsigned host, std::vector<std::string>& out) const;

  const core::Toolkit& toolkit_;
  SimulatorConfig config_;
};

}  // namespace healers::fleet
