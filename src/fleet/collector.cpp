#include "fleet/collector.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "debloat/surface.hpp"
#include "fleet/wire.hpp"
#include "incident/dossier.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/observer.hpp"
#include "support/thread_pool.hpp"
#include "xml/xml.hpp"

namespace healers::fleet {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

FleetCollector::FleetCollector(CollectorConfig config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  for (unsigned i = 0; i < config_.shards; ++i) {
    ingest_.push_back(std::make_unique<IngestShard>());
    agg_.push_back(std::make_unique<AggShard>());
  }
}

bool FleetCollector::submit(std::string payload) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t shard =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % ingest_.size();
  IngestShard& target = *ingest_[shard];
  std::lock_guard lock(target.mutex);
  if (target.queue.size() >= config_.queue_capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (config_.policy == OverflowPolicy::kDropNewest) return false;
    target.queue.pop_front();  // kDropOldest: shed the head, admit the tail
  }
  target.queue.push_back(std::move(payload));
  return true;
}

void FleetCollector::fold(const profile::ProfileReport& report) {
  // One sketch sample per document; shard by process so merge order never
  // depends on queue placement.
  {
    AggShard& shard = *agg_[fnv1a(report.process) % agg_.size()];
    std::lock_guard lock(shard.mutex);
    shard.sketch.add(report.total_cycles());
  }
  for (const profile::FunctionProfile& fn : report.functions) {
    AggShard& shard = *agg_[fnv1a(fn.symbol) % agg_.size()];
    std::lock_guard lock(shard.mutex);
    profile::FunctionProfile& total = shard.functions[fn.symbol];
    total.symbol = fn.symbol;
    total.calls += fn.calls;
    total.cycles += fn.cycles;
    total.contained += fn.contained;
    for (const auto& [err, count] : fn.errno_counts) total.errno_counts[err] += count;
  }
  for (const auto& [err, count] : report.global_errnos) {
    AggShard& shard = *agg_[static_cast<std::uint64_t>(err) % agg_.size()];
    std::lock_guard lock(shard.mutex);
    shard.global_errnos[err] += count;
  }
  aggregated_.fetch_add(1, std::memory_order_relaxed);
}

void FleetCollector::fold_dossier(const incident::Dossier& dossier) {
  const std::string key = simlib::to_string(dossier.detector) + " " + dossier.symbol;
  {
    AggShard& shard = *agg_[fnv1a(key) % agg_.size()];
    std::lock_guard lock(shard.mutex);
    ++shard.dossiers[key];
  }
  aggregated_.fetch_add(1, std::memory_order_relaxed);
}

void FleetCollector::fold_surface(const debloat::SurfaceProfile& profile) {
  AggShard& shard = *agg_[fnv1a(profile.executable) % agg_.size()];
  {
    std::lock_guard lock(shard.mutex);
    SurfaceAgg& agg = shard.surfaces[profile.executable];
    ++agg.docs;
    agg.exported += profile.exported;
    agg.reachable += profile.reachable;
    agg.touched += profile.touched;
    agg.trapped += profile.trapped;
    agg.resident_pages += profile.resident_pages;
    agg.total_pages += profile.total_pages;
    for (const std::string& symbol : profile.trapped_symbols) ++agg.trapped_symbols[symbol];
  }
  aggregated_.fetch_add(1, std::memory_order_relaxed);
}

void FleetCollector::flush() {
  // Claim everything queued right now; later submits wait for the next flush.
  // Shards are claimed one at a time, so a producer racing this loop may
  // land a payload in an already-claimed shard — that payload is simply
  // pending() until the next flush, never lost: the accounting identity
  // submitted == aggregated + malformed + dropped + pending holds at every
  // quiescent point for every shard/worker/policy combination (test_sim's
  // drop-accounting matrix and test_fleet's flush-race test assert this).
  std::vector<std::string> claimed;
  for (auto& shard : ingest_) {
    std::lock_guard lock(shard->mutex);
    claimed.reserve(claimed.size() + shard->queue.size());
    while (!shard->queue.empty()) {
      claimed.push_back(std::move(shard->queue.front()));
      shard->queue.pop_front();
    }
  }
  if (claimed.empty()) return;

  // One decode task per batch; the totals are commutative, so tasks fold
  // directly into the aggregation shards under their mutexes.
  std::vector<support::ThreadPool::Task> tasks;
  const std::size_t batches =
      (claimed.size() + config_.batch_size - 1) / config_.batch_size;
  tasks.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t begin = b * config_.batch_size;
    const std::size_t end = std::min(claimed.size(), begin + config_.batch_size);
    tasks.push_back([this, &claimed, begin, end](unsigned /*worker*/) {
      const auto reject = [this](const std::string& message) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard lock(error_mutex_);
        if (first_error_.empty()) first_error_ = message;
      };
      for (std::size_t i = begin; i < end; ++i) {
        const std::string& payload = claimed[i];
        // Dossiers and profiles share the pipe; sniff binary documents by
        // magic and XML documents by root element (parsed once).
        if (is_dossier_binary(payload)) {
          auto dossier = decode_dossier_binary(payload);
          if (!dossier.ok()) {
            reject(dossier.error().message);
            continue;
          }
          fold_dossier(dossier.value());
          continue;
        }
        if (is_surface_binary(payload)) {
          auto surface = decode_surface_binary(payload);
          if (!surface.ok()) {
            reject(surface.error().message);
            continue;
          }
          fold_surface(surface.value());
          continue;
        }
        if (is_binary_document(payload)) {
          auto report = decode_binary(payload);
          if (!report.ok()) {
            reject(report.error().message);
            continue;
          }
          fold(report.value());
          continue;
        }
        auto parsed = xml::parse(payload);
        if (!parsed.ok()) {
          reject("xml document: " + parsed.error().message);
          continue;
        }
        if (parsed.value().name() == "dossier") {
          auto dossier = incident::from_xml(parsed.value());
          if (!dossier.ok()) {
            reject(dossier.error().message);
            continue;
          }
          fold_dossier(dossier.value());
          continue;
        }
        if (parsed.value().name() == "surface-profile") {
          auto surface = debloat::surface_from_xml(parsed.value());
          if (!surface.ok()) {
            reject(surface.error().message);
            continue;
          }
          fold_surface(surface.value());
          continue;
        }
        auto report = profile::from_xml(parsed.value());
        if (!report.ok()) {
          reject(report.error().message);
          continue;
        }
        fold(report.value());
      }
    });
  }
  const unsigned workers =
      config_.workers == 0 ? support::ThreadPool::hardware_workers() : config_.workers;
  support::ThreadPool pool(workers);
  pool.run(std::move(tasks));
}

std::uint64_t FleetCollector::pending() const {
  std::uint64_t n = 0;
  for (const auto& shard : ingest_) {
    std::lock_guard lock(shard->mutex);
    n += shard->queue.size();
  }
  return n;
}

std::string FleetCollector::first_error() const {
  std::lock_guard lock(error_mutex_);
  return first_error_;
}

FleetSnapshot FleetCollector::snapshot() const {
  FleetSnapshot snap;
  snap.submitted = submitted();
  snap.aggregated = aggregated();
  snap.malformed = malformed();
  snap.dropped = dropped();
  snap.pending = pending();
  CycleSketch merged;
  for (const auto& shard : agg_) {
    std::lock_guard lock(shard->mutex);
    merged.merge(shard->sketch);
    for (const auto& [symbol, fn] : shard->functions) {
      profile::FunctionProfile& total = snap.functions[symbol];
      total.symbol = symbol;
      total.calls += fn.calls;
      total.cycles += fn.cycles;
      total.contained += fn.contained;
      for (const auto& [err, count] : fn.errno_counts) total.errno_counts[err] += count;
    }
    for (const auto& [err, count] : shard->global_errnos) snap.global_errnos[err] += count;
    for (const auto& [key, count] : shard->dossiers) snap.dossiers[key] += count;
    for (const auto& [exe, agg] : shard->surfaces) {
      SurfaceAgg& total = snap.surfaces[exe];
      total.docs += agg.docs;
      total.exported += agg.exported;
      total.reachable += agg.reachable;
      total.touched += agg.touched;
      total.trapped += agg.trapped;
      total.resident_pages += agg.resident_pages;
      total.total_pages += agg.total_pages;
      for (const auto& [symbol, count] : agg.trapped_symbols)
        total.trapped_symbols[symbol] += count;
    }
  }
  snap.cycles_p50 = merged.quantile(0.50);
  snap.cycles_p95 = merged.quantile(0.95);
  snap.cycles_p99 = merged.quantile(0.99);
  return snap;
}

std::string FleetSnapshot::render() const {
  std::ostringstream out;
  out << "fleet summary\n";
  out << "  documents: " << aggregated << " aggregated, " << malformed << " malformed, "
      << dropped << " dropped, " << pending << " pending (" << submitted << " submitted)\n";
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  std::uint64_t contained = 0;
  for (const auto& [_, fn] : functions) {
    calls += fn.calls;
    errors += fn.errors();
    contained += fn.contained;
  }
  out << "  functions: " << functions.size() << " distinct, " << calls << " calls, " << errors
      << " errors, " << contained << " contained\n";
  out << "  exec cycles per document: p50=" << cycles_p50 << " p95=" << cycles_p95
      << " p99=" << cycles_p99 << "\n";
  for (const auto& [symbol, fn] : functions) {
    out << "    " << std::left << std::setw(12) << symbol << std::right << std::setw(10)
        << fn.calls << " calls" << std::setw(12) << fn.cycles << " cycles";
    if (fn.errors() > 0) out << ", " << fn.errors() << " errors";
    if (fn.contained > 0) out << ", " << fn.contained << " contained";
    out << "\n";
  }
  if (!global_errnos.empty()) {
    out << "  errno distribution:\n";
    for (const auto& [err, count] : global_errnos) {
      out << "    " << std::left << std::setw(8) << simlib::errno_name(err) << std::right
          << std::setw(8) << count << "\n";
    }
  }
  if (!dossiers.empty()) {
    std::uint64_t total = 0;
    for (const auto& [_, count] : dossiers) total += count;
    out << "  incident dossiers: " << total << "\n";
    for (const auto& [key, count] : dossiers) {
      out << "    " << std::left << std::setw(24) << key << std::right << std::setw(8) << count
          << "\n";
    }
  }
  if (!surfaces.empty()) {
    std::uint64_t total = 0;
    for (const auto& [_, agg] : surfaces) total += agg.docs;
    out << "  surface profiles: " << total << "\n";
    for (const auto& [exe, agg] : surfaces) {
      // Integer percentages over commutative sums keep the line identical
      // for every shard/worker split of the same document set.
      const std::uint64_t unmapped =
          agg.exported == 0 ? 0 : (agg.exported - agg.touched) * 100 / agg.exported;
      const std::uint64_t resident =
          agg.total_pages == 0 ? 0 : agg.resident_pages * 100 / agg.total_pages;
      out << "    " << std::left << std::setw(12) << exe << std::right << std::setw(8)
          << agg.docs << " docs, " << unmapped << "% unmapped, " << resident
          << "% pages resident, " << agg.trapped << " trapped\n";
      for (const auto& [symbol, count] : agg.trapped_symbols) {
        out << "      trapped " << std::left << std::setw(16) << symbol << std::right
            << std::setw(8) << count << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace healers::fleet
