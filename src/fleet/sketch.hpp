// Streaming quantile sketch for exec-cycle percentiles (p50/p95/p99).
//
// Fleet aggregation must be DETERMINISTIC: the rendered summary has to be
// byte-identical for any shard count or worker count (mirroring the campaign
// engine's jobs-independence guarantee). Sample-based sketches (GK, t-digest)
// depend on insertion order, so we use an HdrHistogram-style bucketed
// histogram instead: values map to log-scaled buckets computed with pure
// integer arithmetic (bit_width + top kSubBits mantissa bits, <= ~3% relative
// error), and both add() and merge() are plain counter additions —
// commutative and associative, so any partitioning of the input produces the
// same bucket vector and therefore the same quantiles.
#pragma once

#include <cstdint>
#include <vector>

namespace healers::fleet {

class CycleSketch {
 public:
  // Sub-bucket resolution: 2^kSubBits linear buckets per power of two.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  // Indices: values < kSubBuckets map 1:1; above that, one group of
  // kSubBuckets buckets per additional leading-bit position.
  static constexpr int kBucketCount = (64 - kSubBits + 1) * kSubBuckets;

  CycleSketch() : counts_(kBucketCount, 0) {}

  void add(std::uint64_t value, std::uint64_t weight = 1) {
    counts_[static_cast<std::size_t>(bucket_index(value))] += weight;
    total_ += weight;
  }

  void merge(const CycleSketch& other) {
    for (int i = 0; i < kBucketCount; ++i) counts_[static_cast<std::size_t>(i)] += other.counts_[static_cast<std::size_t>(i)];
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  // Value at quantile q in [0, 1]: the lower bound of the bucket holding the
  // rank-ceil(q * total) sample. 0 when the sketch is empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] static int bucket_index(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_floor(int index) noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace healers::fleet
