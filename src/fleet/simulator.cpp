#include "fleet/simulator.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fleet/wire.hpp"
#include "linker/process.hpp"
#include "profile/report.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "wrappers/wrappers.hpp"
#include "xml/xml.hpp"

namespace healers::fleet {
namespace {

// Per-run profile = counter delta over the run. The wrapper's stats are
// cumulative across a host's app runs (one wrapper per host, as one
// preloaded wrapper library serves every process on a machine), so each
// document subtracts the previous run's snapshot. All counters are
// monotone, which makes the delta exact.
profile::ProfileReport delta_report(const profile::ProfileReport& cur,
                                    const profile::ProfileReport& prev) {
  profile::ProfileReport out;
  out.process = cur.process;
  out.wrapper = cur.wrapper;
  for (const profile::FunctionProfile& fn : cur.functions) {
    const profile::FunctionProfile* base = prev.function(fn.symbol);
    profile::FunctionProfile d;
    d.symbol = fn.symbol;
    d.calls = fn.calls - (base != nullptr ? base->calls : 0);
    d.cycles = fn.cycles - (base != nullptr ? base->cycles : 0);
    d.contained = fn.contained - (base != nullptr ? base->contained : 0);
    for (const auto& [err, count] : fn.errno_counts) {
      std::uint64_t before = 0;
      if (base != nullptr) {
        const auto it = base->errno_counts.find(err);
        if (it != base->errno_counts.end()) before = it->second;
      }
      if (count > before) d.errno_counts[err] = count - before;
    }
    if (d.calls != 0 || d.cycles != 0 || d.contained != 0 || !d.errno_counts.empty()) {
      out.functions.push_back(std::move(d));
    }
  }
  for (const auto& [err, count] : cur.global_errnos) {
    std::uint64_t before = 0;
    const auto it = prev.global_errnos.find(err);
    if (it != prev.global_errnos.end()) before = it->second;
    if (count > before) out.global_errnos[err] = count - before;
  }
  return out;
}

const char* const kWords[] = {"alpha", "beta", "gamma", "delta", "epsilon", "omega"};

// One simulated app run: a small seeded workload over libsimc, all calls
// valid (the fleet's steady state), with shape 2 exercising error paths so
// the fleet errno histogram is non-trivial.
void run_app(linker::Process& proc, Rng& rng) {
  using simlib::SimValue;
  const auto word = [&rng] { return kWords[rng.below(std::size(kWords))]; };
  const int shape = static_cast<int>(rng.below(3));
  const int iters = 1 + static_cast<int>(rng.below(4));
  const mem::Addr dest = proc.scratch(64, mem::Perm::kReadWrite, "copybuf");
  for (int i = 0; i < iters; ++i) {
    switch (shape) {
      case 0: {  // measure/scan/classify
        const mem::Addr w = proc.rodata_cstring(word());
        proc.call("strlen", {SimValue::ptr(w)});
        proc.call("strchr", {SimValue::ptr(w), SimValue::integer('a')});
        proc.call("toupper", {SimValue::integer('a' + static_cast<int>(rng.below(26)))});
        break;
      }
      case 1: {  // copy/convert
        proc.call("strcpy", {SimValue::ptr(dest), SimValue::ptr(proc.rodata_cstring(word()))});
        proc.call("strlen", {SimValue::ptr(dest)});
        proc.call("atoi",
                  {SimValue::ptr(proc.rodata_cstring(std::to_string(rng.below(10000))))});
        break;
      }
      default: {  // error paths: wctrans("bogus") fails with EINVAL
        proc.machine().set_err(0);
        proc.call("wctrans", {SimValue::ptr(proc.rodata_cstring("bogus"))});
        proc.call("strlen", {SimValue::ptr(proc.rodata_cstring(word()))});
        break;
      }
    }
  }
}

}  // namespace

FleetSimulator::FleetSimulator(const core::Toolkit& toolkit, SimulatorConfig config)
    : toolkit_(toolkit), config_(config) {
  if (config_.hosts == 0) config_.hosts = 1;
  if (config_.docs_per_host == 0) config_.docs_per_host = 1;
}

std::string FleetSimulator::process_name(unsigned host, unsigned doc) {
  std::ostringstream name;
  name << "host" << std::setfill('0') << std::setw(2) << host << "/app" << std::setw(3) << doc;
  return name.str();
}

void FleetSimulator::run_host(unsigned host, std::vector<std::string>& out) const {
  const simlib::SharedLibrary* lib = toolkit_.library("libsimc.so.1");
  if (lib == nullptr) throw std::logic_error("fleet: toolkit has no libsimc.so.1");
  auto wrapper = wrappers::make_profiling_wrapper(*lib).value();
  profile::ProfileReport prev;
  for (unsigned d = 0; d < config_.docs_per_host; ++d) {
    const std::string name = process_name(host, d);
    linker::Process proc(name);
    proc.load_library(lib);
    proc.preload(wrapper);
    Rng rng(config_.seed * 0x9e3779b97f4a7c15ULL ^ (host * 0xc2b2ae3d27d4eb4fULL) ^
            (d * 0x165667b19e3779f9ULL));
    run_app(proc, rng);
    profile::ProfileReport cur =
        profile::build_report(name, wrapper->name(), *wrapper->stats());
    const profile::ProfileReport doc_report = delta_report(cur, prev);
    prev = std::move(cur);
    const bool binary = config_.encoding == SimulatorConfig::Encoding::kBinary ||
                        (config_.encoding == SimulatorConfig::Encoding::kMixed &&
                         (host + d) % 2 == 1);
    out.push_back(binary ? encode_binary(doc_report)
                         : xml::serialize(profile::to_xml(doc_report)));
  }
}

std::vector<std::string> FleetSimulator::run() const {
  std::vector<std::vector<std::string>> per_host(config_.hosts);
  std::vector<std::string> errors(config_.hosts);  // reaped per host: a throw
                                                   // on a pool thread would
                                                   // terminate the process
  const unsigned jobs =
      config_.jobs == 0 ? support::ThreadPool::hardware_workers() : config_.jobs;
  std::vector<support::ThreadPool::Task> tasks;
  tasks.reserve(config_.hosts);
  for (unsigned host = 0; host < config_.hosts; ++host) {
    tasks.push_back([this, host, &per_host, &errors](unsigned /*worker*/) {
      try {
        run_host(host, per_host[host]);
      } catch (const std::exception& e) {
        errors[host] = e.what();
      }
    });
  }
  support::ThreadPool pool(jobs);
  pool.run(std::move(tasks));
  for (const std::string& error : errors) {
    if (!error.empty()) throw std::runtime_error("fleet simulator: " + error);
  }
  std::vector<std::string> documents;
  documents.reserve(static_cast<std::size_t>(config_.hosts) * config_.docs_per_host);
  for (auto& docs : per_host) {
    for (auto& doc : docs) documents.push_back(std::move(doc));
  }
  return documents;
}

}  // namespace healers::fleet
