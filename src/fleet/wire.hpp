// Fleet wire formats (ROADMAP: "heavy traffic from millions of users").
//
// The paper ships profile documents as self-describing XML (§2.3). At fleet
// scale the XML round-trip dominates ingest cost, so producers may instead
// emit a compact length-prefixed binary encoding of the SAME ProfileReport:
//
//   "HFB1"                                magic, 4 bytes
//   str process, str wrapper              str = u32 length + bytes
//   u32 nfunctions, per function:
//     str symbol, u64 calls, u64 cycles, u64 contained,
//     u32 nerrnos, per errno: i32 errno, u64 count
//   u32 nglobal, per errno: i32 errno, u64 count
//
// All integers are little-endian and fixed-width. decode_document() accepts
// either format (binary by magic, XML otherwise) so a collector can serve a
// mixed fleet during a rollout. Both decoders are strict: truncated or
// malformed payloads produce an error Result, never a partial report.
//
// A *document stream* is the on-disk/on-wire batch form: a "HFDS1\n" header
// followed by u32-length-prefixed document payloads (each payload is one
// XML or binary document).
//
// Crash dossiers (ISSUE 4) travel the same pipe as profiles. Their binary
// form is "HDB1" followed by the dossier fields in declaration order:
//
//   "HDB1"                                magic, 4 bytes
//   str process, u32 detector, str symbol, str detail
//   u64 seq, u64 tick, u64 cycles, u64 fault_addr
//   u32 nargs, per arg: str rendered value
//   u32 ntrace, per entry:
//     u64 seq, u64 tick, u64 cycles, u64 digest, u32 argc, str symbol
//   str heap_note, u32 nchunks, per chunk:
//     u64 header, u64 user, u64 size, u32 flags (bit0 in_use, bit1 suspect)
//   u32 nregions, per region:
//     u64 base, u64 size, u32 perm, u32 flags (bit0 suspect), str kind,
//     str label
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "debloat/surface.hpp"
#include "incident/dossier.hpp"
#include "profile/report.hpp"
#include "support/result.hpp"

namespace healers::fleet {

// The primitive wire codec every HEALERS binary format is built from:
// little-endian fixed-width integers and u32-length-prefixed strings. Public
// so other subsystems (the derivation server's spec cache and request
// protocol) frame their documents the same way the fleet formats do.
namespace codec {

void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_str(std::string& out, std::string_view s);

// Bounds-checked read cursor over a binary payload. Every read either
// succeeds completely or marks the cursor failed; callers check ok() once.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();

 private:
  bool take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace codec

// Magic prefix of a binary profile document.
inline constexpr std::string_view kBinaryMagic = "HFB1";
// Magic prefix of a binary crash-dossier document.
inline constexpr std::string_view kDossierMagic = "HDB1";
// Magic prefix of a binary surface-profile document (docs/debloat.md):
//
//   "HSP1"                                magic, 4 bytes
//   str host, str executable
//   u64 exported, u64 reachable, u64 touched, u64 trapped
//   u64 resident_pages, u64 total_pages
//   u32 nreachable, per symbol: str
//   u32 ntouched, per symbol: str
//   u32 ntrapped, per symbol: str
inline constexpr std::string_view kSurfaceMagic = "HSP1";
// Header of a framed document stream.
inline constexpr std::string_view kStreamMagic = "HFDS1\n";

// Report -> compact binary document.
[[nodiscard]] std::string encode_binary(const profile::ProfileReport& report);

// Strict binary decoder (payload must start with kBinaryMagic).
[[nodiscard]] Result<profile::ProfileReport> decode_binary(std::string_view payload);

// Format-sniffing decoder: binary by magic, otherwise parsed as XML.
[[nodiscard]] Result<profile::ProfileReport> decode_document(std::string_view payload);

// True when the payload carries the binary magic.
[[nodiscard]] bool is_binary_document(std::string_view payload) noexcept;

// Dossier -> compact binary document (deterministic: identical dossiers
// encode byte-identically).
[[nodiscard]] std::string encode_dossier_binary(const incident::Dossier& dossier);

// Strict binary dossier decoder (payload must start with kDossierMagic).
[[nodiscard]] Result<incident::Dossier> decode_dossier_binary(std::string_view payload);

// Format-sniffing dossier decoder: binary by magic, otherwise parsed as a
// <dossier> XML document.
[[nodiscard]] Result<incident::Dossier> decode_dossier(std::string_view payload);

// True when the payload carries the binary dossier magic.
[[nodiscard]] bool is_dossier_binary(std::string_view payload) noexcept;

// Surface profile -> compact binary document (deterministic).
[[nodiscard]] std::string encode_surface_binary(const debloat::SurfaceProfile& profile);

// Strict binary surface-profile decoder (payload must start with
// kSurfaceMagic).
[[nodiscard]] Result<debloat::SurfaceProfile> decode_surface_binary(std::string_view payload);

// Format-sniffing surface-profile decoder: binary by magic, otherwise
// parsed as a <surface-profile> XML document.
[[nodiscard]] Result<debloat::SurfaceProfile> decode_surface(std::string_view payload);

// True when the payload carries the binary surface-profile magic.
[[nodiscard]] bool is_surface_binary(std::string_view payload) noexcept;

// Batch framing: documents -> one stream blob, and back.
[[nodiscard]] std::string frame_stream(const std::vector<std::string>& documents);
[[nodiscard]] Result<std::vector<std::string>> unframe_stream(std::string_view stream);

}  // namespace healers::fleet
