// Fleet wire formats (ROADMAP: "heavy traffic from millions of users").
//
// The paper ships profile documents as self-describing XML (§2.3). At fleet
// scale the XML round-trip dominates ingest cost, so producers may instead
// emit a compact length-prefixed binary encoding of the SAME ProfileReport:
//
//   "HFB1"                                magic, 4 bytes
//   str process, str wrapper              str = u32 length + bytes
//   u32 nfunctions, per function:
//     str symbol, u64 calls, u64 cycles, u64 contained,
//     u32 nerrnos, per errno: i32 errno, u64 count
//   u32 nglobal, per errno: i32 errno, u64 count
//
// All integers are little-endian and fixed-width. decode_document() accepts
// either format (binary by magic, XML otherwise) so a collector can serve a
// mixed fleet during a rollout. Both decoders are strict: truncated or
// malformed payloads produce an error Result, never a partial report.
//
// A *document stream* is the on-disk/on-wire batch form: a "HFDS1\n" header
// followed by u32-length-prefixed document payloads (each payload is one
// XML or binary document).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "profile/report.hpp"
#include "support/result.hpp"

namespace healers::fleet {

// Magic prefix of a binary profile document.
inline constexpr std::string_view kBinaryMagic = "HFB1";
// Header of a framed document stream.
inline constexpr std::string_view kStreamMagic = "HFDS1\n";

// Report -> compact binary document.
[[nodiscard]] std::string encode_binary(const profile::ProfileReport& report);

// Strict binary decoder (payload must start with kBinaryMagic).
[[nodiscard]] Result<profile::ProfileReport> decode_binary(std::string_view payload);

// Format-sniffing decoder: binary by magic, otherwise parsed as XML.
[[nodiscard]] Result<profile::ProfileReport> decode_document(std::string_view payload);

// True when the payload carries the binary magic.
[[nodiscard]] bool is_binary_document(std::string_view payload) noexcept;

// Batch framing: documents -> one stream blob, and back.
[[nodiscard]] std::string frame_stream(const std::vector<std::string>& documents);
[[nodiscard]] Result<std::vector<std::string>> unframe_stream(std::string_view stream);

}  // namespace healers::fleet
