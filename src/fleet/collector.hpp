// Fleet-scale collection service (ROADMAP: sharding, batching, async).
//
// profile::CollectorServer is the paper's single-process server; this is the
// service you would actually deploy in front of a fleet:
//
//   producers --submit()--> per-shard bounded MPSC queues   (backpressure)
//                 flush():  batched decode on support::ThreadPool
//                           fold into aggregation shards    (by symbol hash)
//   snapshot(): merge shards -> totals + quantile sketch -> summary
//
// Invariants:
//   * No silent loss. Every submitted payload is exactly one of: aggregated,
//     counted malformed, counted dropped, or still pending in a queue —
//     submitted() == aggregated() + malformed() + dropped() + pending().
//   * Deterministic aggregation. Totals and sketch buckets are commutative
//     sums, so snapshot()/render_summary() are byte-identical for any shard
//     count and any flush worker count over the same document set (the fleet
//     analogue of the campaign engine's jobs-independence guarantee).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/sketch.hpp"
#include "profile/report.hpp"

namespace healers::incident {
struct Dossier;
}

namespace healers::debloat {
struct SurfaceProfile;
}

namespace healers::fleet {

// What submit() does when the target queue is full. Both policies COUNT the
// victim in dropped(); there is no silently-blocking mode because draining
// is explicit (flush()) and blocking producers would deadlock them.
enum class OverflowPolicy : std::uint8_t {
  kDropNewest,  // reject the incoming payload
  kDropOldest,  // evict the oldest queued payload, accept the incoming one
};

struct CollectorConfig {
  unsigned shards = 4;              // ingest queues AND aggregation shards
  std::size_t queue_capacity = 4096;  // per ingest shard
  std::size_t batch_size = 64;        // payloads per decode task
  unsigned workers = 1;               // flush decode workers, 0 = all cores
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
};

// Commutative per-executable aggregate of surface-profile documents
// (docs/debloat.md): plain sums, so shard and worker counts cannot change
// the snapshot.
struct SurfaceAgg {
  std::uint64_t docs = 0;
  std::uint64_t exported = 0;
  std::uint64_t reachable = 0;
  std::uint64_t touched = 0;
  std::uint64_t trapped = 0;
  std::uint64_t resident_pages = 0;
  std::uint64_t total_pages = 0;
  std::map<std::string, std::uint64_t> trapped_symbols;  // symbol -> reports
};

// A merged, immutable view of the collector at one instant.
struct FleetSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t aggregated = 0;  // documents folded into the totals
  std::uint64_t malformed = 0;   // documents rejected by the decoders
  std::uint64_t dropped = 0;     // documents shed by the overflow policy
  std::uint64_t pending = 0;     // still queued (flush not yet run)
  std::map<std::string, profile::FunctionProfile> functions;
  std::map<int, std::uint64_t> global_errnos;
  // Crash-dossier documents folded per "<detector> <symbol>" key. Commutative
  // counts, like everything else here, so the summary stays byte-identical
  // across shard and worker counts.
  std::map<std::string, std::uint64_t> dossiers;
  // Surface-profile documents folded per executable.
  std::map<std::string, SurfaceAgg> surfaces;
  std::uint64_t cycles_p50 = 0;  // exec cycles per document
  std::uint64_t cycles_p95 = 0;
  std::uint64_t cycles_p99 = 0;

  // Deterministic rendering (the byte-identical-across-configs surface).
  [[nodiscard]] std::string render() const;
};

class FleetCollector {
 public:
  explicit FleetCollector(CollectorConfig config = {});

  // Enqueues one encoded document (XML or binary; not decoded here).
  // Thread-safe. Returns false when the overflow policy shed a payload
  // (the shed document is counted in dropped() either way).
  bool submit(std::string payload);

  // Decodes and aggregates everything queued, in batches on a thread pool
  // of config.workers workers. Not thread-safe against itself; submit()
  // during a flush is safe (late arrivals stay queued for the next flush).
  void flush();

  [[nodiscard]] std::uint64_t submitted() const noexcept { return submitted_.load(); }
  [[nodiscard]] std::uint64_t aggregated() const noexcept { return aggregated_.load(); }
  [[nodiscard]] std::uint64_t malformed() const noexcept { return malformed_.load(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_.load(); }
  [[nodiscard]] std::uint64_t pending() const;
  [[nodiscard]] unsigned shards() const noexcept { return static_cast<unsigned>(ingest_.size()); }
  // First decode error seen since construction ("" when none) — the
  // diagnostic handle for the malformed() counter.
  [[nodiscard]] std::string first_error() const;

  [[nodiscard]] FleetSnapshot snapshot() const;
  [[nodiscard]] std::string render_summary() const { return snapshot().render(); }

 private:
  struct IngestShard {
    std::mutex mutex;
    std::deque<std::string> queue;
  };
  struct AggShard {
    mutable std::mutex mutex;
    std::map<std::string, profile::FunctionProfile> functions;
    std::map<int, std::uint64_t> global_errnos;
    std::map<std::string, std::uint64_t> dossiers;  // "<detector> <symbol>" -> docs
    std::map<std::string, SurfaceAgg> surfaces;     // executable -> aggregate
    CycleSketch sketch;  // one sample per document: its total exec cycles
  };

  void fold(const profile::ProfileReport& report);
  void fold_dossier(const incident::Dossier& dossier);
  void fold_surface(const debloat::SurfaceProfile& profile);

  CollectorConfig config_;
  std::vector<std::unique_ptr<IngestShard>> ingest_;
  std::vector<std::unique_ptr<AggShard>> agg_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> aggregated_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_shard_{0};  // round-robin producer cursor
  mutable std::mutex error_mutex_;
  std::string first_error_;
};

// FNV-1a — the stable function-name -> aggregation-shard hash. Exposed so
// tests can assert the placement rule.
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept;

}  // namespace healers::fleet
