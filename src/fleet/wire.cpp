#include "fleet/wire.hpp"

#include <cstdint>
#include <limits>

#include "xml/xml.hpp"

namespace healers::fleet {

namespace codec {

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffU));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffU));
  }
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint32_t Cursor::u32() {
  std::uint32_t v = 0;
  if (!take(4)) return 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ - 4 + i])) << (8 * i);
  }
  return v;
}

std::uint64_t Cursor::u64() {
  std::uint64_t v = 0;
  if (!take(8)) return 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ - 8 + i])) << (8 * i);
  }
  return v;
}

std::string Cursor::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  return std::string(data_.substr(pos_ - len, len));
}

bool Cursor::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  pos_ += n;
  return true;
}

}  // namespace codec

using codec::Cursor;
using codec::put_str;
using codec::put_u32;
using codec::put_u64;

std::string encode_binary(const profile::ProfileReport& report) {
  std::string out;
  out.append(kBinaryMagic);
  put_str(out, report.process);
  put_str(out, report.wrapper);
  put_u32(out, static_cast<std::uint32_t>(report.functions.size()));
  for (const profile::FunctionProfile& fn : report.functions) {
    put_str(out, fn.symbol);
    put_u64(out, fn.calls);
    put_u64(out, fn.cycles);
    put_u64(out, fn.contained);
    put_u32(out, static_cast<std::uint32_t>(fn.errno_counts.size()));
    for (const auto& [err, count] : fn.errno_counts) {
      put_u32(out, static_cast<std::uint32_t>(err));
      put_u64(out, count);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(report.global_errnos.size()));
  for (const auto& [err, count] : report.global_errnos) {
    put_u32(out, static_cast<std::uint32_t>(err));
    put_u64(out, count);
  }
  return out;
}

Result<profile::ProfileReport> decode_binary(std::string_view payload) {
  if (!is_binary_document(payload)) return Error("binary document: bad magic");
  Cursor cur(payload.substr(kBinaryMagic.size()));
  profile::ProfileReport report;
  report.process = cur.str();
  report.wrapper = cur.str();
  const std::uint32_t nfunctions = cur.u32();
  // Cheap sanity bound before reserving: every function costs >= 32 bytes.
  if (!cur.ok() || nfunctions > payload.size()) {
    return Error("binary document: truncated header");
  }
  report.functions.reserve(nfunctions);
  for (std::uint32_t i = 0; i < nfunctions && cur.ok(); ++i) {
    profile::FunctionProfile fn;
    fn.symbol = cur.str();
    fn.calls = cur.u64();
    fn.cycles = cur.u64();
    fn.contained = cur.u64();
    const std::uint32_t nerrnos = cur.u32();
    for (std::uint32_t e = 0; e < nerrnos && cur.ok(); ++e) {
      const int err = static_cast<std::int32_t>(cur.u32());
      fn.errno_counts[err] += cur.u64();
    }
    report.functions.push_back(std::move(fn));
  }
  const std::uint32_t nglobal = cur.u32();
  for (std::uint32_t e = 0; e < nglobal && cur.ok(); ++e) {
    const int err = static_cast<std::int32_t>(cur.u32());
    report.global_errnos[err] += cur.u64();
  }
  if (!cur.ok()) return Error("binary document: truncated");
  if (!cur.at_end()) return Error("binary document: trailing bytes");
  return report;
}

Result<profile::ProfileReport> decode_document(std::string_view payload) {
  if (is_binary_document(payload)) return decode_binary(payload);
  auto parsed = xml::parse(payload);
  if (!parsed.ok()) return Error("xml document: " + parsed.error().message);
  return profile::from_xml(parsed.value());
}

bool is_binary_document(std::string_view payload) noexcept {
  return payload.substr(0, kBinaryMagic.size()) == kBinaryMagic;
}

std::string encode_dossier_binary(const incident::Dossier& dossier) {
  std::string out;
  out.append(kDossierMagic);
  put_str(out, dossier.process);
  put_u32(out, static_cast<std::uint32_t>(dossier.detector));
  put_str(out, dossier.symbol);
  put_str(out, dossier.detail);
  put_u64(out, dossier.seq);
  put_u64(out, dossier.tick);
  put_u64(out, dossier.cycles);
  put_u64(out, dossier.fault_addr);
  put_u32(out, static_cast<std::uint32_t>(dossier.args.size()));
  for (const std::string& arg : dossier.args) put_str(out, arg);
  put_u32(out, static_cast<std::uint32_t>(dossier.trace.size()));
  for (const incident::TraceEntry& entry : dossier.trace) {
    put_u64(out, entry.seq);
    put_u64(out, entry.tick);
    put_u64(out, entry.cycles);
    put_u64(out, entry.arg_digest);
    put_u32(out, entry.argc);
    put_str(out, entry.symbol);
  }
  put_str(out, dossier.heap_note);
  put_u32(out, static_cast<std::uint32_t>(dossier.heap.size()));
  for (const incident::ChunkState& chunk : dossier.heap) {
    put_u64(out, chunk.header);
    put_u64(out, chunk.user);
    put_u64(out, chunk.size);
    put_u32(out, (chunk.in_use ? 1U : 0U) | (chunk.suspect ? 2U : 0U));
  }
  put_u32(out, static_cast<std::uint32_t>(dossier.regions.size()));
  for (const incident::RegionState& region : dossier.regions) {
    put_u64(out, region.base);
    put_u64(out, region.size);
    put_u32(out, region.perm);
    put_u32(out, region.suspect ? 1U : 0U);
    put_str(out, region.kind);
    put_str(out, region.label);
  }
  put_u32(out, static_cast<std::uint32_t>(dossier.repairs.size()));
  for (const incident::RepairEvent& repair : dossier.repairs) {
    put_u64(out, repair.seq);
    put_u64(out, repair.tick);
    put_u32(out, static_cast<std::uint32_t>(repair.action));
    put_str(out, repair.symbol);
    put_str(out, repair.detail);
    put_u64(out, repair.fault_addr);
    put_u64(out, repair.requested);
    put_u64(out, repair.granted);
  }
  return out;
}

Result<incident::Dossier> decode_dossier_binary(std::string_view payload) {
  if (!is_dossier_binary(payload)) return Error("binary dossier: bad magic");
  Cursor cur(payload.substr(kDossierMagic.size()));
  incident::Dossier dossier;
  dossier.process = cur.str();
  const std::uint32_t detector = cur.u32();
  if (!cur.ok() ||
      detector > static_cast<std::uint32_t>(simlib::DetectionKind::kSurfaceViolation)) {
    return Error("binary dossier: bad detector");
  }
  dossier.detector = static_cast<simlib::DetectionKind>(detector);
  dossier.symbol = cur.str();
  dossier.detail = cur.str();
  dossier.seq = cur.u64();
  dossier.tick = cur.u64();
  dossier.cycles = cur.u64();
  dossier.fault_addr = cur.u64();
  const std::uint32_t nargs = cur.u32();
  if (!cur.ok() || nargs > payload.size()) return Error("binary dossier: truncated header");
  for (std::uint32_t i = 0; i < nargs && cur.ok(); ++i) dossier.args.push_back(cur.str());
  const std::uint32_t ntrace = cur.u32();
  if (!cur.ok() || ntrace > payload.size()) return Error("binary dossier: truncated trace");
  for (std::uint32_t i = 0; i < ntrace && cur.ok(); ++i) {
    incident::TraceEntry entry;
    entry.seq = cur.u64();
    entry.tick = cur.u64();
    entry.cycles = cur.u64();
    entry.arg_digest = cur.u64();
    entry.argc = cur.u32();
    entry.symbol = cur.str();
    dossier.trace.push_back(std::move(entry));
  }
  dossier.heap_note = cur.str();
  const std::uint32_t nchunks = cur.u32();
  if (!cur.ok() || nchunks > payload.size()) return Error("binary dossier: truncated heap");
  for (std::uint32_t i = 0; i < nchunks && cur.ok(); ++i) {
    incident::ChunkState chunk;
    chunk.header = cur.u64();
    chunk.user = cur.u64();
    chunk.size = cur.u64();
    const std::uint32_t flags = cur.u32();
    chunk.in_use = (flags & 1U) != 0;
    chunk.suspect = (flags & 2U) != 0;
    dossier.heap.push_back(chunk);
  }
  const std::uint32_t nregions = cur.u32();
  if (!cur.ok() || nregions > payload.size()) return Error("binary dossier: truncated regions");
  for (std::uint32_t i = 0; i < nregions && cur.ok(); ++i) {
    incident::RegionState region;
    region.base = cur.u64();
    region.size = cur.u64();
    region.perm = static_cast<std::uint8_t>(cur.u32());
    region.suspect = (cur.u32() & 1U) != 0;
    region.kind = cur.str();
    region.label = cur.str();
    dossier.regions.push_back(std::move(region));
  }
  const std::uint32_t nrepairs = cur.u32();
  if (!cur.ok() || nrepairs > payload.size()) return Error("binary dossier: truncated repairs");
  for (std::uint32_t i = 0; i < nrepairs && cur.ok(); ++i) {
    incident::RepairEvent repair;
    repair.seq = cur.u64();
    repair.tick = cur.u64();
    const std::uint32_t action = cur.u32();
    if (cur.ok() && action > static_cast<std::uint32_t>(simlib::RepairAction::kSafeReturn)) {
      return Error("binary dossier: bad repair action");
    }
    repair.action = static_cast<simlib::RepairAction>(action);
    repair.symbol = cur.str();
    repair.detail = cur.str();
    repair.fault_addr = cur.u64();
    repair.requested = cur.u64();
    repair.granted = cur.u64();
    dossier.repairs.push_back(std::move(repair));
  }
  if (!cur.ok()) return Error("binary dossier: truncated");
  if (!cur.at_end()) return Error("binary dossier: trailing bytes");
  return dossier;
}

Result<incident::Dossier> decode_dossier(std::string_view payload) {
  if (is_dossier_binary(payload)) return decode_dossier_binary(payload);
  auto parsed = xml::parse(payload);
  if (!parsed.ok()) return Error("xml dossier: " + parsed.error().message);
  return incident::from_xml(parsed.value());
}

bool is_dossier_binary(std::string_view payload) noexcept {
  return payload.substr(0, kDossierMagic.size()) == kDossierMagic;
}

std::string encode_surface_binary(const debloat::SurfaceProfile& profile) {
  std::string out;
  out.append(kSurfaceMagic);
  put_str(out, profile.host);
  put_str(out, profile.executable);
  put_u64(out, profile.exported);
  put_u64(out, profile.reachable);
  put_u64(out, profile.touched);
  put_u64(out, profile.trapped);
  put_u64(out, profile.resident_pages);
  put_u64(out, profile.total_pages);
  for (const std::vector<std::string>* list :
       {&profile.reachable_symbols, &profile.touched_symbols, &profile.trapped_symbols}) {
    put_u32(out, static_cast<std::uint32_t>(list->size()));
    for (const std::string& symbol : *list) put_str(out, symbol);
  }
  return out;
}

Result<debloat::SurfaceProfile> decode_surface_binary(std::string_view payload) {
  if (!is_surface_binary(payload)) return Error("binary surface profile: bad magic");
  Cursor cur(payload.substr(kSurfaceMagic.size()));
  debloat::SurfaceProfile profile;
  profile.host = cur.str();
  profile.executable = cur.str();
  profile.exported = cur.u64();
  profile.reachable = cur.u64();
  profile.touched = cur.u64();
  profile.trapped = cur.u64();
  profile.resident_pages = cur.u64();
  profile.total_pages = cur.u64();
  for (std::vector<std::string>* list :
       {&profile.reachable_symbols, &profile.touched_symbols, &profile.trapped_symbols}) {
    const std::uint32_t count = cur.u32();
    if (!cur.ok() || count > payload.size()) {
      return Error("binary surface profile: truncated list");
    }
    for (std::uint32_t i = 0; i < count && cur.ok(); ++i) list->push_back(cur.str());
  }
  if (!cur.ok()) return Error("binary surface profile: truncated");
  if (!cur.at_end()) return Error("binary surface profile: trailing bytes");
  return profile;
}

Result<debloat::SurfaceProfile> decode_surface(std::string_view payload) {
  if (is_surface_binary(payload)) return decode_surface_binary(payload);
  return debloat::surface_from_xml(payload);
}

bool is_surface_binary(std::string_view payload) noexcept {
  return payload.substr(0, kSurfaceMagic.size()) == kSurfaceMagic;
}

std::string frame_stream(const std::vector<std::string>& documents) {
  std::string out;
  out.append(kStreamMagic);
  put_u32(out, static_cast<std::uint32_t>(documents.size()));
  for (const std::string& doc : documents) put_str(out, doc);
  return out;
}

Result<std::vector<std::string>> unframe_stream(std::string_view stream) {
  if (stream.substr(0, kStreamMagic.size()) != kStreamMagic) {
    return Error("document stream: bad header");
  }
  Cursor cur(stream.substr(kStreamMagic.size()));
  const std::uint32_t count = cur.u32();
  std::vector<std::string> documents;
  for (std::uint32_t i = 0; i < count && cur.ok(); ++i) documents.push_back(cur.str());
  if (!cur.ok()) return Error("document stream: truncated");
  if (!cur.at_end()) return Error("document stream: trailing bytes");
  return documents;
}

}  // namespace healers::fleet
