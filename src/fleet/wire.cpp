#include "fleet/wire.hpp"

#include <cstdint>
#include <limits>

#include "xml/xml.hpp"

namespace healers::fleet {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffU));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffU));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked read cursor over a binary payload. Every read either
// succeeds completely or marks the cursor failed; callers check ok() once.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    if (!take(4)) return 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ - 4 + i])) << (8 * i);
    }
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!take(8)) return 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ - 8 + i])) << (8 * i);
    }
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    return std::string(data_.substr(pos_ - len, len));
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string encode_binary(const profile::ProfileReport& report) {
  std::string out;
  out.append(kBinaryMagic);
  put_str(out, report.process);
  put_str(out, report.wrapper);
  put_u32(out, static_cast<std::uint32_t>(report.functions.size()));
  for (const profile::FunctionProfile& fn : report.functions) {
    put_str(out, fn.symbol);
    put_u64(out, fn.calls);
    put_u64(out, fn.cycles);
    put_u64(out, fn.contained);
    put_u32(out, static_cast<std::uint32_t>(fn.errno_counts.size()));
    for (const auto& [err, count] : fn.errno_counts) {
      put_u32(out, static_cast<std::uint32_t>(err));
      put_u64(out, count);
    }
  }
  put_u32(out, static_cast<std::uint32_t>(report.global_errnos.size()));
  for (const auto& [err, count] : report.global_errnos) {
    put_u32(out, static_cast<std::uint32_t>(err));
    put_u64(out, count);
  }
  return out;
}

Result<profile::ProfileReport> decode_binary(std::string_view payload) {
  if (!is_binary_document(payload)) return Error("binary document: bad magic");
  Cursor cur(payload.substr(kBinaryMagic.size()));
  profile::ProfileReport report;
  report.process = cur.str();
  report.wrapper = cur.str();
  const std::uint32_t nfunctions = cur.u32();
  // Cheap sanity bound before reserving: every function costs >= 32 bytes.
  if (!cur.ok() || nfunctions > payload.size()) {
    return Error("binary document: truncated header");
  }
  report.functions.reserve(nfunctions);
  for (std::uint32_t i = 0; i < nfunctions && cur.ok(); ++i) {
    profile::FunctionProfile fn;
    fn.symbol = cur.str();
    fn.calls = cur.u64();
    fn.cycles = cur.u64();
    fn.contained = cur.u64();
    const std::uint32_t nerrnos = cur.u32();
    for (std::uint32_t e = 0; e < nerrnos && cur.ok(); ++e) {
      const int err = static_cast<std::int32_t>(cur.u32());
      fn.errno_counts[err] += cur.u64();
    }
    report.functions.push_back(std::move(fn));
  }
  const std::uint32_t nglobal = cur.u32();
  for (std::uint32_t e = 0; e < nglobal && cur.ok(); ++e) {
    const int err = static_cast<std::int32_t>(cur.u32());
    report.global_errnos[err] += cur.u64();
  }
  if (!cur.ok()) return Error("binary document: truncated");
  if (!cur.at_end()) return Error("binary document: trailing bytes");
  return report;
}

Result<profile::ProfileReport> decode_document(std::string_view payload) {
  if (is_binary_document(payload)) return decode_binary(payload);
  auto parsed = xml::parse(payload);
  if (!parsed.ok()) return Error("xml document: " + parsed.error().message);
  return profile::from_xml(parsed.value());
}

bool is_binary_document(std::string_view payload) noexcept {
  return payload.substr(0, kBinaryMagic.size()) == kBinaryMagic;
}

std::string frame_stream(const std::vector<std::string>& documents) {
  std::string out;
  out.append(kStreamMagic);
  put_u32(out, static_cast<std::uint32_t>(documents.size()));
  for (const std::string& doc : documents) put_str(out, doc);
  return out;
}

Result<std::vector<std::string>> unframe_stream(std::string_view stream) {
  if (stream.substr(0, kStreamMagic.size()) != kStreamMagic) {
    return Error("document stream: bad header");
  }
  Cursor cur(stream.substr(kStreamMagic.size()));
  const std::uint32_t count = cur.u32();
  std::vector<std::string> documents;
  for (std::uint32_t i = 0; i < count && cur.ok(); ++i) documents.push_back(cur.str());
  if (!cur.ok()) return Error("document stream: truncated");
  if (!cur.at_end()) return Error("document stream: trailing bytes");
  return documents;
}

}  // namespace healers::fleet
