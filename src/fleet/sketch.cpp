#include "fleet/sketch.hpp"

#include <bit>
#include <cmath>

namespace healers::fleet {

int CycleSketch::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<int>(value);
  // Leading-bit group: shift so the top kSubBits+1 bits remain; the low
  // kSubBits of that select the linear sub-bucket within the group.
  const int shift = std::bit_width(value) - 1 - kSubBits;
  const auto sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  return (shift + 1) * kSubBuckets + sub;
}

std::uint64_t CycleSketch::bucket_floor(int index) noexcept {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int shift = index / kSubBuckets - 1;
  const auto sub = static_cast<std::uint64_t>(index % kSubBuckets);
  return (static_cast<std::uint64_t>(kSubBuckets) + sub) << shift;
}

std::uint64_t CycleSketch::quantile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen >= rank) return bucket_floor(i);
  }
  return bucket_floor(kBucketCount - 1);  // unreachable: total_ > 0
}

}  // namespace healers::fleet
