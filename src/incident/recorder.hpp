// Incident flight recorder (ISSUE 4 tentpole).
//
// A FlightRecorder is the black box of one simulated process: a fixed-size
// ring buffer of the most recent wrapped calls, fed by the linker's dispatch
// loop through the simlib::CallObserver seam. Recording a call touches no
// simulated state (no tick, no cycles, no allocation in the slot itself), so
// the recorder is invisible to the golden-tick suite; host-side cost is a
// bounded memcpy of the symbol plus an FNV-1a fold over the argument bits.
//
// When any detector fires — argcheck rejection, heap/stack canary mismatch,
// an AccessFault reaped by the supervisor, or an errorinject trip — the
// recorder snapshots a crash Dossier (dossier.hpp) from the still-warm
// machine: offending call with decoded arguments, the last-N trace, the
// heap-chunk neighborhood around the implicated address, and the region map.
// Dossier storage is capped (kMaxDossiers) with a total-detections counter,
// so a detector stuck in a loop cannot balloon the recorder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "incident/dossier.hpp"
#include "simlib/observer.hpp"

namespace healers::incident {

class FlightRecorder final : public simlib::CallObserver {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;  // ring slots
  static constexpr std::size_t kMaxDossiers = 16;      // stored snapshots

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  // Name stamped into every dossier (normally the Process name).
  void set_process_name(std::string name) { process_ = std::move(name); }
  [[nodiscard]] const std::string& process_name() const noexcept { return process_; }

  // --- CallObserver ---------------------------------------------------------
  void on_call(const std::string& symbol, const std::vector<simlib::SimValue>& args,
               const mem::Machine& machine) override;
  void on_detection(simlib::CallContext& ctx, simlib::DetectionKind kind,
                    const std::string& symbol, const std::string& detail,
                    mem::Addr fault_addr) override;
  void on_fault(const mem::Machine& machine, FaultKind kind, mem::Addr fault_addr,
                const std::string& detail) override;
  void on_repair(simlib::CallContext& ctx, simlib::RepairAction action,
                 const std::string& symbol, const std::string& detail, mem::Addr fault_addr,
                 std::uint64_t requested, std::uint64_t granted) override;

  // --- inspection -----------------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t calls_seen() const noexcept { return next_seq_; }
  // Total detections, including ones whose dossier was dropped by the cap.
  [[nodiscard]] std::uint64_t detections() const noexcept { return detections_; }
  // Total repairs applied (each also snapshots a kRepair dossier, capped).
  [[nodiscard]] std::uint64_t repairs_applied() const noexcept { return repairs_applied_; }
  [[nodiscard]] const std::vector<Dossier>& dossiers() const noexcept { return dossiers_; }
  // The repair log: every RepairEvent seen, oldest first (uncapped — repairs
  // are rare by construction and each is a fixed-size record).
  [[nodiscard]] const std::vector<RepairEvent>& repair_log() const noexcept {
    return repair_log_;
  }

  // Decoded ring contents, oldest first (at most capacity() entries).
  [[nodiscard]] std::vector<TraceEntry> trace() const;

  // Symbol of the most recently dispatched call ("?" before the first call);
  // what an AccessFault dossier names as the offending symbol.
  [[nodiscard]] std::string last_symbol() const;

  // Forgets calls and dossiers (not the process name or capacity).
  void clear();

 private:
  // One ring slot. Fixed layout, no owned allocations: feeding the ring on
  // the dispatch fast path must not hit the host allocator.
  struct Slot {
    static constexpr std::size_t kSymbolBytes = 23;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    std::uint64_t cycles = 0;
    std::uint64_t digest = 0;
    std::uint32_t argc = 0;
    char symbol[kSymbolBytes + 1] = {};
  };

  [[nodiscard]] TraceEntry decode(const Slot& slot) const;
  [[nodiscard]] Dossier build_dossier(const mem::Machine& machine, simlib::DetectionKind kind,
                                      const std::string& symbol, const std::string& detail,
                                      mem::Addr fault_addr) const;
  void record(Dossier dossier);

  std::string process_ = "?";
  std::vector<Slot> ring_;
  std::uint64_t next_seq_ = 0;  // == calls seen; slot index is seq % capacity
  std::uint64_t detections_ = 0;
  std::uint64_t repairs_applied_ = 0;
  std::vector<Dossier> dossiers_;
  std::vector<RepairEvent> repair_log_;
};

}  // namespace healers::incident
