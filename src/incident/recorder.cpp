#include "incident/recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "memmodel/heap.hpp"
#include "simlib/value.hpp"

namespace healers::incident {

namespace {

// FNV-1a over the (kind, bits) pairs of a call's arguments. Stable across
// runs and across processes: two identical call sequences digest identically,
// which is what makes dossier byte-comparison meaningful.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_byte(std::uint64_t hash, std::uint8_t byte) noexcept {
  return (hash ^ byte) * kFnvPrime;
}

std::uint64_t fnv_u64(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash = fnv_byte(hash, static_cast<std::uint8_t>(value >> (i * 8)));
  }
  return hash;
}

std::uint64_t value_bits(const simlib::SimValue& value) noexcept {
  switch (value.kind()) {
    case simlib::SimValue::Kind::kInt:
      return static_cast<std::uint64_t>(value.as_int());
    case simlib::SimValue::Kind::kFloat:
      return std::bit_cast<std::uint64_t>(value.as_double());
    case simlib::SimValue::Kind::kPtr:
      return value.as_ptr();
  }
  return 0;
}

std::uint64_t digest_args(const std::vector<simlib::SimValue>& args) noexcept {
  std::uint64_t hash = kFnvOffset;
  for (const simlib::SimValue& arg : args) {
    hash = fnv_byte(hash, static_cast<std::uint8_t>(arg.kind()));
    hash = fnv_u64(hash, value_bits(arg));
  }
  return hash;
}

std::string region_kind_name(mem::RegionKind kind) {
  switch (kind) {
    case mem::RegionKind::kHeapArena: return "heap";
    case mem::RegionKind::kStack: return "stack";
    case mem::RegionKind::kRodata: return "rodata";
    case mem::RegionKind::kData: return "data";
    case mem::RegionKind::kScratch: return "scratch";
  }
  return "?";
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  ring_.resize(std::max<std::size_t>(capacity, 1));
  dossiers_.reserve(kMaxDossiers);
}

void FlightRecorder::on_call(const std::string& symbol,
                             const std::vector<simlib::SimValue>& args,
                             const mem::Machine& machine) {
  Slot& slot = ring_[next_seq_ % ring_.size()];
  slot.seq = next_seq_++;
  slot.tick = machine.steps();
  slot.cycles = machine.rdtsc();
  slot.digest = digest_args(args);
  slot.argc = static_cast<std::uint32_t>(args.size());
  const std::size_t len = std::min(symbol.size(), Slot::kSymbolBytes);
  std::memcpy(slot.symbol, symbol.data(), len);
  slot.symbol[len] = '\0';
}

void FlightRecorder::on_detection(simlib::CallContext& ctx, simlib::DetectionKind kind,
                                  const std::string& symbol, const std::string& detail,
                                  mem::Addr fault_addr) {
  Dossier dossier = build_dossier(ctx.machine, kind, symbol, detail, fault_addr);
  dossier.args.reserve(ctx.args.size());
  for (const simlib::SimValue& arg : ctx.args) dossier.args.push_back(arg.to_string());
  record(std::move(dossier));
}

void FlightRecorder::on_fault(const mem::Machine& machine, FaultKind kind, mem::Addr fault_addr,
                              const std::string& detail) {
  record(build_dossier(machine, simlib::DetectionKind::kAccessFault, last_symbol(),
                       to_string(kind) + ": " + detail, fault_addr));
}

void FlightRecorder::on_repair(simlib::CallContext& ctx, simlib::RepairAction action,
                               const std::string& symbol, const std::string& detail,
                               mem::Addr fault_addr, std::uint64_t requested,
                               std::uint64_t granted) {
  RepairEvent event;
  event.seq = next_seq_ == 0 ? 0 : next_seq_ - 1;
  event.tick = ctx.machine.steps();
  event.action = action;
  event.symbol = symbol;
  event.detail = detail;
  event.fault_addr = fault_addr;
  event.requested = requested;
  event.granted = granted;
  repair_log_.push_back(event);
  ++repairs_applied_;

  // A repair is an incident too: snapshot a dossier so the post-mortem shows
  // the state the repair acted on, not just the fact of the rewrite.
  Dossier dossier = build_dossier(ctx.machine, simlib::DetectionKind::kRepair, symbol,
                                  to_string(action) + ": " + detail, fault_addr);
  dossier.args.reserve(ctx.args.size());
  for (const simlib::SimValue& arg : ctx.args) dossier.args.push_back(arg.to_string());
  record(std::move(dossier));
}

TraceEntry FlightRecorder::decode(const Slot& slot) const {
  TraceEntry entry;
  entry.seq = slot.seq;
  entry.tick = slot.tick;
  entry.cycles = slot.cycles;
  entry.arg_digest = slot.digest;
  entry.argc = slot.argc;
  entry.symbol = slot.symbol;
  return entry;
}

std::vector<TraceEntry> FlightRecorder::trace() const {
  std::vector<TraceEntry> out;
  const std::uint64_t count = std::min<std::uint64_t>(next_seq_, ring_.size());
  out.reserve(count);
  for (std::uint64_t i = next_seq_ - count; i < next_seq_; ++i) {
    out.push_back(decode(ring_[i % ring_.size()]));
  }
  return out;
}

std::string FlightRecorder::last_symbol() const {
  if (next_seq_ == 0) return "?";
  return ring_[(next_seq_ - 1) % ring_.size()].symbol;
}

Dossier FlightRecorder::build_dossier(const mem::Machine& machine, simlib::DetectionKind kind,
                                      const std::string& symbol, const std::string& detail,
                                      mem::Addr fault_addr) const {
  Dossier dossier;
  dossier.process = process_;
  dossier.detector = kind;
  dossier.symbol = symbol;
  dossier.detail = detail;
  dossier.seq = next_seq_ == 0 ? 0 : next_seq_ - 1;
  dossier.tick = machine.steps();
  dossier.cycles = machine.rdtsc();
  dossier.fault_addr = fault_addr;
  dossier.trace = trace();

  // Heap neighborhood. chunks() truncates the walk at the first corrupt
  // header, so a smashed chain shows up as an explicit note rather than as a
  // silently short list.
  const std::vector<mem::ChunkInfo> chunks = machine.heap().chunks();
  std::size_t suspect = chunks.size();
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (fault_addr >= chunks[i].header && fault_addr < chunks[i].header + chunks[i].size) {
      suspect = i;
      break;
    }
  }
  std::size_t lo = 0;
  std::size_t hi = chunks.size();
  if (suspect < chunks.size()) {
    lo = suspect >= 2 ? suspect - 2 : 0;
    hi = std::min(chunks.size(), suspect + 3);
  } else if (chunks.size() > 5) {
    lo = chunks.size() - 5;  // no implicated chunk: show the newest end
  }
  for (std::size_t i = lo; i < hi; ++i) {
    ChunkState state;
    state.header = chunks[i].header;
    state.user = chunks[i].user;
    state.size = chunks[i].size;
    state.in_use = chunks[i].in_use;
    state.suspect = i == suspect;
    dossier.heap.push_back(state);
  }
  if (!chunks.empty()) {
    const mem::ChunkInfo& last = chunks.back();
    const mem::Addr walk_end = last.header + last.size;
    const mem::Addr arena_end = machine.heap().arena_base() + machine.heap().arena_size();
    if (walk_end < arena_end) {
      dossier.heap_note = "chunk chain truncated at " + hex_addr(walk_end) +
                          " (corrupt header; arena ends at " + hex_addr(arena_end) + ")";
    }
  }

  // Region map. Small enough to record whole; when an address is implicated
  // and the map is large, narrow to its neighborhood.
  const std::vector<const mem::Region*> map = machine.mem().region_map();
  std::size_t region_suspect = map.size();
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (map[i]->contains(fault_addr)) {
      region_suspect = i;
      break;
    }
  }
  std::size_t rlo = 0;
  std::size_t rhi = map.size();
  if (region_suspect < map.size() && map.size() > 7) {
    rlo = region_suspect >= 2 ? region_suspect - 2 : 0;
    rhi = std::min(map.size(), region_suspect + 3);
  }
  for (std::size_t i = rlo; i < rhi; ++i) {
    RegionState state;
    state.base = map[i]->base;
    state.size = map[i]->size;
    state.perm = static_cast<std::uint8_t>(map[i]->perm);
    state.kind = region_kind_name(map[i]->kind);
    state.label = map[i]->label;
    state.suspect = i == region_suspect;
    dossier.regions.push_back(std::move(state));
  }

  // Every dossier carries the repairs applied so far, so a later detection's
  // post-mortem can see what the repair layer already rewrote.
  dossier.repairs = repair_log_;
  return dossier;
}

void FlightRecorder::record(Dossier dossier) {
  ++detections_;
  if (dossiers_.size() < kMaxDossiers) dossiers_.push_back(std::move(dossier));
}

void FlightRecorder::clear() {
  for (Slot& slot : ring_) slot = Slot{};
  next_seq_ = 0;
  detections_ = 0;
  repairs_applied_ = 0;
  dossiers_.clear();
  repair_log_.clear();
}

}  // namespace healers::incident
