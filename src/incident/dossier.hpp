// Crash dossiers — the structured artifact the incident flight recorder
// snapshots at the moment a detector fires (ISSUE 4; in the spirit of
// Rigger et al.'s introspection work: rich runtime context at the detection
// point is what makes hardening actionable).
//
// A dossier is everything a post-mortem needs, captured from the simulated
// process while the corpse is still warm:
//   * the verdict: which detector fired, on which symbol, with what detail;
//   * the offending call with its decoded arguments;
//   * the last-N wrapped-call trace from the flight recorder's ring buffer;
//   * the heap-chunk neighborhood around the implicated address (with the
//     corrupted chunk marked, and chunk-chain truncation made explicit);
//   * the region map around the implicated address.
//
// Dossiers are pure data derived from deterministic simulated state, so both
// serializations (XML here, length-prefixed binary in fleet/wire.hpp) are
// byte-identical across runs and across --jobs settings — tests byte-compare
// them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memmodel/addr_space.hpp"
#include "simlib/observer.hpp"
#include "support/result.hpp"
#include "xml/xml.hpp"

namespace healers::incident {

// One ring-buffer record: a wrapped call as the flight recorder saw it at
// dispatch. Arguments are digested, not stored — the ring must be cheap to
// feed — but the digest is stable, so identical traces compare equal.
struct TraceEntry {
  std::uint64_t seq = 0;         // process-wide dispatch sequence number
  std::uint64_t tick = 0;        // machine steps at dispatch
  std::uint64_t cycles = 0;      // virtual cycle clock at dispatch
  std::uint64_t arg_digest = 0;  // FNV-1a over (kind, bits) of every argument
  std::uint32_t argc = 0;
  std::string symbol;
};

// One heap chunk in the neighborhood of the implicated address.
struct ChunkState {
  std::uint64_t header = 0;
  std::uint64_t user = 0;
  std::uint64_t size = 0;
  bool in_use = false;
  bool suspect = false;  // contains the implicated address
};

// One applied repair (ISSUE 9): a repair wrapper rewrote a call instead of
// rejecting it. Dossiers carry the repairs applied so far so a post-mortem
// can see *what was repaired and why* next to what was detected.
struct RepairEvent {
  std::uint64_t seq = 0;    // dispatch sequence number of the repaired call
  std::uint64_t tick = 0;   // machine steps at the repair
  simlib::RepairAction action = simlib::RepairAction::kTruncateWrite;
  std::string symbol;       // the rewritten call
  std::string detail;       // policy provenance + what was changed
  std::uint64_t fault_addr = 0;  // the pointer the repair is about
  std::uint64_t requested = 0;   // what the caller asked for (bytes)
  std::uint64_t granted = 0;     // what the repair allowed
};

// One mapped region near the implicated address.
struct RegionState {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  std::uint8_t perm = 0;  // mem::Perm bits
  std::string kind;       // region kind name ("heap", "stack", ...)
  std::string label;
  bool suspect = false;  // contains the implicated address
};

struct Dossier {
  std::string process;
  simlib::DetectionKind detector = simlib::DetectionKind::kAccessFault;
  std::string symbol;  // offending call ("?" when no call was in flight)
  std::string detail;  // detector's own message
  std::uint64_t seq = 0;
  std::uint64_t tick = 0;
  std::uint64_t cycles = 0;
  std::uint64_t fault_addr = 0;    // implicated address, 0 when none
  std::vector<std::string> args;   // decoded arguments of the offending call
  std::vector<TraceEntry> trace;   // oldest first, the offending call last
  std::vector<ChunkState> heap;    // neighborhood around fault_addr
  std::string heap_note;           // e.g. "chunk chain truncated at 0x..."
  std::vector<RegionState> regions;
  std::vector<RepairEvent> repairs;  // repairs applied up to this dossier

  [[nodiscard]] bool operator==(const Dossier& other) const;

  // Self-describing XML document (<dossier> root), deterministic field and
  // child order — the byte-compare surface.
  [[nodiscard]] xml::Node to_xml() const;

  // Human-readable post-mortem (the `healers dossier` default rendering).
  [[nodiscard]] std::string to_text() const;
};

[[nodiscard]] bool operator==(const TraceEntry& a, const TraceEntry& b);
[[nodiscard]] bool operator==(const ChunkState& a, const ChunkState& b);
[[nodiscard]] bool operator==(const RegionState& a, const RegionState& b);
[[nodiscard]] bool operator==(const RepairEvent& a, const RepairEvent& b);

// Strict parser for the <dossier> document (round-trips to_xml()).
[[nodiscard]] Result<Dossier> from_xml(const xml::Node& node);

// Detector name <-> enum (the XML attribute encoding).
[[nodiscard]] Result<simlib::DetectionKind> detection_kind_from_name(const std::string& name);

// Repair action name <-> enum (the XML attribute encoding).
[[nodiscard]] Result<simlib::RepairAction> repair_action_from_name(const std::string& name);

// "0x1a2b" rendering shared by the XML and text serializers.
[[nodiscard]] std::string hex_addr(std::uint64_t value);

}  // namespace healers::incident
