#include "incident/dossier.hpp"

#include <array>

namespace healers::incident {

namespace {

using simlib::DetectionKind;
using simlib::RepairAction;

constexpr std::array<DetectionKind, 7> kAllKinds = {
    DetectionKind::kArgCheck,    DetectionKind::kHeapSmash,   DetectionKind::kStackSmash,
    DetectionKind::kAccessFault, DetectionKind::kErrorInject, DetectionKind::kRepair,
    DetectionKind::kSurfaceViolation};

constexpr std::array<RepairAction, 4> kAllActions = {
    RepairAction::kTruncateWrite, RepairAction::kSubstituteBounded,
    RepairAction::kSynthesizeInput, RepairAction::kSafeReturn};

Result<std::uint64_t> parse_u64(const xml::Node& node, std::string_view attr) {
  const std::string* raw = node.attr(attr);
  if (raw == nullptr) return Error("dossier: missing attribute " + std::string(attr));
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(*raw, &used, 0);  // accepts 0x... and decimal
    if (used != raw->size()) return Error("dossier: malformed " + std::string(attr));
    return value;
  } catch (const std::exception&) {
    return Error("dossier: malformed " + std::string(attr));
  }
}

std::string attr_or_empty(const xml::Node& node, std::string_view key) {
  const std::string* value = node.attr(key);
  return value == nullptr ? std::string() : *value;
}

}  // namespace

std::string hex_addr(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  if (value == 0) return "0x0";
  std::string out;
  while (value != 0) {
    out.insert(out.begin(), kDigits[value & 0xF]);
    value >>= 4;
  }
  return "0x" + out;
}

bool operator==(const TraceEntry& a, const TraceEntry& b) {
  return a.seq == b.seq && a.tick == b.tick && a.cycles == b.cycles &&
         a.arg_digest == b.arg_digest && a.argc == b.argc && a.symbol == b.symbol;
}

bool operator==(const ChunkState& a, const ChunkState& b) {
  return a.header == b.header && a.user == b.user && a.size == b.size &&
         a.in_use == b.in_use && a.suspect == b.suspect;
}

bool operator==(const RegionState& a, const RegionState& b) {
  return a.base == b.base && a.size == b.size && a.perm == b.perm && a.kind == b.kind &&
         a.label == b.label && a.suspect == b.suspect;
}

bool operator==(const RepairEvent& a, const RepairEvent& b) {
  return a.seq == b.seq && a.tick == b.tick && a.action == b.action && a.symbol == b.symbol &&
         a.detail == b.detail && a.fault_addr == b.fault_addr && a.requested == b.requested &&
         a.granted == b.granted;
}

bool Dossier::operator==(const Dossier& other) const {
  return process == other.process && detector == other.detector && symbol == other.symbol &&
         detail == other.detail && seq == other.seq && tick == other.tick &&
         cycles == other.cycles && fault_addr == other.fault_addr && args == other.args &&
         trace == other.trace && heap == other.heap && heap_note == other.heap_note &&
         regions == other.regions && repairs == other.repairs;
}

Result<DetectionKind> detection_kind_from_name(const std::string& name) {
  for (const DetectionKind kind : kAllKinds) {
    if (simlib::to_string(kind) == name) return kind;
  }
  return Error("dossier: unknown detector '" + name + "'");
}

Result<RepairAction> repair_action_from_name(const std::string& name) {
  for (const RepairAction action : kAllActions) {
    if (simlib::to_string(action) == name) return action;
  }
  return Error("dossier: unknown repair action '" + name + "'");
}

xml::Node Dossier::to_xml() const {
  xml::Node root("dossier");
  root.set_attr("process", process);
  root.set_attr("detector", simlib::to_string(detector));
  root.set_attr("symbol", symbol);
  root.set_attr("seq", std::to_string(seq));
  root.set_attr("tick", std::to_string(tick));
  root.set_attr("cycles", std::to_string(cycles));
  root.set_attr("fault_addr", hex_addr(fault_addr));
  root.add_text_child("detail", detail);

  xml::Node& call = root.add_child("call");
  for (const std::string& arg : args) {
    call.add_child("arg").set_attr("value", arg);
  }

  xml::Node& trace_node = root.add_child("trace");
  for (const TraceEntry& entry : trace) {
    xml::Node& row = trace_node.add_child("event");
    row.set_attr("seq", std::to_string(entry.seq));
    row.set_attr("symbol", entry.symbol);
    row.set_attr("tick", std::to_string(entry.tick));
    row.set_attr("cycles", std::to_string(entry.cycles));
    row.set_attr("argc", std::to_string(entry.argc));
    row.set_attr("digest", hex_addr(entry.arg_digest));
  }

  xml::Node& heap_node = root.add_child("heap");
  if (!heap_note.empty()) heap_node.set_attr("note", heap_note);
  for (const ChunkState& chunk : heap) {
    xml::Node& row = heap_node.add_child("chunk");
    row.set_attr("header", hex_addr(chunk.header));
    row.set_attr("user", hex_addr(chunk.user));
    row.set_attr("size", std::to_string(chunk.size));
    row.set_attr("in_use", chunk.in_use ? "1" : "0");
    if (chunk.suspect) row.set_attr("suspect", "1");
  }

  xml::Node& regions_node = root.add_child("regions");
  for (const RegionState& region : regions) {
    xml::Node& row = regions_node.add_child("region");
    row.set_attr("base", hex_addr(region.base));
    row.set_attr("size", std::to_string(region.size));
    row.set_attr("perm", std::to_string(region.perm));
    row.set_attr("kind", region.kind);
    row.set_attr("label", region.label);
    if (region.suspect) row.set_attr("suspect", "1");
  }

  // Appended after <regions> so pre-repair documents (no <repairs> child)
  // still parse: absent means "no repairs applied".
  if (!repairs.empty()) {
    xml::Node& repairs_node = root.add_child("repairs");
    for (const RepairEvent& repair : repairs) {
      xml::Node& row = repairs_node.add_child("repair");
      row.set_attr("seq", std::to_string(repair.seq));
      row.set_attr("tick", std::to_string(repair.tick));
      row.set_attr("action", simlib::to_string(repair.action));
      row.set_attr("symbol", repair.symbol);
      row.set_attr("addr", hex_addr(repair.fault_addr));
      row.set_attr("requested", std::to_string(repair.requested));
      row.set_attr("granted", std::to_string(repair.granted));
      row.set_attr("detail", repair.detail);
    }
  }
  return root;
}

Result<Dossier> from_xml(const xml::Node& node) {
  if (node.name() != "dossier") return Error("dossier: root element is not <dossier>");
  Dossier out;
  out.process = attr_or_empty(node, "process");
  auto kind = detection_kind_from_name(attr_or_empty(node, "detector"));
  if (!kind.ok()) return kind.error();
  out.detector = kind.value();
  out.symbol = attr_or_empty(node, "symbol");
  for (const auto& [field, target] :
       std::initializer_list<std::pair<const char*, std::uint64_t*>>{
           {"seq", &out.seq}, {"tick", &out.tick}, {"cycles", &out.cycles},
           {"fault_addr", &out.fault_addr}}) {
    auto value = parse_u64(node, field);
    if (!value.ok()) return value.error();
    *target = value.value();
  }
  if (const xml::Node* detail = node.child("detail")) out.detail = detail->text();

  if (const xml::Node* call = node.child("call")) {
    for (const xml::Node* arg : call->children_named("arg")) {
      out.args.push_back(attr_or_empty(*arg, "value"));
    }
  }

  if (const xml::Node* trace_node = node.child("trace")) {
    for (const xml::Node* row : trace_node->children_named("event")) {
      TraceEntry entry;
      entry.symbol = attr_or_empty(*row, "symbol");
      auto seq = parse_u64(*row, "seq");
      auto tick = parse_u64(*row, "tick");
      auto cycles = parse_u64(*row, "cycles");
      auto argc = parse_u64(*row, "argc");
      auto digest = parse_u64(*row, "digest");
      for (const auto* field : {&seq, &tick, &cycles, &argc, &digest}) {
        if (!field->ok()) return field->error();
      }
      entry.seq = seq.value();
      entry.tick = tick.value();
      entry.cycles = cycles.value();
      entry.argc = static_cast<std::uint32_t>(argc.value());
      entry.arg_digest = digest.value();
      out.trace.push_back(std::move(entry));
    }
  }

  if (const xml::Node* heap_node = node.child("heap")) {
    out.heap_note = attr_or_empty(*heap_node, "note");
    for (const xml::Node* row : heap_node->children_named("chunk")) {
      ChunkState chunk;
      auto header = parse_u64(*row, "header");
      auto user = parse_u64(*row, "user");
      auto size = parse_u64(*row, "size");
      for (const auto* field : {&header, &user, &size}) {
        if (!field->ok()) return field->error();
      }
      chunk.header = header.value();
      chunk.user = user.value();
      chunk.size = size.value();
      chunk.in_use = row->attr_int("in_use", 0) != 0;
      chunk.suspect = row->attr_int("suspect", 0) != 0;
      out.heap.push_back(chunk);
    }
  }

  if (const xml::Node* regions_node = node.child("regions")) {
    for (const xml::Node* row : regions_node->children_named("region")) {
      RegionState region;
      auto base = parse_u64(*row, "base");
      auto size = parse_u64(*row, "size");
      auto perm = parse_u64(*row, "perm");
      for (const auto* field : {&base, &size, &perm}) {
        if (!field->ok()) return field->error();
      }
      region.base = base.value();
      region.size = size.value();
      region.perm = static_cast<std::uint8_t>(perm.value());
      region.kind = attr_or_empty(*row, "kind");
      region.label = attr_or_empty(*row, "label");
      region.suspect = row->attr_int("suspect", 0) != 0;
      out.regions.push_back(std::move(region));
    }
  }

  if (const xml::Node* repairs_node = node.child("repairs")) {
    for (const xml::Node* row : repairs_node->children_named("repair")) {
      RepairEvent repair;
      auto action = repair_action_from_name(attr_or_empty(*row, "action"));
      if (!action.ok()) return action.error();
      repair.action = action.value();
      repair.symbol = attr_or_empty(*row, "symbol");
      repair.detail = attr_or_empty(*row, "detail");
      auto seq = parse_u64(*row, "seq");
      auto tick = parse_u64(*row, "tick");
      auto addr = parse_u64(*row, "addr");
      auto requested = parse_u64(*row, "requested");
      auto granted = parse_u64(*row, "granted");
      for (const auto* field : {&seq, &tick, &addr, &requested, &granted}) {
        if (!field->ok()) return field->error();
      }
      repair.seq = seq.value();
      repair.tick = tick.value();
      repair.fault_addr = addr.value();
      repair.requested = requested.value();
      repair.granted = granted.value();
      out.repairs.push_back(std::move(repair));
    }
  }
  return out;
}

std::string Dossier::to_text() const {
  std::string out;
  out += "=== crash dossier: " + simlib::to_string(detector) + " in " + symbol + " ===\n";
  out += "process:     " + process + "\n";
  out += "detail:      " + detail + "\n";
  out += "at:          seq " + std::to_string(seq) + ", tick " + std::to_string(tick) +
         ", cycle " + std::to_string(cycles) + "\n";
  if (fault_addr != 0) out += "implicated:  " + hex_addr(fault_addr) + "\n";
  if (!args.empty()) {
    out += "call:        " + symbol + "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i];
    }
    out += ")\n";
  }
  if (!trace.empty()) {
    out += "last " + std::to_string(trace.size()) + " wrapped calls (oldest first):\n";
    for (const TraceEntry& entry : trace) {
      out += "  #" + std::to_string(entry.seq) + "  " + entry.symbol + "/" +
             std::to_string(entry.argc) + "  tick=" + std::to_string(entry.tick) +
             "  digest=" + hex_addr(entry.arg_digest) + "\n";
    }
  }
  if (!heap.empty() || !heap_note.empty()) {
    out += "heap neighborhood:\n";
    for (const ChunkState& chunk : heap) {
      out += "  chunk @" + hex_addr(chunk.header) + " user=" + hex_addr(chunk.user) +
             " size=" + std::to_string(chunk.size) + (chunk.in_use ? " in-use" : " free") +
             (chunk.suspect ? "   <-- corrupted allocation" : "") + "\n";
    }
    if (!heap_note.empty()) out += "  ! " + heap_note + "\n";
  }
  if (!regions.empty()) {
    out += "region map:\n";
    for (const RegionState& region : regions) {
      static constexpr const char* kPermNames[] = {"---", "r--", "-w-", "rw-"};
      out += "  " + hex_addr(region.base) + " +" + std::to_string(region.size) + "  " +
             kPermNames[region.perm & 3] + "  " + region.kind + "  " + region.label +
             (region.suspect ? "   <-- fault here" : "") + "\n";
    }
  }
  if (!repairs.empty()) {
    out += "repairs applied:\n";
    for (const RepairEvent& repair : repairs) {
      out += "  #" + std::to_string(repair.seq) + "  " + repair.symbol + "  " +
             simlib::to_string(repair.action) + "  " + hex_addr(repair.fault_addr) +
             "  requested=" + std::to_string(repair.requested) +
             " granted=" + std::to_string(repair.granted) + "  " + repair.detail + "\n";
    }
  }
  return out;
}

}  // namespace healers::incident
