#include "linker/executable.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace healers::linker {

std::string LinkMap::to_text() const {
  std::string out;
  out += "executable: " + executable + "\n";
  out += "linked libraries:\n";
  for (const std::string& soname : linked_libraries) {
    out += "  " + soname + "\n";
  }
  out += "undefined functions:\n";
  for (const SymbolResolution& res : resolutions) {
    out += "  " + res.symbol + " -> " + (res.provider.empty() ? "<unresolved>" : res.provider) +
           "\n";
  }
  if (!stale_imports.empty()) {
    out += "stale imports (called at runtime, missing from the declared list):\n";
    for (const std::string& symbol : stale_imports) {
      out += "  " + symbol + "\n";
    }
  }
  return out;
}

xml::Node LinkMap::to_xml() const {
  xml::Node root("link-map");
  root.set_attr("executable", executable);
  for (const std::string& soname : linked_libraries) {
    root.add_child("library").set_attr("soname", soname);
  }
  for (const SymbolResolution& res : resolutions) {
    xml::Node& row = root.add_child("import");
    row.set_attr("symbol", res.symbol);
    row.set_attr("provider", res.provider);
  }
  for (const std::string& symbol : stale_imports) {
    root.add_child("stale-import").set_attr("symbol", symbol);
  }
  return root;
}

void LibraryCatalog::install(const simlib::SharedLibrary* lib) {
  if (lib == nullptr) throw std::invalid_argument("LibraryCatalog::install: null library");
  libraries_[lib->soname()] = lib;
}

const simlib::SharedLibrary* LibraryCatalog::find(const std::string& soname) const {
  auto it = libraries_.find(soname);
  return it == libraries_.end() ? nullptr : it->second;
}

std::vector<std::string> LibraryCatalog::sonames() const {
  std::vector<std::string> out;
  out.reserve(libraries_.size());
  for (const auto& [soname, _] : libraries_) out.push_back(soname);
  return out;
}

LinkMap inspect_executable(const Executable& exe, const LibraryCatalog& catalog) {
  LinkMap map;
  map.executable = exe.name;
  map.linked_libraries = exe.needed;
  for (const std::string& symbol : exe.undefined) {
    SymbolResolution res;
    res.symbol = symbol;
    for (const std::string& soname : exe.needed) {
      const simlib::SharedLibrary* lib = catalog.find(soname);
      if (lib != nullptr && lib->defines(symbol)) {
        res.provider = soname;
        break;
      }
    }
    if (res.provider.empty()) map.unresolved.push_back(symbol);
    map.resolutions.push_back(std::move(res));
  }
  return map;
}

namespace {

// Records every symbol dispatched through it; wraps everything.
class TracingInterposition : public Interposition {
 public:
  explicit TracingInterposition(std::set<std::string>& seen) : seen_(seen) {}

  [[nodiscard]] std::string name() const override { return "import-tracer"; }
  [[nodiscard]] bool wraps(const std::string&) const override { return true; }
  simlib::SimValue call(const std::string& symbol, simlib::CallContext& ctx,
                        const NextFn& next) override {
    seen_.insert(symbol);
    return next(ctx);
  }

 private:
  std::set<std::string>& seen_;
};

}  // namespace

std::vector<std::string> validate_executable(const Executable& exe,
                                             const LibraryCatalog& catalog,
                                             CallOutcome* outcome) {
  std::set<std::string> seen;
  auto process = spawn(exe, catalog, {std::make_shared<TracingInterposition>(seen)});
  const CallOutcome result =
      exe.entry ? process->run(exe.entry) : CallOutcome{};
  if (outcome != nullptr) *outcome = result;
  std::vector<std::string> missing;
  for (const std::string& symbol : seen) {
    if (std::find(exe.undefined.begin(), exe.undefined.end(), symbol) == exe.undefined.end()) {
      missing.push_back(symbol);
    }
  }
  return missing;
}

std::unique_ptr<Process> spawn(const Executable& exe, const LibraryCatalog& catalog,
                               std::vector<InterpositionPtr> preloads,
                               mem::MachineConfig config) {
  auto process = std::make_unique<Process>(exe.name, config);
  // LD_PRELOAD semantics: preloads interpose ahead of everything.
  for (InterpositionPtr& wrapper : preloads) {
    process->preload(std::move(wrapper));
  }
  for (const std::string& soname : exe.needed) {
    const simlib::SharedLibrary* lib = catalog.find(soname);
    if (lib == nullptr) {
      throw std::runtime_error("spawn: missing library " + soname + " for " + exe.name);
    }
    process->load_library(lib);
  }
  return process;
}

}  // namespace healers::linker
