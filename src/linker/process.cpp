#include "linker/process.hpp"

#include <stdexcept>

#include "simlib/observer.hpp"

namespace healers::linker {

std::string CallOutcome::to_string() const {
  switch (kind) {
    case Kind::kReturned:
      return "returned " + ret.to_string();
    case Kind::kCrash:
      return "crash (" + healers::to_string(signal) + "): " + detail;
    case Kind::kHang:
      return "hang: " + detail;
    case Kind::kAbort:
      return "abort: " + detail;
    case Kind::kExit:
      return "exit " + std::to_string(exit_code);
    case Kind::kHijack:
      return "HIJACKED: " + detail;
    case Kind::kNotRun:
      return "not run: " + detail;
  }
  return "?";
}

Process::Process(std::string name, mem::MachineConfig config)
    : name_(std::move(name)), machine_(config) {}

void Process::load_library(const simlib::SharedLibrary* lib) {
  if (lib == nullptr) throw std::invalid_argument("Process::load_library: null library");
  libraries_.push_back(lib);
  if (demand_loading_) {
    // The load barrier: exports stay unmapped until first call. Only the
    // export count is taken now, for the bloat-ratio denominator.
    surface_.exported += lib->names().size();
  } else {
    // Populate GOT slots for the library's exports (all slots bind at load,
    // as with LD_BIND_NOW).
    for (const std::string& symbol : lib->names()) {
      machine_.define_got_slot(symbol);
    }
  }
  plans_.clear();  // new definitions may change symbol resolution
}

void Process::preload(InterpositionPtr wrapper) {
  if (wrapper == nullptr) throw std::invalid_argument("Process::preload: null wrapper");
  // Reject the same *instance* twice (it would dispatch twice per call);
  // distinct instances sharing a family name ("profiling-wrapper" for two
  // libraries) are a legitimate stack.
  for (const InterpositionPtr& existing : preloads_) {
    if (existing.get() == wrapper.get()) {
      throw std::invalid_argument("Process::preload: duplicate wrapper '" + wrapper->name() +
                                  "'");
    }
  }
  preloads_.push_back(std::move(wrapper));
  plans_.clear();  // the new layer must appear in every affected chain
}

void Process::enable_demand_loading(std::vector<std::string> profile) {
  if (!libraries_.empty()) {
    throw std::logic_error("Process::enable_demand_loading: libraries already loaded");
  }
  demand_loading_ = true;
  profile_.insert(std::make_move_iterator(profile.begin()),
                  std::make_move_iterator(profile.end()));
}

void Process::fault_in_symbol(const std::string& symbol) {
  machine_.define_got_slot(symbol);
  // The symbol's code pages fault into the COW space as a one-page
  // read-only region; resident_pages() over "text:" regions is the working
  // set the surface profile reports.
  const simlib::SharedLibrary* owner = nullptr;
  for (const simlib::SharedLibrary* lib : libraries_) {
    if (lib->find(symbol) != nullptr) {
      owner = lib;
      break;
    }
  }
  machine_.mem().map(mem::kCowPageSize, mem::Perm::kRead, mem::RegionKind::kRodata,
                     "text:" + (owner != nullptr ? owner->soname() : std::string("?")) + ":" +
                         symbol);
  ++surface_.mapped;
  touched_.insert(symbol);
}

void Process::trap_surface_violation(const std::string& symbol,
                                     std::vector<simlib::SimValue> args) {
  ++surface_.violations;
  trapped_.insert(symbol);
  const std::string detail = "call to '" + symbol + "' outside the surface profile (" +
                             std::to_string(profile_.size()) + " symbols reachable)";
  if (observer_ != nullptr) {
    simlib::CallContext ctx{machine_, state_, std::move(args)};
    observer_->on_detection(ctx, simlib::DetectionKind::kSurfaceViolation, symbol, detail, 0);
  }
  throw SimAbort("surface violation: " + detail);
}

const simlib::Symbol* Process::resolve(const std::string& symbol) const {
  for (const simlib::SharedLibrary* lib : libraries_) {
    if (const simlib::Symbol* found = lib->find(symbol)) return found;
  }
  return nullptr;
}

const Process::DispatchPlan& Process::plan_for(const std::string& symbol) {
  const auto it = plans_.find(symbol);
  if (it != plans_.end()) return it->second;
  DispatchPlan plan;
  for (const InterpositionPtr& wrapper : preloads_) {
    if (const void* handle = wrapper->symbol_handle(symbol)) {
      plan.steps.push_back({wrapper.get(), handle});
    }
  }
  plan.base = resolve(symbol);
  return plans_.emplace(symbol, std::move(plan)).first->second;
}

simlib::SimValue Process::run_plan(const DispatchPlan& plan, std::size_t layer,
                                   const std::string& symbol, simlib::CallContext& ctx) {
  if (layer == plan.steps.size()) {
    if (plan.base == nullptr) {
      // Unresolved at call time: the loader would have refused to start; for
      // a running process this is the closest analogue of a PLT failure.
      throw AccessFault(FaultKind::kSegv, 0, "unresolved symbol " + symbol);
    }
    return plan.base->fn(ctx);
  }
  // `frame` is the named local NextFn references; it lives for the whole
  // wrapper call, satisfying the function_ref lifetime contract.
  struct Frame {
    Process* proc;
    const DispatchPlan* plan;
    const std::string* symbol;
    std::size_t next_layer;
    simlib::SimValue operator()(simlib::CallContext& inner) const {
      return proc->run_plan(*plan, next_layer, *symbol, inner);
    }
  } frame{this, &plan, &symbol, layer + 1};
  const NextFn next = frame;
  const DispatchStep& step = plan.steps[layer];
  return step.wrapper->call_with_handle(step.handle, symbol, ctx, next);
}

simlib::SimValue Process::call(const std::string& symbol, std::vector<simlib::SimValue> args) {
  // The load barrier (demand loading only): a resolvable symbol with no GOT
  // slot is either faulted in (profile member) or trapped as a surface
  // violation. Unresolvable symbols fall through to the normal
  // unresolved-symbol crash below.
  if (demand_loading_ && !machine_.has_got_slot(symbol) && resolve(symbol) != nullptr) {
    if (profile_.contains(symbol)) {
      fault_in_symbol(symbol);
    } else {
      ++calls_dispatched_;
      if (observer_ != nullptr) observer_->on_call(symbol, args, machine_);
      trap_surface_violation(symbol, std::move(args));
    }
  }
  // The GOT hop: validates that the slot still points at real code. An
  // attacker-rewritten slot raises ControlFlowHijack here — *before* any
  // wrapper or library code runs, like a hijacked PLT jump. Symbols with no
  // slot (nothing loaded defines them) fall through to dispatch, which
  // reports the unresolved-symbol crash.
  const std::string target =
      machine_.has_got_slot(symbol) ? machine_.call_through_got(symbol) : symbol;
  ++calls_dispatched_;
  // Flight-recorder feed: host-side bookkeeping only, so the branch is the
  // entire fast-path cost when no recorder is attached (and the recorder
  // never touches steps/cycles when one is — golden-tick enforced).
  if (observer_ != nullptr) observer_->on_call(target, args, machine_);
  simlib::CallContext ctx{machine_, state_, std::move(args)};
  return run_plan(plan_for(target), 0, target, ctx);
}

CallOutcome Process::supervised_call(const std::string& symbol,
                                     std::vector<simlib::SimValue> args) {
  CallOutcome outcome;
  try {
    outcome.ret = call(symbol, std::move(args));
    outcome.kind = CallOutcome::Kind::kReturned;
  } catch (const AccessFault& fault) {
    if (observer_ != nullptr) {
      observer_->on_fault(machine_, fault.kind(), fault.address(), fault.detail());
    }
    outcome.kind = CallOutcome::Kind::kCrash;
    outcome.signal = fault.kind();
    outcome.detail = fault.what();
  } catch (const SimHang& hang) {
    outcome.kind = CallOutcome::Kind::kHang;
    outcome.detail = hang.what();
  } catch (const SimAbort& abort_) {
    outcome.kind = CallOutcome::Kind::kAbort;
    outcome.detail = abort_.reason();
  } catch (const ControlFlowHijack& hijack) {
    outcome.kind = CallOutcome::Kind::kHijack;
    outcome.detail = hijack.detail();
  } catch (const SimExit& exit_) {
    outcome.kind = CallOutcome::Kind::kExit;
    outcome.exit_code = exit_.code();
  }
  return outcome;
}

CallOutcome Process::run(const std::function<int(Process&)>& program) {
  CallOutcome outcome;
  try {
    outcome.exit_code = program(*this);
    outcome.kind = CallOutcome::Kind::kExit;
  } catch (const AccessFault& fault) {
    if (observer_ != nullptr) {
      observer_->on_fault(machine_, fault.kind(), fault.address(), fault.detail());
    }
    outcome.kind = CallOutcome::Kind::kCrash;
    outcome.signal = fault.kind();
    outcome.detail = fault.what();
  } catch (const SimHang& hang) {
    outcome.kind = CallOutcome::Kind::kHang;
    outcome.detail = hang.what();
  } catch (const SimAbort& abort_) {
    outcome.kind = CallOutcome::Kind::kAbort;
    outcome.detail = abort_.reason();
  } catch (const ControlFlowHijack& hijack) {
    outcome.kind = CallOutcome::Kind::kHijack;
    outcome.detail = hijack.detail();
  } catch (const SimExit& exit_) {
    outcome.kind = CallOutcome::Kind::kExit;
    outcome.exit_code = exit_.code();
  }
  return outcome;
}

mem::Addr Process::alloc_cstring(const std::string& text) {
  const mem::Addr addr = machine_.heap().malloc(text.size() + 1);
  if (addr == 0) throw std::runtime_error("Process::alloc_cstring: simulated heap exhausted");
  machine_.mem().write_cstring(addr, text);
  return addr;
}

mem::Addr Process::scratch(std::uint64_t size, mem::Perm perm, const std::string& label) {
  return machine_.mem().map(size, perm, mem::RegionKind::kScratch, label).base;
}

mem::Addr Process::rodata_cstring(const std::string& text) {
  return machine_.intern_string(text);
}

Process::Snapshot Process::snapshot() {
  Snapshot snap;
  snap.machine = machine_.snapshot();
  snap.state = std::make_shared<const simlib::LibState>(state_.snapshot());
  snap.calls_dispatched = calls_dispatched_;
  snap.library_count = libraries_.size();
  snap.preload_count = preloads_.size();
  return snap;
}

void Process::restore(const Snapshot& snap) {
  if (libraries_.size() < snap.library_count || preloads_.size() < snap.preload_count) {
    throw std::logic_error("Process::restore: load set shrank since snapshot");
  }
  libraries_.resize(snap.library_count);
  preloads_.resize(snap.preload_count);
  plans_.clear();  // plans may reference wrappers/symbols dropped by the resize
  machine_.restore(snap.machine);
  state_.restore(*snap.state);
  state_.observer = observer_;  // the recorder survives testbed resets
  calls_dispatched_ = snap.calls_dispatched;
}

mem::Addr Process::register_callback(const std::string& name, simlib::CFunction fn) {
  const mem::Addr addr = machine_.register_code("callback:" + name);
  state_.callbacks[addr] = std::move(fn);
  return addr;
}

}  // namespace healers::linker
