#include "linker/process.hpp"

#include <stdexcept>

namespace healers::linker {

std::string CallOutcome::to_string() const {
  switch (kind) {
    case Kind::kReturned:
      return "returned " + ret.to_string();
    case Kind::kCrash:
      return "crash (" + healers::to_string(signal) + "): " + detail;
    case Kind::kHang:
      return "hang: " + detail;
    case Kind::kAbort:
      return "abort: " + detail;
    case Kind::kExit:
      return "exit " + std::to_string(exit_code);
    case Kind::kHijack:
      return "HIJACKED: " + detail;
    case Kind::kNotRun:
      return "not run: " + detail;
  }
  return "?";
}

Process::Process(std::string name, mem::MachineConfig config)
    : name_(std::move(name)), machine_(config) {}

void Process::load_library(const simlib::SharedLibrary* lib) {
  if (lib == nullptr) throw std::invalid_argument("Process::load_library: null library");
  libraries_.push_back(lib);
  // Populate GOT slots for the library's exports (lazy binding is not
  // modeled; all slots bind at load, as with LD_BIND_NOW).
  for (const std::string& symbol : lib->names()) {
    machine_.define_got_slot(symbol);
  }
}

void Process::preload(InterpositionPtr wrapper) {
  if (wrapper == nullptr) throw std::invalid_argument("Process::preload: null wrapper");
  preloads_.push_back(std::move(wrapper));
}

const simlib::Symbol* Process::resolve(const std::string& symbol) const {
  for (const simlib::SharedLibrary* lib : libraries_) {
    if (const simlib::Symbol* found = lib->find(symbol)) return found;
  }
  return nullptr;
}

simlib::SimValue Process::dispatch(const std::string& symbol, simlib::CallContext& ctx,
                                   std::size_t layer) {
  // Find the next preloaded wrapper (at or after `layer`) that wraps this
  // symbol; when none remain, call the base library function.
  for (std::size_t i = layer; i < preloads_.size(); ++i) {
    if (!preloads_[i]->wraps(symbol)) continue;
    const NextFn next = [this, &symbol, i](simlib::CallContext& inner) {
      return dispatch(symbol, inner, i + 1);
    };
    return preloads_[i]->call(symbol, ctx, next);
  }
  const simlib::Symbol* base = resolve(symbol);
  if (base == nullptr) {
    // Unresolved at call time: the loader would have refused to start; for a
    // running process this is the closest analogue of a PLT failure.
    throw AccessFault(FaultKind::kSegv, 0, "unresolved symbol " + symbol);
  }
  return base->fn(ctx);
}

simlib::SimValue Process::call(const std::string& symbol, std::vector<simlib::SimValue> args) {
  // The GOT hop: validates that the slot still points at real code. An
  // attacker-rewritten slot raises ControlFlowHijack here — *before* any
  // wrapper or library code runs, like a hijacked PLT jump. Symbols with no
  // slot (nothing loaded defines them) fall through to dispatch, which
  // reports the unresolved-symbol crash.
  const std::string target =
      machine_.has_got_slot(symbol) ? machine_.call_through_got(symbol) : symbol;
  ++calls_dispatched_;
  simlib::CallContext ctx{machine_, state_, std::move(args)};
  return dispatch(target, ctx, 0);
}

CallOutcome Process::supervised_call(const std::string& symbol,
                                     std::vector<simlib::SimValue> args) {
  CallOutcome outcome;
  try {
    outcome.ret = call(symbol, std::move(args));
    outcome.kind = CallOutcome::Kind::kReturned;
  } catch (const AccessFault& fault) {
    outcome.kind = CallOutcome::Kind::kCrash;
    outcome.signal = fault.kind();
    outcome.detail = fault.what();
  } catch (const SimHang& hang) {
    outcome.kind = CallOutcome::Kind::kHang;
    outcome.detail = hang.what();
  } catch (const SimAbort& abort_) {
    outcome.kind = CallOutcome::Kind::kAbort;
    outcome.detail = abort_.reason();
  } catch (const ControlFlowHijack& hijack) {
    outcome.kind = CallOutcome::Kind::kHijack;
    outcome.detail = hijack.detail();
  } catch (const SimExit& exit_) {
    outcome.kind = CallOutcome::Kind::kExit;
    outcome.exit_code = exit_.code();
  }
  return outcome;
}

CallOutcome Process::run(const std::function<int(Process&)>& program) {
  CallOutcome outcome;
  try {
    outcome.exit_code = program(*this);
    outcome.kind = CallOutcome::Kind::kExit;
  } catch (const AccessFault& fault) {
    outcome.kind = CallOutcome::Kind::kCrash;
    outcome.signal = fault.kind();
    outcome.detail = fault.what();
  } catch (const SimHang& hang) {
    outcome.kind = CallOutcome::Kind::kHang;
    outcome.detail = hang.what();
  } catch (const SimAbort& abort_) {
    outcome.kind = CallOutcome::Kind::kAbort;
    outcome.detail = abort_.reason();
  } catch (const ControlFlowHijack& hijack) {
    outcome.kind = CallOutcome::Kind::kHijack;
    outcome.detail = hijack.detail();
  } catch (const SimExit& exit_) {
    outcome.kind = CallOutcome::Kind::kExit;
    outcome.exit_code = exit_.code();
  }
  return outcome;
}

mem::Addr Process::alloc_cstring(const std::string& text) {
  const mem::Addr addr = machine_.heap().malloc(text.size() + 1);
  if (addr == 0) throw std::runtime_error("Process::alloc_cstring: simulated heap exhausted");
  machine_.mem().write_cstring(addr, text);
  return addr;
}

mem::Addr Process::scratch(std::uint64_t size, mem::Perm perm, const std::string& label) {
  return machine_.mem().map(size, perm, mem::RegionKind::kScratch, label).base;
}

mem::Addr Process::rodata_cstring(const std::string& text) {
  return machine_.intern_string(text);
}

Process::Snapshot Process::snapshot() {
  Snapshot snap;
  snap.machine = machine_.snapshot();
  snap.state = state_.snapshot();
  snap.calls_dispatched = calls_dispatched_;
  snap.library_count = libraries_.size();
  snap.preload_count = preloads_.size();
  return snap;
}

void Process::restore(const Snapshot& snap) {
  if (libraries_.size() < snap.library_count || preloads_.size() < snap.preload_count) {
    throw std::logic_error("Process::restore: load set shrank since snapshot");
  }
  libraries_.resize(snap.library_count);
  preloads_.resize(snap.preload_count);
  machine_.restore(snap.machine);
  state_.restore(snap.state);
  calls_dispatched_ = snap.calls_dispatched;
}

mem::Addr Process::register_callback(const std::string& name, simlib::CFunction fn) {
  const mem::Addr addr = machine_.register_code("callback:" + name);
  state_.callbacks[addr] = std::move(fn);
  return addr;
}

}  // namespace healers::linker
