// Interposition interface between the dynamic linker and wrapper libraries.
//
// A preloaded wrapper (paper §2.1, Fig 1) sits between the application and
// the shared libraries: every intercepted call runs the wrapper's logic,
// which may check arguments, collect statistics, veto the call, or forward
// to the next layer (another wrapper, or the base library function) — the
// simulated analogue of dlsym(RTLD_NEXT).
#pragma once

#include <memory>
#include <string>
#include <type_traits>

#include "simlib/value.hpp"

namespace healers::linker {

// Invokes the next layer in the interposition chain with (possibly modified)
// arguments; ultimately the base library function.
//
// Non-owning callable reference (function_ref): the dispatch loop builds one
// per layer on the stack of the calling frame, so — unlike std::function —
// there is no allocation or ownership bookkeeping on the per-call hot path.
// The referenced callable must outlive the call; every constructor use in
// this codebase references a named local of the dispatching frame.
class NextFn {
 public:
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::remove_cvref_t<F>, NextFn>, int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  NextFn(F&& callable) noexcept
      : env_(const_cast<void*>(static_cast<const void*>(std::addressof(callable)))),
        fn_([](void* env, simlib::CallContext& ctx) -> simlib::SimValue {
          return (*static_cast<std::remove_reference_t<F>*>(env))(ctx);
        }) {}

  simlib::SimValue operator()(simlib::CallContext& ctx) const { return fn_(env_, ctx); }

 private:
  void* env_;
  simlib::SimValue (*fn_)(void*, simlib::CallContext&);
};

class Interposition {
 public:
  virtual ~Interposition() = default;

  // Wrapper library name shown in link maps and reports
  // (e.g. "security-wrapper", "profiling-wrapper").
  [[nodiscard]] virtual std::string name() const = 0;

  // True when this wrapper interposes on `symbol`. Non-wrapped symbols
  // bypass the layer entirely — the paper's "pay only for the protection an
  // application actually needs".
  [[nodiscard]] virtual bool wraps(const std::string& symbol) const = 0;

  // Around-advice for one call: run prefix logic, call next(ctx) zero or one
  // times, run postfix logic, return the result. Throwing SimAbort here
  // terminates the process (the security wrapper's response to an attack).
  virtual simlib::SimValue call(const std::string& symbol, simlib::CallContext& ctx,
                                const NextFn& next) = 0;

  // --- dispatch fast path ---
  // The linker resolves each symbol against each wrapper once, caches the
  // returned handle in its dispatch plan, and passes it back on every call —
  // so a wrapper can locate its per-symbol state without a lookup per call.
  // nullptr means "not wrapped here" (the layer is skipped entirely). The
  // handle must stay valid until the wrapper is destroyed; a wrapper that
  // gains symbols after being preloaded will not be seen by already-built
  // plans, so wrappers must be fully composed before dispatch begins (every
  // factory in this repo does so).
  [[nodiscard]] virtual const void* symbol_handle(const std::string& symbol) const {
    return wraps(symbol) ? static_cast<const void*>(this) : nullptr;
  }
  // Handle-based call. The default forwards to call(), so interpositions
  // that don't override symbol_handle keep their exact semantics.
  virtual simlib::SimValue call_with_handle(const void* /*handle*/, const std::string& symbol,
                                            simlib::CallContext& ctx, const NextFn& next) {
    return call(symbol, ctx, next);
  }
};

using InterpositionPtr = std::shared_ptr<Interposition>;

}  // namespace healers::linker
