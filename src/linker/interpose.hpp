// Interposition interface between the dynamic linker and wrapper libraries.
//
// A preloaded wrapper (paper §2.1, Fig 1) sits between the application and
// the shared libraries: every intercepted call runs the wrapper's logic,
// which may check arguments, collect statistics, veto the call, or forward
// to the next layer (another wrapper, or the base library function) — the
// simulated analogue of dlsym(RTLD_NEXT).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "simlib/value.hpp"

namespace healers::linker {

// Invokes the next layer in the interposition chain with (possibly modified)
// arguments; ultimately the base library function.
using NextFn = std::function<simlib::SimValue(simlib::CallContext&)>;

class Interposition {
 public:
  virtual ~Interposition() = default;

  // Wrapper library name shown in link maps and reports
  // (e.g. "security-wrapper", "profiling-wrapper").
  [[nodiscard]] virtual std::string name() const = 0;

  // True when this wrapper interposes on `symbol`. Non-wrapped symbols
  // bypass the layer entirely — the paper's "pay only for the protection an
  // application actually needs".
  [[nodiscard]] virtual bool wraps(const std::string& symbol) const = 0;

  // Around-advice for one call: run prefix logic, call next(ctx) zero or one
  // times, run postfix logic, return the result. Throwing SimAbort here
  // terminates the process (the security wrapper's response to an attack).
  virtual simlib::SimValue call(const std::string& symbol, simlib::CallContext& ctx,
                                const NextFn& next) = 0;
};

using InterpositionPtr = std::shared_ptr<Interposition>;

}  // namespace healers::linker
