#include "linker/testbed.hpp"

namespace healers::linker {

TestbedState::TestbedState(const LibraryCatalog& catalog, mem::MachineConfig config,
                           std::string stdin_content)
    : catalog_(&catalog), config_(config), stdin_content_(std::move(stdin_content)) {
  // Run the expensive setup exactly once: construct, preset stdin, load the
  // whole catalog, seal. Every fork/reset replays this state by reference.
  Process prototype("testbed-prototype", config_);
  prototype.state().stdin_content = stdin_content_;
  sonames_ = catalog_->sonames();
  for (const std::string& soname : sonames_) {
    prototype.load_library(catalog_->find(soname));
  }
  pristine_ = prototype.snapshot();
  build_stats_ = prototype.machine().mem().cow_stats();
}

std::shared_ptr<const TestbedState> TestbedState::build(const LibraryCatalog& catalog,
                                                        mem::MachineConfig config,
                                                        std::string stdin_content) {
  return std::shared_ptr<const TestbedState>(
      new TestbedState(catalog, config, std::move(stdin_content)));
}

std::unique_ptr<Process> TestbedState::fork(std::string name) const {
  auto shell = std::make_unique<Process>(std::move(name), config_);
  // Replay the load recipe so the shell's library/preload lists (which a
  // snapshot deliberately does not carry) match the pristine load set; the
  // restore below then rewinds the machine and C-runtime state onto the
  // shared image without copying a single region byte.
  shell->state().stdin_content = stdin_content_;
  for (const std::string& soname : sonames_) {
    shell->load_library(catalog_->find(soname));
  }
  shell->restore(pristine_);
  forks_.fetch_add(1, std::memory_order_relaxed);
  return shell;
}

void TestbedState::reset(Process& shell) const {
  shell.restore(pristine_);
  forks_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace healers::linker
