// Forkable testbed states (DESIGN.md, "COW testbed states").
//
// A TestbedState is the frozen post-load state of a fully loaded simulated
// process: machine image (COW page tables), C-runtime state, and the load
// recipe (catalog + sonames in load order) needed to rebuild a shell around
// it. It composes the layers the paper's driver resets per probe —
// AddressSpace/Heap/Stack via mem::Machine, simlib::LibState, and the
// linker::Process load set — into one refcounted, immutable object:
//
//   build()  runs setup ONCE (construct + load + seal),
//   fork()   stamps out a fresh shell process in O(metadata),
//   reset()  rewinds an existing shell to the pristine state in O(pages the
//            probe touched) — the campaign engine's per-probe reset, and the
//            derivation server's per-request isolation.
//
// A TestbedState is immutable after build() and safe to fork/reset from any
// number of threads concurrently (page refcounts are atomic); the shells it
// produces are single-threaded like any Process.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linker/executable.hpp"
#include "linker/process.hpp"

namespace healers::linker {

class TestbedState {
 public:
  // Builds the pristine state: constructs a process with `config`, presets
  // its stdin, loads every catalog library in catalog order, and seals the
  // result. The catalog must outlive the returned state and every shell.
  [[nodiscard]] static std::shared_ptr<const TestbedState> build(
      const LibraryCatalog& catalog, mem::MachineConfig config, std::string stdin_content);

  // Stamps out a fresh shell: a new process with the same load set, rewound
  // to the pristine image. O(metadata) — no region bytes are copied; pages
  // fault in lazily from the shared image as the probe touches them.
  [[nodiscard]] std::unique_ptr<Process> fork(std::string name) const;

  // Rewinds a shell made by fork() (or any process with the same load set)
  // back to the pristine state. O(pages touched since the last reset).
  void reset(Process& shell) const;

  [[nodiscard]] const Process::Snapshot& pristine() const noexcept { return pristine_; }
  [[nodiscard]] const mem::MachineConfig& config() const noexcept { return config_; }

  // COW counters of the one-time setup (notably pages_sealed: the size of
  // the pristine image in frozen pages).
  [[nodiscard]] const mem::CowStats& build_stats() const noexcept { return build_stats_; }

  // Shells forked + resets served, over the state's lifetime (telemetry).
  [[nodiscard]] std::uint64_t forks() const noexcept {
    return forks_.load(std::memory_order_relaxed);
  }

 private:
  TestbedState(const LibraryCatalog& catalog, mem::MachineConfig config,
               std::string stdin_content);

  const LibraryCatalog* catalog_;
  mem::MachineConfig config_;
  std::string stdin_content_;
  std::vector<std::string> sonames_;  // load order
  Process::Snapshot pristine_;
  mem::CowStats build_stats_;
  mutable std::atomic<std::uint64_t> forks_{0};
};

}  // namespace healers::linker
