// Simulated executables and the application-centric inspection of demo §3.2
// (paper Fig 4): given an executable, extract the list of libraries it links
// against and the list of undefined functions it imports, then map each
// undefined function to the library that would resolve it.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "linker/process.hpp"
#include "simlib/library.hpp"
#include "xml/xml.hpp"

namespace healers::linker {

// The ELF-shaped view of an application: a name, its DT_NEEDED list, its
// undefined (imported) symbols, and an entry point. `undefined` is what a
// real toolkit reads with nm -D --undefined-only; here app authors declare
// it, and validate_executable() below cross-checks it against the entry
// point's actual calls.
struct Executable {
  std::string name;
  std::vector<std::string> needed;     // sonames, resolution order
  std::vector<std::string> undefined;  // imported function symbols
  std::function<int(Process&)> entry;  // "main"
};

// One row of the Fig 4 report: an undefined symbol and where it resolves.
struct SymbolResolution {
  std::string symbol;
  std::string provider;  // soname, or "" when unresolved
};

// The whole Fig 4 view for one executable.
struct LinkMap {
  std::string executable;
  std::vector<std::string> linked_libraries;    // needed, in order
  std::vector<SymbolResolution> resolutions;    // one per undefined symbol
  std::vector<std::string> unresolved;          // subset with no provider
  // validate_executable() findings: symbols the entry point actually called
  // that the declared import list is missing. Empty until a dynamic
  // validation pass records them (inspect --validate).
  std::vector<std::string> stale_imports;

  [[nodiscard]] std::string to_text() const;  // human-readable rendering
  // Deterministic <link-map> document, stale imports included — the
  // machine-readable Fig 4 view.
  [[nodiscard]] xml::Node to_xml() const;
};

// A catalogue of installed libraries ("list all libraries in the system",
// demo §3.1) keyed by soname.
class LibraryCatalog {
 public:
  void install(const simlib::SharedLibrary* lib);
  [[nodiscard]] const simlib::SharedLibrary* find(const std::string& soname) const;
  [[nodiscard]] std::vector<std::string> sonames() const;

 private:
  std::map<std::string, const simlib::SharedLibrary*> libraries_;
};

// Builds the Fig 4 link map for an executable against a catalog.
[[nodiscard]] LinkMap inspect_executable(const Executable& exe, const LibraryCatalog& catalog);

// Creates a ready-to-run process for the executable: loads its needed
// libraries from the catalog (throws std::runtime_error when one is
// missing) and applies the given preloads outermost-first.
[[nodiscard]] std::unique_ptr<Process> spawn(const Executable& exe, const LibraryCatalog& catalog,
                                             std::vector<InterpositionPtr> preloads = {},
                                             mem::MachineConfig config = {});

// Dynamic cross-check of an executable's declared import list: runs the
// entry point once under a tracing interposition and reports library
// symbols it actually called that are MISSING from `undefined` (stale
// import lists are how Fig 4 views rot). The run's own outcome is returned
// through `outcome` when non-null.
[[nodiscard]] std::vector<std::string> validate_executable(const Executable& exe,
                                                           const LibraryCatalog& catalog,
                                                           CallOutcome* outcome = nullptr);

}  // namespace healers::linker
