// Simulated process + dynamic link loader.
//
// A Process owns one simulated machine and C-runtime state, a list of loaded
// shared libraries (searched in load order, like DT_NEEDED resolution), and
// a preload list of wrapper interpositions (outermost first, like
// LD_PRELOAD). Calls go:
//
//     app --> GOT slot --> [wrapper, wrapper, ...] --> base library function
//
// The GOT hop is the hijack oracle: each symbol gets a writable 8-byte slot
// holding its code address, and every call validates the slot before
// dispatch — so a heap-unlink or stack-smash that rewrites a slot turns the
// *next* call into a ControlFlowHijack, exactly like a GOT-overwrite exploit.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "linker/interpose.hpp"
#include "memmodel/machine.hpp"
#include "simlib/library.hpp"
#include "simlib/libstate.hpp"

namespace healers::linker {

// Terminal result of a supervised call or program run — the data the
// fault-injection driver reaps from a probe (paper Fig 2).
struct CallOutcome {
  enum class Kind : std::uint8_t {
    kReturned,  // normal return (value in `ret`)
    kCrash,     // AccessFault (signal in `signal`)
    kHang,      // step budget exhausted
    kAbort,     // SimAbort (library- or wrapper-initiated termination)
    kExit,      // orderly exit() (status in `exit_code`)
    kHijack,    // control flow left the program (successful exploit)
    kNotRun,    // the probe never executed (no such test case / symbol gone);
                // must never be folded into verdict statistics
  };

  Kind kind = Kind::kReturned;
  simlib::SimValue ret = simlib::SimValue::integer(0);
  FaultKind signal = FaultKind::kSegv;
  int exit_code = 0;
  std::string detail;

  [[nodiscard]] bool robustness_failure() const noexcept {
    return kind == Kind::kCrash || kind == Kind::kHang || kind == Kind::kAbort ||
           kind == Kind::kHijack;
  }
  [[nodiscard]] std::string to_string() const;
};

class Process {
 public:
  explicit Process(std::string name, mem::MachineConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] mem::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] const mem::Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] simlib::LibState& state() noexcept { return state_; }

  // Attaches (or detaches, with nullptr) an incident flight recorder. The
  // Process owns the authoritative pointer and mirrors it into
  // LibState::observer for the wrapper detectors; restore() re-asserts it so
  // a snapshot taken before the recorder was attached cannot detach it. The
  // observer itself is not owned and must outlive the process.
  void set_observer(simlib::CallObserver* observer) noexcept {
    observer_ = observer;
    state_.observer = observer;
  }
  [[nodiscard]] simlib::CallObserver* observer() const noexcept { return observer_; }

  // --- loading ---
  // Loads a shared library (non-owning; the library must outlive the
  // process). Resolution searches libraries in load order. Defines a GOT
  // slot for every symbol the library exports — unless demand loading is
  // enabled, in which case exports stay behind the load barrier.
  void load_library(const simlib::SharedLibrary* lib);
  // Prepends/appends a wrapper to the preload list. Wrappers preloaded
  // earlier are outermost (first to see the call), matching LD_PRELOAD.
  // Preloading the same wrapper object (or another wrapper with the same
  // name) twice throws std::invalid_argument — a double LD_PRELOAD entry
  // would silently double every detector.
  void preload(InterpositionPtr wrapper);

  // --- demand loading (debloat, docs/debloat.md) ---
  // Switches the loader to lazy binding against a surface profile: exports
  // of subsequently loaded libraries start unmapped (no GOT slot, no text
  // page). The first call to a profile symbol faults it in — defines its
  // GOT slot and maps its one-page text region — while a call to a
  // resolvable symbol OUTSIDE the profile raises the surface-violation
  // detector on the observer and terminates the process (SimAbort).
  // Enable before loading libraries; throws std::logic_error afterwards.
  void enable_demand_loading(std::vector<std::string> profile);
  [[nodiscard]] bool demand_loading() const noexcept { return demand_loading_; }

  struct SurfaceCounters {
    std::uint64_t exported = 0;    // symbols the load set exports (with dups)
    std::uint64_t mapped = 0;      // symbols faulted in so far
    std::uint64_t violations = 0;  // out-of-profile call attempts
  };
  [[nodiscard]] const SurfaceCounters& surface() const noexcept { return surface_; }
  // Symbols faulted in so far, sorted (the dynamic "touched" trace).
  [[nodiscard]] const std::set<std::string>& touched_symbols() const noexcept {
    return touched_;
  }
  // Out-of-profile symbols whose calls trapped, sorted.
  [[nodiscard]] const std::set<std::string>& trapped_symbols() const noexcept {
    return trapped_;
  }
  [[nodiscard]] const std::vector<const simlib::SharedLibrary*>& libraries() const noexcept {
    return libraries_;
  }
  [[nodiscard]] const std::vector<InterpositionPtr>& preloads() const noexcept {
    return preloads_;
  }

  // First library defining `symbol`, or nullptr.
  [[nodiscard]] const simlib::Symbol* resolve(const std::string& symbol) const;

  // --- calling ---
  // Raw call: interposition chain runs; faults propagate as exceptions.
  // This is what application code uses, so that a crash inside any call
  // unwinds the whole simulated program.
  simlib::SimValue call(const std::string& symbol, std::vector<simlib::SimValue> args);

  // Supervised call: like call(), but faults are reaped into a CallOutcome.
  CallOutcome supervised_call(const std::string& symbol, std::vector<simlib::SimValue> args);

  // Runs a whole simulated program under supervision. The program's int
  // return becomes kExit with that status; faults are reaped as above.
  CallOutcome run(const std::function<int(Process&)>& program);

  // --- convenience for app/test code (not part of the libc surface) ---
  // Heap-allocates and fills a NUL-terminated string; throws on OOM.
  mem::Addr alloc_cstring(const std::string& text);
  // Maps a dedicated scratch region (exact size, fault-bounded on both
  // ends thanks to guard gaps) — the injector's precise test buffers.
  mem::Addr scratch(std::uint64_t size, mem::Perm perm = mem::Perm::kReadWrite,
                    const std::string& label = "scratch");
  // Read-only string (interned into rodata).
  mem::Addr rodata_cstring(const std::string& text);

  // Registers an application callback (e.g. a qsort comparator): allocates
  // a code address for `name` and binds `fn` to it in the C runtime's
  // callback table. The returned address is what the app passes as a
  // function-pointer argument.
  mem::Addr register_callback(const std::string& name, simlib::CFunction fn);

  // Number of calls dispatched through this process (all symbols).
  [[nodiscard]] std::uint64_t calls_dispatched() const noexcept { return calls_dispatched_; }

  // --- snapshot / restore ---
  // Captures machine + C-runtime state after the testbed is fully loaded;
  // restore() rewinds both, giving the fault injector a fresh process
  // without reconstructing and reloading it. The machine half is a
  // refcounted COW image and the C-runtime half is shared immutable state,
  // so a Snapshot is cheap to copy, any number may coexist, and one frozen
  // Snapshot can reset many processes (linker::TestbedState forks shells
  // from exactly such a shared pristine snapshot). The loaded-library and
  // preload lists are NOT part of the snapshot: a restore requires the same
  // load set that was present at snapshot time (checked).
  struct Snapshot {
    mem::Machine::Snapshot machine;
    std::shared_ptr<const simlib::LibState> state;
    std::uint64_t calls_dispatched = 0;
    std::size_t library_count = 0;
    std::size_t preload_count = 0;
  };
  [[nodiscard]] Snapshot snapshot();
  // Throws std::logic_error when the load set changed since the snapshot.
  void restore(const Snapshot& snap);

 private:
  // Per-symbol dispatch plan: which preloaded wrappers interpose on the
  // symbol (with each wrapper's pre-resolved handle) and the base library
  // function. Built lazily on first call and cached, so the hot path walks
  // a flat array instead of querying every layer's wraps() per call.
  // Invalidated whenever the load set changes (load_library / preload /
  // restore).
  struct DispatchStep {
    Interposition* wrapper = nullptr;
    const void* handle = nullptr;
  };
  struct DispatchPlan {
    std::vector<DispatchStep> steps;
    const simlib::Symbol* base = nullptr;
  };
  const DispatchPlan& plan_for(const std::string& symbol);
  simlib::SimValue run_plan(const DispatchPlan& plan, std::size_t layer,
                            const std::string& symbol, simlib::CallContext& ctx);
  // Demand loading: defines the GOT slot and maps the symbol's text page.
  void fault_in_symbol(const std::string& symbol);
  // Demand loading: raises the surface-violation detector and aborts.
  [[noreturn]] void trap_surface_violation(const std::string& symbol,
                                           std::vector<simlib::SimValue> args);

  std::string name_;
  mem::Machine machine_;
  simlib::LibState state_;
  std::vector<const simlib::SharedLibrary*> libraries_;
  std::vector<InterpositionPtr> preloads_;
  std::unordered_map<std::string, DispatchPlan> plans_;
  std::uint64_t calls_dispatched_ = 0;
  simlib::CallObserver* observer_ = nullptr;

  // Demand-loading state (inert unless enable_demand_loading ran).
  bool demand_loading_ = false;
  std::set<std::string> profile_;  // symbols allowed through the barrier
  std::set<std::string> touched_;  // symbols faulted in, sorted
  std::set<std::string> trapped_;  // out-of-profile symbols that trapped
  SurfaceCounters surface_;
};

}  // namespace healers::linker
