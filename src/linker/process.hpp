// Simulated process + dynamic link loader.
//
// A Process owns one simulated machine and C-runtime state, a list of loaded
// shared libraries (searched in load order, like DT_NEEDED resolution), and
// a preload list of wrapper interpositions (outermost first, like
// LD_PRELOAD). Calls go:
//
//     app --> GOT slot --> [wrapper, wrapper, ...] --> base library function
//
// The GOT hop is the hijack oracle: each symbol gets a writable 8-byte slot
// holding its code address, and every call validates the slot before
// dispatch — so a heap-unlink or stack-smash that rewrites a slot turns the
// *next* call into a ControlFlowHijack, exactly like a GOT-overwrite exploit.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "linker/interpose.hpp"
#include "memmodel/machine.hpp"
#include "simlib/library.hpp"
#include "simlib/libstate.hpp"

namespace healers::linker {

// Terminal result of a supervised call or program run — the data the
// fault-injection driver reaps from a probe (paper Fig 2).
struct CallOutcome {
  enum class Kind : std::uint8_t {
    kReturned,  // normal return (value in `ret`)
    kCrash,     // AccessFault (signal in `signal`)
    kHang,      // step budget exhausted
    kAbort,     // SimAbort (library- or wrapper-initiated termination)
    kExit,      // orderly exit() (status in `exit_code`)
    kHijack,    // control flow left the program (successful exploit)
    kNotRun,    // the probe never executed (no such test case / symbol gone);
                // must never be folded into verdict statistics
  };

  Kind kind = Kind::kReturned;
  simlib::SimValue ret = simlib::SimValue::integer(0);
  FaultKind signal = FaultKind::kSegv;
  int exit_code = 0;
  std::string detail;

  [[nodiscard]] bool robustness_failure() const noexcept {
    return kind == Kind::kCrash || kind == Kind::kHang || kind == Kind::kAbort ||
           kind == Kind::kHijack;
  }
  [[nodiscard]] std::string to_string() const;
};

class Process {
 public:
  explicit Process(std::string name, mem::MachineConfig config = {});

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] mem::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] const mem::Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] simlib::LibState& state() noexcept { return state_; }

  // Attaches (or detaches, with nullptr) an incident flight recorder. The
  // Process owns the authoritative pointer and mirrors it into
  // LibState::observer for the wrapper detectors; restore() re-asserts it so
  // a snapshot taken before the recorder was attached cannot detach it. The
  // observer itself is not owned and must outlive the process.
  void set_observer(simlib::CallObserver* observer) noexcept {
    observer_ = observer;
    state_.observer = observer;
  }
  [[nodiscard]] simlib::CallObserver* observer() const noexcept { return observer_; }

  // --- loading ---
  // Loads a shared library (non-owning; the library must outlive the
  // process). Resolution searches libraries in load order. Defines a GOT
  // slot for every symbol the library exports.
  void load_library(const simlib::SharedLibrary* lib);
  // Prepends/appends a wrapper to the preload list. Wrappers preloaded
  // earlier are outermost (first to see the call), matching LD_PRELOAD.
  void preload(InterpositionPtr wrapper);
  [[nodiscard]] const std::vector<const simlib::SharedLibrary*>& libraries() const noexcept {
    return libraries_;
  }
  [[nodiscard]] const std::vector<InterpositionPtr>& preloads() const noexcept {
    return preloads_;
  }

  // First library defining `symbol`, or nullptr.
  [[nodiscard]] const simlib::Symbol* resolve(const std::string& symbol) const;

  // --- calling ---
  // Raw call: interposition chain runs; faults propagate as exceptions.
  // This is what application code uses, so that a crash inside any call
  // unwinds the whole simulated program.
  simlib::SimValue call(const std::string& symbol, std::vector<simlib::SimValue> args);

  // Supervised call: like call(), but faults are reaped into a CallOutcome.
  CallOutcome supervised_call(const std::string& symbol, std::vector<simlib::SimValue> args);

  // Runs a whole simulated program under supervision. The program's int
  // return becomes kExit with that status; faults are reaped as above.
  CallOutcome run(const std::function<int(Process&)>& program);

  // --- convenience for app/test code (not part of the libc surface) ---
  // Heap-allocates and fills a NUL-terminated string; throws on OOM.
  mem::Addr alloc_cstring(const std::string& text);
  // Maps a dedicated scratch region (exact size, fault-bounded on both
  // ends thanks to guard gaps) — the injector's precise test buffers.
  mem::Addr scratch(std::uint64_t size, mem::Perm perm = mem::Perm::kReadWrite,
                    const std::string& label = "scratch");
  // Read-only string (interned into rodata).
  mem::Addr rodata_cstring(const std::string& text);

  // Registers an application callback (e.g. a qsort comparator): allocates
  // a code address for `name` and binds `fn` to it in the C runtime's
  // callback table. The returned address is what the app passes as a
  // function-pointer argument.
  mem::Addr register_callback(const std::string& name, simlib::CFunction fn);

  // Number of calls dispatched through this process (all symbols).
  [[nodiscard]] std::uint64_t calls_dispatched() const noexcept { return calls_dispatched_; }

  // --- snapshot / restore ---
  // Captures machine + C-runtime state after the testbed is fully loaded;
  // restore() rewinds both, giving the fault injector a fresh process
  // without reconstructing and reloading it. The machine half is a
  // refcounted COW image and the C-runtime half is shared immutable state,
  // so a Snapshot is cheap to copy, any number may coexist, and one frozen
  // Snapshot can reset many processes (linker::TestbedState forks shells
  // from exactly such a shared pristine snapshot). The loaded-library and
  // preload lists are NOT part of the snapshot: a restore requires the same
  // load set that was present at snapshot time (checked).
  struct Snapshot {
    mem::Machine::Snapshot machine;
    std::shared_ptr<const simlib::LibState> state;
    std::uint64_t calls_dispatched = 0;
    std::size_t library_count = 0;
    std::size_t preload_count = 0;
  };
  [[nodiscard]] Snapshot snapshot();
  // Throws std::logic_error when the load set changed since the snapshot.
  void restore(const Snapshot& snap);

 private:
  // Per-symbol dispatch plan: which preloaded wrappers interpose on the
  // symbol (with each wrapper's pre-resolved handle) and the base library
  // function. Built lazily on first call and cached, so the hot path walks
  // a flat array instead of querying every layer's wraps() per call.
  // Invalidated whenever the load set changes (load_library / preload /
  // restore).
  struct DispatchStep {
    Interposition* wrapper = nullptr;
    const void* handle = nullptr;
  };
  struct DispatchPlan {
    std::vector<DispatchStep> steps;
    const simlib::Symbol* base = nullptr;
  };
  const DispatchPlan& plan_for(const std::string& symbol);
  simlib::SimValue run_plan(const DispatchPlan& plan, std::size_t layer,
                            const std::string& symbol, simlib::CallContext& ctx);

  std::string name_;
  mem::Machine machine_;
  simlib::LibState state_;
  std::vector<const simlib::SharedLibrary*> libraries_;
  std::vector<InterpositionPtr> preloads_;
  std::unordered_map<std::string, DispatchPlan> plans_;
  std::uint64_t calls_dispatched_ = 0;
  simlib::CallObserver* observer_ = nullptr;
};

}  // namespace healers::linker
