// Heap-canary micro-generator — the security wrapper's heap-smashing
// defence (paper §3.4, technique from [3] "Detecting heap smashing attacks
// through fault containment wrappers").
//
// The wrapper cannot change the C library, so it protects from the outside:
//   * malloc/calloc/realloc are forwarded with 8 extra bytes; the wrapper
//     plants a canary (secret ^ address) right after the user area and
//     records the allocation in its own table;
//   * free/realloc verify the canary BEFORE forwarding — a clobbered canary
//     means an overflow already corrupted the neighbouring chunk header, so
//     the wrapper aborts the process before free() can execute the unsafe
//     unlink (the exploit's arbitrary-write primitive);
//   * every other wrapped call re-verifies the canary of any tracked
//     allocation its pointer arguments touch, catching the smash at the
//     first wrapped call after it happens.
#include <map>

#include "gen/microgen.hpp"
#include "gen/stats.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/libstate.hpp"
#include "simlib/observer.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

namespace {

using simlib::CallContext;
using simlib::SimValue;

constexpr std::uint64_t kCanarySize = 8;

}  // namespace

struct HeapGuardState {
  std::uint64_t secret = 0;
  std::map<mem::Addr, std::uint64_t> allocations;  // user addr -> requested size

  [[nodiscard]] std::uint64_t canary_for(mem::Addr user) const noexcept {
    return secret ^ (user * 0x9e3779b97f4a7c15ULL);
  }

  void plant(CallContext& ctx, mem::Addr user, std::uint64_t size) {
    ctx.machine.mem().store64(user + size, canary_for(user));
    allocations[user] = size;
  }

  // Verifies the canary of the allocation starting at `user`; throws
  // SimAbort on mismatch — the wrapper terminating the attacked process.
  void verify(CallContext& ctx, mem::Addr user, const std::string& at) const {
    auto it = allocations.find(user);
    if (it == allocations.end()) return;
    const std::uint64_t stored = ctx.machine.mem().load64(user + it->second);
    if (stored != canary_for(user)) {
      const std::string detail = "canary clobbered for allocation of " +
                                 std::to_string(it->second) + " bytes";
      if (ctx.state.observer != nullptr) {
        ctx.state.observer->on_detection(ctx, simlib::DetectionKind::kHeapSmash, at, detail,
                                         user);
      }
      throw SimAbort("security wrapper: heap smashing detected at " + at +
                     " (canary clobbered for allocation 0x" + std::to_string(user) + ")");
    }
  }

  // The tracked allocation containing `p`, if any.
  [[nodiscard]] std::optional<mem::Addr> owner_of(mem::Addr p) const {
    auto it = allocations.upper_bound(p);
    if (it == allocations.begin()) return std::nullopt;
    --it;
    if (p < it->first + it->second + kCanarySize) return it->first;
    return std::nullopt;
  }
};

namespace {

class HeapGuardHook : public gen::RuntimeHook {
 public:
  // The allocator role is fixed per wrapped symbol, so classify once at
  // composition instead of string-comparing on every call.
  enum class Fn : std::uint8_t { kMalloc, kCalloc, kRealloc, kFree, kOther };

  HeapGuardHook(std::shared_ptr<HeapGuardState> state, std::string symbol)
      : state_(std::move(state)), symbol_(std::move(symbol)) {
    if (symbol_ == "malloc") fn_ = Fn::kMalloc;
    else if (symbol_ == "calloc") fn_ = Fn::kCalloc;
    else if (symbol_ == "realloc") fn_ = Fn::kRealloc;
    else if (symbol_ == "free") fn_ = Fn::kFree;
  }

  const SimValue* prefix(CallContext& ctx) override {
    if (fn_ == Fn::kMalloc) {
      requested_ = ctx.args.at(0).as_uint();
      if (requested_ + kCanarySize < requested_) {  // size overflow
        ctx.machine.set_err(simlib::kENOMEM);
        return &contained_;
      }
      ctx.args[0] = SimValue::integer(static_cast<std::int64_t>(requested_ + kCanarySize));
      return nullptr;
    }
    if (fn_ == Fn::kCalloc) {
      const std::uint64_t nmemb = ctx.args.at(0).as_uint();
      const std::uint64_t size = ctx.args.at(1).as_uint();
      // Fix the historical multiplication-overflow bug from the outside.
      if (size != 0 && nmemb > ~std::uint64_t{0} / size) {
        ctx.machine.set_err(simlib::kENOMEM);
        return &contained_;
      }
      requested_ = nmemb * size;
      if (requested_ + kCanarySize < requested_) {
        ctx.machine.set_err(simlib::kENOMEM);
        return &contained_;
      }
      ctx.args[0] = SimValue::integer(1);
      ctx.args[1] = SimValue::integer(static_cast<std::int64_t>(requested_ + kCanarySize));
      return nullptr;
    }
    if (fn_ == Fn::kRealloc) {
      const mem::Addr old = ctx.args.at(0).as_ptr();
      if (old != 0) state_->verify(ctx, old, "realloc");
      requested_ = ctx.args.at(1).as_uint();
      if (requested_ != 0) {
        if (requested_ + kCanarySize < requested_) {
          ctx.machine.set_err(simlib::kENOMEM);
          return &contained_;
        }
        ctx.args[1] = SimValue::integer(static_cast<std::int64_t>(requested_ + kCanarySize));
      }
      return nullptr;
    }
    if (fn_ == Fn::kFree) {
      const mem::Addr p = ctx.args.at(0).as_ptr();
      if (p != 0) state_->verify(ctx, p, "free");
      return nullptr;
    }
    return nullptr;
  }

  void postfix(CallContext& ctx, SimValue& ret) override {
    if (fn_ == Fn::kMalloc || fn_ == Fn::kCalloc) {
      if (ret.as_ptr() != 0) state_->plant(ctx, ret.as_ptr(), requested_);
      return;
    }
    if (fn_ == Fn::kRealloc) {
      const mem::Addr old = ctx.args.at(0).as_ptr();
      if (requested_ == 0) {  // realloc(p, 0) freed
        if (old != 0) state_->allocations.erase(old);
        return;
      }
      if (ret.as_ptr() != 0) {
        if (old != 0) state_->allocations.erase(old);
        state_->plant(ctx, ret.as_ptr(), requested_);
      }
      return;
    }
    if (fn_ == Fn::kFree) {
      const mem::Addr p = ctx.args.at(0).as_ptr();
      if (p != 0) state_->allocations.erase(p);
      return;
    }
    // Generic functions: re-verify the canary of every tracked allocation a
    // pointer argument touches — the first wrapped call after a smash trips
    // this, stopping the attack before any free()/unlink runs.
    for (const SimValue& arg : ctx.args) {
      if (arg.kind() != SimValue::Kind::kPtr) continue;
      if (const auto owner = state_->owner_of(arg.as_ptr())) {
        state_->verify(ctx, *owner, symbol_);
      }
    }
  }

 private:
  std::shared_ptr<HeapGuardState> state_;
  std::string symbol_;
  Fn fn_ = Fn::kOther;
  SimValue contained_ = SimValue::null();  // storage behind a containment return
  std::uint64_t requested_ = 0;
};

class HeapCanaryGen : public gen::MicroGenerator {
 public:
  explicit HeapCanaryGen(std::uint64_t secret) : state_(std::make_shared<HeapGuardState>()) {
    state_->secret = secret;
  }

  [[nodiscard]] std::string name() const override { return "heap canary"; }

  [[nodiscard]] std::string prefix_code(const gen::GenContext& ctx) const override {
    const std::string& fn = ctx.proto.name;
    if (fn == "malloc") return "  a1 += CANARY_SIZE;\n";
    if (fn == "calloc") {
      return "  if (a2 != 0 && a1 > SIZE_MAX / a2) { errno = ENOMEM; return NULL; }\n"
             "  a1 = a1 * a2 + CANARY_SIZE; a2 = 1;\n";
    }
    if (fn == "realloc") {
      return "  healers_canary_verify(a1);\n  if (a2 != 0) a2 += CANARY_SIZE;\n";
    }
    if (fn == "free") return "  healers_canary_verify(a1);\n";
    return {};
  }

  [[nodiscard]] std::string postfix_code(const gen::GenContext& ctx) const override {
    const std::string& fn = ctx.proto.name;
    if (fn == "malloc" || fn == "calloc" || fn == "realloc") {
      return "  if (ret != NULL) healers_canary_plant(ret);\n";
    }
    if (fn == "free") return "  healers_canary_untrack(a1);\n";
    std::string out;
    for (std::size_t i = 0; i < ctx.proto.params.size(); ++i) {
      if (!ctx.proto.params[i].type.is_pointer()) continue;
      out += "  healers_canary_check_touched(a" + std::to_string(i + 1) + ");\n";
    }
    return out;
  }

  [[nodiscard]] gen::RuntimeHookPtr make_hook(const gen::GenContext& ctx,
                                              gen::WrapperStats&) const override {
    return std::make_unique<HeapGuardHook>(state_, ctx.proto.name);
  }

 private:
  std::shared_ptr<HeapGuardState> state_;
};

}  // namespace

gen::MicroGeneratorPtr heap_canary_gen(std::uint64_t secret) {
  return std::make_shared<HeapCanaryGen>(secret);
}

}  // namespace healers::wrappers
