// Stock wrapper factories: the wrapper types of Fig 1 plus the repair
// family, each a particular composition of micro-generators (paper §2.3:
// "the micro-generators can be combined in a variety of ways to generate
// new wrapper types").
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

std::vector<gen::MicroGeneratorPtr> fig3_generators() {
  // Exactly the six micro-generators of the paper's Fig 3, in its order:
  // prototype, function exectime, collect errors, func error, call counter,
  // caller.
  return {gen::prototype_gen(),      gen::exectime_gen(),     gen::collect_errors_gen(),
          gen::func_errors_gen(),    gen::call_counter_gen(), gen::caller_gen()};
}

Result<std::shared_ptr<gen::ComposedWrapper>> make_robustness_wrapper(
    const simlib::SharedLibrary& lib, const injector::CampaignResult& campaign,
    CheckSource source) {
  gen::WrapperBuilder builder("robustness-wrapper");
  builder.add(gen::prototype_gen())
      .add(arg_check_gen(source))
      .add(gen::call_counter_gen())
      .add(gen::caller_gen());
  return builder.build(lib, &campaign);
}

Result<std::shared_ptr<gen::ComposedWrapper>> make_security_wrapper(
    const simlib::SharedLibrary& lib) {
  gen::WrapperBuilder builder("security-wrapper");
  builder.add(gen::prototype_gen())
      .add(heap_canary_gen())
      .add(stack_guard_gen())
      .add(gen::caller_gen());
  return builder.build(lib);
}

Result<std::shared_ptr<gen::ComposedWrapper>> make_repair_wrapper(
    const simlib::SharedLibrary& lib, const injector::CampaignResult& campaign) {
  auto policy = gen::derive_repair_policy(campaign, lib);
  if (!policy.ok()) return policy.error();
  gen::WrapperBuilder builder("repair-wrapper");
  builder.add(gen::prototype_gen())
      .add(repair_gen(std::make_shared<const gen::RepairPolicy>(std::move(policy).take())))
      .add(gen::call_counter_gen())
      .add(gen::caller_gen());
  return builder.build(lib, &campaign);
}

Result<std::shared_ptr<gen::ComposedWrapper>> make_profiling_wrapper(
    const simlib::SharedLibrary& lib, bool include_trace) {
  gen::WrapperBuilder builder("profiling-wrapper");
  builder.add(gen::prototype_gen())
      .add(gen::exectime_gen())
      .add(gen::collect_errors_gen())
      .add(gen::func_errors_gen())
      .add(gen::call_counter_gen());
  if (include_trace) builder.add(gen::log_call_gen());
  builder.add(gen::caller_gen());
  return builder.build(lib);
}

}  // namespace healers::wrappers
