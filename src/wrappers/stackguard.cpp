// Stack-guard micro-generator — the libsafe-style stack-smashing defence
// (paper §2.1 cites [1] "Transparent run-time defense against stack
// smashing attacks"; demo §3.4 shows the attack class).
//
// Two layers, both from outside the library:
//   * prefix bound check: when a wrapped call writes through a pointer into
//     a stack frame and the man page gives the write size, the wrapper
//     computes the room between the destination and the frame's saved
//     return address; a write that would reach the return address is a
//     smashing attempt and the process is terminated (libsafe semantics);
//   * postfix integrity sweep: after every wrapped call, every live frame's
//     return-address slot is compared against the value recorded at frame
//     push — catching smashes the prefix could not predict (unterminated
//     sources, formatted output).
#include "gen/microgen.hpp"
#include "gen/stats.hpp"
#include "parser/manpage.hpp"
#include "simlib/libstate.hpp"
#include "simlib/observer.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

namespace {

using simlib::CallContext;
using simlib::SimValue;

constexpr std::uint64_t kScanCap = 1 << 20;

class StackGuardHook : public gen::RuntimeHook {
 public:
  explicit StackGuardHook(const gen::GenContext& ctx) : symbol_(ctx.proto.name) {
    if (ctx.page == nullptr) return;
    for (std::size_t i = 0; i < ctx.proto.params.size(); ++i) {
      const parser::ArgAnnotation* note = ctx.page->arg(static_cast<int>(i) + 1);
      if (note != nullptr && note->write_size.has_value()) {
        write_args_.emplace_back(i, *note->write_size);
      }
    }
  }

  const SimValue* prefix(CallContext& ctx) override {
    const mem::Stack& stack = ctx.machine.stack();
    for (const auto& [index, size_expr] : write_args_) {
      const mem::Addr dest = ctx.args.at(index).as_ptr();
      const mem::Frame* frame = stack.frame_of(dest);
      if (frame == nullptr || dest >= frame->ret_slot) continue;
      parser::SizeExpr::EvalEnv env{ctx.machine.mem(), {}, kScanCap, {}, {}};
      for (const SimValue& v : ctx.args) env.args.push_back(v.as_uint());
      const auto needed = size_expr.eval(env);
      if (!needed.has_value()) continue;  // postfix sweep still protects
      const std::uint64_t room = frame->ret_slot - dest;
      if (*needed > room) {
        if (ctx.state.observer != nullptr) {
          ctx.state.observer->on_detection(
              ctx, simlib::DetectionKind::kStackSmash, symbol_,
              "write of " + std::to_string(*needed) + " bytes into frame of " +
                  frame->function + " with " + std::to_string(room) +
                  " bytes before the return address",
              dest);
        }
        throw SimAbort("security wrapper: stack smashing attempt blocked in " + symbol_ +
                       " (write of " + std::to_string(*needed) + " bytes into frame of " +
                       frame->function + " with " + std::to_string(room) +
                       " bytes before the return address)");
      }
    }
    return nullptr;
  }

  void postfix(CallContext& ctx, SimValue&) override {
    for (const mem::Frame& frame : ctx.machine.stack().frames()) {
      if (ctx.machine.mem().load64(frame.ret_slot) != frame.saved_ret) {
        if (ctx.state.observer != nullptr) {
          ctx.state.observer->on_detection(
              ctx, simlib::DetectionKind::kStackSmash, symbol_,
              "return address of " + frame.function + " overwritten", frame.ret_slot);
        }
        throw SimAbort("security wrapper: stack smashing detected after " + symbol_ +
                       " (return address of " + frame.function + " overwritten)");
      }
    }
  }

 private:
  std::string symbol_;
  std::vector<std::pair<std::size_t, parser::SizeExpr>> write_args_;
};

class StackGuardGen : public gen::MicroGenerator {
 public:
  [[nodiscard]] std::string name() const override { return "stack guard"; }

  [[nodiscard]] std::string prefix_code(const gen::GenContext& ctx) const override {
    std::string out;
    if (ctx.page == nullptr) return out;
    for (std::size_t i = 0; i < ctx.proto.params.size(); ++i) {
      const parser::ArgAnnotation* note = ctx.page->arg(static_cast<int>(i) + 1);
      if (note == nullptr || !note->write_size.has_value()) continue;
      out += "  healers_stack_bound_check(a" + std::to_string(i + 1) + ", " +
             note->write_size->to_string() + ");\n";
    }
    return out;
  }

  [[nodiscard]] std::string postfix_code(const gen::GenContext&) const override {
    return "  healers_stack_integrity_sweep();\n";
  }

  [[nodiscard]] gen::RuntimeHookPtr make_hook(const gen::GenContext& ctx,
                                              gen::WrapperStats&) const override {
    return std::make_unique<StackGuardHook>(ctx);
  }
};

}  // namespace

gen::MicroGeneratorPtr stack_guard_gen() { return std::make_shared<StackGuardGen>(); }

}  // namespace healers::wrappers
