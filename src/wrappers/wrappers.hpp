// The stock HEALERS wrapper families (paper Fig 1):
//
//   * robustness wrapper — enforces the robust API derived by fault
//     injection (plus man-page size expressions): invalid arguments are
//     contained (errno = EINVAL, error return) instead of crashing.
//   * security wrapper — heap-smashing protection via wrapper-planted
//     canaries [3] and libsafe-style stack bounds checks [1]: detected
//     attacks terminate the process before control flow can be hijacked.
//   * profiling wrapper — the Fig 3 feature set (call counts, errno
//     histograms, exec time) plus an optional call trace; its stats feed
//     the XML documents of demo §3.3 / Fig 5.
//   * repair wrapper — rewrites unsafe calls instead of rejecting or merely
//     detecting them: failure-oblivious truncation of out-of-bounds writes
//     and bounded substitution of strcpy-class calls, per a policy derived
//     from the robust-API campaign (docs/repair.md).
//
// Each factory returns a freshly built ComposedWrapper. Security wrappers
// hold per-process allocation state: build ONE wrapper per process and do
// not share it (the returned guard state maps simulated addresses).
#pragma once

#include <memory>
#include <optional>

#include "gen/composer.hpp"
#include "gen/repair_policy.hpp"
#include "injector/robust_spec.hpp"
#include "simlib/library.hpp"
#include "support/result.hpp"

namespace healers::wrappers {

// --- robustness ---
// Which knowledge source the arg-check micro-generator compiles its checks
// from. The A2 ablation bench compares the three: the paper's position is
// that automation (derived specs) carries most of the weight, with the
// man-page size expressions adding the precise buffer-length checks.
enum class CheckSource : std::uint8_t {
  kDerivedAndAnnotations,  // the shipped robustness wrapper (default)
  kDerivedOnly,            // fault-injection results alone
  kAnnotationsOnly,        // man-page annotations alone
};

// arg-check micro-generator: the fault-containment checks. Needs the
// campaign's robust specs (GenContext.spec) and/or man-page annotations,
// per `source`.
[[nodiscard]] gen::MicroGeneratorPtr arg_check_gen(
    CheckSource source = CheckSource::kDerivedAndAnnotations);

[[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> make_robustness_wrapper(
    const simlib::SharedLibrary& lib, const injector::CampaignResult& campaign,
    CheckSource source = CheckSource::kDerivedAndAnnotations);

// --- security ---
struct HeapGuardState;  // wrapper-private allocation table + canary secret

// Heap-canary micro-generator. All hooks made from one instance share one
// HeapGuardState (one wrapper = one protected process).
[[nodiscard]] gen::MicroGeneratorPtr heap_canary_gen(std::uint64_t secret = 0x1dea5eedcafef00dULL);

// Libsafe-style stack guard: bounds string writes into stack frames and
// verifies every live return address after each wrapped call.
[[nodiscard]] gen::MicroGeneratorPtr stack_guard_gen();

[[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> make_security_wrapper(
    const simlib::SharedLibrary& lib);

// --- testing (error injection, the wrapper family of [5]) ---
// With probability `rate`, a call to a function whose man page documents
// failure errnos returns that error instead of executing — exercising the
// application's error-handling paths. Deterministic per seed.
[[nodiscard]] gen::MicroGeneratorPtr error_injection_gen(double rate, std::uint64_t seed = 1);

[[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> make_testing_wrapper(
    const simlib::SharedLibrary& lib, double rate, std::uint64_t seed = 1);

// --- profiling ---
// include_trace adds the log-call micro-generator (per-call records).
[[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> make_profiling_wrapper(
    const simlib::SharedLibrary& lib, bool include_trace = false);

// The Fig 3 generator list (prototype, function exectime, collect errors,
// func error, call counter, caller) — exposed so tests and benches can
// reproduce the figure exactly.
[[nodiscard]] std::vector<gen::MicroGeneratorPtr> fig3_generators();

// --- repair (ISSUE 9: failure-oblivious execution + safe substitution) ---
// Repair micro-generator: applies a campaign-derived RepairPolicy
// (gen/repair_policy.hpp) at call time — truncating out-of-bounds writes to
// the destination's known extent, substituting bounded copies for
// strcpy-class calls, and manufacturing safe returns for invalid input
// strings. Keeps its own allocation-extent table (no canaries, no argument
// resizing): with nothing to repair the wrapped process behaves
// bit-identically to an unwrapped one. One instance per protected process.
[[nodiscard]] gen::MicroGeneratorPtr repair_gen(std::shared_ptr<const gen::RepairPolicy> policy);

// Derives the repair policy from `campaign` and composes prototype + repair
// + call counter + caller.
[[nodiscard]] Result<std::shared_ptr<gen::ComposedWrapper>> make_repair_wrapper(
    const simlib::SharedLibrary& lib, const injector::CampaignResult& campaign);

namespace detail {
// Safe printf-length pre-pass shared by the arg-check and repair wrappers
// (defined in argcheck.cpp).
[[nodiscard]] std::optional<std::uint64_t> safe_formatted_length(simlib::CallContext& ctx,
                                                                 int fmt_index_1based);
}  // namespace detail

}  // namespace healers::wrappers
