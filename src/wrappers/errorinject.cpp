// Error-injection micro-generator — the *testing* wrapper family of the
// generator architecture paper [5]: instead of containing faults, it
// INJECTS them, returning realistic error outcomes (the errnos the man page
// documents) for a configurable fraction of calls, so an application's
// error-handling paths can be exercised without touching its source.
//
// Deterministic: a seeded SplitMix64 stream decides which calls fail, so a
// failing test run can be replayed exactly.
#include <cmath>

#include "gen/microgen.hpp"
#include "gen/stats.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/libstate.hpp"
#include "simlib/observer.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

namespace {

using simlib::CallContext;
using simlib::SimValue;

int errno_value_from_name(const std::string& name) {
  for (int err = 1; err < simlib::kMaxErrno; ++err) {
    if (simlib::errno_name(err) == name) return err;
  }
  return simlib::kEIO;  // unknown names degrade to a generic I/O error
}

SimValue injected_error_value(const parser::FunctionProto& proto) {
  if (proto.return_type.is_pointer()) return SimValue::null();
  switch (proto.return_type.classify()) {
    case parser::TypeClass::kFloating:
      return SimValue::fp(std::nan(""));
    case parser::TypeClass::kVoid:
      return SimValue::integer(0);
    default:
      return SimValue::integer(-1);
  }
}

class ErrorInjectHook : public gen::RuntimeHook {
 public:
  ErrorInjectHook(gen::WrapperStats& stats, const gen::GenContext& ctx,
                  std::shared_ptr<Rng> rng, double rate)
      : stats_(stats),
        fid_(ctx.function_id),
        rng_(std::move(rng)),
        rate_(rate),
        error_(injected_error_value(ctx.proto)) {
    if (ctx.page != nullptr && !ctx.page->errnos.empty()) {
      errno_to_set_ = errno_value_from_name(ctx.page->errnos.front());
    }
  }

  const SimValue* prefix(CallContext& ctx) override {
    // Only functions with a documented failure mode are injectable: an
    // error return from a function that cannot fail would be a lie the
    // application could never have seen in production.
    if (errno_to_set_ == 0) return nullptr;
    if (!rng_->chance(rate_)) return nullptr;
    ctx.machine.set_err(errno_to_set_);
    gen::FunctionStats& fstats = stats_.function(fid_);
    ++fstats.contained;  // reuse the counter: injected calls
    if (ctx.state.observer != nullptr) {
      ctx.state.observer->on_detection(
          ctx, simlib::DetectionKind::kErrorInject, fstats.symbol,
          "injected " + simlib::errno_name(errno_to_set_) + " (rate " +
              std::to_string(rate_) + ")",
          0);
    }
    return &error_;
  }

 private:
  gen::WrapperStats& stats_;
  int fid_;
  std::shared_ptr<Rng> rng_;
  double rate_;
  SimValue error_;
  int errno_to_set_ = 0;
};

class ErrorInjectGen : public gen::MicroGenerator {
 public:
  ErrorInjectGen(double rate, std::uint64_t seed)
      : rate_(rate), rng_(std::make_shared<Rng>(seed)) {}

  [[nodiscard]] std::string name() const override { return "error injection"; }

  [[nodiscard]] std::string prefix_code(const gen::GenContext& ctx) const override {
    if (ctx.page == nullptr || ctx.page->errnos.empty()) return {};
    const std::string err =
        ctx.proto.return_type.is_pointer()
            ? "NULL"
            : (ctx.proto.return_type.classify() == parser::TypeClass::kFloating ? "NAN" : "-1");
    return "  if (healers_fault_roll(" + std::to_string(rate_) + ")) { errno = " +
           ctx.page->errnos.front() + "; return " + err + "; }\n";
  }
  [[nodiscard]] std::string postfix_code(const gen::GenContext&) const override { return {}; }

  [[nodiscard]] gen::RuntimeHookPtr make_hook(const gen::GenContext& ctx,
                                              gen::WrapperStats& stats) const override {
    return std::make_unique<ErrorInjectHook>(stats, ctx, rng_, rate_);
  }

 private:
  double rate_;
  std::shared_ptr<Rng> rng_;  // one stream per wrapper instance
};

}  // namespace

gen::MicroGeneratorPtr error_injection_gen(double rate, std::uint64_t seed) {
  return std::make_shared<ErrorInjectGen>(rate, seed);
}

Result<std::shared_ptr<gen::ComposedWrapper>> make_testing_wrapper(
    const simlib::SharedLibrary& lib, double rate, std::uint64_t seed) {
  gen::WrapperBuilder builder("testing-wrapper");
  builder.add(gen::prototype_gen())
      .add(error_injection_gen(rate, seed))
      .add(gen::call_counter_gen())
      .add(gen::caller_gen());
  return builder.build(lib);
}

}  // namespace healers::wrappers
