// The arg-check micro-generator: the robustness wrapper's core.
//
// For every argument it enforces the union of (a) the DerivedChecks the
// fault injector produced and (b) the man page's size expressions and
// domain annotations. A failed check CONTAINS the fault: the base call is
// skipped, errno is set to EINVAL, and a type-appropriate error value is
// returned (NULL / -1 / NaN) — "prevents a large class of software
// failures (crashes, hangs, aborts)" (paper §2.1).
#include <algorithm>
#include <cmath>
#include <cstring>

#include "gen/microgen.hpp"
#include "gen/stats.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/libstate.hpp"
#include "simlib/observer.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

namespace {

using injector::DerivedChecks;
using parser::ArgAnnotation;
using parser::SizeExpr;
using simlib::CallContext;
using simlib::SimValue;

constexpr std::uint64_t kScanCap = 1 << 20;

// Type-appropriate error value for a contained call.
SimValue error_value(const parser::FunctionProto& proto) {
  if (proto.return_type.is_pointer()) return SimValue::null();
  switch (proto.return_type.classify()) {
    case parser::TypeClass::kFloating:
      return SimValue::fp(std::nan(""));
    case parser::TypeClass::kVoid:
      return SimValue::integer(0);
    default:
      return SimValue::integer(-1);
  }
}

// One argument's compiled checks: the union of derived and annotated
// preconditions, in the order the generated C would test them.
struct CompiledArg {
  int index_0based = 0;
  bool allownull = false;
  bool cursor = false;  // NULL valid only once the strtok cursor is set
  bool nonnull = false;
  bool mapped = false;
  bool writable = false;
  bool terminated = false;
  bool file = false;
  bool heapptr = false;
  bool funcptr = false;
  std::optional<int> saveptr_index;  // NULL valid only when *arg<k> is a string
  std::optional<std::pair<std::int64_t, std::int64_t>> range;
  std::optional<SizeExpr> write_size;
  std::optional<SizeExpr> read_size;
  bool is_pointer = false;

  [[nodiscard]] bool any() const noexcept {
    return nonnull || cursor || mapped || writable || terminated || file || heapptr ||
           funcptr || saveptr_index.has_value() || range.has_value() ||
           write_size.has_value() || read_size.has_value();
  }
};

std::vector<CompiledArg> compile_checks(const gen::GenContext& ctx, CheckSource source) {
  const bool use_notes = source != CheckSource::kDerivedOnly;
  const bool use_spec = source != CheckSource::kAnnotationsOnly;
  std::vector<CompiledArg> out;
  for (std::size_t i = 0; i < ctx.proto.params.size(); ++i) {
    CompiledArg arg;
    arg.index_0based = static_cast<int>(i);
    arg.is_pointer = ctx.proto.params[i].type.is_pointer();

    const ArgAnnotation* note =
        use_notes && ctx.page != nullptr ? ctx.page->arg(static_cast<int>(i) + 1) : nullptr;
    if (note != nullptr) {
      arg.allownull = note->allownull;
      arg.cursor = note->cursor;
      arg.nonnull = note->nonnull && !note->allownull;
      arg.terminated = note->cstring;
      arg.file = note->is_file;
      arg.heapptr = note->is_heapptr;
      arg.funcptr = note->is_funcptr;
      arg.saveptr_index = note->saveptr_index;
      arg.range = note->range;
      arg.write_size = note->write_size;
      arg.read_size = note->read_size;
      if (arg.terminated || arg.write_size || arg.read_size) arg.mapped = true;
      if (arg.write_size) arg.writable = true;
    }
    if (use_spec && ctx.spec != nullptr) {
      for (const injector::ArgSpec& spec_arg : ctx.spec->args) {
        if (spec_arg.index != static_cast<int>(i) + 1) continue;
        const DerivedChecks& derived = spec_arg.checks;
        arg.nonnull = arg.nonnull || (derived.require_nonnull && !arg.allownull);
        arg.mapped = arg.mapped || derived.require_mapped;
        arg.writable = arg.writable || derived.require_writable;
        arg.terminated = arg.terminated || derived.require_terminated;
        arg.file = arg.file || derived.require_file;
        arg.heapptr = arg.heapptr || derived.require_heap_pointer;
        arg.funcptr = arg.funcptr || derived.require_callback;
        if (!arg.range && derived.range) arg.range = derived.range;
      }
    }
    out.push_back(std::move(arg));
  }
  return out;
}

}  // namespace

namespace detail {

// Safe printf-length pre-pass (libsafe carried its own format parser for
// exactly this): computes the number of bytes the library's formatter will
// produce for the format string at argument `fmt_index_1based`, using only
// non-faulting reads. Mirrors simlib's format_into subset. nullopt when the
// format or a %s argument cannot be safely measured (the caller then falls
// back to the conservative policy). Shared with the repair wrapper
// (declared in wrappers.hpp).
std::optional<std::uint64_t> safe_formatted_length(CallContext& ctx, int fmt_index_1based) {
  const mem::AddressSpace& space = ctx.machine.mem();
  const mem::Addr fmt = ctx.args.at(static_cast<std::size_t>(fmt_index_1based) - 1).as_ptr();
  std::size_t vararg = static_cast<std::size_t>(fmt_index_1based);  // varargs follow the format
  std::uint64_t length = 0;
  mem::Addr p = fmt;
  for (;;) {
    // Literal run: count bytes up to the next '%' or terminator per readable
    // span — the wrapper's own non-faulting (and untimed) pre-pass.
    char c = '\0';
    for (;;) {
      const std::uint64_t extent = space.span_extent(p, mem::Perm::kRead);
      if (extent == 0) return std::nullopt;
      const std::byte* sp = space.span(p, extent, mem::Perm::kRead);
      const void* h0 = std::memchr(sp, 0, extent);
      const void* hp = std::memchr(sp, '%', extent);
      const std::uint64_t k0 =
          h0 != nullptr ? static_cast<std::uint64_t>(static_cast<const std::byte*>(h0) - sp)
                        : extent;
      const std::uint64_t kp =
          hp != nullptr ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hp) - sp)
                        : extent;
      const std::uint64_t k = std::min(k0, kp);
      length += k;
      p += k;
      if (k < extent) {
        c = static_cast<char>(sp[k]);
        break;
      }
    }
    if (c == '\0') return length;
    ++p;
    if (!space.accessible(p, 1, mem::Perm::kRead)) return std::nullopt;
    char conv = static_cast<char>(space.load8(p));
    if (conv == '0') {
      ++p;
      if (!space.accessible(p, 1, mem::Perm::kRead)) return std::nullopt;
      conv = static_cast<char>(space.load8(p));
    }
    int width = 0;
    while (conv >= '0' && conv <= '9') {
      width = width * 10 + (conv - '0');
      ++p;
      if (!space.accessible(p, 1, mem::Perm::kRead)) return std::nullopt;
      conv = static_cast<char>(space.load8(p));
    }
    while (conv == 'l') {
      ++p;
      if (!space.accessible(p, 1, mem::Perm::kRead)) return std::nullopt;
      conv = static_cast<char>(space.load8(p));
    }
    std::uint64_t piece = 0;
    switch (conv) {
      case '%':
        piece = 1;
        break;
      case 'd':
      case 'i':
        if (vararg >= ctx.args.size()) return std::nullopt;
        piece = std::to_string(ctx.args[vararg++].as_int()).size();
        break;
      case 'u':
        if (vararg >= ctx.args.size()) return std::nullopt;
        piece = std::to_string(ctx.args[vararg++].as_uint()).size();
        break;
      case 'x': {
        if (vararg >= ctx.args.size()) return std::nullopt;
        std::uint64_t v = ctx.args[vararg++].as_uint();
        piece = 1;
        while (v > 0xF) {
          v >>= 4;
          ++piece;
        }
        break;
      }
      case 'c':
        if (vararg >= ctx.args.size()) return std::nullopt;
        ++vararg;
        piece = 1;
        break;
      case 'f':
        if (vararg >= ctx.args.size()) return std::nullopt;
        piece = std::to_string(ctx.args[vararg++].as_double()).size();
        break;
      case 's': {
        if (vararg >= ctx.args.size()) return std::nullopt;
        const auto len = parser::safe_cstrlen(space, ctx.args[vararg++].as_ptr(), kScanCap);
        if (!len.has_value()) return std::nullopt;
        piece = *len;
        break;
      }
      default:
        piece = 2;  // emitted verbatim: '%' + conv
    }
    length += std::max<std::uint64_t>(piece, static_cast<std::uint64_t>(width));
    ++p;  // past the conversion character
  }
}

}  // namespace detail

namespace {

// Runtime validation of one argument; returns false when the call must be
// contained.
bool check_arg(const CompiledArg& arg, CallContext& ctx) {
  const mem::AddressSpace& space = ctx.machine.mem();
  if (!arg.is_pointer) {
    if (arg.range.has_value()) {
      const std::int64_t v = ctx.args.at(static_cast<std::size_t>(arg.index_0based)).as_int();
      if (v < arg.range->first || v > arg.range->second) return false;
    }
    return true;
  }

  const mem::Addr p = ctx.args.at(static_cast<std::size_t>(arg.index_0based)).as_ptr();
  if (p == 0) {
    // Stateful exception (strtok): NULL is valid only once the runtime's
    // hidden cursor exists; a first-call NULL would chase address 0.
    if (arg.cursor && ctx.state.strtok_cursor == 0) return false;
    // strtok_r-style: NULL is valid only when the caller's saveptr slot
    // holds a pointer to a readable string (i.e. a prior call primed it).
    if (arg.saveptr_index.has_value()) {
      const mem::Addr slot =
          ctx.args.at(static_cast<std::size_t>(*arg.saveptr_index) - 1).as_ptr();
      if (!space.accessible(slot, 8, mem::Perm::kRead)) return false;
      const mem::Addr cursor_value = space.load64(slot);
      if (!parser::safe_cstrlen(space, cursor_value, kScanCap).has_value()) return false;
    }
    // Otherwise NULL is fine when explicitly allowed (or nothing demands
    // non-NULL); the remaining pointer checks are vacuous for it.
    return !arg.nonnull;
  }
  if (arg.file) {
    // A live FILE*: readable 16-byte object, correct magic, live slot.
    if (!space.accessible(p, simlib::kFileObjSize, mem::Perm::kRead)) return false;
    if (space.load64(p) != simlib::kFileMagic) return false;
    const std::uint64_t slot = space.load64(p + 8);
    if (slot >= ctx.state.open_files.size() || !ctx.state.open_files[slot].live) return false;
    return true;
  }
  if (arg.heapptr) {
    return ctx.machine.heap().is_live(p);
  }
  if (arg.funcptr) {
    // A function pointer is valid only when it names registered application
    // code; everything else would be a jump into data.
    return ctx.state.callbacks.contains(p);
  }
  if (arg.mapped && !space.accessible(p, 1, mem::Perm::kRead)) return false;
  if (arg.writable && !space.accessible(p, 1, mem::Perm::kWrite)) return false;
  if (arg.terminated && !parser::safe_cstrlen(space, p, kScanCap).has_value()) return false;

  // Size expressions: the precise "buffer large enough" checks.
  if (arg.write_size || arg.read_size) {
    SizeExpr::EvalEnv env{space, {}, kScanCap,
                          [&ctx](int idx) { return detail::safe_formatted_length(ctx, idx); },
                          [&ctx]() -> std::optional<std::uint64_t> {
                            // Length of the pending stdin line (gets pre-pass).
                            const simlib::LibState& st = ctx.state;
                            if (st.stdin_pos >= st.stdin_content.size()) return 0;
                            const auto nl = st.stdin_content.find('\n', st.stdin_pos);
                            return (nl == std::string::npos ? st.stdin_content.size()
                                                            : nl) - st.stdin_pos;
                          }};
    for (const SimValue& v : ctx.args) env.args.push_back(v.as_uint());
    if (arg.write_size) {
      const auto need = arg.write_size->eval(env);
      // Unevaluable sizes (formatted(%), unterminated inputs) degrade to a
      // 1-byte writability check — the strongest statically safe demand.
      const std::uint64_t bytes = need.value_or(1);
      if (bytes > 0 && !space.accessible(p, bytes, mem::Perm::kWrite)) return false;
    }
    if (arg.read_size) {
      const auto need = arg.read_size->eval(env);
      const std::uint64_t bytes = need.value_or(1);
      if (bytes > 0 && !space.accessible(p, bytes, mem::Perm::kRead)) return false;
    }
  }
  return true;
}

class ArgCheckHook : public gen::RuntimeHook {
 public:
  ArgCheckHook(gen::WrapperStats& stats, const gen::GenContext& ctx, CheckSource source)
      : stats_(stats),
        fid_(ctx.function_id),
        error_(error_value(ctx.proto)),
        checks_(compile_checks(ctx, source)) {}

  const SimValue* prefix(CallContext& ctx) override {
    for (const CompiledArg& arg : checks_) {
      if (static_cast<std::size_t>(arg.index_0based) >= ctx.args.size()) continue;
      if (!arg.any()) continue;
      // The generated check code executes a handful of instructions per
      // precondition (plus scans, charged as real work would be).
      ctx.machine.add_cycles(4);
      if (arg.terminated || arg.write_size || arg.read_size) {
        ctx.machine.add_cycles(8);  // scan/evaluation cost approximation
      }
      if (!check_arg(arg, ctx)) {
        ctx.machine.set_err(simlib::kEINVAL);
        gen::FunctionStats& fstats = stats_.function(fid_);
        ++fstats.contained;
        if (ctx.state.observer != nullptr) {
          const SimValue& bad = ctx.args.at(static_cast<std::size_t>(arg.index_0based));
          ctx.state.observer->on_detection(
              ctx, simlib::DetectionKind::kArgCheck, fstats.symbol,
              "argument " + std::to_string(arg.index_0based + 1) +
                  " rejected (call contained with EINVAL)",
              arg.is_pointer ? bad.as_ptr() : 0);
        }
        return &error_;
      }
    }
    return nullptr;
  }

 private:
  gen::WrapperStats& stats_;
  int fid_;
  SimValue error_;
  std::vector<CompiledArg> checks_;
};

class ArgCheckGen : public gen::MicroGenerator {
 public:
  explicit ArgCheckGen(CheckSource source) : source_(source) {}

  [[nodiscard]] std::string name() const override { return "arg check"; }

  [[nodiscard]] std::string prefix_code(const gen::GenContext& ctx) const override {
    std::string out;
    const std::string err =
        ctx.proto.return_type.is_pointer()
            ? "NULL"
            : (ctx.proto.return_type.classify() == parser::TypeClass::kFloating ? "NAN" : "-1");
    const std::string contain = "{ errno = EINVAL; return " + err + "; }";
    for (const CompiledArg& arg : compile_checks(ctx, source_)) {
      const std::string a = "a" + std::to_string(arg.index_0based + 1);
      if (!arg.any()) continue;
      if (!arg.is_pointer) {
        if (arg.range) {
          out += "  if (" + a + " < " + std::to_string(arg.range->first) + " || " + a + " > " +
                 std::to_string(arg.range->second) + ") " + contain + "\n";
        }
        continue;
      }
      if (arg.nonnull) out += "  if (" + a + " == NULL) " + contain + "\n";
      const std::string guard = arg.allownull || !arg.nonnull ? a + " != NULL && " : "";
      if (arg.file) {
        out += "  if (" + guard + "!healers_valid_file(" + a + ")) " + contain + "\n";
        continue;
      }
      if (arg.heapptr) {
        out += "  if (" + guard + "!healers_live_heap_ptr(" + a + ")) " + contain + "\n";
        continue;
      }
      if (arg.funcptr) {
        out += "  if (" + guard + "!healers_valid_callback(" + a + ")) " + contain + "\n";
        continue;
      }
      if (arg.saveptr_index.has_value()) {
        out += "  if (" + a + " == NULL && !healers_valid_cursor(a" +
               std::to_string(*arg.saveptr_index) + ")) " + contain + "\n";
      }
      if (arg.mapped && !arg.terminated && !arg.write_size && !arg.read_size) {
        out += "  if (" + guard + "!healers_readable(" + a + ", 1)) " + contain + "\n";
      }
      if (arg.terminated) {
        out += "  if (" + guard + "!healers_terminated(" + a + ")) " + contain + "\n";
      }
      if (arg.write_size) {
        out += "  if (" + guard + "!healers_writable(" + a + ", " +
               arg.write_size->to_string() + ")) " + contain + "\n";
      } else if (arg.writable) {
        out += "  if (" + guard + "!healers_writable(" + a + ", 1)) " + contain + "\n";
      }
      if (arg.read_size) {
        out += "  if (" + guard + "!healers_readable(" + a + ", " +
               arg.read_size->to_string() + ")) " + contain + "\n";
      }
    }
    return out;
  }

  [[nodiscard]] std::string postfix_code(const gen::GenContext&) const override { return {}; }

  [[nodiscard]] gen::RuntimeHookPtr make_hook(const gen::GenContext& ctx,
                                              gen::WrapperStats& stats) const override {
    return std::make_unique<ArgCheckHook>(stats, ctx, source_);
  }

 private:
  CheckSource source_;
};

}  // namespace

gen::MicroGeneratorPtr arg_check_gen(CheckSource source) {
  return std::make_shared<ArgCheckGen>(source);
}

}  // namespace healers::wrappers
