// Repair micro-generator (ISSUE 9) — the wrapper family that *survives*
// attacks instead of rejecting (argcheck) or detecting (canaries) them.
//
// Two strategies, both driven by the campaign-derived RepairPolicy
// (gen/repair_policy.hpp) rather than hand-written function knowledge:
//
//   * failure-oblivious truncation (Rigger et al., arXiv:1806.09026): when a
//     memcpy-class call would write past the destination's known extent, the
//     wrapper clamps the caller-visible length argument to the extent and
//     lets the call proceed — the overflow bytes are simply never written;
//   * safe substitution (S3Library, arXiv:2004.09062): when a strcpy-class
//     call's computed write size exceeds the extent, the wrapper performs
//     the bounded copy itself (NUL-terminated, strlcpy semantics) and skips
//     the unbounded callee entirely. Computed writes with no copyable
//     source (sprintf past the extent) degrade to an empty NUL-terminated
//     output; invalid input strings degrade to the documented error return.
//
// The wrapper keeps its own allocation-extent table, fed by observing
// malloc/calloc/realloc/free — no canaries are planted and no sizes are
// resized, so a process whose calls never need repair behaves
// bit-identically to an unwrapped one. Every applied repair notifies the
// observer seam (on_repair), which the incident flight recorder turns into
// a RepairEvent plus a kRepair dossier.
#include <algorithm>
#include <map>

#include "gen/microgen.hpp"
#include "gen/repair_policy.hpp"
#include "gen/stats.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/libstate.hpp"
#include "simlib/observer.hpp"
#include "wrappers/wrappers.hpp"

namespace healers::wrappers {

namespace {

using gen::RepairPolicy;
using gen::RepairRule;
using simlib::CallContext;
using simlib::RepairAction;
using simlib::SimValue;

constexpr std::uint64_t kScanCap = 1 << 20;

// Type-appropriate error value for a safe return (mirrors argcheck).
SimValue safe_error_value(const parser::FunctionProto& proto) {
  if (proto.return_type.is_pointer()) return SimValue::null();
  switch (proto.return_type.classify()) {
    case parser::TypeClass::kFloating:
      return SimValue::fp(0.0);
    case parser::TypeClass::kVoid:
      return SimValue::integer(0);
    default:
      return SimValue::integer(-1);
  }
}

// Per-process allocation-extent table. Unlike HeapGuardState this is pure
// bookkeeping: nothing is planted and no argument is resized, so tracking
// alone never perturbs the wrapped process.
struct RepairState {
  std::map<mem::Addr, std::uint64_t> allocations;  // user addr -> requested size

  // The tracked allocation containing `p`, if any: (base, size).
  [[nodiscard]] std::optional<std::pair<mem::Addr, std::uint64_t>> owner_of(mem::Addr p) const {
    auto it = allocations.upper_bound(p);
    if (it == allocations.begin()) return std::nullopt;
    --it;
    if (p < it->first + it->second) return std::make_pair(it->first, it->second);
    return std::nullopt;
  }
};

// The number of bytes that may safely be written starting at `dest`:
// the tracked heap allocation's remaining room when known (the tight bound
// the heap arena's page permissions cannot provide), else the room before
// the enclosing stack frame's return address, else the raw writable span.
// 0 when dest is not writable at all.
std::uint64_t writable_extent(const RepairState& state, CallContext& ctx, mem::Addr dest) {
  if (const auto owner = state.owner_of(dest)) {
    return owner->first + owner->second - dest;
  }
  // Allocation made through a different library's wrapper (malloc lives in
  // one library; the repaired writer may live in another): the arena's own
  // chunk metadata still bounds the write, just rounded up to chunk size.
  if (ctx.machine.heap().is_live(dest)) return ctx.machine.heap().usable_size(dest);
  if (const mem::Frame* frame = ctx.machine.stack().frame_of(dest)) {
    if (dest < frame->ret_slot) return frame->ret_slot - dest;
  }
  return ctx.machine.mem().span_extent(dest, mem::Perm::kWrite);
}

class RepairHook : public gen::RuntimeHook {
 public:
  enum class Fn : std::uint8_t { kMalloc, kCalloc, kRealloc, kFree, kOther };

  RepairHook(std::shared_ptr<RepairState> state, const gen::GenContext& ctx,
             const gen::FunctionRepairPolicy* policy)
      : state_(std::move(state)), symbol_(ctx.proto.name), error_(safe_error_value(ctx.proto)) {
    if (symbol_ == "malloc") fn_ = Fn::kMalloc;
    else if (symbol_ == "calloc") fn_ = Fn::kCalloc;
    else if (symbol_ == "realloc") fn_ = Fn::kRealloc;
    else if (symbol_ == "free") fn_ = Fn::kFree;
    if (policy != nullptr) rules_ = policy->rules;
    returns_pointer_ = ctx.proto.return_type.is_pointer();
  }

  const SimValue* prefix(CallContext& ctx) override {
    // Allocator bookkeeping: record the requested size, never change it.
    switch (fn_) {
      case Fn::kMalloc:
        requested_ = ctx.args.at(0).as_uint();
        return nullptr;
      case Fn::kCalloc: {
        const std::uint64_t nmemb = ctx.args.at(0).as_uint();
        const std::uint64_t size = ctx.args.at(1).as_uint();
        requested_ = (size != 0 && nmemb > ~std::uint64_t{0} / size) ? 0 : nmemb * size;
        return nullptr;
      }
      case Fn::kRealloc:
        requested_ = ctx.args.at(1).as_uint();
        return nullptr;
      case Fn::kFree:
        return nullptr;
      case Fn::kOther:
        break;
    }

    for (const RepairRule& rule : rules_) {
      if (static_cast<std::size_t>(rule.arg_index) > ctx.args.size()) continue;
      const SimValue* contained = apply(rule, ctx);
      if (contained != nullptr) return contained;
    }
    return nullptr;
  }

  void postfix(CallContext& ctx, SimValue& ret) override {
    switch (fn_) {
      case Fn::kMalloc:
      case Fn::kCalloc:
        if (ret.as_ptr() != 0) state_->allocations[ret.as_ptr()] = requested_;
        return;
      case Fn::kRealloc: {
        const mem::Addr old = ctx.args.at(0).as_ptr();
        if (requested_ == 0) {
          if (old != 0) state_->allocations.erase(old);
          return;
        }
        if (ret.as_ptr() != 0) {
          if (old != 0) state_->allocations.erase(old);
          state_->allocations[ret.as_ptr()] = requested_;
        }
        return;
      }
      case Fn::kFree: {
        const mem::Addr p = ctx.args.at(0).as_ptr();
        if (p != 0) state_->allocations.erase(p);
        return;
      }
      case Fn::kOther:
        return;
    }
  }

 private:
  void notify(CallContext& ctx, RepairAction action, const RepairRule& rule, mem::Addr addr,
              std::uint64_t requested, std::uint64_t granted, const std::string& what) const {
    if (ctx.state.observer == nullptr) return;
    ctx.state.observer->on_repair(ctx, action, symbol_, what + "; " + rule.provenance, addr,
                                  requested, granted);
  }

  [[nodiscard]] parser::SizeExpr::EvalEnv eval_env(CallContext& ctx) const {
    parser::SizeExpr::EvalEnv env{ctx.machine.mem(), {}, kScanCap,
                                  [&ctx](int idx) {
                                    return detail::safe_formatted_length(ctx, idx);
                                  },
                                  [&ctx]() -> std::optional<std::uint64_t> {
                                    const simlib::LibState& st = ctx.state;
                                    if (st.stdin_pos >= st.stdin_content.size()) return 0;
                                    const auto nl = st.stdin_content.find('\n', st.stdin_pos);
                                    return (nl == std::string::npos ? st.stdin_content.size()
                                                                    : nl) - st.stdin_pos;
                                  }};
    for (const SimValue& v : ctx.args) env.args.push_back(v.as_uint());
    return env;
  }

  // Applies one rule. Returns non-null to short-circuit the base call.
  const SimValue* apply(const RepairRule& rule, CallContext& ctx) {
    const mem::AddressSpace& space = ctx.machine.mem();

    if (rule.action == RepairAction::kSafeReturn) {
      // Invalid input string: skip the call, manufacture the documented
      // error value. A valid string passes through untouched.
      const mem::Addr p = ctx.args.at(static_cast<std::size_t>(rule.arg_index) - 1).as_ptr();
      if (p != 0 && parser::safe_cstrlen(space, p, kScanCap).has_value()) return nullptr;
      ctx.machine.set_err(simlib::kEINVAL);
      notify(ctx, RepairAction::kSafeReturn, rule, p, 0, 0,
             "invalid input string; call skipped, error value returned");
      return &error_;
    }

    const mem::Addr dest = ctx.args.at(static_cast<std::size_t>(rule.arg_index) - 1).as_ptr();
    if (dest == 0) return nullptr;  // argcheck-class territory, not repairable
    const std::uint64_t extent = writable_extent(*state_, ctx, dest);
    if (extent == 0) return nullptr;

    if (rule.action == RepairAction::kTruncateWrite) {
      // memcpy-class: the caller passes the length; clamp it to the extent.
      const std::uint64_t needed =
          ctx.args.at(static_cast<std::size_t>(rule.clamp_arg) - 1).as_uint();
      if (needed <= extent) return nullptr;
      ctx.args[static_cast<std::size_t>(rule.clamp_arg) - 1] =
          SimValue::integer(static_cast<std::int64_t>(extent));
      notify(ctx, RepairAction::kTruncateWrite, rule, dest, needed, extent,
             "write truncated to destination extent");
      return nullptr;  // the (now-bounded) call proceeds
    }

    // kSubstituteBounded: measure the computed write; within bounds means no
    // repair, past them means the wrapper performs the bounded variant.
    const auto needed = rule.write_size.has_value() ? rule.write_size->eval(eval_env(ctx))
                                                    : std::nullopt;
    if (!needed.has_value()) return nullptr;  // unmeasurable: detect layer's job
    if (*needed <= extent) return nullptr;

    // Where the write starts inside the destination buffer: after the
    // existing string for append (strcat) rules.
    std::uint64_t offset = 0;
    if (rule.append) {
      const auto dest_len = parser::safe_cstrlen(space, dest, kScanCap);
      if (!dest_len.has_value()) return nullptr;
      offset = std::min(*dest_len, extent - 1);
    }

    if (rule.src_arg != 0) {
      // strcpy/strcat-class: bounded copy with NUL termination (strlcpy
      // semantics), then skip the unbounded callee.
      const mem::Addr src = ctx.args.at(static_cast<std::size_t>(rule.src_arg) - 1).as_ptr();
      const auto src_len = parser::safe_cstrlen(space, src, kScanCap);
      if (!src_len.has_value()) return nullptr;  // safe-return rule handles it
      const std::uint64_t room = extent - offset;  // >= 1
      const std::uint64_t ncopy = std::min(*src_len, room - 1);
      mem::AddressSpace& wspace = ctx.machine.mem();
      for (std::uint64_t i = 0; i < ncopy; ++i) {
        wspace.store8(dest + offset + i, wspace.load8(src + i));
      }
      wspace.store8(dest + offset + ncopy, 0);
      ctx.machine.add_cycles(ncopy + 1);  // the bounded variant still copies
      notify(ctx, RepairAction::kSubstituteBounded, rule, dest, *needed, offset + ncopy + 1,
             "bounded copy substituted for unbounded write");
      result_ = returns_pointer_ ? SimValue::ptr(dest)
                                 : SimValue::integer(static_cast<std::int64_t>(ncopy));
      return &result_;
    }

    // Computed write with no copyable source (sprintf past the extent):
    // synthesize an empty NUL-terminated output — the most conservative
    // failure-oblivious result — and skip the callee.
    ctx.machine.mem().store8(dest + offset, 0);
    ctx.machine.add_cycles(1);
    notify(ctx, RepairAction::kSynthesizeInput, rule, dest, *needed, offset + 1,
           "unrepresentable bounded write; empty output synthesized");
    result_ = returns_pointer_ ? SimValue::ptr(dest) : SimValue::integer(0);
    return &result_;
  }

  std::shared_ptr<RepairState> state_;
  std::string symbol_;
  Fn fn_ = Fn::kOther;
  SimValue error_;          // storage behind a safe-return short-circuit
  SimValue result_ = SimValue::null();  // storage behind a substitution return
  std::vector<RepairRule> rules_;
  bool returns_pointer_ = false;
  std::uint64_t requested_ = 0;
};

class RepairGen : public gen::MicroGenerator {
 public:
  explicit RepairGen(std::shared_ptr<const RepairPolicy> policy)
      : policy_(std::move(policy)), state_(std::make_shared<RepairState>()) {}

  [[nodiscard]] std::string name() const override { return "repair"; }

  [[nodiscard]] std::string prefix_code(const gen::GenContext& ctx) const override {
    const gen::FunctionRepairPolicy* fn =
        policy_ != nullptr ? policy_->policy(ctx.proto.name) : nullptr;
    if (fn == nullptr) return {};
    const std::string err = ctx.proto.return_type.is_pointer() ? "NULL" : "-1";
    std::string out;
    for (const RepairRule& rule : fn->rules) {
      const std::string a = "a" + std::to_string(rule.arg_index);
      switch (rule.action) {
        case RepairAction::kTruncateWrite:
          out += "  a" + std::to_string(rule.clamp_arg) + " = healers_repair_clamp(" + a +
                 ", a" + std::to_string(rule.clamp_arg) + ");\n";
          break;
        case RepairAction::kSubstituteBounded:
          if (!rule.write_size.has_value()) break;
          out += "  if (!healers_room_for(" + a + ", " + rule.write_size->to_string() +
                 ")) return healers_bounded_" + (rule.append ? "append" : "copy") + "(" + a +
                 (rule.src_arg != 0 ? ", a" + std::to_string(rule.src_arg) : "") + ");\n";
          break;
        case RepairAction::kSynthesizeInput:
          break;  // runtime degradation of substitute; no extra fragment
        case RepairAction::kSafeReturn:
          out += "  if (!healers_valid_input(" + a + ")) { errno = EINVAL; return " + err +
                 "; }\n";
          break;
      }
    }
    return out;
  }

  [[nodiscard]] std::string postfix_code(const gen::GenContext& ctx) const override {
    const std::string& fn = ctx.proto.name;
    if (fn == "malloc" || fn == "calloc" || fn == "realloc") {
      return "  if (ret != NULL) healers_repair_track(ret);\n";
    }
    if (fn == "free") return "  healers_repair_untrack(a1);\n";
    return {};
  }

  [[nodiscard]] gen::RuntimeHookPtr make_hook(const gen::GenContext& ctx,
                                              gen::WrapperStats&) const override {
    const gen::FunctionRepairPolicy* fn =
        policy_ != nullptr ? policy_->policy(ctx.proto.name) : nullptr;
    return std::make_unique<RepairHook>(state_, ctx, fn);
  }

 private:
  std::shared_ptr<const RepairPolicy> policy_;
  std::shared_ptr<RepairState> state_;
};

}  // namespace

gen::MicroGeneratorPtr repair_gen(std::shared_ptr<const gen::RepairPolicy> policy) {
  return std::make_shared<RepairGen>(std::move(policy));
}

}  // namespace healers::wrappers
