// Minimal self-describing XML infrastructure.
//
// HEALERS exchanges three document kinds as XML (paper §2.3, §3.1, §3.3):
//   * library declaration files (function prototypes, §3.1),
//   * robust-API specifications derived by fault injection (§2.2),
//   * profiling logs shipped to the central collector server (§2.3, Fig 5).
//
// The documents are self-describing: the collector extracts which functions
// were wrapped and what was collected purely from the document structure.
// This module provides an ordered element tree, a serializer, and a strict
// recursive-descent parser for the subset HEALERS emits (elements,
// attributes, character data, comments).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/result.hpp"

namespace healers::xml {

// One element. Attribute order and child order are preserved: documents are
// compared textually in tests and must round-trip byte-for-byte.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  Node& set_attr(std::string key, std::string value);
  [[nodiscard]] const std::string* attr(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attrs() const noexcept {
    return attrs_;
  }

  // Appends a child element and returns a reference to it (stable: children
  // are held by unique_ptr).
  Node& add_child(std::string name);
  Node& add_child(Node node);
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const noexcept {
    return children_;
  }
  // First child with the given element name, or nullptr.
  [[nodiscard]] const Node* child(std::string_view name) const noexcept;
  // All children with the given element name.
  [[nodiscard]] std::vector<const Node*> children_named(std::string_view name) const;

  Node& set_text(std::string text);
  [[nodiscard]] const std::string& text() const noexcept { return text_; }

  // Convenience: add <name>text</name> child.
  Node& add_text_child(std::string name, std::string text);

  // Attribute lookup that parses as integer; returns fallback when missing or
  // malformed (profiling documents from older wrappers may lack fields).
  [[nodiscard]] long long attr_int(std::string_view key, long long fallback) const noexcept;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  std::string text_;
};

// Serializes with 2-space indentation and a standard declaration header.
[[nodiscard]] std::string serialize(const Node& root);
// Serializes without the <?xml ...?> header (for embedding).
[[nodiscard]] std::string serialize_fragment(const Node& root, int indent = 0);

// Escapes &, <, >, ", ' for use in character data / attribute values.
[[nodiscard]] std::string escape(std::string_view raw);

// Strict parser for the HEALERS subset. Rejects mismatched tags, unterminated
// documents, and bad entities with a position-annotated error.
[[nodiscard]] Result<Node> parse(std::string_view document);

}  // namespace healers::xml
