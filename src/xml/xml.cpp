#include "xml/xml.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace healers::xml {

Node& Node::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const std::string* Node::attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Node& Node::add_child(std::string name) {
  children_.push_back(std::make_unique<Node>(std::move(name)));
  return *children_.back();
}

Node& Node::add_child(Node node) {
  children_.push_back(std::make_unique<Node>(std::move(node)));
  return *children_.back();
}

const Node* Node::child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Node*> Node::children_named(std::string_view name) const {
  std::vector<const Node*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

Node& Node::set_text(std::string text) {
  text_ = std::move(text);
  return *this;
}

Node& Node::add_text_child(std::string name, std::string text) {
  Node& c = add_child(std::move(name));
  c.set_text(std::move(text));
  return c;
}

long long Node::attr_int(std::string_view key, long long fallback) const noexcept {
  const std::string* raw = attr(key);
  if (raw == nullptr) return fallback;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) return fallback;
  return value;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char ch : raw) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

namespace {

void serialize_into(const Node& node, int indent, std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out += pad;
  out += '<';
  out += node.name();
  for (const auto& [k, v] : node.attrs()) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  const bool empty = node.children().empty() && node.text().empty();
  if (empty) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (node.children().empty()) {
    // Pure text element stays on one line: <name>text</name>
    out += escape(node.text());
    out += "</";
    out += node.name();
    out += ">\n";
    return;
  }
  out += '\n';
  if (!node.text().empty()) {
    out += std::string(static_cast<std::size_t>(indent + 1) * 2, ' ');
    out += escape(node.text());
    out += '\n';
  }
  for (const auto& child : node.children()) {
    serialize_into(*child, indent + 1, out);
  }
  out += pad;
  out += "</";
  out += node.name();
  out += ">\n";
}

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  Result<Node> run() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root;
    skip_ws_and_comments();
    if (pos_ != doc_.size()) {
      return Error(where() + ": trailing content after document element");
    }
    return root;
  }

 private:
  [[nodiscard]] bool eof() const noexcept { return pos_ >= doc_.size(); }
  [[nodiscard]] char peek() const noexcept { return eof() ? '\0' : doc_[pos_]; }
  char take() noexcept { return eof() ? '\0' : doc_[pos_++]; }

  [[nodiscard]] std::string where() const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
      if (doc_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return "line " + std::to_string(line) + ":" + std::to_string(col);
  }

  void skip_ws() {
    while (!eof() && (std::isspace(static_cast<unsigned char>(peek())) != 0)) ++pos_;
  }

  bool skip_comment() {
    if (doc_.compare(pos_, 4, "<!--") != 0) return false;
    const std::size_t end = doc_.find("-->", pos_ + 4);
    pos_ = (end == std::string_view::npos) ? doc_.size() : end + 3;
    return true;
  }

  void skip_ws_and_comments() {
    for (;;) {
      skip_ws();
      if (!skip_comment()) return;
    }
  }

  void skip_prolog() {
    skip_ws();
    if (doc_.compare(pos_, 5, "<?xml") == 0) {
      const std::size_t end = doc_.find("?>", pos_);
      pos_ = (end == std::string_view::npos) ? doc_.size() : end + 2;
    }
    skip_ws_and_comments();
  }

  static bool is_name_char(char ch) noexcept {
    return (std::isalnum(static_cast<unsigned char>(ch)) != 0) || ch == '_' || ch == '-' ||
           ch == '.' || ch == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name += take();
    return name;
  }

  Result<std::string> parse_entity() {
    // pos_ is at '&'
    const std::size_t semi = doc_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 6) {
      return Error(where() + ": unterminated entity");
    }
    const std::string_view entity = doc_.substr(pos_ + 1, semi - pos_ - 1);
    pos_ = semi + 1;
    if (entity == "amp") return std::string("&");
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    return Error(where() + ": unknown entity &" + std::string(entity) + ";");
  }

  Result<std::string> parse_attr_value() {
    const char quote = take();
    if (quote != '"' && quote != '\'') {
      return Error(where() + ": expected quoted attribute value");
    }
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent;
        value += ent.value();
      } else {
        value += take();
      }
    }
    if (eof()) return Error(where() + ": unterminated attribute value");
    take();  // closing quote
    return value;
  }

  Result<Node> parse_element() {
    skip_ws_and_comments();
    if (peek() != '<') return Error(where() + ": expected '<'");
    take();
    const std::string name = parse_name();
    if (name.empty()) return Error(where() + ": expected element name");
    Node node(name);

    for (;;) {
      skip_ws();
      if (peek() == '/') {
        take();
        if (take() != '>') return Error(where() + ": expected '>' after '/'");
        return node;  // self-closing
      }
      if (peek() == '>') {
        take();
        break;
      }
      const std::string key = parse_name();
      if (key.empty()) return Error(where() + ": expected attribute name");
      skip_ws();
      if (take() != '=') return Error(where() + ": expected '=' after attribute name");
      skip_ws();
      auto value = parse_attr_value();
      if (!value.ok()) return value.error();
      node.set_attr(key, value.value());
    }

    // Content: interleaved text and child elements until the close tag.
    std::string text;
    for (;;) {
      if (eof()) return Error(where() + ": unterminated element <" + name + ">");
      if (peek() == '<') {
        if (doc_.compare(pos_, 4, "<!--") == 0) {
          skip_comment();
          continue;
        }
        if (doc_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          const std::string close = parse_name();
          if (close != name) {
            return Error(where() + ": mismatched close tag </" + close + "> for <" + name + ">");
          }
          skip_ws();
          if (take() != '>') return Error(where() + ": expected '>' in close tag");
          node.set_text(trim(text));
          return node;
        }
        auto child = parse_element();
        if (!child.ok()) return child;
        node.add_child(std::move(child).take());
      } else if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent.error();
        text += ent.value();
      } else {
        text += take();
      }
    }
  }

  static std::string trim(const std::string& raw) {
    std::size_t begin = 0;
    std::size_t end = raw.size();
    while (begin < end && (std::isspace(static_cast<unsigned char>(raw[begin])) != 0)) ++begin;
    while (end > begin && (std::isspace(static_cast<unsigned char>(raw[end - 1])) != 0)) --end;
    return raw.substr(begin, end - begin);
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string serialize(const Node& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  serialize_into(root, 0, out);
  return out;
}

std::string serialize_fragment(const Node& root, int indent) {
  std::string out;
  serialize_into(root, indent, out);
  return out;
}

Result<Node> parse(std::string_view document) { return Parser(document).run(); }

}  // namespace healers::xml
