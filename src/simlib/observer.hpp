// Call/detection observer interface — the seam between the interposition
// machinery and the incident flight recorder (src/incident/).
//
// The linker and the wrapper hooks sit *below* the incident layer in the
// dependency graph, so they cannot name incident::FlightRecorder directly.
// Instead each simulated process carries one optional CallObserver pointer
// (LibState::observer, installed via linker::Process::set_observer); the
// dispatch loop and the detectors feed it through this interface. A null
// observer is the default and costs one predicted branch per call — the
// recorder is strictly pay-for-what-you-use, like the wrappers themselves.
//
// Observers must never touch the simulated cost model: no tick(), no
// add_cycles(). Recording is host-side bookkeeping; the golden-tick suite
// asserts that enabling an observer leaves steps/cycles bit-identical.
#pragma once

#include <string>
#include <vector>

#include "memmodel/machine.hpp"
#include "support/faults.hpp"

namespace healers::simlib {

class SimValue;
struct CallContext;

// The detector families of the HEALERS wrapper stack. kAccessFault is the
// "hardware" detector (the simulated SIGSEGV); the others are wrapper-side.
enum class DetectionKind : std::uint8_t {
  kArgCheck,     // robustness wrapper vetoed a call (EINVAL containment)
  kHeapSmash,    // security wrapper: heap canary mismatch
  kStackSmash,   // security wrapper: stack bound / return-address violation
  kAccessFault,  // AccessFault surfaced through a wrapped call
  kErrorInject,  // testing wrapper injected a documented failure
  kRepair,       // repair wrapper rewrote a call instead of rejecting it
  kSurfaceViolation,  // demand loader: call to a symbol outside the
                      // executable's debloated surface profile
};

[[nodiscard]] std::string to_string(DetectionKind kind);

// How a repair wrapper rewrote an unsafe call (failure-oblivious execution /
// safe substitution). Carried by on_repair and by incident::RepairEvent.
enum class RepairAction : std::uint8_t {
  kTruncateWrite,      // clamped an explicit length argument to the extent
  kSubstituteBounded,  // rewrote an unbounded copy into a bounded variant
  kSynthesizeInput,    // replaced an invalid input pointer with a benign one
  kSafeReturn,         // skipped the call, manufactured the documented error
};

[[nodiscard]] std::string to_string(RepairAction action);

class CallObserver {
 public:
  virtual ~CallObserver() = default;

  // One wrapped call is about to dispatch. Called from the linker's call
  // engine before any wrapper runs; `args` are the caller's original values.
  virtual void on_call(const std::string& symbol, const std::vector<SimValue>& args,
                       const mem::Machine& machine) = 0;

  // A wrapper detector fired mid-call. `fault_addr` is the address the
  // detection is about (clobbered allocation, rejected pointer, ...), 0 when
  // no address is involved. The detector may still terminate the process
  // (SimAbort) immediately after notifying.
  virtual void on_detection(CallContext& ctx, DetectionKind kind, const std::string& symbol,
                            const std::string& detail, mem::Addr fault_addr) = 0;

  // An AccessFault escaped a call and is being reaped by the supervisor.
  // The offending symbol is whatever on_call saw last.
  virtual void on_fault(const mem::Machine& machine, FaultKind kind, mem::Addr fault_addr,
                        const std::string& detail) = 0;

  // A repair wrapper rewrote a call that would otherwise have crashed or been
  // rejected. `requested` is what the caller asked for (bytes, usually) and
  // `granted` what the repair allowed; `fault_addr` is the pointer the repair
  // is about. Default-empty so non-incident observers ignore repairs.
  virtual void on_repair(CallContext& ctx, RepairAction action, const std::string& symbol,
                         const std::string& detail, mem::Addr fault_addr,
                         std::uint64_t requested, std::uint64_t granted) {
    (void)ctx;
    (void)action;
    (void)symbol;
    (void)detail;
    (void)fault_addr;
    (void)requested;
    (void)granted;
  }
};

}  // namespace healers::simlib
