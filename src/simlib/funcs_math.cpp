// Math family (libsimm): value-in/value-out functions with no pointer
// arguments. These are robust by construction and serve as the campaign's
// contrast class — the fault injector should find (and the reports show)
// near-zero robustness failures here, against the string family's many.
#include <cmath>

#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;

CFunction unary(double (*fn)(double)) {
  return [fn](CallContext& ctx) {
    ctx.machine.tick(4);
    return SimValue::fp(fn(ctx.arg_double(0)));
  };
}

SimValue fn_sqrt(CallContext& ctx) {
  ctx.machine.tick(4);
  const double x = ctx.arg_double(0);
  if (x < 0) {
    ctx.machine.set_err(kEDOM);
    return SimValue::fp(std::nan(""));
  }
  return SimValue::fp(std::sqrt(x));
}

SimValue fn_log(CallContext& ctx) {
  ctx.machine.tick(4);
  const double x = ctx.arg_double(0);
  if (x < 0) {
    ctx.machine.set_err(kEDOM);
    return SimValue::fp(std::nan(""));
  }
  if (x == 0) {
    ctx.machine.set_err(kERANGE);
    return SimValue::fp(-std::numeric_limits<double>::infinity());
  }
  return SimValue::fp(std::log(x));
}

SimValue fn_pow(CallContext& ctx) {
  ctx.machine.tick(8);
  const double result = std::pow(ctx.arg_double(0), ctx.arg_double(1));
  if (std::isinf(result)) ctx.machine.set_err(kERANGE);
  return SimValue::fp(result);
}

SimValue fn_fmod(CallContext& ctx) {
  ctx.machine.tick(4);
  const double y = ctx.arg_double(1);
  if (y == 0) {
    ctx.machine.set_err(kEDOM);
    return SimValue::fp(std::nan(""));
  }
  return SimValue::fp(std::fmod(ctx.arg_double(0), y));
}

}  // namespace

void register_math_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("sin", "sine", "double sin(double x);", {}, unary(std::sin)));
  lib.add(make_symbol("cos", "cosine", "double cos(double x);", {}, unary(std::cos)));
  lib.add(make_symbol("tan", "tangent", "double tan(double x);", {}, unary(std::tan)));
  lib.add(make_symbol("exp", "exponential", "double exp(double x);", {"ERRNO ERANGE"},
                      unary(std::exp)));
  lib.add(make_symbol("fabs", "absolute value", "double fabs(double x);", {},
                      unary(std::fabs)));
  lib.add(make_symbol("floor", "round down", "double floor(double x);", {},
                      unary(std::floor)));
  lib.add(make_symbol("ceil", "round up", "double ceil(double x);", {}, unary(std::ceil)));
  lib.add(make_symbol("sqrt", "square root", "double sqrt(double x);", {"ERRNO EDOM"},
                      fn_sqrt));
  lib.add(make_symbol("log", "natural logarithm", "double log(double x);",
                      {"ERRNO EDOM ERANGE"}, fn_log));
  lib.add(make_symbol("pow", "power", "double pow(double x, double y);",
                      {"ERRNO ERANGE"}, fn_pow));
  lib.add(make_symbol("fmod", "floating-point remainder", "double fmod(double x, double y);",
                      {"ERRNO EDOM"}, fn_fmod));
}

}  // namespace healers::simlib
