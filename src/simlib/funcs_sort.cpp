// Sorting/searching family: qsort and bsearch, the libc functions that call
// BACK into application code through a function-pointer argument.
//
// The comparator address is resolved through the per-process callback table
// (LibState::callbacks). Calling through an address that is not registered
// application code is, as on real hardware, a jump into data: it faults.
// This makes the comparator argument a first-class fault-injection target
// (probed with the pointer lattice) and gives the robustness wrapper a
// FUNCPTR precondition to enforce.
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;
using mem::AddressSpace;

// Invokes the comparator at `code` on element addresses (a, b).
int call_comparator(CallContext& ctx, Addr code, Addr a, Addr b) {
  ctx.machine.tick(2);
  auto it = ctx.state.callbacks.find(code);
  if (it == ctx.state.callbacks.end()) {
    // Jump through a bad function pointer.
    throw AccessFault(FaultKind::kSegv, code, "call through invalid function pointer");
  }
  CallContext sub{ctx.machine, ctx.state, {SimValue::ptr(a), SimValue::ptr(b)}};
  return static_cast<int>(it->second(sub).as_int());
}

void swap_elements(CallContext& ctx, Addr a, Addr b, std::uint64_t size) {
  AddressSpace& as = ctx.machine.mem();
  for (std::uint64_t i = 0; i < size; ++i) {
    ctx.machine.tick();
    const std::uint8_t tmp = as.load8(a + i);
    as.store8(a + i, as.load8(b + i));
    as.store8(b + i, tmp);
  }
}

SimValue fn_qsort(CallContext& ctx) {
  const Addr base = ctx.arg_ptr(0);
  const std::uint64_t nmemb = ctx.arg_size(1);
  const std::uint64_t size = ctx.arg_size(2);
  const Addr compar = ctx.arg_ptr(3);
  if (nmemb < 2) {
    if (nmemb == 1) ctx.machine.mem().check(base, size, mem::Perm::kRead);
    return SimValue::integer(0);
  }
  // Insertion sort: simple, stable enough for libc semantics, and every
  // comparison/move ticks so pathological inputs hit the hang oracle.
  for (std::uint64_t i = 1; i < nmemb; ++i) {
    for (std::uint64_t j = i; j > 0; --j) {
      ctx.machine.tick();
      const Addr prev = base + (j - 1) * size;
      const Addr cur = base + j * size;
      if (call_comparator(ctx, compar, prev, cur) <= 0) break;
      swap_elements(ctx, prev, cur, size);
    }
  }
  return SimValue::integer(0);
}

SimValue fn_bsearch(CallContext& ctx) {
  const Addr key = ctx.arg_ptr(0);
  const Addr base = ctx.arg_ptr(1);
  std::uint64_t lo = 0;
  std::uint64_t hi = ctx.arg_size(2);
  const std::uint64_t size = ctx.arg_size(3);
  const Addr compar = ctx.arg_ptr(4);
  while (lo < hi) {
    ctx.machine.tick();
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const Addr elem = base + mid * size;
    const int cmp = call_comparator(ctx, compar, key, elem);
    if (cmp == 0) return SimValue::ptr(elem);
    if (cmp < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return SimValue::null();
}

}  // namespace

void register_sort_funcs(SharedLibrary& lib) {
  lib.add(make_symbol(
      "qsort", "sort an array with a caller-supplied comparator",
      "void qsort(void *base, size_t nmemb, size_t size, "
      "int (*compar)(const void *, const void *));",
      {"NONNULL 1 4", "ARG 1 BUF WRITE SIZE mul(arg(2),arg(3))", "ARG 4 FUNCPTR",
       "CALLS memcpy"},
      fn_qsort));
  lib.add(make_symbol(
      "bsearch", "binary-search a sorted array with a caller-supplied comparator",
      "void *bsearch(const void *key, const void *base, size_t nmemb, size_t size, "
      "int (*compar)(const void *, const void *));",
      {"NONNULL 1 2 5", "ARG 2 BUF READ SIZE mul(arg(3),arg(4))", "ARG 5 FUNCPTR"},
      fn_bsearch));
}

}  // namespace healers::simlib
