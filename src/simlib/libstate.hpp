// Per-process state of the simulated C runtime: the in-memory filesystem and
// open-file table behind the stdio subset, strtok's hidden cursor, the
// rand() state, and the environment block. One LibState lives in each
// simulated process (linker::Process); the fault injector's campaign engine
// snapshots it (together with the machine) to reset a testbed between
// probes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "memmodel/addr_space.hpp"

namespace healers::simlib {

class SimValue;
struct CallContext;
class CallObserver;

// Tiny in-memory filesystem. Paths are flat strings ("/etc/motd").
class SimFileSystem {
 public:
  void put(const std::string& path, std::string contents);
  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] const std::string* contents(const std::string& path) const;
  std::string* contents_mut(const std::string& path);
  void remove(const std::string& path);
  [[nodiscard]] std::vector<std::string> paths() const;

 private:
  std::map<std::string, std::string> files_;
};

// One open stdio stream. The FILE object the application holds is a heap
// allocation in *simulated* memory whose layout is:
//   +0  u64 magic  (kFileMagic)
//   +8  u64 index  into LibState::open_files
// A garbage FILE* therefore faults naturally when the library loads the
// magic through it, or aborts when the magic does not match.
struct OpenFile {
  std::string path;
  bool readable = false;
  bool writable = false;
  bool append = false;
  std::uint64_t pos = 0;
  bool live = false;        // false after fclose (slot reusable)
  bool eof = false;
  mem::Addr file_obj = 0;   // simulated FILE* backing this slot
};

inline constexpr std::uint64_t kFileMagic = 0xF11EF11E01234567ULL;
inline constexpr std::uint64_t kFileObjSize = 16;
inline constexpr std::size_t kMaxOpenFiles = 64;

class LibState {
 public:
  SimFileSystem fs;

  // strtok's static cursor (simulated address of the next scan position).
  mem::Addr strtok_cursor = 0;

  // Lazily mapped ctype classification table (see detail::ctype_table).
  mem::Addr ctype_table = 0;

  // Lazily allocated static buffer shared by strerror() results.
  mem::Addr strerror_buf = 0;

  // rand()/srand() state (glibc-style minimal LCG).
  std::uint64_t rand_state = 1;

  // Environment: name -> interned "value" address is resolved lazily by
  // getenv via Machine::intern_string; store host-side strings here.
  std::map<std::string, std::string> env;

  std::vector<OpenFile> open_files;

  // Text written through puts/printf (the process's captured stdout).
  std::string stdout_capture;

  // The process's stdin stream (consumed by gets/getchar).
  std::string stdin_content;
  std::size_t stdin_pos = 0;

  // Application callbacks reachable through function pointers (qsort
  // comparators and the like): code address -> behaviour. Populated by
  // Process::register_callback; library code calling through an address NOT
  // in this table is a jump into data (a crash).
  std::map<mem::Addr, std::function<SimValue(CallContext&)>> callbacks;

  // Incident flight recorder hook (see simlib/observer.hpp). Not part of the
  // logical C-runtime state: linker::Process owns the authoritative pointer
  // and re-asserts it after every restore(), so snapshots taken before a
  // recorder was attached cannot silently detach it.
  CallObserver* observer = nullptr;

  // Allocates (or reuses) an open-file slot; nullopt when kMaxOpenFiles
  // streams are already open (fopen then fails with EMFILE).
  std::optional<std::size_t> allocate_slot();

  // --- snapshot / restore ---
  // The whole C-runtime state is value-copyable; a snapshot is simply a
  // copy, and restore assigns it back (simulated addresses stay valid
  // because Machine::restore rewinds the address space in lockstep).
  [[nodiscard]] LibState snapshot() const { return *this; }
  void restore(const LibState& snap) { *this = snap; }
};

}  // namespace healers::simlib
