// Memory family: mem* block operations and the allocation entry points that
// forward to the simulated chunked heap. calloc keeps the historical
// multiplication-overflow bug (CVE-2002-0391 era): nmemb*size wraps silently.
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;
using mem::AddressSpace;

SimValue fn_memcpy(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  const Addr src = ctx.arg_ptr(1);
  const std::uint64_t n = ctx.arg_size(2);
  // Forward byte copy, no overlap handling (memcpy's historical laxity).
  for (std::uint64_t i = 0; i < n; ++i) {
    ctx.machine.tick();
    as.store8(dest + i, as.load8(src + i));
  }
  return SimValue::ptr(dest);
}

SimValue fn_memmove(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  const Addr src = ctx.arg_ptr(1);
  const std::uint64_t n = ctx.arg_size(2);
  if (dest <= src) {
    for (std::uint64_t i = 0; i < n; ++i) {
      ctx.machine.tick();
      as.store8(dest + i, as.load8(src + i));
    }
  } else {
    for (std::uint64_t i = n; i > 0; --i) {
      ctx.machine.tick();
      as.store8(dest + i - 1, as.load8(src + i - 1));
    }
  }
  return SimValue::ptr(dest);
}

SimValue fn_memset(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  const auto value = static_cast<std::uint8_t>(ctx.arg_int(1));
  const std::uint64_t n = ctx.arg_size(2);
  for (std::uint64_t i = 0; i < n; ++i) {
    ctx.machine.tick();
    as.store8(dest + i, value);
  }
  return SimValue::ptr(dest);
}

SimValue fn_memcmp(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr a = ctx.arg_ptr(0);
  const Addr b = ctx.arg_ptr(1);
  const std::uint64_t n = ctx.arg_size(2);
  for (std::uint64_t i = 0; i < n; ++i) {
    ctx.machine.tick();
    const int ca = as.load8(a + i);
    const int cb = as.load8(b + i);
    if (ca != cb) return SimValue::integer(ca < cb ? -1 : 1);
  }
  return SimValue::integer(0);
}

SimValue fn_memchr(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const auto target = static_cast<std::uint8_t>(ctx.arg_int(1));
  const std::uint64_t n = ctx.arg_size(2);
  for (std::uint64_t i = 0; i < n; ++i) {
    ctx.machine.tick();
    if (as.load8(s + i) == target) return SimValue::ptr(s + i);
  }
  return SimValue::null();
}

SimValue fn_malloc(CallContext& ctx) {
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().malloc(ctx.arg_size(0));
  if (p == 0) ctx.machine.set_err(kENOMEM);
  return SimValue::ptr(p);
}

SimValue fn_free(CallContext& ctx) {
  ctx.machine.tick(8);
  ctx.machine.heap().free(ctx.arg_ptr(0));
  return SimValue::integer(0);
}

SimValue fn_calloc(CallContext& ctx) {
  // Historical bug preserved: the multiplication wraps, so
  // calloc(SIZE_MAX/2+1, 2) quietly allocates ~0 bytes.
  const std::uint64_t total = ctx.arg_size(0) * ctx.arg_size(1);
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().malloc(total);
  if (p == 0) {
    ctx.machine.set_err(kENOMEM);
    return SimValue::null();
  }
  AddressSpace& as = ctx.machine.mem();
  for (std::uint64_t i = 0; i < total; ++i) {
    ctx.machine.tick();
    as.store8(p + i, 0);
  }
  return SimValue::ptr(p);
}

SimValue fn_realloc(CallContext& ctx) {
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().realloc(ctx.arg_ptr(0), ctx.arg_size(1));
  if (p == 0 && ctx.arg_size(1) != 0) ctx.machine.set_err(kENOMEM);
  return SimValue::ptr(p);
}

}  // namespace

void register_memory_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("memcpy", "copy a memory block",
                      "void *memcpy(void *dest, const void *src, size_t n);",
                      {"NONNULL 1 2", "ARG 2 BUF READ SIZE arg(3)",
                       "ARG 1 BUF WRITE SIZE arg(3)"},
                      fn_memcpy));
  lib.add(make_symbol("memmove", "copy a possibly overlapping memory block",
                      "void *memmove(void *dest, const void *src, size_t n);",
                      {"NONNULL 1 2", "ARG 2 BUF READ SIZE arg(3)",
                       "ARG 1 BUF WRITE SIZE arg(3)"},
                      fn_memmove));
  lib.add(make_symbol("memset", "fill a memory block",
                      "void *memset(void *s, int c, size_t n);",
                      {"NONNULL 1", "ARG 1 BUF WRITE SIZE arg(3)"}, fn_memset));
  lib.add(make_symbol("memcmp", "compare two memory blocks",
                      "int memcmp(const void *s1, const void *s2, size_t n);",
                      {"NONNULL 1 2", "ARG 1 BUF READ SIZE arg(3)",
                       "ARG 2 BUF READ SIZE arg(3)"},
                      fn_memcmp));
  lib.add(make_symbol("memchr", "locate a byte in a memory block",
                      "void *memchr(const void *s, int c, size_t n);",
                      {"NONNULL 1", "ARG 1 BUF READ SIZE arg(3)"}, fn_memchr));
  lib.add(make_symbol("malloc", "allocate heap memory",
                      "void *malloc(size_t size);", {"HEAP ALLOC", "ERRNO ENOMEM"},
                      fn_malloc));
  lib.add(make_symbol("free", "release heap memory",
                      "void free(void *ptr);",
                      {"HEAP FREE", "ARG 1 HEAPPTR", "ALLOWNULL 1"}, fn_free));
  lib.add(make_symbol("calloc", "allocate zeroed heap memory",
                      "void *calloc(size_t nmemb, size_t size);",
                      {"HEAP ALLOC", "ERRNO ENOMEM"}, fn_calloc));
  lib.add(make_symbol("realloc", "resize a heap allocation",
                      "void *realloc(void *ptr, size_t size);",
                      {"HEAP ALLOC", "ARG 1 HEAPPTR", "ALLOWNULL 1", "ERRNO ENOMEM"},
                      fn_realloc));
}

}  // namespace healers::simlib
