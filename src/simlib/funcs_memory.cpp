// Memory family: mem* block operations and the allocation entry points that
// forward to the simulated chunked heap. calloc keeps the historical
// multiplication-overflow bug (CVE-2002-0391 era): nmemb*size wraps silently.
#include "simlib/bulk.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;

SimValue fn_memcpy(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  // Forward byte copy, no overlap handling (memcpy's historical laxity):
  // copy_forward self-replicates on forward overlap just like the byte loop.
  bulk::copy_forward(ctx.machine, dest, ctx.arg_ptr(1), ctx.arg_size(2));
  return SimValue::ptr(dest);
}

SimValue fn_memmove(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  const Addr src = ctx.arg_ptr(1);
  const std::uint64_t n = ctx.arg_size(2);
  if (dest <= src) {
    bulk::copy_forward(ctx.machine, dest, src, n);
  } else {
    bulk::copy_backward(ctx.machine, dest, src, n);
  }
  return SimValue::ptr(dest);
}

SimValue fn_memset(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  bulk::fill(ctx.machine, dest, static_cast<std::uint8_t>(ctx.arg_int(1)), ctx.arg_size(2));
  return SimValue::ptr(dest);
}

SimValue fn_memcmp(CallContext& ctx) {
  return SimValue::integer(bulk::compare(ctx.machine, ctx.arg_ptr(0), ctx.arg_ptr(1),
                                         ctx.arg_size(2), /*stop_at_nul=*/false,
                                         /*fold_case=*/false));
}

SimValue fn_memchr(CallContext& ctx) {
  const Addr s = ctx.arg_ptr(0);
  const std::uint64_t n = ctx.arg_size(2);
  const std::uint64_t k =
      bulk::find_byte(ctx.machine, s, static_cast<std::uint8_t>(ctx.arg_int(1)), n);
  return k < n ? SimValue::ptr(s + k) : SimValue::null();
}

SimValue fn_malloc(CallContext& ctx) {
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().malloc(ctx.arg_size(0));
  if (p == 0) ctx.machine.set_err(kENOMEM);
  return SimValue::ptr(p);
}

SimValue fn_free(CallContext& ctx) {
  ctx.machine.tick(8);
  ctx.machine.heap().free(ctx.arg_ptr(0));
  return SimValue::integer(0);
}

SimValue fn_calloc(CallContext& ctx) {
  // Historical bug preserved: the multiplication wraps, so
  // calloc(SIZE_MAX/2+1, 2) quietly allocates ~0 bytes.
  const std::uint64_t total = ctx.arg_size(0) * ctx.arg_size(1);
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().malloc(total);
  if (p == 0) {
    ctx.machine.set_err(kENOMEM);
    return SimValue::null();
  }
  bulk::fill(ctx.machine, p, 0, total);
  return SimValue::ptr(p);
}

SimValue fn_realloc(CallContext& ctx) {
  ctx.machine.tick(8);
  const Addr p = ctx.machine.heap().realloc(ctx.arg_ptr(0), ctx.arg_size(1));
  if (p == 0 && ctx.arg_size(1) != 0) ctx.machine.set_err(kENOMEM);
  return SimValue::ptr(p);
}

}  // namespace

void register_memory_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("memcpy", "copy a memory block",
                      "void *memcpy(void *dest, const void *src, size_t n);",
                      {"NONNULL 1 2", "ARG 2 BUF READ SIZE arg(3)",
                       "ARG 1 BUF WRITE SIZE arg(3)"},
                      fn_memcpy));
  lib.add(make_symbol("memmove", "copy a possibly overlapping memory block",
                      "void *memmove(void *dest, const void *src, size_t n);",
                      {"NONNULL 1 2", "ARG 2 BUF READ SIZE arg(3)",
                       "ARG 1 BUF WRITE SIZE arg(3)"},
                      fn_memmove));
  lib.add(make_symbol("memset", "fill a memory block",
                      "void *memset(void *s, int c, size_t n);",
                      {"NONNULL 1", "ARG 1 BUF WRITE SIZE arg(3)"}, fn_memset));
  lib.add(make_symbol("memcmp", "compare two memory blocks",
                      "int memcmp(const void *s1, const void *s2, size_t n);",
                      {"NONNULL 1 2", "ARG 1 BUF READ SIZE arg(3)",
                       "ARG 2 BUF READ SIZE arg(3)"},
                      fn_memcmp));
  lib.add(make_symbol("memchr", "locate a byte in a memory block",
                      "void *memchr(const void *s, int c, size_t n);",
                      {"NONNULL 1", "ARG 1 BUF READ SIZE arg(3)"}, fn_memchr));
  lib.add(make_symbol("malloc", "allocate heap memory",
                      "void *malloc(size_t size);", {"HEAP ALLOC", "ERRNO ENOMEM"},
                      fn_malloc));
  lib.add(make_symbol("free", "release heap memory",
                      "void free(void *ptr);",
                      {"HEAP FREE", "ARG 1 HEAPPTR", "ALLOWNULL 1"}, fn_free));
  lib.add(make_symbol("calloc", "allocate zeroed heap memory",
                      "void *calloc(size_t nmemb, size_t size);",
                      {"HEAP ALLOC", "ERRNO ENOMEM", "CALLS malloc memset"}, fn_calloc));
  lib.add(make_symbol("realloc", "resize a heap allocation",
                      "void *realloc(void *ptr, size_t size);",
                      {"HEAP ALLOC", "ARG 1 HEAPPTR", "ALLOWNULL 1", "ERRNO ENOMEM",
                       "CALLS malloc memcpy free"},
                      fn_realloc));
}

}  // namespace healers::simlib
