// errno constants of the simulated C runtime.
//
// Deliberately mirrors the classic Unix numbering so profiling reports
// (Fig 5: "causes of errors, classified by errnos") read naturally. The
// profiling wrapper's errno histograms are indexed by these values and
// rendered through errno_name()/errno_describe().
#pragma once

#include <string>

namespace healers::simlib {

inline constexpr int kEOK = 0;
inline constexpr int kEPERM = 1;
inline constexpr int kENOENT = 2;
inline constexpr int kEINTR = 4;
inline constexpr int kEIO = 5;
inline constexpr int kEBADF = 9;
inline constexpr int kENOMEM = 12;
inline constexpr int kEACCES = 13;
inline constexpr int kEFAULT = 14;
inline constexpr int kEEXIST = 17;
inline constexpr int kEINVAL = 22;
inline constexpr int kEMFILE = 24;
inline constexpr int kENOSPC = 28;
inline constexpr int kEDOM = 33;
inline constexpr int kERANGE = 34;

// Upper bound for errno histograms (paper Fig 3: MAX_ERRNO).
inline constexpr int kMaxErrno = 64;

// "EINVAL" etc.; "E<n>" for unnamed values in range, "E?" outside.
[[nodiscard]] std::string errno_name(int err);
// Short human text: "Invalid argument".
[[nodiscard]] std::string errno_describe(int err);

}  // namespace healers::simlib
