// Simulated shared libraries.
//
// A SharedLibrary packages callable symbols together with the two textual
// artifacts the HEALERS pipeline consumes (paper §2.2, Fig 2):
//   * the C declaration of each function (the "header file"), and
//   * a man-page document per function (NAME/SYNOPSIS/NOTES), whose NOTES
//     section carries the machine-readable semantic annotations that stand
//     in for the paper's "some manual editing may be needed" step.
//
// The toolkit never reads prototypes out of band: it parses header_text()
// and manpages with src/parser, exactly as the paper's tool parsed glibc's
// headers and man pages.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simlib/value.hpp"

namespace healers::simlib {

struct Symbol {
  std::string name;
  CFunction fn;
  std::string declaration;  // e.g. "char *strcpy(char *dest, const char *src);"
  std::string manpage;      // NAME/SYNOPSIS/NOTES document
};

class SharedLibrary {
 public:
  SharedLibrary(std::string soname, std::string version)
      : soname_(std::move(soname)), version_(std::move(version)) {}

  // Registers a symbol; throws std::invalid_argument on duplicates.
  void add(Symbol symbol);

  [[nodiscard]] const std::string& soname() const noexcept { return soname_; }
  [[nodiscard]] const std::string& version() const noexcept { return version_; }

  [[nodiscard]] const Symbol* find(const std::string& name) const noexcept;
  [[nodiscard]] bool defines(const std::string& name) const noexcept {
    return find(name) != nullptr;
  }
  // Symbol names in deterministic (sorted) order — the toolkit's "list all
  // functions defined in the library" (demo §3.1).
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }

  // Concatenated declarations, parseable as a C header by src/parser.
  [[nodiscard]] std::string header_text() const;

  // Content fingerprint (FNV-1a over soname, version, and every symbol's
  // name, declaration and man page). Campaign results are a pure function
  // of the library content it hashes — the toolkit keys its derive cache on
  // it so an updated library never serves stale specs.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  std::string soname_;
  std::string version_;
  std::map<std::string, Symbol> symbols_;
};

// Builders for the stock simulated libraries (see each funcs_*.cpp):
//   libsimc.so.1  — strings, memory, conversion, ctype, misc (45+ functions)
//   libsimio.so.1 — stdio subset over the in-memory filesystem
//   libsimm.so.1  — math subset (robust by construction: a contrast library)
[[nodiscard]] SharedLibrary build_libsimc();
[[nodiscard]] SharedLibrary build_libsimio();
[[nodiscard]] SharedLibrary build_libsimm();

}  // namespace healers::simlib
