// String family of the simulated C library.
//
// Every function reproduces the fragile pre-hardening semantics: pointers
// are chased without NULL checks, destinations are written without bounds,
// and scans run until a terminator or a fault. Each processed byte costs one
// machine tick so that unterminated scans over huge mappings surface as
// hangs (the driver-timeout outcome).
#include <cstring>

#include "simlib/bulk.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;
using mem::AddressSpace;

// strlen core: scan until NUL, ticking per byte (bulked, oracle-identical).
std::uint64_t scan_len(CallContext& ctx, Addr s) {
  return bulk::scan_len(ctx.machine, s);
}

SimValue fn_strlen(CallContext& ctx) {
  return SimValue::integer(static_cast<std::int64_t>(scan_len(ctx, ctx.arg_ptr(0))));
}

SimValue fn_strcpy(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  bulk::copy_cstr(ctx.machine, dest, ctx.arg_ptr(1));
  return SimValue::ptr(dest);
}

SimValue fn_strncpy(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  const std::uint64_t n = ctx.arg_size(2);
  // Copy through the terminator, then the spec-faithful zero fill to n.
  const std::uint64_t copied = bulk::copy_cstr_bounded(ctx.machine, dest, ctx.arg_ptr(1), n);
  bulk::fill(ctx.machine, dest + copied, 0, n - copied);
  return SimValue::ptr(dest);
}

SimValue fn_strcat(CallContext& ctx) {
  const Addr dest = ctx.arg_ptr(0);
  const std::uint64_t base = scan_len(ctx, dest);
  bulk::copy_cstr(ctx.machine, dest + base, ctx.arg_ptr(1));
  return SimValue::ptr(dest);
}

SimValue fn_strncat(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  const Addr src = ctx.arg_ptr(1);
  const std::uint64_t n = ctx.arg_size(2);
  const std::uint64_t base = scan_len(ctx, dest);
  std::uint64_t i = 0;
  for (; i < n; ++i) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(src + i);
    if (byte == 0) break;
    as.store8(dest + base + i, byte);
  }
  as.store8(dest + base + i, 0);
  return SimValue::ptr(dest);
}

SimValue fn_strcmp(CallContext& ctx) {
  return SimValue::integer(bulk::compare(ctx.machine, ctx.arg_ptr(0), ctx.arg_ptr(1),
                                         ~std::uint64_t{0}, /*stop_at_nul=*/true,
                                         /*fold_case=*/false));
}

SimValue fn_strncmp(CallContext& ctx) {
  return SimValue::integer(bulk::compare(ctx.machine, ctx.arg_ptr(0), ctx.arg_ptr(1),
                                         ctx.arg_size(2), /*stop_at_nul=*/true,
                                         /*fold_case=*/false));
}

SimValue fn_strchr(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const auto target = static_cast<std::uint8_t>(ctx.arg_int(1));
  std::uint64_t i = 0;
  while (true) {
    const std::uint64_t extent = as.span_extent(s + i, mem::Perm::kRead);
    if (extent == 0) {
      bulk::replay_load(ctx.machine, s + i);
      continue;
    }
    const std::byte* p = as.span(s + i, extent, mem::Perm::kRead);
    const void* ht = std::memchr(p, target, extent);
    const void* h0 = std::memchr(p, 0, extent);
    const auto off = [p](const void* hit, std::uint64_t none) {
      return hit != nullptr
                 ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p)
                 : none;
    };
    const std::uint64_t kt = off(ht, extent);
    const std::uint64_t k0 = off(h0, extent);
    const std::uint64_t k = std::min(kt, k0);
    if (k < extent) {
      bulk::settle(ctx.machine, ctx.machine.budget_units(k + 1), k + 1);
      // The reference checks the target before the terminator, so a NUL
      // target matches the terminator itself.
      return kt <= k0 ? SimValue::ptr(s + i + k) : SimValue::null();
    }
    bulk::settle(ctx.machine, ctx.machine.budget_units(extent), extent);
    i += extent;
  }
}

SimValue fn_strrchr(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const auto target = static_cast<std::uint8_t>(ctx.arg_int(1));
  Addr found = 0;
  bool any = false;
  std::uint64_t i = 0;
  while (true) {
    const std::uint64_t extent = as.span_extent(s + i, mem::Perm::kRead);
    if (extent == 0) {
      bulk::replay_load(ctx.machine, s + i);
      continue;
    }
    const std::byte* p = as.span(s + i, extent, mem::Perm::kRead);
    const void* h0 = std::memchr(p, 0, extent);
    // The terminator byte is examined too (a NUL target matches it).
    const std::uint64_t limit =
        h0 != nullptr
            ? static_cast<std::uint64_t>(static_cast<const std::byte*>(h0) - p) + 1
            : extent;
    for (std::uint64_t k = limit; k > 0; --k) {
      if (std::to_integer<std::uint8_t>(p[k - 1]) == target) {
        found = s + i + k - 1;
        any = true;
        break;
      }
    }
    bulk::settle(ctx.machine, ctx.machine.budget_units(limit), limit);
    if (h0 != nullptr) break;
    i += extent;
  }
  return any ? SimValue::ptr(found) : SimValue::null();
}

SimValue fn_strstr(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr hay = ctx.arg_ptr(0);
  const Addr needle = ctx.arg_ptr(1);
  ctx.machine.tick();
  if (as.load8(needle) == 0) return SimValue::ptr(hay);
  for (std::uint64_t i = 0;; ++i) {
    ctx.machine.tick();
    const std::uint8_t hc = as.load8(hay + i);
    if (hc == 0) return SimValue::null();
    std::uint64_t j = 0;
    while (true) {
      ctx.machine.tick();
      const std::uint8_t nc = as.load8(needle + j);
      if (nc == 0) return SimValue::ptr(hay + i);
      if (as.load8(hay + i + j) != nc) break;
      ++j;
    }
  }
}

// Shared scanner for strspn/strcspn: returns the length of the initial
// segment whose bytes are (in=true) / are not (in=false) in `accept`.
SimValue span_impl(CallContext& ctx, bool in) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const Addr accept = ctx.arg_ptr(1);
  std::uint64_t i = 0;
  for (;; ++i) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) break;
    bool member = false;
    for (std::uint64_t j = 0;; ++j) {
      ctx.machine.tick();
      const std::uint8_t ac = as.load8(accept + j);
      if (ac == 0) break;
      if (ac == byte) {
        member = true;
        break;
      }
    }
    if (member != in) break;
  }
  return SimValue::integer(static_cast<std::int64_t>(i));
}

SimValue fn_strpbrk(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const Addr accept = ctx.arg_ptr(1);
  for (std::uint64_t i = 0;; ++i) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) return SimValue::null();
    for (std::uint64_t j = 0;; ++j) {
      ctx.machine.tick();
      const std::uint8_t ac = as.load8(accept + j);
      if (ac == 0) break;
      if (ac == byte) return SimValue::ptr(s + i);
    }
  }
}

SimValue fn_strdup(CallContext& ctx) {
  const Addr s = ctx.arg_ptr(0);
  const std::uint64_t len = scan_len(ctx, s);
  const Addr copy = ctx.machine.heap().malloc(len + 1);
  if (copy == 0) {
    ctx.machine.set_err(kENOMEM);
    return SimValue::null();
  }
  bulk::copy_forward(ctx.machine, copy, s, len + 1);
  return SimValue::ptr(copy);
}

SimValue fn_strtok(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  Addr s = ctx.arg_ptr(0);
  const Addr delim = ctx.arg_ptr(1);
  if (s == 0) {
    // Continue from the hidden cursor; classic crash when strtok(NULL, d)
    // is the first-ever call (cursor 0 -> load at 0 faults).
    s = ctx.state.strtok_cursor;
  }
  const auto is_delim = [&](std::uint8_t byte) {
    for (std::uint64_t j = 0;; ++j) {
      ctx.machine.tick();
      const std::uint8_t dc = as.load8(delim + j);
      if (dc == 0) return false;
      if (dc == byte) return true;
    }
  };
  // Skip leading delimiters.
  std::uint64_t i = 0;
  while (true) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) {
      ctx.state.strtok_cursor = s + i;
      return SimValue::null();
    }
    if (!is_delim(byte)) break;
    ++i;
  }
  const Addr token = s + i;
  while (true) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) {
      ctx.state.strtok_cursor = s + i;
      return SimValue::ptr(token);
    }
    if (is_delim(byte)) {
      as.store8(s + i, 0);
      ctx.state.strtok_cursor = s + i + 1;
      return SimValue::ptr(token);
    }
    ++i;
  }
}

SimValue fn_strerror(CallContext& ctx) {
  const int err = static_cast<int>(ctx.arg_int(0));
  // glibc-style: returns a pointer to a static buffer, overwritten per call.
  if (ctx.state.strerror_buf == 0) {
    mem::Region& region = ctx.machine.mem().map(128, mem::Perm::kReadWrite,
                                                mem::RegionKind::kData, "strerror_buf");
    ctx.state.strerror_buf = region.base;
  }
  const std::string text = errno_describe(err);
  ctx.machine.tick(text.size());
  ctx.machine.mem().write_cstring(ctx.state.strerror_buf, text.substr(0, 127));
  return SimValue::ptr(ctx.state.strerror_buf);
}

SimValue fn_strcoll(CallContext& ctx) {
  // C locale: strcoll == strcmp.
  return fn_strcmp(ctx);
}

SimValue fn_strnlen(CallContext& ctx) {
  return SimValue::integer(static_cast<std::int64_t>(
      bulk::scan_len_bounded(ctx.machine, ctx.arg_ptr(0), ctx.arg_size(1))));
}

SimValue fn_strcasecmp(CallContext& ctx) {
  return SimValue::integer(bulk::compare(ctx.machine, ctx.arg_ptr(0), ctx.arg_ptr(1),
                                         ~std::uint64_t{0}, /*stop_at_nul=*/true,
                                         /*fold_case=*/true));
}

SimValue fn_strncasecmp(CallContext& ctx) {
  return SimValue::integer(bulk::compare(ctx.machine, ctx.arg_ptr(0), ctx.arg_ptr(1),
                                         ctx.arg_size(2), /*stop_at_nul=*/true,
                                         /*fold_case=*/true));
}

// The reentrant tokenizer: cursor kept in *saveptr instead of hidden state.
SimValue fn_strtok_r(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  Addr s = ctx.arg_ptr(0);
  const Addr delim = ctx.arg_ptr(1);
  const Addr saveptr = ctx.arg_ptr(2);
  if (s == 0) {
    s = as.load64(saveptr);  // continuation: read the cursor (crashes on garbage)
  }
  const auto is_delim = [&](std::uint8_t byte) {
    for (std::uint64_t j = 0;; ++j) {
      ctx.machine.tick();
      const std::uint8_t dc = as.load8(delim + j);
      if (dc == 0) return false;
      if (dc == byte) return true;
    }
  };
  std::uint64_t i = 0;
  while (true) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) {
      as.store64(saveptr, s + i);
      return SimValue::null();
    }
    if (!is_delim(byte)) break;
    ++i;
  }
  const Addr token = s + i;
  while (true) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(s + i);
    if (byte == 0) {
      as.store64(saveptr, s + i);
      return SimValue::ptr(token);
    }
    if (is_delim(byte)) {
      as.store8(s + i, 0);
      as.store64(saveptr, s + i + 1);
      return SimValue::ptr(token);
    }
    ++i;
  }
}

}  // namespace

void register_string_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("strlen", "compute the length of a string",
                      "size_t strlen(const char *s);",
                      {"NONNULL 1", "ARG 1 CSTRING"}, fn_strlen));
  lib.add(make_symbol("strcpy", "copy a string",
                      "char *strcpy(char *dest, const char *src);",
                      {"NONNULL 1 2", "ARG 2 CSTRING",
                       "ARG 1 BUF WRITE SIZE cstrlen(2)+1", "CALLS strlen memcpy"},
                      fn_strcpy));
  lib.add(make_symbol("strncpy", "copy a bounded string",
                      "char *strncpy(char *dest, const char *src, size_t n);",
                      {"NONNULL 1 2", "ARG 2 CSTRING", "ARG 1 BUF WRITE SIZE arg(3)",
                       "CALLS strnlen"},
                      fn_strncpy));
  lib.add(make_symbol("strcat", "concatenate two strings",
                      "char *strcat(char *dest, const char *src);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING",
                       "ARG 1 BUF WRITE SIZE cstrlen(1)+cstrlen(2)+1",
                       "CALLS strlen memcpy"},
                      fn_strcat));
  lib.add(make_symbol("strncat", "concatenate a bounded string",
                      "char *strncat(char *dest, const char *src, size_t n);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING",
                       "ARG 1 BUF WRITE SIZE cstrlen(1)+min(arg(3),cstrlen(2))+1",
                       "CALLS strlen strnlen"},
                      fn_strncat));
  lib.add(make_symbol("strcmp", "compare two strings",
                      "int strcmp(const char *s1, const char *s2);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"}, fn_strcmp));
  lib.add(make_symbol("strncmp", "compare two bounded strings",
                      "int strncmp(const char *s1, const char *s2, size_t n);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"}, fn_strncmp));
  lib.add(make_symbol("strchr", "locate a character in a string",
                      "char *strchr(const char *s, int c);",
                      {"NONNULL 1", "ARG 1 CSTRING"}, fn_strchr));
  lib.add(make_symbol("strrchr", "locate a character in a string, from the end",
                      "char *strrchr(const char *s, int c);",
                      {"NONNULL 1", "ARG 1 CSTRING"}, fn_strrchr));
  lib.add(make_symbol("strstr", "locate a substring",
                      "char *strstr(const char *haystack, const char *needle);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING",
                       "CALLS strlen strncmp"},
                      fn_strstr));
  lib.add(make_symbol("strspn", "span of accepted characters",
                      "size_t strspn(const char *s, const char *accept);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"},
                      [](CallContext& ctx) { return span_impl(ctx, true); }));
  lib.add(make_symbol("strcspn", "span of rejected characters",
                      "size_t strcspn(const char *s, const char *reject);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"},
                      [](CallContext& ctx) { return span_impl(ctx, false); }));
  lib.add(make_symbol("strpbrk", "locate any of a set of characters",
                      "char *strpbrk(const char *s, const char *accept);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"}, fn_strpbrk));
  lib.add(make_symbol("strdup", "duplicate a string on the heap",
                      "char *strdup(const char *s);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ERRNO ENOMEM",
                       "CALLS strlen malloc memcpy"},
                      fn_strdup));
  lib.add(make_symbol("strtok", "tokenize a string (stateful)",
                      "char *strtok(char *str, const char *delim);",
                      {"NONNULL 2", "ARG 2 CSTRING", "ARG 1 CSTRING", "ALLOWNULL 1",
                       "ARG 1 CURSOR", "STATEFUL", "CALLS strspn strcspn"},
                      fn_strtok));
  lib.add(make_symbol("strerror", "describe an errno value",
                      "char *strerror(int errnum);", {"STATEFUL"}, fn_strerror));
  lib.add(make_symbol("strcoll", "compare strings in the current locale",
                      "int strcoll(const char *s1, const char *s2);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING", "CALLS strcmp"},
                      fn_strcoll));
  lib.add(make_symbol("strnlen", "compute a bounded string length",
                      "size_t strnlen(const char *s, size_t maxlen);",
                      {"NONNULL 1", "ARG 1 BUF READ SIZE min(arg(2),cstrlen(1)+1)"},
                      fn_strnlen));
  lib.add(make_symbol("strcasecmp", "compare two strings ignoring case",
                      "int strcasecmp(const char *s1, const char *s2);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"}, fn_strcasecmp));
  lib.add(make_symbol("strncasecmp", "compare two bounded strings ignoring case",
                      "int strncasecmp(const char *s1, const char *s2, size_t n);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING"}, fn_strncasecmp));
  lib.add(make_symbol("strtok_r", "tokenize a string (reentrant)",
                      "char *strtok_r(char *str, const char *delim, char **saveptr);",
                      {"NONNULL 2 3", "ARG 2 CSTRING", "ALLOWNULL 1", "ARG 1 CSTRING",
                       "ARG 1 SAVEPTR 3", "ARG 3 BUF WRITE SIZE 8",
                       "CALLS strspn strcspn"},
                      fn_strtok_r));
}

}  // namespace healers::simlib
