// Value and call model for the simulated C library.
//
// Library functions receive their arguments as SimValues (the moral
// equivalent of the registers a real call would pass) and execute against
// the simulated machine. Everything a function touches — memory, errno, the
// step/cycle clocks, per-process C-runtime state — is reachable from the
// CallContext, so functions are pure with respect to host state and a whole
// call can be replayed deterministically by the fault injector.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "memmodel/machine.hpp"

namespace healers::simlib {

class LibState;

// One C scalar crossing the call boundary. C's implicit conversions are
// modeled by the accessors (as varargs promotion would): integers and
// pointers interconvert freely — which is precisely what lets the fault
// injector pass wild integers where pointers are expected.
class SimValue {
 public:
  enum class Kind : std::uint8_t { kInt, kFloat, kPtr };

  static SimValue integer(std::int64_t v) { return SimValue(Kind::kInt, v, 0.0, 0); }
  static SimValue fp(double v) { return SimValue(Kind::kFloat, 0, v, 0); }
  static SimValue ptr(mem::Addr v) { return SimValue(Kind::kPtr, 0, 0.0, v); }
  static SimValue null() { return ptr(0); }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  [[nodiscard]] std::int64_t as_int() const noexcept {
    switch (kind_) {
      case Kind::kInt: return int_;
      case Kind::kFloat: return static_cast<std::int64_t>(float_);
      case Kind::kPtr: return static_cast<std::int64_t>(ptr_);
    }
    return 0;
  }
  [[nodiscard]] std::uint64_t as_uint() const noexcept {
    return static_cast<std::uint64_t>(as_int());
  }
  [[nodiscard]] mem::Addr as_ptr() const noexcept {
    return kind_ == Kind::kPtr ? ptr_ : static_cast<mem::Addr>(as_int());
  }
  [[nodiscard]] double as_double() const noexcept {
    return kind_ == Kind::kFloat ? float_ : static_cast<double>(as_int());
  }

  [[nodiscard]] bool operator==(const SimValue& other) const noexcept {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kInt: return int_ == other.int_;
      case Kind::kFloat: return float_ == other.float_;
      case Kind::kPtr: return ptr_ == other.ptr_;
    }
    return false;
  }

  // Debug rendering ("0x1234", "42", "3.5") used in campaign reports.
  [[nodiscard]] std::string to_string() const;

 private:
  SimValue(Kind kind, std::int64_t i, double f, mem::Addr p)
      : kind_(kind), int_(i), float_(f), ptr_(p) {}

  Kind kind_;
  std::int64_t int_;
  double float_;
  mem::Addr ptr_;
};

// Everything a simulated library function may touch during one call.
struct CallContext {
  mem::Machine& machine;
  LibState& state;
  std::vector<SimValue> args;

  [[nodiscard]] mem::Addr arg_ptr(std::size_t i) const { return args.at(i).as_ptr(); }
  [[nodiscard]] std::int64_t arg_int(std::size_t i) const { return args.at(i).as_int(); }
  [[nodiscard]] std::uint64_t arg_size(std::size_t i) const { return args.at(i).as_uint(); }
  [[nodiscard]] double arg_double(std::size_t i) const { return args.at(i).as_double(); }
};

using CFunction = std::function<SimValue(CallContext&)>;

}  // namespace healers::simlib
