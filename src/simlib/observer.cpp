#include "simlib/observer.hpp"

namespace healers::simlib {

std::string to_string(DetectionKind kind) {
  switch (kind) {
    case DetectionKind::kArgCheck:
      return "arg-check";
    case DetectionKind::kHeapSmash:
      return "heap-smash";
    case DetectionKind::kStackSmash:
      return "stack-smash";
    case DetectionKind::kAccessFault:
      return "access-fault";
    case DetectionKind::kErrorInject:
      return "error-inject";
    case DetectionKind::kRepair:
      return "repair";
    case DetectionKind::kSurfaceViolation:
      return "surface-violation";
  }
  return "?";
}

std::string to_string(RepairAction action) {
  switch (action) {
    case RepairAction::kTruncateWrite:
      return "truncate-write";
    case RepairAction::kSubstituteBounded:
      return "substitute-bounded";
    case RepairAction::kSynthesizeInput:
      return "synthesize-input";
    case RepairAction::kSafeReturn:
      return "safe-return";
  }
  return "?";
}

}  // namespace healers::simlib
