#include "simlib/observer.hpp"

namespace healers::simlib {

std::string to_string(DetectionKind kind) {
  switch (kind) {
    case DetectionKind::kArgCheck:
      return "arg-check";
    case DetectionKind::kHeapSmash:
      return "heap-smash";
    case DetectionKind::kStackSmash:
      return "stack-smash";
    case DetectionKind::kAccessFault:
      return "access-fault";
    case DetectionKind::kErrorInject:
      return "error-inject";
  }
  return "?";
}

}  // namespace healers::simlib
