#include "simlib/library.hpp"

#include <stdexcept>

namespace healers::simlib {

void SharedLibrary::add(Symbol symbol) {
  if (symbols_.contains(symbol.name)) {
    throw std::invalid_argument("SharedLibrary::add: duplicate symbol " + symbol.name);
  }
  symbols_.emplace(symbol.name, std::move(symbol));
}

const Symbol* SharedLibrary::find(const std::string& name) const noexcept {
  auto it = symbols_.find(name);
  return it == symbols_.end() ? nullptr : &it->second;
}

std::vector<std::string> SharedLibrary::names() const {
  std::vector<std::string> out;
  out.reserve(symbols_.size());
  for (const auto& [name, _] : symbols_) out.push_back(name);
  return out;
}

std::uint64_t SharedLibrary::fingerprint() const noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  const auto fold = [&hash](const std::string& text) {
    for (const unsigned char c : text) {
      hash ^= c;
      hash *= 1099511628211ULL;
    }
    hash ^= 0xff;  // field separator: "ab"+"c" and "a"+"bc" hash differently
    hash *= 1099511628211ULL;
  };
  fold(soname_);
  fold(version_);
  for (const auto& [name, symbol] : symbols_) {
    fold(name);
    fold(symbol.declaration);
    fold(symbol.manpage);
  }
  return hash;
}

std::string SharedLibrary::header_text() const {
  std::string out = "/* " + soname_ + " " + version_ + " */\n";
  for (const auto& [_, symbol] : symbols_) {
    out += symbol.declaration;
    out += '\n';
  }
  return out;
}

}  // namespace healers::simlib
