#include "simlib/value.hpp"

#include <array>

namespace healers::simlib {

namespace {
std::string hex(std::uint64_t value) {
  static constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                                   '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
  if (value == 0) return "0x0";
  std::string out;
  while (value != 0) {
    out.insert(out.begin(), kDigits[value & 0xF]);
    value >>= 4;
  }
  return "0x" + out;
}
}  // namespace

std::string SimValue::to_string() const {
  switch (kind_) {
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kFloat:
      return std::to_string(float_);
    case Kind::kPtr:
      return ptr_ == 0 ? "NULL" : hex(ptr_);
  }
  return "?";
}

}  // namespace healers::simlib
