// Miscellaneous runtime functions: environment access, pseudo-random
// numbers, and process termination (exit/abort — converted by the linker
// call engine into process exit status / abort outcome).
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;

SimValue fn_getenv(CallContext& ctx) {
  const std::string name = ctx.machine.mem().read_cstring(ctx.arg_ptr(0));
  ctx.machine.tick(name.size() + 1);
  auto it = ctx.state.env.find(name);
  if (it == ctx.state.env.end()) return SimValue::null();
  // Like a real environment block, the returned pointer aliases stable
  // storage owned by the runtime.
  return SimValue::ptr(ctx.machine.intern_string(it->second));
}

SimValue fn_rand(CallContext& ctx) {
  ctx.machine.tick();
  ctx.state.rand_state = ctx.state.rand_state * 6364136223846793005ULL + 1442695040888963407ULL;
  return SimValue::integer(static_cast<std::int64_t>((ctx.state.rand_state >> 33) & 0x7fffffff));
}

SimValue fn_srand(CallContext& ctx) {
  ctx.machine.tick();
  ctx.state.rand_state = ctx.arg_size(0);
  return SimValue::integer(0);
}

SimValue fn_exit(CallContext& ctx) {
  throw SimExit(static_cast<int>(ctx.arg_int(0)));
}

SimValue fn_abort(CallContext& ctx) {
  (void)ctx;
  throw SimAbort("abort() called");
}

}  // namespace

void register_misc_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("getenv", "look up an environment variable",
                      "char *getenv(const char *name);",
                      {"NONNULL 1", "ARG 1 CSTRING"}, fn_getenv));
  lib.add(make_symbol("rand", "pseudo-random number", "int rand(void);", {"STATEFUL"},
                      fn_rand));
  lib.add(make_symbol("srand", "seed the pseudo-random generator",
                      "void srand(unsigned int seed);", {"STATEFUL"}, fn_srand));
  lib.add(make_symbol("exit", "terminate the process",
                      "void exit(int status);", {"NORETURN"}, fn_exit));
  lib.add(make_symbol("abort", "abort the process",
                      "void abort(void);", {"NORETURN"}, fn_abort));
}

}  // namespace healers::simlib
