#include "simlib/libstate.hpp"

namespace healers::simlib {

void SimFileSystem::put(const std::string& path, std::string contents) {
  files_[path] = std::move(contents);
}

bool SimFileSystem::exists(const std::string& path) const { return files_.contains(path); }

const std::string* SimFileSystem::contents(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::string* SimFileSystem::contents_mut(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

void SimFileSystem::remove(const std::string& path) { files_.erase(path); }

std::vector<std::string> SimFileSystem::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

std::optional<std::size_t> LibState::allocate_slot() {
  for (std::size_t i = 0; i < open_files.size(); ++i) {
    if (!open_files[i].live) return i;
  }
  if (open_files.size() >= kMaxOpenFiles) return std::nullopt;
  open_files.emplace_back();
  return open_files.size() - 1;
}

}  // namespace healers::simlib
