// Assembles the stock simulated libraries from the function families.
#include "simlib/funcs.hpp"

namespace healers::simlib {

SharedLibrary build_libsimc() {
  SharedLibrary lib("libsimc.so.1", "1.0.3");
  register_string_funcs(lib);
  register_memory_funcs(lib);
  register_conv_funcs(lib);
  register_ctype_funcs(lib);
  register_misc_funcs(lib);
  register_sort_funcs(lib);
  return lib;
}

SharedLibrary build_libsimio() {
  SharedLibrary lib("libsimio.so.1", "1.0.1");
  register_stdio_funcs(lib);
  return lib;
}

SharedLibrary build_libsimm() {
  SharedLibrary lib("libsimm.so.1", "2.1.0");
  register_math_funcs(lib);
  return lib;
}

}  // namespace healers::simlib
