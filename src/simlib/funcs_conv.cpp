// Conversion family: ato*/strto* and integer helpers. The ato* functions
// keep their specified fragility (no error reporting, UB on overflow — here:
// silent wrap, crash on NULL); the strto* functions are robust-by-spec in
// everything except the string pointer itself, which mirrors real libcs and
// gives the fault injector a contrast class.
#include <cmath>

#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;
using mem::AddressSpace;

bool is_space_byte(std::uint8_t byte) {
  return byte == ' ' || byte == '\t' || byte == '\n' || byte == '\v' || byte == '\f' ||
         byte == '\r';
}

int digit_value(std::uint8_t byte, int base) {
  int value = -1;
  if (byte >= '0' && byte <= '9') value = byte - '0';
  else if (byte >= 'a' && byte <= 'z') value = byte - 'a' + 10;
  else if (byte >= 'A' && byte <= 'Z') value = byte - 'A' + 10;
  return (value >= 0 && value < base) ? value : -1;
}

// Core integer scan shared by atoi/atol/strtol/strtoul. Returns the value
// (wrapped, no range handling) and reports the end position and whether any
// digit was consumed; range handling is layered on by strto*.
struct ScanResult {
  std::uint64_t magnitude = 0;
  bool negative = false;
  bool any_digit = false;
  bool overflowed = false;
  Addr end = 0;
};

ScanResult scan_int(CallContext& ctx, Addr s, int base) {
  AddressSpace& as = ctx.machine.mem();
  ScanResult r;
  Addr p = s;
  while (true) {
    ctx.machine.tick();
    if (!is_space_byte(as.load8(p))) break;
    ++p;
  }
  const std::uint8_t sign = as.load8(p);
  if (sign == '-' || sign == '+') {
    r.negative = sign == '-';
    ++p;
  }
  if ((base == 0 || base == 16) && as.load8(p) == '0') {
    const std::uint8_t next = as.load8(p + 1);
    if (next == 'x' || next == 'X') {
      // "0x" prefix counts only when a hex digit follows.
      if (digit_value(as.load8(p + 2), 16) >= 0) {
        p += 2;
        base = 16;
      } else if (base == 0) {
        base = 8;
      }
    } else if (base == 0) {
      base = 8;
    }
  }
  if (base == 0) base = 10;
  while (true) {
    ctx.machine.tick();
    const int digit = digit_value(as.load8(p), base);
    if (digit < 0) break;
    const std::uint64_t prev = r.magnitude;
    r.magnitude = r.magnitude * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
    if (r.magnitude < prev) r.overflowed = true;
    r.any_digit = true;
    ++p;
  }
  r.end = p;
  return r;
}

SimValue fn_atoi(CallContext& ctx) {
  const ScanResult r = scan_int(ctx, ctx.arg_ptr(0), 10);
  const auto value = static_cast<std::int64_t>(r.negative ? 0 - r.magnitude : r.magnitude);
  return SimValue::integer(static_cast<std::int32_t>(value));  // int width wrap
}

SimValue fn_atol(CallContext& ctx) {
  const ScanResult r = scan_int(ctx, ctx.arg_ptr(0), 10);
  return SimValue::integer(static_cast<std::int64_t>(r.negative ? 0 - r.magnitude : r.magnitude));
}

SimValue fn_strtol(CallContext& ctx) {
  const Addr s = ctx.arg_ptr(0);
  const Addr endptr = ctx.arg_ptr(1);
  const int base = static_cast<int>(ctx.arg_int(2));
  if (base != 0 && (base < 2 || base > 36)) {
    ctx.machine.set_err(kEINVAL);
    if (endptr != 0) ctx.machine.mem().store64(endptr, s);
    return SimValue::integer(0);
  }
  const ScanResult r = scan_int(ctx, s, base);
  if (endptr != 0) {
    ctx.machine.mem().store64(endptr, r.any_digit ? r.end : s);
  }
  constexpr std::uint64_t kMaxPos = 0x7fffffffffffffffULL;
  if (r.overflowed || r.magnitude > (r.negative ? kMaxPos + 1 : kMaxPos)) {
    ctx.machine.set_err(kERANGE);
    return SimValue::integer(r.negative ? static_cast<std::int64_t>(~kMaxPos)
                                        : static_cast<std::int64_t>(kMaxPos));
  }
  return SimValue::integer(static_cast<std::int64_t>(r.negative ? 0 - r.magnitude : r.magnitude));
}

SimValue fn_strtoul(CallContext& ctx) {
  const Addr s = ctx.arg_ptr(0);
  const Addr endptr = ctx.arg_ptr(1);
  const int base = static_cast<int>(ctx.arg_int(2));
  if (base != 0 && (base < 2 || base > 36)) {
    ctx.machine.set_err(kEINVAL);
    if (endptr != 0) ctx.machine.mem().store64(endptr, s);
    return SimValue::integer(0);
  }
  const ScanResult r = scan_int(ctx, s, base);
  if (endptr != 0) {
    ctx.machine.mem().store64(endptr, r.any_digit ? r.end : s);
  }
  if (r.overflowed) {
    ctx.machine.set_err(kERANGE);
    return SimValue::integer(-1);  // ULONG_MAX
  }
  const std::uint64_t value = r.negative ? 0 - r.magnitude : r.magnitude;
  return SimValue::integer(static_cast<std::int64_t>(value));
}

SimValue fn_strtod(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  const Addr endptr = ctx.arg_ptr(1);
  Addr p = s;
  while (true) {
    ctx.machine.tick();
    if (!is_space_byte(as.load8(p))) break;
    ++p;
  }
  bool negative = false;
  const std::uint8_t sign = as.load8(p);
  if (sign == '-' || sign == '+') {
    negative = sign == '-';
    ++p;
  }
  double value = 0.0;
  bool any = false;
  while (true) {
    ctx.machine.tick();
    const std::uint8_t byte = as.load8(p);
    if (byte < '0' || byte > '9') break;
    value = value * 10.0 + (byte - '0');
    any = true;
    ++p;
  }
  if (as.load8(p) == '.') {
    ++p;
    double scale = 0.1;
    while (true) {
      ctx.machine.tick();
      const std::uint8_t byte = as.load8(p);
      if (byte < '0' || byte > '9') break;
      value += (byte - '0') * scale;
      scale *= 0.1;
      any = true;
      ++p;
    }
  }
  if (any && (as.load8(p) == 'e' || as.load8(p) == 'E')) {
    Addr q = p + 1;
    bool exp_neg = false;
    const std::uint8_t esign = as.load8(q);
    if (esign == '-' || esign == '+') {
      exp_neg = esign == '-';
      ++q;
    }
    int exponent = 0;
    bool exp_any = false;
    while (true) {
      ctx.machine.tick();
      const std::uint8_t byte = as.load8(q);
      if (byte < '0' || byte > '9') break;
      exponent = exponent * 10 + (byte - '0');
      exp_any = true;
      ++q;
    }
    if (exp_any) {
      value *= std::pow(10.0, exp_neg ? -exponent : exponent);
      p = q;
    }
  }
  if (endptr != 0) as.store64(endptr, any ? p : s);
  if (std::isinf(value)) ctx.machine.set_err(kERANGE);
  return SimValue::fp(negative ? -value : value);
}

SimValue fn_atof(CallContext& ctx) {
  CallContext sub{ctx.machine, ctx.state, {ctx.args.at(0), SimValue::null()}};
  return fn_strtod(sub);
}

SimValue fn_abs(CallContext& ctx) {
  const auto v = static_cast<std::int32_t>(ctx.arg_int(0));
  // abs(INT_MIN) wraps, as on two's-complement hardware.
  return SimValue::integer(v < 0 ? static_cast<std::int32_t>(0u - static_cast<std::uint32_t>(v))
                                 : v);
}

SimValue fn_labs(CallContext& ctx) {
  const std::int64_t v = ctx.arg_int(0);
  return SimValue::integer(v < 0 ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(v))
                                 : v);
}

}  // namespace

void register_conv_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("atoi", "convert a string to int",
                      "int atoi(const char *nptr);",
                      {"NONNULL 1", "ARG 1 CSTRING", "CALLS strtol"}, fn_atoi));
  lib.add(make_symbol("atol", "convert a string to long",
                      "long atol(const char *nptr);",
                      {"NONNULL 1", "ARG 1 CSTRING", "CALLS strtol"}, fn_atol));
  lib.add(make_symbol("atof", "convert a string to double",
                      "double atof(const char *nptr);",
                      {"NONNULL 1", "ARG 1 CSTRING", "CALLS strtod"}, fn_atof));
  lib.add(make_symbol("strtol", "convert a string to long with error reporting",
                      "long strtol(const char *nptr, char **endptr, int base);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ALLOWNULL 2",
                       "ARG 2 BUF WRITE SIZE 8", "ERRNO EINVAL ERANGE"},
                      fn_strtol));
  lib.add(make_symbol("strtoul", "convert a string to unsigned long",
                      "unsigned long strtoul(const char *nptr, char **endptr, int base);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ALLOWNULL 2",
                       "ARG 2 BUF WRITE SIZE 8", "ERRNO EINVAL ERANGE"},
                      fn_strtoul));
  lib.add(make_symbol("strtod", "convert a string to double with error reporting",
                      "double strtod(const char *nptr, char **endptr);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ALLOWNULL 2",
                       "ARG 2 BUF WRITE SIZE 8", "ERRNO ERANGE"},
                      fn_strtod));
  lib.add(make_symbol("abs", "absolute value of an int",
                      "int abs(int j);", {}, fn_abs));
  lib.add(make_symbol("labs", "absolute value of a long",
                      "long labs(long j);", {}, fn_labs));
}

}  // namespace healers::simlib
