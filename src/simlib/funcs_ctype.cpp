// Character classification and the wide-character descriptor functions the
// paper uses as its running example (Fig 3 wraps wctrans).
//
// The is*/to* functions are table-driven through simulated memory, exactly
// like a real libc: `table[c]` with no range check. For c inside [-128, 255]
// the lookup hits the mapped table; a wild int drives the load out of the
// region and faults — reproducing Ballista's classic finding that ctype
// functions crash on out-of-range inputs.
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;

SimValue classify(CallContext& ctx, std::uint8_t mask) {
  const Addr table = detail::ctype_table(ctx);
  const std::int64_t c = ctx.arg_int(0);
  ctx.machine.tick();
  const std::uint8_t bits = ctx.machine.mem().load8(table + static_cast<std::uint64_t>(c));
  return SimValue::integer((bits & mask) != 0 ? 1 : 0);
}

CFunction classifier(std::uint8_t mask) {
  return [mask](CallContext& ctx) { return classify(ctx, mask); };
}

SimValue fn_isalpha(CallContext& ctx) {
  return classify(ctx, detail::kCtUpper | detail::kCtLower);
}

SimValue fn_isalnum(CallContext& ctx) {
  return classify(ctx, detail::kCtUpper | detail::kCtLower | detail::kCtDigit);
}

SimValue fn_toupper(CallContext& ctx) {
  const Addr table = detail::ctype_table(ctx);
  const std::int64_t c = ctx.arg_int(0);
  ctx.machine.tick();
  const std::uint8_t bits = ctx.machine.mem().load8(table + static_cast<std::uint64_t>(c));
  return SimValue::integer((bits & detail::kCtLower) != 0 ? c - 32 : c);
}

SimValue fn_tolower(CallContext& ctx) {
  const Addr table = detail::ctype_table(ctx);
  const std::int64_t c = ctx.arg_int(0);
  ctx.machine.tick();
  const std::uint8_t bits = ctx.machine.mem().load8(table + static_cast<std::uint64_t>(c));
  return SimValue::integer((bits & detail::kCtUpper) != 0 ? c + 32 : c);
}

// Wide-character transformation descriptors (the paper's Fig 3 example).
// wctrans_t values: 1 = tolower, 2 = toupper, 0 = invalid.
SimValue fn_wctrans(CallContext& ctx) {
  // Crashes on NULL / non-string input: read_cstring chases the pointer.
  const std::string name = ctx.machine.mem().read_cstring(ctx.arg_ptr(0));
  ctx.machine.tick(name.size() + 1);
  if (name == "tolower") return SimValue::integer(1);
  if (name == "toupper") return SimValue::integer(2);
  ctx.machine.set_err(kEINVAL);
  return SimValue::integer(0);
}

SimValue fn_towctrans(CallContext& ctx) {
  const std::int64_t wc = ctx.arg_int(0);
  const std::int64_t desc = ctx.arg_int(1);
  ctx.machine.tick();
  if (desc == 1) {  // tolower
    return SimValue::integer(wc >= 'A' && wc <= 'Z' ? wc + 32 : wc);
  }
  if (desc == 2) {  // toupper
    return SimValue::integer(wc >= 'a' && wc <= 'z' ? wc - 32 : wc);
  }
  ctx.machine.set_err(kEINVAL);
  return SimValue::integer(wc);
}

// wctype_t values: 1..6 for the classes we model, 0 = invalid.
SimValue fn_wctype(CallContext& ctx) {
  const std::string name = ctx.machine.mem().read_cstring(ctx.arg_ptr(0));
  ctx.machine.tick(name.size() + 1);
  if (name == "alpha") return SimValue::integer(1);
  if (name == "digit") return SimValue::integer(2);
  if (name == "space") return SimValue::integer(3);
  if (name == "upper") return SimValue::integer(4);
  if (name == "lower") return SimValue::integer(5);
  if (name == "alnum") return SimValue::integer(6);
  ctx.machine.set_err(kEINVAL);
  return SimValue::integer(0);
}

SimValue fn_iswctype(CallContext& ctx) {
  const std::int64_t wc = ctx.arg_int(0);
  const std::int64_t desc = ctx.arg_int(1);
  ctx.machine.tick();
  const bool upper = wc >= 'A' && wc <= 'Z';
  const bool lower = wc >= 'a' && wc <= 'z';
  const bool digit = wc >= '0' && wc <= '9';
  const bool space = wc == ' ' || (wc >= '\t' && wc <= '\r');
  switch (desc) {
    case 1: return SimValue::integer(upper || lower ? 1 : 0);
    case 2: return SimValue::integer(digit ? 1 : 0);
    case 3: return SimValue::integer(space ? 1 : 0);
    case 4: return SimValue::integer(upper ? 1 : 0);
    case 5: return SimValue::integer(lower ? 1 : 0);
    case 6: return SimValue::integer(upper || lower || digit ? 1 : 0);
    default:
      ctx.machine.set_err(kEINVAL);
      return SimValue::integer(0);
  }
}

}  // namespace

void register_ctype_funcs(SharedLibrary& lib) {
  const auto add_classifier = [&lib](const char* name, const char* summary, const char* decl,
                                     CFunction fn) {
    lib.add(make_symbol(name, summary, decl, {"ARG 1 RANGE -128 255"}, std::move(fn)));
  };
  add_classifier("isalpha", "test for an alphabetic character", "int isalpha(int c);",
                 fn_isalpha);
  add_classifier("isdigit", "test for a digit", "int isdigit(int c);",
                 classifier(detail::kCtDigit));
  add_classifier("isalnum", "test for an alphanumeric character", "int isalnum(int c);",
                 fn_isalnum);
  add_classifier("isspace", "test for whitespace", "int isspace(int c);",
                 classifier(detail::kCtSpace));
  add_classifier("isupper", "test for an uppercase letter", "int isupper(int c);",
                 classifier(detail::kCtUpper));
  add_classifier("islower", "test for a lowercase letter", "int islower(int c);",
                 classifier(detail::kCtLower));
  add_classifier("ispunct", "test for punctuation", "int ispunct(int c);",
                 classifier(detail::kCtPunct));
  add_classifier("isxdigit", "test for a hexadecimal digit", "int isxdigit(int c);",
                 classifier(detail::kCtXdigit));
  add_classifier("iscntrl", "test for a control character", "int iscntrl(int c);",
                 classifier(detail::kCtCntrl));
  add_classifier("toupper", "convert to uppercase", "int toupper(int c);", fn_toupper);
  add_classifier("tolower", "convert to lowercase", "int tolower(int c);", fn_tolower);

  lib.add(make_symbol("wctrans", "look up a wide-character transformation",
                      "wctrans_t wctrans(const char *name);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ERRNO EINVAL"}, fn_wctrans));
  lib.add(make_symbol("towctrans", "apply a wide-character transformation",
                      "wint_t towctrans(wint_t wc, wctrans_t desc);",
                      {"ARG 2 RANGE 1 2", "ERRNO EINVAL"}, fn_towctrans));
  lib.add(make_symbol("wctype", "look up a wide-character class",
                      "wctype_t wctype(const char *name);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ERRNO EINVAL"}, fn_wctype));
  lib.add(make_symbol("iswctype", "test a wide character against a class",
                      "int iswctype(wint_t wc, wctype_t desc);",
                      {"ARG 2 RANGE 1 6", "ERRNO EINVAL"}, fn_iswctype));
}

}  // namespace healers::simlib
