// Internal registration interface and shared helpers for the simulated C
// library's function families. Each funcs_*.cpp implements one family and
// registers its symbols (implementation + declaration + man page) into a
// SharedLibrary; builders.cpp assembles the stock libraries from them.
//
// Fidelity rule for every function here: implement the *historical, fragile*
// semantics — crash on NULL, overrun short buffers silently, wrap on
// overflow — because those behaviours are what the HEALERS fault injector
// must rediscover and what the generated wrappers must contain.
#pragma once

#include <initializer_list>
#include <string>

#include "simlib/library.hpp"
#include "simlib/value.hpp"

namespace healers::simlib {

void register_string_funcs(SharedLibrary& lib);
void register_memory_funcs(SharedLibrary& lib);
void register_conv_funcs(SharedLibrary& lib);
void register_ctype_funcs(SharedLibrary& lib);
void register_stdio_funcs(SharedLibrary& lib);
void register_misc_funcs(SharedLibrary& lib);
void register_sort_funcs(SharedLibrary& lib);
void register_math_funcs(SharedLibrary& lib);

namespace detail {

// Builds a Symbol with a canonical man page:
//   NAME / <name> - <summary>
//   SYNOPSIS / <declaration>
//   NOTES / one annotation per line (the machine-readable semantic hints
//           that stand in for the paper's manual-editing step; grammar in
//           src/parser/manpage.hpp).
[[nodiscard]] Symbol make_symbol(std::string name, std::string summary, std::string declaration,
                                 std::initializer_list<const char*> notes, CFunction fn);

// Lazily builds the 384-byte classification table for ctype functions and
// returns its simulated base. The table covers indexes [-128, 255] at
// offset +128 — so, exactly like a table-driven libc, a wild `int` argument
// drives the lookup out of the region and faults.
[[nodiscard]] mem::Addr ctype_table(CallContext& ctx);

// ctype table bit flags.
inline constexpr std::uint8_t kCtUpper = 0x01;
inline constexpr std::uint8_t kCtLower = 0x02;
inline constexpr std::uint8_t kCtDigit = 0x04;
inline constexpr std::uint8_t kCtSpace = 0x08;
inline constexpr std::uint8_t kCtPunct = 0x10;
inline constexpr std::uint8_t kCtXdigit = 0x20;
inline constexpr std::uint8_t kCtCntrl = 0x40;

// printf-engine shared by sprintf/snprintf/fprintf: formats `fmt` (a
// simulated address) with ctx.args starting at `first_vararg`. Appends to
// `out`. Faithfully fragile: %s chases the pointer without checks.
void format_into(CallContext& ctx, mem::Addr fmt, std::size_t first_vararg, std::string& out);

}  // namespace detail

}  // namespace healers::simlib
