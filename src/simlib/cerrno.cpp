#include "simlib/cerrno.hpp"

namespace healers::simlib {

std::string errno_name(int err) {
  switch (err) {
    case kEOK: return "OK";
    case kEPERM: return "EPERM";
    case kENOENT: return "ENOENT";
    case kEINTR: return "EINTR";
    case kEIO: return "EIO";
    case kEBADF: return "EBADF";
    case kENOMEM: return "ENOMEM";
    case kEACCES: return "EACCES";
    case kEFAULT: return "EFAULT";
    case kEEXIST: return "EEXIST";
    case kEINVAL: return "EINVAL";
    case kEMFILE: return "EMFILE";
    case kENOSPC: return "ENOSPC";
    case kEDOM: return "EDOM";
    case kERANGE: return "ERANGE";
    default:
      if (err > 0 && err < kMaxErrno) return "E" + std::to_string(err);
      return "E?";
  }
}

std::string errno_describe(int err) {
  switch (err) {
    case kEOK: return "Success";
    case kEPERM: return "Operation not permitted";
    case kENOENT: return "No such file or directory";
    case kEINTR: return "Interrupted system call";
    case kEIO: return "Input/output error";
    case kEBADF: return "Bad file descriptor";
    case kENOMEM: return "Cannot allocate memory";
    case kEACCES: return "Permission denied";
    case kEFAULT: return "Bad address";
    case kEEXIST: return "File exists";
    case kEINVAL: return "Invalid argument";
    case kEMFILE: return "Too many open files";
    case kENOSPC: return "No space left on device";
    case kEDOM: return "Numerical argument out of domain";
    case kERANGE: return "Numerical result out of range";
    default: return "Unknown error " + std::to_string(err);
  }
}

}  // namespace healers::simlib
