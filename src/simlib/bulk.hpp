// Bulk memory primitives for the simulated C library.
//
// Each helper is a drop-in replacement for a reference per-byte loop of the
// shape {tick(); access...} and must be OBSERVABLY IDENTICAL to it: same
// step/cycle totals, same fault kind/address/detail at the same step, same
// partial side effects when the step budget hangs mid-loop (DESIGN.md,
// "memory fast path"). The equivalence argument, used throughout:
//
//   n iterations of {tick; work} either all complete (tick(n), n units of
//   work) or hang after m = Machine::budget_units(n) complete iterations —
//   so commit m units of work, tick(m) (reaching the budget exactly), then
//   one more tick() raises SimHang at step budget+1, just like iteration
//   m+1 of the reference loop. Faults are replayed literally: charge the one
//   tick the reference loop spends before the bad access, then perform the
//   original load8/store8 so the AccessFault carries the identical address
//   and detail text.
//
// All helpers walk per-region chunks via span_extent, so runs crossing
// abutting regions (map_at permits them) behave exactly like a per-byte
// scan: the walk continues across the seam and faults only where a byte
// access would.
#pragma once

#include <algorithm>
#include <cstring>

#include "memmodel/machine.hpp"

namespace healers::simlib::bulk {

using mem::Addr;
using mem::Perm;

// Ticks `done` completed units, then raises the hang the reference loop
// would have raised while starting unit done+1.
inline void settle(mem::Machine& m, std::uint64_t done, std::uint64_t want) {
  if (done != 0) m.tick(done);
  if (done < want) m.tick();  // throws SimHang at step budget+1
}

// The reference loop ticks, then the byte access throws: hang wins over
// fault at the same byte, and the fault carries the per-byte address/detail.
inline void replay_load(mem::Machine& m, Addr addr) {
  m.tick();
  (void)m.mem().load8(addr);
}

// strlen core: length of the NUL-terminated string at `s`, ticking once per
// scanned byte including the terminator.
inline std::uint64_t scan_len(mem::Machine& m, Addr s) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t n = 0;
  while (true) {
    const std::uint64_t extent = as.span_extent(s + n, Perm::kRead);
    if (extent == 0) {
      replay_load(m, s + n);  // throws; the scan left readable memory
      continue;
    }
    const std::byte* p = as.span(s + n, extent, Perm::kRead);
    const void* hit = std::memchr(p, 0, extent);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p)
                       : extent;
    const std::uint64_t want = hit != nullptr ? k + 1 : extent;
    settle(m, m.budget_units(want), want);
    if (hit != nullptr) return n + k;
    n += extent;
  }
}

// strnlen core: like scan_len but never looks past `cap` bytes.
inline std::uint64_t scan_len_bounded(mem::Machine& m, Addr s, std::uint64_t cap) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t n = 0;
  while (n < cap) {
    const std::uint64_t extent = as.span_extent(s + n, Perm::kRead);
    if (extent == 0) {
      replay_load(m, s + n);
      continue;
    }
    const std::uint64_t c = std::min(extent, cap - n);
    const std::byte* p = as.span(s + n, c, Perm::kRead);
    const void* hit = std::memchr(p, 0, c);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p)
                       : c;
    const std::uint64_t want = hit != nullptr ? k + 1 : c;
    settle(m, m.budget_units(want), want);
    if (hit != nullptr) return n + k;
    n += c;
  }
  return cap;
}

// memcpy core: forward byte copy of n bytes, one tick per byte, with the
// reference's (lack of) overlap handling: a forward-overlapping copy
// (src < dest < src+n) self-replicates with period dest-src, because chunks
// are capped at that gap and each chunk re-reads what earlier chunks wrote.
// dest <= src overlap is handled by per-chunk memmove (reads win, as in the
// byte loop).
inline void copy_forward(mem::Machine& m, Addr dest, Addr src, std::uint64_t n) {
  mem::AddressSpace& as = m.mem();
  const std::uint64_t gap = dest > src ? dest - src : 0;
  std::uint64_t i = 0;
  while (i < n) {
    std::uint64_t c = std::min(as.span_extent(src + i, Perm::kRead),
                               as.span_extent(dest + i, Perm::kWrite));
    c = std::min(c, n - i);
    if (gap != 0) c = std::min(c, gap);
    if (c == 0) {
      m.tick();
      const std::uint8_t byte = as.load8(src + i);  // faults when src ran out
      as.store8(dest + i, byte);                    // otherwise dest must
      ++i;
      continue;
    }
    const std::uint64_t w = m.budget_units(c);
    if (w != 0) {
      std::memmove(as.mutable_span(dest + i, w), as.span(src + i, w, Perm::kRead), w);
    }
    settle(m, w, c);
    i += c;
  }
}

// memmove backward core (dest > src): copies n bytes from the top down,
// one tick per byte. Reads always see original bytes (writes land above
// every remaining read), so per-chunk memmove of the original content is
// exact.
inline void copy_backward(mem::Machine& m, Addr dest, Addr src, std::uint64_t n) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t done = 0;
  while (done < n) {
    const Addr rs = src + (n - done) - 1;  // highest uncopied source byte
    const Addr rd = dest + (n - done) - 1;
    std::uint64_t c = std::min(as.span_extent_back(rs, Perm::kRead),
                               as.span_extent_back(rd, Perm::kWrite));
    c = std::min(c, n - done);
    if (c == 0) {
      m.tick();
      const std::uint8_t byte = as.load8(rs);
      as.store8(rd, byte);
      ++done;
      continue;
    }
    const std::uint64_t w = m.budget_units(c);
    if (w != 0) {
      std::memmove(as.mutable_span(rd - w + 1, w), as.span(rs - w + 1, w, Perm::kRead), w);
    }
    settle(m, w, c);
    done += c;
  }
}

// memset core: n bytes of `value`, one tick per byte.
inline void fill(mem::Machine& m, Addr dest, std::uint8_t value, std::uint64_t n) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t i = 0;
  while (i < n) {
    const std::uint64_t c = std::min(as.span_extent(dest + i, Perm::kWrite), n - i);
    if (c == 0) {
      m.tick();
      as.store8(dest + i, value);  // throws the exact write fault
      ++i;
      continue;
    }
    const std::uint64_t w = m.budget_units(c);
    if (w != 0) std::memset(as.mutable_span(dest + i, w), value, w);
    settle(m, w, c);
    i += c;
  }
}

// sprintf/fread/fgets core: writes n host-side bytes into simulated memory,
// one tick per byte. When `cursor` is non-null it is advanced once per
// committed byte BEFORE any fault or hang escapes, matching reference loops
// that consume their host source before the faulting store (fgets advances
// file.pos, gets advances stdin_pos).
inline void store_host(mem::Machine& m, Addr dest, const char* src, std::uint64_t n,
                       std::uint64_t* cursor = nullptr) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t i = 0;
  while (i < n) {
    const std::uint64_t c = std::min(as.span_extent(dest + i, Perm::kWrite), n - i);
    if (c == 0) {
      m.tick();
      if (cursor != nullptr) ++*cursor;
      as.store8(dest + i, static_cast<std::uint8_t>(src[i]));  // throws the write fault
      ++i;
      continue;
    }
    const std::uint64_t w = m.budget_units(c);
    if (w != 0) std::memcpy(as.mutable_span(dest + i, w), src + i, w);
    if (cursor != nullptr) *cursor += w;
    settle(m, w, c);
    i += c;
  }
}

// strcpy core: copies bytes through the terminator inclusive, one tick per
// byte. Returns the number of bytes copied minus the NUL (the string
// length). Overlap semantics match copy_forward.
inline std::uint64_t copy_cstr(mem::Machine& m, Addr dest, Addr src) {
  mem::AddressSpace& as = m.mem();
  const std::uint64_t gap = dest > src ? dest - src : 0;
  std::uint64_t i = 0;
  while (true) {
    std::uint64_t c = std::min(as.span_extent(src + i, Perm::kRead),
                               as.span_extent(dest + i, Perm::kWrite));
    if (gap != 0) c = std::min(c, gap);
    if (c == 0) {
      m.tick();
      const std::uint8_t byte = as.load8(src + i);
      as.store8(dest + i, byte);
      if (byte == 0) return i;  // unreachable: a zero extent cannot store
      ++i;
      continue;
    }
    const std::byte* sp = as.span(src + i, c, Perm::kRead);
    const void* hit = std::memchr(sp, 0, c);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - sp)
                       : c;
    const std::uint64_t want = hit != nullptr ? k + 1 : c;
    const std::uint64_t w = m.budget_units(want);
    if (w != 0) std::memmove(as.mutable_span(dest + i, w), sp, w);
    settle(m, w, want);
    if (hit != nullptr) return i + k;
    i += c;
  }
}

// strncpy copy phase: copies until the terminator (inclusive) or `cap`
// bytes, whichever first; returns bytes consumed (the reference loop's final
// i). The caller zero-fills the remainder with fill().
inline std::uint64_t copy_cstr_bounded(mem::Machine& m, Addr dest, Addr src, std::uint64_t cap) {
  mem::AddressSpace& as = m.mem();
  const std::uint64_t gap = dest > src ? dest - src : 0;
  std::uint64_t i = 0;
  while (i < cap) {
    std::uint64_t c = std::min(as.span_extent(src + i, Perm::kRead),
                               as.span_extent(dest + i, Perm::kWrite));
    c = std::min(c, cap - i);
    if (gap != 0) c = std::min(c, gap);
    if (c == 0) {
      m.tick();
      const std::uint8_t byte = as.load8(src + i);
      as.store8(dest + i, byte);
      ++i;
      if (byte == 0) return i;  // unreachable, as in copy_cstr
      continue;
    }
    const std::byte* sp = as.span(src + i, c, Perm::kRead);
    const void* hit = std::memchr(sp, 0, c);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - sp)
                       : c;
    const std::uint64_t want = hit != nullptr ? k + 1 : c;
    const std::uint64_t w = m.budget_units(want);
    if (w != 0) std::memmove(as.mutable_span(dest + i, w), sp, w);
    settle(m, w, want);
    i += want;
    if (hit != nullptr) return i;
  }
  return cap;
}

// strcmp/strncmp/memcmp/strcasecmp core. Walks both streams one tick per
// compared position; a difference ends the walk with -1/1 (checked before
// the terminator, as in the reference loops), a NUL in both ends it with 0
// when stop_at_nul is set. `cap` bounds the walk (SIZE_MAX-ish for the
// unbounded variants).
inline std::int64_t compare(mem::Machine& m, Addr a, Addr b, std::uint64_t cap,
                            bool stop_at_nul, bool fold_case) {
  mem::AddressSpace& as = m.mem();
  const auto lower = [](std::uint8_t byte) {
    return byte >= 'A' && byte <= 'Z' ? static_cast<std::uint8_t>(byte + 32) : byte;
  };
  std::uint64_t i = 0;
  while (i < cap) {
    std::uint64_t c = std::min(as.span_extent(a + i, Perm::kRead),
                               as.span_extent(b + i, Perm::kRead));
    c = std::min(c, cap - i);
    if (c == 0) {
      m.tick();
      (void)as.load8(a + i);  // one of the two streams must fault here
      (void)as.load8(b + i);
      ++i;
      continue;
    }
    const std::byte* pa = as.span(a + i, c, Perm::kRead);
    const std::byte* pb = as.span(b + i, c, Perm::kRead);
    // First position where the walk ends inside this chunk, if any.
    std::uint64_t diff_at = c;
    if (fold_case) {
      for (std::uint64_t k = 0; k < c; ++k) {
        if (lower(std::to_integer<std::uint8_t>(pa[k])) !=
            lower(std::to_integer<std::uint8_t>(pb[k]))) {
          diff_at = k;
          break;
        }
      }
    } else if (std::memcmp(pa, pb, c) != 0) {
      diff_at = static_cast<std::uint64_t>(std::mismatch(pa, pa + c, pb).first - pa);
    }
    if (stop_at_nul) {
      // A shared NUL strictly before the first difference ends the walk
      // with equality (the reference checks the difference first).
      const void* nul = std::memchr(pa, 0, static_cast<std::size_t>(std::min(diff_at, c)));
      if (nul != nullptr) {
        const auto k = static_cast<std::uint64_t>(static_cast<const std::byte*>(nul) - pa);
        settle(m, m.budget_units(k + 1), k + 1);
        return 0;
      }
    }
    if (diff_at < c) {
      settle(m, m.budget_units(diff_at + 1), diff_at + 1);
      const std::uint8_t ca = fold_case ? lower(std::to_integer<std::uint8_t>(pa[diff_at]))
                                        : std::to_integer<std::uint8_t>(pa[diff_at]);
      const std::uint8_t cb = fold_case ? lower(std::to_integer<std::uint8_t>(pb[diff_at]))
                                        : std::to_integer<std::uint8_t>(pb[diff_at]);
      return ca < cb ? -1 : 1;
    }
    settle(m, m.budget_units(c), c);
    i += c;
  }
  return 0;
}

// memchr core: offset of the first `target` within `cap` bytes, or `cap`
// when absent; one tick per examined byte.
inline std::uint64_t find_byte(mem::Machine& m, Addr s, std::uint8_t target, std::uint64_t cap) {
  mem::AddressSpace& as = m.mem();
  std::uint64_t i = 0;
  while (i < cap) {
    const std::uint64_t extent = as.span_extent(s + i, Perm::kRead);
    if (extent == 0) {
      replay_load(m, s + i);
      continue;
    }
    const std::uint64_t c = std::min(extent, cap - i);
    const std::byte* p = as.span(s + i, c, Perm::kRead);
    const void* hit = std::memchr(p, static_cast<int>(target), c);
    if (hit != nullptr) {
      const auto k = static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p);
      settle(m, m.budget_units(k + 1), k + 1);
      return i + k;
    }
    settle(m, m.budget_units(c), c);
    i += c;
  }
  return cap;
}

}  // namespace healers::simlib::bulk
