#include <cctype>

#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib::detail {

Symbol make_symbol(std::string name, std::string summary, std::string declaration,
                   std::initializer_list<const char*> notes, CFunction fn) {
  std::string manpage;
  manpage += "NAME\n  " + name + " - " + summary + "\n";
  manpage += "SYNOPSIS\n  " + declaration + "\n";
  manpage += "NOTES\n";
  for (const char* note : notes) {
    manpage += "  ";
    manpage += note;
    manpage += '\n';
  }
  Symbol symbol;
  symbol.name = std::move(name);
  symbol.fn = std::move(fn);
  symbol.declaration = std::move(declaration);
  symbol.manpage = std::move(manpage);
  return symbol;
}

mem::Addr ctype_table(CallContext& ctx) {
  if (ctx.state.ctype_table != 0) return ctx.state.ctype_table + 128;
  // 384 entries covering [-128, 255]; the returned base is biased so that
  // table[c] is a direct (and for wild c, faulting) lookup.
  mem::Region& region =
      ctx.machine.mem().map(384, mem::Perm::kRead, mem::RegionKind::kRodata, "ctype_table");
  for (int i = 0; i < 384; ++i) {
    const int c = i - 128;
    std::uint8_t bits = 0;
    if (c >= 0 && c <= 255) {
      if (c >= 'A' && c <= 'Z') bits |= kCtUpper;
      if (c >= 'a' && c <= 'z') bits |= kCtLower;
      if (c >= '0' && c <= '9') bits |= kCtDigit;
      if (c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r') {
        bits |= kCtSpace;
      }
      if (c > 32 && c < 127 && ((bits & (kCtUpper | kCtLower | kCtDigit)) == 0)) bits |= kCtPunct;
      if ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) {
        bits |= kCtXdigit;
      }
      if (c < 32 || c == 127) bits |= kCtCntrl;
    }
    region.bytes[static_cast<std::size_t>(i)] = std::byte{bits};
  }
  ctx.state.ctype_table = region.base;
  return region.base + 128;
}

void format_into(CallContext& ctx, mem::Addr fmt, std::size_t first_vararg, std::string& out) {
  mem::AddressSpace& as = ctx.machine.mem();
  std::size_t arg = first_vararg;
  for (mem::Addr p = fmt;; ++p) {
    ctx.machine.tick();
    const char c = static_cast<char>(as.load8(p));
    if (c == '\0') return;
    if (c != '%') {
      out += c;
      continue;
    }
    // Parse %[0][width][l]conv — the subset HEALERS workloads use.
    ++p;
    ctx.machine.tick();
    char conv = static_cast<char>(as.load8(p));
    bool zero_pad = false;
    if (conv == '0') {
      zero_pad = true;
      ++p;
      conv = static_cast<char>(as.load8(p));
    }
    int width = 0;
    while (conv >= '0' && conv <= '9') {
      width = width * 10 + (conv - '0');
      ++p;
      ctx.machine.tick();
      conv = static_cast<char>(as.load8(p));
    }
    while (conv == 'l') {  // %ld / %lld width modifiers are a no-op at 64 bit
      ++p;
      ctx.machine.tick();
      conv = static_cast<char>(as.load8(p));
    }
    std::string piece;
    switch (conv) {
      case '%':
        piece = "%";
        break;
      case 'd':
      case 'i':
        piece = std::to_string(ctx.args.at(arg++).as_int());
        break;
      case 'u':
        piece = std::to_string(ctx.args.at(arg++).as_uint());
        break;
      case 'x': {
        std::uint64_t v = ctx.args.at(arg++).as_uint();
        if (v == 0) {
          piece = "0";
        } else {
          while (v != 0) {
            piece.insert(piece.begin(), "0123456789abcdef"[v & 0xF]);
            v >>= 4;
          }
        }
        break;
      }
      case 'c':
        piece = std::string(1, static_cast<char>(ctx.args.at(arg++).as_int()));
        break;
      case 'f':
        piece = std::to_string(ctx.args.at(arg++).as_double());
        break;
      case 's': {
        // Faithfully fragile: chase the pointer with no NULL check. Each
        // character costs a tick; an unterminated argument ends in a fault.
        const mem::Addr s = ctx.args.at(arg++).as_ptr();
        for (mem::Addr q = s;; ++q) {
          ctx.machine.tick();
          const std::uint8_t byte = as.load8(q);
          if (byte == 0) break;
          piece += static_cast<char>(byte);
        }
        break;
      }
      default:
        // Unknown conversion: emit verbatim, as glibc does.
        piece = std::string("%") + conv;
    }
    if (width > static_cast<int>(piece.size())) {
      piece.insert(piece.begin(), static_cast<std::size_t>(width) - piece.size(),
                   zero_pad ? '0' : ' ');
    }
    out += piece;
  }
}

}  // namespace healers::simlib::detail
