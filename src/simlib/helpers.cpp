#include <cctype>
#include <cstring>

#include "simlib/bulk.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib::detail {

Symbol make_symbol(std::string name, std::string summary, std::string declaration,
                   std::initializer_list<const char*> notes, CFunction fn) {
  std::string manpage;
  manpage += "NAME\n  " + name + " - " + summary + "\n";
  manpage += "SYNOPSIS\n  " + declaration + "\n";
  manpage += "NOTES\n";
  for (const char* note : notes) {
    manpage += "  ";
    manpage += note;
    manpage += '\n';
  }
  Symbol symbol;
  symbol.name = std::move(name);
  symbol.fn = std::move(fn);
  symbol.declaration = std::move(declaration);
  symbol.manpage = std::move(manpage);
  return symbol;
}

mem::Addr ctype_table(CallContext& ctx) {
  if (ctx.state.ctype_table != 0) return ctx.state.ctype_table + 128;
  // 384 entries covering [-128, 255]; the returned base is biased so that
  // table[c] is a direct (and for wild c, faulting) lookup.
  mem::Region& region =
      ctx.machine.mem().map(384, mem::Perm::kRead, mem::RegionKind::kRodata, "ctype_table");
  std::uint8_t table[384];
  for (int i = 0; i < 384; ++i) {
    const int c = i - 128;
    std::uint8_t bits = 0;
    if (c >= 0 && c <= 255) {
      if (c >= 'A' && c <= 'Z') bits |= kCtUpper;
      if (c >= 'a' && c <= 'z') bits |= kCtLower;
      if (c >= '0' && c <= '9') bits |= kCtDigit;
      if (c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r') {
        bits |= kCtSpace;
      }
      if (c > 32 && c < 127 && ((bits & (kCtUpper | kCtLower | kCtDigit)) == 0)) bits |= kCtPunct;
      if ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) {
        bits |= kCtXdigit;
      }
      if (c < 32 || c == 127) bits |= kCtCntrl;
    }
    table[static_cast<std::size_t>(i)] = bits;
  }
  // The region is read-only; the loader backdoor populates it (and keeps the
  // COW write barrier honest, so the table survives snapshot/restore).
  ctx.machine.mem().loader_fill(region.base, table, sizeof table);
  ctx.state.ctype_table = region.base;
  return region.base + 128;
}

void format_into(CallContext& ctx, mem::Addr fmt, std::size_t first_vararg, std::string& out) {
  mem::AddressSpace& as = ctx.machine.mem();
  std::size_t arg = first_vararg;
  for (mem::Addr p = fmt;; ++p) {
    // Literal run: copy bytes up to the next '%' or terminator in per-region
    // chunks, one tick per byte including the byte that ends the run. `out`
    // is host-local and discarded when a fault or hang escapes, so partial
    // appends before a hang are unobservable.
    bool done = false;
    while (true) {
      const std::uint64_t extent = as.span_extent(p, mem::Perm::kRead);
      if (extent == 0) {
        bulk::replay_load(ctx.machine, p);
        continue;
      }
      const std::byte* sp = as.span(p, extent, mem::Perm::kRead);
      const void* h0 = std::memchr(sp, 0, extent);
      const void* hp = std::memchr(sp, '%', extent);
      const std::uint64_t k0 =
          h0 != nullptr ? static_cast<std::uint64_t>(static_cast<const std::byte*>(h0) - sp)
                        : extent;
      const std::uint64_t kp =
          hp != nullptr ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hp) - sp)
                        : extent;
      const std::uint64_t k = std::min(k0, kp);
      const std::uint64_t want = k < extent ? k + 1 : extent;
      out.append(reinterpret_cast<const char*>(sp), k);
      bulk::settle(ctx.machine, ctx.machine.budget_units(want), want);
      if (k < extent) {
        done = k0 <= kp;  // terminator wins a tie (it can't: distinct bytes)
        p += k;           // leave p on the '%' for the parse below
        break;
      }
      p += extent;
    }
    if (done) return;
    // Parse %[0][width][l]conv — the subset HEALERS workloads use.
    ++p;
    ctx.machine.tick();
    char conv = static_cast<char>(as.load8(p));
    bool zero_pad = false;
    if (conv == '0') {
      zero_pad = true;
      ++p;
      conv = static_cast<char>(as.load8(p));
    }
    int width = 0;
    while (conv >= '0' && conv <= '9') {
      width = width * 10 + (conv - '0');
      ++p;
      ctx.machine.tick();
      conv = static_cast<char>(as.load8(p));
    }
    while (conv == 'l') {  // %ld / %lld width modifiers are a no-op at 64 bit
      ++p;
      ctx.machine.tick();
      conv = static_cast<char>(as.load8(p));
    }
    std::string piece;
    switch (conv) {
      case '%':
        piece = "%";
        break;
      case 'd':
      case 'i':
        piece = std::to_string(ctx.args.at(arg++).as_int());
        break;
      case 'u':
        piece = std::to_string(ctx.args.at(arg++).as_uint());
        break;
      case 'x': {
        std::uint64_t v = ctx.args.at(arg++).as_uint();
        if (v == 0) {
          piece = "0";
        } else {
          while (v != 0) {
            piece.insert(piece.begin(), "0123456789abcdef"[v & 0xF]);
            v >>= 4;
          }
        }
        break;
      }
      case 'c':
        piece = std::string(1, static_cast<char>(ctx.args.at(arg++).as_int()));
        break;
      case 'f':
        piece = std::to_string(ctx.args.at(arg++).as_double());
        break;
      case 's': {
        // Faithfully fragile: chase the pointer with no NULL check. Each
        // character costs a tick; an unterminated argument ends in a fault.
        const mem::Addr s = ctx.args.at(arg++).as_ptr();
        mem::Addr q = s;
        while (true) {
          const std::uint64_t extent = as.span_extent(q, mem::Perm::kRead);
          if (extent == 0) {
            bulk::replay_load(ctx.machine, q);
            continue;
          }
          const std::byte* sp = as.span(q, extent, mem::Perm::kRead);
          const void* hit = std::memchr(sp, 0, extent);
          const auto k =
              hit != nullptr
                  ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - sp)
                  : extent;
          piece.append(reinterpret_cast<const char*>(sp), k);
          bulk::settle(ctx.machine, ctx.machine.budget_units(hit != nullptr ? k + 1 : extent),
                       hit != nullptr ? k + 1 : extent);
          if (hit != nullptr) break;
          q += extent;
        }
        break;
      }
      default:
        // Unknown conversion: emit verbatim, as glibc does.
        piece = std::string("%") + conv;
    }
    if (width > static_cast<int>(piece.size())) {
      piece.insert(piece.begin(), static_cast<std::size_t>(width) - piece.size(),
                   zero_pad ? '0' : ' ');
    }
    out += piece;
  }
}

}  // namespace healers::simlib::detail
