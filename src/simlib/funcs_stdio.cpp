// Stdio subset over the in-memory filesystem.
//
// FILE objects live in *simulated* heap memory (16 bytes: magic, slot
// index); the open-file table itself is host-side LibState. A garbage FILE*
// faults when the library loads the magic through it; a stale FILE* (used
// after fclose) likewise "crashes" — both are behaviours the robustness
// wrapper must contain by tracking streams it saw fopen return.
#include <algorithm>
#include <cstring>

#include "simlib/bulk.hpp"
#include "simlib/cerrno.hpp"
#include "simlib/funcs.hpp"
#include "simlib/libstate.hpp"

namespace healers::simlib {

namespace {

using detail::make_symbol;
using mem::Addr;
using mem::AddressSpace;

OpenFile& file_of(CallContext& ctx, Addr file_ptr) {
  AddressSpace& as = ctx.machine.mem();
  ctx.machine.tick(2);
  const std::uint64_t magic = as.load64(file_ptr);  // faults on garbage pointers
  if (magic != kFileMagic) {
    // The simulated library chases internal pointers of what it believes is
    // a FILE; wrong magic means those "pointers" are garbage.
    throw AccessFault(FaultKind::kSegv, file_ptr, "not a FILE object");
  }
  const std::uint64_t index = as.load64(file_ptr + 8);
  if (index >= ctx.state.open_files.size() || !ctx.state.open_files[index].live) {
    throw AccessFault(FaultKind::kSegv, file_ptr, "stale FILE object (closed stream)");
  }
  return ctx.state.open_files[index];
}

SimValue fn_fopen(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const std::string path = as.read_cstring(ctx.arg_ptr(0));
  const std::string mode = as.read_cstring(ctx.arg_ptr(1));
  ctx.machine.tick(path.size() + mode.size() + 4);

  bool readable = false;
  bool writable = false;
  bool append = false;
  bool truncate = false;
  if (mode.empty()) {
    ctx.machine.set_err(kEINVAL);
    return SimValue::null();
  }
  switch (mode[0]) {
    case 'r': readable = true; break;
    case 'w': writable = true; truncate = true; break;
    case 'a': writable = true; append = true; break;
    default:
      ctx.machine.set_err(kEINVAL);
      return SimValue::null();
  }
  if (mode.find('+') != std::string::npos) {
    readable = true;
    writable = true;
  }

  if (!ctx.state.fs.exists(path)) {
    if (!writable) {
      ctx.machine.set_err(kENOENT);
      return SimValue::null();
    }
    ctx.state.fs.put(path, "");
  } else if (truncate) {
    ctx.state.fs.put(path, "");
  }

  const auto slot = ctx.state.allocate_slot();
  if (!slot.has_value()) {
    ctx.machine.set_err(kEMFILE);
    return SimValue::null();
  }
  const Addr obj = ctx.machine.heap().malloc(kFileObjSize);
  if (obj == 0) {
    ctx.machine.set_err(kENOMEM);
    return SimValue::null();
  }
  as.store64(obj, kFileMagic);
  as.store64(obj + 8, *slot);

  OpenFile& file = ctx.state.open_files[*slot];
  file = OpenFile{};
  file.path = path;
  file.readable = readable;
  file.writable = writable;
  file.append = append;
  file.pos = append ? ctx.state.fs.contents(path)->size() : 0;
  file.live = true;
  file.file_obj = obj;
  return SimValue::ptr(obj);
}

SimValue fn_fclose(CallContext& ctx) {
  const Addr file_ptr = ctx.arg_ptr(0);
  OpenFile& file = file_of(ctx, file_ptr);
  file.live = false;
  ctx.machine.heap().free(file.file_obj);
  return SimValue::integer(0);
}

SimValue fn_fread(CallContext& ctx) {
  const Addr buf = ctx.arg_ptr(0);
  const std::uint64_t size = ctx.arg_size(1);
  const std::uint64_t nmemb = ctx.arg_size(2);
  OpenFile& file = file_of(ctx, ctx.arg_ptr(3));
  if (!file.readable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(0);
  }
  const std::string* data = ctx.state.fs.contents(file.path);
  if (data == nullptr) {
    ctx.machine.set_err(kEIO);
    return SimValue::integer(0);
  }
  std::uint64_t done = 0;
  for (; done < nmemb; ++done) {
    if (file.pos + size > data->size()) break;
    // file.pos only advances once the whole member landed, so a mid-member
    // fault leaves the stream position untouched, as in the byte loop.
    bulk::store_host(ctx.machine, buf + done * size, data->data() + file.pos, size);
    file.pos += size;
  }
  if (done < nmemb) file.eof = true;
  return SimValue::integer(static_cast<std::int64_t>(done));
}

SimValue fn_fwrite(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr buf = ctx.arg_ptr(0);
  const std::uint64_t size = ctx.arg_size(1);
  const std::uint64_t nmemb = ctx.arg_size(2);
  OpenFile& file = file_of(ctx, ctx.arg_ptr(3));
  if (!file.writable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(0);
  }
  std::string* data = ctx.state.fs.contents_mut(file.path);
  if (data == nullptr) {
    ctx.machine.set_err(kEIO);
    return SimValue::integer(0);
  }
  // Chunk within each member rather than over a size*nmemb product: the
  // product wraps for fuzzed huge size/nmemb pairs, which must keep walking
  // (and faulting) like the reference nested loops. file.pos advances per
  // committed byte, and the load faults before the stream is touched.
  for (std::uint64_t m = 0; m < nmemb; ++m) {
    const Addr base = buf + m * size;
    std::uint64_t i = 0;
    while (i < size) {
      const std::uint64_t c =
          std::min(as.span_extent(base + i, mem::Perm::kRead), size - i);
      if (c == 0) {
        ctx.machine.tick();
        (void)as.load8(base + i);  // throws the read fault
        ++i;
        continue;
      }
      const std::uint64_t w = ctx.machine.budget_units(c);
      if (w != 0) {
        const std::byte* p = as.span(base + i, w, mem::Perm::kRead);
        if (file.pos + w > data->size()) data->resize(file.pos + w);
        std::memcpy(&(*data)[file.pos], p, w);
        file.pos += w;
      }
      bulk::settle(ctx.machine, w, c);
      i += c;
    }
  }
  return SimValue::integer(static_cast<std::int64_t>(nmemb));
}

SimValue fn_fgets(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr buf = ctx.arg_ptr(0);
  const std::int64_t n = ctx.arg_int(1);
  OpenFile& file = file_of(ctx, ctx.arg_ptr(2));
  if (!file.readable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::null();
  }
  const std::string* data = ctx.state.fs.contents(file.path);
  if (data == nullptr || n <= 0 || file.pos >= data->size()) {
    file.eof = true;
    return SimValue::null();
  }
  // Stop at newline (stored), buffer capacity, or end of data — whichever
  // first. file.pos advances per consumed byte before the store, so a
  // faulting store still leaves the byte consumed, as in the byte loop.
  const std::uint64_t limit =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(n - 1), data->size() - file.pos);
  const char* src = data->data() + file.pos;
  const void* nl = std::memchr(src, '\n', limit);
  const std::uint64_t want =
      nl != nullptr ? static_cast<std::uint64_t>(static_cast<const char*>(nl) - src) + 1 : limit;
  bulk::store_host(ctx.machine, buf, src, want, &file.pos);
  as.store8(buf + want, 0);  // unticked, as in the reference epilogue
  return SimValue::ptr(buf);
}

SimValue fn_fputs(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  OpenFile& file = file_of(ctx, ctx.arg_ptr(1));
  if (!file.writable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(-1);
  }
  std::string* data = ctx.state.fs.contents_mut(file.path);
  if (data == nullptr) {
    ctx.machine.set_err(kEIO);
    return SimValue::integer(-1);
  }
  // Chunked scan-and-append: the terminator iteration ticks but writes
  // nothing, so only min(w, k) data bytes land before a hang.
  std::uint64_t i = 0;
  while (true) {
    const std::uint64_t extent = as.span_extent(s + i, mem::Perm::kRead);
    if (extent == 0) {
      bulk::replay_load(ctx.machine, s + i);
      continue;
    }
    const std::byte* p = as.span(s + i, extent, mem::Perm::kRead);
    const void* hit = std::memchr(p, 0, extent);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p)
                       : extent;
    const std::uint64_t want = hit != nullptr ? k + 1 : extent;
    const std::uint64_t w = ctx.machine.budget_units(want);
    const std::uint64_t bytes = std::min(w, k);
    if (bytes != 0) {
      if (file.pos + bytes > data->size()) data->resize(file.pos + bytes);
      std::memcpy(&(*data)[file.pos], p, bytes);
      file.pos += bytes;
    }
    bulk::settle(ctx.machine, w, want);
    if (hit != nullptr) break;
    i += extent;
  }
  return SimValue::integer(1);
}

SimValue fn_fgetc(CallContext& ctx) {
  OpenFile& file = file_of(ctx, ctx.arg_ptr(0));
  if (!file.readable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(-1);
  }
  const std::string* data = ctx.state.fs.contents(file.path);
  ctx.machine.tick();
  if (data == nullptr || file.pos >= data->size()) {
    file.eof = true;
    return SimValue::integer(-1);  // EOF
  }
  return SimValue::integer(static_cast<std::uint8_t>((*data)[file.pos++]));
}

SimValue fn_fputc(CallContext& ctx) {
  const auto byte = static_cast<char>(ctx.arg_int(0));
  OpenFile& file = file_of(ctx, ctx.arg_ptr(1));
  if (!file.writable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(-1);
  }
  std::string* data = ctx.state.fs.contents_mut(file.path);
  if (data == nullptr) {
    ctx.machine.set_err(kEIO);
    return SimValue::integer(-1);
  }
  ctx.machine.tick();
  if (file.pos >= data->size()) data->resize(file.pos + 1);
  (*data)[file.pos++] = byte;
  return SimValue::integer(static_cast<std::uint8_t>(byte));
}

SimValue fn_feof(CallContext& ctx) {
  OpenFile& file = file_of(ctx, ctx.arg_ptr(0));
  return SimValue::integer(file.eof ? 1 : 0);
}

SimValue fn_fflush(CallContext& ctx) {
  if (ctx.arg_ptr(0) != 0) (void)file_of(ctx, ctx.arg_ptr(0));
  ctx.machine.tick();
  return SimValue::integer(0);
}

SimValue fn_ftell(CallContext& ctx) {
  OpenFile& file = file_of(ctx, ctx.arg_ptr(0));
  return SimValue::integer(static_cast<std::int64_t>(file.pos));
}

SimValue fn_rewind(CallContext& ctx) {
  OpenFile& file = file_of(ctx, ctx.arg_ptr(0));
  file.pos = 0;
  file.eof = false;
  return SimValue::integer(0);
}

SimValue fn_remove(CallContext& ctx) {
  const std::string path = ctx.machine.mem().read_cstring(ctx.arg_ptr(0));
  ctx.machine.tick(path.size() + 1);
  if (!ctx.state.fs.exists(path)) {
    ctx.machine.set_err(kENOENT);
    return SimValue::integer(-1);
  }
  ctx.state.fs.remove(path);
  return SimValue::integer(0);
}

SimValue fn_fprintf(CallContext& ctx) {
  OpenFile& file = file_of(ctx, ctx.arg_ptr(0));
  if (!file.writable) {
    ctx.machine.set_err(kEBADF);
    return SimValue::integer(-1);
  }
  std::string out;
  detail::format_into(ctx, ctx.arg_ptr(1), 2, out);
  std::string* data = ctx.state.fs.contents_mut(file.path);
  if (data == nullptr) {
    ctx.machine.set_err(kEIO);
    return SimValue::integer(-1);
  }
  for (const char byte : out) {
    if (file.pos >= data->size()) data->resize(file.pos + 1);
    (*data)[file.pos++] = byte;
  }
  return SimValue::integer(static_cast<std::int64_t>(out.size()));
}

SimValue fn_sprintf(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  std::string out;
  detail::format_into(ctx, ctx.arg_ptr(1), 2, out);
  // Unbounded write: the classic overflow vector.
  bulk::store_host(ctx.machine, dest, out.data(), out.size());
  as.store8(dest + out.size(), 0);  // unticked, as in the reference epilogue
  return SimValue::integer(static_cast<std::int64_t>(out.size()));
}

SimValue fn_snprintf(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  const std::uint64_t cap = ctx.arg_size(1);
  std::string out;
  detail::format_into(ctx, ctx.arg_ptr(2), 3, out);
  if (cap > 0) {
    const std::uint64_t n = std::min<std::uint64_t>(out.size(), cap - 1);
    bulk::store_host(ctx.machine, dest, out.data(), n);
    as.store8(dest + n, 0);  // unticked, as in the reference epilogue
  }
  return SimValue::integer(static_cast<std::int64_t>(out.size()));
}

// THE classic: gets() writes the pending stdin line into the caller's
// buffer with no bound whatsoever.
SimValue fn_gets(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr dest = ctx.arg_ptr(0);
  simlib::LibState& st = ctx.state;
  if (st.stdin_pos >= st.stdin_content.size()) return SimValue::null();  // EOF
  // The newline is consumed (one tick, stdin_pos advances) but never stored.
  const std::uint64_t avail = st.stdin_content.size() - st.stdin_pos;
  const char* src = st.stdin_content.data() + st.stdin_pos;
  const void* nl = std::memchr(src, '\n', avail);
  const std::uint64_t stored =
      nl != nullptr ? static_cast<std::uint64_t>(static_cast<const char*>(nl) - src) : avail;
  bulk::store_host(ctx.machine, dest, src, stored, &st.stdin_pos);
  if (nl != nullptr) {
    ctx.machine.tick();  // the newline iteration: may hang before consuming
    ++st.stdin_pos;
  }
  as.store8(dest + stored, 0);  // unticked, as in the reference epilogue
  return SimValue::ptr(dest);
}

SimValue fn_getchar(CallContext& ctx) {
  simlib::LibState& st = ctx.state;
  ctx.machine.tick();
  if (st.stdin_pos >= st.stdin_content.size()) return SimValue::integer(-1);
  return SimValue::integer(static_cast<std::uint8_t>(st.stdin_content[st.stdin_pos++]));
}

SimValue fn_puts(CallContext& ctx) {
  AddressSpace& as = ctx.machine.mem();
  const Addr s = ctx.arg_ptr(0);
  std::uint64_t i = 0;
  while (true) {
    const std::uint64_t extent = as.span_extent(s + i, mem::Perm::kRead);
    if (extent == 0) {
      bulk::replay_load(ctx.machine, s + i);
      continue;
    }
    const std::byte* p = as.span(s + i, extent, mem::Perm::kRead);
    const void* hit = std::memchr(p, 0, extent);
    const auto k = hit != nullptr
                       ? static_cast<std::uint64_t>(static_cast<const std::byte*>(hit) - p)
                       : extent;
    const std::uint64_t want = hit != nullptr ? k + 1 : extent;
    const std::uint64_t w = ctx.machine.budget_units(want);
    ctx.state.stdout_capture.append(reinterpret_cast<const char*>(p), std::min(w, k));
    bulk::settle(ctx.machine, w, want);
    if (hit != nullptr) break;
    i += extent;
  }
  ctx.state.stdout_capture += '\n';
  return SimValue::integer(1);
}

SimValue fn_printf(CallContext& ctx) {
  std::string out;
  detail::format_into(ctx, ctx.arg_ptr(0), 1, out);
  ctx.state.stdout_capture += out;
  return SimValue::integer(static_cast<std::int64_t>(out.size()));
}

}  // namespace

void register_stdio_funcs(SharedLibrary& lib) {
  lib.add(make_symbol("fopen", "open a stream",
                      "FILE *fopen(const char *pathname, const char *mode);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 CSTRING",
                       "ERRNO EINVAL ENOENT EMFILE ENOMEM"},
                      fn_fopen));
  lib.add(make_symbol("fclose", "close a stream", "int fclose(FILE *stream);",
                      {"NONNULL 1", "ARG 1 FILE"}, fn_fclose));
  lib.add(make_symbol("fread", "read from a stream",
                      "size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);",
                      {"NONNULL 1 4", "ARG 4 FILE",
                       "ARG 1 BUF WRITE SIZE mul(arg(2),arg(3))", "ERRNO EBADF EIO"},
                      fn_fread));
  lib.add(make_symbol("fwrite", "write to a stream",
                      "size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);",
                      {"NONNULL 1 4", "ARG 4 FILE",
                       "ARG 1 BUF READ SIZE mul(arg(2),arg(3))", "ERRNO EBADF EIO"},
                      fn_fwrite));
  lib.add(make_symbol("fgets", "read a line from a stream",
                      "char *fgets(char *s, int size, FILE *stream);",
                      {"NONNULL 1 3", "ARG 3 FILE", "ARG 1 BUF WRITE SIZE arg(2)",
                       "ERRNO EBADF"},
                      fn_fgets));
  lib.add(make_symbol("fputs", "write a string to a stream",
                      "int fputs(const char *s, FILE *stream);",
                      {"NONNULL 1 2", "ARG 1 CSTRING", "ARG 2 FILE", "ERRNO EBADF",
                       "CALLS strlen"},
                      fn_fputs));
  lib.add(make_symbol("fgetc", "read a character from a stream",
                      "int fgetc(FILE *stream);", {"NONNULL 1", "ARG 1 FILE", "ERRNO EBADF"},
                      fn_fgetc));
  lib.add(make_symbol("fputc", "write a character to a stream",
                      "int fputc(int c, FILE *stream);",
                      {"NONNULL 2", "ARG 2 FILE", "ERRNO EBADF"}, fn_fputc));
  lib.add(make_symbol("feof", "test a stream's end-of-file flag",
                      "int feof(FILE *stream);", {"NONNULL 1", "ARG 1 FILE"}, fn_feof));
  lib.add(make_symbol("fflush", "flush a stream",
                      "int fflush(FILE *stream);", {"ALLOWNULL 1", "ARG 1 FILE"}, fn_fflush));
  lib.add(make_symbol("ftell", "report a stream position",
                      "long ftell(FILE *stream);", {"NONNULL 1", "ARG 1 FILE"}, fn_ftell));
  lib.add(make_symbol("rewind", "reset a stream position",
                      "void rewind(FILE *stream);", {"NONNULL 1", "ARG 1 FILE"}, fn_rewind));
  lib.add(make_symbol("remove", "delete a file",
                      "int remove(const char *pathname);",
                      {"NONNULL 1", "ARG 1 CSTRING", "ERRNO ENOENT"}, fn_remove));
  lib.add(make_symbol("fprintf", "formatted write to a stream",
                      "int fprintf(FILE *stream, const char *format, ...);",
                      {"NONNULL 1 2", "ARG 1 FILE", "ARG 2 CSTRING", "VARARGS",
                       "ERRNO EBADF"},
                      fn_fprintf));
  lib.add(make_symbol("sprintf", "formatted write to a buffer (unbounded)",
                      "int sprintf(char *str, const char *format, ...);",
                      {"NONNULL 1 2", "ARG 2 CSTRING", "VARARGS",
                       "ARG 1 BUF WRITE SIZE formatted(2)+1"},
                      fn_sprintf));
  lib.add(make_symbol("snprintf", "formatted write to a bounded buffer",
                      "int snprintf(char *str, size_t size, const char *format, ...);",
                      {"NONNULL 1 3", "ARG 3 CSTRING", "VARARGS",
                       "ARG 1 BUF WRITE SIZE arg(2)"},
                      fn_snprintf));
  lib.add(make_symbol("gets", "read a line from stdin (unbounded write)",
                      "char *gets(char *s);",
                      {"NONNULL 1", "ARG 1 BUF WRITE SIZE stdinline()+1"}, fn_gets));
  lib.add(make_symbol("getchar", "read a character from stdin",
                      "int getchar(void);", {"STATEFUL"}, fn_getchar));
  lib.add(make_symbol("puts", "write a string to stdout",
                      "int puts(const char *s);",
                      {"NONNULL 1", "ARG 1 CSTRING", "CALLS strlen"}, fn_puts));
  lib.add(make_symbol("printf", "formatted write to stdout",
                      "int printf(const char *format, ...);",
                      {"NONNULL 1", "ARG 1 CSTRING", "VARARGS"}, fn_printf));
}

}  // namespace healers::simlib
