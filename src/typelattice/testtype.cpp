#include "typelattice/testtype.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "typelattice/subsume.hpp"

namespace healers::lattice {

using parser::TypeClass;
using simlib::SimValue;

std::string to_string(TestTypeId id) {
  switch (id) {
    case TestTypeId::kIntAsPtr: return "int_as_ptr";
    case TestTypeId::kNull: return "null";
    case TestTypeId::kWildPtr: return "wild_ptr";
    case TestTypeId::kFreedPtr: return "freed_ptr";
    case TestTypeId::kMisaligned: return "misaligned";
    case TestTypeId::kReadOnlyCString: return "readonly_cstring";
    case TestTypeId::kUntermBuf: return "unterminated_buf";
    case TestTypeId::kTinyWritable: return "tiny_writable";
    case TestTypeId::kValidWritable: return "valid_writable";
    case TestTypeId::kValidCString: return "valid_cstring";
    case TestTypeId::kZero: return "zero";
    case TestTypeId::kOne: return "one";
    case TestTypeId::kNegOne: return "neg_one";
    case TestTypeId::kIntMin: return "int_min";
    case TestTypeId::kIntMax: return "int_max";
    case TestTypeId::kHugeSize: return "huge_size";
    case TestTypeId::kSmallRange: return "small_range";
    case TestTypeId::kByteRange: return "byte_range";
    case TestTypeId::kFZero: return "f_zero";
    case TestTypeId::kFOne: return "f_one";
    case TestTypeId::kFNegative: return "f_negative";
    case TestTypeId::kFHuge: return "f_huge";
    case TestTypeId::kFNan: return "f_nan";
    case TestTypeId::kFInf: return "f_inf";
  }
  return "?";
}

const std::vector<TestTypeId>& test_types_for(TypeClass cls) {
  static const std::vector<TestTypeId> kPointer = {
      TestTypeId::kIntAsPtr,  TestTypeId::kNull,         TestTypeId::kWildPtr,
      TestTypeId::kFreedPtr,  TestTypeId::kMisaligned,   TestTypeId::kReadOnlyCString,
      TestTypeId::kUntermBuf, TestTypeId::kTinyWritable, TestTypeId::kValidWritable,
      TestTypeId::kValidCString};
  static const std::vector<TestTypeId> kIntegral = {
      TestTypeId::kZero,   TestTypeId::kOne,      TestTypeId::kNegOne,
      TestTypeId::kIntMin, TestTypeId::kIntMax,   TestTypeId::kHugeSize,
      TestTypeId::kSmallRange, TestTypeId::kByteRange};
  static const std::vector<TestTypeId> kFloating = {
      TestTypeId::kFZero, TestTypeId::kFOne, TestTypeId::kFNegative,
      TestTypeId::kFHuge, TestTypeId::kFNan, TestTypeId::kFInf};
  static const std::vector<TestTypeId> kNone = {};
  switch (cls) {
    case TypeClass::kPointer: return kPointer;
    case TypeClass::kIntegral: return kIntegral;
    case TypeClass::kFloating: return kFloating;
    case TypeClass::kVoid: return kNone;
  }
  return kNone;
}

mem::Addr ValueFactory::writable_buffer(std::uint64_t size, const std::string& fill) {
  const mem::Addr addr = process_.scratch(size, mem::Perm::kReadWrite, "probe_buf");
  const std::string text = fill.substr(0, size == 0 ? 0 : size - 1);
  process_.machine().mem().write_cstring(addr, text);
  return addr;
}

mem::Addr ValueFactory::valid_file() {
  // A FILE* can only be fabricated through the library itself.
  const mem::Addr path = process_.rodata_cstring("/probe/file.txt");
  const mem::Addr mode = process_.rodata_cstring("w+");
  const simlib::SimValue file = process_.call("fopen", {SimValue::ptr(path), SimValue::ptr(mode)});
  if (file.as_ptr() == 0) {
    throw std::runtime_error("ValueFactory::valid_file: fopen failed in testbed");
  }
  return file.as_ptr();
}

std::vector<TestCase> ValueFactory::cases_of(TestTypeId id, int variants) {
  // Integral/floating cases are pure data — they fabricate no testbed state
  // — and the subsumption pruner replays them to synthesize implied
  // verdicts, so they live in one place (subsume.cpp).
  if (is_scalar_type(id)) return scalar_cases(id, variants, rng_);
  std::vector<TestCase> out;
  auto add = [&out, id](SimValue value, std::string note) {
    out.push_back(TestCase{id, value, std::move(note)});
  };
  switch (id) {
    case TestTypeId::kIntAsPtr: {
      add(SimValue::ptr(1), "ptr 0x1");
      add(SimValue::ptr(0xfff), "ptr 0xfff (below first mapping)");
      for (int i = 0; i < variants; ++i) {
        const auto raw = rng_.next();
        add(SimValue::ptr(raw), "random int as ptr");
      }
      break;
    }
    case TestTypeId::kNull:
      add(SimValue::null(), "NULL");
      break;
    case TestTypeId::kWildPtr:
      add(SimValue::ptr(mem::AddressSpace::wild_pointer()), "unmapped high address");
      add(SimValue::ptr(0x7fff00000000ULL), "unmapped canonical-ish address");
      break;
    case TestTypeId::kFreedPtr: {
      const mem::Addr p = process_.machine().heap().malloc(32);
      if (p != 0) {
        process_.machine().mem().write_cstring(p, "stale");
        process_.machine().heap().free(p);
        add(SimValue::ptr(p), "freed heap pointer");
      }
      break;
    }
    case TestTypeId::kMisaligned: {
      const mem::Addr buf = writable_buffer(64, "misaligned-content");
      add(SimValue::ptr(buf + 1), "buffer base + 1");
      add(SimValue::ptr(buf + 3), "buffer base + 3");
      break;
    }
    case TestTypeId::kReadOnlyCString:
      add(SimValue::ptr(process_.rodata_cstring("read-only literal")), "rodata string");
      break;
    case TestTypeId::kUntermBuf: {
      // A writable region with NO terminating NUL anywhere inside.
      const mem::Addr addr = process_.scratch(64, mem::Perm::kReadWrite, "unterm_buf");
      for (std::uint64_t i = 0; i < 64; ++i) {
        process_.machine().mem().store8(addr + i, 'A');
      }
      add(SimValue::ptr(addr), "64B buffer without NUL");
      break;
    }
    case TestTypeId::kTinyWritable:
      add(SimValue::ptr(writable_buffer(4, "abc")), "4-byte writable buffer");
      break;
    case TestTypeId::kValidWritable:
      add(SimValue::ptr(writable_buffer(256, "hello")), "256B writable buffer");
      break;
    case TestTypeId::kValidCString: {
      const mem::Addr p = process_.alloc_cstring("a pristine heap string");
      add(SimValue::ptr(p), "heap C string");
      break;
    }
    default:
      break;  // scalar types handled above
  }
  return out;
}

simlib::SimValue ValueFactory::safe_value(const parser::ManPage& page, int arg_index_1based) {
  const auto& param = page.proto.params.at(static_cast<std::size_t>(arg_index_1based) - 1);
  const parser::ArgAnnotation* note = page.arg(arg_index_1based);
  switch (param.type.classify()) {
    case TypeClass::kPointer: {
      if (note != nullptr && note->is_file) return SimValue::ptr(valid_file());
      if (note != nullptr && note->is_heapptr) {
        const mem::Addr p = process_.machine().heap().malloc(64);
        if (p == 0) throw std::runtime_error("safe_value: testbed heap exhausted");
        process_.machine().mem().write_cstring(p, "heap");
        return SimValue::ptr(p);
      }
      if (note != nullptr && note->is_funcptr) {
        // A valid callback: byte-wise comparator, the shape qsort expects.
        return SimValue::ptr(process_.register_callback(
            "probe_compar", [](simlib::CallContext& cb) {
              const int a = cb.machine.mem().load8(cb.arg_ptr(0));
              const int b = cb.machine.mem().load8(cb.arg_ptr(1));
              return SimValue::integer(a < b ? -1 : (a > b ? 1 : 0));
            }));
      }
      // Generous writable, terminated buffer works for read and write roles.
      return SimValue::ptr(writable_buffer(512, "sample"));
    }
    case TypeClass::kIntegral: {
      if (note != nullptr && note->range.has_value()) {
        // Midpoint of the documented domain.
        return SimValue::integer(note->range->first +
                                 (note->range->second - note->range->first) / 2);
      }
      // Small positive: safe as a size for the 512-byte buffers above, safe
      // as a character, safe as a base=10-ish parameter... except base
      // constraints; strto* accept 10.
      return SimValue::integer(param.name == "base" ? 10 : 4);
    }
    case TypeClass::kFloating:
      return SimValue::fp(1.5);
    case TypeClass::kVoid:
      return SimValue::integer(0);
  }
  return SimValue::integer(0);
}

}  // namespace healers::lattice
