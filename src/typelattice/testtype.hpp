// Ballista-style test-type hierarchy (paper §2.2, Fig 2).
//
// The prototype of a function names only language types ("char *"); the
// *robust* API needs semantic types ("non-NULL, writable, NUL-terminated
// buffer of at least strlen(src)+1 bytes"). HEALERS discovers the gap by
// probing every argument with values drawn from a hierarchy of test types —
// from hostile (wild integers reinterpreted as pointers) to pristine (a
// valid writable C string) — while holding the other arguments at their
// safest values. The per-type pass/fail profile is then folded into the
// weakest safe argument type (see injector/robust_spec.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linker/process.hpp"
#include "parser/ctypes.hpp"
#include "parser/manpage.hpp"
#include "simlib/value.hpp"
#include "support/rng.hpp"

namespace healers::lattice {

enum class TestTypeId : std::uint8_t {
  // --- pointer class, roughly weakest (most hostile) first ---
  kIntAsPtr,        // small/huge integers reinterpreted as pointers
  kNull,            // NULL
  kWildPtr,         // unmapped high address
  kFreedPtr,        // heap pointer after free
  kMisaligned,      // valid buffer base + odd offset
  kReadOnlyCString, // valid string in read-only memory
  kUntermBuf,       // readable+writable buffer with no NUL inside
  kTinyWritable,    // valid, terminated, but only 4 usable bytes
  kValidWritable,   // 256-byte writable buffer holding a short string
  kValidCString,    // pristine heap C string
  // --- integral class ---
  kZero,
  kOne,
  kNegOne,
  kIntMin,          // INT64_MIN and INT32_MIN variants
  kIntMax,          // INT64_MAX / INT32_MAX / SIZE_MAX-ish
  kHugeSize,        // sizes far beyond any mapped region
  kSmallRange,      // small positive values (1..16)
  kByteRange,       // values in [-1, 255] (EOF and char range)
  // --- floating class ---
  kFZero,
  kFOne,
  kFNegative,
  kFHuge,
  kFNan,
  kFInf,
};

[[nodiscard]] std::string to_string(TestTypeId id);

// One probe value plus provenance for reports.
struct TestCase {
  TestTypeId id;
  simlib::SimValue value;
  std::string note;
};

// The ordered test types probed for a given argument class.
[[nodiscard]] const std::vector<TestTypeId>& test_types_for(parser::TypeClass cls);

// Produces concrete probe values inside a given process's address space.
// A factory is bound to one process: the buffers and strings it fabricates
// live in that process, so probes must use the same process.
class ValueFactory {
 public:
  ValueFactory(linker::Process& process, Rng& rng) : process_(process), rng_(rng) {}

  // All probe cases of one test type; `variants` controls how many
  // randomized instances of the fuzzier types (kIntAsPtr, kIntMax, ...) are
  // generated. Deterministic given the Rng state.
  [[nodiscard]] std::vector<TestCase> cases_of(TestTypeId id, int variants);

  // The safest value for an argument, used to hold non-injected positions
  // steady. Uses the man-page annotation when available (valid FILE* for
  // FILE args, big buffer for write-buffer args, in-range integers); falls
  // back to the class default.
  [[nodiscard]] simlib::SimValue safe_value(const parser::ManPage& page, int arg_index_1based);

 private:
  [[nodiscard]] mem::Addr writable_buffer(std::uint64_t size, const std::string& fill);
  [[nodiscard]] mem::Addr valid_file();

  linker::Process& process_;
  Rng& rng_;
};

}  // namespace healers::lattice
