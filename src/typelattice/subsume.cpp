#include "typelattice/subsume.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace healers::lattice {

using parser::TypeClass;
using simlib::SimValue;

namespace {

constexpr std::size_t idx(TestTypeId id) noexcept { return static_cast<std::size_t>(id); }

struct Edge {
  TestTypeId hostile;  // pass(hostile) ⇒ pass(safe)
  TestTypeId safe;
};

// Direct dominance edges, hostile → safe. Each edge is a claim that every
// catalog function which passes all cases of `hostile` also passes all
// cases of `safe`, justified against the simulated memory model:
//
// Pointer class. kWildPtr values are unmapped, so a pass means the callee
// never dereferenced the argument on that path — every other pointer value
// passes too. The mapped-but-flawed types order by the operations they
// tolerate: kReadOnlyCString / kTinyWritable / kUntermBuf each bound reads
// or writes at least as tightly as kFreedPtr (whose chunk sits inside the
// one heap arena, where stray reads see a terminator within the free-list
// header and in-arena overflow is silent). kFreedPtr and kMisaligned are
// deliberately INCOMPARABLE: for memory-access roles a freed chunk bounds
// at least as tightly as a misaligned interior pointer, but for
// heap-management roles the order inverts — realloc accepts a freed
// pointer (still a block-aligned address the allocator recognizes) while
// rejecting anything that is not a block start, so pass(freed) must not
// imply pass(misaligned). kMisaligned (mapped, readable, writable,
// terminated) dominates kValidWritable, which dominates kValidCString.
// kNull passes
// only for allownull roles (free, realloc, endptr), all of which accept a
// pristine heap string. Between the two unmapped families, kWildPtr →
// kIntAsPtr is the antisymmetry-forced pick: both are sound (neither value
// survives a dereference), and kWildPtr is the cheaper verdict (2 cases vs
// 2+variants).
//
// Integral class. Size roles fault on anything past the mapped buffer, so
// kIntMax (which includes SIZE_MAX) dominates every other magnitude;
// kIntMax → kIntMin is likewise an antisymmetry-forced pick between two
// sound directions (no catalog function is hostile to negatives but
// tolerant of 2^63). kHugeSize → kSmallRange and the kSmallRange → kOne →
// kZero chain order sizes downward; kByteRange (EOF, 'A', 255) dominates
// kSmallRange and kNegOne for char/size roles alike.
//
// Floating class is a simple chain: NaN poisons every consumer that any
// other special value upsets.
constexpr Edge kEdges[] = {
    // pointer
    {TestTypeId::kWildPtr, TestTypeId::kIntAsPtr},
    {TestTypeId::kWildPtr, TestTypeId::kNull},
    {TestTypeId::kWildPtr, TestTypeId::kFreedPtr},
    {TestTypeId::kWildPtr, TestTypeId::kMisaligned},
    {TestTypeId::kWildPtr, TestTypeId::kReadOnlyCString},
    {TestTypeId::kWildPtr, TestTypeId::kUntermBuf},
    {TestTypeId::kWildPtr, TestTypeId::kTinyWritable},
    {TestTypeId::kReadOnlyCString, TestTypeId::kFreedPtr},
    {TestTypeId::kUntermBuf, TestTypeId::kFreedPtr},
    {TestTypeId::kTinyWritable, TestTypeId::kFreedPtr},
    // The flawed-but-mapped types still dominate kMisaligned directly (they
    // fail for every heap-management role, so the realloc inversion that
    // forbids kFreedPtr → kMisaligned cannot bite), and a freed chunk being
    // accepted implies the pristine heap string is too.
    {TestTypeId::kReadOnlyCString, TestTypeId::kMisaligned},
    {TestTypeId::kUntermBuf, TestTypeId::kMisaligned},
    {TestTypeId::kTinyWritable, TestTypeId::kMisaligned},
    {TestTypeId::kFreedPtr, TestTypeId::kValidCString},
    {TestTypeId::kMisaligned, TestTypeId::kValidWritable},
    {TestTypeId::kValidWritable, TestTypeId::kValidCString},
    {TestTypeId::kNull, TestTypeId::kValidCString},
    // integral
    {TestTypeId::kIntMax, TestTypeId::kIntMin},
    {TestTypeId::kIntMax, TestTypeId::kHugeSize},
    {TestTypeId::kIntMax, TestTypeId::kByteRange},
    {TestTypeId::kIntMax, TestTypeId::kNegOne},
    {TestTypeId::kHugeSize, TestTypeId::kSmallRange},
    {TestTypeId::kByteRange, TestTypeId::kSmallRange},
    {TestTypeId::kByteRange, TestTypeId::kNegOne},
    {TestTypeId::kSmallRange, TestTypeId::kOne},
    {TestTypeId::kOne, TestTypeId::kZero},
    {TestTypeId::kIntMin, TestTypeId::kNegOne},
    // floating
    {TestTypeId::kFNan, TestTypeId::kFInf},
    {TestTypeId::kFInf, TestTypeId::kFHuge},
    {TestTypeId::kFHuge, TestTypeId::kFNegative},
    {TestTypeId::kFNegative, TestTypeId::kFOne},
    {TestTypeId::kFOne, TestTypeId::kFZero},
};

// Hostile → safe per class. Pointer hostility matches canonical order;
// integral/floating canonical orders run safest-first, so the ranks here
// are their reverses (plus judgment calls among incomparable ids).
constexpr TestTypeId kPointerHostility[] = {
    TestTypeId::kWildPtr,      TestTypeId::kIntAsPtr,     TestTypeId::kNull,
    TestTypeId::kReadOnlyCString, TestTypeId::kUntermBuf, TestTypeId::kTinyWritable,
    TestTypeId::kFreedPtr,     TestTypeId::kMisaligned,   TestTypeId::kValidWritable,
    TestTypeId::kValidCString};
constexpr TestTypeId kIntegralHostility[] = {
    TestTypeId::kIntMax, TestTypeId::kIntMin,     TestTypeId::kHugeSize,
    TestTypeId::kByteRange, TestTypeId::kNegOne,  TestTypeId::kSmallRange,
    TestTypeId::kOne,    TestTypeId::kZero};
constexpr TestTypeId kFloatingHostility[] = {
    TestTypeId::kFNan, TestTypeId::kFInf, TestTypeId::kFHuge,
    TestTypeId::kFNegative, TestTypeId::kFOne, TestTypeId::kFZero};

constexpr TypeClass kClasses[] = {TypeClass::kPointer, TypeClass::kIntegral,
                                  TypeClass::kFloating};

[[nodiscard]] TypeClass class_of(TestTypeId id) noexcept {
  if (idx(id) <= idx(TestTypeId::kValidCString)) return TypeClass::kPointer;
  if (idx(id) <= idx(TestTypeId::kByteRange)) return TypeClass::kIntegral;
  return TypeClass::kFloating;
}

}  // namespace

std::size_t case_count(TestTypeId id, int variants) noexcept {
  const auto v = static_cast<std::size_t>(variants < 0 ? 0 : variants);
  switch (id) {
    case TestTypeId::kIntAsPtr: return 2 + v;
    case TestTypeId::kNull: return 1;
    case TestTypeId::kWildPtr: return 2;
    case TestTypeId::kFreedPtr: return 1;
    case TestTypeId::kMisaligned: return 2;
    case TestTypeId::kReadOnlyCString: return 1;
    case TestTypeId::kUntermBuf: return 1;
    case TestTypeId::kTinyWritable: return 1;
    case TestTypeId::kValidWritable: return 1;
    case TestTypeId::kValidCString: return 1;
    case TestTypeId::kZero: return 1;
    case TestTypeId::kOne: return 1;
    case TestTypeId::kNegOne: return 1;
    case TestTypeId::kIntMin: return 2;
    case TestTypeId::kIntMax: return 3;
    case TestTypeId::kHugeSize: return 1 + v;
    case TestTypeId::kSmallRange: return 3;
    case TestTypeId::kByteRange: return 3;
    case TestTypeId::kFZero:
    case TestTypeId::kFOne:
    case TestTypeId::kFNegative:
    case TestTypeId::kFHuge:
    case TestTypeId::kFNan:
    case TestTypeId::kFInf: return 1;
  }
  return 0;
}

bool is_scalar_type(TestTypeId id) noexcept {
  return class_of(id) != TypeClass::kPointer;
}

std::vector<TestCase> scalar_cases(TestTypeId id, int variants, Rng& rng) {
  std::vector<TestCase> out;
  auto add = [&out, id](SimValue value, std::string note) {
    out.push_back(TestCase{id, value, std::move(note)});
  };
  switch (id) {
    case TestTypeId::kZero:
      add(SimValue::integer(0), "0");
      break;
    case TestTypeId::kOne:
      add(SimValue::integer(1), "1");
      break;
    case TestTypeId::kNegOne:
      add(SimValue::integer(-1), "-1");
      break;
    case TestTypeId::kIntMin:
      add(SimValue::integer(static_cast<std::int64_t>(0x8000000000000000ULL)), "INT64_MIN");
      add(SimValue::integer(-2147483648LL), "INT32_MIN");
      break;
    case TestTypeId::kIntMax:
      add(SimValue::integer(0x7fffffffffffffffLL), "INT64_MAX");
      add(SimValue::integer(2147483647LL), "INT32_MAX");
      add(SimValue::integer(-1), "SIZE_MAX (as unsigned)");
      break;
    case TestTypeId::kHugeSize:
      add(SimValue::integer(1LL << 40), "2^40");
      for (int i = 0; i < variants; ++i) {
        add(SimValue::integer(rng.between(1LL << 24, 1LL << 36)), "random huge size");
      }
      break;
    case TestTypeId::kSmallRange:
      add(SimValue::integer(2), "2");
      add(SimValue::integer(7), "7");
      add(SimValue::integer(16), "16");
      break;
    case TestTypeId::kByteRange:
      add(SimValue::integer(-1), "EOF");
      add(SimValue::integer('A'), "'A'");
      add(SimValue::integer(255), "255");
      break;
    case TestTypeId::kFZero:
      add(SimValue::fp(0.0), "0.0");
      break;
    case TestTypeId::kFOne:
      add(SimValue::fp(1.0), "1.0");
      break;
    case TestTypeId::kFNegative:
      add(SimValue::fp(-1.5), "-1.5");
      break;
    case TestTypeId::kFHuge:
      add(SimValue::fp(1e308), "1e308");
      break;
    case TestTypeId::kFNan:
      add(SimValue::fp(std::nan("")), "NaN");
      break;
    case TestTypeId::kFInf:
      add(SimValue::fp(std::numeric_limits<double>::infinity()), "+inf");
      break;
    default:
      break;  // pointer types fabricate testbed state; not scalar
  }
  return out;
}

ImplicationIndex::ImplicationIndex() {
  for (const Edge& e : kEdges) closure_[idx(e.hostile)][idx(e.safe)] = true;
  // Warshall closure over the 24-id universe.
  for (std::size_t k = 0; k < kTestTypeCount; ++k) {
    for (std::size_t i = 0; i < kTestTypeCount; ++i) {
      if (!closure_[i][k]) continue;
      for (std::size_t j = 0; j < kTestTypeCount; ++j) {
        if (closure_[k][j]) closure_[i][j] = true;
      }
    }
  }
  for (std::size_t i = 0; i < kTestTypeCount; ++i) {
    hostility_[i] = kTestTypeCount;
    canonical_[i] = kTestTypeCount;
  }
  auto rank = [this](const TestTypeId* ids, std::size_t n) {
    for (std::size_t r = 0; r < n; ++r) hostility_[idx(ids[r])] = r;
  };
  rank(kPointerHostility, std::size(kPointerHostility));
  rank(kIntegralHostility, std::size(kIntegralHostility));
  rank(kFloatingHostility, std::size(kFloatingHostility));
  for (TypeClass cls : kClasses) {
    const auto& canon = test_types_for(cls);
    for (std::size_t r = 0; r < canon.size(); ++r) canonical_[idx(canon[r])] = r;
    // implied_pass / implied_fail in canonical order, so every consumer of
    // the closure iterates deterministically.
    for (TestTypeId a : canon) {
      for (TestTypeId b : canon) {
        if (closure_[idx(a)][idx(b)]) pass_[idx(a)].push_back(b);
        if (closure_[idx(b)][idx(a)]) fail_[idx(a)].push_back(b);
      }
    }
  }
}

const ImplicationIndex& ImplicationIndex::instance() {
  static const ImplicationIndex index;
  return index;
}

bool ImplicationIndex::subsumes(TestTypeId hostile, TestTypeId safe) const noexcept {
  return closure_[idx(hostile)][idx(safe)];
}

const std::vector<TestTypeId>& ImplicationIndex::implied_pass(TestTypeId id) const noexcept {
  return pass_[idx(id)];
}

const std::vector<TestTypeId>& ImplicationIndex::implied_fail(TestTypeId id) const noexcept {
  return fail_[idx(id)];
}

std::size_t ImplicationIndex::reach(TestTypeId id) const noexcept {
  return pass_[idx(id)].size();
}

std::size_t ImplicationIndex::hostility_rank(TestTypeId id) const noexcept {
  return hostility_[idx(id)];
}

std::size_t ImplicationIndex::canonical_rank(TestTypeId id) const noexcept {
  return canonical_[idx(id)];
}

std::string ImplicationIndex::validate() {
  const ImplicationIndex& x = instance();
  std::ostringstream bad;
  // Totality of the ordering: every id has a hostility rank and a canonical
  // rank inside exactly one class, and ranks are a permutation.
  for (TypeClass cls : kClasses) {
    const auto& canon = test_types_for(cls);
    std::vector<bool> seen(canon.size(), false);
    for (TestTypeId id : canon) {
      if (class_of(id) != cls) {
        bad << to_string(id) << " listed under the wrong class";
        return bad.str();
      }
      const std::size_t h = x.hostility_rank(id);
      if (h >= canon.size() || seen[h]) {
        bad << to_string(id) << " has no unique hostility rank in its class";
        return bad.str();
      }
      seen[h] = true;
      if (x.canonical_rank(id) >= canon.size()) {
        bad << to_string(id) << " missing from canonical order";
        return bad.str();
      }
    }
  }
  for (std::size_t i = 0; i < kTestTypeCount; ++i) {
    const auto a = static_cast<TestTypeId>(i);
    if (x.hostility_rank(a) >= kTestTypeCount) {
      bad << to_string(a) << " is unordered (no hostility rank)";
      return bad.str();
    }
    for (std::size_t j = 0; j < kTestTypeCount; ++j) {
      const auto b = static_cast<TestTypeId>(j);
      // Antisymmetry (with irreflexivity): a cycle in the direct edges
      // would surface here as subsumes(a, a) after the Warshall pass.
      if (x.subsumes(a, b) && x.subsumes(b, a)) {
        bad << "antisymmetry violated: " << to_string(a) << " <-> " << to_string(b);
        return bad.str();
      }
      if (x.subsumes(a, b) && class_of(a) != class_of(b)) {
        bad << "cross-class edge: " << to_string(a) << " -> " << to_string(b);
        return bad.str();
      }
      // Transitivity: the stored relation must be its own closure.
      if (!x.subsumes(a, b)) continue;
      for (std::size_t k = 0; k < kTestTypeCount; ++k) {
        const auto c = static_cast<TestTypeId>(k);
        if (x.subsumes(b, c) && !x.subsumes(a, c)) {
          bad << "transitivity violated: " << to_string(a) << " -> " << to_string(b)
              << " -> " << to_string(c);
          return bad.str();
        }
      }
    }
  }
  return "";
}

std::string ImplicationProfileStore::signature(TypeClass cls,
                                               const parser::ArgAnnotation* note) {
  std::string out;
  switch (cls) {
    case TypeClass::kPointer: out = "pointer"; break;
    case TypeClass::kIntegral: out = "integral"; break;
    case TypeClass::kFloating: out = "floating"; break;
    case TypeClass::kVoid: out = "void"; break;
  }
  if (note == nullptr) return out;
  std::vector<std::string> flags;
  if (note->nonnull) flags.emplace_back("nonnull");
  if (note->allownull) flags.emplace_back("allownull");
  if (note->cstring) flags.emplace_back("cstring");
  if (note->cursor) flags.emplace_back("cursor");
  if (note->is_file) flags.emplace_back("file");
  if (note->is_heapptr) flags.emplace_back("heapptr");
  if (note->is_funcptr) flags.emplace_back("funcptr");
  if (note->saveptr_index.has_value()) flags.emplace_back("saveptr");
  if (note->range.has_value()) flags.emplace_back("range");
  if (note->write_size.has_value()) flags.emplace_back("wsize");
  if (note->read_size.has_value()) flags.emplace_back("rsize");
  if (flags.empty()) return out;
  std::sort(flags.begin(), flags.end());
  out += '|';
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (i != 0) out += ',';
    out += flags[i];
  }
  return out;
}

std::optional<SignatureProfile> ImplicationProfileStore::lookup(
    const std::string& signature) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = profiles_.find(signature);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

void ImplicationProfileStore::learn(const std::string& signature, TestTypeId id,
                                    bool passed, std::uint32_t weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  SignatureProfile& p = profiles_[signature];
  p.signature = signature;
  auto& slot = passed ? p.passes[idx(id)] : p.fails[idx(id)];
  slot += weight;
}

std::vector<SignatureProfile> ImplicationProfileStore::export_profiles() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SignatureProfile> out;
  out.reserve(profiles_.size());
  for (const auto& [sig, profile] : profiles_) out.push_back(profile);
  return out;  // map order == sorted by signature
}

void ImplicationProfileStore::import_profiles(const std::vector<SignatureProfile>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const SignatureProfile& e : entries) {
    SignatureProfile& p = profiles_[e.signature];
    p.signature = e.signature;
    for (std::size_t i = 0; i < kTestTypeCount; ++i) {
      p.passes[i] += e.passes[i];
      p.fails[i] += e.fails[i];
    }
  }
}

std::size_t ImplicationProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return profiles_.size();
}

}  // namespace healers::lattice
