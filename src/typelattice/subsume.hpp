// Subsumption over the Ballista test-type lattice (paper §2.2, Fig 2).
//
// The campaign enumerator emits every (function, argument, test type) probe,
// but the lattice already implies many outcomes: a probe with a *more
// hostile* value exercises a superset of the failure modes of a safer one,
// so pass(hostile) ⇒ pass(safe) for every dominance edge encoded here. The
// ImplicationIndex turns that relation into a pruning oracle: once a
// dominating type passes, the dominated types' verdicts are synthesized
// without touching a testbed (injector/injector.cpp). The contrapositive —
// fail(safe) ⇒ fail(hostile) — is also exposed, but only for *ordering*:
// a failing verdict embeds fault addresses and per-case failure kinds that
// cannot be synthesized, so failures always execute.
//
// Every edge is a semantic claim about the simulated libc and memory model
// (one heap arena with silent in-arena overflow, dedicated scratch regions
// that fault past their size, free-list pointers whose high bytes terminate
// strings). The full-catalog differential test (tests/test_subsume.cpp)
// byte-compares pruned vs unpruned campaign XML, so an unsound edge cannot
// land silently.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "parser/ctypes.hpp"
#include "parser/manpage.hpp"
#include "typelattice/testtype.hpp"

namespace healers::lattice {

inline constexpr std::size_t kTestTypeCount = 24;

// The number of probe cases a test type expands to, as a pure function of
// the type and the --variants knob. Must equal ValueFactory::cases_of(id,
// variants).size() for every id (asserted by the injector before it trusts
// a synthesized verdict, and cross-checked against the live factory in
// tests). kFreedPtr assumes the testbed malloc succeeds, which holds for
// any heap large enough to load the catalog.
[[nodiscard]] std::size_t case_count(TestTypeId id, int variants) noexcept;

// The integral/floating probe cases as pure data. ValueFactory::cases_of
// delegates to this for both classes — scalar fabrication never touches the
// testbed process — so an implied integral verdict can replay the exact
// values (including kHugeSize's rng draws) that execution would have
// recorded. Returns empty for pointer types, which do fabricate state.
[[nodiscard]] std::vector<TestCase> scalar_cases(TestTypeId id, int variants, Rng& rng);
[[nodiscard]] bool is_scalar_type(TestTypeId id) noexcept;

// Dominance over test types of one class, closed under transitivity.
class ImplicationIndex {
 public:
  static const ImplicationIndex& instance();

  // True when `hostile` strictly dominates `safe`: pass(hostile) ⇒
  // pass(safe). Irreflexive; false across classes.
  [[nodiscard]] bool subsumes(TestTypeId hostile, TestTypeId safe) const noexcept;

  // Transitive closure of types whose pass is implied by `id` passing, in
  // canonical test_types_for order (excludes `id` itself).
  [[nodiscard]] const std::vector<TestTypeId>& implied_pass(TestTypeId id) const noexcept;

  // Contrapositive closure: types whose *type verdict* must also fail when
  // `id` fails. Ordering-only — see the header comment.
  [[nodiscard]] const std::vector<TestTypeId>& implied_fail(TestTypeId id) const noexcept;

  // |implied_pass(id)| — how much a pass of `id` resolves.
  [[nodiscard]] std::size_t reach(TestTypeId id) const noexcept;

  // Position of `id` in its class's hostile→safe order (0 = most hostile).
  // Distinct from canonical enumeration order: integral/floating classes
  // enumerate safest-first.
  [[nodiscard]] std::size_t hostility_rank(TestTypeId id) const noexcept;

  // Index of `id` within test_types_for(its class).
  [[nodiscard]] std::size_t canonical_rank(TestTypeId id) const noexcept;

  // Consistency check over the whole table: every id is ordered (appears in
  // exactly one class with a hostility rank), the relation is antisymmetric
  // (no id subsumes itself, directly or through a cycle) and transitively
  // closed, and no edge crosses classes. Returns "" when consistent, else a
  // description of the first violation. Run by tests and by validate-time
  // asserts; never fails for the built-in table.
  [[nodiscard]] static std::string validate();

 private:
  ImplicationIndex();

  std::array<std::array<bool, kTestTypeCount>, kTestTypeCount> closure_{};
  std::array<std::vector<TestTypeId>, kTestTypeCount> pass_;
  std::array<std::vector<TestTypeId>, kTestTypeCount> fail_;
  std::array<std::size_t, kTestTypeCount> hostility_{};
  std::array<std::size_t, kTestTypeCount> canonical_{};
};

// One learned pass/fail tally per test type for one argument signature.
struct SignatureProfile {
  std::string signature;
  std::array<std::uint32_t, kTestTypeCount> passes{};
  std::array<std::uint32_t, kTestTypeCount> fails{};

  // Majority vote; unknown types count as fail (conservative: a predicted
  // fail is merely executed, never synthesized).
  [[nodiscard]] bool predicts_pass(TestTypeId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    return passes[i] > fails[i];
  }
  [[nodiscard]] bool seen(TestTypeId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    return passes[i] + fails[i] > 0;
  }
};

// Cross-campaign implication learning: verdict tallies keyed by argument
// *signature* (type class + annotation shape), not by function, so a warm
// store orders probes for novel-but-related signatures. The Toolkit owns
// one store and threads it through every campaign; the server persists it
// in the HSCE1 spec-cache file (HSIP1 entries). Thread-safe.
class ImplicationProfileStore {
 public:
  // Canonical signature text, e.g. "pointer", "pointer|cstring,nonnull",
  // "integral|range". Annotation flags are sorted and stable across runs.
  [[nodiscard]] static std::string signature(parser::TypeClass cls,
                                             const parser::ArgAnnotation* note);

  // Snapshot of one signature's tallies; nullopt when never seen.
  [[nodiscard]] std::optional<SignatureProfile> lookup(const std::string& signature) const;

  void learn(const std::string& signature, TestTypeId id, bool passed,
             std::uint32_t weight = 1);

  // Sorted by signature, so persistence and telemetry are deterministic.
  [[nodiscard]] std::vector<SignatureProfile> export_profiles() const;
  // Merge-adds tallies (import twice ⇒ double weight, like any tally).
  void import_profiles(const std::vector<SignatureProfile>& entries);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SignatureProfile> profiles_;
};

}  // namespace healers::lattice
