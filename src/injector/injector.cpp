#include "injector/injector.hpp"

#include <algorithm>

#include "parser/manpage.hpp"

namespace healers::injector {

using lattice::TestTypeId;
using linker::CallOutcome;

FaultInjector::FaultInjector(const linker::LibraryCatalog& catalog, InjectorConfig config)
    : catalog_(catalog), config_(config), rng_(config.seed) {}

linker::CallOutcome FaultInjector::run_probe(const simlib::SharedLibrary& lib,
                                             const parser::ManPage& page,
                                             std::size_t inject_index_0based, TestTypeId id,
                                             std::size_t case_index, bool& case_existed) {
  // One probe = one fresh process, as the paper forked one child per probe.
  mem::MachineConfig machine_config;
  machine_config.heap_size = config_.testbed_heap;
  machine_config.stack_size = config_.testbed_stack;
  machine_config.step_budget = config_.probe_step_budget;
  linker::Process process("probe:" + page.proto.name, machine_config);
  // Testbed environment: pending console input so stdin-consuming functions
  // (gets) do real work during probes.
  process.state().stdin_content = "a line of console input for the probe\n";
  for (const std::string& soname : catalog_.sonames()) {
    process.load_library(catalog_.find(soname));
  }
  if (!lib.defines(page.proto.name)) {
    // Caller verified; belt and braces.
    case_existed = false;
    return CallOutcome{};
  }

  lattice::ValueFactory factory(process, rng_);
  const std::vector<lattice::TestCase> cases = factory.cases_of(id, config_.variants);
  if (case_index >= cases.size()) {
    case_existed = false;
    return CallOutcome{};
  }
  case_existed = true;

  std::vector<simlib::SimValue> args;
  args.reserve(page.proto.params.size());
  for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
    if (j == inject_index_0based) {
      args.push_back(cases[case_index].value);
    } else {
      args.push_back(factory.safe_value(page, static_cast<int>(j) + 1));
    }
  }
  ++probes_executed_;
  return process.supervised_call(page.proto.name, std::move(args));
}

DerivedChecks derive_checks(const ArgSpec& arg, const parser::ArgAnnotation* note) {
  DerivedChecks checks;
  const auto failed = [&arg](TestTypeId id) {
    const TypeVerdict* v = arg.verdict(id);
    return v != nullptr && v->failed();
  };

  if (arg.cls == parser::TypeClass::kPointer) {
    checks.require_nonnull = failed(TestTypeId::kNull);
    checks.require_mapped = failed(TestTypeId::kIntAsPtr) || failed(TestTypeId::kWildPtr) ||
                            failed(TestTypeId::kFreedPtr);
    checks.require_writable = failed(TestTypeId::kReadOnlyCString);
    checks.require_terminated = failed(TestTypeId::kUntermBuf);
    checks.require_size_check = failed(TestTypeId::kTinyWritable);
    // Buffer semantics imply a mapped pointer even when the hostile probes
    // happened not to fault (e.g. variants landed on mapped garbage).
    if (checks.require_writable || checks.require_terminated || checks.require_size_check) {
      checks.require_mapped = true;
    }
    // Opaque-handle roles cannot be told apart by buffer probes (everything
    // non-handle fails); the annotation names the role, the near-universal
    // failure profile corroborates it.
    if (note != nullptr && note->is_file) {
      checks.require_file = true;
      checks.require_nonnull = true;
      checks.require_mapped = true;
    }
    if (note != nullptr && note->is_heapptr) {
      checks.require_heap_pointer = true;
    }
    if (note != nullptr && note->is_funcptr) {
      checks.require_callback = true;
      checks.require_nonnull = true;
    }
    return checks;
  }

  if (arg.cls == parser::TypeClass::kIntegral) {
    bool any_failure = false;
    for (const TypeVerdict& v : arg.verdicts) any_failure = any_failure || v.failed();
    if (any_failure) {
      if (note != nullptr && note->range.has_value()) {
        checks.range = note->range;
      } else if (!arg.passing_int_values.empty()) {
        const auto [lo, hi] =
            std::minmax_element(arg.passing_int_values.begin(), arg.passing_int_values.end());
        checks.range = {*lo, *hi};
      } else {
        checks.range = {0, 0};  // nothing passed: only a degenerate domain is known safe
      }
    }
    return checks;
  }

  return checks;  // floating/void: no derivable preconditions
}

Result<RobustSpec> FaultInjector::probe_function(const simlib::SharedLibrary& lib,
                                                 const std::string& name) {
  const simlib::Symbol* symbol = lib.find(name);
  if (symbol == nullptr) {
    return Error("probe_function: " + lib.soname() + " does not define " + name);
  }
  auto page_result = parser::parse_manpage(symbol->manpage);
  if (!page_result.ok()) {
    return Error("probe_function: man page of " + name + ": " + page_result.error().message);
  }
  const parser::ManPage page = std::move(page_result).take();

  RobustSpec spec;
  spec.function = name;
  spec.library = lib.soname();
  spec.declaration = symbol->declaration;

  if (page.noreturn) {
    spec.skipped_noreturn = true;
    return spec;
  }

  for (std::size_t i = 0; i < page.proto.params.size(); ++i) {
    ArgSpec arg;
    arg.index = static_cast<int>(i) + 1;
    arg.ctype = page.proto.params[i].type.to_string();
    arg.cls = page.proto.params[i].type.classify();

    for (const TestTypeId id : lattice::test_types_for(arg.cls)) {
      TypeVerdict verdict;
      verdict.id = id;
      for (std::size_t case_index = 0;; ++case_index) {
        bool case_existed = false;
        const CallOutcome outcome = run_probe(lib, page, i, id, case_index, case_existed);
        if (!case_existed) break;
        ++verdict.probes;
        ++spec.total_probes;
        if (outcome.robustness_failure()) {
          ++verdict.failures;
          ++spec.total_failures;
          switch (outcome.kind) {
            case CallOutcome::Kind::kCrash:
            case CallOutcome::Kind::kHijack:
              ++verdict.crashes;
              ++spec.crashes;
              break;
            case CallOutcome::Kind::kHang:
              ++verdict.hangs;
              ++spec.hangs;
              break;
            case CallOutcome::Kind::kAbort:
              ++verdict.aborts;
              ++spec.aborts;
              break;
            default:
              break;
          }
          if (verdict.first_failure.empty()) verdict.first_failure = outcome.detail;
        }
      }
      arg.verdicts.push_back(std::move(verdict));
    }

    // Collect the integral probe values that passed: the weakest safe range
    // is derived from them when the annotation gives no domain. Integral
    // test cases are process-independent, so one scratch factory suffices.
    if (arg.cls == parser::TypeClass::kIntegral) {
      arg.passing_int_values.clear();
      linker::Process scratch_proc("values:" + name);
      Rng scratch_rng(config_.seed);
      lattice::ValueFactory factory(scratch_proc, scratch_rng);
      for (const TypeVerdict& v : arg.verdicts) {
        if (v.failures > 0) continue;
        for (const lattice::TestCase& test : factory.cases_of(v.id, config_.variants)) {
          arg.passing_int_values.push_back(test.value.as_int());
        }
      }
    }

    arg.checks = derive_checks(arg, page.arg(arg.index));
    spec.args.push_back(std::move(arg));
  }

  return spec;
}

Result<CampaignResult> FaultInjector::run_campaign(
    const simlib::SharedLibrary& lib, const std::function<void(const std::string&)>& progress) {
  CampaignResult result;
  result.library = lib.soname();
  result.seed = config_.seed;
  for (const std::string& name : lib.names()) {
    if (progress) progress(name);
    auto spec = probe_function(lib, name);
    if (!spec.ok()) return spec.error();
    result.specs.push_back(std::move(spec).take());
  }
  return result;
}

}  // namespace healers::injector
