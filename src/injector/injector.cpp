#include "injector/injector.hpp"

#include <algorithm>
#include <utility>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace healers::injector {

using lattice::TestTypeId;
using linker::CallOutcome;

namespace {

// splitmix64 finalizer: full-avalanche mixing for probe-seed derivation.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

[[nodiscard]] std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// The per-probe seed: a pure function of the campaign seed and the probe
// coordinate. Every probe owns an independent Rng derived from this, so the
// values it fabricates cannot depend on which worker ran it, in what order,
// or how many probes ran before it — the root of the engine's determinism.
[[nodiscard]] std::uint64_t probe_seed(std::uint64_t seed, std::uint64_t fn_hash, std::size_t arg,
                                       TestTypeId id, std::size_t case_index) noexcept {
  std::uint64_t h = mix64(seed ^ fn_hash);
  h = mix64(h ^ (static_cast<std::uint64_t>(arg) << 40) ^
            (static_cast<std::uint64_t>(id) << 20) ^ static_cast<std::uint64_t>(case_index));
  return h;
}

}  // namespace

FaultInjector::FaultInjector(const linker::LibraryCatalog& catalog, InjectorConfig config)
    : catalog_(catalog), config_(config) {}

FaultInjector::~FaultInjector() = default;

const std::string& FaultInjector::probe_stdin() {
  // Testbed environment: pending console input so stdin-consuming functions
  // (gets) do real work during probes.
  static const std::string kInput = "a line of console input for the probe\n";
  return kInput;
}

mem::MachineConfig FaultInjector::machine_config() const noexcept {
  mem::MachineConfig machine_config;
  machine_config.heap_size = config_.testbed_heap;
  machine_config.stack_size = config_.testbed_stack;
  machine_config.step_budget = config_.probe_step_budget;
  return machine_config;
}

void FaultInjector::set_testbed_state(
    std::shared_ptr<const linker::TestbedState> state) noexcept {
  if (state == nullptr) return;
  const mem::MachineConfig want = machine_config();
  const mem::MachineConfig& got = state->config();
  if (got.heap_size != want.heap_size || got.stack_size != want.stack_size ||
      got.step_budget != want.step_budget) {
    return;  // built for a different machine shape — forking it would skew results
  }
  state_ = std::move(state);
}

void FaultInjector::ensure_state() {
  if (!config_.snapshot_reset || state_ != nullptr) return;
  state_ = linker::TestbedState::build(catalog_, machine_config(), probe_stdin());
  const mem::CowStats& built = state_->build_stats();
  pages_sealed_.fetch_add(built.pages_sealed, std::memory_order_relaxed);
  pages_faulted_.fetch_add(built.pages_faulted, std::memory_order_relaxed);
  pages_privatized_.fetch_add(built.pages_privatized, std::memory_order_relaxed);
  pages_dropped_.fetch_add(built.pages_dropped, std::memory_order_relaxed);
}

std::unique_ptr<linker::Process> FaultInjector::make_bed() {
  testbeds_built_.fetch_add(1, std::memory_order_relaxed);
  if (config_.snapshot_reset) {
    // ensure_state() already ran (before the fan-out); fork an O(metadata)
    // shell from the shared pristine image.
    states_forked_.fetch_add(1, std::memory_order_relaxed);
    return state_->fork("probe-testbed");
  }
  auto bed = std::make_unique<linker::Process>("probe-testbed", machine_config());
  bed->state().stdin_content = probe_stdin();
  for (const std::string& soname : catalog_.sonames()) {
    bed->load_library(catalog_.find(soname));
  }
  return bed;
}

void FaultInjector::harvest(const linker::Process& bed) noexcept {
  const mem::CowStats stats = bed.machine().mem().cow_stats();
  pages_sealed_.fetch_add(stats.pages_sealed, std::memory_order_relaxed);
  pages_faulted_.fetch_add(stats.pages_faulted, std::memory_order_relaxed);
  pages_privatized_.fetch_add(stats.pages_privatized, std::memory_order_relaxed);
  pages_dropped_.fetch_add(stats.pages_dropped, std::memory_order_relaxed);
}

CampaignEngineStats FaultInjector::engine_stats() const noexcept {
  CampaignEngineStats stats;
  stats.states_forked = states_forked_.load(std::memory_order_relaxed);
  stats.testbeds_built = testbeds_built_.load(std::memory_order_relaxed);
  stats.pages_sealed = pages_sealed_.load(std::memory_order_relaxed);
  stats.pages_faulted = pages_faulted_.load(std::memory_order_relaxed);
  stats.pages_privatized = pages_privatized_.load(std::memory_order_relaxed);
  stats.pages_dropped = pages_dropped_.load(std::memory_order_relaxed);
  return stats;
}

const FaultInjector::PageEntry& FaultInjector::page_for(const simlib::SharedLibrary& lib,
                                                        const simlib::Symbol& symbol) {
  std::lock_guard lock(pages_mutex_);
  auto [it, inserted] = pages_.try_emplace(lib.soname() + ':' + symbol.name);
  if (inserted) {
    auto parsed = parser::parse_manpage(symbol.manpage);
    if (parsed.ok()) {
      it->second.ok = true;
      it->second.page = std::move(parsed).take();
    } else {
      it->second.error = parsed.error().message;
    }
  }
  return it->second;
}

CallOutcome FaultInjector::run_probe(std::unique_ptr<linker::Process>& bed,
                                     const simlib::SharedLibrary& lib, const ProbeTask& task,
                                     std::size_t case_index, std::int64_t* injected_int) {
  // One probe = one pristine process, as the paper forked one child per
  // probe. snapshot_reset rewinds the worker's shell onto the shared
  // pristine image — bit-identical to a fresh build, because the restore
  // also rewinds the address-space allocation cursor — by dropping only the
  // pages the previous probe privatized. Fresh mode rebuilds from scratch
  // (the deep-copy oracle the benches compare against).
  if (config_.snapshot_reset) {
    if (bed == nullptr) {
      bed = make_bed();
    } else {
      state_->reset(*bed);
      states_forked_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    if (bed != nullptr) harvest(*bed);
    bed = make_bed();
  }
  linker::Process& process = *bed;
  const parser::ManPage& page = *task.page;

  CallOutcome not_run;
  not_run.kind = CallOutcome::Kind::kNotRun;
  if (!lib.defines(page.proto.name)) {
    // Caller verified; belt and braces.
    not_run.detail = "symbol " + page.proto.name + " not defined";
    return not_run;
  }

  Rng rng(probe_seed(config_.seed, task.fn_hash, task.arg_index, task.id, case_index));
  lattice::ValueFactory factory(process, rng);
  const std::vector<lattice::TestCase> cases = factory.cases_of(task.id, config_.variants);
  if (case_index >= cases.size()) {
    not_run.detail = "no test case " + std::to_string(case_index);
    return not_run;
  }

  std::vector<simlib::SimValue> args;
  args.reserve(page.proto.params.size());
  for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
    if (j == task.arg_index) {
      args.push_back(cases[case_index].value);
    } else {
      args.push_back(factory.safe_value(page, static_cast<int>(j) + 1));
    }
  }
  if (injected_int != nullptr) *injected_int = cases[case_index].value.as_int();
  probes_executed_.fetch_add(1, std::memory_order_relaxed);
  return process.supervised_call(page.proto.name, std::move(args));
}

FaultInjector::TaskOutput FaultInjector::run_task(std::unique_ptr<linker::Process>& bed,
                                                  const simlib::SharedLibrary& lib,
                                                  const ProbeTask& task) {
  TaskOutput out;
  out.verdict.id = task.id;
  const bool integral =
      task.page->proto.params[task.arg_index].type.classify() == parser::TypeClass::kIntegral;
  for (std::size_t case_index = 0;; ++case_index) {
    std::int64_t injected = 0;
    const CallOutcome outcome =
        run_probe(bed, lib, task, case_index, integral ? &injected : nullptr);
    if (outcome.kind == CallOutcome::Kind::kNotRun) break;
    ++out.verdict.probes;
    if (integral) out.int_values.push_back(injected);
    if (outcome.robustness_failure()) {
      ++out.verdict.failures;
      switch (outcome.kind) {
        case CallOutcome::Kind::kCrash:
        case CallOutcome::Kind::kHijack:
          ++out.verdict.crashes;
          break;
        case CallOutcome::Kind::kHang:
          ++out.verdict.hangs;
          break;
        case CallOutcome::Kind::kAbort:
          ++out.verdict.aborts;
          break;
        default:
          break;
      }
      if (out.verdict.first_failure.empty()) out.verdict.first_failure = outcome.detail;
    }
  }
  return out;
}

std::vector<FaultInjector::TaskOutput> FaultInjector::execute(const simlib::SharedLibrary& lib,
                                                              const std::vector<ProbeTask>& tasks) {
  const unsigned jobs = config_.jobs <= 0 ? support::ThreadPool::hardware_workers()
                                          : static_cast<unsigned>(config_.jobs);
  // Build (or adopt) the shared pristine state before the fan-out: state_ is
  // written once here, then only read (and forked — atomic refcounts) by the
  // workers.
  ensure_state();
  std::vector<TaskOutput> outputs(tasks.size());
  if (jobs <= 1) {
    // Sequential: one testbed, no pool, no locking.
    std::unique_ptr<linker::Process> bed;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      outputs[i] = run_task(bed, lib, tasks[i]);
    }
    if (bed != nullptr) harvest(*bed);
    return outputs;
  }
  if (pool_ == nullptr || pool_->workers() != jobs) {
    pool_ = std::make_unique<support::ThreadPool>(jobs);
  }
  std::vector<std::unique_ptr<linker::Process>> beds(jobs);  // lazily built, one per worker
  std::vector<support::ThreadPool::Task> pool_tasks;
  pool_tasks.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    pool_tasks.push_back([this, &lib, &tasks, &outputs, &beds, i](unsigned worker) {
      outputs[i] = run_task(beds[worker], lib, tasks[i]);
    });
  }
  pool_->run(std::move(pool_tasks));
  for (const auto& bed : beds) {
    if (bed != nullptr) harvest(*bed);
  }
  return outputs;
}

std::vector<RobustSpec> FaultInjector::build_specs(
    const simlib::SharedLibrary& lib,
    const std::vector<std::pair<const simlib::Symbol*, const parser::ManPage*>>& functions) {
  // Phase 1: enumerate every probe coordinate up front, in canonical order.
  std::vector<RobustSpec> specs;
  specs.reserve(functions.size());
  std::vector<ProbeTask> tasks;
  for (std::size_t s = 0; s < functions.size(); ++s) {
    const auto& [symbol, page] = functions[s];
    RobustSpec spec;
    spec.function = page->proto.name;
    spec.library = lib.soname();
    spec.declaration = symbol->declaration;
    spec.skipped_noreturn = page->noreturn;
    specs.push_back(std::move(spec));
    if (page->noreturn) continue;
    const std::uint64_t fn_hash = fnv1a(page->proto.name);
    for (std::size_t i = 0; i < page->proto.params.size(); ++i) {
      for (const TestTypeId id : lattice::test_types_for(page->proto.params[i].type.classify())) {
        tasks.push_back(ProbeTask{page, fn_hash, s, i, id});
      }
    }
  }

  // Phase 2: fan out.
  const std::vector<TaskOutput> outputs = execute(lib, tasks);

  // Phase 3: reduce in exactly the enumeration order — which worker ran a
  // task cannot influence where its verdict lands or how counters fold.
  std::size_t t = 0;
  for (std::size_t s = 0; s < functions.size(); ++s) {
    const parser::ManPage* page = functions[s].second;
    RobustSpec& spec = specs[s];
    if (page->noreturn) continue;
    for (std::size_t i = 0; i < page->proto.params.size(); ++i) {
      ArgSpec arg;
      arg.index = static_cast<int>(i) + 1;
      arg.ctype = page->proto.params[i].type.to_string();
      arg.cls = page->proto.params[i].type.classify();
      for (const TestTypeId id : lattice::test_types_for(arg.cls)) {
        (void)id;
        const TaskOutput& out = outputs[t++];
        spec.total_probes += out.verdict.probes;
        spec.total_failures += out.verdict.failures;
        spec.crashes += out.verdict.crashes;
        spec.hangs += out.verdict.hangs;
        spec.aborts += out.verdict.aborts;
        // The integral probe values that passed: the weakest safe range is
        // derived from them when the annotation gives no domain. These are
        // the values actually injected, recorded by the task itself.
        if (arg.cls == parser::TypeClass::kIntegral && out.verdict.failures == 0) {
          arg.passing_int_values.insert(arg.passing_int_values.end(), out.int_values.begin(),
                                        out.int_values.end());
        }
        arg.verdicts.push_back(out.verdict);
      }
      arg.checks = derive_checks(arg, page->arg(arg.index));
      spec.args.push_back(std::move(arg));
    }
  }
  return specs;
}

DerivedChecks derive_checks(const ArgSpec& arg, const parser::ArgAnnotation* note) {
  DerivedChecks checks;
  const auto failed = [&arg](TestTypeId id) {
    const TypeVerdict* v = arg.verdict(id);
    return v != nullptr && v->failed();
  };

  if (arg.cls == parser::TypeClass::kPointer) {
    checks.require_nonnull = failed(TestTypeId::kNull);
    checks.require_mapped = failed(TestTypeId::kIntAsPtr) || failed(TestTypeId::kWildPtr) ||
                            failed(TestTypeId::kFreedPtr);
    checks.require_writable = failed(TestTypeId::kReadOnlyCString);
    checks.require_terminated = failed(TestTypeId::kUntermBuf);
    checks.require_size_check = failed(TestTypeId::kTinyWritable);
    // Buffer semantics imply a mapped pointer even when the hostile probes
    // happened not to fault (e.g. variants landed on mapped garbage).
    if (checks.require_writable || checks.require_terminated || checks.require_size_check) {
      checks.require_mapped = true;
    }
    // Opaque-handle roles cannot be told apart by buffer probes (everything
    // non-handle fails); the annotation names the role, the near-universal
    // failure profile corroborates it.
    if (note != nullptr && note->is_file) {
      checks.require_file = true;
      checks.require_nonnull = true;
      checks.require_mapped = true;
    }
    if (note != nullptr && note->is_heapptr) {
      checks.require_heap_pointer = true;
    }
    if (note != nullptr && note->is_funcptr) {
      checks.require_callback = true;
      checks.require_nonnull = true;
    }
    return checks;
  }

  if (arg.cls == parser::TypeClass::kIntegral) {
    bool any_failure = false;
    for (const TypeVerdict& v : arg.verdicts) any_failure = any_failure || v.failed();
    if (any_failure) {
      if (note != nullptr && note->range.has_value()) {
        checks.range = note->range;
      } else if (!arg.passing_int_values.empty()) {
        const auto [lo, hi] =
            std::minmax_element(arg.passing_int_values.begin(), arg.passing_int_values.end());
        checks.range = {*lo, *hi};
      } else {
        checks.range = {0, 0};  // nothing passed: only a degenerate domain is known safe
      }
    }
    return checks;
  }

  return checks;  // floating/void: no derivable preconditions
}

Result<RobustSpec> FaultInjector::probe_function(const simlib::SharedLibrary& lib,
                                                 const std::string& name) {
  const simlib::Symbol* symbol = lib.find(name);
  if (symbol == nullptr) {
    return Error("probe_function: " + lib.soname() + " does not define " + name);
  }
  const PageEntry& entry = page_for(lib, *symbol);
  if (!entry.ok) {
    return Error("probe_function: man page of " + name + ": " + entry.error);
  }
  std::vector<RobustSpec> specs = build_specs(lib, {{symbol, &entry.page}});
  return std::move(specs.front());
}

Result<CampaignResult> FaultInjector::run_campaign(
    const simlib::SharedLibrary& lib, const std::function<void(const std::string&)>& progress) {
  CampaignResult result;
  result.library = lib.soname();
  result.seed = config_.seed;
  // Prescan: parse (and memoize) every man page before fanning out, so parse
  // failures surface deterministically and workers never touch the cache.
  std::vector<std::pair<const simlib::Symbol*, const parser::ManPage*>> functions;
  for (const std::string& name : lib.names()) {
    if (progress) progress(name);
    const simlib::Symbol* symbol = lib.find(name);
    if (symbol == nullptr) {
      return Error("probe_function: " + lib.soname() + " does not define " + name);
    }
    const PageEntry& entry = page_for(lib, *symbol);
    if (!entry.ok) {
      return Error("probe_function: man page of " + name + ": " + entry.error);
    }
    functions.emplace_back(symbol, &entry.page);
  }
  const CampaignEngineStats before = engine_stats();
  result.specs = build_specs(lib, functions);
  const CampaignEngineStats after = engine_stats();
  result.engine.states_forked = after.states_forked - before.states_forked;
  result.engine.testbeds_built = after.testbeds_built - before.testbeds_built;
  result.engine.pages_sealed = after.pages_sealed - before.pages_sealed;
  result.engine.pages_faulted = after.pages_faulted - before.pages_faulted;
  result.engine.pages_privatized = after.pages_privatized - before.pages_privatized;
  result.engine.pages_dropped = after.pages_dropped - before.pages_dropped;
  return result;
}

}  // namespace healers::injector
