#include "injector/injector.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace healers::injector {

using lattice::TestTypeId;
using linker::CallOutcome;

namespace {

// splitmix64 finalizer: full-avalanche mixing for probe-seed derivation.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

[[nodiscard]] std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// The per-coordinate seed: a pure function of the campaign seed and the
// probe coordinate. Every fabrication owns an independent Rng derived from
// this, so the values it produces cannot depend on which worker ran it, in
// what order, or how many probes ran before it — the root of the engine's
// determinism. A test type's whole case list is fabricated from the
// case_index=0 seed (cases are picked out of one enumeration), so an
// implied verdict can replay the identical values without a testbed.
[[nodiscard]] std::uint64_t probe_seed(std::uint64_t seed, std::uint64_t fn_hash, std::size_t arg,
                                       TestTypeId id, std::size_t case_index) noexcept {
  std::uint64_t h = mix64(seed ^ fn_hash);
  h = mix64(h ^ (static_cast<std::uint64_t>(arg) << 40) ^
            (static_cast<std::uint64_t>(id) << 20) ^ static_cast<std::uint64_t>(case_index));
  return h;
}

// Sentinel arg slot seeding the safe-value fabrication of a function's base
// snapshot — outside any real argument index.
inline constexpr std::size_t kSafeArgsSlot = 0xffff;

// Folds one probe outcome into a type verdict.
void fold_outcome(TypeVerdict& verdict, const CallOutcome& outcome) {
  ++verdict.probes;
  if (!outcome.robustness_failure()) return;
  ++verdict.failures;
  switch (outcome.kind) {
    case CallOutcome::Kind::kCrash:
    case CallOutcome::Kind::kHijack:
      ++verdict.crashes;
      break;
    case CallOutcome::Kind::kHang:
      ++verdict.hangs;
      break;
    case CallOutcome::Kind::kAbort:
      ++verdict.aborts;
      break;
    default:
      break;
  }
  if (verdict.first_failure.empty()) verdict.first_failure = outcome.detail;
}

}  // namespace

FaultInjector::FaultInjector(const linker::LibraryCatalog& catalog, InjectorConfig config)
    : catalog_(catalog),
      config_(config),
      profiles_(std::make_shared<lattice::ImplicationProfileStore>()) {}

FaultInjector::~FaultInjector() = default;

const std::string& FaultInjector::probe_stdin() {
  // Testbed environment: pending console input so stdin-consuming functions
  // (gets) do real work during probes.
  static const std::string kInput = "a line of console input for the probe\n";
  return kInput;
}

mem::MachineConfig FaultInjector::machine_config() const noexcept {
  mem::MachineConfig machine_config;
  machine_config.heap_size = config_.testbed_heap;
  machine_config.stack_size = config_.testbed_stack;
  machine_config.step_budget = config_.probe_step_budget;
  return machine_config;
}

void FaultInjector::set_testbed_state(
    std::shared_ptr<const linker::TestbedState> state) noexcept {
  if (state == nullptr) return;
  const mem::MachineConfig want = machine_config();
  const mem::MachineConfig& got = state->config();
  if (got.heap_size != want.heap_size || got.stack_size != want.stack_size ||
      got.step_budget != want.step_budget) {
    return;  // built for a different machine shape — forking it would skew results
  }
  state_ = std::move(state);
}

void FaultInjector::set_profile_store(
    std::shared_ptr<lattice::ImplicationProfileStore> store) noexcept {
  if (store != nullptr) profiles_ = std::move(store);
}

void FaultInjector::ensure_state() {
  if (!config_.snapshot_reset || state_ != nullptr) return;
  state_ = linker::TestbedState::build(catalog_, machine_config(), probe_stdin());
  const mem::CowStats& built = state_->build_stats();
  pages_sealed_.fetch_add(built.pages_sealed, std::memory_order_relaxed);
  pages_faulted_.fetch_add(built.pages_faulted, std::memory_order_relaxed);
  pages_privatized_.fetch_add(built.pages_privatized, std::memory_order_relaxed);
  pages_dropped_.fetch_add(built.pages_dropped, std::memory_order_relaxed);
}

std::unique_ptr<linker::Process> FaultInjector::make_bed() {
  testbeds_built_.fetch_add(1, std::memory_order_relaxed);
  if (config_.snapshot_reset) {
    // ensure_state() already ran (before the fan-out); fork an O(metadata)
    // shell from the shared pristine image.
    states_forked_.fetch_add(1, std::memory_order_relaxed);
    return state_->fork("probe-testbed");
  }
  auto bed = std::make_unique<linker::Process>("probe-testbed", machine_config());
  bed->state().stdin_content = probe_stdin();
  for (const std::string& soname : catalog_.sonames()) {
    bed->load_library(catalog_.find(soname));
  }
  return bed;
}

void FaultInjector::harvest(const linker::Process& bed) noexcept {
  const mem::CowStats stats = bed.machine().mem().cow_stats();
  pages_sealed_.fetch_add(stats.pages_sealed, std::memory_order_relaxed);
  pages_faulted_.fetch_add(stats.pages_faulted, std::memory_order_relaxed);
  pages_privatized_.fetch_add(stats.pages_privatized, std::memory_order_relaxed);
  pages_dropped_.fetch_add(stats.pages_dropped, std::memory_order_relaxed);
}

CampaignEngineStats FaultInjector::engine_stats() const noexcept {
  CampaignEngineStats stats;
  stats.states_forked = states_forked_.load(std::memory_order_relaxed);
  stats.testbeds_built = testbeds_built_.load(std::memory_order_relaxed);
  stats.pages_sealed = pages_sealed_.load(std::memory_order_relaxed);
  stats.pages_faulted = pages_faulted_.load(std::memory_order_relaxed);
  stats.pages_privatized = pages_privatized_.load(std::memory_order_relaxed);
  stats.pages_dropped = pages_dropped_.load(std::memory_order_relaxed);
  stats.probes_executed = probes_executed_.load(std::memory_order_relaxed);
  stats.probes_implied = probes_implied_.load(std::memory_order_relaxed);
  stats.verdicts_implied = verdicts_implied_.load(std::memory_order_relaxed);
  stats.memo_case_hits = memo_hits_.load(std::memory_order_relaxed);
  stats.args_probed = args_probed_.load(std::memory_order_relaxed);
  stats.args_warm_ordered = args_warm_.load(std::memory_order_relaxed);
  return stats;
}

const FaultInjector::PageEntry& FaultInjector::page_for(const simlib::SharedLibrary& lib,
                                                        const simlib::Symbol& symbol) {
  std::lock_guard lock(pages_mutex_);
  auto [it, inserted] = pages_.try_emplace(lib.soname() + ':' + symbol.name);
  if (inserted) {
    auto parsed = parser::parse_manpage(symbol.manpage);
    if (parsed.ok()) {
      it->second.ok = true;
      it->second.page = std::move(parsed).take();
    } else {
      it->second.error = parsed.error().message;
    }
  }
  return it->second;
}

void FaultInjector::fabricate_safe_args(WorkerBed& wb, const ProbeTask& task) {
  const parser::ManPage& page = *task.page;
  Rng rng(probe_seed(config_.seed, task.fn_hash, kSafeArgsSlot, TestTypeId::kNull, 0));
  lattice::ValueFactory factory(*wb.bed, rng);
  wb.safe_args.clear();
  wb.safe_args.reserve(page.proto.params.size());
  for (std::size_t j = 0; j < page.proto.params.size(); ++j) {
    wb.safe_args.push_back(factory.safe_value(page, static_cast<int>(j) + 1));
  }
}

void FaultInjector::bed_to_base(WorkerBed& wb, const simlib::SharedLibrary& lib,
                                const ProbeTask& task) {
  (void)lib;
  if (config_.snapshot_reset) {
    if (wb.bed != nullptr && wb.base_page == task.page) {
      // Hot path: rewind onto the per-function base — drops only the pages
      // the previous probe privatized; the safe values survive inside the
      // snapshot's sealed image.
      wb.bed->restore(wb.base);
      states_forked_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (wb.bed == nullptr) {
      wb.bed = make_bed();
    } else {
      state_->reset(*wb.bed);
      states_forked_.fetch_add(1, std::memory_order_relaxed);
    }
    fabricate_safe_args(wb, task);
    wb.base = wb.bed->snapshot();
    wb.base_page = task.page;
    return;
  }
  // Fresh mode: rebuild the whole process and re-fabricate every safe value
  // per probe — the deep oracle the snapshot path is compared against.
  if (wb.bed != nullptr) harvest(*wb.bed);
  wb.bed = make_bed();
  fabricate_safe_args(wb, task);
  wb.base_page = task.page;
}

FaultInjector::TypeOutput FaultInjector::run_type(
    WorkerBed& wb, const simlib::SharedLibrary& lib, const ProbeTask& task, TestTypeId id,
    std::map<std::int64_t, CallOutcome>* int_memo) {
  TypeOutput out;
  out.verdict.id = id;
  const parser::ManPage& page = *task.page;
  const bool integral = task.cls == parser::TypeClass::kIntegral;
  const std::size_t expected = lattice::case_count(id, config_.variants);

  if (lattice::is_scalar_type(id)) {
    // Scalar cases are pure data — enumerate without a testbed, and let the
    // value memo answer integral cases whose exact value was already called
    // for this argument (the bed state at call time is the base snapshot for
    // every scalar probe, so the outcome is a function of the value alone).
    Rng rng(probe_seed(config_.seed, task.fn_hash, task.arg_index, id, 0));
    const std::vector<lattice::TestCase> cases =
        lattice::scalar_cases(id, config_.variants, rng);
    if (cases.size() != expected) {
      throw std::logic_error("run_type: case_count(" + lattice::to_string(id) +
                             ") disagrees with enumeration");
    }
    for (const lattice::TestCase& test_case : cases) {
      const std::int64_t injected = test_case.value.as_int();
      if (integral) out.int_values.push_back(injected);
      if (integral && int_memo != nullptr) {
        const auto hit = int_memo->find(injected);
        if (hit != int_memo->end()) {
          memo_hits_.fetch_add(1, std::memory_order_relaxed);
          probes_implied_.fetch_add(1, std::memory_order_relaxed);
          fold_outcome(out.verdict, hit->second);
          continue;
        }
      }
      bed_to_base(wb, lib, task);
      std::vector<simlib::SimValue> args = wb.safe_args;
      args[task.arg_index] = test_case.value;
      probes_executed_.fetch_add(1, std::memory_order_relaxed);
      const CallOutcome outcome = wb.bed->supervised_call(page.proto.name, std::move(args));
      if (integral && int_memo != nullptr) int_memo->emplace(injected, outcome);
      fold_outcome(out.verdict, outcome);
    }
    return out;
  }

  // Pointer cases fabricate testbed state, so every probe re-enumerates the
  // type's whole case list on a freshly based bed (identical each time —
  // the Rng is seeded at case_index 0) and injects case `i`. Bed state at
  // call time therefore includes every case's fabrication, uniformly.
  for (std::size_t case_index = 0;; ++case_index) {
    bed_to_base(wb, lib, task);
    Rng rng(probe_seed(config_.seed, task.fn_hash, task.arg_index, id, 0));
    lattice::ValueFactory factory(*wb.bed, rng);
    const std::vector<lattice::TestCase> cases = factory.cases_of(id, config_.variants);
    if (case_index == 0 && cases.size() != expected) {
      throw std::logic_error("run_type: case_count(" + lattice::to_string(id) +
                             ") disagrees with fabrication");
    }
    if (case_index >= cases.size()) break;
    std::vector<simlib::SimValue> args = wb.safe_args;
    args[task.arg_index] = cases[case_index].value;
    probes_executed_.fetch_add(1, std::memory_order_relaxed);
    fold_outcome(out.verdict, wb.bed->supervised_call(page.proto.name, std::move(args)));
  }
  return out;
}

FaultInjector::TypeOutput FaultInjector::synthesize_pass(const ProbeTask& task, TestTypeId id,
                                                         TestTypeId from) {
  TypeOutput out;
  out.verdict.id = id;
  out.verdict.implied = true;
  out.verdict.implied_from = from;
  if (lattice::is_scalar_type(id)) {
    // Replay the exact enumeration execution would have used — including
    // kHugeSize's rng draws — so int_values feed range derivation
    // identically.
    Rng rng(probe_seed(config_.seed, task.fn_hash, task.arg_index, id, 0));
    const std::vector<lattice::TestCase> cases =
        lattice::scalar_cases(id, config_.variants, rng);
    out.verdict.probes = static_cast<int>(cases.size());
    if (task.cls == parser::TypeClass::kIntegral) {
      for (const lattice::TestCase& test_case : cases) {
        out.int_values.push_back(test_case.value.as_int());
      }
    }
  } else {
    out.verdict.probes = static_cast<int>(lattice::case_count(id, config_.variants));
  }
  return out;
}

FaultInjector::TaskOutput FaultInjector::run_task(WorkerBed& wb, const simlib::SharedLibrary& lib,
                                                  const ProbeTask& task,
                                                  const lattice::SignatureProfile* profile) {
  const parser::ManPage& page = *task.page;
  const std::vector<TestTypeId>& types = lattice::test_types_for(task.cls);
  TaskOutput out;
  out.typed.resize(types.size());
  for (std::size_t k = 0; k < types.size(); ++k) out.typed[k].verdict.id = types[k];
  if (types.empty()) return out;
  if (!lib.defines(page.proto.name)) {
    // Caller verified; belt and braces. Zero-probe verdicts, never learned.
    return out;
  }
  args_probed_.fetch_add(1, std::memory_order_relaxed);

  if (!config_.prune) {
    // Unpruned reference walk: canonical order, every case executed.
    for (std::size_t k = 0; k < types.size(); ++k) {
      out.typed[k] = run_type(wb, lib, task, types[k], nullptr);
    }
    return out;
  }

  if (profile != nullptr) args_warm_.fetch_add(1, std::memory_order_relaxed);
  const lattice::ImplicationIndex& index = lattice::ImplicationIndex::instance();
  std::map<std::int64_t, CallOutcome> memo;
  std::map<std::int64_t, CallOutcome>* int_memo =
      task.cls == parser::TypeClass::kIntegral ? &memo : nullptr;

  std::vector<bool> resolved(types.size(), false);
  // Dominated types still unresolved — how much a pass of `id` would prune.
  const auto unresolved_reach = [&](TestTypeId id) {
    std::size_t n = 0;
    for (const TestTypeId safe : index.implied_pass(id)) {
      if (!resolved[index.canonical_rank(safe)]) ++n;
    }
    return n;
  };
  // Walk: warm profiles probe predicted-pass frontier types first (widest
  // unresolved reach); cold walks probe the endpoints first — the most
  // hostile (maximum total reach), then the safest survivor — then the
  // widest unresolved gap. Ties break toward canonical order.
  for (std::size_t step = 0;; ++step) {
    std::size_t pick = types.size();
    std::size_t best = 0;
    if (profile != nullptr) {
      // Predicted-pass frontier: widest unresolved reach first, so the
      // synthesized closure lands as early as possible.
      for (std::size_t k = 0; k < types.size(); ++k) {
        if (resolved[k] || !profile->predicts_pass(types[k])) continue;
        const std::size_t score = unresolved_reach(types[k]);
        if (pick == types.size() || score > best) {
          pick = k;
          best = score;
        }
      }
    }
    if (pick == types.size()) {
      // Cold (or frontier exhausted): endpoints first, then widest gap.
      for (std::size_t k = 0; k < types.size(); ++k) {
        if (resolved[k]) continue;
        std::size_t score = 0;
        if (step == 0) {
          score = index.reach(types[k]);  // most hostile endpoint
        } else if (step == 1) {
          score = index.hostility_rank(types[k]);  // safest survivor
        } else {
          score = unresolved_reach(types[k]);
        }
        if (pick == types.size() || score > best) {
          pick = k;
          best = score;
        }
      }
    }
    if (pick == types.size()) break;  // everything resolved

    const TestTypeId id = types[pick];
    out.typed[pick] = run_type(wb, lib, task, id, int_memo);
    resolved[pick] = true;
    if (out.typed[pick].verdict.probes > 0 && out.typed[pick].verdict.failures == 0) {
      // pass(hostile) ⇒ pass(safe): synthesize the closure.
      for (const TestTypeId safe : index.implied_pass(id)) {
        const std::size_t k = index.canonical_rank(safe);
        if (resolved[k]) continue;
        out.typed[k] = synthesize_pass(task, safe, id);
        resolved[k] = true;
        verdicts_implied_.fetch_add(1, std::memory_order_relaxed);
        probes_implied_.fetch_add(static_cast<std::uint64_t>(out.typed[k].verdict.probes),
                                  std::memory_order_relaxed);
      }
    }
  }
  return out;
}

void FaultInjector::learn_task(const ProbeTask& task, const TaskOutput& out) {
  if (!config_.prune) return;
  for (const TypeOutput& typed : out.typed) {
    if (typed.verdict.probes == 0) continue;
    profiles_->learn(task.signature, typed.verdict.id, typed.verdict.failures == 0);
  }
}

std::vector<FaultInjector::TaskOutput> FaultInjector::execute(const simlib::SharedLibrary& lib,
                                                              const std::vector<ProbeTask>& tasks) {
  const unsigned jobs = config_.jobs <= 0 ? support::ThreadPool::hardware_workers()
                                          : static_cast<unsigned>(config_.jobs);
  // Build (or adopt) the shared pristine state before the fan-out: state_ is
  // written once here, then only read (and forked — atomic refcounts) by the
  // workers.
  ensure_state();
  std::vector<TaskOutput> outputs(tasks.size());
  if (jobs <= 1) {
    // Sequential: one testbed, no pool, no locking — and live learning: an
    // argument's walk is warmed by everything probed before it, including
    // earlier arguments of this very campaign.
    WorkerBed wb;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const lattice::SignatureProfile* profile = nullptr;
      std::optional<lattice::SignatureProfile> snap;
      if (config_.prune) {
        snap = profiles_->lookup(tasks[i].signature);
        if (snap.has_value()) profile = &*snap;
      }
      outputs[i] = run_task(wb, lib, tasks[i], profile);
      learn_task(tasks[i], outputs[i]);
    }
    if (wb.bed != nullptr) harvest(*wb.bed);
    return outputs;
  }
  if (pool_ == nullptr || pool_->workers() != jobs) {
    pool_ = std::make_unique<support::ThreadPool>(jobs);
  }
  // Parallel walks read a profile snapshot frozen before the fan-out, so the
  // executed/implied split cannot depend on scheduling; what the walks
  // learned merges in canonical task order after the join.
  std::map<std::string, lattice::SignatureProfile> frozen;
  if (config_.prune) {
    for (const ProbeTask& task : tasks) {
      if (frozen.count(task.signature) != 0) continue;
      const auto snap = profiles_->lookup(task.signature);
      if (snap.has_value()) frozen.emplace(task.signature, *snap);
    }
  }
  std::vector<WorkerBed> beds(jobs);  // lazily built, one per worker
  std::vector<support::ThreadPool::Task> pool_tasks;
  pool_tasks.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    pool_tasks.push_back([this, &lib, &tasks, &outputs, &beds, &frozen, i](unsigned worker) {
      const lattice::SignatureProfile* profile = nullptr;
      const auto it = frozen.find(tasks[i].signature);
      if (it != frozen.end()) profile = &it->second;
      outputs[i] = run_task(beds[worker], lib, tasks[i], profile);
    });
  }
  pool_->run(std::move(pool_tasks));
  for (const WorkerBed& wb : beds) {
    if (wb.bed != nullptr) harvest(*wb.bed);
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) learn_task(tasks[i], outputs[i]);
  return outputs;
}

std::vector<RobustSpec> FaultInjector::build_specs(
    const simlib::SharedLibrary& lib,
    const std::vector<std::pair<const simlib::Symbol*, const parser::ManPage*>>& functions) {
  // Phase 1: enumerate every probe coordinate up front, in canonical order.
  // The fan-out unit is one argument; its test types are walked inside the
  // task so lattice implications resolve without cross-task traffic.
  std::vector<RobustSpec> specs;
  specs.reserve(functions.size());
  std::vector<ProbeTask> tasks;
  for (std::size_t s = 0; s < functions.size(); ++s) {
    const auto& [symbol, page] = functions[s];
    RobustSpec spec;
    spec.function = page->proto.name;
    spec.library = lib.soname();
    spec.declaration = symbol->declaration;
    spec.skipped_noreturn = page->noreturn;
    specs.push_back(std::move(spec));
    if (page->noreturn) continue;
    const std::uint64_t fn_hash = fnv1a(page->proto.name);
    for (std::size_t i = 0; i < page->proto.params.size(); ++i) {
      const parser::TypeClass cls = page->proto.params[i].type.classify();
      tasks.push_back(ProbeTask{
          page, fn_hash, s, i, cls,
          lattice::ImplicationProfileStore::signature(cls,
                                                      page->arg(static_cast<int>(i) + 1))});
    }
  }

  // Phase 2: fan out.
  const std::vector<TaskOutput> outputs = execute(lib, tasks);

  // Phase 3: reduce in exactly the enumeration order — neither which worker
  // ran a walk nor the order the walk probed types in can influence where a
  // verdict lands or how counters fold.
  std::size_t t = 0;
  for (std::size_t s = 0; s < functions.size(); ++s) {
    const parser::ManPage* page = functions[s].second;
    RobustSpec& spec = specs[s];
    if (page->noreturn) continue;
    for (std::size_t i = 0; i < page->proto.params.size(); ++i) {
      ArgSpec arg;
      arg.index = static_cast<int>(i) + 1;
      arg.ctype = page->proto.params[i].type.to_string();
      arg.cls = page->proto.params[i].type.classify();
      const TaskOutput& out = outputs[t++];
      for (const TypeOutput& typed : out.typed) {
        spec.total_probes += typed.verdict.probes;
        spec.total_failures += typed.verdict.failures;
        spec.crashes += typed.verdict.crashes;
        spec.hangs += typed.verdict.hangs;
        spec.aborts += typed.verdict.aborts;
        // The integral probe values that passed: the weakest safe range is
        // derived from them when the annotation gives no domain. Implied
        // verdicts replay the identical values execution would have injected.
        if (arg.cls == parser::TypeClass::kIntegral && typed.verdict.failures == 0) {
          arg.passing_int_values.insert(arg.passing_int_values.end(), typed.int_values.begin(),
                                        typed.int_values.end());
        }
        arg.verdicts.push_back(typed.verdict);
      }
      arg.checks = derive_checks(arg, page->arg(arg.index));
      spec.args.push_back(std::move(arg));
    }
  }
  return specs;
}

DerivedChecks derive_checks(const ArgSpec& arg, const parser::ArgAnnotation* note) {
  DerivedChecks checks;
  const auto failed = [&arg](TestTypeId id) {
    const TypeVerdict* v = arg.verdict(id);
    return v != nullptr && v->failed();
  };

  if (arg.cls == parser::TypeClass::kPointer) {
    checks.require_nonnull = failed(TestTypeId::kNull);
    checks.require_mapped = failed(TestTypeId::kIntAsPtr) || failed(TestTypeId::kWildPtr) ||
                            failed(TestTypeId::kFreedPtr);
    checks.require_writable = failed(TestTypeId::kReadOnlyCString);
    checks.require_terminated = failed(TestTypeId::kUntermBuf);
    checks.require_size_check = failed(TestTypeId::kTinyWritable);
    // Buffer semantics imply a mapped pointer even when the hostile probes
    // happened not to fault (e.g. variants landed on mapped garbage).
    if (checks.require_writable || checks.require_terminated || checks.require_size_check) {
      checks.require_mapped = true;
    }
    // Opaque-handle roles cannot be told apart by buffer probes (everything
    // non-handle fails); the annotation names the role, the near-universal
    // failure profile corroborates it.
    if (note != nullptr && note->is_file) {
      checks.require_file = true;
      checks.require_nonnull = true;
      checks.require_mapped = true;
    }
    if (note != nullptr && note->is_heapptr) {
      checks.require_heap_pointer = true;
    }
    if (note != nullptr && note->is_funcptr) {
      checks.require_callback = true;
      checks.require_nonnull = true;
    }
    return checks;
  }

  if (arg.cls == parser::TypeClass::kIntegral) {
    bool any_failure = false;
    for (const TypeVerdict& v : arg.verdicts) any_failure = any_failure || v.failed();
    if (any_failure) {
      if (note != nullptr && note->range.has_value()) {
        checks.range = note->range;
      } else if (!arg.passing_int_values.empty()) {
        const auto [lo, hi] =
            std::minmax_element(arg.passing_int_values.begin(), arg.passing_int_values.end());
        checks.range = {*lo, *hi};
      } else {
        checks.range = {0, 0};  // nothing passed: only a degenerate domain is known safe
      }
    }
    return checks;
  }

  return checks;  // floating/void: no derivable preconditions
}

Result<RobustSpec> FaultInjector::probe_function(const simlib::SharedLibrary& lib,
                                                 const std::string& name) {
  const simlib::Symbol* symbol = lib.find(name);
  if (symbol == nullptr) {
    return Error("probe_function: " + lib.soname() + " does not define " + name);
  }
  const PageEntry& entry = page_for(lib, *symbol);
  if (!entry.ok) {
    return Error("probe_function: man page of " + name + ": " + entry.error);
  }
  std::vector<RobustSpec> specs = build_specs(lib, {{symbol, &entry.page}});
  return std::move(specs.front());
}

Result<CampaignResult> FaultInjector::run_campaign(
    const simlib::SharedLibrary& lib, const std::function<void(const std::string&)>& progress) {
  CampaignResult result;
  result.library = lib.soname();
  result.seed = config_.seed;
  // Prescan: parse (and memoize) every man page before fanning out, so parse
  // failures surface deterministically and workers never touch the cache.
  std::vector<std::pair<const simlib::Symbol*, const parser::ManPage*>> functions;
  for (const std::string& name : lib.names()) {
    if (!config_.only_functions.empty() &&
        std::find(config_.only_functions.begin(), config_.only_functions.end(), name) ==
            config_.only_functions.end()) {
      continue;  // outside the surface scope: the executable can never call it
    }
    if (progress) progress(name);
    const simlib::Symbol* symbol = lib.find(name);
    if (symbol == nullptr) {
      return Error("probe_function: " + lib.soname() + " does not define " + name);
    }
    const PageEntry& entry = page_for(lib, *symbol);
    if (!entry.ok) {
      return Error("probe_function: man page of " + name + ": " + entry.error);
    }
    functions.emplace_back(symbol, &entry.page);
  }
  const CampaignEngineStats before = engine_stats();
  result.specs = build_specs(lib, functions);
  const CampaignEngineStats after = engine_stats();
  result.engine.states_forked = after.states_forked - before.states_forked;
  result.engine.testbeds_built = after.testbeds_built - before.testbeds_built;
  result.engine.pages_sealed = after.pages_sealed - before.pages_sealed;
  result.engine.pages_faulted = after.pages_faulted - before.pages_faulted;
  result.engine.pages_privatized = after.pages_privatized - before.pages_privatized;
  result.engine.pages_dropped = after.pages_dropped - before.pages_dropped;
  result.engine.probes_executed = after.probes_executed - before.probes_executed;
  result.engine.probes_implied = after.probes_implied - before.probes_implied;
  result.engine.verdicts_implied = after.verdicts_implied - before.verdicts_implied;
  result.engine.memo_case_hits = after.memo_case_hits - before.memo_case_hits;
  result.engine.args_probed = after.args_probed - before.args_probed;
  result.engine.args_warm_ordered = after.args_warm_ordered - before.args_warm_ordered;
  return result;
}

}  // namespace healers::injector
